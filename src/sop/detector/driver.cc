#include "sop/detector/driver.h"

#include <utility>

#include "sop/detector/engine.h"

namespace sop {

RunMetrics RunStream(const Workload& workload, StreamSource* source,
                     OutlierDetector* detector, const ResultSink& sink) {
  ExecutionEngine engine;
  return engine.Run(workload, source, detector, sink);
}

RunMetrics RunStream(const Workload& workload, std::vector<Point> points,
                     OutlierDetector* detector, const ResultSink& sink) {
  ExecutionEngine engine;
  return engine.Run(workload, std::move(points), detector, sink);
}

std::vector<QueryResult> CollectResults(const Workload& workload,
                                        std::vector<Point> points,
                                        OutlierDetector* detector) {
  std::vector<QueryResult> all;
  RunStream(workload, std::move(points), detector,
            [&all](const QueryResult& r) { all.push_back(r); });
  return all;
}

}  // namespace sop
