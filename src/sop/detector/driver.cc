#include "sop/detector/driver.h"

#include <utility>

#include "sop/common/check.h"
#include "sop/common/stopwatch.h"
#include "sop/stream/window.h"

namespace sop {

namespace {

// Times one Advance() call and records it into the accumulator.
void AdvanceBatch(OutlierDetector* detector, std::vector<Point> batch,
                  int64_t boundary, MetricsAccumulator* acc,
                  const ResultSink& sink) {
  Stopwatch watch;
  std::vector<QueryResult> results =
      detector->Advance(std::move(batch), boundary);
  const double cpu_ms = watch.ElapsedMillis();
  uint64_t outliers = 0;
  for (const QueryResult& r : results) outliers += r.outliers.size();
  acc->RecordBatch(cpu_ms, detector->MemoryBytes(), results.size(), outliers);
  if (sink) {
    for (const QueryResult& r : results) sink(r);
  }
}

RunMetrics RunCountBased(int64_t batch_span, StreamSource* source,
                         OutlierDetector* detector, const ResultSink& sink) {
  MetricsAccumulator acc;
  std::vector<Point> batch;
  batch.reserve(static_cast<size_t>(batch_span));
  Seq seq = 0;
  Point p;
  while (source->Next(&p)) {
    p.seq = seq++;
    acc.RecordPoints(1);
    batch.push_back(std::move(p));
    if (static_cast<int64_t>(batch.size()) == batch_span) {
      AdvanceBatch(detector, std::move(batch), seq, &acc, sink);
      batch = {};
      batch.reserve(static_cast<size_t>(batch_span));
    }
  }
  // A trailing partial batch never reaches a boundary and is dropped.
  return acc.Finish();
}

RunMetrics RunTimeBased(int64_t batch_span, StreamSource* source,
                        OutlierDetector* detector, const ResultSink& sink) {
  MetricsAccumulator acc;
  std::vector<Point> batch;
  Seq seq = 0;
  Timestamp last_time = 0;
  bool have_boundary = false;
  int64_t next_boundary = 0;
  Point p;
  while (source->Next(&p)) {
    if (seq > 0) {
      SOP_CHECK_MSG(p.time >= last_time,
                    "time-based streams must have non-decreasing timestamps");
    }
    last_time = p.time;
    if (!have_boundary) {
      // The first boundary strictly after the first point's timestamp.
      next_boundary = FirstBoundaryAtOrAfter(p.time + 1, batch_span);
      have_boundary = true;
    }
    while (p.time >= next_boundary) {
      AdvanceBatch(detector, std::move(batch), next_boundary, &acc, sink);
      batch = {};
      next_boundary += batch_span;
    }
    p.seq = seq++;
    acc.RecordPoints(1);
    batch.push_back(std::move(p));
  }
  if (have_boundary) {
    AdvanceBatch(detector, std::move(batch), next_boundary, &acc, sink);
  }
  return acc.Finish();
}

}  // namespace

RunMetrics RunStream(const Workload& workload, StreamSource* source,
                     OutlierDetector* detector, const ResultSink& sink) {
  SOP_CHECK(source != nullptr && detector != nullptr);
  const int64_t batch_span = workload.SlideGcd();
  if (workload.window_type() == WindowType::kCount) {
    return RunCountBased(batch_span, source, detector, sink);
  }
  return RunTimeBased(batch_span, source, detector, sink);
}

RunMetrics RunStream(const Workload& workload, std::vector<Point> points,
                     OutlierDetector* detector, const ResultSink& sink) {
  VectorSource source(std::move(points));
  return RunStream(workload, &source, detector, sink);
}

std::vector<QueryResult> CollectResults(const Workload& workload,
                                        std::vector<Point> points,
                                        OutlierDetector* detector) {
  std::vector<QueryResult> all;
  RunStream(workload, std::move(points), detector,
            [&all](const QueryResult& r) { all.push_back(r); });
  return all;
}

}  // namespace sop
