#include "sop/detector/run_checkpoint.h"

#include <algorithm>

#include "sop/common/fault.h"
#include "sop/common/frame.h"
#include "sop/common/serialize.h"
#include "sop/io/file_util.h"
#include "sop/obs/trace.h"

namespace sop {

namespace {

constexpr uint32_t kRunMagic = 0x53'4f'50'52;  // "SOPR"
constexpr uint32_t kRunFormatVersion = 1;

bool RunError(std::string* error, const char* what) {
  if (error != nullptr) *error = std::string("run checkpoint: ") + what;
  return false;
}

}  // namespace

std::string SerializeRunCheckpoint(const RunCheckpoint& cp) {
  BinaryWriter w;
  w.WriteU32(kRunMagic);
  w.WriteU32(kRunFormatVersion);
  w.WriteU64(cp.workload_fingerprint);
  w.WriteBytes(cp.detector_name);
  w.WriteU32(cp.window_type == WindowType::kCount ? 0 : 1);
  w.WriteI64(cp.batch_span);
  w.WriteI64(cp.points_advanced);
  w.WriteI64(cp.batches_advanced);
  w.WriteI64(cp.last_boundary);
  w.WriteBool(cp.have_boundary);
  w.WriteI64(cp.next_boundary);

  w.WriteU64(cp.history.size());
  for (const RunCheckpoint::Batch& b : cp.history) {
    w.WriteI64(b.boundary);
    w.WriteU64(b.points.size());
    for (const Point& p : b.points) {
      w.WriteI64(p.seq);
      w.WriteI64(p.time);
      w.WriteU32(static_cast<uint32_t>(p.values.size()));
      for (const double v : p.values) w.WriteDouble(v);
    }
  }
  w.WriteBytes(cp.native_state);
  return WrapFrame(w.TakeBytes());
}

bool DeserializeRunCheckpoint(std::string_view bytes, RunCheckpoint* out,
                              std::string* error) {
  std::string_view payload;
  if (!UnwrapFrame(bytes, &payload, error)) return false;
  BinaryReader r(payload);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!r.ReadU32(&magic) || magic != kRunMagic) {
    return RunError(error, "bad payload magic");
  }
  if (!r.ReadU32(&version) || version != kRunFormatVersion) {
    return RunError(error, "unsupported payload format version");
  }
  RunCheckpoint cp;
  uint32_t window_type = 0;
  if (!r.ReadU64(&cp.workload_fingerprint) ||
      !r.ReadBytes(&cp.detector_name) || !r.ReadU32(&window_type) ||
      window_type > 1 || !r.ReadI64(&cp.batch_span) ||
      !r.ReadI64(&cp.points_advanced) || !r.ReadI64(&cp.batches_advanced) ||
      !r.ReadI64(&cp.last_boundary) || !r.ReadBool(&cp.have_boundary) ||
      !r.ReadI64(&cp.next_boundary)) {
    return RunError(error, "truncated header");
  }
  cp.window_type = window_type == 0 ? WindowType::kCount : WindowType::kTime;
  if (cp.batch_span <= 0 || cp.points_advanced < 0 ||
      cp.batches_advanced < 0) {
    return RunError(error, "implausible stream position");
  }

  uint64_t num_batches = 0;
  if (!r.ReadU64(&num_batches)) return RunError(error, "truncated history");
  cp.history.reserve(static_cast<size_t>(num_batches));
  for (uint64_t i = 0; i < num_batches; ++i) {
    RunCheckpoint::Batch b;
    uint64_t num_points = 0;
    if (!r.ReadI64(&b.boundary) || !r.ReadU64(&num_points)) {
      return RunError(error, "truncated history batch");
    }
    b.points.resize(static_cast<size_t>(num_points));
    for (Point& p : b.points) {
      uint32_t dims = 0;
      if (!r.ReadI64(&p.seq) || !r.ReadI64(&p.time) || !r.ReadU32(&dims)) {
        return RunError(error, "truncated history point");
      }
      p.values.resize(dims);
      for (double& v : p.values) {
        if (!r.ReadDouble(&v)) {
          return RunError(error, "truncated history point");
        }
      }
    }
    cp.history.push_back(std::move(b));
  }
  if (!r.ReadBytes(&cp.native_state)) {
    return RunError(error, "truncated native state");
  }
  if (!r.AtEnd()) return RunError(error, "trailing bytes in payload");
  *out = std::move(cp);
  return true;
}

bool SaveRunCheckpoint(const std::string& path, const RunCheckpoint& cp,
                       std::string* error, int generations) {
  FaultInjector* injector = FaultInjector::Armed();
  if (injector != nullptr &&
      injector->ShouldFail(FaultSite::kCheckpointWrite)) {
    return RunError(error, "injected write failure");
  }
  std::string bytes = SerializeRunCheckpoint(cp);
  if (injector != nullptr &&
      injector->ShouldFail(FaultSite::kCheckpointBytes)) {
    injector->CorruptBytes(&bytes);
  }
  io::RotateGenerations(path, generations);
  if (!io::WriteFileAtomic(path, bytes, error)) return false;
  SOP_COUNTER_ADD("resilience/checkpoint_saves", 1);
  return true;
}

bool LoadRunCheckpoint(const std::string& path, RunCheckpoint* out,
                       std::string* error, int generations,
                       int* loaded_generation) {
  FaultInjector* injector = FaultInjector::Armed();
  std::string failures;
  for (int g = 0; g < std::max(generations, 1); ++g) {
    const std::string gen_path = io::GenerationPath(path, g);
    std::string gen_error;
    if (injector != nullptr &&
        injector->ShouldFail(FaultSite::kCheckpointRead)) {
      RunError(&gen_error, "injected read failure");
    } else {
      std::string bytes;
      if (io::ReadFileToString(gen_path, &bytes, &gen_error) &&
          DeserializeRunCheckpoint(bytes, out, &gen_error)) {
        if (g > 0) SOP_COUNTER_ADD("resilience/checkpoint_fallbacks", 1);
        if (loaded_generation != nullptr) *loaded_generation = g;
        return true;
      }
    }
    if (!failures.empty()) failures += "; ";
    failures += gen_path + ": " + gen_error;
  }
  if (error != nullptr) *error = failures;
  return false;
}

}  // namespace sop
