// RunCheckpoint: the engine-level crash-recovery unit.
//
// A run checkpoint captures everything ExecutionEngine needs to resume a
// detector run mid-stream and produce emissions identical to a run that
// was never interrupted:
//
//   * identity guards — workload fingerprint, detector name, window type
//     and batch span; restore refuses a checkpoint taken under different
//     semantics,
//   * stream position — how many points and batches have been advanced and
//     the boundary bookkeeping needed to continue the batch schedule,
//   * detector state — either the detector's own native blob (exact, with
//     counters; SopDetector) or the retained tail of batches within the
//     largest window's reach, replayed through a fresh detector on restore
//     (emission-equivalent for every detector, since each algorithm's
//     answers are a deterministic function of its window contents).
//
// On disk a checkpoint is one common/frame.h frame (magic + version +
// length + CRC-32) written atomically via temp-file + rename
// (io/file_util.h), so a crashed writer can never leave a half-written
// checkpoint where a reader will trust it; LoadRunCheckpoint rejects
// truncated, corrupted, or cross-version files with a diagnostic.
//
// Save/Load consult the armed FaultInjector (common/fault.h) at the
// checkpoint-write / checkpoint-read / checkpoint-bytes sites, which is
// how the corruption drills exercise these paths end to end.

#ifndef SOP_DETECTOR_RUN_CHECKPOINT_H_
#define SOP_DETECTOR_RUN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sop/common/point.h"
#include "sop/stream/window.h"

namespace sop {

/// Snapshot of one engine run in progress. See file comment.
struct RunCheckpoint {
  /// Identity guards.
  uint64_t workload_fingerprint = 0;
  std::string detector_name;
  WindowType window_type = WindowType::kCount;
  int64_t batch_span = 0;

  /// Stream position: points contained in advanced batches (the resumed
  /// run skips this many source records) and the boundary schedule.
  int64_t points_advanced = 0;
  int64_t batches_advanced = 0;
  int64_t last_boundary = 0;
  bool have_boundary = false;   // time-based: first boundary established
  int64_t next_boundary = 0;    // time-based: next boundary to advance at

  /// Replay tail for detectors without native state: the advanced batches
  /// whose points are still within the largest window's reach.
  struct Batch {
    int64_t boundary = 0;
    std::vector<Point> points;
  };
  std::vector<Batch> history;

  /// Native detector blob (itself framed by the detector); empty when the
  /// detector has no native state support and `history` must be replayed.
  std::string native_state;
};

/// Serializes `cp` into one framed, checksummed byte string.
std::string SerializeRunCheckpoint(const RunCheckpoint& cp);

/// Parses a framed checkpoint. Returns false with a diagnostic in `*error`
/// on any truncation, corruption, or version mismatch.
bool DeserializeRunCheckpoint(std::string_view bytes, RunCheckpoint* out,
                              std::string* error);

/// Atomically writes `cp` to `path` (temp + rename). Consults the armed
/// FaultInjector: an injected checkpoint-write failure returns false (the
/// previous checkpoint at `path` survives); injected checkpoint-bytes
/// corruption flips a bit in the written frame (reads must then reject it).
///
/// With `generations > 1` the previous files are first rotated one slot
/// older (path -> path.1 -> ... -> path.<generations-1>,
/// io::RotateGenerations), so the last `generations` complete checkpoints
/// survive on disk and LoadRunCheckpoint can fall back past a corrupt
/// newest one.
bool SaveRunCheckpoint(const std::string& path, const RunCheckpoint& cp,
                       std::string* error, int generations = 1);

/// Reads and validates the checkpoint at `path`. Returns false with a
/// diagnostic on missing/unreadable files, injected read failures, and
/// every form of corruption the frame detects.
///
/// With `generations > 1`, a newest generation that is missing, corrupt,
/// or hit by an injected read failure does not end the restore: each older
/// generation is tried in turn and the first one that validates wins
/// (resuming there replays a longer stream suffix, which is correct —
/// checkpoints are prefixes of one deterministic run). `*error`
/// accumulates one line per rejected generation; `*loaded_generation`
/// (optional) reports which slot was used.
bool LoadRunCheckpoint(const std::string& path, RunCheckpoint* out,
                       std::string* error, int generations = 1,
                       int* loaded_generation = nullptr);

}  // namespace sop

#endif  // SOP_DETECTOR_RUN_CHECKPOINT_H_
