// StreamDriver: feeds a stream through a detector with the normative batch
// and emission schedule, timing each batch and tracking peak memory.
//
// This plays the role the HP CHAOS stream engine played in the paper's
// experimental setup: windowing, scheduling and measurement around the
// detection algorithm under test.
//
// These free functions are thin wrappers over a serial ExecutionEngine
// (detector/engine.h) — the engine owns the actual batching loop and the
// optional thread pool. Existing call sites keep working unchanged; code
// that wants partition-parallel execution or a reusable pool constructs an
// ExecutionEngine directly.

#ifndef SOP_DETECTOR_DRIVER_H_
#define SOP_DETECTOR_DRIVER_H_

#include "sop/detector/detector.h"
#include "sop/detector/engine.h"
#include "sop/detector/metrics.h"
#include "sop/query/workload.h"
#include "sop/stream/source.h"

namespace sop {

/// Drives `detector` over `source` under `workload`'s window semantics
/// with a serial, single-use engine. See ExecutionEngine::Run for the
/// batching/emission contract.
RunMetrics RunStream(const Workload& workload, StreamSource* source,
                     OutlierDetector* detector, const ResultSink& sink = {});

/// Convenience overload over an in-memory stream.
RunMetrics RunStream(const Workload& workload, std::vector<Point> points,
                     OutlierDetector* detector, const ResultSink& sink = {});

/// Runs the stream and collects every result (test helper).
std::vector<QueryResult> CollectResults(const Workload& workload,
                                        std::vector<Point> points,
                                        OutlierDetector* detector);

}  // namespace sop

#endif  // SOP_DETECTOR_DRIVER_H_
