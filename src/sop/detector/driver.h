// StreamDriver: feeds a stream through a detector with the normative batch
// and emission schedule, timing each batch and tracking peak memory.
//
// This plays the role the HP CHAOS stream engine played in the paper's
// experimental setup: windowing, scheduling and measurement around the
// detection algorithm under test.

#ifndef SOP_DETECTOR_DRIVER_H_
#define SOP_DETECTOR_DRIVER_H_

#include <functional>

#include "sop/detector/detector.h"
#include "sop/detector/metrics.h"
#include "sop/query/workload.h"
#include "sop/stream/source.h"

namespace sop {

/// Callback receiving every QueryResult as it is produced. May be null.
using ResultSink = std::function<void(const QueryResult&)>;

/// Drives `detector` over `source` under `workload`'s window semantics.
///
/// Batch boundaries are multiples of the workload slide gcd. For
/// count-based workloads, one batch per gcd points; the trailing partial
/// batch (stream length not a multiple of the gcd) is never emitted. For
/// time-based workloads, batches cover gcd-sized time spans; empty spans
/// still advance the windows, and the run ends at the first boundary
/// covering the last point.
///
/// Detector CPU time is measured around Advance() only; source decoding
/// and result sinking are excluded.
RunMetrics RunStream(const Workload& workload, StreamSource* source,
                     OutlierDetector* detector, const ResultSink& sink = {});

/// Convenience overload over an in-memory stream.
RunMetrics RunStream(const Workload& workload, std::vector<Point> points,
                     OutlierDetector* detector, const ResultSink& sink = {});

/// Runs the stream and collects every result (test helper).
std::vector<QueryResult> CollectResults(const Workload& workload,
                                        std::vector<Point> points,
                                        OutlierDetector* detector);

}  // namespace sop

#endif  // SOP_DETECTOR_DRIVER_H_
