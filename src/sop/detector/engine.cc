#include "sop/detector/engine.h"

#include <string>
#include <thread>
#include <utility>

#include "sop/common/check.h"
#include "sop/common/stopwatch.h"
#include "sop/detector/partitioned.h"
#include "sop/obs/trace.h"
#include "sop/stream/window.h"

namespace sop {

namespace {

// Attaches the engine's pool to a partition-parallel detector for the
// duration of one run, restoring the previous (normally null) pool on every
// exit path.
class ScopedPoolAttachment {
 public:
  ScopedPoolAttachment(OutlierDetector* detector, ThreadPool* pool) {
    if (pool == nullptr) return;
    partitioned_ = dynamic_cast<PartitionedDetector*>(detector);
    if (partitioned_ == nullptr) return;
    previous_ = partitioned_->thread_pool();
    partitioned_->set_thread_pool(pool);
  }
  ~ScopedPoolAttachment() {
    if (partitioned_ != nullptr) partitioned_->set_thread_pool(previous_);
  }

 private:
  PartitionedDetector* partitioned_ = nullptr;
  ThreadPool* previous_ = nullptr;
};

}  // namespace

ExecutionEngine::ExecutionEngine(ExecOptions options) : options_(options) {
  SOP_CHECK_MSG(options_.num_threads >= 0, "num_threads must be >= 0");
  if (options_.num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.num_threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

ExecutionEngine::~ExecutionEngine() = default;

void ExecutionEngine::AdvanceBatch(OutlierDetector* detector,
                                   std::vector<Point> batch, int64_t boundary,
                                   MetricsAccumulator* acc,
                                   const ResultSink& sink) {
  const size_t batch_points = batch.size();
  Stopwatch watch;
  std::vector<QueryResult> results =
      detector->Advance(std::move(batch), boundary);
  const double cpu_ms = watch.ElapsedMillis();
  uint64_t outliers = 0;
  for (const QueryResult& r : results) outliers += r.outliers.size();
  acc->RecordBatch(cpu_ms, detector->MemoryBytes(), results.size(), outliers);
  if (obs::Enabled()) {
    SOP_COUNTER_ADD("engine/batches", 1);
    SOP_COUNTER_ADD("engine/points", batch_points);
    SOP_COUNTER_ADD("engine/emissions", results.size());
    SOP_COUNTER_ADD("engine/outliers", outliers);
    SOP_HISTOGRAM_RECORD("engine/batch_ms", cpu_ms);
    // Per-query attribution: names are computed, so the handles cannot be
    // cached per call site like the macros do; cache them per query index
    // instead (registry handles are lifetime-stable).
    for (const QueryResult& r : results) {
      while (query_counters_.size() <= r.query_index) {
        const std::string prefix =
            "query/" + std::to_string(query_counters_.size());
        auto& registry = obs::MetricsRegistry::Global();
        query_counters_.emplace_back(
            &registry.GetCounter(prefix + "/emissions"),
            &registry.GetCounter(prefix + "/outliers"));
      }
      query_counters_[r.query_index].first->Increment();
      query_counters_[r.query_index].second->Add(r.outliers.size());
    }
  }
  if (sink) {
    for (const QueryResult& r : results) sink(r);
  }
}

RunMetrics ExecutionEngine::RunCountBased(int64_t batch_span,
                                          StreamSource* source,
                                          OutlierDetector* detector,
                                          const ResultSink& sink) {
  MetricsAccumulator acc;
  std::vector<Point> batch;
  batch.reserve(static_cast<size_t>(batch_span));
  Seq seq = 0;
  Point p;
  while (source->Next(&p)) {
    p.seq = seq++;
    acc.RecordPoints(1);
    batch.push_back(std::move(p));
    if (static_cast<int64_t>(batch.size()) == batch_span) {
      AdvanceBatch(detector, std::move(batch), seq, &acc, sink);
      batch = {};
      batch.reserve(static_cast<size_t>(batch_span));
    }
  }
  // A trailing partial batch never reaches a boundary and is dropped.
  return acc.Finish();
}

RunMetrics ExecutionEngine::RunTimeBased(int64_t batch_span,
                                         StreamSource* source,
                                         OutlierDetector* detector,
                                         const ResultSink& sink) {
  MetricsAccumulator acc;
  std::vector<Point> batch;
  Seq seq = 0;
  Timestamp last_time = 0;
  bool have_boundary = false;
  int64_t next_boundary = 0;
  Point p;
  while (source->Next(&p)) {
    if (seq > 0) {
      SOP_CHECK_MSG(p.time >= last_time,
                    "time-based streams must have non-decreasing timestamps");
    }
    last_time = p.time;
    if (!have_boundary) {
      // The first boundary strictly after the first point's timestamp.
      next_boundary = FirstBoundaryAtOrAfter(p.time + 1, batch_span);
      have_boundary = true;
    }
    while (p.time >= next_boundary) {
      AdvanceBatch(detector, std::move(batch), next_boundary, &acc, sink);
      batch = {};
      next_boundary += batch_span;
    }
    p.seq = seq++;
    acc.RecordPoints(1);
    batch.push_back(std::move(p));
  }
  if (have_boundary) {
    AdvanceBatch(detector, std::move(batch), next_boundary, &acc, sink);
  }
  return acc.Finish();
}

RunMetrics ExecutionEngine::Run(const Workload& workload, StreamSource* source,
                                OutlierDetector* detector,
                                const ResultSink& sink) {
  SOP_CHECK(source != nullptr && detector != nullptr);
  ScopedPoolAttachment attachment(detector, pool_.get());
  const int64_t batch_span = workload.SlideGcd();
  if (workload.window_type() == WindowType::kCount) {
    return RunCountBased(batch_span, source, detector, sink);
  }
  return RunTimeBased(batch_span, source, detector, sink);
}

RunMetrics ExecutionEngine::Run(const Workload& workload,
                                std::vector<Point> points,
                                OutlierDetector* detector,
                                const ResultSink& sink) {
  VectorSource source(std::move(points));
  return Run(workload, &source, detector, sink);
}

}  // namespace sop
