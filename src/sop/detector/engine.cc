#include "sop/detector/engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "sop/common/check.h"
#include "sop/common/fault.h"
#include "sop/common/stopwatch.h"
#include "sop/detector/partitioned.h"
#include "sop/obs/trace.h"
#include "sop/stream/window.h"

namespace sop {

namespace {

// Attaches the engine's pool to a partition-parallel detector for the
// duration of one run, restoring the previous (normally null) pool on every
// exit path.
class ScopedPoolAttachment {
 public:
  ScopedPoolAttachment(OutlierDetector* detector, ThreadPool* pool) {
    if (pool == nullptr) return;
    partitioned_ = dynamic_cast<PartitionedDetector*>(detector);
    if (partitioned_ == nullptr) return;
    previous_ = partitioned_->thread_pool();
    partitioned_->set_thread_pool(pool);
  }
  ~ScopedPoolAttachment() {
    if (partitioned_ != nullptr) partitioned_->set_thread_pool(previous_);
  }

 private:
  PartitionedDetector* partitioned_ = nullptr;
  ThreadPool* previous_ = nullptr;
};

}  // namespace

// Per-run mutable state. In pipelined mode the context is handed to the
// worker thread for the duration of the pipeline (the ingest side touches
// only the source and the queue) and handed back at join.
struct ExecutionEngine::RunContext {
  RunContext(const ExecOptions& options, const Workload& workload_in,
             OutlierDetector* detector_in)
      : workload(&workload_in),
        detector(detector_in),
        batch_span(workload_in.SlideGcd()),
        max_window(workload_in.MaxWindow()) {
    query_windows.reserve(workload_in.num_queries());
    for (const OutlierQuery& q : workload_in.queries()) {
      query_windows.push_back(q.win);
    }
    checkpoint_enabled = !options.checkpoint.path.empty();
    use_native = checkpoint_enabled && detector_in->SupportsNativeState();
  }

  const Workload* workload;
  OutlierDetector* detector;
  int64_t batch_span;
  int64_t max_window;
  std::vector<int64_t> query_windows;

  MetricsAccumulator acc;

  // Stream position. `next_seq` is the seq the next ingested point gets;
  // `points_advanced` counts only points inside advanced batches (a resumed
  // run re-reads the trailing partial batch).
  Seq next_seq = 0;
  int64_t points_advanced = 0;
  int64_t batches_advanced = 0;
  int64_t last_boundary = 0;
  bool have_boundary = false;  // time-based: boundary schedule established
  int64_t next_boundary = 0;   // time-based: next boundary to advance at

  // Crash-consistency. `history` is the replay tail (only maintained when
  // checkpointing without native detector state).
  bool checkpoint_enabled = false;
  bool use_native = false;
  std::deque<RunCheckpoint::Batch> history;

  // Degradation: half-open key intervals lost to overload shedding. An
  // emission whose window overlaps one is flagged degraded.
  std::vector<std::pair<int64_t, int64_t>> shed_intervals;
};

// One ingested batch waiting for the detection worker.
struct ExecutionEngine::Pending {
  std::vector<Point> points;
  int64_t boundary = 0;        // time-based only; count boundaries are
                               // assigned by the worker after shedding
  int64_t first_boundary = 0;  // time-based: the schedule origin, so the
                               // worker can fill holes even when the first
                               // batches themselves were shed
  uint32_t sheds_before = 0;   // count-based: batches shed before this one
};

// The bounded ingest->detection queue. Under kBlock a full queue exerts
// backpressure on the ingest thread; under kDropOldest it sheds the oldest
// queued batch, crediting the shed to the next batch the worker will see.
class ExecutionEngine::BatchQueue {
 public:
  BatchQueue(size_t capacity, OverloadPolicy policy)
      : capacity_(capacity), policy_(policy) {}

  void Push(Pending pending) {
    std::unique_lock<std::mutex> lock(mu_);
    if (policy_ == OverloadPolicy::kBlock) {
      can_push_.wait(lock, [this] { return queue_.size() < capacity_; });
    } else if (queue_.size() >= capacity_) {
      Pending victim = std::move(queue_.front());
      queue_.pop_front();
      ++dropped_batches_;
      dropped_points_ += victim.points.size();
      const uint32_t carried = victim.sheds_before + 1;
      if (!queue_.empty()) {
        queue_.front().sheds_before += carried;
      } else {
        pending.sheds_before += carried;
      }
    }
    queue_.push_back(std::move(pending));
    can_pop_.notify_one();
  }

  // Blocks until a batch is available or the queue is closed and drained.
  bool Pop(Pending* out) {
    std::unique_lock<std::mutex> lock(mu_);
    can_pop_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    can_push_.notify_one();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    can_pop_.notify_all();
  }

  uint64_t dropped_batches() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_batches_;
  }
  uint64_t dropped_points() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_points_;
  }

 private:
  const size_t capacity_;
  const OverloadPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<Pending> queue_;
  bool closed_ = false;
  uint64_t dropped_batches_ = 0;
  uint64_t dropped_points_ = 0;
};

ExecutionEngine::ExecutionEngine(ExecOptions options) : options_(options) {
  SOP_CHECK_MSG(options_.num_threads >= 0, "num_threads must be >= 0");
  SOP_CHECK_MSG(options_.retry.max_attempts >= 1,
                "retry.max_attempts must be >= 1");
  SOP_CHECK_MSG(
      options_.checkpoint.path.empty() || options_.checkpoint.every_batches >= 1,
      "checkpoint.every_batches must be >= 1");
  if (options_.num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.num_threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

ExecutionEngine::~ExecutionEngine() = default;

bool ExecutionEngine::SourceNext(StreamSource* source, Point* out) {
  FaultInjector* injector = FaultInjector::Armed();
  if (injector != nullptr) {
    int attempt = 1;
    int backoff_us = options_.retry.backoff_initial_us;
    while (injector->ShouldFail(FaultSite::kSourceRead)) {
      SOP_COUNTER_ADD("resilience/retries", 1);
      ++attempt;
      SOP_CHECK_MSG(attempt <= options_.retry.max_attempts,
                    "stream read still failing after retries");
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us = std::min(backoff_us * 2, options_.retry.backoff_max_us);
    }
  }
  return source->Next(out);
}

void ExecutionEngine::EmitResult(const RunContext& ctx, const ResultSink& sink,
                                 const QueryResult& r) {
  (void)ctx;
  FaultInjector* injector = FaultInjector::Armed();
  if (injector != nullptr) {
    int attempt = 1;
    int backoff_us = options_.retry.backoff_initial_us;
    while (injector->ShouldFail(FaultSite::kSinkEmit)) {
      SOP_COUNTER_ADD("resilience/retries", 1);
      ++attempt;
      SOP_CHECK_MSG(attempt <= options_.retry.max_attempts,
                    "result delivery still failing after retries");
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us = std::min(backoff_us * 2, options_.retry.backoff_max_us);
    }
  }
  sink(r);
}

void ExecutionEngine::WriteCheckpoint(RunContext* ctx) {
  RunCheckpoint cp;
  cp.workload_fingerprint = ctx->workload->Fingerprint();
  cp.detector_name = ctx->detector->name();
  cp.window_type = ctx->workload->window_type();
  cp.batch_span = ctx->batch_span;
  cp.points_advanced = ctx->points_advanced;
  cp.batches_advanced = ctx->batches_advanced;
  cp.last_boundary = ctx->last_boundary;
  cp.have_boundary = ctx->have_boundary;
  cp.next_boundary = ctx->next_boundary;
  if (ctx->use_native) {
    cp.native_state = ctx->detector->SaveState();
  } else {
    cp.history.assign(ctx->history.begin(), ctx->history.end());
  }
  std::string error;
  if (!SaveRunCheckpoint(options_.checkpoint.path, cp, &error,
                         options_.checkpoint.generations)) {
    // Best-effort: a failed write leaves the previous checkpoint at the
    // path intact and the run continues (the fault model treats checkpoint
    // writes as non-critical; see DESIGN.md Sec. 12).
    SOP_COUNTER_ADD("resilience/checkpoint_write_failures", 1);
  }
}

bool ExecutionEngine::ApplyResume(RunContext* ctx, const RunCheckpoint& cp,
                                  StreamSource* source, std::string* error) {
  auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = "resume: " + what;
    return false;
  };
  if (cp.workload_fingerprint != ctx->workload->Fingerprint()) {
    return fail("workload fingerprint mismatch");
  }
  if (cp.detector_name != ctx->detector->name()) {
    return fail("checkpoint was taken by detector '" + cp.detector_name +
                "', not '" + ctx->detector->name() + "'");
  }
  if (cp.window_type != ctx->workload->window_type()) {
    return fail("window type mismatch");
  }
  if (cp.batch_span != ctx->batch_span) {
    return fail("batch span mismatch");
  }

  if (!cp.native_state.empty()) {
    std::string inner;
    if (!ctx->detector->SupportsNativeState()) {
      return fail("checkpoint carries native state this detector cannot load");
    }
    if (!ctx->detector->LoadState(cp.native_state, &inner)) {
      return fail(inner.empty() ? "native state restore failed" : inner);
    }
  } else {
    // Replay the retained window tail through the fresh detector, dropping
    // the (already delivered) emissions. Equivalent for any detector whose
    // answers are a function of its window contents.
    for (const RunCheckpoint::Batch& b : cp.history) {
      std::vector<Point> replay = b.points;
      ctx->detector->Advance(std::move(replay), b.boundary);
    }
  }

  // Skip the source records the checkpoint already advanced; the trailing
  // partial batch of the interrupted run is re-read.
  Point discard;
  for (int64_t i = 0; i < cp.points_advanced; ++i) {
    if (!SourceNext(source, &discard)) {
      return fail("source ended before the checkpointed position "
                  "(resumed against a different stream?)");
    }
  }

  ctx->next_seq = cp.points_advanced;
  ctx->points_advanced = cp.points_advanced;
  ctx->batches_advanced = cp.batches_advanced;
  ctx->last_boundary = cp.last_boundary;
  ctx->have_boundary = cp.have_boundary;
  ctx->next_boundary = cp.next_boundary;
  if (ctx->checkpoint_enabled && !ctx->use_native) {
    ctx->history.assign(cp.history.begin(), cp.history.end());
  }
  SOP_COUNTER_ADD("resilience/checkpoint_restores", 1);
  return true;
}

void ExecutionEngine::AdvanceBatch(RunContext* ctx, std::vector<Point> batch,
                                   int64_t boundary, const ResultSink& sink) {
  FaultInjector* injector = FaultInjector::Armed();
  if (injector != nullptr && injector->ShouldFail(FaultSite::kBatchStall)) {
    SOP_COUNTER_ADD("resilience/stalls", 1);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(injector->stall_millis()));
  }
  const size_t batch_points = batch.size();
  if (ctx->checkpoint_enabled && !ctx->use_native) {
    // Retain the batch (before handing it to the detector) while any future
    // window can still reach into it, mirroring the detector's own expiry.
    ctx->history.push_back(RunCheckpoint::Batch{boundary, batch});
    const int64_t horizon = boundary - ctx->max_window;
    while (!ctx->history.empty() && ctx->history.front().boundary <= horizon) {
      ctx->history.pop_front();
    }
  }
  Stopwatch watch;
  std::vector<QueryResult> results =
      ctx->detector->Advance(std::move(batch), boundary);
  const double cpu_ms = watch.ElapsedMillis();
  if (!ctx->shed_intervals.empty()) {
    const int64_t horizon = boundary - ctx->max_window;
    ctx->shed_intervals.erase(
        std::remove_if(ctx->shed_intervals.begin(), ctx->shed_intervals.end(),
                       [horizon](const std::pair<int64_t, int64_t>& iv) {
                         return iv.second <= horizon;
                       }),
        ctx->shed_intervals.end());
    uint64_t degraded = 0;
    for (QueryResult& r : results) {
      const int64_t start = boundary - ctx->query_windows[r.query_index];
      for (const std::pair<int64_t, int64_t>& iv : ctx->shed_intervals) {
        if (iv.first < boundary && iv.second > start) {
          r.degraded = true;
          ++degraded;
          break;
        }
      }
    }
    if (degraded > 0) ctx->acc.RecordDegraded(degraded);
  }
  uint64_t outliers = 0;
  for (const QueryResult& r : results) outliers += r.outliers.size();
  ctx->acc.RecordBatch(cpu_ms, ctx->detector->MemoryBytes(), results.size(),
                       outliers);
  if (obs::Enabled()) {
    SOP_COUNTER_ADD("engine/batches", 1);
    SOP_COUNTER_ADD("engine/points", batch_points);
    SOP_COUNTER_ADD("engine/emissions", results.size());
    SOP_COUNTER_ADD("engine/outliers", outliers);
    SOP_HISTOGRAM_RECORD("engine/batch_ms", cpu_ms);
    // Per-query attribution: names are computed, so the handles cannot be
    // cached per call site like the macros do; cache them per query index
    // instead (registry handles are lifetime-stable).
    for (const QueryResult& r : results) {
      while (query_counters_.size() <= r.query_index) {
        const std::string prefix =
            "query/" + std::to_string(query_counters_.size());
        auto& registry = obs::MetricsRegistry::Global();
        query_counters_.emplace_back(
            &registry.GetCounter(prefix + "/emissions"),
            &registry.GetCounter(prefix + "/outliers"));
      }
      query_counters_[r.query_index].first->Increment();
      query_counters_[r.query_index].second->Add(r.outliers.size());
    }
  }
  if (sink) {
    for (const QueryResult& r : results) EmitResult(*ctx, sink, r);
  }
  ctx->points_advanced += static_cast<int64_t>(batch_points);
  ++ctx->batches_advanced;
  ctx->last_boundary = boundary;
  if (ctx->have_boundary) ctx->next_boundary = boundary + ctx->batch_span;
  if (ctx->checkpoint_enabled &&
      ctx->batches_advanced % options_.checkpoint.every_batches == 0) {
    WriteCheckpoint(ctx);
  }
}

RunMetrics ExecutionEngine::RunCountBased(RunContext* ctx,
                                          StreamSource* source,
                                          const ResultSink& sink) {
  std::vector<Point> batch;
  batch.reserve(static_cast<size_t>(ctx->batch_span));
  Point p;
  while (SourceNext(source, &p)) {
    p.seq = ctx->next_seq++;
    ctx->acc.RecordPoints(1);
    batch.push_back(std::move(p));
    if (static_cast<int64_t>(batch.size()) == ctx->batch_span) {
      AdvanceBatch(ctx, std::move(batch), ctx->next_seq, sink);
      batch = {};
      batch.reserve(static_cast<size_t>(ctx->batch_span));
    }
  }
  // A trailing partial batch never reaches a boundary and is dropped.
  return ctx->acc.Finish();
}

RunMetrics ExecutionEngine::RunTimeBased(RunContext* ctx, StreamSource* source,
                                         const ResultSink& sink) {
  std::vector<Point> batch;
  Timestamp last_time = 0;
  bool read_any = false;
  Point p;
  while (SourceNext(source, &p)) {
    if (read_any) {
      SOP_CHECK_MSG(p.time >= last_time,
                    "time-based streams must have non-decreasing timestamps");
    }
    read_any = true;
    last_time = p.time;
    if (!ctx->have_boundary) {
      // The first boundary strictly after the first point's timestamp.
      ctx->next_boundary = FirstBoundaryAtOrAfter(p.time + 1, ctx->batch_span);
      ctx->have_boundary = true;
    }
    while (p.time >= ctx->next_boundary) {
      // AdvanceBatch moves next_boundary forward one span.
      AdvanceBatch(ctx, std::move(batch), ctx->next_boundary, sink);
      batch = {};
    }
    p.seq = ctx->next_seq++;
    ctx->acc.RecordPoints(1);
    batch.push_back(std::move(p));
  }
  // `read_any` (not have_boundary) gates the flush so that resuming a run
  // that was already complete does not re-advance its final boundary.
  if (ctx->have_boundary && read_any) {
    AdvanceBatch(ctx, std::move(batch), ctx->next_boundary, sink);
  }
  return ctx->acc.Finish();
}

void ExecutionEngine::ProcessPending(RunContext* ctx, Pending pending,
                                     const ResultSink& sink) {
  if (ctx->workload->window_type() == WindowType::kCount) {
    if (pending.sheds_before > 0) {
      // Count-based shedding compacts the stream: later arrivals shift down
      // in seq space. Flag windows that cover the splice position.
      ctx->shed_intervals.emplace_back(ctx->next_seq, ctx->next_seq + 1);
    }
    for (Point& p : pending.points) p.seq = ctx->next_seq++;
    AdvanceBatch(ctx, std::move(pending.points), ctx->next_seq, sink);
    return;
  }
  if (!ctx->have_boundary) {
    ctx->have_boundary = true;
    ctx->next_boundary = pending.first_boundary;
  }
  // Shed batches leave holes in the boundary schedule; advance empty filler
  // batches there so emission cadence and expiry continue (time keys are
  // unaffected by drops), with the lost span flagged for degradation.
  while (ctx->next_boundary < pending.boundary) {
    ctx->shed_intervals.emplace_back(ctx->next_boundary - ctx->batch_span,
                                     ctx->next_boundary);
    AdvanceBatch(ctx, {}, ctx->next_boundary, sink);
  }
  for (Point& p : pending.points) p.seq = ctx->next_seq++;
  AdvanceBatch(ctx, std::move(pending.points), pending.boundary, sink);
}

RunMetrics ExecutionEngine::RunPipelined(RunContext* ctx, StreamSource* source,
                                         const ResultSink& sink) {
  BatchQueue queue(options_.overload.max_queue_batches,
                   options_.overload.policy);
  std::thread worker([this, ctx, &queue, &sink] {
    Pending pending;
    while (queue.Pop(&pending)) {
      ProcessPending(ctx, std::move(pending), sink);
      pending = Pending{};
    }
  });

  const bool count_based =
      ctx->workload->window_type() == WindowType::kCount;
  // The ingest side owns the boundary schedule (a pure function of the
  // timestamps, unaffected by drops); the worker owns everything else in
  // the context until join.
  bool have_boundary = ctx->have_boundary;
  int64_t next_boundary = ctx->next_boundary;
  int64_t origin_boundary = ctx->next_boundary;
  int64_t ingested = 0;
  Timestamp last_time = 0;
  bool read_any = false;
  Pending pending;
  Point p;
  while (SourceNext(source, &p)) {
    ++ingested;
    if (count_based) {
      pending.points.push_back(std::move(p));
      if (static_cast<int64_t>(pending.points.size()) == ctx->batch_span) {
        queue.Push(std::move(pending));
        pending = Pending{};
      }
    } else {
      if (read_any) {
        SOP_CHECK_MSG(
            p.time >= last_time,
            "time-based streams must have non-decreasing timestamps");
      }
      last_time = p.time;
      if (!have_boundary) {
        next_boundary = FirstBoundaryAtOrAfter(p.time + 1, ctx->batch_span);
        origin_boundary = next_boundary;
        have_boundary = true;
      }
      while (p.time >= next_boundary) {
        pending.boundary = next_boundary;
        pending.first_boundary = origin_boundary;
        queue.Push(std::move(pending));
        pending = Pending{};
        next_boundary += ctx->batch_span;
      }
      pending.points.push_back(std::move(p));
    }
    read_any = true;
  }
  if (!count_based && have_boundary && read_any) {
    pending.boundary = next_boundary;
    pending.first_boundary = origin_boundary;
    queue.Push(std::move(pending));
  }
  // The count-based trailing partial batch is dropped, as in the serial
  // path.
  queue.Close();
  worker.join();
  ctx->acc.RecordPoints(ingested);
  const uint64_t shed_batches = queue.dropped_batches();
  const uint64_t shed_points = queue.dropped_points();
  if (shed_batches > 0) {
    ctx->acc.RecordShedding(shed_batches, shed_points);
    SOP_COUNTER_ADD("resilience/shed_batches", shed_batches);
    SOP_COUNTER_ADD("resilience/shed_points", shed_points);
  }
  return ctx->acc.Finish();
}

RunMetrics ExecutionEngine::RunLoop(RunContext* ctx, StreamSource* source,
                                    const ResultSink& sink) {
  ScopedPoolAttachment attachment(ctx->detector, pool_.get());
  if (options_.overload.max_queue_batches > 0) {
    return RunPipelined(ctx, source, sink);
  }
  if (ctx->workload->window_type() == WindowType::kCount) {
    return RunCountBased(ctx, source, sink);
  }
  return RunTimeBased(ctx, source, sink);
}

RunMetrics ExecutionEngine::Run(const Workload& workload, StreamSource* source,
                                OutlierDetector* detector,
                                const ResultSink& sink) {
  SOP_CHECK(source != nullptr && detector != nullptr);
  RunContext ctx(options_, workload, detector);
  return RunLoop(&ctx, source, sink);
}

RunMetrics ExecutionEngine::Run(const Workload& workload,
                                std::vector<Point> points,
                                OutlierDetector* detector,
                                const ResultSink& sink) {
  VectorSource source(std::move(points));
  return Run(workload, &source, detector, sink);
}

bool ExecutionEngine::RunResumed(const Workload& workload,
                                 StreamSource* source,
                                 OutlierDetector* detector,
                                 const RunCheckpoint& cp, RunMetrics* metrics,
                                 std::string* error, const ResultSink& sink) {
  SOP_CHECK(source != nullptr && detector != nullptr && metrics != nullptr);
  RunContext ctx(options_, workload, detector);
  if (!ApplyResume(&ctx, cp, source, error)) return false;
  *metrics = RunLoop(&ctx, source, sink);
  return true;
}

}  // namespace sop
