// Generic partitioned execution: split a workload into sub-workloads by an
// arbitrary per-query key, run one child detector per partition over the
// same stream, and merge results back to the original query indices.
//
// Used by the multi-attribute divide-and-conquer wrapper (partition =
// attribute set, core/multi_attribute.h) and by the paper's Sec. 3.2
// strawman that keeps one skyband query per k-group
// (core/grouped_sop.h).
//
// Children are fully independent (each owns its stream buffer, evidence
// and index), so Advance() can fan them out across a ThreadPool — the
// partition layer of the execution engine (detector/engine.h). Parallel
// execution is opt-in via set_thread_pool(); the default stays serial and
// the merged result stream is identical either way (see DESIGN.md
// Sec. 10).

#ifndef SOP_DETECTOR_PARTITIONED_H_
#define SOP_DETECTOR_PARTITIONED_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sop/common/thread_pool.h"
#include "sop/detector/detector.h"
#include "sop/query/workload.h"

namespace sop {

/// Builds the child detector for one sub-workload.
using ChildDetectorFactory =
    std::function<std::unique_ptr<OutlierDetector>(const Workload&)>;

/// Runs one child detector per distinct partition key.
class PartitionedDetector : public OutlierDetector {
 public:
  /// `partition_keys[i]` assigns workload query `i` to a partition;
  /// queries sharing a key form one sub-workload (in workload order).
  PartitionedDetector(std::string name, const Workload& workload,
                      const std::vector<int>& partition_keys,
                      const ChildDetectorFactory& factory);

  const char* name() const override { return name_.c_str(); }
  std::vector<QueryResult> Advance(std::vector<Point> batch,
                                   int64_t boundary) override;
  size_t MemoryBytes() const override;

  /// Attaches a worker pool (not owned; must outlive every Advance call):
  /// subsequent batches fan the independent children out across it. Child
  /// futures are joined in child order, so results — and any child
  /// exception — surface deterministically, byte-identical to serial
  /// execution. Pass nullptr to return to serial.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  size_t num_children() const { return children_.size(); }
  const OutlierDetector& child(size_t i) const {
    return *children_[i].detector;
  }

 protected:
  /// Lets subclasses refine the display name once children exist.
  void set_name(std::string name) { name_ = std::move(name); }

  /// Mutable child access for subclasses that know the concrete child type
  /// (e.g. for in-place overlay swaps). Index must be < num_children().
  OutlierDetector* mutable_child(size_t i) {
    return children_[i].detector.get();
  }

  /// Replaces child `i`'s local-to-global query index remapping after a
  /// subclass re-partitioned the workload in place.
  void set_child_mapping(size_t i, std::vector<size_t> local_to_global) {
    children_[i].local_to_global = std::move(local_to_global);
  }

 private:
  struct Child {
    std::unique_ptr<OutlierDetector> detector;
    std::vector<size_t> local_to_global;  // query index remapping
  };

  // Runs every child over its copy of `batch`, appending remapped results
  // to `merged` in child order.
  void AdvanceSerial(std::vector<Point> batch, int64_t boundary,
                     std::vector<QueryResult>* merged);
  void AdvanceParallel(std::vector<Point> batch, int64_t boundary,
                       std::vector<QueryResult>* merged);

  std::string name_;
  std::vector<Child> children_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace sop

#endif  // SOP_DETECTOR_PARTITIONED_H_
