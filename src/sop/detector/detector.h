// The detector abstraction every algorithm implements (SOP, LEAP, MCOD,
// Naive), plus the per-emission result type.
//
// A detector consumes the stream in driver-defined batches. Batch
// boundaries are aligned to multiples of the workload's slide gcd (the
// swift-query slide). At each boundary the detector returns one
// QueryResult per query whose slide divides the boundary (DESIGN.md
// Sec. 2), containing the outliers of that query's current window.

#ifndef SOP_DETECTOR_DETECTOR_H_
#define SOP_DETECTOR_DETECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sop/common/point.h"
#include "sop/query/workload.h"

namespace sop {

/// Outliers of one query's window at one emission boundary.
struct QueryResult {
  /// Index of the query in the workload.
  size_t query_index = 0;
  /// The window end key (the boundary this emission happened at).
  int64_t boundary = 0;
  /// Sequence numbers of the outlier points, ascending.
  std::vector<Seq> outliers;
  /// True when this emission's window overlaps stream data the engine shed
  /// under overload (detector/engine.h): the answer is exact over the
  /// points the detector saw, but the window is missing dropped input.
  /// Set by the engine, never by detectors.
  bool degraded = false;
};

/// Interface of a multi-query streaming outlier detector.
///
/// Contract: Advance() is called with strictly increasing boundaries that
/// are multiples of the workload's slide gcd; `batch` holds exactly the
/// points whose keys fall in [previous boundary, boundary), already
/// carrying their global arrival sequence numbers. Results are returned in
/// query-index order.
class OutlierDetector {
 public:
  virtual ~OutlierDetector();

  /// Short algorithm name for reports ("sop", "leap", ...).
  virtual const char* name() const = 0;

  /// Ingests a batch, advances the windows to `boundary`, and returns the
  /// results of every query emitting at `boundary`.
  virtual std::vector<QueryResult> Advance(std::vector<Point> batch,
                                           int64_t boundary) = 0;

  /// Approximate bytes of per-point evidence currently held (the paper's
  /// MEM metric; excludes the raw point buffer, which is identical across
  /// detectors — see DESIGN.md Sec. 5).
  virtual size_t MemoryBytes() const = 0;

  /// --- native checkpoint support (optional) ----------------------------
  /// Detectors that can serialize their streaming state exactly override
  /// these three (SopDetector does); everyone else inherits the defaults
  /// and the engine falls back to replaying the retained window tail on
  /// restore (detector/run_checkpoint.h) — slower to restore, but emission-
  /// equivalent for any detector that is a deterministic function of its
  /// window contents.

  /// True when SaveState/LoadState carry the detector's exact state.
  virtual bool SupportsNativeState() const { return false; }

  /// Serializes the detector's streaming state into a framed, checksummed
  /// blob (common/frame.h). Returns an empty string when unsupported.
  virtual std::string SaveState() const { return std::string(); }

  /// Restores a SaveState blob into a freshly constructed detector.
  /// Returns false with a diagnostic in `*error` (if non-null) when the
  /// blob is corrupt, truncated, version-mismatched, from a different
  /// workload, or native state is unsupported.
  virtual bool LoadState(std::string_view bytes, std::string* error = nullptr);
};

}  // namespace sop

#endif  // SOP_DETECTOR_DETECTOR_H_
