// The detector abstraction every algorithm implements (SOP, LEAP, MCOD,
// Naive), plus the per-emission result type.
//
// A detector consumes the stream in driver-defined batches. Batch
// boundaries are aligned to multiples of the workload's slide gcd (the
// swift-query slide). At each boundary the detector returns one
// QueryResult per query whose slide divides the boundary (DESIGN.md
// Sec. 2), containing the outliers of that query's current window.

#ifndef SOP_DETECTOR_DETECTOR_H_
#define SOP_DETECTOR_DETECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sop/common/point.h"
#include "sop/query/workload.h"

namespace sop {

/// Outliers of one query's window at one emission boundary.
struct QueryResult {
  /// Index of the query in the workload.
  size_t query_index = 0;
  /// The window end key (the boundary this emission happened at).
  int64_t boundary = 0;
  /// Sequence numbers of the outlier points, ascending.
  std::vector<Seq> outliers;
};

/// Interface of a multi-query streaming outlier detector.
///
/// Contract: Advance() is called with strictly increasing boundaries that
/// are multiples of the workload's slide gcd; `batch` holds exactly the
/// points whose keys fall in [previous boundary, boundary), already
/// carrying their global arrival sequence numbers. Results are returned in
/// query-index order.
class OutlierDetector {
 public:
  virtual ~OutlierDetector();

  /// Short algorithm name for reports ("sop", "leap", ...).
  virtual const char* name() const = 0;

  /// Ingests a batch, advances the windows to `boundary`, and returns the
  /// results of every query emitting at `boundary`.
  virtual std::vector<QueryResult> Advance(std::vector<Point> batch,
                                           int64_t boundary) = 0;

  /// Approximate bytes of per-point evidence currently held (the paper's
  /// MEM metric; excludes the raw point buffer, which is identical across
  /// detectors — see DESIGN.md Sec. 5).
  virtual size_t MemoryBytes() const = 0;
};

}  // namespace sop

#endif  // SOP_DETECTOR_DETECTOR_H_
