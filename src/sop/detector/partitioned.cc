#include "sop/detector/partitioned.h"

#include <algorithm>
#include <map>
#include <utility>

#include "sop/common/check.h"

namespace sop {

PartitionedDetector::PartitionedDetector(
    std::string name, const Workload& workload,
    const std::vector<int>& partition_keys, const ChildDetectorFactory& factory)
    : name_(std::move(name)) {
  SOP_CHECK_MSG(workload.Validate().empty(), workload.Validate().c_str());
  SOP_CHECK(partition_keys.size() == workload.num_queries());
  std::map<int, std::vector<size_t>> partitions;
  for (size_t i = 0; i < workload.num_queries(); ++i) {
    partitions[partition_keys[i]].push_back(i);
  }
  for (auto& [key, indices] : partitions) {
    Workload sub = workload;
    sub.ClearQueries();
    for (size_t gi : indices) sub.AddQuery(workload.query(gi));
    Child child;
    child.detector = factory(sub);
    SOP_CHECK(child.detector != nullptr);
    child.local_to_global = std::move(indices);
    children_.push_back(std::move(child));
  }
}

std::vector<QueryResult> PartitionedDetector::Advance(std::vector<Point> batch,
                                                      int64_t boundary) {
  std::vector<QueryResult> merged;
  for (size_t c = 0; c < children_.size(); ++c) {
    Child& child = children_[c];
    // The last child consumes the batch; the rest copy it.
    std::vector<Point> feed =
        c + 1 == children_.size() ? std::move(batch) : batch;
    std::vector<QueryResult> results =
        child.detector->Advance(std::move(feed), boundary);
    for (QueryResult& r : results) {
      r.query_index = child.local_to_global[r.query_index];
      merged.push_back(std::move(r));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const QueryResult& a, const QueryResult& b) {
              return a.query_index < b.query_index;
            });
  return merged;
}

size_t PartitionedDetector::MemoryBytes() const {
  size_t bytes = 0;
  for (const Child& child : children_) bytes += child.detector->MemoryBytes();
  return bytes;
}

}  // namespace sop
