#include "sop/detector/partitioned.h"

#include <algorithm>
#include <future>
#include <map>
#include <utility>

#include "sop/common/check.h"

namespace sop {

PartitionedDetector::PartitionedDetector(
    std::string name, const Workload& workload,
    const std::vector<int>& partition_keys, const ChildDetectorFactory& factory)
    : name_(std::move(name)) {
  SOP_CHECK_MSG(workload.Validate().empty(), workload.Validate().c_str());
  SOP_CHECK(partition_keys.size() == workload.num_queries());
  std::map<int, std::vector<size_t>> partitions;
  for (size_t i = 0; i < workload.num_queries(); ++i) {
    partitions[partition_keys[i]].push_back(i);
  }
  for (auto& [key, indices] : partitions) {
    Workload sub = workload;
    sub.ClearQueries();
    for (size_t gi : indices) sub.AddQuery(workload.query(gi));
    Child child;
    child.detector = factory(sub);
    SOP_CHECK(child.detector != nullptr);
    child.local_to_global = std::move(indices);
    children_.push_back(std::move(child));
  }
}

void PartitionedDetector::AdvanceSerial(std::vector<Point> batch,
                                        int64_t boundary,
                                        std::vector<QueryResult>* merged) {
  for (size_t c = 0; c < children_.size(); ++c) {
    Child& child = children_[c];
    // The last child consumes the batch; the rest copy it.
    std::vector<Point> feed =
        c + 1 == children_.size() ? std::move(batch) : batch;
    std::vector<QueryResult> results =
        child.detector->Advance(std::move(feed), boundary);
    for (QueryResult& r : results) {
      r.query_index = child.local_to_global[r.query_index];
      merged->push_back(std::move(r));
    }
  }
}

void PartitionedDetector::AdvanceParallel(std::vector<Point> batch,
                                          int64_t boundary,
                                          std::vector<QueryResult>* merged) {
  std::vector<std::future<std::vector<QueryResult>>> pending;
  pending.reserve(children_.size());
  for (size_t c = 0; c < children_.size(); ++c) {
    std::vector<Point> feed =
        c + 1 == children_.size() ? std::move(batch) : batch;
    OutlierDetector* detector = children_[c].detector.get();
    pending.push_back(
        pool_->Submit([detector, feed = std::move(feed), boundary]() mutable {
          return detector->Advance(std::move(feed), boundary);
        }));
  }
  // Join everything before get() so a throwing child never leaves a
  // sibling still touching its state when the exception propagates.
  for (auto& future : pending) future.wait();
  for (size_t c = 0; c < children_.size(); ++c) {
    std::vector<QueryResult> results = pending[c].get();
    for (QueryResult& r : results) {
      r.query_index = children_[c].local_to_global[r.query_index];
      merged->push_back(std::move(r));
    }
  }
}

std::vector<QueryResult> PartitionedDetector::Advance(std::vector<Point> batch,
                                                      int64_t boundary) {
  std::vector<QueryResult> merged;
  if (pool_ != nullptr && children_.size() > 1) {
    AdvanceParallel(std::move(batch), boundary, &merged);
  } else {
    AdvanceSerial(std::move(batch), boundary, &merged);
  }
  // Queries map to exactly one child each, so indices are unique and this
  // order is deterministic regardless of execution mode.
  std::sort(merged.begin(), merged.end(),
            [](const QueryResult& a, const QueryResult& b) {
              return a.query_index < b.query_index;
            });
  return merged;
}

size_t PartitionedDetector::MemoryBytes() const {
  size_t bytes = 0;
  for (const Child& child : children_) bytes += child.detector->MemoryBytes();
  return bytes;
}

}  // namespace sop
