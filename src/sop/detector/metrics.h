// Run metrics collected by the execution engine: the paper's two
// evaluation metrics (average CPU time per window, peak memory) plus
// per-batch latency percentiles and bookkeeping.
//
// Since the observability subsystem landed (obs/, DESIGN.md Sec. 11),
// RunMetrics is a thin aggregate computed from an obs::Histogram of batch
// latencies — the same nearest-rank percentile math serves both — while
// the registry carries the fine-grained per-subsystem counters. RunMetrics
// stays a plain value struct so existing call sites and tests are
// unaffected by whether observability is compiled in or enabled.

#ifndef SOP_DETECTOR_METRICS_H_
#define SOP_DETECTOR_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "sop/obs/metrics.h"

namespace sop {

/// Aggregated metrics for one detector run over one stream.
struct RunMetrics {
  /// Number of swift-window slides (batches) processed.
  int64_t num_batches = 0;
  /// Total detector CPU time across all batches, milliseconds.
  double total_cpu_ms = 0.0;
  /// The paper's CPU metric: average processing time per window (ms).
  double avg_cpu_ms_per_window = 0.0;
  /// Per-batch latency distribution (ms): median, 95th percentile
  /// (nearest-rank), and worst batch. Tail latency is what a production
  /// stream job provisions for; the averages above hide it.
  double p50_batch_ms = 0.0;
  double p95_batch_ms = 0.0;
  double max_batch_ms = 0.0;
  /// The paper's MEM metric: peak evidence memory across batches (bytes).
  size_t peak_memory_bytes = 0;
  /// Total number of (query, boundary) emissions produced.
  uint64_t total_emissions = 0;
  /// Total outlier reports summed over all emissions.
  uint64_t total_outliers = 0;
  /// Total points consumed from the source.
  int64_t total_points = 0;
  /// Batches shed by the overload queue (drop-oldest policy only).
  uint64_t shed_batches = 0;
  /// Points lost inside shed batches.
  uint64_t shed_points = 0;
  /// Emissions flagged degraded (window overlapped shed data).
  uint64_t degraded_emissions = 0;

  /// One-line human-readable summary.
  std::string ToString() const;
  /// One-line latency distribution summary ("p50=... p95=... max=...").
  std::string LatencyToString() const;
  /// One JSON object with every field (for --metrics-out and tooling).
  std::string ToJson() const;
};

/// Incremental accumulator used by the execution engine.
class MetricsAccumulator {
 public:
  void RecordBatch(double cpu_ms, size_t memory_bytes, uint64_t emissions,
                   uint64_t outliers);
  void RecordPoints(int64_t n) { metrics_.total_points += n; }
  void RecordShedding(uint64_t batches, uint64_t points) {
    metrics_.shed_batches += batches;
    metrics_.shed_points += points;
  }
  void RecordDegraded(uint64_t emissions) {
    metrics_.degraded_emissions += emissions;
  }

  /// Finalizes averages and percentiles and returns the metrics.
  RunMetrics Finish();

 private:
  RunMetrics metrics_;
  obs::Histogram batch_ms_;  // one sample per RecordBatch
};

}  // namespace sop

#endif  // SOP_DETECTOR_METRICS_H_
