#include "sop/detector/detector.h"

namespace sop {

OutlierDetector::~OutlierDetector() = default;

}  // namespace sop
