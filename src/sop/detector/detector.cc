#include "sop/detector/detector.h"

namespace sop {

OutlierDetector::~OutlierDetector() = default;

bool OutlierDetector::LoadState(std::string_view bytes, std::string* error) {
  (void)bytes;
  if (error != nullptr) {
    *error = std::string(name()) + ": native checkpoint state not supported";
  }
  return false;
}

}  // namespace sop
