// The single detector construction path: every binary (sop_cli, the bench
// harness, the tests, user code) builds detectors from their string names
// through CreateDetector. Detector-specific tuning rides along in
// DetectorOptions; transparent multi-attribute splitting is applied where
// an algorithm requires a single attribute set.

#ifndef SOP_DETECTOR_FACTORY_H_
#define SOP_DETECTOR_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "sop/baselines/mcod.h"
#include "sop/core/sop_detector.h"
#include "sop/detector/detector.h"
#include "sop/query/workload.h"

namespace sop {

/// Tuning knobs forwarded to the detector selected by name. Defaults
/// reproduce each paper's algorithm; the ablation benches override
/// individual fields. Grid-variant names ("sop-grid", "mcod-grid") force
/// the corresponding use_grid_index flag regardless of what is set here.
struct DetectorOptions {
  /// For "sop" / "sop-grid" / "grouped-sop".
  SopDetector::Options sop;
  /// For "mcod" / "mcod-grid".
  McodDetector::Options mcod;
};

/// The algorithm names this repository ships:
///   "sop"          the paper's contribution
///   "sop-grid"     SOP with grid-indexed K-SKY candidate enumeration
///   "grouped-sop"  paper Sec. 3.2 strawman: independent skyband per k-group
///   "leap"         per-query LEAP baseline [ICDE'14]
///   "mcod"         augmented multi-query MCOD baseline [ICDE'11]
///   "mcod-grid"    MCOD with grid-indexed range queries (M-tree analog)
///   "naive"        exact brute force (test oracle)
const std::vector<std::string>& KnownDetectorNames();

/// True iff `name` is one of KnownDetectorNames().
bool IsKnownDetector(const std::string& name);

/// One-line diagnostic for a rejected detector name, listing every name in
/// KnownDetectorNames(). Shared by sop_cli, sop_server and anything else
/// that takes a detector name from the user.
std::string UnknownDetectorMessage(const std::string& name);

/// Builds the detector named `name` for `workload`. SOP and MCOD require a
/// single attribute set per instance, so workloads mixing attribute sets
/// are wrapped in a MultiAttributeDetector automatically; LEAP and Naive
/// handle mixed sets natively. CHECK-fails on an unknown name — validate
/// user input with IsKnownDetector first.
std::unique_ptr<OutlierDetector> CreateDetector(
    const std::string& name, const Workload& workload,
    const DetectorOptions& options = {});

}  // namespace sop

#endif  // SOP_DETECTOR_FACTORY_H_
