// Construction of detectors by kind, with transparent multi-attribute
// splitting where an algorithm requires a single attribute set.

#ifndef SOP_DETECTOR_FACTORY_H_
#define SOP_DETECTOR_FACTORY_H_

#include <memory>
#include <string>

#include "sop/core/sop_detector.h"
#include "sop/detector/detector.h"
#include "sop/query/workload.h"

namespace sop {

/// The algorithms this repository ships.
enum class DetectorKind {
  kSop,         // the paper's contribution
  kSopGrid,     // SOP with grid-indexed K-SKY candidate enumeration
  kGroupedSop,  // paper Sec. 3.2 strawman: independent skyband per k-group
  kLeap,        // per-query LEAP baseline [ICDE'14]
  kMcod,        // augmented multi-query MCOD baseline [ICDE'11]
  kMcodGrid,    // MCOD with grid-indexed range queries (M-tree analog)
  kNaive,       // exact brute force (test oracle)
};

/// Parses "sop" / "sop-grid" / "grouped-sop" / "leap" / "mcod" /
/// "mcod-grid" / "naive". Returns true on success.
bool ParseDetectorKind(const std::string& name, DetectorKind* out);

/// Name of `kind`.
const char* DetectorKindName(DetectorKind kind);

/// Builds a detector for `workload`. SOP and MCOD require a single
/// attribute set per instance, so workloads mixing attribute sets are
/// wrapped in a MultiAttributeDetector automatically; LEAP and Naive
/// handle mixed sets natively. `sop_options` tunes SOP (ablations); null
/// means paper defaults.
std::unique_ptr<OutlierDetector> CreateDetector(
    DetectorKind kind, const Workload& workload,
    const SopDetector::Options* sop_options = nullptr);

}  // namespace sop

#endif  // SOP_DETECTOR_FACTORY_H_
