#include "sop/detector/factory.h"

#include <set>

#include "sop/baselines/leap.h"
#include "sop/baselines/mcod.h"
#include "sop/baselines/naive.h"
#include "sop/common/check.h"
#include "sop/core/grouped_sop.h"
#include "sop/core/multi_attribute.h"

namespace sop {

bool ParseDetectorKind(const std::string& name, DetectorKind* out) {
  if (name == "sop") {
    *out = DetectorKind::kSop;
    return true;
  }
  if (name == "sop-grid") {
    *out = DetectorKind::kSopGrid;
    return true;
  }
  if (name == "grouped-sop") {
    *out = DetectorKind::kGroupedSop;
    return true;
  }
  if (name == "leap") {
    *out = DetectorKind::kLeap;
    return true;
  }
  if (name == "mcod") {
    *out = DetectorKind::kMcod;
    return true;
  }
  if (name == "mcod-grid") {
    *out = DetectorKind::kMcodGrid;
    return true;
  }
  if (name == "naive") {
    *out = DetectorKind::kNaive;
    return true;
  }
  return false;
}

const char* DetectorKindName(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kSop:
      return "sop";
    case DetectorKind::kSopGrid:
      return "sop-grid";
    case DetectorKind::kGroupedSop:
      return "grouped-sop";
    case DetectorKind::kLeap:
      return "leap";
    case DetectorKind::kMcod:
      return "mcod";
    case DetectorKind::kMcodGrid:
      return "mcod-grid";
    case DetectorKind::kNaive:
      return "naive";
  }
  return "unknown";
}

namespace {

bool UsesMultipleAttributeSets(const Workload& workload) {
  std::set<int> sets;
  for (const OutlierQuery& q : workload.queries()) sets.insert(q.attribute_set);
  return sets.size() > 1;
}

// Wraps `make_child` in a MultiAttributeDetector when the workload mixes
// attribute sets; otherwise builds the child directly.
std::unique_ptr<OutlierDetector> MaybeSplitByAttributes(
    const Workload& workload, const ChildDetectorFactory& make_child) {
  if (UsesMultipleAttributeSets(workload)) {
    return std::make_unique<MultiAttributeDetector>(workload, make_child);
  }
  return make_child(workload);
}

}  // namespace

std::unique_ptr<OutlierDetector> CreateDetector(
    DetectorKind kind, const Workload& workload,
    const SopDetector::Options* sop_options) {
  const SopDetector::Options options =
      sop_options != nullptr ? *sop_options : SopDetector::Options{};
  switch (kind) {
    case DetectorKind::kSop:
      return MaybeSplitByAttributes(workload, [options](const Workload& sub) {
        return std::make_unique<SopDetector>(sub, options);
      });
    case DetectorKind::kSopGrid: {
      SopDetector::Options grid_options = options;
      grid_options.use_grid_index = true;
      return MaybeSplitByAttributes(
          workload, [grid_options](const Workload& sub) {
            return std::make_unique<SopDetector>(sub, grid_options);
          });
    }
    case DetectorKind::kGroupedSop:
      return MaybeSplitByAttributes(
          workload,
          [options](const Workload& sub)
              -> std::unique_ptr<OutlierDetector> {
            return std::make_unique<GroupedSopDetector>(sub, options);
          });
    case DetectorKind::kLeap:
      return std::make_unique<LeapDetector>(workload);
    case DetectorKind::kMcod:
      return MaybeSplitByAttributes(
          workload, [](const Workload& sub) -> std::unique_ptr<OutlierDetector> {
            return std::make_unique<McodDetector>(sub);
          });
    case DetectorKind::kMcodGrid:
      return MaybeSplitByAttributes(
          workload, [](const Workload& sub) -> std::unique_ptr<OutlierDetector> {
            McodDetector::Options mcod_options;
            mcod_options.use_grid_index = true;
            return std::make_unique<McodDetector>(sub, mcod_options);
          });
    case DetectorKind::kNaive:
      return std::make_unique<NaiveDetector>(workload);
  }
  SOP_CHECK_MSG(false, "unknown detector kind");
  return nullptr;
}

}  // namespace sop
