#include "sop/detector/factory.h"

#include <algorithm>
#include <set>

#include "sop/baselines/leap.h"
#include "sop/baselines/naive.h"
#include "sop/common/check.h"
#include "sop/core/grouped_sop.h"
#include "sop/core/multi_attribute.h"

namespace sop {

const std::vector<std::string>& KnownDetectorNames() {
  static const std::vector<std::string> names = {
      "sop", "sop-grid", "grouped-sop", "leap", "mcod", "mcod-grid", "naive"};
  return names;
}

bool IsKnownDetector(const std::string& name) {
  const std::vector<std::string>& names = KnownDetectorNames();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::string UnknownDetectorMessage(const std::string& name) {
  std::string msg = "unknown detector '" + name + "'; known detectors: ";
  const std::vector<std::string>& names = KnownDetectorNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) msg += ", ";
    msg += names[i];
  }
  return msg;
}

namespace {

bool UsesMultipleAttributeSets(const Workload& workload) {
  std::set<int> sets;
  for (const OutlierQuery& q : workload.queries()) sets.insert(q.attribute_set);
  return sets.size() > 1;
}

// Wraps `make_child` in a MultiAttributeDetector when the workload mixes
// attribute sets; otherwise builds the child directly.
std::unique_ptr<OutlierDetector> MaybeSplitByAttributes(
    const Workload& workload, const ChildDetectorFactory& make_child) {
  if (UsesMultipleAttributeSets(workload)) {
    return std::make_unique<MultiAttributeDetector>(workload, make_child);
  }
  return make_child(workload);
}

}  // namespace

std::unique_ptr<OutlierDetector> CreateDetector(const std::string& name,
                                                const Workload& workload,
                                                const DetectorOptions& options) {
  if (name == "sop" || name == "sop-grid") {
    SopDetector::Options sop_options = options.sop;
    if (name == "sop-grid") sop_options.use_grid_index = true;
    return MaybeSplitByAttributes(workload, [sop_options](const Workload& sub) {
      return std::make_unique<SopDetector>(sub, sop_options);
    });
  }
  if (name == "grouped-sop") {
    const SopDetector::Options sop_options = options.sop;
    return MaybeSplitByAttributes(
        workload,
        [sop_options](const Workload& sub) -> std::unique_ptr<OutlierDetector> {
          return std::make_unique<GroupedSopDetector>(sub, sop_options);
        });
  }
  if (name == "leap") {
    return std::make_unique<LeapDetector>(workload);
  }
  if (name == "mcod" || name == "mcod-grid") {
    McodDetector::Options mcod_options = options.mcod;
    if (name == "mcod-grid") mcod_options.use_grid_index = true;
    return MaybeSplitByAttributes(
        workload,
        [mcod_options](const Workload& sub) -> std::unique_ptr<OutlierDetector> {
          return std::make_unique<McodDetector>(sub, mcod_options);
        });
  }
  if (name == "naive") {
    return std::make_unique<NaiveDetector>(workload);
  }
  SOP_CHECK_MSG(false, ("unknown detector: " + name).c_str());
  return nullptr;
}

}  // namespace sop
