// ExecutionEngine: the driver layer of the layered execution path
//
//   driver (this file)  ->  partition (PartitionedDetector)  ->  index
//
// The engine owns the batching/emission loop that used to live inside
// RunStream (detector/driver.h, now a thin wrapper): it slices the stream
// into swift-slide batches, times every Advance() call, tracks per-batch
// latency percentiles, and forwards results to the sink. It also owns a
// reusable ThreadPool; when the detector under test is a
// PartitionedDetector, the engine attaches the pool for the duration of
// the run so independent partitions advance concurrently (DESIGN.md
// Sec. 10).
//
// An engine is reusable across runs and detectors; the pool is spawned
// once at construction. Not thread-safe: one engine drives one run at a
// time.
//
// Contract: this is the single run entry point. Every way of driving a
// detector over a stream — the RunStream convenience wrappers
// (detector/driver.h), sop_cli, the bench harness — funnels through
// ExecutionEngine::Run, so window semantics, timing methodology, and
// observability instrumentation are defined in exactly one place. When
// observability is enabled (obs/metrics.h), each run additionally records
// engine/* counters, the engine/batch_ms histogram, and per-query
// query/<i>/{emissions,outliers} counters into the global registry.

#ifndef SOP_DETECTOR_ENGINE_H_
#define SOP_DETECTOR_ENGINE_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sop/common/thread_pool.h"
#include "sop/detector/detector.h"
#include "sop/detector/metrics.h"
#include "sop/obs/metrics.h"
#include "sop/query/workload.h"
#include "sop/stream/source.h"

namespace sop {

/// Callback receiving every QueryResult as it is produced. May be null.
using ResultSink = std::function<void(const QueryResult&)>;

/// Execution knobs, defaulting to the serial seed behaviour.
struct ExecOptions {
  /// Worker threads for partition-parallel detectors. 1 keeps everything
  /// on the calling thread (bit-identical to the pre-engine driver); 0
  /// means hardware concurrency.
  int num_threads = 1;
};

/// Drives detectors over streams under the normative window semantics.
class ExecutionEngine {
 public:
  ExecutionEngine() : ExecutionEngine(ExecOptions{}) {}
  explicit ExecutionEngine(ExecOptions options);
  ~ExecutionEngine();

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  /// Drives `detector` over `source` under `workload`'s window semantics.
  ///
  /// Batch boundaries are multiples of the workload slide gcd. For
  /// count-based workloads, one batch per gcd points; the trailing partial
  /// batch (stream length not a multiple of the gcd) is never emitted. For
  /// time-based workloads, batches cover gcd-sized time spans; empty spans
  /// still advance the windows, and the run ends at the first boundary
  /// covering the last point.
  ///
  /// Detector CPU time is measured around Advance() only; source decoding
  /// and result sinking are excluded. With num_threads > 1 the timing is
  /// wall-clock over the fan-out, i.e. the per-batch critical path.
  RunMetrics Run(const Workload& workload, StreamSource* source,
                 OutlierDetector* detector, const ResultSink& sink = {});

  /// Convenience overload over an in-memory stream.
  RunMetrics Run(const Workload& workload, std::vector<Point> points,
                 OutlierDetector* detector, const ResultSink& sink = {});

  /// The engine's pool; null when configured serial (num_threads == 1).
  ThreadPool* pool() { return pool_.get(); }

 private:
  // Times one Advance() call and records it into the accumulator.
  void AdvanceBatch(OutlierDetector* detector, std::vector<Point> batch,
                    int64_t boundary, MetricsAccumulator* acc,
                    const ResultSink& sink);
  RunMetrics RunCountBased(int64_t batch_span, StreamSource* source,
                           OutlierDetector* detector, const ResultSink& sink);
  RunMetrics RunTimeBased(int64_t batch_span, StreamSource* source,
                          OutlierDetector* detector, const ResultSink& sink);

  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when serial

  // Cached per-query counter handles, indexed by query index:
  // {query/<i>/emissions, query/<i>/outliers}. Registry handles are
  // lifetime-stable, so the cache survives Reset() and spans runs; it is
  // only populated while obs is enabled.
  std::vector<std::pair<obs::Counter*, obs::Counter*>> query_counters_;
};

}  // namespace sop

#endif  // SOP_DETECTOR_ENGINE_H_
