// ExecutionEngine: the driver layer of the layered execution path
//
//   driver (this file)  ->  partition (PartitionedDetector)  ->  index
//
// The engine owns the batching/emission loop that used to live inside
// RunStream (detector/driver.h, now a thin wrapper): it slices the stream
// into swift-slide batches, times every Advance() call, tracks per-batch
// latency percentiles, and forwards results to the sink. It also owns a
// reusable ThreadPool; when the detector under test is a
// PartitionedDetector, the engine attaches the pool for the duration of
// the run so independent partitions advance concurrently (DESIGN.md
// Sec. 10).
//
// Resilience (DESIGN.md Sec. 12): the engine is also where failure is
// handled. Transient source/sink failures (surfaced through the armed
// FaultInjector, common/fault.h) are retried with bounded exponential
// backoff; exhausted retries are fatal. With checkpointing configured the
// engine periodically writes a crash-consistent RunCheckpoint
// (detector/run_checkpoint.h) and can resume an interrupted run from one,
// producing emissions identical to an uninterrupted run. With an overload
// queue configured the run is pipelined — the calling thread ingests while
// a worker thread detects — and a full queue either blocks ingest
// (lossless) or sheds the oldest queued batch (bounded latency; shed
// batches are counted and the emissions whose windows overlap shed data
// are flagged `degraded`).
//
// An engine is reusable across runs and detectors; the pool is spawned
// once at construction. Not thread-safe: one engine drives one run at a
// time. In pipelined mode the sink runs on the engine's worker thread.
//
// Contract: this is the single run entry point. Every way of driving a
// detector over a stream — the RunStream convenience wrappers
// (detector/driver.h), sop_cli, the bench harness — funnels through
// ExecutionEngine::Run, so window semantics, timing methodology, and
// observability instrumentation are defined in exactly one place. When
// observability is enabled (obs/metrics.h), each run additionally records
// engine/* counters, the engine/batch_ms histogram, per-query
// query/<i>/{emissions,outliers} counters, and the resilience/* counters
// into the global registry. A serial run with default options, no armed
// injector and checkpointing off behaves bit-identically to the
// pre-resilience engine.

#ifndef SOP_DETECTOR_ENGINE_H_
#define SOP_DETECTOR_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sop/common/thread_pool.h"
#include "sop/detector/detector.h"
#include "sop/detector/metrics.h"
#include "sop/detector/run_checkpoint.h"
#include "sop/obs/metrics.h"
#include "sop/query/workload.h"
#include "sop/stream/source.h"

namespace sop {

/// Callback receiving every QueryResult as it is produced. May be null.
/// In pipelined (overload-queue) mode it is invoked from the engine's
/// worker thread.
using ResultSink = std::function<void(const QueryResult&)>;

/// Bounded exponential backoff for transient source/sink failures.
struct RetryOptions {
  /// Attempts per operation including the first; exhausting them is fatal
  /// (SOP_CHECK) — a persistent failure is not a transient one.
  int max_attempts = 8;
  int backoff_initial_us = 50;
  int backoff_max_us = 5000;
};

/// Periodic crash-consistent checkpointing of the run.
struct CheckpointOptions {
  /// Checkpoint file path; empty disables checkpointing.
  std::string path;
  /// Write cadence in advanced batches (>= 1) when `path` is set.
  int64_t every_batches = 64;
  /// Complete checkpoint generations retained on disk (>= 1): each save
  /// rotates path -> path.1 -> ... so restore can fall back past a corrupt
  /// newest file to the previous one (see run_checkpoint.h).
  int generations = 1;
};

/// What to do when the overload queue is full.
enum class OverloadPolicy {
  kBlock,       // backpressure: ingest waits (lossless)
  kDropOldest,  // shed the oldest queued batch (bounded latency, lossy)
};

/// Pipelined execution with a bounded batch queue between ingest and
/// detection. Disabled (synchronous single-threaded loop) by default.
struct OverloadOptions {
  /// Queue capacity in batches; 0 keeps the engine synchronous.
  size_t max_queue_batches = 0;
  OverloadPolicy policy = OverloadPolicy::kBlock;
};

/// Execution knobs, defaulting to the serial seed behaviour.
struct ExecOptions {
  /// Worker threads for partition-parallel detectors. 1 keeps everything
  /// on the calling thread (bit-identical to the pre-engine driver); 0
  /// means hardware concurrency.
  int num_threads = 1;
  RetryOptions retry;
  CheckpointOptions checkpoint;
  OverloadOptions overload;
};

/// Drives detectors over streams under the normative window semantics.
class ExecutionEngine {
 public:
  ExecutionEngine() : ExecutionEngine(ExecOptions{}) {}
  explicit ExecutionEngine(ExecOptions options);
  ~ExecutionEngine();

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  /// Drives `detector` over `source` under `workload`'s window semantics.
  ///
  /// Batch boundaries are multiples of the workload slide gcd. For
  /// count-based workloads, one batch per gcd points; the trailing partial
  /// batch (stream length not a multiple of the gcd) is never emitted. For
  /// time-based workloads, batches cover gcd-sized time spans; empty spans
  /// still advance the windows, and the run ends at the first boundary
  /// covering the last point.
  ///
  /// Detector CPU time is measured around Advance() only; source decoding
  /// and result sinking are excluded. With num_threads > 1 the timing is
  /// wall-clock over the fan-out, i.e. the per-batch critical path.
  RunMetrics Run(const Workload& workload, StreamSource* source,
                 OutlierDetector* detector, const ResultSink& sink = {});

  /// Convenience overload over an in-memory stream.
  RunMetrics Run(const Workload& workload, std::vector<Point> points,
                 OutlierDetector* detector, const ResultSink& sink = {});

  /// Resumes an interrupted run from `cp` (see LoadRunCheckpoint).
  /// `source` must replay the original stream from its beginning (the
  /// engine skips the records the checkpoint already advanced) and
  /// `detector` must be freshly constructed for the same workload. On a
  /// checkpoint that does not match (fingerprint/detector/window/span) or
  /// whose detector state cannot be restored, returns false with a
  /// diagnostic in `*error` and runs nothing. On success the emissions of
  /// interrupted-run-then-resume equal those of one uninterrupted run.
  bool RunResumed(const Workload& workload, StreamSource* source,
                  OutlierDetector* detector, const RunCheckpoint& cp,
                  RunMetrics* metrics, std::string* error,
                  const ResultSink& sink = {});

  /// The engine's pool; null when configured serial (num_threads == 1).
  ThreadPool* pool() { return pool_.get(); }

 private:
  struct RunContext;
  struct Pending;
  class BatchQueue;

  // Reads the next point, retrying injected transient read failures.
  bool SourceNext(StreamSource* source, Point* out);
  // Delivers one result, retrying injected transient emit failures.
  void EmitResult(const RunContext& ctx, const ResultSink& sink,
                  const QueryResult& r);
  // Times one Advance() call, records metrics, flags degraded emissions,
  // maintains replay history, and writes periodic checkpoints.
  void AdvanceBatch(RunContext* ctx, std::vector<Point> batch,
                    int64_t boundary, const ResultSink& sink);
  void WriteCheckpoint(RunContext* ctx);
  bool ApplyResume(RunContext* ctx, const RunCheckpoint& cp,
                   StreamSource* source, std::string* error);
  void ProcessPending(RunContext* ctx, Pending pending,
                      const ResultSink& sink);
  RunMetrics RunLoop(RunContext* ctx, StreamSource* source,
                     const ResultSink& sink);
  RunMetrics RunCountBased(RunContext* ctx, StreamSource* source,
                           const ResultSink& sink);
  RunMetrics RunTimeBased(RunContext* ctx, StreamSource* source,
                          const ResultSink& sink);
  RunMetrics RunPipelined(RunContext* ctx, StreamSource* source,
                          const ResultSink& sink);

  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when serial

  // Cached per-query counter handles, indexed by query index:
  // {query/<i>/emissions, query/<i>/outliers}. Registry handles are
  // lifetime-stable, so the cache survives Reset() and spans runs; it is
  // only populated while obs is enabled.
  std::vector<std::pair<obs::Counter*, obs::Counter*>> query_counters_;
};

}  // namespace sop

#endif  // SOP_DETECTOR_ENGINE_H_
