#include "sop/detector/metrics.h"

#include <algorithm>
#include <cstdio>

namespace sop {

std::string RunMetrics::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "batches=%lld cpu/window=%.3fms peak_mem=%.2fMB "
                "emissions=%llu outliers=%llu points=%lld",
                static_cast<long long>(num_batches), avg_cpu_ms_per_window,
                static_cast<double>(peak_memory_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(total_emissions),
                static_cast<unsigned long long>(total_outliers),
                static_cast<long long>(total_points));
  return buf;
}

std::string RunMetrics::LatencyToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "batch latency p50=%.3fms p95=%.3fms max=%.3fms",
                p50_batch_ms, p95_batch_ms, max_batch_ms);
  return buf;
}

std::string RunMetrics::ToJson() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"num_batches\": %lld, \"total_cpu_ms\": %.6f, "
      "\"avg_cpu_ms_per_window\": %.6f, \"p50_batch_ms\": %.6f, "
      "\"p95_batch_ms\": %.6f, \"max_batch_ms\": %.6f, "
      "\"peak_memory_bytes\": %llu, \"total_emissions\": %llu, "
      "\"total_outliers\": %llu, \"total_points\": %lld, "
      "\"shed_batches\": %llu, \"shed_points\": %llu, "
      "\"degraded_emissions\": %llu}",
      static_cast<long long>(num_batches), total_cpu_ms,
      avg_cpu_ms_per_window, p50_batch_ms, p95_batch_ms, max_batch_ms,
      static_cast<unsigned long long>(peak_memory_bytes),
      static_cast<unsigned long long>(total_emissions),
      static_cast<unsigned long long>(total_outliers),
      static_cast<long long>(total_points),
      static_cast<unsigned long long>(shed_batches),
      static_cast<unsigned long long>(shed_points),
      static_cast<unsigned long long>(degraded_emissions));
  return buf;
}

void MetricsAccumulator::RecordBatch(double cpu_ms, size_t memory_bytes,
                                     uint64_t emissions, uint64_t outliers) {
  ++metrics_.num_batches;
  metrics_.total_cpu_ms += cpu_ms;
  metrics_.peak_memory_bytes =
      std::max(metrics_.peak_memory_bytes, memory_bytes);
  metrics_.total_emissions += emissions;
  metrics_.total_outliers += outliers;
  batch_ms_.Record(cpu_ms);
}

RunMetrics MetricsAccumulator::Finish() {
  if (metrics_.num_batches > 0) {
    metrics_.avg_cpu_ms_per_window =
        metrics_.total_cpu_ms / static_cast<double>(metrics_.num_batches);
  }
  const obs::Histogram::Stats latency = batch_ms_.ComputeStats();
  if (latency.count > 0) {
    metrics_.p50_batch_ms = latency.p50;
    metrics_.p95_batch_ms = latency.p95;
    metrics_.max_batch_ms = latency.max;
  }
  return metrics_;
}

}  // namespace sop
