#include "sop/detector/metrics.h"

#include <algorithm>
#include <cstdio>

namespace sop {

std::string RunMetrics::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "batches=%lld cpu/window=%.3fms peak_mem=%.2fMB "
                "emissions=%llu outliers=%llu points=%lld",
                static_cast<long long>(num_batches), avg_cpu_ms_per_window,
                static_cast<double>(peak_memory_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(total_emissions),
                static_cast<unsigned long long>(total_outliers),
                static_cast<long long>(total_points));
  return buf;
}

void MetricsAccumulator::RecordBatch(double cpu_ms, size_t memory_bytes,
                                     uint64_t emissions, uint64_t outliers) {
  ++metrics_.num_batches;
  metrics_.total_cpu_ms += cpu_ms;
  metrics_.peak_memory_bytes =
      std::max(metrics_.peak_memory_bytes, memory_bytes);
  metrics_.total_emissions += emissions;
  metrics_.total_outliers += outliers;
}

RunMetrics MetricsAccumulator::Finish() {
  if (metrics_.num_batches > 0) {
    metrics_.avg_cpu_ms_per_window =
        metrics_.total_cpu_ms / static_cast<double>(metrics_.num_batches);
  }
  return metrics_;
}

}  // namespace sop
