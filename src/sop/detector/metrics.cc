#include "sop/detector/metrics.h"

#include <algorithm>
#include <cstdio>

namespace sop {

namespace {

// Nearest-rank percentile of an ascending-sorted sample.
double PercentileOfSorted(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      pct / 100.0 * static_cast<double>(sorted.size()) + 0.5);
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

}  // namespace

std::string RunMetrics::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "batches=%lld cpu/window=%.3fms peak_mem=%.2fMB "
                "emissions=%llu outliers=%llu points=%lld",
                static_cast<long long>(num_batches), avg_cpu_ms_per_window,
                static_cast<double>(peak_memory_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(total_emissions),
                static_cast<unsigned long long>(total_outliers),
                static_cast<long long>(total_points));
  return buf;
}

std::string RunMetrics::LatencyToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "batch latency p50=%.3fms p95=%.3fms max=%.3fms",
                p50_batch_ms, p95_batch_ms, max_batch_ms);
  return buf;
}

void MetricsAccumulator::RecordBatch(double cpu_ms, size_t memory_bytes,
                                     uint64_t emissions, uint64_t outliers) {
  ++metrics_.num_batches;
  metrics_.total_cpu_ms += cpu_ms;
  metrics_.peak_memory_bytes =
      std::max(metrics_.peak_memory_bytes, memory_bytes);
  metrics_.total_emissions += emissions;
  metrics_.total_outliers += outliers;
  batch_ms_.push_back(cpu_ms);
}

RunMetrics MetricsAccumulator::Finish() {
  if (metrics_.num_batches > 0) {
    metrics_.avg_cpu_ms_per_window =
        metrics_.total_cpu_ms / static_cast<double>(metrics_.num_batches);
  }
  if (!batch_ms_.empty()) {
    std::sort(batch_ms_.begin(), batch_ms_.end());
    metrics_.p50_batch_ms = PercentileOfSorted(batch_ms_, 50.0);
    metrics_.p95_batch_ms = PercentileOfSorted(batch_ms_, 95.0);
    metrics_.max_batch_ms = batch_ms_.back();
  }
  return metrics_;
}

}  // namespace sop
