#include "sop/gen/stt.h"

#include <algorithm>
#include <cmath>

#include "sop/common/check.h"

namespace sop {
namespace gen {

namespace {

// U-shaped intraday intensity: trading is busiest at the open and close.
// Maps a uniform draw to a session fraction with that density via a simple
// accept-adjust transform (quadratic bathtub).
double UShapedFraction(Rng* rng) {
  for (;;) {
    const double x = rng->UniformDouble();
    const double density = 0.4 + 2.4 * (x - 0.5) * (x - 0.5);  // in [0.4, 1.0]
    if (rng->UniformDouble() < density) return x;
  }
}

}  // namespace

SttSource::SttSource(int64_t n, const SttOptions& options)
    : options_(options), rng_(options.seed), remaining_(n), total_(n) {
  SOP_CHECK(options_.num_symbols > 0);
  SOP_CHECK(options_.session_seconds > 0);
  symbols_.reserve(static_cast<size_t>(options_.num_symbols));
  for (int s = 0; s < options_.num_symbols; ++s) {
    Symbol sym;
    // Opening prices spread log-uniformly between $5 and $500.
    sym.log_price = std::log(5.0) +
                    rng_.UniformDouble() * (std::log(500.0) - std::log(5.0));
    sym.base_volume = std::exp(rng_.Normal(5.0, 1.0));  // ~150 shares median
    symbols_.push_back(sym);
  }
  price_lo_ = std::log(1.0);
  price_hi_ = std::log(1000.0);
}

bool SttSource::Next(Point* out) {
  if (remaining_ <= 0) return false;
  --remaining_;

  // Arrival times: sorted U-shaped sample approximated by pacing the
  // session proportionally to the trade index, with the bathtub transform
  // applied to local jitter. Timestamps must be non-decreasing, so we pace
  // deterministically and jitter within the step.
  const double base_frac =
      static_cast<double>(index_) / static_cast<double>(std::max<int64_t>(total_, 1));
  const double jitter = UShapedFraction(&rng_) /
                        static_cast<double>(std::max<int64_t>(total_, 1));
  const double frac = std::min(base_frac + jitter, 1.0);
  out->seq = 0;
  out->time = static_cast<Timestamp>(frac *
                                     static_cast<double>(options_.session_seconds));
  ++index_;

  Symbol& sym =
      symbols_[static_cast<size_t>(rng_.NextBelow(symbols_.size()))];
  // Geometric Brownian price step.
  sym.log_price += rng_.Normal(0.0, options_.volatility);
  sym.log_price = std::clamp(sym.log_price, price_lo_, price_hi_);

  double log_price = sym.log_price;
  double volume = sym.base_volume * std::exp(rng_.Normal(0.0, 0.6));
  if (rng_.Bernoulli(options_.anomaly_rate)) {
    if (rng_.Bernoulli(0.5)) {
      // Block trade: volume far above anything normal.
      volume *= std::exp(rng_.UniformDouble(3.0, 6.0));
    } else {
      // Price spike: fat-finger style deviation (not persisted into the
      // symbol's walk).
      log_price += rng_.UniformDouble(-1.5, 1.5);
    }
  }

  // Scale attributes into [0, value_scale].
  const double price_frac =
      (std::clamp(log_price, price_lo_, price_hi_) - price_lo_) /
      (price_hi_ - price_lo_);
  const double volume_frac =
      std::clamp(std::log1p(volume) / std::log(1e6), 0.0, 1.0);
  out->values.clear();
  out->values.push_back(price_frac * options_.value_scale);
  out->values.push_back(volume_frac * options_.value_scale);
  if (options_.include_symbol_attribute) {
    out->values.push_back(
        options_.value_scale *
        (static_cast<double>(&sym - symbols_.data()) /
         static_cast<double>(symbols_.size())));
  }
  return true;
}

std::vector<Point> GenerateStt(int64_t n, const SttOptions& options) {
  SttSource source(n, options);
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(n));
  Point p;
  while (source.Next(&p)) points.push_back(p);
  return points;
}

}  // namespace gen
}  // namespace sop
