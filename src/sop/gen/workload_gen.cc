#include "sop/gen/workload_gen.h"

#include <algorithm>

#include "sop/common/check.h"
#include "sop/common/random.h"

namespace sop {
namespace gen {

bool ParseWorkloadCase(const std::string& name, WorkloadCase* out) {
  if (name.size() != 1) return false;
  const char c = name[0];
  if (c < 'A' || c > 'G') return false;
  *out = static_cast<WorkloadCase>(c - 'A');
  return true;
}

namespace {

bool VariesR(WorkloadCase c) {
  return c == WorkloadCase::kA || c == WorkloadCase::kC ||
         c == WorkloadCase::kG;
}
bool VariesK(WorkloadCase c) {
  return c == WorkloadCase::kB || c == WorkloadCase::kC ||
         c == WorkloadCase::kG;
}
bool VariesWin(WorkloadCase c) {
  return c == WorkloadCase::kD || c == WorkloadCase::kF ||
         c == WorkloadCase::kG;
}
bool VariesSlide(WorkloadCase c) {
  return c == WorkloadCase::kE || c == WorkloadCase::kF ||
         c == WorkloadCase::kG;
}

// Draws a window/slide value quantized to `quantum` within [lo, hi).
int64_t DrawQuantized(Rng* rng, int64_t lo, int64_t hi, int64_t quantum) {
  SOP_CHECK(lo >= quantum && hi > lo);
  const int64_t lo_q = (lo + quantum - 1) / quantum;
  const int64_t hi_q = std::max(lo_q + 1, hi / quantum);
  return rng->UniformInt(lo_q, hi_q - 1) * quantum;
}

}  // namespace

Workload GenerateWorkload(WorkloadCase wcase, size_t num_queries,
                          WindowType window_type,
                          const WorkloadGenOptions& options) {
  SOP_CHECK(num_queries > 0);
  Rng rng(options.seed);
  Workload workload(window_type);
  for (size_t i = 0; i < num_queries; ++i) {
    OutlierQuery q;
    q.r = VariesR(wcase) ? rng.UniformDouble(options.r_lo, options.r_hi)
                         : options.r_fixed;
    q.k = VariesK(wcase) ? rng.UniformInt(options.k_lo, options.k_hi - 1)
                         : options.k_fixed;
    q.win = VariesWin(wcase)
                ? DrawQuantized(&rng, options.win_lo, options.win_hi,
                                options.slide_quantum)
                : options.win_fixed;
    q.slide = VariesSlide(wcase)
                  ? DrawQuantized(&rng, options.slide_lo, options.slide_hi,
                                  options.slide_quantum)
                  : options.slide_fixed;
    workload.AddQuery(q);
  }
  SOP_CHECK_MSG(workload.Validate().empty(), workload.Validate().c_str());
  return workload;
}

}  // namespace gen
}  // namespace sop
