#include "sop/gen/synthetic.h"

#include <cmath>

#include "sop/common/check.h"

namespace sop {
namespace gen {

SyntheticSource::SyntheticSource(int64_t n, const SyntheticOptions& options)
    : options_(options), rng_(options.seed), remaining_(n) {
  SOP_CHECK(options_.dimensions > 0);
  SOP_CHECK(options_.num_clusters > 0);
  SOP_CHECK(options_.outlier_rate >= 0.0 && options_.outlier_rate <= 1.0);
  SOP_CHECK(options_.hotspot_frac >= 0.0 && options_.hotspot_frac <= 1.0);
  SOP_CHECK(options_.domain_lo < options_.domain_hi);
  // Cluster centers: evenly placed in the middle band of the domain so the
  // Gaussian mass stays inside it.
  const double span = options_.domain_hi - options_.domain_lo;
  for (int c = 0; c < options_.num_clusters; ++c) {
    std::vector<double> center(static_cast<size_t>(options_.dimensions));
    const double frac =
        (static_cast<double>(c) + 1.0) /
        (static_cast<double>(options_.num_clusters) + 1.0);
    for (double& v : center) {
      v = options_.domain_lo + span * frac;
    }
    // Offset non-first dimensions per cluster so centers are not colinear.
    for (size_t d = 1; d < center.size(); ++d) {
      center[d] = options_.domain_lo +
                  span * ((frac + 0.37 * static_cast<double>(d) +
                           0.19 * static_cast<double>(c)) -
                          std::floor(frac + 0.37 * static_cast<double>(d) +
                                     0.19 * static_cast<double>(c)));
    }
    centers_.push_back(std::move(center));
  }
}

bool SyntheticSource::Next(Point* out) {
  if (remaining_ <= 0) return false;
  --remaining_;
  out->seq = 0;  // assigned by the driver
  out->time = index_ * options_.time_step;
  ++index_;
  out->values.resize(static_cast<size_t>(options_.dimensions));
  if (rng_.Bernoulli(options_.outlier_rate)) {
    // Outlier candidate: uniform over the whole domain.
    for (double& v : out->values) {
      v = rng_.UniformDouble(options_.domain_lo, options_.domain_hi);
    }
  } else {
    // Inlier candidate: one of the Gaussian clusters. The hotspot draw is
    // gated so hotspot_frac == 0 consumes no extra randomness and existing
    // seeds keep producing bit-identical streams.
    size_t which = 0;
    if (options_.hotspot_frac <= 0.0 ||
        !rng_.Bernoulli(options_.hotspot_frac)) {
      which = static_cast<size_t>(rng_.NextBelow(centers_.size()));
    }
    const auto& center = centers_[which];
    for (size_t d = 0; d < out->values.size(); ++d) {
      out->values[d] = rng_.Normal(center[d], options_.cluster_stddev);
    }
  }
  return true;
}

std::vector<Point> GenerateSynthetic(int64_t n,
                                     const SyntheticOptions& options) {
  SyntheticSource source(n, options);
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(n));
  Point p;
  while (source.Next(&p)) points.push_back(p);
  return points;
}

}  // namespace gen
}  // namespace sop
