// Random workload generators for the paper's evaluation matrix
// (Table 1 cases (A)-(G) with the Table 2 parameter ranges).

#ifndef SOP_GEN_WORKLOAD_GEN_H_
#define SOP_GEN_WORKLOAD_GEN_H_

#include <cstdint>
#include <string>

#include "sop/query/workload.h"

namespace sop {
namespace gen {

/// Which parameters vary (Table 1). Fixed parameters use the *_fixed
/// values below; varying ones are drawn uniformly from [lo, hi).
enum class WorkloadCase {
  kA,  // arbitrary R
  kB,  // arbitrary K
  kC,  // arbitrary K and R
  kD,  // arbitrary Win
  kE,  // arbitrary Slide
  kF,  // arbitrary Win and Slide
  kG,  // all four arbitrary
};

/// Parses "A".."G". Returns true on success.
bool ParseWorkloadCase(const std::string& name, WorkloadCase* out);

/// Parameter ranges (paper Table 2) and fixed values (paper Sec. 6.2/6.3).
/// Window and slide draws are quantized to `slide_quantum` so the swift
/// slide (the gcd) stays meaningful; the paper's slide range itself starts
/// at the 50-unit granularity.
struct WorkloadGenOptions {
  double r_lo = 200.0;
  double r_hi = 2000.0;
  int64_t k_lo = 30;
  int64_t k_hi = 1500;
  int64_t win_lo = 1000;
  int64_t win_hi = 500000;
  int64_t slide_lo = 50;
  int64_t slide_hi = 50000;
  double r_fixed = 700.0;
  int64_t k_fixed = 30;
  int64_t win_fixed = 10000;
  int64_t slide_fixed = 500;
  int64_t slide_quantum = 50;
  uint64_t seed = 42;
};

/// Generates `num_queries` random queries for `wcase`.
Workload GenerateWorkload(WorkloadCase wcase, size_t num_queries,
                          WindowType window_type,
                          const WorkloadGenOptions& options);

}  // namespace gen
}  // namespace sop

#endif  // SOP_GEN_WORKLOAD_GEN_H_
