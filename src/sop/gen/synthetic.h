// Synthetic stream generator matching the paper's synthetic dataset
// (Sec. 6.1): Gaussian-distributed inlier candidates mixed with
// uniform-distributed outliers, the latter randomly spread over every time
// segment of the stream, at a small (< 5%) rate.

#ifndef SOP_GEN_SYNTHETIC_H_
#define SOP_GEN_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "sop/common/point.h"
#include "sop/common/random.h"
#include "sop/stream/source.h"

namespace sop {
namespace gen {

/// Parameters of the Gaussian + uniform mixture. Defaults are sized so the
/// paper's r range [200, 2000) is meaningful: inliers have dozens-to-
/// hundreds of neighbors within small r, uniform outliers almost none.
struct SyntheticOptions {
  int dimensions = 2;
  /// Number of Gaussian inlier clusters, spread evenly over the domain.
  int num_clusters = 3;
  /// Standard deviation of each Gaussian cluster, per dimension. The
  /// default keeps clusters dense enough that points accumulate the
  /// paper's k range of neighbors within its r range quickly.
  double cluster_stddev = 200.0;
  /// Fraction of points drawn from the uniform outlier distribution.
  double outlier_rate = 0.03;
  /// Domain of the uniform distribution (and of the cluster centers).
  double domain_lo = 0.0;
  double domain_hi = 10000.0;
  /// Timestamp increment between consecutive points.
  int64_t time_step = 1;
  /// Spatial skew for scale-out experiments: this fraction of inlier
  /// candidates is forced into the FIRST cluster instead of a uniformly
  /// chosen one, concentrating load on whichever shard owns that region.
  /// 0 (the default) draws nothing extra from the RNG, so existing seeds
  /// reproduce bit-identical streams.
  double hotspot_frac = 0.0;
  uint64_t seed = 42;
};

/// Materializes `n` points (small streams / tests).
std::vector<Point> GenerateSynthetic(int64_t n, const SyntheticOptions& options);

/// Streaming source producing `n` points lazily (large benches).
class SyntheticSource : public StreamSource {
 public:
  SyntheticSource(int64_t n, const SyntheticOptions& options);

  bool Next(Point* out) override;

 private:
  SyntheticOptions options_;
  std::vector<std::vector<double>> centers_;
  Rng rng_;
  int64_t remaining_;
  int64_t index_ = 0;
};

}  // namespace gen
}  // namespace sop

#endif  // SOP_GEN_SYNTHETIC_H_
