// STT-like stock trade trace generator.
//
// The paper's real dataset — Stock Trading Traces from inetats.com, one
// million transaction records over a single trading day with schema
// (name, transId, time, volume, price, type) — is no longer distributed.
// This generator synthesizes a stream with the same schema and the
// statistical features the detection algorithms are sensitive to (see
// DESIGN.md Sec. 6): per-symbol geometric-Brownian price paths, log-normal
// volumes, U-shaped intraday arrival intensity, and occasional anomalies
// (block trades, price spikes) at a small rate.
//
// Emitted points: time = seconds since session open scaled to the trading
// day; values = {scaled price, scaled volume} (plus the symbol id as an
// extra attribute when `include_symbol_attribute` is set). Values are
// scaled into [0, value_scale] so the paper's r range [200, 2000) is
// meaningful.

#ifndef SOP_GEN_STT_H_
#define SOP_GEN_STT_H_

#include <cstdint>
#include <vector>

#include "sop/common/point.h"
#include "sop/common/random.h"
#include "sop/stream/source.h"

namespace sop {
namespace gen {

struct SttOptions {
  /// Number of traded symbols.
  int num_symbols = 50;
  /// Trading session length in seconds (6.5 hours).
  int64_t session_seconds = 23400;
  /// Target attribute domain: prices and volumes are scaled into
  /// [0, value_scale].
  double value_scale = 10000.0;
  /// Per-trade fraction of anomalous trades (block trades / price spikes).
  double anomaly_rate = 0.02;
  /// Per-step volatility of the per-symbol price random walk.
  double volatility = 0.0004;
  /// Add the symbol id (scaled) as a third attribute.
  bool include_symbol_attribute = false;
  uint64_t seed = 7;
};

/// Materializes `n` trades (tests / small runs).
std::vector<Point> GenerateStt(int64_t n, const SttOptions& options);

/// Streaming source producing `n` trades lazily.
class SttSource : public StreamSource {
 public:
  SttSource(int64_t n, const SttOptions& options);

  bool Next(Point* out) override;

 private:
  struct Symbol {
    double log_price;  // random walk state
    double base_volume;
  };

  SttOptions options_;
  Rng rng_;
  std::vector<Symbol> symbols_;
  int64_t remaining_;
  int64_t total_;
  int64_t index_ = 0;
  double price_lo_;
  double price_hi_;
};

}  // namespace gen
}  // namespace sop

#endif  // SOP_GEN_STT_H_
