#include "sop/baselines/mcod.h"

#include <algorithm>
#include <utility>

#include "sop/common/check.h"
#include "sop/common/memory.h"
#include "sop/obs/trace.h"
#include "sop/stream/window.h"

namespace sop {

void McodDetector::NeighborList::ExpireBefore(int64_t min_key) {
  while (head < items.size() && items[head].key < min_key) ++head;
  // Compact once the dead prefix dominates, to bound memory.
  if (head > 64 && head * 2 > items.size()) {
    items.erase(items.begin(), items.begin() + static_cast<long>(head));
    head = 0;
  }
}

int64_t McodDetector::NeighborList::CountWithin(double r, int64_t min_key,
                                                int64_t stop_at) const {
  // Keys ascend, so in-window entries form a suffix: scan newest-first
  // with early exit.
  int64_t count = 0;
  for (size_t i = items.size(); i > head; --i) {
    const Neighbor& n = items[i - 1];
    if (n.key < min_key) break;
    if (n.dist <= r) {
      if (++count >= stop_at) break;
    }
  }
  return count;
}

size_t McodDetector::NeighborList::MemoryBytes() const {
  return VectorHeapBytes(items);
}

McodDetector::McodDetector(const Workload& workload, Options options)
    : workload_(workload),
      options_(options),
      dist_(workload.MakeDistanceFn(0)),
      kernel_(dist_.MakeKernel()),
      buffer_(workload.window_type()) {
  const std::string problem = workload_.Validate();
  SOP_CHECK_MSG(problem.empty(), problem.c_str());
  for (size_t i = 0; i < workload_.num_queries(); ++i) {
    SOP_CHECK_MSG(workload_.query(i).attribute_set ==
                      workload_.query(0).attribute_set,
                  "McodDetector requires a single attribute set; use "
                  "MultiAttributeDetector for mixed workloads");
  }
  r_min_ = workload_.query(0).r;
  r_max_ = workload_.query(0).r;
  for (const OutlierQuery& q : workload_.queries()) {
    r_min_ = std::min(r_min_, q.r);
    r_max_ = std::max(r_max_, q.r);
  }
  k_max_ = workload_.MaxK();
  win_max_ = workload_.MaxWindow();
  if (options_.use_grid_index) {
    grid_ = std::make_unique<GridIndex>(dist_,
                                        r_min_ * options_.grid_cell_factor);
  }
}

void McodDetector::InsertPoint(Seq s) {
  const Point& p = buffer_.At(s);
  const int64_t p_key = buffer_.KeyOf(s);
  PointState& ps = StateOf(s);

  // The full range scan over older alive points: retain every neighbor any
  // query could use, symmetrically; collect micro-cluster candidates.
  const double cluster_radius = r_min_ / 2.0;
  scratch_close_.clear();
  auto consider = [&](Seq t, double d) {
    PointState& ts = StateOf(t);
    ps.list.Append({buffer_.KeyOf(t), d});
    ts.list.Append({p_key, d});
    if (d <= cluster_radius && ts.cluster < 0) scratch_close_.push_back(t);
  };
  const ColumnStore& cols = buffer_.columns();
  size_t candidates_examined = 0;
  uint64_t kernel_hits = 0;
  if (grid_ != nullptr) {
    // Grid-assisted range query: batch the candidate superset into the
    // reused scratch buffer, confirm every distance with one kernel call,
    // and sort so p's own list stays ascending by key.
    grid_->CollectCandidates(p, r_max_, &scratch_seqs_);
    candidates_examined = scratch_seqs_.size();
    // Only preceding points: p is not yet indexed, and succeeding points
    // handle the pair when they arrive.
    size_t m = 0;
    for (const Seq t : scratch_seqs_) {
      if (t < s) scratch_seqs_[m++] = t;
    }
    scratch_dists_.resize(m);
    const size_t hits = kernel_.PartitionWithinR(
        cols, p, scratch_seqs_.data(), m, r_max_, scratch_dists_.data());
    SOP_COUNTER_ADD("kernel/batches", 1);
    SOP_COUNTER_ADD("kernel/candidates", m);
    kernel_hits = hits;
    scratch_candidates_.clear();
    for (size_t i = 0; i < hits; ++i) {
      scratch_candidates_.push_back({scratch_seqs_[i], scratch_dists_[i]});
    }
    std::sort(scratch_candidates_.begin(), scratch_candidates_.end());
    for (const auto& [t, d] : scratch_candidates_) consider(t, d);
  } else {
    // Linear range scan, batched: one kernel call over the whole window
    // prefix (MCOD has no early exit — every preceding point is checked).
    const size_t m = static_cast<size_t>(s - buffer_.first_seq());
    candidates_examined = m;
    if (m > 0) {
      const Seq lo = buffer_.first_seq();
      scratch_dists_.resize(m);
      kernel_.BatchDistRange(cols, p, lo, m, scratch_dists_.data());
      SOP_COUNTER_ADD("kernel/batches", 1);
      SOP_COUNTER_ADD("kernel/candidates", m);
      for (size_t i = 0; i < m; ++i) {
        const double d = scratch_dists_[i];
        if (d > r_max_) continue;
        ++kernel_hits;
        consider(lo + static_cast<Seq>(i), d);
      }
    }
  }
  if (grid_ != nullptr) grid_->Insert(s, p);
  if (SOP_OBS_ENABLED()) {
    SOP_COUNTER_ADD("mcod/range_scans", 1);
    SOP_COUNTER_ADD("mcod/candidates_examined", candidates_examined);
    SOP_COUNTER_ADD("mcod/neighbors_retained", ps.list.size());
    SOP_COUNTER_ADD("kernel/hits", kernel_hits);
  }

  // Micro-cluster maintenance for the simulated (k_max, r_min) query:
  // join the first center within r_min/2, else try to seed a new cluster
  // from the unclustered close points.
  for (size_t c = 0; c < clusters_.size(); ++c) {
    MicroCluster& mc = clusters_[c];
    if (mc.dissolved) continue;
    if (dist_(p, mc.center) <= cluster_radius) {
      mc.members.emplace_back(s, p_key);
      ps.cluster = static_cast<int32_t>(c);
      SOP_COUNTER_ADD("mcod/cluster_joins", 1);
      return;
    }
  }
  if (static_cast<int64_t>(scratch_close_.size()) >= k_max_) {
    SOP_COUNTER_ADD("mcod/clusters_seeded", 1);
    MicroCluster mc;
    mc.center = p;
    for (Seq t : scratch_close_) {
      mc.members.emplace_back(t, buffer_.KeyOf(t));
      StateOf(t).cluster = static_cast<int32_t>(clusters_.size());
    }
    mc.members.emplace_back(s, p_key);
    ps.cluster = static_cast<int32_t>(clusters_.size());
    clusters_.push_back(std::move(mc));
  }
}

std::vector<QueryResult> McodDetector::Advance(std::vector<Point> batch,
                                               int64_t boundary) {
  if (!received_any_ && !batch.empty()) {
    // Streams resumed from a checkpoint replay start mid-sequence.
    buffer_.ResetTo(batch.front().seq);
    received_any_ = true;
  }
  const Seq first_new_seq = buffer_.next_seq();
  for (Point& p : batch) {
    buffer_.Append(std::move(p));
    states_.emplace_back();
  }
  const int64_t swift_start = WindowStart(boundary, win_max_);
  if (grid_ != nullptr) {
    // Un-index expiring points while their coordinates are still alive.
    // Points of the current batch are not yet indexed (InsertPoint runs
    // below), so skip them if they expire immediately.
    const Seq expire_end =
        std::min(buffer_.LowerBoundKey(swift_start), first_new_seq);
    for (Seq s = buffer_.first_seq(); s < expire_end; ++s) {
      grid_->Remove(s, buffer_.At(s));
    }
  }
  const size_t dropped = buffer_.ExpireBefore(swift_start);
  for (size_t i = 0; i < dropped; ++i) states_.pop_front();

  // Expire cluster members; dissolve clusters that fell below k_max + 1
  // members (their members revert to dispersed status — their neighbor
  // lists are intact, so no rescan is needed).
  for (MicroCluster& mc : clusters_) {
    if (mc.dissolved) continue;
    while (!mc.members.empty() && mc.members.front().second < swift_start) {
      mc.members.pop_front();
    }
    if (static_cast<int64_t>(mc.members.size()) < k_max_ + 1) {
      for (const auto& [seq, key] : mc.members) {
        if (buffer_.Contains(seq)) StateOf(seq).cluster = -1;
      }
      mc.members.clear();
      mc.dissolved = true;
    }
  }
  // Compact dissolved clusters occasionally.
  if (clusters_.size() > 16 &&
      static_cast<size_t>(std::count_if(
          clusters_.begin(), clusters_.end(),
          [](const MicroCluster& mc) { return mc.dissolved; })) >
          clusters_.size() / 2) {
    std::vector<MicroCluster> live;
    for (MicroCluster& mc : clusters_) {
      if (mc.dissolved) continue;
      const int32_t new_id = static_cast<int32_t>(live.size());
      for (const auto& [seq, key] : mc.members) {
        if (buffer_.Contains(seq)) StateOf(seq).cluster = new_id;
      }
      live.push_back(std::move(mc));
    }
    clusters_.swap(live);
  }

  // Expire retained neighbors.
  for (PointState& st : states_) st.list.ExpireBefore(swift_start);

  // Insert the new arrivals (they survived expiry iff still alive).
  for (Seq s = std::max(first_new_seq, buffer_.first_seq());
       s < buffer_.next_seq(); ++s) {
    InsertPoint(s);
  }

  // Emission: micro-cluster fast path, then the neighbor-list post-filter.
  std::vector<QueryResult> results;
  last_results_bytes_ = 0;
  [[maybe_unused]] uint64_t obs_cluster_inliers = 0;
  for (size_t qi = 0; qi < workload_.num_queries(); ++qi) {
    const OutlierQuery& q = workload_.query(qi);
    if (!EmitsAt(boundary, q.slide)) continue;
    QueryResult result;
    result.query_index = qi;
    result.boundary = boundary;
    const int64_t start = WindowStart(boundary, q.win);
    for (Seq s = buffer_.LowerBoundKey(start); s < buffer_.next_seq(); ++s) {
      const PointState& st = StateOf(s);
      if (st.cluster >= 0) {
        // Co-members are pairwise within r_min <= q.r; count those inside
        // q's window (keys ascend within the deque).
        const MicroCluster& mc = clusters_[static_cast<size_t>(st.cluster)];
        const auto it = std::lower_bound(
            mc.members.begin(), mc.members.end(), start,
            [](const std::pair<Seq, int64_t>& m, int64_t key) {
              return m.second < key;
            });
        const int64_t co_members =
            static_cast<int64_t>(mc.members.end() - it) - 1;
        if (co_members >= q.k) {
          ++obs_cluster_inliers;
          continue;  // inlier via the cluster
        }
      }
      if (st.list.CountWithin(q.r, start, q.k) < q.k) {
        result.outliers.push_back(s);
      }
    }
    last_results_bytes_ += VectorHeapBytes(result.outliers);
    results.push_back(std::move(result));
  }
  if (SOP_OBS_ENABLED()) {
    SOP_COUNTER_ADD("mcod/cluster_inlier_fastpath", obs_cluster_inliers);
    SOP_GAUGE_SET("mcod/alive_points", buffer_.next_seq() - buffer_.first_seq());
    SOP_GAUGE_SET("mcod/live_clusters", num_clusters());
  }
  return results;
}

size_t McodDetector::MemoryBytes() const {
  size_t bytes = DequeHeapBytes(states_) + last_results_bytes_;
  if (grid_ != nullptr) bytes += grid_->MemoryBytes();
  for (const PointState& st : states_) bytes += st.list.MemoryBytes();
  for (const MicroCluster& mc : clusters_) {
    bytes += DequeHeapBytes(mc.members) + VectorHeapBytes(mc.center.values);
  }
  return bytes;
}

size_t McodDetector::num_clusters() const {
  return static_cast<size_t>(std::count_if(
      clusters_.begin(), clusters_.end(),
      [](const MicroCluster& mc) { return !mc.dissolved; }));
}

}  // namespace sop
