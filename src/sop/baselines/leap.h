// LEAP baseline: reimplementation of the state-of-the-art *single-query*
// streaming distance-based outlier detector (Cao et al., "Scalable
// distance-based outlier detection over high-volume data streams",
// ICDE 2014 — reference [7] of the SOP paper), applied independently per
// query, exactly as the SOP paper's multi-query LEAP baseline does.
//
// Per query and per alive point, LEAP keeps *minimal probing* evidence:
// the count of succeeding neighbors found so far (they never expire before
// the point), the unexpired preceding neighbors found so far, and the
// contiguous probed region. Probing is *lifespan-aware*: new arrivals
// (succeeding, immortal evidence) are probed before older points, and the
// scan stops as soon as k pieces of evidence exist. A point with k
// succeeding neighbors is a safe inlier and is never probed again.
//
// Because evidence is per query, CPU and memory grow linearly with the
// workload size — the scaling wall the SOP paper demonstrates.

#ifndef SOP_BASELINES_LEAP_H_
#define SOP_BASELINES_LEAP_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "sop/common/dist_kernel.h"
#include "sop/common/distance.h"
#include "sop/detector/detector.h"
#include "sop/stream/stream_buffer.h"

namespace sop {

class LeapDetector : public OutlierDetector {
 public:
  /// Cumulative probing counters (exposed for tests and benches).
  struct Stats {
    int64_t distances_computed = 0;
    int64_t points_evaluated = 0;
    int64_t safe_points_discovered = 0;
  };

  explicit LeapDetector(const Workload& workload);

  const char* name() const override { return "leap"; }
  const Stats& stats() const { return stats_; }
  std::vector<QueryResult> Advance(std::vector<Point> batch,
                                   int64_t boundary) override;
  size_t MemoryBytes() const override;

 private:
  // Probing evidence of one point for one query.
  struct Evidence {
    int64_t succ_count = 0;
    // Probed region is [left_cursor, right_cursor); initialized to the
    // point's own singleton {seq}.
    Seq left_cursor = 0;
    Seq right_cursor = 0;
    bool safe = false;
    // Keys of found preceding neighbors, descending (newest first);
    // expired entries pop from the back.
    std::vector<int64_t> pred_keys;
  };

  // One independent LEAP instance.
  struct QueryState {
    OutlierQuery query;
    DistanceFn dist;
    DistanceKernel kernel;           // batch form of dist (own subspace)
    Seq first_seq = 0;               // seq of evidence.front()
    std::deque<Evidence> evidence;   // per point inside the query's window
  };

  // Classifies point `s` for `qs`'s window [start, boundary), probing as
  // needed. Returns true iff outlier.
  bool EvaluatePoint(QueryState& qs, Seq s, Seq window_begin, int64_t start);

  Workload workload_;
  StreamBuffer buffer_;
  int64_t win_max_ = 0;
  bool received_any_ = false;  // buffer rebased to the first batch's seq
  std::vector<QueryState> states_;
  Stats stats_;
  Stats obs_reported_;  // stats_ values already published to obs counters
  // Cumulative kernel telemetry, diffed into the kernel/* counters once
  // per Advance like stats_ (EvaluatePoint is too hot to instrument per
  // probe block).
  uint64_t kernel_batches_ = 0;
  uint64_t kernel_candidates_ = 0;
  uint64_t kernel_hits_ = 0;
  uint64_t reported_kernel_batches_ = 0;
  uint64_t reported_kernel_candidates_ = 0;
  uint64_t reported_kernel_hits_ = 0;
  std::vector<double> probe_dists_;  // per-block kernel output
  size_t last_results_bytes_ = 0;
};

}  // namespace sop

#endif  // SOP_BASELINES_LEAP_H_
