#include "sop/baselines/leap.h"

#include <utility>

#include "sop/common/check.h"
#include "sop/common/memory.h"
#include "sop/obs/trace.h"
#include "sop/stream/window.h"

namespace sop {

LeapDetector::LeapDetector(const Workload& workload)
    : workload_(workload), buffer_(workload.window_type()) {
  const std::string problem = workload_.Validate();
  SOP_CHECK_MSG(problem.empty(), problem.c_str());
  win_max_ = workload_.MaxWindow();
  states_.reserve(workload_.num_queries());
  for (size_t i = 0; i < workload_.num_queries(); ++i) {
    states_.push_back(QueryState{workload_.query(i),
                                 workload_.MakeDistanceFn(i),
                                 /*first_seq=*/0,
                                 {}});
  }
}

std::vector<QueryResult> LeapDetector::Advance(std::vector<Point> batch,
                                               int64_t boundary) {
  if (!received_any_ && !batch.empty()) {
    // Streams resumed from a checkpoint replay start mid-sequence.
    buffer_.ResetTo(batch.front().seq);
    received_any_ = true;
  }
  const Seq first_new_seq = buffer_.next_seq();
  for (Point& p : batch) buffer_.Append(std::move(p));
  buffer_.ExpireBefore(WindowStart(boundary, win_max_));

  std::vector<QueryResult> results;
  last_results_bytes_ = 0;
  for (size_t qi = 0; qi < states_.size(); ++qi) {
    QueryState& qs = states_[qi];
    // Grow evidence for the new arrivals.
    if (qs.evidence.empty()) qs.first_seq = first_new_seq;
    for (Seq s = std::max(first_new_seq,
                          qs.first_seq + static_cast<Seq>(qs.evidence.size()));
         s < buffer_.next_seq(); ++s) {
      Evidence e;
      e.left_cursor = s;
      e.right_cursor = s + 1;
      qs.evidence.push_back(std::move(e));
    }
    // Shrink evidence to this query's own window: points below
    // boundary - win can never re-enter it.
    const int64_t q_start = WindowStart(boundary, qs.query.win);
    while (!qs.evidence.empty() &&
           (qs.first_seq < buffer_.first_seq() ||
            buffer_.KeyOf(qs.first_seq) < q_start)) {
      qs.evidence.pop_front();
      ++qs.first_seq;
    }

    if (!EmitsAt(boundary, qs.query.slide)) continue;
    QueryResult result;
    result.query_index = qi;
    result.boundary = boundary;
    const Seq window_begin = buffer_.LowerBoundKey(q_start);
    for (Seq s = window_begin; s < buffer_.next_seq(); ++s) {
      if (EvaluatePoint(qs, s, window_begin, q_start)) {
        result.outliers.push_back(s);
      }
    }
    last_results_bytes_ += VectorHeapBytes(result.outliers);
    results.push_back(std::move(result));
  }
  // Publish this batch's probing-cost deltas. EvaluatePoint is far too hot
  // to instrument per probe; the cumulative Stats are diffed here instead.
  if (SOP_OBS_ENABLED()) {
    SOP_COUNTER_ADD("leap/distances_computed",
                    stats_.distances_computed - obs_reported_.distances_computed);
    SOP_COUNTER_ADD("leap/points_evaluated",
                    stats_.points_evaluated - obs_reported_.points_evaluated);
    SOP_COUNTER_ADD(
        "leap/safe_points_discovered",
        stats_.safe_points_discovered - obs_reported_.safe_points_discovered);
    SOP_GAUGE_SET("leap/alive_points",
                  buffer_.next_seq() - buffer_.first_seq());
    obs_reported_ = stats_;
  }
  return results;
}

bool LeapDetector::EvaluatePoint(QueryState& qs, Seq s, Seq window_begin,
                                 int64_t start) {
  Evidence& e = qs.evidence[static_cast<size_t>(s - qs.first_seq)];
  const int64_t k = qs.query.k;
  ++stats_.points_evaluated;
  if (e.safe) return false;
  if (e.succ_count >= k) {
    // Safe inlier: k neighbors that outlive the point. Evidence beyond the
    // flag is no longer needed.
    e.safe = true;
    e.pred_keys.clear();
    e.pred_keys.shrink_to_fit();
    return false;
  }
  // Drop expired preceding evidence (descending keys: expired at the back).
  while (!e.pred_keys.empty() && e.pred_keys.back() < start) {
    e.pred_keys.pop_back();
  }
  int64_t total = e.succ_count + static_cast<int64_t>(e.pred_keys.size());
  const Point& p = buffer_.At(s);
  const double r = qs.query.r;
  // Probe the new (succeeding) side first — lifespan-aware prioritization:
  // succeeding evidence never expires while p is alive.
  Seq t = e.right_cursor;
  for (; total < k && t < buffer_.next_seq(); ++t) {
    ++stats_.distances_computed;
    if (qs.dist(p, buffer_.At(t)) <= r) {
      ++e.succ_count;
      ++total;
    }
  }
  e.right_cursor = t;
  // Then resume the backward scan over older in-window points.
  Seq u = e.left_cursor - 1;
  for (; total < k && u >= window_begin; --u) {
    ++stats_.distances_computed;
    if (qs.dist(p, buffer_.At(u)) <= r) {
      e.pred_keys.push_back(buffer_.KeyOf(u));
      ++total;
    }
  }
  e.left_cursor = u + 1;
  if (e.succ_count >= k) {
    e.safe = true;
    e.pred_keys.clear();
    e.pred_keys.shrink_to_fit();
    ++stats_.safe_points_discovered;
  }
  return total < k;
}

size_t LeapDetector::MemoryBytes() const {
  size_t bytes = last_results_bytes_;
  for (const QueryState& qs : states_) {
    bytes += DequeHeapBytes(qs.evidence);
    for (const Evidence& e : qs.evidence) bytes += VectorHeapBytes(e.pred_keys);
  }
  return bytes;
}

}  // namespace sop
