#include "sop/baselines/leap.h"

#include <algorithm>
#include <utility>

#include "sop/common/check.h"
#include "sop/common/memory.h"
#include "sop/obs/trace.h"
#include "sop/stream/window.h"

namespace sop {

namespace {
// Cursor probes run through the batch kernel in blocks of this many
// points. Smaller than K-SKY's confirmation block: a LEAP probe often
// stops after ~k successes, so a large block would mostly compute
// distances the minimal-probing cursor never consumes.
constexpr size_t kProbeBlock = 32;
}  // namespace

LeapDetector::LeapDetector(const Workload& workload)
    : workload_(workload), buffer_(workload.window_type()) {
  const std::string problem = workload_.Validate();
  SOP_CHECK_MSG(problem.empty(), problem.c_str());
  win_max_ = workload_.MaxWindow();
  states_.reserve(workload_.num_queries());
  for (size_t i = 0; i < workload_.num_queries(); ++i) {
    DistanceFn dist = workload_.MakeDistanceFn(i);
    DistanceKernel kernel = dist.MakeKernel();
    states_.push_back(QueryState{workload_.query(i),
                                 std::move(dist),
                                 std::move(kernel),
                                 /*first_seq=*/0,
                                 {}});
  }
  probe_dists_.resize(kProbeBlock);
}

std::vector<QueryResult> LeapDetector::Advance(std::vector<Point> batch,
                                               int64_t boundary) {
  if (!received_any_ && !batch.empty()) {
    // Streams resumed from a checkpoint replay start mid-sequence.
    buffer_.ResetTo(batch.front().seq);
    received_any_ = true;
  }
  const Seq first_new_seq = buffer_.next_seq();
  for (Point& p : batch) buffer_.Append(std::move(p));
  buffer_.ExpireBefore(WindowStart(boundary, win_max_));

  std::vector<QueryResult> results;
  last_results_bytes_ = 0;
  for (size_t qi = 0; qi < states_.size(); ++qi) {
    QueryState& qs = states_[qi];
    // Grow evidence for the new arrivals.
    if (qs.evidence.empty()) qs.first_seq = first_new_seq;
    for (Seq s = std::max(first_new_seq,
                          qs.first_seq + static_cast<Seq>(qs.evidence.size()));
         s < buffer_.next_seq(); ++s) {
      Evidence e;
      e.left_cursor = s;
      e.right_cursor = s + 1;
      qs.evidence.push_back(std::move(e));
    }
    // Shrink evidence to this query's own window: points below
    // boundary - win can never re-enter it.
    const int64_t q_start = WindowStart(boundary, qs.query.win);
    while (!qs.evidence.empty() &&
           (qs.first_seq < buffer_.first_seq() ||
            buffer_.KeyOf(qs.first_seq) < q_start)) {
      qs.evidence.pop_front();
      ++qs.first_seq;
    }

    if (!EmitsAt(boundary, qs.query.slide)) continue;
    QueryResult result;
    result.query_index = qi;
    result.boundary = boundary;
    const Seq window_begin = buffer_.LowerBoundKey(q_start);
    for (Seq s = window_begin; s < buffer_.next_seq(); ++s) {
      if (EvaluatePoint(qs, s, window_begin, q_start)) {
        result.outliers.push_back(s);
      }
    }
    last_results_bytes_ += VectorHeapBytes(result.outliers);
    results.push_back(std::move(result));
  }
  // Publish this batch's probing-cost deltas. EvaluatePoint is far too hot
  // to instrument per probe; the cumulative Stats are diffed here instead.
  if (SOP_OBS_ENABLED()) {
    SOP_COUNTER_ADD("leap/distances_computed",
                    stats_.distances_computed - obs_reported_.distances_computed);
    SOP_COUNTER_ADD("leap/points_evaluated",
                    stats_.points_evaluated - obs_reported_.points_evaluated);
    SOP_COUNTER_ADD(
        "leap/safe_points_discovered",
        stats_.safe_points_discovered - obs_reported_.safe_points_discovered);
    SOP_GAUGE_SET("leap/alive_points",
                  buffer_.next_seq() - buffer_.first_seq());
    SOP_COUNTER_ADD("kernel/batches", kernel_batches_ - reported_kernel_batches_);
    SOP_COUNTER_ADD("kernel/candidates",
                    kernel_candidates_ - reported_kernel_candidates_);
    SOP_COUNTER_ADD("kernel/hits", kernel_hits_ - reported_kernel_hits_);
    obs_reported_ = stats_;
    reported_kernel_batches_ = kernel_batches_;
    reported_kernel_candidates_ = kernel_candidates_;
    reported_kernel_hits_ = kernel_hits_;
  }
  return results;
}

bool LeapDetector::EvaluatePoint(QueryState& qs, Seq s, Seq window_begin,
                                 int64_t start) {
  Evidence& e = qs.evidence[static_cast<size_t>(s - qs.first_seq)];
  const int64_t k = qs.query.k;
  ++stats_.points_evaluated;
  if (e.safe) return false;
  if (e.succ_count >= k) {
    // Safe inlier: k neighbors that outlive the point. Evidence beyond the
    // flag is no longer needed.
    e.safe = true;
    e.pred_keys.clear();
    e.pred_keys.shrink_to_fit();
    return false;
  }
  // Drop expired preceding evidence (descending keys: expired at the back).
  while (!e.pred_keys.empty() && e.pred_keys.back() < start) {
    e.pred_keys.pop_back();
  }
  int64_t total = e.succ_count + static_cast<int64_t>(e.pred_keys.size());
  const Point& p = buffer_.At(s);
  const double r = qs.query.r;
  // Probe the new (succeeding) side first — lifespan-aware prioritization:
  // succeeding evidence never expires while p is alive. Distances come
  // from the batch kernel, kProbeBlock contiguous points per call; the
  // cursor consumes them in the same order — and stops at the same point —
  // as the old per-pair probe, so evidence and stats are unchanged.
  const ColumnStore& cols = buffer_.columns();
  Seq t = e.right_cursor;
  while (total < k && t < buffer_.next_seq()) {
    const size_t nb = std::min(
        kProbeBlock, static_cast<size_t>(buffer_.next_seq() - t));
    qs.kernel.BatchDistRange(cols, p, t, nb, probe_dists_.data());
    ++kernel_batches_;
    kernel_candidates_ += nb;
    size_t j = 0;
    for (; j < nb && total < k; ++j) {
      ++stats_.distances_computed;
      if (probe_dists_[j] <= r) {
        ++e.succ_count;
        ++total;
        ++kernel_hits_;
      }
    }
    t += static_cast<Seq>(j);
  }
  e.right_cursor = t;
  // Then resume the backward scan over older in-window points.
  Seq u = e.left_cursor - 1;
  while (total < k && u >= window_begin) {
    const Seq block_lo =
        std::max(window_begin, u - static_cast<Seq>(kProbeBlock) + 1);
    const size_t nb = static_cast<size_t>(u - block_lo + 1);
    qs.kernel.BatchDistRange(cols, p, block_lo, nb, probe_dists_.data());
    ++kernel_batches_;
    kernel_candidates_ += nb;
    while (u >= block_lo && total < k) {
      ++stats_.distances_computed;
      if (probe_dists_[static_cast<size_t>(u - block_lo)] <= r) {
        e.pred_keys.push_back(buffer_.KeyOf(u));
        ++total;
        ++kernel_hits_;
      }
      --u;
    }
  }
  e.left_cursor = u + 1;
  if (e.succ_count >= k) {
    e.safe = true;
    e.pred_keys.clear();
    e.pred_keys.shrink_to_fit();
    ++stats_.safe_points_discovered;
  }
  return total < k;
}

size_t LeapDetector::MemoryBytes() const {
  size_t bytes = last_results_bytes_;
  for (const QueryState& qs : states_) {
    bytes += DequeHeapBytes(qs.evidence);
    for (const Evidence& e : qs.evidence) bytes += VectorHeapBytes(e.pred_keys);
  }
  return bytes;
}

}  // namespace sop
