// NaiveDetector: the exact brute-force multi-query detector.
//
// Per emission, every in-window point's neighbor count is recomputed with a
// full range scan. Quadratic per window and query — useful as the
// correctness oracle in tests and as the floor baseline in ablations, not
// as a production algorithm. Handles mixed attribute sets natively (each
// query uses its own distance function).

#ifndef SOP_BASELINES_NAIVE_H_
#define SOP_BASELINES_NAIVE_H_

#include <cstdint>
#include <vector>

#include "sop/common/distance.h"
#include "sop/detector/detector.h"
#include "sop/stream/stream_buffer.h"

namespace sop {

class NaiveDetector : public OutlierDetector {
 public:
  explicit NaiveDetector(const Workload& workload);

  const char* name() const override { return "naive"; }
  std::vector<QueryResult> Advance(std::vector<Point> batch,
                                   int64_t boundary) override;
  size_t MemoryBytes() const override;

 private:
  Workload workload_;
  std::vector<DistanceFn> query_dist_;  // per query
  StreamBuffer buffer_;
  int64_t win_max_ = 0;
  bool received_any_ = false;  // buffer rebased to the first batch's seq
  size_t last_results_bytes_ = 0;
};

}  // namespace sop

#endif  // SOP_BASELINES_NAIVE_H_
