#include "sop/baselines/naive.h"

#include <utility>

#include "sop/common/check.h"
#include "sop/common/memory.h"
#include "sop/stream/window.h"

namespace sop {

NaiveDetector::NaiveDetector(const Workload& workload)
    : workload_(workload), buffer_(workload.window_type()) {
  const std::string problem = workload_.Validate();
  SOP_CHECK_MSG(problem.empty(), problem.c_str());
  query_dist_.reserve(workload_.num_queries());
  for (size_t i = 0; i < workload_.num_queries(); ++i) {
    query_dist_.push_back(workload_.MakeDistanceFn(i));
  }
  win_max_ = workload_.MaxWindow();
}

std::vector<QueryResult> NaiveDetector::Advance(std::vector<Point> batch,
                                                int64_t boundary) {
  if (!received_any_ && !batch.empty()) {
    // Streams resumed from a checkpoint replay start mid-sequence.
    buffer_.ResetTo(batch.front().seq);
    received_any_ = true;
  }
  for (Point& p : batch) buffer_.Append(std::move(p));
  buffer_.ExpireBefore(WindowStart(boundary, win_max_));

  std::vector<QueryResult> results;
  last_results_bytes_ = 0;
  for (size_t qi = 0; qi < workload_.num_queries(); ++qi) {
    const OutlierQuery& q = workload_.query(qi);
    if (!EmitsAt(boundary, q.slide)) continue;
    const DistanceFn& dist = query_dist_[qi];
    const int64_t start = WindowStart(boundary, q.win);
    const Seq window_begin = buffer_.LowerBoundKey(start);
    QueryResult result;
    result.query_index = qi;
    result.boundary = boundary;
    for (Seq s = window_begin; s < buffer_.next_seq(); ++s) {
      const Point& p = buffer_.At(s);
      int64_t neighbors = 0;
      for (Seq t = window_begin; t < buffer_.next_seq(); ++t) {
        if (t == s) continue;
        if (dist(p, buffer_.At(t)) <= q.r && ++neighbors >= q.k) break;
      }
      if (neighbors < q.k) result.outliers.push_back(s);
    }
    last_results_bytes_ += VectorHeapBytes(result.outliers);
    results.push_back(std::move(result));
  }
  return results;
}

size_t NaiveDetector::MemoryBytes() const {
  // Naive keeps no per-point evidence; only the emitted outlier sets.
  return last_results_bytes_;
}

}  // namespace sop
