// MCOD baseline: reimplementation of the multi-query-extended MCOD
// (Kontaki et al., "Continuous monitoring of distance-based outliers over
// data streams", ICDE 2011 — reference [13] of the SOP paper), augmented
// with swift-query window sharing exactly as the SOP paper's authors did
// for their comparison ("we have extended MCOD by inserting our
// window-specific techniques").
//
// Behaviour reproduced (paper Secs. 6.2 and 7):
//   * Every arriving point performs a full range scan against the window
//     and *keeps all points satisfying the neighbor condition of any
//     query* (distance <= r_max); individual queries post-filter this
//     large neighbor set. This is the multi-query MCOD strategy [13]
//     describes and the memory behaviour the SOP paper measures.
//   * Micro-clusters of radius r_min/2 are maintained for the *simulated*
//     most-restrictive query (k_max, r_min): members are pairwise within
//     r_min of each other, so a member with >= k in-window co-members is an
//     inlier for any query — the fast inlier path at emission time.
//   * Range queries are linear scans (the paper: "it will compare each
//     data point with all the other data points in each window"); the
//     original M-tree index is not reproduced, in MCOD's favor on CPU.
//
// Results are exact: per-point neighbor lists are complete within r_max,
// so the post-filter count is the true neighbor count for every query.

#ifndef SOP_BASELINES_MCOD_H_
#define SOP_BASELINES_MCOD_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sop/common/dist_kernel.h"
#include "sop/common/distance.h"
#include "sop/detector/detector.h"
#include "sop/index/grid.h"
#include "sop/stream/stream_buffer.h"

namespace sop {

class McodDetector : public OutlierDetector {
 public:
  struct Options {
    /// Route insertion range scans through a uniform grid index instead of
    /// the linear scan the SOP paper describes. This emulates the original
    /// MCOD's M-tree-assisted range queries; see bench/mcod_index.cc for
    /// the effect.
    bool use_grid_index = false;
    /// Grid pitch as a multiple of r_min (only with use_grid_index).
    double grid_cell_factor = 1.0;
  };

  explicit McodDetector(const Workload& workload)
      : McodDetector(workload, Options()) {}
  McodDetector(const Workload& workload, Options options);

  const char* name() const override {
    return options_.use_grid_index ? "mcod-grid" : "mcod";
  }
  std::vector<QueryResult> Advance(std::vector<Point> batch,
                                   int64_t boundary) override;
  size_t MemoryBytes() const override;

  /// Number of live micro-clusters (exposed for tests).
  size_t num_clusters() const;

 private:
  // One retained neighbor of a point: enough to answer "is it within r and
  // inside window w" for any query.
  struct Neighbor {
    int64_t key;
    double dist;
  };

  // Append-at-back / expire-at-front neighbor list, ascending by key.
  // Implemented as vector + head index with periodic compaction to avoid
  // per-point deque block overhead.
  struct NeighborList {
    std::vector<Neighbor> items;
    size_t head = 0;

    size_t size() const { return items.size() - head; }
    void Append(Neighbor n) { items.push_back(n); }
    void ExpireBefore(int64_t min_key);
    // Counts retained neighbors with dist <= r and key >= min_key,
    // stopping at stop_at.
    int64_t CountWithin(double r, int64_t min_key, int64_t stop_at) const;
    size_t MemoryBytes() const;
  };

  struct MicroCluster {
    Point center;                                  // value copy
    std::deque<std::pair<Seq, int64_t>> members;   // (seq, key), ascending
    bool dissolved = false;
  };

  struct PointState {
    int32_t cluster = -1;  // -1: dispersed (PD)
    NeighborList list;
  };

  PointState& StateOf(Seq seq) {
    return states_[static_cast<size_t>(seq - buffer_.first_seq())];
  }
  const PointState& StateOf(Seq seq) const {
    return states_[static_cast<size_t>(seq - buffer_.first_seq())];
  }

  // The insertion range scan for new point `s` (see file comment).
  void InsertPoint(Seq s);

  Workload workload_;
  Options options_;
  DistanceFn dist_;
  DistanceKernel kernel_;  // batch form of dist_, over buffer_.columns()
  StreamBuffer buffer_;
  std::unique_ptr<GridIndex> grid_;  // only with options_.use_grid_index
  std::deque<PointState> states_;
  std::vector<MicroCluster> clusters_;
  double r_min_ = 0.0;
  double r_max_ = 0.0;
  int64_t k_max_ = 0;
  int64_t win_max_ = 0;
  bool received_any_ = false;  // buffer rebased to the first batch's seq
  size_t last_results_bytes_ = 0;
  std::vector<Seq> scratch_close_;  // unclustered points within r_min/2
  std::vector<Seq> scratch_seqs_;   // raw grid candidate superset
  std::vector<double> scratch_dists_;  // kernel output, parallel to seqs
  std::vector<std::pair<Seq, double>> scratch_candidates_;  // confirmed hits
};

}  // namespace sop

#endif  // SOP_BASELINES_MCOD_H_
