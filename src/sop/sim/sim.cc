#include "sop/sim/sim.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "sop/common/random.h"

namespace sop {
namespace sim {

namespace {

constexpr int64_t kRecvTimedOut = -2;  // mirrors net::kRecvTimedOut

uint64_t Mix(uint64_t a, uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2);
  return a;
}

bool SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

/// One direction of a connection: a byte stream carried as segments.
struct Channel {
  struct Delayed {
    std::string bytes;
    int64_t release_at = 0;
  };

  std::deque<std::string> ready;   // deliverable now, FIFO
  std::deque<Delayed> delayed;     // FIFO; release_at nondecreasing
  bool eof = false;
  bool has_held = false;           // reorder holdback
  std::string held;
  uint64_t seg_count = 0;          // segments sent into this channel
  std::unique_ptr<Rng> rng;        // this channel's fate stream

  // Flushing the holdback on EOF keeps a lone reordered segment from
  // vanishing (reorder means "after its successor", and EOF is the
  // successor of the last segment).
  void SetEof() {
    if (has_held) {
      ready.push_back(std::move(held));
      has_held = false;
    }
    eof = true;
  }
};

/// Shared state of one connection (both endpoints).
struct Pair {
  int server_port = 0;
  uint64_t serial = 0;
  Channel c2s;  // client -> server
  Channel s2c;  // server -> client
  bool cut = false;  // truncation/kill: every further send fails
};

struct ListenerState;

struct RuleState {
  FaultRule rule;
  uint64_t applications = 0;
};

}  // namespace

struct SimNet::Impl {
  // One monitor for the whole harness: channels, listeners, rules, and
  // the virtual clock all change under mu and broadcast on cv. Coarse,
  // and exactly what determinism wants.
  mutable std::mutex mu;
  std::condition_variable cv;

  uint64_t seed = 0;
  int64_t now_us = 0;
  uint64_t next_serial = 0;
  int next_ephemeral = 40000;
  std::vector<RuleState> rules;
  std::set<int> partitioned;
  std::map<int, std::shared_ptr<ListenerState>> listeners;
  std::vector<std::weak_ptr<Pair>> pairs;  // every connection ever made
  SimStats stats;

  void AdvanceLocked(int64_t us) {
    now_us += us;
    cv.notify_all();
  }

  // Moves segments whose simulated release time has passed into the
  // ready queue, preserving release order.
  void ReleaseDue(Channel* ch) {
    while (!ch->delayed.empty() &&
           ch->delayed.front().release_at <= now_us) {
      ch->ready.push_back(std::move(ch->delayed.front().bytes));
      ch->delayed.pop_front();
    }
  }
};

namespace {

struct ListenerState {
  int port = 0;
  bool open = true;
  std::deque<std::unique_ptr<net::TransportConn>> pending;
};

/// The virtual clock: SleepMicros advances simulated time and returns.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(SimNet::Impl* impl) : impl_(impl) {}

  int64_t NowMicros() override {
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->now_us;
  }

  void SleepMicros(int64_t us) override {
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->AdvanceLocked(us > 0 ? us : 0);
    }
    // A sleeping thread is usually waiting for another to make progress
    // (a promotion, an ack): hand the core over instead of spinning.
    std::this_thread::yield();
  }

 private:
  SimNet::Impl* impl_;
};

class SimConn : public net::TransportConn {
 public:
  SimConn(std::shared_ptr<SimNet::Impl> impl, std::shared_ptr<Pair> pair,
          bool is_client)
      : impl_(std::move(impl)), pair_(std::move(pair)),
        is_client_(is_client) {}

  ~SimConn() override { Close(); }

  int64_t Recv(char* buf, size_t cap, int timeout_ms,
               std::string* error) override {
    (void)error;  // sim reads never fail mid-stream; they EOF or time out
    std::unique_lock<std::mutex> lock(impl_->mu);
    Channel* in = is_client_ ? &pair_->s2c : &pair_->c2s;
    const int64_t deadline =
        timeout_ms >= 0 ? impl_->now_us + int64_t{timeout_ms} * 1000 : -1;
    for (;;) {
      impl_->ReleaseDue(in);
      if (!in->ready.empty()) {
        std::string& front = in->ready.front();
        const size_t n = std::min(cap, front.size());
        std::memcpy(buf, front.data(), n);
        if (n == front.size()) {
          in->ready.pop_front();
        } else {
          front.erase(0, n);
        }
        return static_cast<int64_t>(n);
      }
      if (in->eof || read_shutdown_ || closed_) return 0;
      if (deadline >= 0 && impl_->now_us >= deadline) return kRecvTimedOut;
      if (!in->delayed.empty()) {
        // Everyone who could feed this channel is behind a latency
        // spike: simulated time jumps to the next release (bounded by
        // the deadline, which then fires above).
        const int64_t release = in->delayed.front().release_at;
        if (deadline < 0 || release <= deadline) {
          if (impl_->now_us < release) {
            impl_->now_us = release;
            impl_->cv.notify_all();
          }
          continue;
        }
        impl_->now_us = deadline;
        impl_->cv.notify_all();
        continue;
      }
      impl_->cv.wait(lock);
    }
  }

  bool Send(const char* data, size_t len, std::string* error) override {
    std::lock_guard<std::mutex> lock(impl_->mu);
    Channel* out = is_client_ ? &pair_->c2s : &pair_->s2c;
    if (closed_ || pair_->cut || out->eof) {
      return SetError(error, "send: sim connection closed");
    }
    SimStats& stats = impl_->stats;
    stats.segments++;
    out->seg_count++;
    if (impl_->partitioned.count(pair_->server_port) != 0) {
      // A partition swallows the segment with no local error, exactly
      // like a one-way-dead network under TCP.
      stats.partition_dropped++;
      return true;
    }
    std::string bytes(data, len);
    const int dir = is_client_ ? +1 : -1;
    RuleState* hit = nullptr;
    for (RuleState& rs : impl_->rules) {
      const FaultRule& r = rs.rule;
      if (r.dst_port != 0 && r.dst_port != pair_->server_port) continue;
      if (r.direction != 0 && r.direction != dir) continue;
      if (out->seg_count <= r.skip_segments) continue;
      if (rs.applications >= r.max_applications) continue;
      if (r.rate < 1.0 && !out->rng->Bernoulli(r.rate)) continue;
      hit = &rs;
      break;
    }
    if (hit == nullptr) {
      Deliver(out, std::move(bytes));
      impl_->cv.notify_all();
      return true;
    }
    hit->applications++;
    switch (hit->rule.action) {
      case FaultRule::Action::kDrop:
        stats.dropped++;
        break;
      case FaultRule::Action::kDuplicate:
        stats.duplicated++;
        Deliver(out, bytes);
        Deliver(out, std::move(bytes));
        break;
      case FaultRule::Action::kReorder:
        stats.reordered++;
        if (out->has_held) {
          // Two holdbacks in a row: deliver this one, then the held one
          // (still a swap relative to send order).
          Deliver(out, std::move(bytes));
          Deliver(out, std::move(out->held));
          out->has_held = false;
        } else {
          out->held = std::move(bytes);
          out->has_held = true;
        }
        break;
      case FaultRule::Action::kDelay:
        stats.delayed++;
        InsertDelayed(out, std::move(bytes),
                      impl_->now_us + hit->rule.delay_us);
        break;
      case FaultRule::Action::kTruncate:
        stats.truncated++;
        if (hit->rule.truncate_at < bytes.size()) {
          bytes.resize(hit->rule.truncate_at);
        }
        if (!bytes.empty()) Deliver(out, std::move(bytes));
        pair_->cut = true;
        pair_->c2s.SetEof();
        pair_->s2c.SetEof();
        break;
    }
    // A non-faulted successor releases reorder holdbacks; without this a
    // single held segment would starve behind an idle channel.
    if (out->has_held && hit->rule.action != FaultRule::Action::kReorder) {
      Deliver(out, std::move(out->held));
      out->has_held = false;
    }
    impl_->cv.notify_all();
    return true;
  }

  void ShutdownBoth() override {
    std::lock_guard<std::mutex> lock(impl_->mu);
    pair_->cut = true;
    pair_->c2s.SetEof();
    pair_->s2c.SetEof();
    impl_->cv.notify_all();
  }

  void ShutdownRead() override {
    std::lock_guard<std::mutex> lock(impl_->mu);
    read_shutdown_ = true;
    impl_->cv.notify_all();
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (closed_) return;
    closed_ = true;
    pair_->cut = true;
    pair_->c2s.SetEof();
    pair_->s2c.SetEof();
    impl_->cv.notify_all();
  }

 private:
  // A connection never reorders bytes (only kReorder does, on purpose):
  // while earlier segments are still delayed, later ones queue behind
  // them — head-of-line blocking, like real in-order delivery behind a
  // latency spike.
  void Deliver(Channel* out, std::string bytes) {
    impl_->stats.delivered++;
    if (!out->delayed.empty()) {
      out->delayed.push_back(
          Channel::Delayed{std::move(bytes), out->delayed.back().release_at});
      return;
    }
    out->ready.push_back(std::move(bytes));
  }

  void InsertDelayed(Channel* out, std::string bytes, int64_t release_at) {
    // FIFO: a segment can be late, never early relative to its
    // predecessor, so the queue stays sorted by construction.
    if (!out->delayed.empty()) {
      release_at = std::max(release_at, out->delayed.back().release_at);
    }
    out->delayed.push_back(Channel::Delayed{std::move(bytes), release_at});
  }

  std::shared_ptr<SimNet::Impl> impl_;
  std::shared_ptr<Pair> pair_;
  const bool is_client_;
  bool read_shutdown_ = false;  // guarded by impl_->mu
  bool closed_ = false;         // guarded by impl_->mu
};

class SimListener : public net::TransportListener {
 public:
  SimListener(std::shared_ptr<SimNet::Impl> impl,
              std::shared_ptr<ListenerState> state)
      : impl_(std::move(impl)), state_(std::move(state)) {}

  ~SimListener() override { Close(); }

  std::unique_ptr<net::TransportConn> Accept(std::string* error) override {
    std::unique_lock<std::mutex> lock(impl_->mu);
    for (;;) {
      if (!state_->pending.empty()) {
        std::unique_ptr<net::TransportConn> conn =
            std::move(state_->pending.front());
        state_->pending.pop_front();
        return conn;
      }
      if (!state_->open) {
        SetError(error, "accept: listener closed");
        return nullptr;
      }
      impl_->cv.wait(lock);
    }
  }

  int port() const override { return state_->port; }

  void Shutdown() override {
    std::lock_guard<std::mutex> lock(impl_->mu);
    state_->open = false;
    impl_->cv.notify_all();
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(impl_->mu);
    state_->open = false;
    // Unaccepted connections read as refused-by-close on the client end.
    state_->pending.clear();
    auto it = impl_->listeners.find(state_->port);
    if (it != impl_->listeners.end() && it->second == state_) {
      impl_->listeners.erase(it);
    }
    impl_->cv.notify_all();
  }

 private:
  std::shared_ptr<SimNet::Impl> impl_;
  std::shared_ptr<ListenerState> state_;
};

}  // namespace

SimNet::SimNet(uint64_t seed) : impl_(std::make_shared<Impl>()) {
  impl_->seed = seed;
}

SimNet::~SimNet() = default;

std::unique_ptr<net::TransportListener> SimNet::Listen(
    const std::string& host, int port, int backlog, std::string* error) {
  (void)host;
  (void)backlog;
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (port == 0) port = impl_->next_ephemeral++;
  if (impl_->listeners.count(port) != 0) {
    SetError(error, "bind: sim port " + std::to_string(port) + " in use");
    return nullptr;
  }
  auto state = std::make_shared<ListenerState>();
  state->port = port;
  impl_->listeners[port] = state;
  impl_->cv.notify_all();
  return std::make_unique<SimListener>(impl_, std::move(state));
}

std::unique_ptr<net::TransportConn> SimNet::Connect(const std::string& host,
                                                    int port,
                                                    std::string* error) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->listeners.find(port);
  if (it == impl_->listeners.end() || !it->second->open ||
      impl_->partitioned.count(port) != 0) {
    impl_->stats.refused_connects++;
    SetError(error, "connect " + host + ":" + std::to_string(port) +
                        ": connection refused");
    return nullptr;
  }
  auto pair = std::make_shared<Pair>();
  pair->server_port = port;
  pair->serial = impl_->next_serial++;
  impl_->pairs.push_back(pair);
  const uint64_t base =
      Mix(Mix(impl_->seed, static_cast<uint64_t>(port)), pair->serial);
  pair->c2s.rng = std::make_unique<Rng>(Mix(base, 1));
  pair->s2c.rng = std::make_unique<Rng>(Mix(base, 2));
  auto client = std::make_unique<SimConn>(impl_, pair, /*is_client=*/true);
  it->second->pending.push_back(
      std::make_unique<SimConn>(impl_, pair, /*is_client=*/false));
  impl_->stats.connects++;
  impl_->cv.notify_all();
  return client;
}

Clock* SimNet::clock() {
  // One clock per harness, sharing the monitor; lives as long as impl_.
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (clock_ == nullptr) clock_ = std::make_shared<VirtualClock>(impl_.get());
  return clock_.get();
}

int64_t SimNet::NowMicros() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->now_us;
}

void SimNet::AdvanceMicros(int64_t us) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->AdvanceLocked(us);
}

void SimNet::AddRule(const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->rules.push_back(RuleState{rule, 0});
}

void SimNet::ClearRules() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->rules.clear();
}

void SimNet::Partition(int port) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->partitioned.insert(port);
  impl_->cv.notify_all();
}

void SimNet::Heal(int port) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->partitioned.erase(port);
  impl_->cv.notify_all();
}

void SimNet::CutConnections(int port) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->pairs.begin();
  while (it != impl_->pairs.end()) {
    std::shared_ptr<Pair> pair = it->lock();
    if (pair == nullptr) {
      it = impl_->pairs.erase(it);
      continue;
    }
    if (pair->server_port == port && !pair->cut) {
      pair->cut = true;
      pair->c2s.SetEof();
      pair->s2c.SetEof();
    }
    ++it;
  }
  impl_->cv.notify_all();
}

SimStats SimNet::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

}  // namespace sim
}  // namespace sop
