// Deterministic simulation harness for the serving planes (DESIGN.md
// Sec. 18): an in-memory Transport plus a virtual Clock that SopServer,
// SopClient and SopRouter run on unmodified.
//
// SimNet implements net::Transport with in-process duplex byte channels.
// Every Send() call is one SEGMENT, and a seeded per-channel scheduler
// decides each segment's fate at send time from a schedule DSL of fault
// rules: one-way drops, duplications, reorderings, latency spikes, and
// mid-frame truncation at a chosen byte offset — strictly stronger than
// the kNetRead/kNetWrite fault sites, which only model transient local
// errors. Port-level partitions drop all traffic silently and refuse new
// connections until healed. Because each channel's random stream is
// derived from (harness seed, server port, connection serial, direction)
// and consumed once per segment, a schedule replays bit-identically from
// its seed: the same run produces the same corruption at the same byte,
// and therefore the same observable divergence.
//
// VirtualClock implements sop::Clock over the same monitor: SleepMicros
// advances simulated time instantly (so every backoff schedule in the
// stack runs at full speed), and Recv deadlines — the idle-timeout and
// replication-ack paths — are evaluated against simulated time, released
// by AdvanceMicros() from the test driver. Threads are still real; the
// clock never blocks them on wall time.
//
// Liveness caveats, by design:
//   * a DROPPED segment silently desyncs the byte stream — the receiver
//     only notices at the next segment (CRC/framing loss poisons the
//     connection). Dropping the final segment of a request/response
//     exchange leaves the peer blocked forever, exactly like a real
//     one-way partition under TCP; pair drops with cuts or schedule them
//     on channels with continued traffic.
//   * a PARTITIONED port swallows sends without error. Use it against
//     paths that carry their own deadline (replication acks) or pair it
//     with a truncation cut so the victim's peer fails fast.
//
// Scoping: construct a SimNet, arm it with ScopedSim for the lifetime of
// every server/client/router under test, and tear those down before the
// scope exits.

#ifndef SOP_SIM_SIM_H_
#define SOP_SIM_SIM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "sop/common/clock.h"
#include "sop/net/transport.h"

namespace sop {
namespace sim {

/// One schedule rule. Rules are matched in insertion order against each
/// outbound segment; the first rule that (a) matches the channel, (b) has
/// skipped its first `skip_segments` segments, (c) has applications left,
/// and (d) passes its seeded rate draw, is applied.
struct FaultRule {
  enum class Action {
    kDrop,       // segment vanishes (stream desync; see file comment)
    kDuplicate,  // segment delivered twice back-to-back
    kReorder,    // segment held back and delivered after its successor
    kDelay,      // segment delivered `delay_us` later in simulated time
    kTruncate,   // first `truncate_at` bytes delivered, then the
                 // connection is cut in both directions (mid-frame cut)
  };

  Action action = Action::kDrop;
  /// Matched against the server-side (listener) port; 0 matches any.
  int dst_port = 0;
  /// +1: client->server segments only; -1: server->client; 0: both.
  int direction = 0;
  /// Per-segment application probability; >= 1.0 is deterministic.
  double rate = 1.0;
  /// Leave the first N segments of each matching channel untouched
  /// (e.g. skip the handshake).
  uint64_t skip_segments = 0;
  /// Total applications across all channels; UINT64_MAX = unlimited.
  uint64_t max_applications = UINT64_MAX;
  /// kDelay: simulated delivery latency.
  int64_t delay_us = 0;
  /// kTruncate: bytes of the segment delivered before the cut.
  size_t truncate_at = 0;
};

/// Monotonic counters since construction.
struct SimStats {
  uint64_t connects = 0;          // established connections
  uint64_t refused_connects = 0;  // no listener, closed, or partitioned
  uint64_t segments = 0;          // Send() calls observed
  uint64_t delivered = 0;         // segments enqueued for the receiver
  uint64_t dropped = 0;           // rule drops
  uint64_t partition_dropped = 0; // segments swallowed by a partition
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t delayed = 0;
  uint64_t truncated = 0;
};

/// The simulated transport + virtual clock. Thread-safe.
class SimNet : public net::Transport {
 public:
  explicit SimNet(uint64_t seed);
  ~SimNet() override;

  SimNet(const SimNet&) = delete;
  SimNet& operator=(const SimNet&) = delete;

  // net::Transport:
  std::unique_ptr<net::TransportListener> Listen(const std::string& host,
                                                 int port, int backlog,
                                                 std::string* error) override;
  std::unique_ptr<net::TransportConn> Connect(const std::string& host,
                                              int port,
                                              std::string* error) override;

  /// The virtual clock sharing this harness's monitor. Arm it alongside
  /// the transport (ScopedSim does both).
  Clock* clock();

  /// Simulated time now, microseconds.
  int64_t NowMicros();

  /// Advances simulated time, waking every deadline and delayed segment
  /// it passes. The driver's lever for timeout paths.
  void AdvanceMicros(int64_t us);
  void AdvanceMillis(int64_t ms) { AdvanceMicros(ms * 1000); }

  /// Appends a schedule rule (see FaultRule).
  void AddRule(const FaultRule& rule);
  void ClearRules();

  /// Partitions `port`: segments to and from its connections are silently
  /// swallowed and new connections are refused, until Heal(port).
  void Partition(int port);
  void Heal(int port);

  /// Cuts every live connection whose server side is `port`, immediately
  /// and in both directions — what a yanked cable looks like to both
  /// peers. Pair with Partition(port) for a full outage: peers fail fast
  /// on the cut instead of blocking on swallowed segments, and cannot
  /// reconnect until Heal(port).
  void CutConnections(int port);

  SimStats stats() const;

  /// Opaque shared state (public so the sim.cc endpoint classes can name
  /// it; there is nothing to call on it from outside).
  struct Impl;

 private:
  std::shared_ptr<Impl> impl_;
  std::shared_ptr<Clock> clock_;  // created lazily under the impl monitor
};

/// Arms `sim` as the process transport and its virtual clock as the
/// process clock for the current scope.
class ScopedSim {
 public:
  explicit ScopedSim(SimNet* sim)
      : transport_(sim), clock_(sim->clock()) {}

  ScopedSim(const ScopedSim&) = delete;
  ScopedSim& operator=(const ScopedSim&) = delete;

 private:
  net::ScopedTransport transport_;
  ScopedClock clock_;
};

}  // namespace sim
}  // namespace sop

#endif  // SOP_SIM_SIM_H_
