#include "sop/net/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "sop/common/clock.h"
#include "sop/common/fault.h"
#include "sop/common/frame.h"
#include "sop/common/thread_pool.h"
#include "sop/core/session.h"
#include "sop/detector/factory.h"
#include "sop/io/file_util.h"
#include "sop/net/protocol.h"
#include "sop/obs/trace.h"

namespace sop {
namespace net {

namespace {

/// One connected client. The reader thread owns protocol dispatch; the
/// writer thread drains the bounded send queue; everything shared between
/// them (and the detection loop, which enqueues emissions) sits behind mu.
struct Conn {
  explicit Conn(Socket s) : sock(std::move(s)) {}

  Socket sock;
  std::thread reader;
  std::thread writer;
  std::atomic<bool> writer_done{false};  // writer thread has exited

  std::mutex mu;
  std::condition_variable cv_push;  // writer waits: queue non-empty/closing
  std::condition_variable cv_pop;   // kBlock enqueuers wait: queue has room
  std::condition_variable cv_done;  // Stop() waits: writer_done

  struct Outgoing {
    std::string frame;
    bool droppable;  // emissions may be shed; control replies never
  };
  std::deque<Outgoing> sendq;       // guarded by mu
  bool closing = false;             // guarded by mu
  bool hello_done = false;          // guarded by mu (reader-only in practice)
  // This connection carries inbound replication (we are a standby and a
  // primary ships state over it). Its loss is primary loss.
  bool is_repl = false;             // guarded by mu
  // An emission to this subscriber was shed (or its resume had a gap); the
  // next delivered emission carries degraded=true so the loss is visible.
  bool degraded_pending = false;    // guarded by mu
  // Subscribed query id -> suppress boundary: live emissions at or below
  // it were already delivered by resume replay and must not repeat.
  std::map<QueryId, int64_t> subs;  // guarded by mu
};

struct IngestOp {
  std::shared_ptr<Conn> conn;
  IngestMsg msg;
};

/// Resume-ring key: the query's parameters, not its connection-scoped id —
/// a reconnecting subscriber re-describes the same (r, k, win, slide).
using Fingerprint = std::tuple<double, int64_t, int64_t, int64_t>;

Fingerprint FingerprintOf(const OutlierQuery& q) {
  return Fingerprint(q.r, q.k, q.win, q.slide);
}

}  // namespace

struct SopServer::Impl {
  explicit Impl(ServerOptions opts) : options(std::move(opts)) {}

  ServerOptions options;

  // --- always-on stats (obs may be compiled out) -------------------------
  struct AtomicStats {
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> active_clients{0};
    std::atomic<uint64_t> frames_in{0};
    std::atomic<uint64_t> frames_out{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    std::atomic<uint64_t> ingest_batches{0};
    std::atomic<uint64_t> ingest_points{0};
    std::atomic<uint64_t> halo_points{0};
    std::atomic<uint64_t> emissions{0};
    std::atomic<uint64_t> shed_emissions{0};
    std::atomic<uint64_t> subscribes{0};
    std::atomic<uint64_t> unsubscribes{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> checkpoints{0};
    std::atomic<uint64_t> checkpoint_failures{0};
    std::atomic<uint64_t> idle_disconnects{0};
    std::atomic<uint64_t> promotions{0};
    std::atomic<uint64_t> repl_snapshots_sent{0};
    std::atomic<uint64_t> repl_batches_sent{0};
    std::atomic<uint64_t> repl_snapshots_applied{0};
    std::atomic<uint64_t> repl_batches_applied{0};
    std::atomic<uint64_t> repl_resyncs{0};
    std::atomic<uint64_t> resume_replayed{0};
    std::atomic<uint64_t> resume_gaps{0};
    std::atomic<bool> resumed{false};
  };
  AtomicStats stats;

  // --- serving state -----------------------------------------------------
  Socket listener;
  std::thread accept_thread;
  std::unique_ptr<ThreadPool> pool;
  std::future<void> detect_done;

  std::atomic<uint32_t> role{static_cast<uint32_t>(ServerRole::kPrimary)};

  // The session, its stream position and the resume ring. Advance/AddQuery/
  // RemoveQuery/SaveState and every ring read/write serialize here; the
  // detection loop holds it for the duration of each batch, and a
  // subscribe-with-resume holds it across ring replay + registration so no
  // batch can interleave (that atomicity is the exactly-once guarantee).
  std::mutex session_mu;
  std::unique_ptr<SopSession> session;        // guarded by session_mu
  int64_t last_boundary;                      // guarded by session_mu
  int64_t batches_since_checkpoint = 0;       // guarded by session_mu

  // Retained emissions per query fingerprint, newest at the back.
  struct RingState {
    int64_t evicted_to = kNoResume;  // highest boundary ever evicted
    std::deque<ResumeRingShard::Entry> entries;
  };
  std::map<Fingerprint, RingState> ring;      // guarded by session_mu

  std::mutex conns_mu;
  std::vector<std::shared_ptr<Conn>> conns;   // guarded by conns_mu

  // Scale-out plane (DESIGN.md Sec. 17): the shard assignment a router
  // declared for this worker. Informational — routing is the router's job
  // — but a second, conflicting declaration is refused so two routers
  // cannot silently split-brain one worker.
  std::mutex shard_mu;
  bool shard_set = false;                     // guarded by shard_mu
  ShardConfigMsg shard;                       // guarded by shard_mu

  // Bounded reader -> detection-loop handoff. A full queue blocks readers,
  // so ingest backpressure propagates to the client's TCP stream.
  std::mutex ingest_mu;
  std::condition_variable ingest_cv_push;     // detection loop waits
  std::condition_variable ingest_cv_pop;      // readers wait for room
  std::deque<IngestOp> ingest_queue;          // guarded by ingest_mu

  // Primary -> standby replication: the detection loop enqueues encoded
  // kReplBatch frames; ReplLoop ships them in order, one ack per frame,
  // and falls back to a full snapshot whenever the chain breaks.
  std::mutex repl_mu;
  std::condition_variable repl_cv;
  std::deque<std::string> repl_queue;         // guarded by repl_mu
  bool repl_need_snapshot = false;            // guarded by repl_mu
  std::thread repl_thread;

  std::atomic<bool> stopping{false};
  std::atomic<bool> killing{false};
  bool started = false;
  bool stopped = false;

  // --- implementation ----------------------------------------------------

  ServerRole RoleNow() const {
    return static_cast<ServerRole>(role.load(std::memory_order_relaxed));
  }

  // Enqueues one frame for `conn`'s writer. Droppable frames respect the
  // queue bound under the configured overload policy; control frames
  // bypass the bound (they are request-paced, so the reader's own
  // backpressure already limits them). Returns false if the frame was
  // dropped (connection closing, or shed under kDropOldest).
  bool EnqueueFrame(const std::shared_ptr<Conn>& conn, std::string frame,
                    bool droppable) {
    std::unique_lock<std::mutex> lock(conn->mu);
    if (conn->closing) return false;
    if (droppable && conn->sendq.size() >= options.max_send_queue) {
      if (options.send_policy == OverloadPolicy::kDropOldest) {
        // Shed the oldest queued emission; never a control reply.
        for (auto it = conn->sendq.begin(); it != conn->sendq.end(); ++it) {
          if (it->droppable) {
            conn->sendq.erase(it);
            conn->degraded_pending = true;
            stats.shed_emissions.fetch_add(1, std::memory_order_relaxed);
            SOP_COUNTER_ADD("net/server/shed_emissions", 1);
            break;
          }
        }
      } else {
        // kBlock: lossless backpressure into the detection loop.
        conn->cv_pop.wait(lock, [&] {
          return conn->closing ||
                 conn->sendq.size() < options.max_send_queue;
        });
        if (conn->closing) return false;
      }
    }
    conn->sendq.push_back(Conn::Outgoing{std::move(frame), droppable});
    SOP_GAUGE_SET_MAX("net/server/send_queue_depth", conn->sendq.size());
    conn->cv_push.notify_one();
    return true;
  }

  // Marks `conn` closing, wakes its threads, and retires its
  // subscriptions. On a standby with promote_on_loss, losing the inbound
  // replication connection is primary loss: promote. Idempotent; callable
  // from any thread.
  void CloseConn(const std::shared_ptr<Conn>& conn) {
    std::vector<QueryId> subs;
    bool was_repl = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closing) return;
      conn->closing = true;
      was_repl = conn->is_repl;
      subs.reserve(conn->subs.size());
      for (const auto& entry : conn->subs) subs.push_back(entry.first);
      conn->subs.clear();
      conn->cv_push.notify_all();
      conn->cv_pop.notify_all();
    }
    conn->sock.ShutdownBoth();  // unblocks recv/send in reader/writer
    if (!subs.empty()) {
      std::lock_guard<std::mutex> lock(session_mu);
      for (const QueryId id : subs) session->RemoveQuery(id);
    }
    stats.active_clients.fetch_sub(1, std::memory_order_relaxed);
    SOP_GAUGE_SET("net/server/active_clients",
                  stats.active_clients.load(std::memory_order_relaxed));
    SOP_COUNTER_ADD("net/server/disconnects", 1);
    if (was_repl && options.standby && options.promote_on_loss &&
        !stopping.load(std::memory_order_relaxed) &&
        !killing.load(std::memory_order_relaxed)) {
      Promote();
    }
  }

  // Standby -> primary: start serving from the last replicated boundary.
  // The session's emission schedule is a deterministic function of the
  // boundary, so subscribers that reconnect here and resume see exactly
  // the emissions an uninterrupted primary would have produced.
  void Promote() {
    {
      std::lock_guard<std::mutex> lock(session_mu);
      if (RoleNow() != ServerRole::kStandby) return;
      // Queries replicated from the primary's snapshot belonged to its
      // subscribers; ours re-register on reconnect.
      for (const QueryId id : session->RegisteredQueryIds()) {
        session->RemoveQuery(id);
      }
      role.store(static_cast<uint32_t>(ServerRole::kPrimary),
                 std::memory_order_relaxed);
    }
    stats.promotions.fetch_add(1, std::memory_order_relaxed);
    SOP_COUNTER_ADD("net/server/promotions", 1);
  }

  void WriterLoop(const std::shared_ptr<Conn>& conn) {
    WriterBody(conn);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->writer_done.store(true, std::memory_order_release);
    }
    conn->cv_done.notify_all();
  }

  void WriterBody(const std::shared_ptr<Conn>& conn) {
    for (;;) {
      Conn::Outgoing out;
      {
        std::unique_lock<std::mutex> lock(conn->mu);
        conn->cv_push.wait(lock, [&] {
          return conn->closing || !conn->sendq.empty();
        });
        // Drain queued frames even when closing: Stop() expects in-flight
        // acks to reach clients before the socket goes down — but a writer
        // stuck on a dead peer still exits via SendAll failure below.
        if (conn->sendq.empty()) return;
        out = std::move(conn->sendq.front());
        conn->sendq.pop_front();
        conn->cv_pop.notify_one();
      }
      std::string error;
      if (!SendAll(conn->sock, out.frame, options.retry, &error)) {
        CloseConn(conn);
        return;
      }
      stats.frames_out.fetch_add(1, std::memory_order_relaxed);
      stats.bytes_out.fetch_add(out.frame.size(), std::memory_order_relaxed);
      SOP_COUNTER_ADD("net/server/frames_out", 1);
      SOP_COUNTER_ADD("net/server/bytes_out", out.frame.size());
    }
  }

  void SendError(const std::shared_ptr<Conn>& conn, std::string message) {
    stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    SOP_COUNTER_ADD("net/server/protocol_errors", 1);
    EnqueueFrame(conn, EncodeError(ErrorMsg{std::move(message)}),
                 /*droppable=*/false);
  }

  // Appends one emission to its fingerprint's ring slice, bounded by
  // options.resume_ring with the eviction horizon tracked so resumes past
  // it can be flagged `gap`. session_mu held by the caller.
  void AppendRingLocked(const OutlierQuery& query, int64_t boundary,
                        bool degraded, const std::vector<Seq>& outliers) {
    RingState& shard = ring[FingerprintOf(query)];
    // Replication can re-deliver a boundary the ring already holds (stale
    // batch after a resync); the ring keeps one entry per boundary.
    if (!shard.entries.empty() && shard.entries.back().boundary >= boundary) {
      return;
    }
    ResumeRingShard::Entry entry;
    entry.boundary = boundary;
    entry.degraded = degraded;
    entry.outliers = outliers;
    shard.entries.push_back(std::move(entry));
    while (shard.entries.size() > options.resume_ring) {
      shard.evicted_to =
          std::max(shard.evicted_to, shard.entries.front().boundary);
      shard.entries.pop_front();
    }
  }

  // The full server state as one kReplSnapshot frame: session blob plus
  // resume ring. One serializer feeds both replication and the checkpoint
  // file (doubly CRC'd: the frame and the blob inside it). session_mu held.
  std::string BuildSnapshotFrameLocked() {
    ReplSnapshotMsg msg;
    msg.boundary = last_boundary;
    msg.state = session->SaveState();
    msg.ring.reserve(ring.size());
    for (const auto& kv : ring) {
      ResumeRingShard shard;
      shard.query.r = std::get<0>(kv.first);
      shard.query.k = std::get<1>(kv.first);
      shard.query.win = std::get<2>(kv.first);
      shard.query.slide = std::get<3>(kv.first);
      shard.evicted_to = kv.second.evicted_to;
      shard.entries.assign(kv.second.entries.begin(),
                           kv.second.entries.end());
      msg.ring.push_back(std::move(shard));
    }
    return EncodeReplSnapshot(msg);
  }

  std::string BuildSnapshotFrame() {
    std::lock_guard<std::mutex> lock(session_mu);
    return BuildSnapshotFrameLocked();
  }

  void RestoreRingLocked(const std::vector<ResumeRingShard>& shards) {
    ring.clear();
    for (const ResumeRingShard& s : shards) {
      RingState& shard = ring[FingerprintOf(s.query)];
      shard.evicted_to = s.evicted_to;
      shard.entries.assign(s.entries.begin(), s.entries.end());
    }
  }

  // Points the session's detector compilation at options.detector, exactly
  // as Start() does — also used to configure the fresh session a standby
  // builds for each applied snapshot.
  void ConfigureSession(SopSession* s) const {
    const std::string detector_name = options.detector;
    if (detector_name == "sop" || detector_name == "sop-grid") {
      // Route through the session's in-process SopDetector so subscribe/
      // unsubscribe can take the overlay-swap path instead of always
      // rebuilding and replaying history.
      SopDetector::Options sop_options;
      sop_options.use_grid_index = detector_name == "sop-grid";
      s->UseSopDetector(sop_options);
    } else {
      s->SetDetectorBuilder([detector_name](const Workload& workload) {
        return CreateDetector(detector_name, workload);
      });
    }
    s->SetBasisHeadroom(options.headroom);
  }

  void MarkNeedSnapshot() {
    std::lock_guard<std::mutex> lock(repl_mu);
    repl_need_snapshot = true;
  }

  // Hands one encoded kReplBatch frame to the replication thread. A queue
  // overflow (standby slower than the stream) drops the backlog and
  // resyncs with one snapshot instead of stalling the detection loop.
  void EnqueueRepl(std::string frame) {
    std::lock_guard<std::mutex> lock(repl_mu);
    if (repl_need_snapshot) return;  // the pending snapshot covers this
    if (repl_queue.size() >= options.max_repl_queue) {
      repl_queue.clear();
      repl_need_snapshot = true;
      stats.repl_resyncs.fetch_add(1, std::memory_order_relaxed);
      SOP_COUNTER_ADD("net/server/repl_resyncs", 1);
    } else {
      repl_queue.push_back(std::move(frame));
    }
    repl_cv.notify_one();
  }

  // Primary side of replication: ship frames in order, await one ReplAck
  // per frame, heal every failure (connection loss, timeout, standby NAK)
  // by reconnecting and shipping a fresh snapshot. Runs on its own thread;
  // exits when stopping with an empty queue (graceful flush) or on kill.
  void ReplLoop() {
    Socket sock;
    FrameDecoder decoder;
    char buf[64 << 10];
    for (;;) {
      std::string frame;
      bool is_snapshot = false;
      {
        std::unique_lock<std::mutex> lock(repl_mu);
        repl_cv.wait(lock, [&] {
          return stopping.load(std::memory_order_relaxed) ||
                 killing.load(std::memory_order_relaxed) ||
                 repl_need_snapshot || !repl_queue.empty();
        });
        if (killing.load(std::memory_order_relaxed)) return;
        if (repl_need_snapshot) {
          // Cleared before the build: the snapshot is taken after, so it
          // covers every batch advanced up to now — including everything
          // queued, which is why the queue can be dropped.
          repl_need_snapshot = false;
          repl_queue.clear();
          is_snapshot = true;
        } else if (!repl_queue.empty()) {
          frame = std::move(repl_queue.front());
          repl_queue.pop_front();
        } else {
          return;  // stopping and flushed
        }
      }
      if (is_snapshot) frame = BuildSnapshotFrame();

      std::string error;
      if (!sock.valid()) {
        sock = ConnectTcp(options.replicate_host, options.replicate_port,
                          &error);
        if (!sock.valid()) {
          // Standby down. The frame in hand is lost to this attempt;
          // resync with a snapshot when the standby returns.
          MarkNeedSnapshot();
          if (stopping.load(std::memory_order_relaxed) ||
              killing.load(std::memory_order_relaxed)) {
            return;
          }
          SleepMillis(50);
          continue;
        }
        decoder = FrameDecoder();
        // No handshake: the standby identifies replication by the frames
        // themselves. A batch hitting a fresh standby session NAKs into a
        // snapshot on its own (chain check), so nothing special is needed.
      }

      if (!SendAll(sock, frame, options.retry, &error)) {
        sock.Close();
        MarkNeedSnapshot();
        if (stopping.load(std::memory_order_relaxed)) return;
        continue;
      }

      // Await the standby's ack for this frame (synchronous per-frame
      // replication keeps the standby at most one batch behind an ack).
      ReplAckMsg ack;
      bool acked = false;
      bool dead = false;
      while (!acked && !dead) {
        std::string payload;
        const FrameDecoder::Status status = decoder.Next(&payload, &error);
        if (status == FrameDecoder::Status::kFrame) {
          MsgType type;
          if (PeekType(payload, &type, &error) &&
              type == MsgType::kReplAck &&
              DecodeReplAck(payload, &ack, &error)) {
            acked = true;
          } else {
            dead = true;  // standby refused (promoted?) or stream garbage
          }
          continue;
        }
        if (status == FrameDecoder::Status::kError) {
          dead = true;
          break;
        }
        const int64_t n =
            RecvSomeTimeout(sock, buf, sizeof(buf),
                            options.repl_ack_timeout_ms, options.retry,
                            &error);
        if (n == kRecvTimedOut || n <= 0) {
          dead = true;
          break;
        }
        decoder.Append(buf, static_cast<size_t>(n));
      }
      if (!acked) {
        sock.Close();
        MarkNeedSnapshot();
        if (stopping.load(std::memory_order_relaxed)) return;
        continue;
      }
      if (is_snapshot) {
        stats.repl_snapshots_sent.fetch_add(1, std::memory_order_relaxed);
        SOP_COUNTER_ADD("net/server/repl_snapshots_sent", 1);
      } else {
        stats.repl_batches_sent.fetch_add(1, std::memory_order_relaxed);
        SOP_COUNTER_ADD("net/server/repl_batches_sent", 1);
      }
      if (ack.need_snapshot) {
        stats.repl_resyncs.fetch_add(1, std::memory_order_relaxed);
        SOP_COUNTER_ADD("net/server/repl_resyncs", 1);
        MarkNeedSnapshot();
      }
    }
  }

  // Handles one complete, CRC-verified frame payload from `conn`.
  // Returns false when the connection must be dropped.
  bool Dispatch(const std::shared_ptr<Conn>& conn,
                const std::string& payload) {
    MsgType type;
    std::string error;
    if (!PeekType(payload, &type, &error)) {
      SendError(conn, error);
      return false;
    }
    switch (type) {
      case MsgType::kHello: {
        HelloMsg hello;
        if (!DecodeHello(payload, &hello, &error)) {
          SendError(conn, error);
          return false;
        }
        if (hello.protocol_version != kProtocolVersion) {
          SendError(conn, "protocol version mismatch: server speaks v" +
                              std::to_string(kProtocolVersion));
          return false;
        }
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->hello_done = true;
        }
        HelloAckMsg ack;
        ack.protocol_version = kProtocolVersion;
        ack.window_type = static_cast<uint32_t>(options.window_type);
        ack.metric = static_cast<uint32_t>(options.metric);
        ack.role = role.load(std::memory_order_relaxed);
        ack.detector = options.detector;
        {
          std::lock_guard<std::mutex> session_lock(session_mu);
          ack.last_boundary = last_boundary;
          ack.next_seq = static_cast<uint64_t>(session->next_seq());
        }
        EnqueueFrame(conn, EncodeHelloAck(ack), /*droppable=*/false);
        return true;
      }
      case MsgType::kIngest: {
        IngestOp op;
        op.conn = conn;
        if (!DecodeIngest(payload, &op.msg, &error)) {
          SendError(conn, error);
          return false;
        }
        if (RoleNow() == ServerRole::kStandby) {
          // A standby's stream position is owned by replication; clients
          // must ingest at the primary.
          SendError(conn, "standby: ingest is served by the primary");
          IngestAckMsg ack;
          ack.boundary = op.msg.boundary;
          EnqueueFrame(conn, EncodeIngestAck(ack), /*droppable=*/false);
          return true;
        }
        std::unique_lock<std::mutex> lock(ingest_mu);
        ingest_cv_pop.wait(lock, [&] {
          return stopping.load(std::memory_order_relaxed) ||
                 killing.load(std::memory_order_relaxed) ||
                 ingest_queue.size() < options.max_ingest_queue;
        });
        if (stopping.load(std::memory_order_relaxed) ||
            killing.load(std::memory_order_relaxed)) {
          return false;
        }
        ingest_queue.push_back(std::move(op));
        SOP_GAUGE_SET_MAX("net/server/ingest_queue_depth",
                          ingest_queue.size());
        ingest_cv_push.notify_one();
        return true;
      }
      case MsgType::kSubscribe: {
        SubscribeMsg sub;
        if (!DecodeSubscribe(payload, &sub, &error)) {
          SendError(conn, error);
          return false;
        }
        if (RoleNow() == ServerRole::kStandby) {
          SubscribeAckMsg ack;
          ack.error = "standby: subscriptions are served by the primary";
          EnqueueFrame(conn, EncodeSubscribeAck(ack), /*droppable=*/false);
          return true;
        }
        // Pre-validate exactly as SopSession::AddQuery would CHECK: a bad
        // query from the wire must refuse the subscription, not abort the
        // server process.
        Workload probe(options.window_type, options.metric);
        probe.AddQuery(sub.query);
        const std::string verdict = probe.Validate();
        if (!verdict.empty()) {
          SubscribeAckMsg ack;
          ack.query_id = 0;
          ack.error = verdict;
          EnqueueFrame(conn, EncodeSubscribeAck(ack), /*droppable=*/false);
          return true;
        }
        SubscribeAckMsg ack;
        {
          // Registration, ring replay and the subscription record are one
          // atomic step under session_mu: no batch can advance between
          // them, so replayed + suppressed + live emissions partition the
          // boundary axis exactly — each emission delivered once.
          std::lock_guard<std::mutex> session_lock(session_mu);
          ack.query_id = session->AddQuery(sub.query);
          int64_t suppress_to =
              sub.resume_from == kNoResume ? kNoResume : sub.resume_from;
          std::vector<std::string> replay;
          if (sub.resume_from != kNoResume) {
            const auto it = ring.find(FingerprintOf(sub.query));
            if (it != ring.end()) {
              const RingState& shard = it->second;
              // The ring wrapped past the client's high-water mark:
              // emissions in (resume_from, evicted_to] are gone for good.
              if (shard.evicted_to > sub.resume_from) ack.gap = true;
              for (const ResumeRingShard::Entry& e : shard.entries) {
                if (e.boundary <= sub.resume_from) continue;
                EmissionMsg m;
                m.query_id = ack.query_id;
                m.boundary = e.boundary;
                m.degraded = e.degraded;
                m.outliers = e.outliers;
                suppress_to = std::max(suppress_to, e.boundary);
                replay.push_back(EncodeEmission(m));
              }
            }
            // No shard at all: nothing was ever retained for this
            // fingerprint, so nothing is known lost — a fresh start.
          }
          ack.replayed = replay.size();
          {
            std::lock_guard<std::mutex> lock(conn->mu);
            conn->subs.emplace(ack.query_id, suppress_to);
            if (ack.gap) conn->degraded_pending = true;
          }
          stats.subscribes.fetch_add(1, std::memory_order_relaxed);
          SOP_COUNTER_ADD("net/server/subscribes", 1);
          if (ack.gap) {
            stats.resume_gaps.fetch_add(1, std::memory_order_relaxed);
            SOP_COUNTER_ADD("net/server/resume_gaps", 1);
          }
          if (!replay.empty()) {
            stats.resume_replayed.fetch_add(replay.size(),
                                            std::memory_order_relaxed);
            SOP_COUNTER_ADD("net/server/resume_replayed", replay.size());
          }
          // Replayed emissions precede the ack on the wire; both are
          // control-paced (never shed). Enqueued under session_mu so a
          // concurrent batch's live emissions cannot jump ahead of them.
          for (std::string& f : replay) {
            EnqueueFrame(conn, std::move(f), /*droppable=*/false);
          }
          EnqueueFrame(conn, EncodeSubscribeAck(ack), /*droppable=*/false);
        }
        return true;
      }
      case MsgType::kUnsubscribe: {
        UnsubscribeMsg unsub;
        if (!DecodeUnsubscribe(payload, &unsub, &error)) {
          SendError(conn, error);
          return false;
        }
        // A client may only retire its own subscriptions.
        bool owned = false;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          owned = conn->subs.erase(unsub.query_id) > 0;
        }
        UnsubscribeAckMsg ack;
        if (owned) {
          std::lock_guard<std::mutex> session_lock(session_mu);
          ack.ok = session->RemoveQuery(unsub.query_id);
        }
        if (ack.ok) {
          stats.unsubscribes.fetch_add(1, std::memory_order_relaxed);
          SOP_COUNTER_ADD("net/server/unsubscribes", 1);
        }
        EnqueueFrame(conn, EncodeUnsubscribeAck(ack), /*droppable=*/false);
        return true;
      }
      case MsgType::kPing: {
        PingMsg ping;
        if (!DecodePing(payload, &ping, &error)) {
          SendError(conn, error);
          return false;
        }
        PongMsg pong;
        pong.token = ping.token;
        pong.role = role.load(std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> session_lock(session_mu);
          pong.last_boundary = last_boundary;
        }
        {
          std::lock_guard<std::mutex> lock(ingest_mu);
          pong.ingest_queue_depth = ingest_queue.size();
        }
        {
          std::vector<std::shared_ptr<Conn>> snapshot;
          {
            std::lock_guard<std::mutex> lock(conns_mu);
            snapshot = conns;
          }
          uint64_t depth = 0;
          for (const std::shared_ptr<Conn>& c : snapshot) {
            std::lock_guard<std::mutex> lock(c->mu);
            depth += c->sendq.size();
          }
          pong.send_queue_depth = depth;
        }
        pong.active_connections =
            stats.active_clients.load(std::memory_order_relaxed);
        EnqueueFrame(conn, EncodePong(pong), /*droppable=*/false);
        return true;
      }
      case MsgType::kReplSnapshot: {
        if (!options.standby) {
          SendError(conn, "not a standby: replication refused");
          return false;
        }
        ReplSnapshotMsg msg;
        if (!DecodeReplSnapshot(payload, &msg, &error)) {
          SendError(conn, error);
          return false;
        }
        if (RoleNow() != ServerRole::kStandby) {
          // Already promoted: a resurrected old primary must not demote
          // this server's live stream. It gets an error, not an ack.
          SendError(conn, "promoted: no longer accepting replication");
          return false;
        }
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->is_repl = true;
        }
        // Restore into a fresh session so a failed apply leaves the
        // current one untouched.
        auto fresh = std::make_unique<SopSession>(options.window_type,
                                                  options.metric,
                                                  options.history_window);
        ConfigureSession(fresh.get());
        std::string load_error;
        const bool ok = msg.state.empty()
                            ? true  // empty primary: fresh session as-is
                            : fresh->LoadState(msg.state, &load_error);
        ReplAckMsg ack;
        {
          std::lock_guard<std::mutex> session_lock(session_mu);
          if (ok) {
            for (const QueryId id : fresh->RegisteredQueryIds()) {
              fresh->RemoveQuery(id);
            }
            session = std::move(fresh);
            last_boundary = session->last_boundary();
            RestoreRingLocked(msg.ring);
            batches_since_checkpoint = 0;
            stats.repl_snapshots_applied.fetch_add(
                1, std::memory_order_relaxed);
            SOP_COUNTER_ADD("net/server/repl_snapshots_applied", 1);
          }
          ack.boundary = last_boundary;
        }
        ack.need_snapshot = !ok;
        EnqueueFrame(conn, EncodeReplAck(ack), /*droppable=*/false);
        return true;
      }
      case MsgType::kReplBatch: {
        if (!options.standby) {
          SendError(conn, "not a standby: replication refused");
          return false;
        }
        ReplBatchMsg msg;
        if (!DecodeReplBatch(payload, &msg, &error)) {
          SendError(conn, error);
          return false;
        }
        if (RoleNow() != ServerRole::kStandby) {
          SendError(conn, "promoted: no longer accepting replication");
          return false;
        }
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->is_repl = true;
        }
        ReplAckMsg ack;
        std::string checkpoint_frame;
        {
          std::lock_guard<std::mutex> session_lock(session_mu);
          if (msg.boundary <= last_boundary) {
            // Stale duplicate (resent across a resync): already applied.
            ack.boundary = last_boundary;
          } else if (msg.prev_boundary != last_boundary) {
            // Chain broken — batches were lost between the primary and
            // us. Demand a snapshot rather than apply a gapped stream.
            ack.boundary = last_boundary;
            ack.need_snapshot = true;
          } else {
            const uint64_t batch_size = msg.points.size();
            // The standby has no registered queries, so Advance yields
            // nothing; the primary's own emissions arrive in msg.results
            // and keep the ring bit-identical to the primary's.
            session->Advance(std::move(msg.points), msg.boundary);
            last_boundary = msg.boundary;
            for (const EmissionRecord& rec : msg.results) {
              AppendRingLocked(rec.query, rec.boundary, rec.degraded,
                               rec.outliers);
            }
            ack.boundary = last_boundary;
            stats.ingest_batches.fetch_add(1, std::memory_order_relaxed);
            stats.ingest_points.fetch_add(batch_size,
                                          std::memory_order_relaxed);
            stats.repl_batches_applied.fetch_add(1,
                                                 std::memory_order_relaxed);
            SOP_COUNTER_ADD("net/server/repl_batches_applied", 1);
            if (!options.checkpoint_path.empty() &&
                ++batches_since_checkpoint >=
                    options.checkpoint_every_batches) {
              batches_since_checkpoint = 0;
              checkpoint_frame = BuildSnapshotFrameLocked();
            }
          }
        }
        EnqueueFrame(conn, EncodeReplAck(ack), /*droppable=*/false);
        if (!checkpoint_frame.empty()) {
          PublishCheckpoint(std::move(checkpoint_frame));
        }
        return true;
      }
      case MsgType::kShardConfig: {
        ShardConfigMsg msg;
        if (!DecodeShardConfig(payload, &msg, &error)) {
          SendError(conn, error);
          return false;
        }
        ShardConfigAckMsg ack;
        {
          std::lock_guard<std::mutex> lock(shard_mu);
          if (shard_set && (shard.shard_index != msg.shard_index ||
                            shard.num_shards != msg.num_shards ||
                            shard.lo != msg.lo || shard.hi != msg.hi ||
                            shard.halo != msg.halo)) {
            ack.ok = false;
            ack.error = "conflicting shard config already declared";
          } else {
            // First declaration, or an idempotent re-send from a
            // reconnecting router.
            shard = msg;
            shard_set = true;
            ack.ok = true;
          }
        }
        if (ack.ok) {
          SOP_GAUGE_SET("net/server/shard_index", msg.shard_index);
          SOP_GAUGE_SET("net/server/num_shards", msg.num_shards);
        }
        EnqueueFrame(conn, EncodeShardConfigAck(ack), /*droppable=*/false);
        return true;
      }
      default:
        // Server-bound streams never carry server-push types; a client
        // sending one is confused but not fatal.
        SendError(conn, std::string("unexpected client message: ") +
                            MsgTypeName(type));
        return true;
    }
  }

  void ReaderLoop(const std::shared_ptr<Conn>& conn) {
    FrameDecoder decoder;
    char buf[64 << 10];
    bool timed_out = false;
    for (;;) {
      std::string error;
      const int64_t n =
          RecvSomeTimeout(conn->sock, buf, sizeof(buf),
                          options.idle_timeout_ms, options.retry, &error);
      if (n == kRecvTimedOut) {
        // Only a mid-frame stall is hostile (slow-loris); a connection
        // with no partial frame pending is just a quiet subscriber.
        if (decoder.buffered_bytes() > 0) {
          stats.idle_disconnects.fetch_add(1, std::memory_order_relaxed);
          SOP_COUNTER_ADD("net/server/idle_disconnects", 1);
          timed_out = true;
          break;
        }
        continue;
      }
      if (n <= 0) break;  // orderly close, hard error, or retry exhaustion
      stats.bytes_in.fetch_add(static_cast<uint64_t>(n),
                               std::memory_order_relaxed);
      SOP_COUNTER_ADD("net/server/bytes_in", n);
      decoder.Append(buf, static_cast<size_t>(n));
      bool drop = false;
      for (;;) {
        std::string payload;
        const FrameDecoder::Status status = decoder.Next(&payload, &error);
        if (status == FrameDecoder::Status::kNeedMore) break;
        if (status == FrameDecoder::Status::kError) {
          // Framing lost: this connection cannot resync. Tell the client
          // why (best effort) and drop it; the process and every other
          // connection stay up.
          SendError(conn, error);
          drop = true;
          break;
        }
        stats.frames_in.fetch_add(1, std::memory_order_relaxed);
        SOP_COUNTER_ADD("net/server/frames_in", 1);
        if (!Dispatch(conn, payload)) {
          drop = true;
          break;
        }
      }
      if (drop) break;
    }
    // During a graceful Stop the reader exits on EOF (ShutdownRead) but
    // must NOT abort-close the connection: the writer is still draining
    // queued acks and emissions. Every other exit closes as usual.
    if (!stopping.load(std::memory_order_relaxed) || timed_out) {
      CloseConn(conn);
    }
  }

  void AcceptLoop() {
    for (;;) {
      std::string error;
      Socket sock = AcceptTcp(listener, &error);
      if (!sock.valid()) {
        if (stopping.load(std::memory_order_relaxed)) return;
        continue;  // transient accept failure; keep serving
      }
      if (stopping.load(std::memory_order_relaxed)) return;
      auto conn = std::make_shared<Conn>(std::move(sock));
      stats.connections.fetch_add(1, std::memory_order_relaxed);
      stats.active_clients.fetch_add(1, std::memory_order_relaxed);
      SOP_COUNTER_ADD("net/server/connections", 1);
      SOP_GAUGE_SET(
          "net/server/active_clients",
          stats.active_clients.load(std::memory_order_relaxed));
      // Register the connection before its reader can process a frame: a
      // subscribe handled before this conn is visible in `conns` would let
      // the next batch's emissions bypass the brand-new subscriber. Stop()
      // joins the accept thread before it snapshots `conns`, so a conn
      // registered here always has its threads spawned by then.
      {
        std::lock_guard<std::mutex> lock(conns_mu);
        conns.push_back(conn);
      }
      conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
      conn->writer = std::thread([this, conn] { WriterLoop(conn); });
    }
  }

  // Fans one batch's session results out to subscribers. Returns how many
  // emission frames were enqueued for `ingester` (reported in its ack).
  uint64_t RouteEmissions(const std::vector<SessionResult>& results,
                          const std::shared_ptr<Conn>& ingester) {
    uint64_t to_ingester = 0;
    std::vector<std::shared_ptr<Conn>> snapshot;
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      snapshot = conns;
    }
    for (const SessionResult& r : results) {
      for (const std::shared_ptr<Conn>& conn : snapshot) {
        EmissionMsg m;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          if (conn->closing) continue;
          const auto it = conn->subs.find(r.query_id);
          if (it == conn->subs.end()) continue;
          // Already delivered by resume replay: suppress the duplicate.
          if (r.boundary <= it->second) continue;
          m.degraded = r.degraded || conn->degraded_pending;
          conn->degraded_pending = false;
        }
        m.query_id = r.query_id;
        m.boundary = r.boundary;
        m.outliers = r.outliers;
        if (EnqueueFrame(conn, EncodeEmission(m), /*droppable=*/true)) {
          stats.emissions.fetch_add(1, std::memory_order_relaxed);
          SOP_COUNTER_ADD("net/server/emissions", 1);
          if (conn == ingester) ++to_ingester;
        }
      }
    }
    return to_ingester;
  }

  // Publishes one snapshot frame to options.checkpoint_path (atomic
  // rename), rotating older generations first and consulting the
  // checkpoint fault sites like the engine does. `blob` was produced
  // under session_mu by the caller.
  void PublishCheckpoint(std::string blob) {
    FaultInjector* injector = FaultInjector::Armed();
    if (injector != nullptr &&
        injector->ShouldFail(FaultSite::kCheckpointWrite)) {
      stats.checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      SOP_COUNTER_ADD("net/server/checkpoint_failures", 1);
      return;  // skipped save; the previous checkpoint stays valid
    }
    if (injector != nullptr &&
        injector->ShouldFail(FaultSite::kCheckpointBytes)) {
      injector->CorruptBytes(&blob);  // framing catches this on restore
    }
    if (options.checkpoint_generations > 1) {
      io::RotateGenerations(options.checkpoint_path,
                            options.checkpoint_generations);
    }
    std::string error;
    if (io::WriteFileAtomic(options.checkpoint_path, blob, &error)) {
      stats.checkpoints.fetch_add(1, std::memory_order_relaxed);
      SOP_COUNTER_ADD("net/server/checkpoints", 1);
    } else {
      stats.checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      SOP_COUNTER_ADD("net/server/checkpoint_failures", 1);
    }
  }

  void DetectLoop() {
    const bool replicate = !options.replicate_host.empty();
    for (;;) {
      IngestOp op;
      {
        std::unique_lock<std::mutex> lock(ingest_mu);
        ingest_cv_push.wait(lock, [&] {
          return stopping.load(std::memory_order_relaxed) ||
                 !ingest_queue.empty();
        });
        if (killing.load(std::memory_order_relaxed)) return;  // crash: drop
        if (ingest_queue.empty()) return;  // stopping and drained
        op = std::move(ingest_queue.front());
        ingest_queue.pop_front();
        ingest_cv_pop.notify_one();
      }

      std::vector<SessionResult> results;
      std::string checkpoint_blob;
      const uint64_t batch_size = op.msg.points.size();
      uint64_t halo_size = 0;  // replicas in the batch (owner flag 0)
      for (const uint8_t o : op.msg.owner) halo_size += (o == 0) ? 1 : 0;
      std::vector<Point> repl_points;
      if (replicate) repl_points = op.msg.points;  // before the move below
      std::vector<EmissionRecord> repl_records;
      int64_t prev_boundary = kNoResume;
      bool accepted = false;
      uint64_t next_seq = 0;
      {
        std::lock_guard<std::mutex> lock(session_mu);
        // Pre-validate what SopSession::Advance would CHECK: boundaries
        // must strictly increase. Bad wire input gets an error reply, not
        // a process abort.
        if (op.msg.boundary > last_boundary) {
          accepted = true;
          prev_boundary = last_boundary;
          last_boundary = op.msg.boundary;
          SOP_TRACE("net/server/advance_ms");
          results = session->Advance(std::move(op.msg.points),
                                     op.msg.boundary);
          stats.ingest_batches.fetch_add(1, std::memory_order_relaxed);
          stats.ingest_points.fetch_add(batch_size,
                                        std::memory_order_relaxed);
          if (halo_size > 0) {
            stats.halo_points.fetch_add(halo_size,
                                        std::memory_order_relaxed);
            SOP_COUNTER_ADD("net/server/halo_points", halo_size);
          }
          // Retain every emission for reconnect resume (and replication),
          // keyed by the query's parameters — connection-scoped ids die
          // with their connection.
          for (const SessionResult& r : results) {
            const OutlierQuery* q = session->FindQuery(r.query_id);
            if (q == nullptr) continue;  // retired mid-batch
            AppendRingLocked(*q, r.boundary, r.degraded, r.outliers);
            if (replicate) {
              EmissionRecord rec;
              rec.query = *q;
              rec.boundary = r.boundary;
              rec.degraded = r.degraded;
              rec.outliers = r.outliers;
              repl_records.push_back(std::move(rec));
            }
          }
          if (!options.checkpoint_path.empty() &&
              ++batches_since_checkpoint >=
                  options.checkpoint_every_batches) {
            batches_since_checkpoint = 0;
            checkpoint_blob = BuildSnapshotFrameLocked();
          }
        }
        next_seq = static_cast<uint64_t>(session->next_seq());
      }

      if (!accepted) {
        SendError(op.conn, "ingest boundary " +
                               std::to_string(op.msg.boundary) +
                               " does not advance the stream");
        IngestAckMsg ack;
        ack.boundary = op.msg.boundary;
        ack.accepted = 0;
        ack.emissions = 0;
        ack.next_seq = next_seq;
        EnqueueFrame(op.conn, EncodeIngestAck(ack), /*droppable=*/false);
        continue;
      }
      SOP_COUNTER_ADD("net/server/ingest_batches", 1);

      if (replicate) {
        ReplBatchMsg rb;
        rb.prev_boundary = prev_boundary;
        rb.boundary = op.msg.boundary;
        rb.points = std::move(repl_points);
        rb.results = std::move(repl_records);
        EnqueueRepl(EncodeReplBatch(rb));
      }

      // Emissions first, then the ack on the same queue: a client that
      // waits for its ack is guaranteed to have this batch's emissions
      // already buffered ahead of it.
      IngestAckMsg ack;
      ack.boundary = op.msg.boundary;
      ack.accepted = batch_size;
      ack.emissions = RouteEmissions(results, op.conn);
      ack.next_seq = next_seq;
      EnqueueFrame(op.conn, EncodeIngestAck(ack), /*droppable=*/false);

      if (!checkpoint_blob.empty()) {
        PublishCheckpoint(std::move(checkpoint_blob));
      }
    }
  }
};

SopServer::SopServer(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SopServer::~SopServer() { Stop(); }

bool SopServer::Start(std::string* error) {
  Impl& im = *impl_;
  if (im.started) {
    if (error != nullptr) *error = "server already started";
    return false;
  }
  if (!IsKnownDetector(im.options.detector)) {
    if (error != nullptr) *error = UnknownDetectorMessage(im.options.detector);
    return false;
  }
  if (im.options.history_window <= 0 || im.options.max_send_queue == 0 ||
      im.options.max_ingest_queue == 0 || im.options.num_threads <= 0 ||
      im.options.checkpoint_every_batches <= 0 ||
      im.options.checkpoint_generations < 1 ||
      im.options.resume_ring == 0 || im.options.max_repl_queue == 0 ||
      im.options.repl_ack_timeout_ms <= 0) {
    if (error != nullptr) *error = "server options out of range";
    return false;
  }
  const bool replicate = !im.options.replicate_host.empty();
  if (replicate &&
      (im.options.replicate_port <= 0 || im.options.replicate_port > 65535)) {
    if (error != nullptr) *error = "replicate_port out of range";
    return false;
  }
  if (replicate && im.options.standby) {
    if (error != nullptr) {
      *error = "a standby cannot itself replicate (chaining unsupported)";
    }
    return false;
  }
  if (im.options.promote_on_loss && !im.options.standby) {
    if (error != nullptr) *error = "promote_on_loss requires standby";
    return false;
  }

  im.role.store(static_cast<uint32_t>(im.options.standby
                                          ? ServerRole::kStandby
                                          : ServerRole::kPrimary),
                std::memory_order_relaxed);
  im.session = std::make_unique<SopSession>(im.options.window_type,
                                            im.options.metric,
                                            im.options.history_window);
  im.ConfigureSession(im.session.get());
  im.last_boundary = kNoResume;

  // Resume from the previous incarnation's checkpoint when one exists,
  // walking the generations newest-first past corrupt or missing files.
  // Restored queries belonged to connections that no longer exist, so they
  // are retired; the restored history, stream position and resume ring
  // remain, and a reconnecting subscriber resumes from them.
  if (!im.options.checkpoint_path.empty()) {
    FaultInjector* injector = FaultInjector::Armed();
    bool loaded = false;
    for (int g = 0; !loaded && g < im.options.checkpoint_generations; ++g) {
      const std::string path =
          io::GenerationPath(im.options.checkpoint_path, g);
      std::string blob;
      std::string read_error;
      if (injector != nullptr &&
          injector->ShouldFail(FaultSite::kCheckpointRead)) {
        continue;
      }
      if (!io::ReadFileToString(path, &blob, &read_error)) continue;
      // Preferred format: one kReplSnapshot frame (session + resume ring).
      std::string_view payload;
      std::string decode_error;
      MsgType type;
      ReplSnapshotMsg snap;
      if (UnwrapFrame(blob, &payload, &decode_error) &&
          PeekType(payload, &type, &decode_error) &&
          type == MsgType::kReplSnapshot &&
          DecodeReplSnapshot(payload, &snap, &decode_error)) {
        if (im.session->LoadState(snap.state, &decode_error)) {
          im.RestoreRingLocked(snap.ring);
          loaded = true;
        }
      } else if (im.session->LoadState(blob, &decode_error)) {
        // Legacy format: a bare SaveState blob from a pre-HA server.
        loaded = true;
      }
      if (loaded && g > 0) {
        SOP_COUNTER_ADD("net/server/checkpoint_fallbacks", 1);
      }
    }
    if (loaded) {
      for (const QueryId id : im.session->RegisteredQueryIds()) {
        im.session->RemoveQuery(id);
      }
      // Boundary monotonicity resumes where the stream left off — a
      // stale ingest must be refused, not CHECK the session.
      im.last_boundary = im.session->last_boundary();
      im.stats.resumed.store(true, std::memory_order_relaxed);
      SOP_COUNTER_ADD("net/server/resumes", 1);
    }
    // No restorable generation is not fatal: serve fresh.
  }

  int bound_port = 0;
  im.listener = ListenTcp(im.options.host, im.options.port, /*backlog=*/64,
                          &bound_port, error);
  if (!im.listener.valid()) return false;
  port_ = bound_port;

  im.pool = std::make_unique<ThreadPool>(im.options.num_threads);
  im.detect_done = im.pool->Submit([&im] { im.DetectLoop(); });
  im.accept_thread = std::thread([&im] { im.AcceptLoop(); });
  if (replicate) {
    im.repl_thread = std::thread([&im] { im.ReplLoop(); });
  }
  im.started = true;
  return true;
}

void SopServer::Stop() {
  Impl& im = *impl_;
  if (!im.started || im.stopped) return;
  im.stopped = true;
  im.stopping.store(true, std::memory_order_relaxed);

  // Stop accepting new connections.
  im.listener.ShutdownBoth();
  if (im.accept_thread.joinable()) im.accept_thread.join();
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(im.conns_mu);
    conns = im.conns;
  }

  // Graceful drain, in dependency order. 1) Shut the read side of every
  // connection: readers wake with an orderly EOF and exit without closing
  // the socket, so queued outbound frames survive.
  for (const std::shared_ptr<Conn>& conn : conns) conn->sock.ShutdownRead();
  {
    std::lock_guard<std::mutex> lock(im.ingest_mu);
    im.ingest_cv_push.notify_all();
    im.ingest_cv_pop.notify_all();  // readers blocked on a full queue exit
  }
  for (const std::shared_ptr<Conn>& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }

  // 2) No producers left: the detection loop drains the ingest queue and
  // exits, enqueueing the final acks/emissions.
  {
    std::lock_guard<std::mutex> lock(im.ingest_mu);
    im.ingest_cv_push.notify_all();
  }
  if (im.detect_done.valid()) im.detect_done.get();

  // 3) Flush replication: the standby gets every batch up to the stop
  // point (bounded by its own liveness — a dead standby does not wedge
  // shutdown).
  if (im.repl_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(im.repl_mu);
      im.repl_cv.notify_all();
    }
    im.repl_thread.join();
  }

  // 4) Let writers drain their send queues, then exit via `closing`. A
  // peer that refuses to read its socket cannot hold shutdown hostage:
  // past the deadline its connection is aborted.
  for (const std::shared_ptr<Conn>& conn : conns) {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closing = true;
    conn->cv_push.notify_all();
    conn->cv_pop.notify_all();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (const std::shared_ptr<Conn>& conn : conns) {
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv_done.wait_until(lock, deadline, [&] {
        return conn->writer_done.load(std::memory_order_acquire);
      });
    }
    if (!conn->writer_done.load(std::memory_order_acquire)) {
      conn->sock.ShutdownBoth();
    }
    if (conn->writer.joinable()) conn->writer.join();
  }
  {
    std::lock_guard<std::mutex> lock(im.conns_mu);
    im.conns.clear();
  }
  im.pool.reset();
  im.listener.Close();

  // 5) Final checkpoint: a restart resumes from the exact stop point.
  if (!im.options.checkpoint_path.empty() && im.session != nullptr) {
    im.PublishCheckpoint(im.BuildSnapshotFrame());
  }
}

void SopServer::Kill() {
  Impl& im = *impl_;
  if (!im.started || im.stopped) return;
  im.stopped = true;
  im.killing.store(true, std::memory_order_relaxed);
  im.stopping.store(true, std::memory_order_relaxed);

  // Abort everything: sockets die mid-frame, queued work is dropped, no
  // final checkpoint — exactly what a crashed process leaves behind.
  im.listener.ShutdownBoth();
  if (im.accept_thread.joinable()) im.accept_thread.join();
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(im.conns_mu);
    conns = im.conns;
  }
  for (const std::shared_ptr<Conn>& conn : conns) im.CloseConn(conn);
  {
    std::lock_guard<std::mutex> lock(im.ingest_mu);
    im.ingest_cv_push.notify_all();
    im.ingest_cv_pop.notify_all();
  }
  if (im.detect_done.valid()) im.detect_done.get();
  if (im.repl_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(im.repl_mu);
      im.repl_cv.notify_all();
    }
    im.repl_thread.join();
  }
  for (const std::shared_ptr<Conn>& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
  {
    std::lock_guard<std::mutex> lock(im.conns_mu);
    im.conns.clear();
  }
  im.pool.reset();
  im.listener.Close();
}

ServerRole SopServer::role() const { return impl_->RoleNow(); }

ServerStats SopServer::stats() const {
  const Impl::AtomicStats& a = impl_->stats;
  ServerStats s;
  s.connections = a.connections.load(std::memory_order_relaxed);
  s.active_clients = a.active_clients.load(std::memory_order_relaxed);
  s.frames_in = a.frames_in.load(std::memory_order_relaxed);
  s.frames_out = a.frames_out.load(std::memory_order_relaxed);
  s.bytes_in = a.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = a.bytes_out.load(std::memory_order_relaxed);
  s.ingest_batches = a.ingest_batches.load(std::memory_order_relaxed);
  s.ingest_points = a.ingest_points.load(std::memory_order_relaxed);
  s.halo_points = a.halo_points.load(std::memory_order_relaxed);
  s.emissions = a.emissions.load(std::memory_order_relaxed);
  s.shed_emissions = a.shed_emissions.load(std::memory_order_relaxed);
  s.subscribes = a.subscribes.load(std::memory_order_relaxed);
  s.unsubscribes = a.unsubscribes.load(std::memory_order_relaxed);
  s.protocol_errors = a.protocol_errors.load(std::memory_order_relaxed);
  s.checkpoints = a.checkpoints.load(std::memory_order_relaxed);
  s.checkpoint_failures =
      a.checkpoint_failures.load(std::memory_order_relaxed);
  s.idle_disconnects = a.idle_disconnects.load(std::memory_order_relaxed);
  s.promotions = a.promotions.load(std::memory_order_relaxed);
  s.repl_snapshots_sent =
      a.repl_snapshots_sent.load(std::memory_order_relaxed);
  s.repl_batches_sent = a.repl_batches_sent.load(std::memory_order_relaxed);
  s.repl_snapshots_applied =
      a.repl_snapshots_applied.load(std::memory_order_relaxed);
  s.repl_batches_applied =
      a.repl_batches_applied.load(std::memory_order_relaxed);
  s.repl_resyncs = a.repl_resyncs.load(std::memory_order_relaxed);
  s.resume_replayed = a.resume_replayed.load(std::memory_order_relaxed);
  s.resume_gaps = a.resume_gaps.load(std::memory_order_relaxed);
  s.resumed = a.resumed.load(std::memory_order_relaxed);
  s.role = impl_->RoleNow();
  {
    std::lock_guard<std::mutex> lock(impl_->shard_mu);
    s.sharded = impl_->shard_set;
    s.shard_index = impl_->shard.shard_index;
    s.num_shards = impl_->shard.num_shards;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->session_mu);
    if (impl_->session != nullptr) {
      const SessionChangeStats& c = impl_->session->change_stats();
      s.overlay_changes = c.overlay_changes;
      s.basis_extends = c.basis_extends;
      s.rebuild_changes = c.rebuilds;
      s.replayed_points = c.replayed_points;
      s.last_boundary = impl_->last_boundary;
    }
  }
  return s;
}

}  // namespace net
}  // namespace sop
