#include "sop/net/server.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "sop/common/fault.h"
#include "sop/common/thread_pool.h"
#include "sop/core/session.h"
#include "sop/detector/factory.h"
#include "sop/io/file_util.h"
#include "sop/net/protocol.h"
#include "sop/obs/trace.h"

namespace sop {
namespace net {

namespace {

/// One connected client. The reader thread owns protocol dispatch; the
/// writer thread drains the bounded send queue; everything shared between
/// them (and the detection loop, which enqueues emissions) sits behind mu.
struct Conn {
  explicit Conn(Socket s) : sock(std::move(s)) {}

  Socket sock;
  std::thread reader;
  std::thread writer;

  std::mutex mu;
  std::condition_variable cv_push;  // writer waits: queue non-empty/closing
  std::condition_variable cv_pop;   // kBlock enqueuers wait: queue has room

  struct Outgoing {
    std::string frame;
    bool droppable;  // emissions may be shed; control replies never
  };
  std::deque<Outgoing> sendq;       // guarded by mu
  bool closing = false;             // guarded by mu
  bool hello_done = false;          // guarded by mu (reader-only in practice)
  // An emission to this subscriber was shed; the next delivered emission
  // carries degraded=true so the client can see the gap.
  bool degraded_pending = false;    // guarded by mu
  std::set<QueryId> subs;           // guarded by mu
};

struct IngestOp {
  std::shared_ptr<Conn> conn;
  IngestMsg msg;
};

}  // namespace

struct SopServer::Impl {
  explicit Impl(ServerOptions opts) : options(std::move(opts)) {}

  ServerOptions options;

  // --- always-on stats (obs may be compiled out) -------------------------
  struct AtomicStats {
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> active_clients{0};
    std::atomic<uint64_t> frames_in{0};
    std::atomic<uint64_t> frames_out{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    std::atomic<uint64_t> ingest_batches{0};
    std::atomic<uint64_t> ingest_points{0};
    std::atomic<uint64_t> emissions{0};
    std::atomic<uint64_t> shed_emissions{0};
    std::atomic<uint64_t> subscribes{0};
    std::atomic<uint64_t> unsubscribes{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> checkpoints{0};
    std::atomic<uint64_t> checkpoint_failures{0};
    std::atomic<bool> resumed{false};
  };
  AtomicStats stats;

  // --- serving state -----------------------------------------------------
  Socket listener;
  std::thread accept_thread;
  std::unique_ptr<ThreadPool> pool;
  std::future<void> detect_done;

  // The session and its stream position. Advance/AddQuery/RemoveQuery/
  // SaveState all serialize here; the detection loop holds it for the
  // duration of each batch.
  std::mutex session_mu;
  std::unique_ptr<SopSession> session;        // guarded by session_mu
  int64_t last_boundary;                      // guarded by session_mu
  int64_t batches_since_checkpoint = 0;       // guarded by session_mu

  std::mutex conns_mu;
  std::vector<std::shared_ptr<Conn>> conns;   // guarded by conns_mu

  // Bounded reader -> detection-loop handoff. A full queue blocks readers,
  // so ingest backpressure propagates to the client's TCP stream.
  std::mutex ingest_mu;
  std::condition_variable ingest_cv_push;     // detection loop waits
  std::condition_variable ingest_cv_pop;      // readers wait for room
  std::deque<IngestOp> ingest_queue;          // guarded by ingest_mu

  std::atomic<bool> stopping{false};
  bool started = false;
  bool stopped = false;

  // --- implementation ----------------------------------------------------

  // Enqueues one frame for `conn`'s writer. Droppable frames respect the
  // queue bound under the configured overload policy; control frames
  // bypass the bound (they are request-paced, so the reader's own
  // backpressure already limits them). Returns false if the frame was
  // dropped (connection closing, or shed under kDropOldest).
  bool EnqueueFrame(const std::shared_ptr<Conn>& conn, std::string frame,
                    bool droppable) {
    std::unique_lock<std::mutex> lock(conn->mu);
    if (conn->closing) return false;
    if (droppable && conn->sendq.size() >= options.max_send_queue) {
      if (options.send_policy == OverloadPolicy::kDropOldest) {
        // Shed the oldest queued emission; never a control reply.
        for (auto it = conn->sendq.begin(); it != conn->sendq.end(); ++it) {
          if (it->droppable) {
            conn->sendq.erase(it);
            conn->degraded_pending = true;
            stats.shed_emissions.fetch_add(1, std::memory_order_relaxed);
            SOP_COUNTER_ADD("net/server/shed_emissions", 1);
            break;
          }
        }
      } else {
        // kBlock: lossless backpressure into the detection loop.
        conn->cv_pop.wait(lock, [&] {
          return conn->closing ||
                 conn->sendq.size() < options.max_send_queue;
        });
        if (conn->closing) return false;
      }
    }
    conn->sendq.push_back(Conn::Outgoing{std::move(frame), droppable});
    SOP_GAUGE_SET_MAX("net/server/send_queue_depth", conn->sendq.size());
    conn->cv_push.notify_one();
    return true;
  }

  // Marks `conn` closing, wakes its threads, and retires its
  // subscriptions. Idempotent; callable from any thread.
  void CloseConn(const std::shared_ptr<Conn>& conn) {
    std::vector<QueryId> subs;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closing) return;
      conn->closing = true;
      subs.assign(conn->subs.begin(), conn->subs.end());
      conn->subs.clear();
      conn->cv_push.notify_all();
      conn->cv_pop.notify_all();
    }
    conn->sock.ShutdownBoth();  // unblocks recv/send in reader/writer
    if (!subs.empty()) {
      std::lock_guard<std::mutex> lock(session_mu);
      for (const QueryId id : subs) session->RemoveQuery(id);
    }
    stats.active_clients.fetch_sub(1, std::memory_order_relaxed);
    SOP_GAUGE_SET("net/server/active_clients",
                  stats.active_clients.load(std::memory_order_relaxed));
    SOP_COUNTER_ADD("net/server/disconnects", 1);
  }

  void WriterLoop(const std::shared_ptr<Conn>& conn) {
    for (;;) {
      Conn::Outgoing out;
      {
        std::unique_lock<std::mutex> lock(conn->mu);
        conn->cv_push.wait(lock, [&] {
          return conn->closing || !conn->sendq.empty();
        });
        // Drain queued frames even when closing: Stop() expects in-flight
        // acks to reach clients before the socket goes down — but a writer
        // stuck on a dead peer still exits via SendAll failure below.
        if (conn->sendq.empty()) return;
        out = std::move(conn->sendq.front());
        conn->sendq.pop_front();
        conn->cv_pop.notify_one();
      }
      std::string error;
      if (!SendAll(conn->sock, out.frame, options.retry, &error)) {
        CloseConn(conn);
        return;
      }
      stats.frames_out.fetch_add(1, std::memory_order_relaxed);
      stats.bytes_out.fetch_add(out.frame.size(), std::memory_order_relaxed);
      SOP_COUNTER_ADD("net/server/frames_out", 1);
      SOP_COUNTER_ADD("net/server/bytes_out", out.frame.size());
    }
  }

  void SendError(const std::shared_ptr<Conn>& conn, std::string message) {
    stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    SOP_COUNTER_ADD("net/server/protocol_errors", 1);
    EnqueueFrame(conn, EncodeError(ErrorMsg{std::move(message)}),
                 /*droppable=*/false);
  }

  // Handles one complete, CRC-verified frame payload from `conn`.
  // Returns false when the connection must be dropped.
  bool Dispatch(const std::shared_ptr<Conn>& conn,
                const std::string& payload) {
    MsgType type;
    std::string error;
    if (!PeekType(payload, &type, &error)) {
      SendError(conn, error);
      return false;
    }
    switch (type) {
      case MsgType::kHello: {
        HelloMsg hello;
        if (!DecodeHello(payload, &hello, &error)) {
          SendError(conn, error);
          return false;
        }
        if (hello.protocol_version != kProtocolVersion) {
          SendError(conn, "protocol version mismatch: server speaks v" +
                              std::to_string(kProtocolVersion));
          return false;
        }
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->hello_done = true;
        }
        HelloAckMsg ack;
        ack.protocol_version = kProtocolVersion;
        ack.window_type = static_cast<uint32_t>(options.window_type);
        ack.metric = static_cast<uint32_t>(options.metric);
        ack.detector = options.detector;
        {
          std::lock_guard<std::mutex> session_lock(session_mu);
          ack.last_boundary = last_boundary;
        }
        EnqueueFrame(conn, EncodeHelloAck(ack), /*droppable=*/false);
        return true;
      }
      case MsgType::kIngest: {
        IngestOp op;
        op.conn = conn;
        if (!DecodeIngest(payload, &op.msg, &error)) {
          SendError(conn, error);
          return false;
        }
        std::unique_lock<std::mutex> lock(ingest_mu);
        ingest_cv_pop.wait(lock, [&] {
          return stopping.load(std::memory_order_relaxed) ||
                 ingest_queue.size() < options.max_ingest_queue;
        });
        if (stopping.load(std::memory_order_relaxed)) return false;
        ingest_queue.push_back(std::move(op));
        SOP_GAUGE_SET_MAX("net/server/ingest_queue_depth",
                          ingest_queue.size());
        ingest_cv_push.notify_one();
        return true;
      }
      case MsgType::kSubscribe: {
        SubscribeMsg sub;
        if (!DecodeSubscribe(payload, &sub, &error)) {
          SendError(conn, error);
          return false;
        }
        // Pre-validate exactly as SopSession::AddQuery would CHECK: a bad
        // query from the wire must refuse the subscription, not abort the
        // server process.
        Workload probe(options.window_type, options.metric);
        probe.AddQuery(sub.query);
        const std::string verdict = probe.Validate();
        SubscribeAckMsg ack;
        if (!verdict.empty()) {
          ack.query_id = 0;
          ack.error = verdict;
        } else {
          {
            std::lock_guard<std::mutex> session_lock(session_mu);
            ack.query_id = session->AddQuery(sub.query);
          }
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->subs.insert(ack.query_id);
          stats.subscribes.fetch_add(1, std::memory_order_relaxed);
          SOP_COUNTER_ADD("net/server/subscribes", 1);
        }
        EnqueueFrame(conn, EncodeSubscribeAck(ack), /*droppable=*/false);
        return true;
      }
      case MsgType::kUnsubscribe: {
        UnsubscribeMsg unsub;
        if (!DecodeUnsubscribe(payload, &unsub, &error)) {
          SendError(conn, error);
          return false;
        }
        // A client may only retire its own subscriptions.
        bool owned = false;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          owned = conn->subs.erase(unsub.query_id) > 0;
        }
        UnsubscribeAckMsg ack;
        if (owned) {
          std::lock_guard<std::mutex> session_lock(session_mu);
          ack.ok = session->RemoveQuery(unsub.query_id);
        }
        if (ack.ok) {
          stats.unsubscribes.fetch_add(1, std::memory_order_relaxed);
          SOP_COUNTER_ADD("net/server/unsubscribes", 1);
        }
        EnqueueFrame(conn, EncodeUnsubscribeAck(ack), /*droppable=*/false);
        return true;
      }
      default:
        // Server-bound streams never carry server-push types; a client
        // sending one is confused but not fatal.
        SendError(conn, std::string("unexpected client message: ") +
                            MsgTypeName(type));
        return true;
    }
  }

  void ReaderLoop(const std::shared_ptr<Conn>& conn) {
    FrameDecoder decoder;
    char buf[64 << 10];
    for (;;) {
      std::string error;
      const int64_t n =
          RecvSome(conn->sock, buf, sizeof(buf), options.retry, &error);
      if (n <= 0) break;  // orderly close, hard error, or retry exhaustion
      stats.bytes_in.fetch_add(static_cast<uint64_t>(n),
                               std::memory_order_relaxed);
      SOP_COUNTER_ADD("net/server/bytes_in", n);
      decoder.Append(buf, static_cast<size_t>(n));
      bool drop = false;
      for (;;) {
        std::string payload;
        const FrameDecoder::Status status = decoder.Next(&payload, &error);
        if (status == FrameDecoder::Status::kNeedMore) break;
        if (status == FrameDecoder::Status::kError) {
          // Framing lost: this connection cannot resync. Tell the client
          // why (best effort) and drop it; the process and every other
          // connection stay up.
          SendError(conn, error);
          drop = true;
          break;
        }
        stats.frames_in.fetch_add(1, std::memory_order_relaxed);
        SOP_COUNTER_ADD("net/server/frames_in", 1);
        if (!Dispatch(conn, payload)) {
          drop = true;
          break;
        }
      }
      if (drop) break;
    }
    CloseConn(conn);
  }

  void AcceptLoop() {
    for (;;) {
      std::string error;
      Socket sock = AcceptTcp(listener, &error);
      if (!sock.valid()) {
        if (stopping.load(std::memory_order_relaxed)) return;
        continue;  // transient accept failure; keep serving
      }
      if (stopping.load(std::memory_order_relaxed)) return;
      auto conn = std::make_shared<Conn>(std::move(sock));
      stats.connections.fetch_add(1, std::memory_order_relaxed);
      stats.active_clients.fetch_add(1, std::memory_order_relaxed);
      SOP_COUNTER_ADD("net/server/connections", 1);
      SOP_GAUGE_SET(
          "net/server/active_clients",
          stats.active_clients.load(std::memory_order_relaxed));
      // Register the connection before its reader can process a frame: a
      // subscribe handled before this conn is visible in `conns` would let
      // the next batch's emissions bypass the brand-new subscriber. Stop()
      // joins the accept thread before it snapshots `conns`, so a conn
      // registered here always has its threads spawned by then.
      {
        std::lock_guard<std::mutex> lock(conns_mu);
        conns.push_back(conn);
      }
      conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
      conn->writer = std::thread([this, conn] { WriterLoop(conn); });
    }
  }

  // Fans one batch's session results out to subscribers. Returns how many
  // emission frames were enqueued for `ingester` (reported in its ack).
  uint64_t RouteEmissions(const std::vector<SessionResult>& results,
                          const std::shared_ptr<Conn>& ingester) {
    uint64_t to_ingester = 0;
    std::vector<std::shared_ptr<Conn>> snapshot;
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      snapshot = conns;
    }
    for (const SessionResult& r : results) {
      for (const std::shared_ptr<Conn>& conn : snapshot) {
        EmissionMsg m;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          if (conn->closing || conn->subs.count(r.query_id) == 0) continue;
          m.degraded = r.degraded || conn->degraded_pending;
          conn->degraded_pending = false;
        }
        m.query_id = r.query_id;
        m.boundary = r.boundary;
        m.outliers = r.outliers;
        if (EnqueueFrame(conn, EncodeEmission(m), /*droppable=*/true)) {
          stats.emissions.fetch_add(1, std::memory_order_relaxed);
          SOP_COUNTER_ADD("net/server/emissions", 1);
          if (conn == ingester) ++to_ingester;
        }
      }
    }
    return to_ingester;
  }

  // Saves the session to options.checkpoint_path (atomic publish),
  // consulting the checkpoint fault sites like the engine does. `blob`
  // was produced under session_mu by the caller.
  void PublishCheckpoint(std::string blob) {
    FaultInjector* injector = FaultInjector::Armed();
    if (injector != nullptr &&
        injector->ShouldFail(FaultSite::kCheckpointWrite)) {
      stats.checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      SOP_COUNTER_ADD("net/server/checkpoint_failures", 1);
      return;  // skipped save; the previous checkpoint stays valid
    }
    if (injector != nullptr &&
        injector->ShouldFail(FaultSite::kCheckpointBytes)) {
      injector->CorruptBytes(&blob);  // framing catches this on restore
    }
    std::string error;
    if (io::WriteFileAtomic(options.checkpoint_path, blob, &error)) {
      stats.checkpoints.fetch_add(1, std::memory_order_relaxed);
      SOP_COUNTER_ADD("net/server/checkpoints", 1);
    } else {
      stats.checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      SOP_COUNTER_ADD("net/server/checkpoint_failures", 1);
    }
  }

  void DetectLoop() {
    for (;;) {
      IngestOp op;
      {
        std::unique_lock<std::mutex> lock(ingest_mu);
        ingest_cv_push.wait(lock, [&] {
          return stopping.load(std::memory_order_relaxed) ||
                 !ingest_queue.empty();
        });
        if (ingest_queue.empty()) return;  // stopping and drained
        op = std::move(ingest_queue.front());
        ingest_queue.pop_front();
        ingest_cv_pop.notify_one();
      }

      std::vector<SessionResult> results;
      std::string checkpoint_blob;
      const uint64_t batch_size = op.msg.points.size();
      bool accepted = false;
      {
        std::lock_guard<std::mutex> lock(session_mu);
        // Pre-validate what SopSession::Advance would CHECK: boundaries
        // must strictly increase. Bad wire input gets an error reply, not
        // a process abort.
        if (op.msg.boundary > last_boundary) {
          accepted = true;
          last_boundary = op.msg.boundary;
          SOP_TRACE("net/server/advance_ms");
          results = session->Advance(std::move(op.msg.points),
                                     op.msg.boundary);
          stats.ingest_batches.fetch_add(1, std::memory_order_relaxed);
          stats.ingest_points.fetch_add(batch_size,
                                        std::memory_order_relaxed);
          if (!options.checkpoint_path.empty() &&
              ++batches_since_checkpoint >=
                  options.checkpoint_every_batches) {
            batches_since_checkpoint = 0;
            checkpoint_blob = session->SaveState();
          }
        }
      }

      if (!accepted) {
        SendError(op.conn, "ingest boundary " +
                               std::to_string(op.msg.boundary) +
                               " does not advance the stream");
        IngestAckMsg ack;
        ack.boundary = op.msg.boundary;
        ack.accepted = 0;
        ack.emissions = 0;
        EnqueueFrame(op.conn, EncodeIngestAck(ack), /*droppable=*/false);
        continue;
      }
      SOP_COUNTER_ADD("net/server/ingest_batches", 1);

      // Emissions first, then the ack on the same queue: a client that
      // waits for its ack is guaranteed to have this batch's emissions
      // already buffered ahead of it.
      IngestAckMsg ack;
      ack.boundary = op.msg.boundary;
      ack.accepted = batch_size;
      ack.emissions = RouteEmissions(results, op.conn);
      EnqueueFrame(op.conn, EncodeIngestAck(ack), /*droppable=*/false);

      if (!checkpoint_blob.empty()) {
        PublishCheckpoint(std::move(checkpoint_blob));
      }
    }
  }
};

SopServer::SopServer(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SopServer::~SopServer() { Stop(); }

bool SopServer::Start(std::string* error) {
  Impl& im = *impl_;
  if (im.started) {
    if (error != nullptr) *error = "server already started";
    return false;
  }
  if (!IsKnownDetector(im.options.detector)) {
    if (error != nullptr) *error = UnknownDetectorMessage(im.options.detector);
    return false;
  }
  if (im.options.history_window <= 0 || im.options.max_send_queue == 0 ||
      im.options.max_ingest_queue == 0 || im.options.num_threads <= 0 ||
      im.options.checkpoint_every_batches <= 0) {
    if (error != nullptr) *error = "server options out of range";
    return false;
  }

  im.session = std::make_unique<SopSession>(im.options.window_type,
                                            im.options.metric,
                                            im.options.history_window);
  const std::string detector_name = im.options.detector;
  if (detector_name == "sop" || detector_name == "sop-grid") {
    // Route through the session's in-process SopDetector so subscribe/
    // unsubscribe can take the overlay-swap path instead of always
    // rebuilding and replaying history.
    SopDetector::Options sop_options;
    sop_options.use_grid_index = detector_name == "sop-grid";
    im.session->UseSopDetector(sop_options);
  } else {
    im.session->SetDetectorBuilder([detector_name](const Workload& workload) {
      return CreateDetector(detector_name, workload);
    });
  }
  im.session->SetBasisHeadroom(im.options.headroom);
  im.last_boundary = INT64_MIN;

  // Resume from the previous incarnation's checkpoint when one exists.
  // Restored queries belonged to connections that no longer exist, so they
  // are retired; the restored history and stream position remain, and a
  // reconnecting subscriber's replay starts from them.
  if (!im.options.checkpoint_path.empty()) {
    std::string blob;
    std::string read_error;
    FaultInjector* injector = FaultInjector::Armed();
    const bool read_failed =
        injector != nullptr &&
        injector->ShouldFail(FaultSite::kCheckpointRead);
    if (!read_failed &&
        io::ReadFileToString(im.options.checkpoint_path, &blob,
                             &read_error)) {
      std::string load_error;
      if (im.session->LoadState(blob, &load_error)) {
        for (const QueryId id : im.session->RegisteredQueryIds()) {
          im.session->RemoveQuery(id);
        }
        // Boundary monotonicity resumes where the stream left off — a
        // stale ingest must be refused, not CHECK the session.
        im.last_boundary = im.session->last_boundary();
        im.stats.resumed.store(true, std::memory_order_relaxed);
        SOP_COUNTER_ADD("net/server/resumes", 1);
      }
      // A corrupt/mismatched checkpoint is not fatal: serve fresh.
    }
  }

  int bound_port = 0;
  im.listener = ListenTcp(im.options.host, im.options.port, /*backlog=*/64,
                          &bound_port, error);
  if (!im.listener.valid()) return false;
  port_ = bound_port;

  im.pool = std::make_unique<ThreadPool>(im.options.num_threads);
  im.detect_done = im.pool->Submit([&im] { im.DetectLoop(); });
  im.accept_thread = std::thread([&im] { im.AcceptLoop(); });
  im.started = true;
  return true;
}

void SopServer::Stop() {
  Impl& im = *impl_;
  if (!im.started || im.stopped) return;
  im.stopped = true;
  im.stopping.store(true, std::memory_order_relaxed);

  // Stop accepting, then close every connection; readers stop feeding the
  // ingest queue.
  im.listener.ShutdownBoth();
  if (im.accept_thread.joinable()) im.accept_thread.join();
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(im.conns_mu);
    conns = im.conns;
  }
  for (const std::shared_ptr<Conn>& conn : conns) im.CloseConn(conn);
  {
    std::lock_guard<std::mutex> lock(im.ingest_mu);
    im.ingest_cv_push.notify_all();
    im.ingest_cv_pop.notify_all();
  }
  // Drain the detection loop, then the per-connection threads.
  if (im.detect_done.valid()) im.detect_done.get();
  for (const std::shared_ptr<Conn>& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
  {
    std::lock_guard<std::mutex> lock(im.conns_mu);
    im.conns.clear();
  }
  im.pool.reset();
  im.listener.Close();

  // Final checkpoint: a restart resumes from the exact stop point.
  if (!im.options.checkpoint_path.empty() && im.session != nullptr) {
    im.PublishCheckpoint(im.session->SaveState());
  }
}

ServerStats SopServer::stats() const {
  const Impl::AtomicStats& a = impl_->stats;
  ServerStats s;
  s.connections = a.connections.load(std::memory_order_relaxed);
  s.active_clients = a.active_clients.load(std::memory_order_relaxed);
  s.frames_in = a.frames_in.load(std::memory_order_relaxed);
  s.frames_out = a.frames_out.load(std::memory_order_relaxed);
  s.bytes_in = a.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = a.bytes_out.load(std::memory_order_relaxed);
  s.ingest_batches = a.ingest_batches.load(std::memory_order_relaxed);
  s.ingest_points = a.ingest_points.load(std::memory_order_relaxed);
  s.emissions = a.emissions.load(std::memory_order_relaxed);
  s.shed_emissions = a.shed_emissions.load(std::memory_order_relaxed);
  s.subscribes = a.subscribes.load(std::memory_order_relaxed);
  s.unsubscribes = a.unsubscribes.load(std::memory_order_relaxed);
  s.protocol_errors = a.protocol_errors.load(std::memory_order_relaxed);
  s.checkpoints = a.checkpoints.load(std::memory_order_relaxed);
  s.checkpoint_failures =
      a.checkpoint_failures.load(std::memory_order_relaxed);
  s.resumed = a.resumed.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->session_mu);
    if (impl_->session != nullptr) {
      const SessionChangeStats& c = impl_->session->change_stats();
      s.overlay_changes = c.overlay_changes;
      s.basis_extends = c.basis_extends;
      s.rebuild_changes = c.rebuilds;
      s.replayed_points = c.replayed_points;
    }
  }
  return s;
}

}  // namespace net
}  // namespace sop
