// SopClient: a blocking client for the sop serving plane (net/server.h).
//
// The client is deliberately synchronous — one socket, no threads: each
// request writes its frame and then reads until the matching ack arrives.
// Server-push frames (emissions, error diagnostics) that arrive while
// waiting are buffered and handed out via TakeEmissions/TakeErrors. The
// server enqueues a batch's emissions ahead of its ingest ack on the same
// connection, so after Ingest() returns, every emission the server routed
// to this client for that batch is already in the buffer — which makes a
// subscribe-ingest-collect loop deterministic, and is exactly what the
// loopback equivalence tests exploit.
//
// Auto-reconnect (EnableReconnect): when armed, a dead connection is
// recovered transparently mid-call — the client walks its endpoint list
// with bounded backoff until it finds a serving primary (a standby that
// has not promoted yet is skipped), then re-subscribes every live query
// with its high-water boundary as `resume_from` (the server replays
// retained later emissions), and re-ingests its retained batch tail past
// the new server's stream position (a freshly promoted standby may trail
// the old primary by the unreplicated batches). Query ids handed to the
// caller are stable across reconnects: the client remaps the server's new
// ids internally. Every delivered emission is deduplicated against the
// per-query high-water mark, so across any number of disconnects and
// failovers the caller sees each (query, boundary) exactly once, in
// boundary order — unless the server flagged a real gap, which surfaces as
// `degraded` on the next emission.
//
// Not thread-safe: one SopClient per thread.

#ifndef SOP_NET_CLIENT_H_
#define SOP_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sop/common/point.h"
#include "sop/net/protocol.h"
#include "sop/net/socket.h"
#include "sop/query/query.h"

namespace sop {
namespace net {

/// One serving endpoint for reconnect failover.
struct Endpoint {
  std::string host;
  int port = 0;
};

/// Auto-reconnect policy (see file comment).
struct ReconnectOptions {
  /// Endpoints tried round-robin during recovery. When empty, the endpoint
  /// passed to Connect() is the only candidate.
  std::vector<Endpoint> endpoints;
  /// Total connection attempts per recovery before giving up. Combined
  /// with the backoff schedule this bounds how long a failover may take
  /// (a standby needs a moment to notice primary loss and promote).
  int max_attempts = 40;
  int backoff_initial_ms = 10;
  int backoff_max_ms = 500;
  /// Acked ingest batches retained for re-ingest after a failover: a
  /// freshly promoted standby may trail the old primary by the batches it
  /// had not replicated yet. Size it past the primary's replication lag
  /// (normally one batch) or accept a hole in the stream.
  size_t ingest_replay = 64;
};

/// Blocking serving-plane client. See file comment.
class SopClient {
 public:
  SopClient() = default;
  ~SopClient() { Close(); }

  SopClient(const SopClient&) = delete;
  SopClient& operator=(const SopClient&) = delete;

  /// Connects and completes the hello handshake, discarding any previous
  /// session state (subscriptions, high-water marks, retained batches).
  /// Returns false with `*error` set on connection failure, version
  /// mismatch, or a malformed handshake.
  bool Connect(const std::string& host, int port, std::string* error);

  /// Arms transparent recovery for every later call (see file comment).
  /// Call any time; an empty endpoint list falls back to the Connect()
  /// endpoint.
  void EnableReconnect(ReconnectOptions options);

  /// True between a successful Connect and Close (or a connection error,
  /// which closes the socket).
  bool connected() const { return sock_.valid(); }

  /// Server session configuration from the most recent handshake (valid
  /// after Connect): window type, metric, detector name, role, stream
  /// position.
  const HelloAckMsg& server_info() const { return server_info_; }

  /// Registers a query; returns its client-stable id (> 0), or 0 with
  /// `*error` set when the server refused it (bad parameters) or the
  /// connection failed. The id survives reconnects.
  int64_t Subscribe(const OutlierQuery& query, std::string* error);

  /// Subscribe with an explicit resume position (a persisted high-water
  /// boundary from a previous process): the server replays every retained
  /// emission for this query's parameters past `resume_from` and the
  /// replay lands in TakeEmissions() before this returns. Pass kNoResume
  /// for a fresh subscription.
  int64_t Subscribe(const OutlierQuery& query, int64_t resume_from,
                    std::string* error);

  /// From the most recent subscribe ack: emissions replayed ahead of it,
  /// and whether the server reported a resume gap (ring wrapped past the
  /// requested position; lost emissions are flagged on the next delivery).
  uint64_t last_replayed() const { return last_replayed_; }
  bool last_gap() const { return last_gap_; }

  /// The boundary of the newest emission delivered for `query_id`
  /// (kNoResume before the first). Persist it to resume a subscription in
  /// a future process via Subscribe(query, resume_from).
  int64_t high_water(int64_t query_id) const;

  /// Retires a previously subscribed query. Returns false for unknown ids
  /// or connection failure.
  bool Unsubscribe(int64_t query_id, std::string* error);

  /// Sends one point batch ending at `boundary` and waits for the ack;
  /// emissions the server routed to this client for the batch are buffered
  /// before this returns (see file comment). Records the round-trip time
  /// into the "net/client/rtt_ms" histogram. On a refused batch the ack
  /// has accepted == 0 and the server's diagnostic is in TakeErrors().
  /// With reconnect armed, a batch whose ack was lost to a crash but whose
  /// boundary the recovered stream already passed is reported accepted —
  /// it (or its re-ingested copy) is in the stream exactly once.
  bool Ingest(int64_t boundary, const std::vector<Point>& points,
              IngestAckMsg* ack, std::string* error);

  /// Ingest with per-point ownership flags (scale-out plane, DESIGN.md
  /// Sec. 17): `owner` is parallel to `points` (or empty = all owned).
  /// Routers use this to mark halo replicas; the flags ride along on
  /// post-failover re-ingest too.
  bool Ingest(int64_t boundary, const std::vector<Point>& points,
              const std::vector<uint8_t>& owner, IngestAckMsg* ack,
              std::string* error);

  /// Declares this endpoint's shard assignment (router -> worker). The
  /// config is retained and re-declared automatically after every
  /// reconnect recovery; a worker already claimed with a conflicting
  /// config acks ok == false (surfaced in `*ack`, returns true).
  bool ShardConfig(const ShardConfigMsg& config, ShardConfigAckMsg* ack,
                   std::string* error);

  /// Health probe: role, stream position, queue depths. Never triggers
  /// reconnect — a probe that cannot reach the server should say so.
  bool Ping(PongMsg* pong, std::string* error);

  /// Drains buffered server-push emissions, in arrival order, with
  /// client-stable query ids and exactly-once dedup already applied.
  std::vector<EmissionMsg> TakeEmissions();

  /// Drains buffered server error diagnostics, in arrival order.
  std::vector<ErrorMsg> TakeErrors();

  /// Bytes sent/received since Connect.
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

  /// Completed transparent recoveries since Connect.
  uint64_t reconnects() const { return reconnects_; }
  /// Emissions dropped as already-delivered duplicates (resume overlap).
  uint64_t dropped_duplicates() const { return dropped_duplicates_; }

  void Close();

  /// Retry schedule for injected socket faults (set before Connect).
  void set_retry(const NetRetryOptions& retry) { retry_ = retry; }

 private:
  // One live subscription, addressed by its client-stable public id.
  struct Sub {
    OutlierQuery query;
    int64_t server_id = 0;       // current server-assigned id
    int64_t hwm = kNoResume;     // newest delivered emission boundary
  };

  // One acked batch retained for post-failover re-ingest.
  struct SentBatch {
    int64_t boundary = 0;
    std::vector<Point> points;
    std::vector<uint8_t> owner;  // per-point ownership flags (may be empty)
  };

  // Connect + handshake without touching session state (the recovery
  // path; Connect() wraps it and clears state first).
  bool ConnectRaw(const std::string& host, int port, std::string* error);

  // Wire-level subscribe for `sub`, adopting replayed emissions under
  // `public_id`. Updates sub.server_id and the reverse map on success.
  bool WireSubscribe(int64_t public_id, Sub* sub, int64_t resume_from,
                     SubscribeAckMsg* ack, std::string* error);

  // Translates a raw server emission to its public id, applies high-water
  // dedup, and buffers it. Unknown server ids are dropped (stale pushes
  // from a retired subscription) unless orphan collection is on.
  void AcceptEmission(EmissionMsg emission);

  // Walks the endpoint list until a primary accepts us, then re-subscribes
  // everything (resuming from high-water marks) and re-ingests the
  // retained batch tail. On success `recovered_boundary_` holds the
  // server's stream position.
  bool Recover(std::string* error);

  // Sends one encoded frame. Closes the socket on failure.
  bool SendFrame(const std::string& frame, std::string* error);

  // Reads frames until one of type `expected` arrives, buffering
  // emissions/errors encountered on the way; the expected payload lands in
  // `*payload`. Closes the socket on EOF, socket error, or framing loss.
  bool ReadUntil(MsgType expected, std::string* payload, std::string* error);

  Socket sock_;
  FrameDecoder decoder_;
  NetRetryOptions retry_;
  HelloAckMsg server_info_;
  std::vector<EmissionMsg> emissions_;
  std::vector<ErrorMsg> errors_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;

  // --- reconnect state ---------------------------------------------------
  bool reconnect_armed_ = false;
  ReconnectOptions reconnect_;
  Endpoint connected_endpoint_;
  std::map<int64_t, Sub> subs_;             // public id -> subscription
  std::map<int64_t, int64_t> server_to_public_;
  std::deque<SentBatch> sent_batches_;      // bounded by ingest_replay
  int64_t recovered_boundary_ = kNoResume;  // server position post-recovery
  uint64_t recovered_next_seq_ = 0;         // arrival counter post-recovery
  uint64_t reconnects_ = 0;
  uint64_t dropped_duplicates_ = 0;
  uint64_t last_replayed_ = 0;
  bool last_gap_ = false;
  uint64_t ping_token_ = 0;
  // Shard assignment to re-declare after every recovery (scale-out).
  bool shard_config_set_ = false;
  ShardConfigMsg shard_config_;
  // During a subscribe, replayed emissions arrive before the ack that
  // names their server id; they wait here until the ack adopts them.
  bool collect_orphans_ = false;
  std::vector<EmissionMsg> orphans_;
};

}  // namespace net
}  // namespace sop

#endif  // SOP_NET_CLIENT_H_
