// SopClient: a blocking client for the sop serving plane (net/server.h).
//
// The client is deliberately synchronous — one socket, no threads: each
// request writes its frame and then reads until the matching ack arrives.
// Server-push frames (emissions, error diagnostics) that arrive while
// waiting are buffered and handed out via TakeEmissions/TakeErrors. The
// server enqueues a batch's emissions ahead of its ingest ack on the same
// connection, so after Ingest() returns, every emission the server routed
// to this client for that batch is already in the buffer — which makes a
// subscribe-ingest-collect loop deterministic, and is exactly what the
// loopback equivalence tests exploit.
//
// Not thread-safe: one SopClient per thread.

#ifndef SOP_NET_CLIENT_H_
#define SOP_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sop/common/point.h"
#include "sop/net/protocol.h"
#include "sop/net/socket.h"
#include "sop/query/query.h"

namespace sop {
namespace net {

/// Blocking serving-plane client. See file comment.
class SopClient {
 public:
  SopClient() = default;
  ~SopClient() { Close(); }

  SopClient(const SopClient&) = delete;
  SopClient& operator=(const SopClient&) = delete;

  /// Connects and completes the hello handshake. Returns false with
  /// `*error` set on connection failure, version mismatch, or a malformed
  /// handshake.
  bool Connect(const std::string& host, int port, std::string* error);

  /// True between a successful Connect and Close (or a connection error,
  /// which closes the socket).
  bool connected() const { return sock_.valid(); }

  /// Server session configuration from the handshake (valid after
  /// Connect): window type, metric, detector name.
  const HelloAckMsg& server_info() const { return server_info_; }

  /// Registers a query; returns its server-assigned id (> 0), or 0 with
  /// `*error` set when the server refused it (bad parameters) or the
  /// connection failed.
  int64_t Subscribe(const OutlierQuery& query, std::string* error);

  /// Retires a previously subscribed query. Returns false for unknown ids
  /// or connection failure.
  bool Unsubscribe(int64_t query_id, std::string* error);

  /// Sends one point batch ending at `boundary` and waits for the ack;
  /// emissions the server routed to this client for the batch are buffered
  /// before this returns (see file comment). Records the round-trip time
  /// into the "net/client/rtt_ms" histogram. On a refused batch the ack
  /// has accepted == 0 and the server's diagnostic is in TakeErrors().
  bool Ingest(int64_t boundary, const std::vector<Point>& points,
              IngestAckMsg* ack, std::string* error);

  /// Drains buffered server-push emissions, in arrival order.
  std::vector<EmissionMsg> TakeEmissions();

  /// Drains buffered server error diagnostics, in arrival order.
  std::vector<ErrorMsg> TakeErrors();

  /// Bytes sent/received since Connect.
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

  void Close();

  /// Retry schedule for injected socket faults (set before Connect).
  void set_retry(const NetRetryOptions& retry) { retry_ = retry; }

 private:
  // Sends one encoded frame. Closes the socket on failure.
  bool SendFrame(const std::string& frame, std::string* error);

  // Reads frames until one of type `expected` arrives, buffering
  // emissions/errors encountered on the way; the expected payload lands in
  // `*payload`. Closes the socket on EOF, socket error, or framing loss.
  bool ReadUntil(MsgType expected, std::string* payload, std::string* error);

  Socket sock_;
  FrameDecoder decoder_;
  NetRetryOptions retry_;
  HelloAckMsg server_info_;
  std::vector<EmissionMsg> emissions_;
  std::vector<ErrorMsg> errors_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

}  // namespace net
}  // namespace sop

#endif  // SOP_NET_CLIENT_H_
