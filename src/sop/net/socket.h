// TCP helpers shared by SopServer and SopClient: RAII connection
// ownership, full-buffer sends, and recv/send wrappers that consult the
// armed FaultInjector (common/fault.h) at the net-read / net-write sites.
//
// Since the sim harness landed (DESIGN.md Sec. 18) these are thin shims
// over the process transport (net/transport.h): by default the POSIX TCP
// stack, under test possibly the deterministic in-memory SimNet. The
// fault-injection retry discipline lives here, above the transport seam,
// so both transports see it identically.
//
// Injected failures model transient socket errors (EINTR, brief EAGAIN):
// the wrappers retry with bounded exponential backoff, mirroring the
// engine's source/sink retry discipline (detector/engine.h). Exhausted
// retries — and every real socket error — surface as an ordinary failure
// return: unlike the engine, the serving layer must never abort the
// process because one connection went bad.

#ifndef SOP_NET_SOCKET_H_
#define SOP_NET_SOCKET_H_

#include <cstdint>
#include <memory>
#include <string>

#include "sop/net/transport.h"

namespace sop {
namespace net {

/// Bounded exponential backoff for injected transient socket failures
/// (field meanings as in RetryOptions, detector/engine.h).
struct NetRetryOptions {
  int max_attempts = 8;
  int backoff_initial_us = 50;
  int backoff_max_us = 5000;
};

/// Owning wrapper over one transport endpoint — either an established
/// connection or a listener. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(std::unique_ptr<TransportConn> conn)
      : conn_(std::move(conn)) {}
  explicit Socket(std::unique_ptr<TransportListener> listener)
      : listener_(std::move(listener)) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept = default;
  Socket& operator=(Socket&& other) noexcept = default;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return conn_ != nullptr || listener_ != nullptr; }

  /// The underlying endpoints (null when this Socket is the other kind).
  TransportConn* conn() const { return conn_.get(); }
  TransportListener* listener() const { return listener_.get(); }

  /// Both directions — unblocks any thread inside recv/send on this
  /// connection (the close path readers/writers rely on). On a listener:
  /// unblocks Accept.
  void ShutdownBoth();
  /// The read direction only: the blocked reader wakes with an orderly
  /// EOF while queued outbound bytes still drain — the graceful stop
  /// path, as opposed to ShutdownBoth's discard-everything close.
  void ShutdownRead();
  void Close();

 private:
  std::unique_ptr<TransportConn> conn_;
  std::unique_ptr<TransportListener> listener_;
};

/// Creates a listening socket bound to `host:port` on the active
/// transport (port 0 picks an ephemeral port; *bound_port reports the
/// actual one). Returns an invalid Socket with `*error` set on failure.
Socket ListenTcp(const std::string& host, int port, int backlog,
                 int* bound_port, std::string* error);

/// Accepts one connection. Returns an invalid Socket on failure (including
/// the listener being shut down, the normal stop path).
Socket AcceptTcp(const Socket& listener, std::string* error);

/// Connects to `host:port` on the active transport. Returns an invalid
/// Socket with `*error` set on failure.
Socket ConnectTcp(const std::string& host, int port, std::string* error);

/// Receives up to `cap` bytes into `buf`. Returns the byte count, 0 on
/// orderly peer close, or -1 on error (with `*error` set). Consults the
/// injector at net-read: injected failures are retried with backoff;
/// exhausting the retry budget reports an error.
int64_t RecvSome(const Socket& sock, char* buf, size_t cap,
                 const NetRetryOptions& retry, std::string* error);

/// RecvSome with a deadline: waits for readability up to `timeout_ms`
/// first. Returns -2 when the deadline passes with no data (not an error —
/// the caller decides whether an idle wait is fatal), otherwise exactly
/// RecvSome's contract. timeout_ms < 0 degenerates to a plain RecvSome.
int64_t RecvSomeTimeout(const Socket& sock, char* buf, size_t cap,
                        int timeout_ms, const NetRetryOptions& retry,
                        std::string* error);

/// Result code RecvSomeTimeout returns when the deadline expires.
inline constexpr int64_t kRecvTimedOut = -2;

/// Sends all of `bytes`, looping over short writes. Consults the injector
/// at net-write. Returns false on error or a closed peer.
bool SendAll(const Socket& sock, const std::string& bytes,
             const NetRetryOptions& retry, std::string* error);

}  // namespace net
}  // namespace sop

#endif  // SOP_NET_SOCKET_H_
