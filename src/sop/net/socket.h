// Thin POSIX TCP helpers shared by SopServer and SopClient: RAII fd
// ownership, full-buffer sends, and recv/send wrappers that consult the
// armed FaultInjector (common/fault.h) at the net-read / net-write sites.
//
// Injected failures model transient socket errors (EINTR, brief EAGAIN):
// the wrappers retry with bounded exponential backoff, mirroring the
// engine's source/sink retry discipline (detector/engine.h). Exhausted
// retries — and every real socket error — surface as an ordinary failure
// return: unlike the engine, the serving layer must never abort the
// process because one connection went bad.
//
// Everything here is exception-free and errno-based; error strings carry
// strerror text for logs.

#ifndef SOP_NET_SOCKET_H_
#define SOP_NET_SOCKET_H_

#include <cstdint>
#include <string>

namespace sop {
namespace net {

/// Bounded exponential backoff for injected transient socket failures
/// (field meanings as in RetryOptions, detector/engine.h).
struct NetRetryOptions {
  int max_attempts = 8;
  int backoff_initial_us = 50;
  int backoff_max_us = 5000;
};

/// Owning file-descriptor wrapper. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// shutdown(2) both directions — unblocks any thread inside recv/send on
  /// this socket (the close path readers/writers rely on).
  void ShutdownBoth();
  /// shutdown(2) the read direction only: the blocked reader wakes with an
  /// orderly EOF while queued outbound bytes still drain — the graceful
  /// stop path, as opposed to ShutdownBoth's discard-everything close.
  void ShutdownRead();
  void Close();

 private:
  int fd_ = -1;
};

/// Creates a listening TCP socket bound to `host:port` (port 0 picks an
/// ephemeral port; *bound_port reports the actual one). Returns an invalid
/// Socket with `*error` set on failure.
Socket ListenTcp(const std::string& host, int port, int backlog,
                 int* bound_port, std::string* error);

/// Accepts one connection. Returns an invalid Socket on failure (including
/// the listener being shut down, the normal stop path).
Socket AcceptTcp(const Socket& listener, std::string* error);

/// Connects to `host:port`. Returns an invalid Socket with `*error` set on
/// failure.
Socket ConnectTcp(const std::string& host, int port, std::string* error);

/// Receives up to `cap` bytes into `buf`. Returns the byte count, 0 on
/// orderly peer close, or -1 on error (with `*error` set). Consults the
/// injector at net-read: injected failures are retried with backoff;
/// exhausting the retry budget reports an error.
int64_t RecvSome(const Socket& sock, char* buf, size_t cap,
                 const NetRetryOptions& retry, std::string* error);

/// RecvSome with a deadline: poll(2)s for readability up to `timeout_ms`
/// first. Returns -2 when the deadline passes with no data (not an error —
/// the caller decides whether an idle wait is fatal), otherwise exactly
/// RecvSome's contract. timeout_ms < 0 degenerates to a plain RecvSome.
int64_t RecvSomeTimeout(const Socket& sock, char* buf, size_t cap,
                        int timeout_ms, const NetRetryOptions& retry,
                        std::string* error);

/// Result code RecvSomeTimeout returns when the deadline expires.
inline constexpr int64_t kRecvTimedOut = -2;

/// Sends all of `bytes`, looping over short writes. Consults the injector
/// at net-write per send(2) call. Returns false on error or a closed peer.
bool SendAll(const Socket& sock, const std::string& bytes,
             const NetRetryOptions& retry, std::string* error);

}  // namespace net
}  // namespace sop

#endif  // SOP_NET_SOCKET_H_
