// The default Transport: POSIX TCP, moved here verbatim from the original
// socket.cc. Fault injection and retry backoff live in the socket.h shims
// (socket.cc), not here, so the simulated transport inherits them too.

#include "sop/net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sop {
namespace net {

namespace {

bool Fail(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what + ": " + std::strerror(errno);
  }
  return false;
}

bool ParseAddress(const std::string& host, int port, sockaddr_in* addr,
                  std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    if (error != nullptr) {
      *error = "bad IPv4 address '" + host + "'";
    }
    return false;
  }
  return true;
}

class PosixConn : public TransportConn {
 public:
  explicit PosixConn(int fd) : fd_(fd) {}
  ~PosixConn() override { Close(); }

  int64_t Recv(char* buf, size_t cap, int timeout_ms,
               std::string* error) override {
    if (timeout_ms >= 0) {
      pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      for (;;) {
        const int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready > 0) break;  // readable, hung up, or errored: recv decides
        if (ready == 0) return -2;
        if (errno == EINTR) continue;
        Fail(error, "poll");
        return -1;
      }
    }
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, cap, 0);
      if (n >= 0) return static_cast<int64_t>(n);
      if (errno == EINTR) continue;
      Fail(error, "recv");
      return -1;
    }
  }

  bool Send(const char* data, size_t len, std::string* error) override {
    size_t sent = 0;
    while (sent < len) {
      // MSG_NOSIGNAL: a dead peer yields EPIPE instead of killing the
      // process with SIGPIPE.
      const ssize_t n =
          ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return Fail(error, "send");
    }
    return true;
  }

  void ShutdownBoth() override {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  void ShutdownRead() override {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
  }

  void Close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

class PosixListener : public TransportListener {
 public:
  PosixListener(int fd, int port) : fd_(fd), port_(port) {}
  ~PosixListener() override { Close(); }

  std::unique_ptr<TransportConn> Accept(std::string* error) override {
    for (;;) {
      const int fd = ::accept(fd_, nullptr, nullptr);
      if (fd >= 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return std::make_unique<PosixConn>(fd);
      }
      if (errno == EINTR) continue;
      Fail(error, "accept");
      return nullptr;
    }
  }

  int port() const override { return port_; }

  void Shutdown() override {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  void Close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  int port_ = 0;
};

class PosixTransport : public Transport {
 public:
  std::unique_ptr<TransportListener> Listen(const std::string& host,
                                            int port, int backlog,
                                            std::string* error) override {
    sockaddr_in addr;
    if (!ParseAddress(host, port, &addr, error)) return nullptr;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      Fail(error, "socket");
      return nullptr;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      Fail(error, "bind " + host + ":" + std::to_string(port));
      ::close(fd);
      return nullptr;
    }
    if (::listen(fd, backlog) != 0) {
      Fail(error, "listen");
      ::close(fd);
      return nullptr;
    }
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      Fail(error, "getsockname");
      ::close(fd);
      return nullptr;
    }
    return std::make_unique<PosixListener>(fd, ntohs(actual.sin_port));
  }

  std::unique_ptr<TransportConn> Connect(const std::string& host, int port,
                                         std::string* error) override {
    sockaddr_in addr;
    if (!ParseAddress(host, port, &addr, error)) return nullptr;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      Fail(error, "socket");
      return nullptr;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      Fail(error, "connect " + host + ":" + std::to_string(port));
      ::close(fd);
      return nullptr;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::make_unique<PosixConn>(fd);
  }
};

PosixTransport* PosixSingleton() {
  static PosixTransport transport;
  return &transport;
}

std::atomic<Transport*> g_armed{nullptr};

}  // namespace

Transport* Transport::Active() {
  Transport* armed = g_armed.load(std::memory_order_acquire);
  return armed != nullptr ? armed : PosixSingleton();
}

void Transport::Arm(Transport* transport) {
  Transport* expected = nullptr;
  if (!g_armed.compare_exchange_strong(expected, transport,
                                       std::memory_order_acq_rel)) {
    std::fprintf(stderr, "Transport::Arm: a transport is already armed\n");
    std::abort();
  }
}

void Transport::Disarm(Transport* transport) {
  Transport* expected = transport;
  g_armed.compare_exchange_strong(expected, nullptr,
                                  std::memory_order_acq_rel);
}

}  // namespace net
}  // namespace sop
