// SopServer: the networked serving plane over a dynamic detection session.
//
// One server hosts one SopSession (core/session.h) compiled through the
// string detector factory (detector/factory.h), and speaks the framed wire
// protocol (net/protocol.h) over plain TCP. Three message planes:
//
//   ingest         clients push point batches ending at strictly
//                  increasing window boundaries; the session advances and
//                  the ingesting client receives an ack (its RTT is the
//                  end-to-end ingest latency),
//   subscriptions  clients register/retire outlier queries live through
//                  the session's tiered change path: with the default
//                  "sop"/"sop-grid" detector, a subscribe at an
//                  already-served radius (and any unsubscribe) is an
//                  in-place overlay swap — no rebuild, no history replay —
//                  while basis growth or other detector names fall back to
//                  rebuild-and-replay so a fresh subscriber still starts
//                  with a populated window,
//   emissions      every due query's outliers are pushed to exactly the
//                  clients subscribed to that query.
//
// This is the paper's sharing story as a service: however many clients
// subscribe, each ingested batch runs ONE shared detector pass; emission
// routing is just id-filtered fan-out of that single answer set.
//
// Threading: one accept thread, one reader and one writer thread per
// connection, and a single detection loop hosted on the server's
// ThreadPool (common/thread_pool.h) that serializes every session
// operation — boundaries are global, so detection is sequential by design
// and everything else is I/O. Readers hand ingest batches to the detection
// loop through a bounded queue (backpressure propagates to the client's
// TCP stream); emission delivery goes through bounded per-client send
// queues governed by the engine's overload policies (detector/engine.h):
// kBlock applies backpressure to the detection loop, kDropOldest sheds the
// oldest queued emission and flags the subscriber's next emission
// `degraded` so the gap is visible. Control replies (acks, errors) are
// never shed.
//
// Resilience: socket reads/writes ride out injected transient faults with
// bounded backoff (net/socket.h); malformed frames poison only their own
// connection (counted, never the process); with a checkpoint path
// configured the server periodically saves the session (atomic temp +
// rename, CRC-framed) and a restarted server resumes from it — subscribers
// reconnect and re-register, and emissions continue as if uninterrupted
// (the serving analog of ExecutionEngine::RunResumed).
//
// Observability: net/server/* counters, gauges and histograms (see
// DESIGN.md Sec. 13) when obs is enabled, plus an always-on ServerStats
// snapshot for tests and tooling.

#ifndef SOP_NET_SERVER_H_
#define SOP_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "sop/common/distance.h"
#include "sop/detector/engine.h"
#include "sop/net/socket.h"
#include "sop/query/plan.h"
#include "sop/stream/window.h"

namespace sop {
namespace net {

/// Server configuration. Defaults serve SOP over count-based windows on an
/// ephemeral loopback port.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;

  /// Session configuration every client shares.
  WindowType window_type = WindowType::kCount;
  Metric metric = Metric::kEuclidean;
  /// Detector factory name (KnownDetectorNames()); the session compiles
  /// the live query set through CreateDetector(detector, workload).
  std::string detector = "sop";
  /// History retention for replay on workload changes, in window-key units
  /// (see SopSession). Bound it by the largest window you intend to serve.
  int64_t history_window = 4096;

  /// Basis headroom for the session's SopDetector compilations (see
  /// SopSession::SetBasisHeadroom). The elastic default makes every
  /// subscribe at an already-served radius an in-place overlay swap — no
  /// rebuild, no history replay. Pass PlanHeadroom() for the exact paper
  /// basis. Ignored for non-SOP detector names (they always
  /// rebuild-and-replay).
  PlanHeadroom headroom = PlanHeadroom::Elastic();

  /// Per-client send queue capacity (frames) and full-queue policy.
  /// kDropOldest sheds only emissions, never control replies.
  size_t max_send_queue = 256;
  OverloadPolicy send_policy = OverloadPolicy::kBlock;

  /// Bounded reader -> detection-loop ingest queue (batches). A full queue
  /// blocks the reader, which backpressures the ingesting client's TCP
  /// stream.
  size_t max_ingest_queue = 64;

  /// Periodic session checkpointing; empty path disables. The file is
  /// written atomically every `checkpoint_every_batches` advanced batches
  /// and restored (if present and valid) by Start().
  std::string checkpoint_path;
  int64_t checkpoint_every_batches = 64;

  /// Worker threads on the server's pool (hosts the detection loop).
  int num_threads = 1;

  /// Backoff schedule for injected transient socket faults.
  NetRetryOptions retry;
};

/// Monotonic counters since Start(), readable at any time (independent of
/// the obs layer, which may be compiled out).
struct ServerStats {
  uint64_t connections = 0;        // accepted sockets, lifetime
  uint64_t active_clients = 0;     // currently connected
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t ingest_batches = 0;     // batches advanced through the session
  uint64_t ingest_points = 0;
  uint64_t emissions = 0;          // emission frames enqueued to clients
  uint64_t shed_emissions = 0;     // emission frames dropped under overload
  uint64_t subscribes = 0;
  uint64_t unsubscribes = 0;
  // How the session realized workload changes (SessionChangeStats): overlay
  // swaps vs rebuild-and-replay, and the total replay cost paid so far.
  uint64_t overlay_changes = 0;
  uint64_t basis_extends = 0;
  uint64_t rebuild_changes = 0;
  uint64_t replayed_points = 0;
  uint64_t protocol_errors = 0;    // malformed frames / messages / plans
  uint64_t checkpoints = 0;        // checkpoint files published
  uint64_t checkpoint_failures = 0;
  bool resumed = false;            // Start() restored a session checkpoint
};

/// The serving endpoint. Start() binds and serves until Stop() (or
/// destruction). Thread-safe: Start/Stop from one controlling thread;
/// stats() from anywhere.
class SopServer {
 public:
  explicit SopServer(ServerOptions options);
  ~SopServer();

  SopServer(const SopServer&) = delete;
  SopServer& operator=(const SopServer&) = delete;

  /// Binds, restores a session checkpoint when configured and present,
  /// and spawns the serving threads. Returns false with `*error` set on
  /// bad configuration or bind failure.
  bool Start(std::string* error);

  /// Drains and joins everything; idempotent. Connected clients see an
  /// orderly close. With checkpointing configured, a final checkpoint is
  /// written so a restart resumes from the exact stop point.
  void Stop();

  /// The bound TCP port (valid after Start()).
  int port() const { return port_; }

  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int port_ = 0;
};

}  // namespace net
}  // namespace sop

#endif  // SOP_NET_SERVER_H_
