// SopServer: the networked serving plane over a dynamic detection session.
//
// One server hosts one SopSession (core/session.h) compiled through the
// string detector factory (detector/factory.h), and speaks the framed wire
// protocol (net/protocol.h) over plain TCP. Message planes:
//
//   ingest         clients push point batches ending at strictly
//                  increasing window boundaries; the session advances and
//                  the ingesting client receives an ack (its RTT is the
//                  end-to-end ingest latency),
//   subscriptions  clients register/retire outlier queries live through
//                  the session's tiered change path: with the default
//                  "sop"/"sop-grid" detector, a subscribe at an
//                  already-served radius (and any unsubscribe) is an
//                  in-place overlay swap — no rebuild, no history replay —
//                  while basis growth or other detector names fall back to
//                  rebuild-and-replay so a fresh subscriber still starts
//                  with a populated window,
//   emissions      every due query's outliers are pushed to exactly the
//                  clients subscribed to that query,
//   health         kPing from any client answers with the server's role,
//                  stream position and queue depths,
//   replication    a primary ships its session to a hot standby (below).
//
// This is the paper's sharing story as a service: however many clients
// subscribe, each ingested batch runs ONE shared detector pass; emission
// routing is just id-filtered fan-out of that single answer set.
//
// High availability (DESIGN.md Sec. 16): with `replicate_host` set, a
// primary streams its state to a standby over the same wire protocol — a
// full kReplSnapshot (session blob + resume ring) whenever the chain is
// (re)established, then one kReplBatch per advanced batch, each chained to
// its predecessor's boundary. The standby (options.standby) applies them
// into a live session, refuses ingest/subscribe while standing by, and —
// with promote_on_loss — promotes itself to primary the moment the
// replication connection dies, serving from the last replicated boundary.
// Replication is self-healing: a broken chain or failed apply NAKs
// (ReplAck.need_snapshot) and the primary ships a fresh snapshot.
//
// Exactly-once resume: the server retains the last `resume_ring` emissions
// per query fingerprint (r, k, win, slide). A reconnecting subscriber
// passes its high-water boundary in SubscribeMsg::resume_from; the server
// replays every retained later emission ahead of the subscribe ack and
// suppresses live duplicates, so across a disconnect — or a failover, the
// ring is replicated and checkpointed — each emission is delivered exactly
// once. When the ring no longer reaches back far enough, the ack carries
// `gap` and the next live emission is flagged degraded instead of lying.
//
// Threading: one accept thread, one reader and one writer thread per
// connection, an optional replication thread, and a single detection loop
// hosted on the server's ThreadPool (common/thread_pool.h) that serializes
// every session operation — boundaries are global, so detection is
// sequential by design and everything else is I/O. Readers hand ingest
// batches to the detection loop through a bounded queue (backpressure
// propagates to the client's TCP stream); emission delivery goes through
// bounded per-client send queues governed by the engine's overload
// policies (detector/engine.h): kBlock applies backpressure to the
// detection loop, kDropOldest sheds the oldest queued emission and flags
// the subscriber's next emission `degraded` so the gap is visible. Control
// replies (acks, errors) are never shed.
//
// Resilience: socket reads/writes ride out injected transient faults with
// bounded backoff (net/socket.h); malformed frames poison only their own
// connection (counted, never the process); a reader that stalls mid-frame
// past `idle_timeout_ms` is disconnected (slow-loris defense) while
// quiet-but-healthy subscribers are left alone. With a checkpoint path
// configured the server periodically saves a full snapshot — session state
// plus resume ring, as one kReplSnapshot frame — keeping the last
// `checkpoint_generations` files; a restarted server restores the newest
// generation that decodes cleanly (then falls back to older ones, then to
// the legacy bare-SaveState format), so one corrupt file costs one
// checkpoint interval, not the run.
//
// Observability: net/server/* counters, gauges and histograms (see
// DESIGN.md Sec. 13) when obs is enabled, plus an always-on ServerStats
// snapshot for tests and tooling.

#ifndef SOP_NET_SERVER_H_
#define SOP_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "sop/common/distance.h"
#include "sop/detector/engine.h"
#include "sop/net/protocol.h"
#include "sop/net/socket.h"
#include "sop/query/plan.h"
#include "sop/stream/window.h"

namespace sop {
namespace net {

/// Server configuration. Defaults serve SOP over count-based windows on an
/// ephemeral loopback port.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;

  /// Session configuration every client shares.
  WindowType window_type = WindowType::kCount;
  Metric metric = Metric::kEuclidean;
  /// Detector factory name (KnownDetectorNames()); the session compiles
  /// the live query set through CreateDetector(detector, workload).
  std::string detector = "sop";
  /// History retention for replay on workload changes, in window-key units
  /// (see SopSession). Bound it by the largest window you intend to serve.
  int64_t history_window = 4096;

  /// Basis headroom for the session's SopDetector compilations (see
  /// SopSession::SetBasisHeadroom). The elastic default makes every
  /// subscribe at an already-served radius an in-place overlay swap — no
  /// rebuild, no history replay. Pass PlanHeadroom() for the exact paper
  /// basis. Ignored for non-SOP detector names (they always
  /// rebuild-and-replay).
  PlanHeadroom headroom = PlanHeadroom::Elastic();

  /// Per-client send queue capacity (frames) and full-queue policy.
  /// kDropOldest sheds only emissions, never control replies.
  size_t max_send_queue = 256;
  OverloadPolicy send_policy = OverloadPolicy::kBlock;

  /// Bounded reader -> detection-loop ingest queue (batches). A full queue
  /// blocks the reader, which backpressures the ingesting client's TCP
  /// stream.
  size_t max_ingest_queue = 64;

  /// Periodic session checkpointing; empty path disables. A full snapshot
  /// (session + resume ring, one CRC-framed kReplSnapshot) is written
  /// atomically every `checkpoint_every_batches` advanced batches and
  /// restored (newest valid generation wins) by Start().
  std::string checkpoint_path;
  int64_t checkpoint_every_batches = 64;
  /// Checkpoint generations kept on disk: `path` is newest, `path.1` the
  /// one before, ... up to `path.<generations-1>`. Restore walks newest to
  /// oldest past corrupt/missing files. 1 keeps the single-file behavior.
  int checkpoint_generations = 1;

  /// --- high availability -------------------------------------------------

  /// Serve as a hot standby: apply replication from a primary, refuse
  /// ingest and subscriptions until promoted.
  bool standby = false;
  /// Standby only: promote to primary when the replication connection
  /// drops (primary crash, network cut). Without it the standby keeps
  /// waiting for the primary to come back.
  bool promote_on_loss = false;
  /// Primary only: ship every advanced batch (and snapshots as needed) to
  /// the standby at host:port. Empty host disables replication.
  std::string replicate_host;
  int replicate_port = 0;
  /// How long the replication thread waits for the standby's ReplAck
  /// before declaring the link dead and reconnecting (with a fresh
  /// snapshot).
  int repl_ack_timeout_ms = 2000;
  /// Bounded primary-side replication queue (encoded batches). Overflow —
  /// a standby slower than the stream — drops the queue and resyncs with
  /// one snapshot instead of stalling ingest.
  size_t max_repl_queue = 256;

  /// Retained emissions per query fingerprint (r, k, win, slide) for
  /// reconnect resume. Bounds resume memory; a reconnect further back than
  /// the ring reaches is answered with `gap` instead of silence.
  size_t resume_ring = 1024;

  /// Disconnect a connection that stalls mid-frame for this long (ms); -1
  /// disables. Connections with no partial frame pending are never timed
  /// out — subscribers legitimately go quiet for hours.
  int idle_timeout_ms = -1;

  /// Worker threads on the server's pool (hosts the detection loop).
  int num_threads = 1;

  /// Backoff schedule for injected transient socket faults.
  NetRetryOptions retry;
};

/// Monotonic counters since Start(), readable at any time (independent of
/// the obs layer, which may be compiled out).
struct ServerStats {
  uint64_t connections = 0;        // accepted sockets, lifetime
  uint64_t active_clients = 0;     // currently connected
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t ingest_batches = 0;     // batches advanced through the session
  uint64_t ingest_points = 0;
  uint64_t halo_points = 0;        // of those, halo replicas (owner flag 0)
  uint64_t emissions = 0;          // emission frames enqueued to clients
  uint64_t shed_emissions = 0;     // emission frames dropped under overload
  uint64_t subscribes = 0;
  uint64_t unsubscribes = 0;
  // How the session realized workload changes (SessionChangeStats): overlay
  // swaps vs rebuild-and-replay, and the total replay cost paid so far.
  uint64_t overlay_changes = 0;
  uint64_t basis_extends = 0;
  uint64_t rebuild_changes = 0;
  uint64_t replayed_points = 0;
  uint64_t protocol_errors = 0;    // malformed frames / messages / plans
  uint64_t checkpoints = 0;        // checkpoint files published
  uint64_t checkpoint_failures = 0;
  uint64_t idle_disconnects = 0;   // mid-frame stalls timed out
  // --- high availability --------------------------------------------------
  uint64_t promotions = 0;               // standby -> primary transitions
  uint64_t repl_snapshots_sent = 0;      // primary: acked snapshots shipped
  uint64_t repl_batches_sent = 0;        // primary: acked batches shipped
  uint64_t repl_snapshots_applied = 0;   // standby: snapshots restored
  uint64_t repl_batches_applied = 0;     // standby: batches advanced
  uint64_t repl_resyncs = 0;             // chain breaks healed by snapshot
  uint64_t resume_replayed = 0;          // emissions replayed on reconnect
  uint64_t resume_gaps = 0;              // resumes past the ring's reach
  bool resumed = false;            // Start() restored a session checkpoint
  ServerRole role = ServerRole::kPrimary;  // current role (promotion moves it)
  int64_t last_boundary = kNoResume;       // stream position
  // --- scale-out plane (DESIGN.md Sec. 17) --------------------------------
  bool sharded = false;            // a router declared a shard config
  uint32_t shard_index = 0;        // valid when sharded
  uint32_t num_shards = 0;         // valid when sharded
};

/// The serving endpoint. Start() binds and serves until Stop() (or
/// destruction). Thread-safe: Start/Stop/Kill from one controlling thread;
/// stats()/role() from anywhere.
class SopServer {
 public:
  explicit SopServer(ServerOptions options);
  ~SopServer();

  SopServer(const SopServer&) = delete;
  SopServer& operator=(const SopServer&) = delete;

  /// Binds, restores a session checkpoint when configured and present,
  /// and spawns the serving threads. Returns false with `*error` set on
  /// bad configuration or bind failure.
  bool Start(std::string* error);

  /// Graceful shutdown; idempotent. Stops accepting, lets readers finish,
  /// drains the detection loop and every send queue (bounded — a peer that
  /// refuses to read is cut off after a few seconds), flushes replication,
  /// and writes a final checkpoint so a restart resumes from the exact
  /// stop point.
  void Stop();

  /// Crash simulation: tear every socket and thread down immediately,
  /// dropping queued work, replication and the final checkpoint on the
  /// floor. What a kill -9 looks like to clients and the standby, without
  /// killing the test process. Idempotent; mutually exclusive with Stop().
  void Kill();

  /// The bound TCP port (valid after Start()).
  int port() const { return port_; }

  /// Current role; a standby flips to kPrimary when promoted.
  ServerRole role() const;

  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int port_ = 0;
};

}  // namespace net
}  // namespace sop

#endif  // SOP_NET_SERVER_H_
