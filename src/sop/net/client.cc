#include "sop/net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "sop/common/clock.h"
#include "sop/obs/trace.h"

namespace sop {
namespace net {

namespace {

bool Fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

bool SopClient::Connect(const std::string& host, int port,
                        std::string* error) {
  subs_.clear();
  server_to_public_.clear();
  sent_batches_.clear();
  emissions_.clear();
  errors_.clear();
  orphans_.clear();
  collect_orphans_ = false;
  recovered_boundary_ = kNoResume;
  recovered_next_seq_ = 0;
  shard_config_set_ = false;
  shard_config_ = ShardConfigMsg{};
  if (!ConnectRaw(host, port, error)) return false;
  connected_endpoint_ = Endpoint{host, port};
  return true;
}

bool SopClient::ConnectRaw(const std::string& host, int port,
                           std::string* error) {
  Close();
  sock_ = ConnectTcp(host, port, error);
  if (!sock_.valid()) return false;
  HelloMsg hello;
  if (!SendFrame(EncodeHello(hello), error)) return false;
  std::string payload;
  if (!ReadUntil(MsgType::kHelloAck, &payload, error)) return false;
  if (!DecodeHelloAck(payload, &server_info_, error)) {
    Close();
    return false;
  }
  if (server_info_.protocol_version != kProtocolVersion) {
    Close();
    return Fail(error, "server speaks protocol v" +
                           std::to_string(server_info_.protocol_version) +
                           ", client speaks v" +
                           std::to_string(kProtocolVersion));
  }
  return true;
}

void SopClient::EnableReconnect(ReconnectOptions options) {
  reconnect_ = std::move(options);
  reconnect_armed_ = true;
}

int64_t SopClient::Subscribe(const OutlierQuery& query, std::string* error) {
  return Subscribe(query, kNoResume, error);
}

int64_t SopClient::Subscribe(const OutlierQuery& query, int64_t resume_from,
                             std::string* error) {
  Sub sub;
  sub.query = query;
  sub.hwm = resume_from;
  for (int round = 0;; ++round) {
    std::string attempt_error;
    SubscribeAckMsg ack;
    // The public id is the server id of the FIRST successful registration
    // (stable thereafter); until then use a placeholder of 0, which
    // adopts replayed emissions by ack id.
    if (WireSubscribe(/*public_id=*/0, &sub, sub.hwm, &ack,
                      &attempt_error)) {
      if (ack.query_id == 0) {
        Fail(error,
             ack.error.empty() ? "subscription refused" : ack.error);
        return 0;
      }
      // The public id is normally the server's — identical behavior to a
      // reconnect-free client — but after a failover a fresh server's
      // counter can collide with an id this client already handed out.
      int64_t public_id = ack.query_id;
      if (subs_.count(public_id) > 0) {
        public_id = subs_.rbegin()->first + 1;
      }
      // Re-key the orphan adoptions done under placeholder id 0.
      for (EmissionMsg& m : emissions_) {
        if (m.query_id == 0) m.query_id = public_id;
      }
      subs_[public_id] = sub;
      server_to_public_[sub.server_id] = public_id;
      return public_id;
    }
    if (!reconnect_armed_ || round >= 1) {
      Fail(error, attempt_error);
      return 0;
    }
    if (!Recover(error)) return 0;
  }
}

bool SopClient::WireSubscribe(int64_t public_id, Sub* sub,
                              int64_t resume_from, SubscribeAckMsg* ack,
                              std::string* error) {
  SubscribeMsg msg;
  msg.query = sub->query;
  msg.resume_from = resume_from;
  collect_orphans_ = true;
  orphans_.clear();
  const bool sent = SendFrame(EncodeSubscribe(msg), error);
  std::string payload;
  const bool got =
      sent && ReadUntil(MsgType::kSubscribeAck, &payload, error);
  collect_orphans_ = false;
  if (!got) {
    orphans_.clear();
    return false;
  }
  if (!DecodeSubscribeAck(payload, ack, error)) {
    orphans_.clear();
    Close();
    return false;
  }
  last_replayed_ = ack->replayed;
  last_gap_ = ack->gap;
  if (ack->query_id != 0) {
    sub->server_id = ack->query_id;
    // Adopt the replayed emissions that arrived ahead of the ack: they
    // carry the just-assigned server id. Dedup against the subscription's
    // high-water mark like any delivery.
    for (EmissionMsg& m : orphans_) {
      if (m.query_id != ack->query_id) continue;
      if (m.boundary <= sub->hwm) {
        ++dropped_duplicates_;
        continue;
      }
      sub->hwm = m.boundary;
      m.query_id = public_id;
      emissions_.push_back(std::move(m));
    }
  }
  orphans_.clear();
  return true;
}

int64_t SopClient::high_water(int64_t query_id) const {
  const auto it = subs_.find(query_id);
  return it == subs_.end() ? kNoResume : it->second.hwm;
}

bool SopClient::Unsubscribe(int64_t query_id, std::string* error) {
  const auto it = subs_.find(query_id);
  const int64_t server_id = it == subs_.end() ? query_id : it->second.server_id;
  UnsubscribeMsg msg;
  msg.query_id = server_id;
  if (!SendFrame(EncodeUnsubscribe(msg), error)) return false;
  std::string payload;
  if (!ReadUntil(MsgType::kUnsubscribeAck, &payload, error)) return false;
  UnsubscribeAckMsg ack;
  if (!DecodeUnsubscribeAck(payload, &ack, error)) {
    Close();
    return false;
  }
  if (!ack.ok) return Fail(error, "unknown query id");
  if (it != subs_.end()) {
    server_to_public_.erase(it->second.server_id);
    subs_.erase(it);
  }
  return true;
}

bool SopClient::Ingest(int64_t boundary, const std::vector<Point>& points,
                       IngestAckMsg* ack, std::string* error) {
  return Ingest(boundary, points, {}, ack, error);
}

bool SopClient::Ingest(int64_t boundary, const std::vector<Point>& points,
                       const std::vector<uint8_t>& owner, IngestAckMsg* ack,
                       std::string* error) {
  SOP_TRACE("net/client/rtt_ms");
  for (int round = 0;; ++round) {
    std::string attempt_error;
    bool ok = false;
    {
      IngestMsg msg;
      msg.boundary = boundary;
      msg.points = points;
      msg.owner = owner;
      std::string payload;
      ok = SendFrame(EncodeIngest(msg), &attempt_error) &&
           ReadUntil(MsgType::kIngestAck, &payload, &attempt_error);
      if (ok && !DecodeIngestAck(payload, ack, &attempt_error)) {
        Close();
        ok = false;
      }
    }
    if (ok) {
      if (ack->accepted > 0 && reconnect_armed_) {
        // Retain the acked batch for post-failover re-ingest: a promoted
        // standby may trail by the batches the primary never replicated.
        sent_batches_.push_back(SentBatch{boundary, points, owner});
        while (sent_batches_.size() > std::max<size_t>(1,
                                                       reconnect_.ingest_replay)) {
          sent_batches_.pop_front();
        }
      }
      return true;
    }
    if (!reconnect_armed_ || round >= 1) return Fail(error, attempt_error);
    if (!Recover(error)) return false;
    if (recovered_boundary_ >= boundary) {
      // The crash ate the ack, not the batch: the recovered stream is
      // already past this boundary (either the old primary applied and
      // replicated it, or recovery re-ingested it from the retained
      // tail). Exactly-once holds; report it accepted, with the recovered
      // stream's arrival counter standing in for the lost ack's.
      ack->boundary = boundary;
      ack->accepted = points.size();
      ack->emissions = 0;
      ack->next_seq = recovered_next_seq_;
      return true;
    }
  }
}

bool SopClient::ShardConfig(const ShardConfigMsg& config,
                            ShardConfigAckMsg* ack, std::string* error) {
  for (int round = 0;; ++round) {
    std::string attempt_error;
    std::string payload;
    bool ok = SendFrame(EncodeShardConfig(config), &attempt_error) &&
              ReadUntil(MsgType::kShardConfigAck, &payload, &attempt_error);
    if (ok && !DecodeShardConfigAck(payload, ack, &attempt_error)) {
      Close();
      ok = false;
    }
    if (ok) {
      if (ack->ok) {
        // Remember it so Recover() re-declares the assignment to whatever
        // incarnation of the worker answers next.
        shard_config_ = config;
        shard_config_set_ = true;
      }
      return true;
    }
    if (!reconnect_armed_ || round >= 1) return Fail(error, attempt_error);
    // Recovery re-declares any previously accepted config; the re-send on
    // the next round is idempotent either way.
    if (!Recover(error)) return false;
  }
}

bool SopClient::Ping(PongMsg* pong, std::string* error) {
  PingMsg msg;
  msg.token = ++ping_token_;
  if (!SendFrame(EncodePing(msg), error)) return false;
  std::string payload;
  if (!ReadUntil(MsgType::kPong, &payload, error)) return false;
  if (!DecodePong(payload, pong, error)) {
    Close();
    return false;
  }
  return true;
}

bool SopClient::Recover(std::string* error) {
  std::vector<Endpoint> endpoints = reconnect_.endpoints;
  if (endpoints.empty()) endpoints.push_back(connected_endpoint_);
  int backoff_ms = std::max(1, reconnect_.backoff_initial_ms);
  std::string last_error = "no endpoints";
  for (int attempt = 0; attempt < reconnect_.max_attempts; ++attempt) {
    if (attempt > 0) {
      SleepMillis(backoff_ms);
      backoff_ms = std::min(backoff_ms * 2, reconnect_.backoff_max_ms);
    }
    const Endpoint& ep = endpoints[attempt % endpoints.size()];
    if (!ConnectRaw(ep.host, ep.port, &last_error)) continue;
    if (static_cast<ServerRole>(server_info_.role) != ServerRole::kPrimary) {
      // A standby that has not promoted yet; give it (or another
      // endpoint) time.
      last_error = "endpoint is a standby";
      Close();
      continue;
    }
    // Re-declare the shard assignment first: a restarted worker comes up
    // with no config, and stats labeling should precede re-ingest.
    if (shard_config_set_) {
      std::string payload;
      ShardConfigAckMsg sack;
      if (!SendFrame(EncodeShardConfig(shard_config_), &last_error) ||
          !ReadUntil(MsgType::kShardConfigAck, &payload, &last_error) ||
          !DecodeShardConfigAck(payload, &sack, &last_error) || !sack.ok) {
        if (last_error.empty()) last_error = sack.error;
        Close();
        continue;
      }
    }
    // Re-register every live subscription, resuming from its high-water
    // mark so the server replays what this client missed and suppresses
    // what it already has.
    server_to_public_.clear();
    bool ok = true;
    for (auto& entry : subs_) {
      Sub& sub = entry.second;
      const int64_t resume_from =
          sub.hwm == kNoResume ? kNoResume + 1 : sub.hwm;
      SubscribeAckMsg ack;
      if (!WireSubscribe(entry.first, &sub, resume_from, &ack,
                         &last_error) ||
          ack.query_id == 0) {
        if (ack.query_id == 0 && last_error.empty()) {
          last_error = ack.error;
        }
        ok = false;
        break;
      }
      server_to_public_[sub.server_id] = entry.first;
    }
    if (!ok) {
      Close();
      continue;
    }
    // Re-ingest the retained tail the new primary never saw. Its
    // emissions are regenerated by the (deterministic) session and
    // deduplicated by high-water marks like any other delivery.
    int64_t server_last = server_info_.last_boundary;
    uint64_t server_next_seq = server_info_.next_seq;
    for (const SentBatch& batch : sent_batches_) {
      if (batch.boundary <= server_last) continue;
      IngestMsg msg;
      msg.boundary = batch.boundary;
      msg.points = batch.points;
      msg.owner = batch.owner;
      std::string payload;
      IngestAckMsg ack;
      if (!SendFrame(EncodeIngest(msg), &last_error) ||
          !ReadUntil(MsgType::kIngestAck, &payload, &last_error) ||
          !DecodeIngestAck(payload, &ack, &last_error)) {
        ok = false;
        break;
      }
      if (ack.accepted > 0) server_last = batch.boundary;
      server_next_seq = ack.next_seq;
    }
    if (!ok) {
      Close();
      continue;
    }
    recovered_boundary_ = server_last;
    recovered_next_seq_ = server_next_seq;
    ++reconnects_;
    SOP_COUNTER_ADD("net/client/reconnects", 1);
    return true;
  }
  Close();
  return Fail(error, "reconnect failed after " +
                         std::to_string(reconnect_.max_attempts) +
                         " attempts: " + last_error);
}

void SopClient::AcceptEmission(EmissionMsg emission) {
  const auto it = server_to_public_.find(emission.query_id);
  if (it == server_to_public_.end()) {
    if (collect_orphans_) {
      // Mid-subscribe replay: the ack naming this id has not arrived yet.
      orphans_.push_back(std::move(emission));
    }
    // Otherwise: a push for a subscription this client no longer tracks
    // (in-flight when it unsubscribed). Drop.
    return;
  }
  Sub& sub = subs_[it->second];
  if (emission.boundary <= sub.hwm) {
    // Already delivered (resume replay overlapped the live stream).
    ++dropped_duplicates_;
    SOP_COUNTER_ADD("net/client/dropped_duplicates", 1);
    return;
  }
  sub.hwm = emission.boundary;
  emission.query_id = it->second;
  emissions_.push_back(std::move(emission));
}

std::vector<EmissionMsg> SopClient::TakeEmissions() {
  std::vector<EmissionMsg> out;
  out.swap(emissions_);
  return out;
}

std::vector<ErrorMsg> SopClient::TakeErrors() {
  std::vector<ErrorMsg> out;
  out.swap(errors_);
  return out;
}

void SopClient::Close() {
  sock_.Close();
  decoder_ = FrameDecoder();
}

bool SopClient::SendFrame(const std::string& frame, std::string* error) {
  if (!sock_.valid()) return Fail(error, "not connected");
  if (!SendAll(sock_, frame, retry_, error)) {
    Close();
    return false;
  }
  bytes_sent_ += frame.size();
  SOP_COUNTER_ADD("net/client/frames_out", 1);
  SOP_COUNTER_ADD("net/client/bytes_out", frame.size());
  return true;
}

bool SopClient::ReadUntil(MsgType expected, std::string* payload,
                          std::string* error) {
  if (!sock_.valid()) return Fail(error, "not connected");
  char buf[64 << 10];
  for (;;) {
    // Drain every complete buffered frame before touching the socket.
    for (;;) {
      std::string frame_payload;
      std::string decode_error;
      const FrameDecoder::Status status =
          decoder_.Next(&frame_payload, &decode_error);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kError) {
        Close();
        return Fail(error, decode_error);
      }
      SOP_COUNTER_ADD("net/client/frames_in", 1);
      MsgType type;
      if (!PeekType(frame_payload, &type, &decode_error)) {
        Close();
        return Fail(error, decode_error);
      }
      if (type == expected) {
        *payload = std::move(frame_payload);
        return true;
      }
      // Server-push frames interleave freely with awaited acks.
      if (type == MsgType::kEmission) {
        EmissionMsg emission;
        if (!DecodeEmission(frame_payload, &emission, &decode_error)) {
          Close();
          return Fail(error, decode_error);
        }
        AcceptEmission(std::move(emission));
        continue;
      }
      if (type == MsgType::kError) {
        ErrorMsg diagnostic;
        if (!DecodeError(frame_payload, &diagnostic, &decode_error)) {
          Close();
          return Fail(error, decode_error);
        }
        errors_.push_back(std::move(diagnostic));
        continue;
      }
      Close();
      return Fail(error, std::string("unexpected server message: ") +
                             MsgTypeName(type));
    }
    std::string recv_error;
    const int64_t n =
        RecvSome(sock_, buf, sizeof(buf), retry_, &recv_error);
    if (n == 0) {
      Close();
      // A server that drops a connection explains why first; surface that
      // diagnostic instead of a bare EOF.
      if (!errors_.empty()) return Fail(error, errors_.back().message);
      return Fail(error, "server closed the connection");
    }
    if (n < 0) {
      Close();
      return Fail(error, recv_error);
    }
    bytes_received_ += static_cast<uint64_t>(n);
    SOP_COUNTER_ADD("net/client/bytes_in", n);
    decoder_.Append(buf, static_cast<size_t>(n));
  }
}

}  // namespace net
}  // namespace sop
