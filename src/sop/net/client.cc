#include "sop/net/client.h"

#include <utility>

#include "sop/obs/trace.h"

namespace sop {
namespace net {

namespace {

bool Fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

bool SopClient::Connect(const std::string& host, int port,
                        std::string* error) {
  Close();
  sock_ = ConnectTcp(host, port, error);
  if (!sock_.valid()) return false;
  HelloMsg hello;
  if (!SendFrame(EncodeHello(hello), error)) return false;
  std::string payload;
  if (!ReadUntil(MsgType::kHelloAck, &payload, error)) return false;
  if (!DecodeHelloAck(payload, &server_info_, error)) {
    Close();
    return false;
  }
  if (server_info_.protocol_version != kProtocolVersion) {
    Close();
    return Fail(error, "server speaks protocol v" +
                           std::to_string(server_info_.protocol_version) +
                           ", client speaks v" +
                           std::to_string(kProtocolVersion));
  }
  return true;
}

int64_t SopClient::Subscribe(const OutlierQuery& query, std::string* error) {
  SubscribeMsg msg;
  msg.query = query;
  if (!SendFrame(EncodeSubscribe(msg), error)) return 0;
  std::string payload;
  if (!ReadUntil(MsgType::kSubscribeAck, &payload, error)) return 0;
  SubscribeAckMsg ack;
  if (!DecodeSubscribeAck(payload, &ack, error)) {
    Close();
    return 0;
  }
  if (ack.query_id == 0) {
    Fail(error, ack.error.empty() ? "subscription refused" : ack.error);
    return 0;
  }
  return ack.query_id;
}

bool SopClient::Unsubscribe(int64_t query_id, std::string* error) {
  UnsubscribeMsg msg;
  msg.query_id = query_id;
  if (!SendFrame(EncodeUnsubscribe(msg), error)) return false;
  std::string payload;
  if (!ReadUntil(MsgType::kUnsubscribeAck, &payload, error)) return false;
  UnsubscribeAckMsg ack;
  if (!DecodeUnsubscribeAck(payload, &ack, error)) {
    Close();
    return false;
  }
  if (!ack.ok) return Fail(error, "unknown query id");
  return true;
}

bool SopClient::Ingest(int64_t boundary, const std::vector<Point>& points,
                       IngestAckMsg* ack, std::string* error) {
  SOP_TRACE("net/client/rtt_ms");
  IngestMsg msg;
  msg.boundary = boundary;
  msg.points = points;
  if (!SendFrame(EncodeIngest(msg), error)) return false;
  std::string payload;
  if (!ReadUntil(MsgType::kIngestAck, &payload, error)) return false;
  if (!DecodeIngestAck(payload, ack, error)) {
    Close();
    return false;
  }
  return true;
}

std::vector<EmissionMsg> SopClient::TakeEmissions() {
  std::vector<EmissionMsg> out;
  out.swap(emissions_);
  return out;
}

std::vector<ErrorMsg> SopClient::TakeErrors() {
  std::vector<ErrorMsg> out;
  out.swap(errors_);
  return out;
}

void SopClient::Close() {
  sock_.Close();
  decoder_ = FrameDecoder();
}

bool SopClient::SendFrame(const std::string& frame, std::string* error) {
  if (!sock_.valid()) return Fail(error, "not connected");
  if (!SendAll(sock_, frame, retry_, error)) {
    Close();
    return false;
  }
  bytes_sent_ += frame.size();
  SOP_COUNTER_ADD("net/client/frames_out", 1);
  SOP_COUNTER_ADD("net/client/bytes_out", frame.size());
  return true;
}

bool SopClient::ReadUntil(MsgType expected, std::string* payload,
                          std::string* error) {
  if (!sock_.valid()) return Fail(error, "not connected");
  char buf[64 << 10];
  for (;;) {
    // Drain every complete buffered frame before touching the socket.
    for (;;) {
      std::string frame_payload;
      std::string decode_error;
      const FrameDecoder::Status status =
          decoder_.Next(&frame_payload, &decode_error);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kError) {
        Close();
        return Fail(error, decode_error);
      }
      SOP_COUNTER_ADD("net/client/frames_in", 1);
      MsgType type;
      if (!PeekType(frame_payload, &type, &decode_error)) {
        Close();
        return Fail(error, decode_error);
      }
      if (type == expected) {
        *payload = std::move(frame_payload);
        return true;
      }
      // Server-push frames interleave freely with awaited acks.
      if (type == MsgType::kEmission) {
        EmissionMsg emission;
        if (!DecodeEmission(frame_payload, &emission, &decode_error)) {
          Close();
          return Fail(error, decode_error);
        }
        emissions_.push_back(std::move(emission));
        continue;
      }
      if (type == MsgType::kError) {
        ErrorMsg diagnostic;
        if (!DecodeError(frame_payload, &diagnostic, &decode_error)) {
          Close();
          return Fail(error, decode_error);
        }
        errors_.push_back(std::move(diagnostic));
        continue;
      }
      Close();
      return Fail(error, std::string("unexpected server message: ") +
                             MsgTypeName(type));
    }
    std::string recv_error;
    const int64_t n =
        RecvSome(sock_, buf, sizeof(buf), retry_, &recv_error);
    if (n == 0) {
      Close();
      // A server that drops a connection explains why first; surface that
      // diagnostic instead of a bare EOF.
      if (!errors_.empty()) return Fail(error, errors_.back().message);
      return Fail(error, "server closed the connection");
    }
    if (n < 0) {
      Close();
      return Fail(error, recv_error);
    }
    bytes_received_ += static_cast<uint64_t>(n);
    SOP_COUNTER_ADD("net/client/bytes_in", n);
    decoder_.Append(buf, static_cast<size_t>(n));
  }
}

}  // namespace net
}  // namespace sop
