// The transport seam under the serving plane (DESIGN.md Sec. 18): every
// byte SopServer, SopClient and SopRouter move goes through this
// interface. The default implementation is the POSIX TCP stack
// (transport_posix.cc); the deterministic simulation harness (sim/sim.h)
// arms an in-memory substitute with a seeded fault scheduler, and the
// whole serving plane runs on it unmodified.
//
// The interface is deliberately the minimal shape socket.h already
// exposed: stream connections with all-or-nothing sends, partial recvs
// with an optional deadline, and directional shutdown. The socket.h free
// functions (ListenTcp/ConnectTcp/RecvSome/SendAll/...) are thin shims
// over Transport::Active() and keep the fault-injection retry discipline,
// so both transports see identical injected-fault behavior.
//
// Arming follows the FaultInjector registry pattern (common/fault.h):
// process-global, test-only, bracketing every thread that might touch the
// network.

#ifndef SOP_NET_TRANSPORT_H_
#define SOP_NET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>

namespace sop {
namespace net {

/// One established stream connection. Implementations must support
/// concurrent use by one reader and one writer thread, plus Shutdown/Close
/// from a third (the server's stop path relies on it).
class TransportConn {
 public:
  virtual ~TransportConn() = default;

  /// Receives up to `cap` bytes. Returns the byte count, 0 on orderly
  /// peer close, -1 on error (`*error` set), or -2 (kRecvTimedOut) when
  /// `timeout_ms >= 0` and the deadline passed with no data. A negative
  /// `timeout_ms` blocks indefinitely.
  virtual int64_t Recv(char* buf, size_t cap, int timeout_ms,
                       std::string* error) = 0;

  /// Sends all `len` bytes, looping over short writes. False on error or
  /// a closed peer (`*error` set).
  virtual bool Send(const char* data, size_t len, std::string* error) = 0;

  /// Both directions: unblocks any thread inside Recv/Send on this conn.
  virtual void ShutdownBoth() = 0;
  /// Read direction only: the blocked reader wakes with an orderly EOF
  /// while queued outbound bytes still drain (the graceful stop path).
  virtual void ShutdownRead() = 0;
  virtual void Close() = 0;
};

/// One bound listening endpoint.
class TransportListener {
 public:
  virtual ~TransportListener() = default;

  /// Blocks for one connection; nullptr on failure (including the
  /// listener being shut down, the normal stop path).
  virtual std::unique_ptr<TransportConn> Accept(std::string* error) = 0;

  /// The bound port (meaningful when the bind asked for port 0).
  virtual int port() const = 0;

  /// Unblocks Accept and refuses further connections.
  virtual void Shutdown() = 0;
  virtual void Close() = 0;
};

/// A transport: the factory for listeners and outbound connections.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::unique_ptr<TransportListener> Listen(const std::string& host,
                                                    int port, int backlog,
                                                    std::string* error) = 0;

  virtual std::unique_ptr<TransportConn> Connect(const std::string& host,
                                                 int port,
                                                 std::string* error) = 0;

  /// The armed transport, or the POSIX singleton.
  static Transport* Active();

  /// Arms `transport` process-wide; aborts if one is already armed.
  static void Arm(Transport* transport);

  /// Disarms `transport` if it is the armed one.
  static void Disarm(Transport* transport);
};

/// RAII arming for tests.
class ScopedTransport {
 public:
  explicit ScopedTransport(Transport* transport) : transport_(transport) {
    Transport::Arm(transport_);
  }
  ~ScopedTransport() { Transport::Disarm(transport_); }

  ScopedTransport(const ScopedTransport&) = delete;
  ScopedTransport& operator=(const ScopedTransport&) = delete;

 private:
  Transport* transport_;
};

}  // namespace net
}  // namespace sop

#endif  // SOP_NET_TRANSPORT_H_
