// The sop wire protocol: length-prefixed, CRC-checked message frames.
//
// Every message on a connection — in either direction — is one
// common/frame.h frame (magic "SOPF" + format version + payload length +
// CRC-32 + payload), so the serving plane inherits the exact corruption
// detection the checkpoint path already proved out: truncation, extension
// and bit flips are all caught before a payload is interpreted. The
// payload is a u32 message type word followed by a type-specific body in
// common/serialize.h fixed-width little-endian encoding.
//
// Message planes (DESIGN.md Sec. 13):
//
//   handshake   kHello -> kHelloAck      version + session configuration
//   ingest      kIngest -> kIngestAck    batched points ending at a boundary
//   queries     kSubscribe -> kSubscribeAck, kUnsubscribe -> kUnsubscribeAck
//   emissions   kEmission (server-push)  per-subscriber filtered results
//   errors      kError (server-push)     diagnostic; connection stays up
//   health      kPing -> kPong           role, stream position, queue depths
//   replication kReplSnapshot/kReplBatch -> kReplAck
//               primary -> standby state shipping (DESIGN.md Sec. 16): full
//               session snapshots plus the post-snapshot batch tail, each
//               batch chained to its predecessor's boundary so the standby
//               can detect gaps and demand a fresh snapshot
//
// FrameDecoder is the incremental receive path: it accepts bytes exactly
// as recv(2) hands them over — short reads, partial frames, many frames
// per read — and yields complete, CRC-verified payloads. A malformed
// header or checksum is unrecoverable (a byte stream cannot resync after
// framing is lost), so the decoder latches into an error state and the
// connection must be dropped.
//
// All decode functions are exception-free and never trust a length field
// further than the bytes actually present; oversized frames are rejected
// at header-parse time (kMaxFramePayload) so a hostile 8-byte header
// cannot make the server reserve gigabytes.

#ifndef SOP_NET_PROTOCOL_H_
#define SOP_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sop/common/point.h"
#include "sop/query/query.h"

namespace sop {
namespace net {

/// Wire protocol version negotiated in the handshake. Bumped on any
/// incompatible message-body change; the frame format version
/// (common/frame.h) covers the framing itself. v2 adds the server role to
/// the handshake, resume positions to subscriptions, the health plane and
/// the replication plane. v3 adds the scale-out plane (DESIGN.md Sec. 17):
/// the shard-config handshake and per-point owner flags on ingest. v4 adds
/// the session arrival counter (`next_seq`) to hello and ingest acks, the
/// anchor a scale-out router realigns its sequence maps against after a
/// worker outage.
inline constexpr uint32_t kProtocolVersion = 4;

/// Upper bound on one frame's payload, enforced on both send and receive.
/// Large enough for ~100k ingested points per batch, small enough that a
/// corrupt or hostile length field cannot balloon a connection buffer.
inline constexpr uint64_t kMaxFramePayload = 16ull << 20;  // 16 MiB

/// Message type word, first u32 of every frame payload.
enum class MsgType : uint32_t {
  kHello = 1,           // client -> server: open a session
  kHelloAck = 2,        // server -> client: accept + server configuration
  kIngest = 3,          // client -> server: point batch ending at a boundary
  kIngestAck = 4,       // server -> client: batch advanced (or refused)
  kSubscribe = 5,       // client -> server: register a query
  kSubscribeAck = 6,    // server -> client: assigned query id
  kUnsubscribe = 7,     // client -> server: retire a query
  kUnsubscribeAck = 8,  // server -> client: removal result
  kEmission = 9,        // server -> client: one query's outliers at a boundary
  kError = 10,          // server -> client: diagnostic (connection stays up)
  kPing = 11,           // either direction: health probe
  kPong = 12,           // reply: role, stream position, queue depths
  kReplSnapshot = 13,   // primary -> standby: full session state + ring
  kReplBatch = 14,      // primary -> standby: one batch + its emissions
  kReplAck = 15,        // standby -> primary: applied position / resync ask
  kShardConfig = 16,    // router -> worker: this worker's shard assignment
  kShardConfigAck = 17, // worker -> router: accepted (or refused) config
};

/// Human-readable type name for logs and test failures.
const char* MsgTypeName(MsgType type);

/// Whether a server is serving traffic or hot-standing-by for a primary.
enum class ServerRole : uint32_t {
  kPrimary = 0,  // accepts ingest and subscriptions
  kStandby = 1,  // applies replication only; promotes on primary loss
};

/// Human-readable role name ("primary" / "standby").
const char* ServerRoleName(ServerRole role);

/// Sentinel for "no resume position" in SubscribeMsg::resume_from (and for
/// "no batch ingested yet" boundaries throughout the protocol).
inline constexpr int64_t kNoResume = INT64_MIN;

struct HelloMsg {
  uint32_t protocol_version = kProtocolVersion;
};

struct HelloAckMsg {
  uint32_t protocol_version = kProtocolVersion;
  uint32_t window_type = 0;  // WindowType under the hood
  uint32_t metric = 0;       // Metric under the hood
  uint32_t role = 0;         // ServerRole under the hood
  std::string detector;      // factory name the server compiles
  /// The shared stream's last advanced boundary (INT64_MIN when no batch
  /// has been ingested yet). Late-joining ingesters continue from here —
  /// the stream is shared, so boundaries are global, not per-connection.
  int64_t last_boundary = 0;
  /// The session's arrival sequence counter: the seq the next accepted
  /// point will get, i.e. total points ever accepted (survives checkpoint
  /// restore). Routers anchor local->global sequence maps to it.
  uint64_t next_seq = 0;
};

struct IngestMsg {
  /// Window key this batch ends at (exclusive); must exceed the server's
  /// last advanced boundary and respect the subscribers' slide quantum.
  int64_t boundary = 0;
  /// Points in arrival order. seq values are ignored — the server's
  /// session assigns global arrival sequence numbers itself.
  std::vector<Point> points;
  /// Scale-out plane only (DESIGN.md Sec. 17): per-point ownership flags,
  /// parallel to `points`. 1 = this shard owns the point (its outlier
  /// verdict is authoritative here), 0 = halo replica (present only so
  /// neighbors near the region edge are counted; the owner shard answers
  /// for it). Empty means every point is owned — the single-node case, and
  /// the wire default.
  std::vector<uint8_t> owner;
};

struct IngestAckMsg {
  int64_t boundary = 0;
  /// Points accepted into the session (echoes the batch size).
  uint64_t accepted = 0;
  /// Emissions routed to this subscriber for this batch, delivered before
  /// the ack on the same connection.
  uint64_t emissions = 0;
  /// The session's arrival sequence counter AFTER this batch (total points
  /// ever accepted; unchanged on a refused batch). Authoritative even when
  /// `accepted` was synthesized across a reconnect, which is what lets a
  /// scale-out router realign its local->global sequence maps after a
  /// worker missed a batch (cluster/router.h).
  uint64_t next_seq = 0;
};

struct SubscribeMsg {
  OutlierQuery query;  // full attribute space only (attribute_set == 0)
  /// A reconnecting subscriber's high-water mark: the boundary of the last
  /// emission it received for this query. kNoResume (the default) means a
  /// fresh subscription. With a real value, the server replays every
  /// retained emission for this query's parameters past `resume_from`
  /// (ahead of the subscribe ack) and suppresses later live emissions at
  /// or below it, so a reconnect delivers each emission exactly once.
  int64_t resume_from = kNoResume;
};

struct SubscribeAckMsg {
  /// Assigned query id (> 0); 0 when the subscription was refused, with
  /// the reason in `error`.
  int64_t query_id = 0;
  /// Emissions replayed from the resume ring ahead of this ack.
  uint64_t replayed = 0;
  /// True when the resume ring no longer reached back to `resume_from`:
  /// emissions in the uncovered span are lost, and the first delivered
  /// emission after this ack carries degraded=true to mark the gap.
  bool gap = false;
  std::string error;
};

struct UnsubscribeMsg {
  int64_t query_id = 0;
};

struct UnsubscribeAckMsg {
  bool ok = false;
};

struct EmissionMsg {
  int64_t query_id = 0;
  int64_t boundary = 0;
  /// True when this answer is exact over the data the server saw but the
  /// delivery stream to this subscriber is known lossy: either the engine
  /// flagged the emission degraded upstream, or the server shed earlier
  /// emissions from this subscriber's send queue under overload.
  bool degraded = false;
  std::vector<Seq> outliers;
};

struct ErrorMsg {
  std::string message;
};

struct PingMsg {
  /// Echo token: the pong carries it back so overlapping probes on one
  /// connection can be told apart.
  uint64_t token = 0;
};

struct PongMsg {
  uint64_t token = 0;
  uint32_t role = 0;  // ServerRole under the hood
  /// Last advanced boundary (kNoResume before the first batch).
  int64_t last_boundary = kNoResume;
  uint64_t ingest_queue_depth = 0;
  /// Frames queued across all subscriber send queues.
  uint64_t send_queue_depth = 0;
  uint64_t active_connections = 0;
};

/// One retained emission, addressed by the query's *parameters* rather
/// than its connection-scoped id: ids die with their connection, but a
/// reconnecting subscriber re-describes the same (r, k, window, slide)
/// query, and the resume ring matches on exactly that.
struct EmissionRecord {
  OutlierQuery query;  // only r/k/window/slide matter (attribute_set == 0)
  int64_t boundary = 0;
  bool degraded = false;
  std::vector<Seq> outliers;
};

/// One query fingerprint's slice of the resume ring: its retained
/// emissions in boundary order, plus the highest boundary ever evicted
/// from the slice (kNoResume when nothing was) — the marker that lets a
/// resume distinguish "nothing was emitted before my first entry" from
/// "emissions existed but the ring wrapped", i.e. whether a reconnect owes
/// the client a `gap` flag.
struct ResumeRingShard {
  OutlierQuery query;  // only r/k/window/slide matter (attribute_set == 0)
  int64_t evicted_to = INT64_MIN;
  struct Entry {
    int64_t boundary = 0;
    bool degraded = false;
    std::vector<Seq> outliers;
  };
  std::vector<Entry> entries;
};

struct ReplSnapshotMsg {
  /// Boundary the session blob captures (kNoResume for an empty session).
  int64_t boundary = kNoResume;
  /// SopSession::SaveState blob — already framed and CRC'd internally, so
  /// a standby validates it twice (frame CRC + blob CRC) before applying.
  std::string state;
  /// The primary's resume ring at that boundary, shipped whole so a
  /// freshly promoted standby can serve resumes for emissions it never
  /// itself computed.
  std::vector<ResumeRingShard> ring;
};

struct ReplBatchMsg {
  /// The boundary this batch chains from: the standby applies only when
  /// it equals its own last applied boundary, drops the batch as stale
  /// when behind it, and NAKs (ReplAckMsg::need_snapshot) when ahead —
  /// making replication self-healing across connection churn.
  int64_t prev_boundary = kNoResume;
  int64_t boundary = 0;
  std::vector<Point> points;
  /// The primary's emissions for this batch (every subscribed query due
  /// at `boundary`), so the standby's ring mirrors the primary's without
  /// recomputation drift.
  std::vector<EmissionRecord> results;
};

struct ReplAckMsg {
  /// The standby's last applied boundary after processing the message.
  int64_t boundary = kNoResume;
  /// Chain broken (or snapshot failed to apply): primary must ship a
  /// fresh snapshot before any further batches.
  bool need_snapshot = false;
};

/// Router -> worker shard assignment (DESIGN.md Sec. 17): declares which
/// slice of the value domain (first attribute) this worker owns and how
/// wide the halo around it is. Informational for the worker — routing
/// decisions are the router's — but it lets the worker label its stats,
/// sanity-check reconfiguration, and refuse a conflicting second router.
struct ShardConfigMsg {
  uint32_t shard_index = 0;  // this worker's shard, in [0, num_shards)
  uint32_t num_shards = 1;
  /// Owned region [lo, hi) over the first attribute. The first shard's lo
  /// and the last shard's hi are +/-infinity so every value has an owner.
  double lo = 0.0;
  double hi = 0.0;
  /// Halo width: points within `halo` of the region (but owned elsewhere)
  /// are replicated here. Derived from the workload basis r_max upstream.
  double halo = 0.0;
};

struct ShardConfigAckMsg {
  bool ok = false;
  std::string error;  // refusal reason (e.g. conflicting earlier config)
};

/// --- encoding ----------------------------------------------------------
/// Each encoder returns one complete frame, ready to write to a socket.

std::string EncodeHello(const HelloMsg& msg);
std::string EncodeHelloAck(const HelloAckMsg& msg);
std::string EncodeIngest(const IngestMsg& msg);
std::string EncodeIngestAck(const IngestAckMsg& msg);
std::string EncodeSubscribe(const SubscribeMsg& msg);
std::string EncodeSubscribeAck(const SubscribeAckMsg& msg);
std::string EncodeUnsubscribe(const UnsubscribeMsg& msg);
std::string EncodeUnsubscribeAck(const UnsubscribeAckMsg& msg);
std::string EncodeEmission(const EmissionMsg& msg);
std::string EncodeError(const ErrorMsg& msg);
std::string EncodePing(const PingMsg& msg);
std::string EncodePong(const PongMsg& msg);
std::string EncodeReplSnapshot(const ReplSnapshotMsg& msg);
std::string EncodeReplBatch(const ReplBatchMsg& msg);
std::string EncodeReplAck(const ReplAckMsg& msg);
std::string EncodeShardConfig(const ShardConfigMsg& msg);
std::string EncodeShardConfigAck(const ShardConfigAckMsg& msg);

/// --- decoding ----------------------------------------------------------
/// PeekType reads the payload's type word; the per-type decoders verify it
/// and parse the body, returning false (with a diagnostic) on any type
/// mismatch, truncation, trailing garbage, or out-of-range field.

bool PeekType(std::string_view payload, MsgType* type, std::string* error);

bool DecodeHello(std::string_view payload, HelloMsg* out, std::string* error);
bool DecodeHelloAck(std::string_view payload, HelloAckMsg* out,
                    std::string* error);
bool DecodeIngest(std::string_view payload, IngestMsg* out,
                  std::string* error);
bool DecodeIngestAck(std::string_view payload, IngestAckMsg* out,
                     std::string* error);
bool DecodeSubscribe(std::string_view payload, SubscribeMsg* out,
                     std::string* error);
bool DecodeSubscribeAck(std::string_view payload, SubscribeAckMsg* out,
                        std::string* error);
bool DecodeUnsubscribe(std::string_view payload, UnsubscribeMsg* out,
                       std::string* error);
bool DecodeUnsubscribeAck(std::string_view payload, UnsubscribeAckMsg* out,
                          std::string* error);
bool DecodeEmission(std::string_view payload, EmissionMsg* out,
                    std::string* error);
bool DecodeError(std::string_view payload, ErrorMsg* out, std::string* error);
bool DecodePing(std::string_view payload, PingMsg* out, std::string* error);
bool DecodePong(std::string_view payload, PongMsg* out, std::string* error);
bool DecodeReplSnapshot(std::string_view payload, ReplSnapshotMsg* out,
                        std::string* error);
bool DecodeReplBatch(std::string_view payload, ReplBatchMsg* out,
                     std::string* error);
bool DecodeReplAck(std::string_view payload, ReplAckMsg* out,
                   std::string* error);
bool DecodeShardConfig(std::string_view payload, ShardConfigMsg* out,
                       std::string* error);
bool DecodeShardConfigAck(std::string_view payload, ShardConfigAckMsg* out,
                          std::string* error);

/// Incremental frame extraction over a raw byte stream. See file comment.
class FrameDecoder {
 public:
  enum class Status {
    kFrame,     // *payload holds one complete, CRC-verified frame payload
    kNeedMore,  // no complete frame buffered yet; feed more bytes
    kError,     // framing lost (bad magic/version/length/CRC); drop the
                // connection — every later Next() repeats kError
  };

  /// Appends raw received bytes to the decode buffer.
  void Append(const char* data, size_t n);

  /// Extracts the next complete frame payload if one is buffered.
  /// On kError, `*error` (if non-null) describes the problem.
  Status Next(std::string* payload, std::string* error = nullptr);

  /// Bytes buffered but not yet consumed by a complete frame.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool failed_ = false;
  std::string failure_;
};

}  // namespace net
}  // namespace sop

#endif  // SOP_NET_PROTOCOL_H_
