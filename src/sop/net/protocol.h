// The sop wire protocol: length-prefixed, CRC-checked message frames.
//
// Every message on a connection — in either direction — is one
// common/frame.h frame (magic "SOPF" + format version + payload length +
// CRC-32 + payload), so the serving plane inherits the exact corruption
// detection the checkpoint path already proved out: truncation, extension
// and bit flips are all caught before a payload is interpreted. The
// payload is a u32 message type word followed by a type-specific body in
// common/serialize.h fixed-width little-endian encoding.
//
// Message planes (DESIGN.md Sec. 13):
//
//   handshake   kHello -> kHelloAck      version + session configuration
//   ingest      kIngest -> kIngestAck    batched points ending at a boundary
//   queries     kSubscribe -> kSubscribeAck, kUnsubscribe -> kUnsubscribeAck
//   emissions   kEmission (server-push)  per-subscriber filtered results
//   errors      kError (server-push)     diagnostic; connection stays up
//
// FrameDecoder is the incremental receive path: it accepts bytes exactly
// as recv(2) hands them over — short reads, partial frames, many frames
// per read — and yields complete, CRC-verified payloads. A malformed
// header or checksum is unrecoverable (a byte stream cannot resync after
// framing is lost), so the decoder latches into an error state and the
// connection must be dropped.
//
// All decode functions are exception-free and never trust a length field
// further than the bytes actually present; oversized frames are rejected
// at header-parse time (kMaxFramePayload) so a hostile 8-byte header
// cannot make the server reserve gigabytes.

#ifndef SOP_NET_PROTOCOL_H_
#define SOP_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sop/common/point.h"
#include "sop/query/query.h"

namespace sop {
namespace net {

/// Wire protocol version negotiated in the handshake. Bumped on any
/// incompatible message-body change; the frame format version
/// (common/frame.h) covers the framing itself.
inline constexpr uint32_t kProtocolVersion = 1;

/// Upper bound on one frame's payload, enforced on both send and receive.
/// Large enough for ~100k ingested points per batch, small enough that a
/// corrupt or hostile length field cannot balloon a connection buffer.
inline constexpr uint64_t kMaxFramePayload = 16ull << 20;  // 16 MiB

/// Message type word, first u32 of every frame payload.
enum class MsgType : uint32_t {
  kHello = 1,           // client -> server: open a session
  kHelloAck = 2,        // server -> client: accept + server configuration
  kIngest = 3,          // client -> server: point batch ending at a boundary
  kIngestAck = 4,       // server -> client: batch advanced (or refused)
  kSubscribe = 5,       // client -> server: register a query
  kSubscribeAck = 6,    // server -> client: assigned query id
  kUnsubscribe = 7,     // client -> server: retire a query
  kUnsubscribeAck = 8,  // server -> client: removal result
  kEmission = 9,        // server -> client: one query's outliers at a boundary
  kError = 10,          // server -> client: diagnostic (connection stays up)
};

/// Human-readable type name for logs and test failures.
const char* MsgTypeName(MsgType type);

struct HelloMsg {
  uint32_t protocol_version = kProtocolVersion;
};

struct HelloAckMsg {
  uint32_t protocol_version = kProtocolVersion;
  uint32_t window_type = 0;  // WindowType under the hood
  uint32_t metric = 0;       // Metric under the hood
  std::string detector;      // factory name the server compiles
  /// The shared stream's last advanced boundary (INT64_MIN when no batch
  /// has been ingested yet). Late-joining ingesters continue from here —
  /// the stream is shared, so boundaries are global, not per-connection.
  int64_t last_boundary = 0;
};

struct IngestMsg {
  /// Window key this batch ends at (exclusive); must exceed the server's
  /// last advanced boundary and respect the subscribers' slide quantum.
  int64_t boundary = 0;
  /// Points in arrival order. seq values are ignored — the server's
  /// session assigns global arrival sequence numbers itself.
  std::vector<Point> points;
};

struct IngestAckMsg {
  int64_t boundary = 0;
  /// Points accepted into the session (echoes the batch size).
  uint64_t accepted = 0;
  /// Emissions routed to this subscriber for this batch, delivered before
  /// the ack on the same connection.
  uint64_t emissions = 0;
};

struct SubscribeMsg {
  OutlierQuery query;  // full attribute space only (attribute_set == 0)
};

struct SubscribeAckMsg {
  /// Assigned query id (> 0); 0 when the subscription was refused, with
  /// the reason in `error`.
  int64_t query_id = 0;
  std::string error;
};

struct UnsubscribeMsg {
  int64_t query_id = 0;
};

struct UnsubscribeAckMsg {
  bool ok = false;
};

struct EmissionMsg {
  int64_t query_id = 0;
  int64_t boundary = 0;
  /// True when this answer is exact over the data the server saw but the
  /// delivery stream to this subscriber is known lossy: either the engine
  /// flagged the emission degraded upstream, or the server shed earlier
  /// emissions from this subscriber's send queue under overload.
  bool degraded = false;
  std::vector<Seq> outliers;
};

struct ErrorMsg {
  std::string message;
};

/// --- encoding ----------------------------------------------------------
/// Each encoder returns one complete frame, ready to write to a socket.

std::string EncodeHello(const HelloMsg& msg);
std::string EncodeHelloAck(const HelloAckMsg& msg);
std::string EncodeIngest(const IngestMsg& msg);
std::string EncodeIngestAck(const IngestAckMsg& msg);
std::string EncodeSubscribe(const SubscribeMsg& msg);
std::string EncodeSubscribeAck(const SubscribeAckMsg& msg);
std::string EncodeUnsubscribe(const UnsubscribeMsg& msg);
std::string EncodeUnsubscribeAck(const UnsubscribeAckMsg& msg);
std::string EncodeEmission(const EmissionMsg& msg);
std::string EncodeError(const ErrorMsg& msg);

/// --- decoding ----------------------------------------------------------
/// PeekType reads the payload's type word; the per-type decoders verify it
/// and parse the body, returning false (with a diagnostic) on any type
/// mismatch, truncation, trailing garbage, or out-of-range field.

bool PeekType(std::string_view payload, MsgType* type, std::string* error);

bool DecodeHello(std::string_view payload, HelloMsg* out, std::string* error);
bool DecodeHelloAck(std::string_view payload, HelloAckMsg* out,
                    std::string* error);
bool DecodeIngest(std::string_view payload, IngestMsg* out,
                  std::string* error);
bool DecodeIngestAck(std::string_view payload, IngestAckMsg* out,
                     std::string* error);
bool DecodeSubscribe(std::string_view payload, SubscribeMsg* out,
                     std::string* error);
bool DecodeSubscribeAck(std::string_view payload, SubscribeAckMsg* out,
                        std::string* error);
bool DecodeUnsubscribe(std::string_view payload, UnsubscribeMsg* out,
                       std::string* error);
bool DecodeUnsubscribeAck(std::string_view payload, UnsubscribeAckMsg* out,
                          std::string* error);
bool DecodeEmission(std::string_view payload, EmissionMsg* out,
                    std::string* error);
bool DecodeError(std::string_view payload, ErrorMsg* out, std::string* error);

/// Incremental frame extraction over a raw byte stream. See file comment.
class FrameDecoder {
 public:
  enum class Status {
    kFrame,     // *payload holds one complete, CRC-verified frame payload
    kNeedMore,  // no complete frame buffered yet; feed more bytes
    kError,     // framing lost (bad magic/version/length/CRC); drop the
                // connection — every later Next() repeats kError
  };

  /// Appends raw received bytes to the decode buffer.
  void Append(const char* data, size_t n);

  /// Extracts the next complete frame payload if one is buffered.
  /// On kError, `*error` (if non-null) describes the problem.
  Status Next(std::string* payload, std::string* error = nullptr);

  /// Bytes buffered but not yet consumed by a complete frame.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool failed_ = false;
  std::string failure_;
};

}  // namespace net
}  // namespace sop

#endif  // SOP_NET_PROTOCOL_H_
