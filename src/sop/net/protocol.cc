#include "sop/net/protocol.h"

#include <utility>

#include "sop/common/frame.h"
#include "sop/common/serialize.h"

namespace sop {
namespace net {

namespace {

bool Malformed(std::string* error, const char* what) {
  if (error != nullptr) *error = std::string("wire message: ") + what;
  return false;
}

// Reads and verifies the leading type word.
bool ConsumeType(BinaryReader* r, MsgType expected, std::string* error) {
  uint32_t word = 0;
  if (!r->ReadU32(&word)) return Malformed(error, "truncated type word");
  if (word != static_cast<uint32_t>(expected)) {
    return Malformed(error, "unexpected message type");
  }
  return true;
}

// Every message ends here: the reader must be clean and fully consumed.
bool FinishDecode(const BinaryReader& r, std::string* error) {
  if (!r.AtEnd()) return Malformed(error, "trailing bytes");
  return true;
}

void WritePoint(BinaryWriter* w, const Point& p) {
  w->WriteI64(p.time);
  w->WriteU64(p.values.size());
  for (const double v : p.values) w->WriteDouble(v);
}

// Reads one ingest point. Values are read one at a time so a corrupt
// dimension count fails at the first missing byte instead of allocating.
bool ReadPoint(BinaryReader* r, Point* p, std::string* error) {
  uint64_t dims = 0;
  if (!r->ReadI64(&p->time) || !r->ReadU64(&dims)) {
    return Malformed(error, "truncated point");
  }
  for (uint64_t d = 0; d < dims; ++d) {
    double v = 0.0;
    if (!r->ReadDouble(&v)) return Malformed(error, "truncated point");
    p->values.push_back(v);
  }
  return true;
}

std::string Finish(BinaryWriter* w) { return WrapFrame(w->bytes()); }

BinaryWriter Begin(MsgType type) {
  BinaryWriter w;
  w.WriteU32(static_cast<uint32_t>(type));
  return w;
}

void WriteEmissionRecord(BinaryWriter* w, const EmissionRecord& rec) {
  w->WriteDouble(rec.query.r);
  w->WriteI64(rec.query.k);
  w->WriteI64(rec.query.win);
  w->WriteI64(rec.query.slide);
  w->WriteI64(rec.boundary);
  w->WriteBool(rec.degraded);
  w->WriteU64(rec.outliers.size());
  for (const Seq s : rec.outliers) w->WriteI64(s);
}

bool ReadEmissionRecord(BinaryReader* r, EmissionRecord* rec,
                        std::string* error) {
  uint64_t count = 0;
  if (!r->ReadDouble(&rec->query.r) || !r->ReadI64(&rec->query.k) ||
      !r->ReadI64(&rec->query.win) || !r->ReadI64(&rec->query.slide) ||
      !r->ReadI64(&rec->boundary) || !r->ReadBool(&rec->degraded) ||
      !r->ReadU64(&count)) {
    return Malformed(error, "truncated emission record");
  }
  rec->query.attribute_set = 0;
  for (uint64_t i = 0; i < count; ++i) {
    Seq s = 0;
    if (!r->ReadI64(&s)) return Malformed(error, "truncated emission record");
    rec->outliers.push_back(s);
  }
  return true;
}

void WriteRingShard(BinaryWriter* w, const ResumeRingShard& shard) {
  w->WriteDouble(shard.query.r);
  w->WriteI64(shard.query.k);
  w->WriteI64(shard.query.win);
  w->WriteI64(shard.query.slide);
  w->WriteI64(shard.evicted_to);
  w->WriteU64(shard.entries.size());
  for (const ResumeRingShard::Entry& e : shard.entries) {
    w->WriteI64(e.boundary);
    w->WriteBool(e.degraded);
    w->WriteU64(e.outliers.size());
    for (const Seq s : e.outliers) w->WriteI64(s);
  }
}

bool ReadRingShard(BinaryReader* r, ResumeRingShard* shard,
                   std::string* error) {
  uint64_t entries = 0;
  if (!r->ReadDouble(&shard->query.r) || !r->ReadI64(&shard->query.k) ||
      !r->ReadI64(&shard->query.win) || !r->ReadI64(&shard->query.slide) ||
      !r->ReadI64(&shard->evicted_to) || !r->ReadU64(&entries)) {
    return Malformed(error, "truncated ring shard");
  }
  shard->query.attribute_set = 0;
  for (uint64_t i = 0; i < entries; ++i) {
    ResumeRingShard::Entry e;
    uint64_t count = 0;
    if (!r->ReadI64(&e.boundary) || !r->ReadBool(&e.degraded) ||
        !r->ReadU64(&count)) {
      return Malformed(error, "truncated ring entry");
    }
    for (uint64_t j = 0; j < count; ++j) {
      Seq s = 0;
      if (!r->ReadI64(&s)) return Malformed(error, "truncated ring entry");
      e.outliers.push_back(s);
    }
    shard->entries.push_back(std::move(e));
  }
  return true;
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "hello";
    case MsgType::kHelloAck:
      return "hello-ack";
    case MsgType::kIngest:
      return "ingest";
    case MsgType::kIngestAck:
      return "ingest-ack";
    case MsgType::kSubscribe:
      return "subscribe";
    case MsgType::kSubscribeAck:
      return "subscribe-ack";
    case MsgType::kUnsubscribe:
      return "unsubscribe";
    case MsgType::kUnsubscribeAck:
      return "unsubscribe-ack";
    case MsgType::kEmission:
      return "emission";
    case MsgType::kError:
      return "error";
    case MsgType::kPing:
      return "ping";
    case MsgType::kPong:
      return "pong";
    case MsgType::kReplSnapshot:
      return "repl-snapshot";
    case MsgType::kReplBatch:
      return "repl-batch";
    case MsgType::kReplAck:
      return "repl-ack";
    case MsgType::kShardConfig:
      return "shard-config";
    case MsgType::kShardConfigAck:
      return "shard-config-ack";
  }
  return "unknown";
}

const char* ServerRoleName(ServerRole role) {
  switch (role) {
    case ServerRole::kPrimary:
      return "primary";
    case ServerRole::kStandby:
      return "standby";
  }
  return "unknown";
}

std::string EncodeHello(const HelloMsg& msg) {
  BinaryWriter w = Begin(MsgType::kHello);
  w.WriteU32(msg.protocol_version);
  return Finish(&w);
}

std::string EncodeHelloAck(const HelloAckMsg& msg) {
  BinaryWriter w = Begin(MsgType::kHelloAck);
  w.WriteU32(msg.protocol_version);
  w.WriteU32(msg.window_type);
  w.WriteU32(msg.metric);
  w.WriteU32(msg.role);
  w.WriteBytes(msg.detector);
  w.WriteI64(msg.last_boundary);
  w.WriteU64(msg.next_seq);
  return Finish(&w);
}

std::string EncodeIngest(const IngestMsg& msg) {
  BinaryWriter w = Begin(MsgType::kIngest);
  w.WriteI64(msg.boundary);
  w.WriteU64(msg.points.size());
  for (const Point& p : msg.points) WritePoint(&w, p);
  w.WriteU64(msg.owner.size());
  for (const uint8_t o : msg.owner) w.WriteBool(o != 0);
  return Finish(&w);
}

std::string EncodeIngestAck(const IngestAckMsg& msg) {
  BinaryWriter w = Begin(MsgType::kIngestAck);
  w.WriteI64(msg.boundary);
  w.WriteU64(msg.accepted);
  w.WriteU64(msg.emissions);
  w.WriteU64(msg.next_seq);
  return Finish(&w);
}

std::string EncodeSubscribe(const SubscribeMsg& msg) {
  BinaryWriter w = Begin(MsgType::kSubscribe);
  w.WriteDouble(msg.query.r);
  w.WriteI64(msg.query.k);
  w.WriteI64(msg.query.win);
  w.WriteI64(msg.query.slide);
  w.WriteI64(msg.resume_from);
  return Finish(&w);
}

std::string EncodeSubscribeAck(const SubscribeAckMsg& msg) {
  BinaryWriter w = Begin(MsgType::kSubscribeAck);
  w.WriteI64(msg.query_id);
  w.WriteU64(msg.replayed);
  w.WriteBool(msg.gap);
  w.WriteBytes(msg.error);
  return Finish(&w);
}

std::string EncodeUnsubscribe(const UnsubscribeMsg& msg) {
  BinaryWriter w = Begin(MsgType::kUnsubscribe);
  w.WriteI64(msg.query_id);
  return Finish(&w);
}

std::string EncodeUnsubscribeAck(const UnsubscribeAckMsg& msg) {
  BinaryWriter w = Begin(MsgType::kUnsubscribeAck);
  w.WriteBool(msg.ok);
  return Finish(&w);
}

std::string EncodeEmission(const EmissionMsg& msg) {
  BinaryWriter w = Begin(MsgType::kEmission);
  w.WriteI64(msg.query_id);
  w.WriteI64(msg.boundary);
  w.WriteBool(msg.degraded);
  w.WriteU64(msg.outliers.size());
  for (const Seq s : msg.outliers) w.WriteI64(s);
  return Finish(&w);
}

std::string EncodeError(const ErrorMsg& msg) {
  BinaryWriter w = Begin(MsgType::kError);
  w.WriteBytes(msg.message);
  return Finish(&w);
}

std::string EncodePing(const PingMsg& msg) {
  BinaryWriter w = Begin(MsgType::kPing);
  w.WriteU64(msg.token);
  return Finish(&w);
}

std::string EncodePong(const PongMsg& msg) {
  BinaryWriter w = Begin(MsgType::kPong);
  w.WriteU64(msg.token);
  w.WriteU32(msg.role);
  w.WriteI64(msg.last_boundary);
  w.WriteU64(msg.ingest_queue_depth);
  w.WriteU64(msg.send_queue_depth);
  w.WriteU64(msg.active_connections);
  return Finish(&w);
}

std::string EncodeReplSnapshot(const ReplSnapshotMsg& msg) {
  BinaryWriter w = Begin(MsgType::kReplSnapshot);
  w.WriteI64(msg.boundary);
  w.WriteBytes(msg.state);
  w.WriteU64(msg.ring.size());
  for (const ResumeRingShard& shard : msg.ring) WriteRingShard(&w, shard);
  return Finish(&w);
}

std::string EncodeReplBatch(const ReplBatchMsg& msg) {
  BinaryWriter w = Begin(MsgType::kReplBatch);
  w.WriteI64(msg.prev_boundary);
  w.WriteI64(msg.boundary);
  w.WriteU64(msg.points.size());
  for (const Point& p : msg.points) WritePoint(&w, p);
  w.WriteU64(msg.results.size());
  for (const EmissionRecord& rec : msg.results) WriteEmissionRecord(&w, rec);
  return Finish(&w);
}

std::string EncodeReplAck(const ReplAckMsg& msg) {
  BinaryWriter w = Begin(MsgType::kReplAck);
  w.WriteI64(msg.boundary);
  w.WriteBool(msg.need_snapshot);
  return Finish(&w);
}

std::string EncodeShardConfig(const ShardConfigMsg& msg) {
  BinaryWriter w = Begin(MsgType::kShardConfig);
  w.WriteU32(msg.shard_index);
  w.WriteU32(msg.num_shards);
  w.WriteDouble(msg.lo);
  w.WriteDouble(msg.hi);
  w.WriteDouble(msg.halo);
  return Finish(&w);
}

std::string EncodeShardConfigAck(const ShardConfigAckMsg& msg) {
  BinaryWriter w = Begin(MsgType::kShardConfigAck);
  w.WriteBool(msg.ok);
  w.WriteBytes(msg.error);
  return Finish(&w);
}

bool PeekType(std::string_view payload, MsgType* type, std::string* error) {
  BinaryReader r(payload);
  uint32_t word = 0;
  if (!r.ReadU32(&word)) return Malformed(error, "truncated type word");
  if (word < static_cast<uint32_t>(MsgType::kHello) ||
      word > static_cast<uint32_t>(MsgType::kShardConfigAck)) {
    return Malformed(error, "unknown message type");
  }
  *type = static_cast<MsgType>(word);
  return true;
}

bool DecodeHello(std::string_view payload, HelloMsg* out, std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kHello, error)) return false;
  if (!r.ReadU32(&out->protocol_version)) {
    return Malformed(error, "truncated hello");
  }
  return FinishDecode(r, error);
}

bool DecodeHelloAck(std::string_view payload, HelloAckMsg* out,
                    std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kHelloAck, error)) return false;
  if (!r.ReadU32(&out->protocol_version) || !r.ReadU32(&out->window_type) ||
      !r.ReadU32(&out->metric) || !r.ReadU32(&out->role) ||
      !r.ReadBytes(&out->detector) || !r.ReadI64(&out->last_boundary) ||
      !r.ReadU64(&out->next_seq)) {
    return Malformed(error, "truncated hello-ack");
  }
  return FinishDecode(r, error);
}

bool DecodeIngest(std::string_view payload, IngestMsg* out,
                  std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kIngest, error)) return false;
  uint64_t count = 0;
  if (!r.ReadI64(&out->boundary) || !r.ReadU64(&count)) {
    return Malformed(error, "truncated ingest");
  }
  out->points.clear();
  for (uint64_t i = 0; i < count; ++i) {
    Point p;
    if (!ReadPoint(&r, &p, error)) return false;
    out->points.push_back(std::move(p));
  }
  uint64_t owners = 0;
  if (!r.ReadU64(&owners)) return Malformed(error, "truncated ingest");
  if (owners != 0 && owners != count) {
    return Malformed(error, "owner flag count mismatch");
  }
  out->owner.clear();
  for (uint64_t i = 0; i < owners; ++i) {
    bool o = false;
    if (!r.ReadBool(&o)) return Malformed(error, "truncated ingest");
    out->owner.push_back(o ? 1 : 0);
  }
  return FinishDecode(r, error);
}

bool DecodeIngestAck(std::string_view payload, IngestAckMsg* out,
                     std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kIngestAck, error)) return false;
  if (!r.ReadI64(&out->boundary) || !r.ReadU64(&out->accepted) ||
      !r.ReadU64(&out->emissions) || !r.ReadU64(&out->next_seq)) {
    return Malformed(error, "truncated ingest-ack");
  }
  return FinishDecode(r, error);
}

bool DecodeSubscribe(std::string_view payload, SubscribeMsg* out,
                     std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kSubscribe, error)) return false;
  if (!r.ReadDouble(&out->query.r) || !r.ReadI64(&out->query.k) ||
      !r.ReadI64(&out->query.win) || !r.ReadI64(&out->query.slide) ||
      !r.ReadI64(&out->resume_from)) {
    return Malformed(error, "truncated subscribe");
  }
  out->query.attribute_set = 0;
  return FinishDecode(r, error);
}

bool DecodeSubscribeAck(std::string_view payload, SubscribeAckMsg* out,
                        std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kSubscribeAck, error)) return false;
  if (!r.ReadI64(&out->query_id) || !r.ReadU64(&out->replayed) ||
      !r.ReadBool(&out->gap) || !r.ReadBytes(&out->error)) {
    return Malformed(error, "truncated subscribe-ack");
  }
  return FinishDecode(r, error);
}

bool DecodeUnsubscribe(std::string_view payload, UnsubscribeMsg* out,
                       std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kUnsubscribe, error)) return false;
  if (!r.ReadI64(&out->query_id)) {
    return Malformed(error, "truncated unsubscribe");
  }
  return FinishDecode(r, error);
}

bool DecodeUnsubscribeAck(std::string_view payload, UnsubscribeAckMsg* out,
                          std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kUnsubscribeAck, error)) return false;
  if (!r.ReadBool(&out->ok)) {
    return Malformed(error, "truncated unsubscribe-ack");
  }
  return FinishDecode(r, error);
}

bool DecodeEmission(std::string_view payload, EmissionMsg* out,
                    std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kEmission, error)) return false;
  uint64_t count = 0;
  if (!r.ReadI64(&out->query_id) || !r.ReadI64(&out->boundary) ||
      !r.ReadBool(&out->degraded) || !r.ReadU64(&count)) {
    return Malformed(error, "truncated emission");
  }
  out->outliers.clear();
  for (uint64_t i = 0; i < count; ++i) {
    Seq s = 0;
    if (!r.ReadI64(&s)) return Malformed(error, "truncated emission");
    out->outliers.push_back(s);
  }
  return FinishDecode(r, error);
}

bool DecodeError(std::string_view payload, ErrorMsg* out, std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kError, error)) return false;
  if (!r.ReadBytes(&out->message)) {
    return Malformed(error, "truncated error message");
  }
  return FinishDecode(r, error);
}

bool DecodePing(std::string_view payload, PingMsg* out, std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kPing, error)) return false;
  if (!r.ReadU64(&out->token)) return Malformed(error, "truncated ping");
  return FinishDecode(r, error);
}

bool DecodePong(std::string_view payload, PongMsg* out, std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kPong, error)) return false;
  if (!r.ReadU64(&out->token) || !r.ReadU32(&out->role) ||
      !r.ReadI64(&out->last_boundary) || !r.ReadU64(&out->ingest_queue_depth) ||
      !r.ReadU64(&out->send_queue_depth) ||
      !r.ReadU64(&out->active_connections)) {
    return Malformed(error, "truncated pong");
  }
  return FinishDecode(r, error);
}

bool DecodeReplSnapshot(std::string_view payload, ReplSnapshotMsg* out,
                        std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kReplSnapshot, error)) return false;
  uint64_t count = 0;
  if (!r.ReadI64(&out->boundary) || !r.ReadBytes(&out->state) ||
      !r.ReadU64(&count)) {
    return Malformed(error, "truncated repl-snapshot");
  }
  out->ring.clear();
  for (uint64_t i = 0; i < count; ++i) {
    ResumeRingShard shard;
    if (!ReadRingShard(&r, &shard, error)) return false;
    out->ring.push_back(std::move(shard));
  }
  return FinishDecode(r, error);
}

bool DecodeReplBatch(std::string_view payload, ReplBatchMsg* out,
                     std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kReplBatch, error)) return false;
  uint64_t points = 0;
  if (!r.ReadI64(&out->prev_boundary) || !r.ReadI64(&out->boundary) ||
      !r.ReadU64(&points)) {
    return Malformed(error, "truncated repl-batch");
  }
  out->points.clear();
  for (uint64_t i = 0; i < points; ++i) {
    Point p;
    if (!ReadPoint(&r, &p, error)) return false;
    out->points.push_back(std::move(p));
  }
  uint64_t results = 0;
  if (!r.ReadU64(&results)) return Malformed(error, "truncated repl-batch");
  out->results.clear();
  for (uint64_t i = 0; i < results; ++i) {
    EmissionRecord rec;
    if (!ReadEmissionRecord(&r, &rec, error)) return false;
    out->results.push_back(std::move(rec));
  }
  return FinishDecode(r, error);
}

bool DecodeReplAck(std::string_view payload, ReplAckMsg* out,
                   std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kReplAck, error)) return false;
  if (!r.ReadI64(&out->boundary) || !r.ReadBool(&out->need_snapshot)) {
    return Malformed(error, "truncated repl-ack");
  }
  return FinishDecode(r, error);
}

bool DecodeShardConfig(std::string_view payload, ShardConfigMsg* out,
                       std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kShardConfig, error)) return false;
  if (!r.ReadU32(&out->shard_index) || !r.ReadU32(&out->num_shards) ||
      !r.ReadDouble(&out->lo) || !r.ReadDouble(&out->hi) ||
      !r.ReadDouble(&out->halo)) {
    return Malformed(error, "truncated shard-config");
  }
  if (out->num_shards == 0 || out->shard_index >= out->num_shards) {
    return Malformed(error, "shard index out of range");
  }
  return FinishDecode(r, error);
}

bool DecodeShardConfigAck(std::string_view payload, ShardConfigAckMsg* out,
                          std::string* error) {
  BinaryReader r(payload);
  if (!ConsumeType(&r, MsgType::kShardConfigAck, error)) return false;
  if (!r.ReadBool(&out->ok) || !r.ReadBytes(&out->error)) {
    return Malformed(error, "truncated shard-config-ack");
  }
  return FinishDecode(r, error);
}

void FrameDecoder::Append(const char* data, size_t n) {
  if (failed_) return;  // bytes after framing loss are unparseable anyway
  // Compact the consumed prefix before growing the buffer so steady-state
  // memory stays proportional to one frame, not to connection lifetime.
  if (consumed_ > 0 && (consumed_ >= buffer_.size() ||
                        consumed_ > kMaxFramePayload / 4)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

FrameDecoder::Status FrameDecoder::Next(std::string* payload,
                                        std::string* error) {
  auto fail = [this, error](const std::string& what) {
    failed_ = true;
    failure_ = what;
    if (error != nullptr) *error = what;
    return Status::kError;
  };
  if (failed_) {
    if (error != nullptr) *error = failure_;
    return Status::kError;
  }
  const std::string_view pending =
      std::string_view(buffer_).substr(consumed_);
  if (pending.size() < kFrameHeaderBytes) return Status::kNeedMore;
  uint64_t length = 0;
  std::string header_error;
  if (!ParseFrameHeader(pending, &length, &header_error)) {
    return fail(header_error);
  }
  if (length > kMaxFramePayload) return fail("wire frame: oversized payload");
  if (pending.size() - kFrameHeaderBytes < length) return Status::kNeedMore;
  const std::string_view frame =
      pending.substr(0, kFrameHeaderBytes + static_cast<size_t>(length));
  std::string_view body;
  std::string unwrap_error;
  if (!UnwrapFrame(frame, &body, &unwrap_error)) return fail(unwrap_error);
  payload->assign(body.data(), body.size());
  consumed_ += frame.size();
  return Status::kFrame;
}

}  // namespace net
}  // namespace sop
