#include "sop/net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "sop/common/fault.h"
#include "sop/obs/trace.h"

namespace sop {
namespace net {

namespace {

bool Fail(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what + ": " + std::strerror(errno);
  }
  return false;
}

// Consults the armed injector at `site`; retries injected transient
// failures with bounded backoff. Returns false when the retry budget is
// exhausted (treated as a hard connection failure by the caller).
bool RideOutInjectedFaults(FaultSite site, const NetRetryOptions& retry,
                           std::string* error) {
  FaultInjector* injector = FaultInjector::Armed();
  if (injector == nullptr) return true;
  int attempt = 1;
  int backoff_us = retry.backoff_initial_us;
  while (injector->ShouldFail(site)) {
    SOP_COUNTER_ADD("net/retries", 1);
    ++attempt;
    if (attempt > retry.max_attempts) {
      if (error != nullptr) {
        *error = std::string("injected ") + FaultSiteName(site) +
                 " failure persisted through retries";
      }
      return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us = std::min(backoff_us * 2, retry.backoff_max_us);
  }
  return true;
}

bool ParseAddress(const std::string& host, int port, sockaddr_in* addr,
                  std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    if (error != nullptr) {
      *error = "bad IPv4 address '" + host + "'";
    }
    return false;
  }
  return true;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket ListenTcp(const std::string& host, int port, int backlog,
                 int* bound_port, std::string* error) {
  sockaddr_in addr;
  if (!ParseAddress(host, port, &addr, error)) return Socket();
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    Fail(error, "socket");
    return Socket();
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Fail(error, "bind " + host + ":" + std::to_string(port));
    return Socket();
  }
  if (::listen(sock.fd(), backlog) != 0) {
    Fail(error, "listen");
    return Socket();
  }
  if (bound_port != nullptr) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual),
                      &len) != 0) {
      Fail(error, "getsockname");
      return Socket();
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Socket AcceptTcp(const Socket& listener, std::string* error) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    Fail(error, "accept");
    return Socket();
  }
}

Socket ConnectTcp(const std::string& host, int port, std::string* error) {
  sockaddr_in addr;
  if (!ParseAddress(host, port, &addr, error)) return Socket();
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    Fail(error, "socket");
    return Socket();
  }
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Fail(error, "connect " + host + ":" + std::to_string(port));
    return Socket();
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

int64_t RecvSome(const Socket& sock, char* buf, size_t cap,
                 const NetRetryOptions& retry, std::string* error) {
  if (!RideOutInjectedFaults(FaultSite::kNetRead, retry, error)) return -1;
  for (;;) {
    const ssize_t n = ::recv(sock.fd(), buf, cap, 0);
    if (n >= 0) return static_cast<int64_t>(n);
    if (errno == EINTR) continue;
    Fail(error, "recv");
    return -1;
  }
}

int64_t RecvSomeTimeout(const Socket& sock, char* buf, size_t cap,
                        int timeout_ms, const NetRetryOptions& retry,
                        std::string* error) {
  if (timeout_ms >= 0) {
    pollfd pfd;
    pfd.fd = sock.fd();
    pfd.events = POLLIN;
    pfd.revents = 0;
    for (;;) {
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready > 0) break;  // readable, hung up, or errored: recv decides
      if (ready == 0) return kRecvTimedOut;
      if (errno == EINTR) continue;
      Fail(error, "poll");
      return -1;
    }
  }
  return RecvSome(sock, buf, cap, retry, error);
}

bool SendAll(const Socket& sock, const std::string& bytes,
             const NetRetryOptions& retry, std::string* error) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    if (!RideOutInjectedFaults(FaultSite::kNetWrite, retry, error)) {
      return false;
    }
    // MSG_NOSIGNAL: a dead peer yields EPIPE instead of killing the
    // process with SIGPIPE.
    const ssize_t n = ::send(sock.fd(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Fail(error, "send");
  }
  return true;
}

}  // namespace net
}  // namespace sop
