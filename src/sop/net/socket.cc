#include "sop/net/socket.h"

#include <algorithm>

#include "sop/common/clock.h"
#include "sop/common/fault.h"
#include "sop/net/transport.h"
#include "sop/obs/trace.h"

namespace sop {
namespace net {

namespace {

// Consults the armed injector at `site`; retries injected transient
// failures with bounded backoff (through the active clock, so a virtual
// clock makes the backoff instantaneous). Returns false when the retry
// budget is exhausted (treated as a hard connection failure by the
// caller).
bool RideOutInjectedFaults(FaultSite site, const NetRetryOptions& retry,
                           std::string* error) {
  FaultInjector* injector = FaultInjector::Armed();
  if (injector == nullptr) return true;
  int attempt = 1;
  int backoff_us = retry.backoff_initial_us;
  while (injector->ShouldFail(site)) {
    SOP_COUNTER_ADD("net/retries", 1);
    ++attempt;
    if (attempt > retry.max_attempts) {
      if (error != nullptr) {
        *error = std::string("injected ") + FaultSiteName(site) +
                 " failure persisted through retries";
      }
      return false;
    }
    SleepMicros(backoff_us);
    backoff_us = std::min(backoff_us * 2, retry.backoff_max_us);
  }
  return true;
}

bool SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

void Socket::ShutdownBoth() {
  if (conn_ != nullptr) conn_->ShutdownBoth();
  if (listener_ != nullptr) listener_->Shutdown();
}

void Socket::ShutdownRead() {
  if (conn_ != nullptr) conn_->ShutdownRead();
  if (listener_ != nullptr) listener_->Shutdown();
}

void Socket::Close() {
  if (conn_ != nullptr) {
    conn_->Close();
    conn_.reset();
  }
  if (listener_ != nullptr) {
    listener_->Close();
    listener_.reset();
  }
}

Socket ListenTcp(const std::string& host, int port, int backlog,
                 int* bound_port, std::string* error) {
  std::unique_ptr<TransportListener> listener =
      Transport::Active()->Listen(host, port, backlog, error);
  if (listener == nullptr) return Socket();
  if (bound_port != nullptr) *bound_port = listener->port();
  return Socket(std::move(listener));
}

Socket AcceptTcp(const Socket& listener, std::string* error) {
  if (listener.listener() == nullptr) {
    SetError(error, "accept: not a listening socket");
    return Socket();
  }
  std::unique_ptr<TransportConn> conn = listener.listener()->Accept(error);
  if (conn == nullptr) return Socket();
  return Socket(std::move(conn));
}

Socket ConnectTcp(const std::string& host, int port, std::string* error) {
  std::unique_ptr<TransportConn> conn =
      Transport::Active()->Connect(host, port, error);
  if (conn == nullptr) return Socket();
  return Socket(std::move(conn));
}

int64_t RecvSome(const Socket& sock, char* buf, size_t cap,
                 const NetRetryOptions& retry, std::string* error) {
  if (sock.conn() == nullptr) {
    SetError(error, "recv: not a connected socket");
    return -1;
  }
  if (!RideOutInjectedFaults(FaultSite::kNetRead, retry, error)) return -1;
  return sock.conn()->Recv(buf, cap, /*timeout_ms=*/-1, error);
}

int64_t RecvSomeTimeout(const Socket& sock, char* buf, size_t cap,
                        int timeout_ms, const NetRetryOptions& retry,
                        std::string* error) {
  if (sock.conn() == nullptr) {
    SetError(error, "recv: not a connected socket");
    return -1;
  }
  if (!RideOutInjectedFaults(FaultSite::kNetRead, retry, error)) return -1;
  return sock.conn()->Recv(buf, cap, timeout_ms, error);
}

bool SendAll(const Socket& sock, const std::string& bytes,
             const NetRetryOptions& retry, std::string* error) {
  if (sock.conn() == nullptr) {
    return SetError(error, "send: not a connected socket");
  }
  if (!RideOutInjectedFaults(FaultSite::kNetWrite, retry, error)) {
    return false;
  }
  return sock.conn()->Send(bytes.data(), bytes.size(), error);
}

}  // namespace net
}  // namespace sop
