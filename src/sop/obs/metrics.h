// Observability core: a process-wide registry of named counters, gauges
// and nearest-rank histograms, plus the free-standing metric value types.
//
// Design constraints (DESIGN.md Sec. 11):
//   * Hot paths are instrumented through the macros in obs/trace.h, which
//     compile to nothing under -DSOP_NO_OBS and cost exactly one
//     well-predicted branch per site when compiled in but runtime-disabled
//     (the default). Enabling or disabling observability NEVER changes a
//     detector's emitted outliers — only what is measured about producing
//     them.
//   * Metric handles returned by the registry are stable for the process
//     lifetime: Reset() zeroes values but never invalidates pointers, so
//     call sites may cache a handle once (the macros do this with a
//     function-local static).
//   * Counters and gauges are lock-free atomics so partition-parallel
//     detectors (detector/partitioned.h) can record from pool threads;
//     histograms take a mutex, and are therefore reserved for per-batch /
//     per-scan granularity rather than per-candidate.
//
// The registry is process-global on purpose: instrumentation sites live in
// layers (K-SKY, LSky, the grid index) that know nothing about which
// detector instance or run they belong to. Run-scoped attribution is done
// by the driver: snapshot + reset around each run (see sop_cli
// --metrics-out and bench/figure.cc).

#ifndef SOP_OBS_METRICS_H_
#define SOP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sop/common/stopwatch.h"

namespace sop {
namespace obs {

/// Whether observability instrumentation is compiled into this build.
/// -DSOP_NO_OBS turns every obs/trace.h macro into a no-op and makes
/// Enabled() constant-fold to false.
#if defined(SOP_NO_OBS)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace internal {
// The runtime gate. Read on every instrumented hot-path branch; relaxed is
// fine — there is no ordering contract between toggling and in-flight
// recordings.
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True iff instrumentation is compiled in AND runtime-enabled. This is
/// the single branch every instrumentation site pays when disabled.
inline bool Enabled() {
  return kCompiledIn && internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns metric recording on or off at runtime. Off by default. Under
/// -DSOP_NO_OBS this stores the flag but Enabled() still returns false.
void SetEnabled(bool enabled);

/// Monotonically increasing event count. Thread-safe.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written (or maximum) instantaneous value. Thread-safe.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (peak tracking).
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Nearest-rank percentile of an ascending-sorted sample; 0 when empty.
/// (Shared with detector/metrics.cc — the engine's batch-latency
/// percentiles use the same math.)
double NearestRankPercentile(const std::vector<double>& sorted, double pct);

/// Sample distribution with exact count/sum/min/max and nearest-rank
/// percentiles over a bounded, deterministically decimated sample buffer:
/// when the buffer fills, every other stored sample is dropped and the
/// keep-stride doubles, so memory stays bounded on unbounded streams while
/// quantiles remain representative. Thread-safe (mutex per Record).
class Histogram {
 public:
  struct Stats {
    uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  void Record(double v);
  Stats ComputeStats() const;
  uint64_t count() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;  // every stride_-th recorded value
  uint64_t stride_ = 1;
  uint64_t seen_ = 0;  // total Record calls, for stride selection
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Point-in-time copy of every registered metric (names sorted).
struct Snapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram::Stats> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Registry of named metrics. Get* registers on first use and returns a
/// process-lifetime-stable reference; concurrent Get*/record/snapshot
/// calls are safe. Names are hierarchical by convention
/// ("subsystem/metric", e.g. "ksky/scans", "query/3/outliers").
class MetricsRegistry {
 public:
  /// The process-wide registry used by the obs/trace.h macros. Never
  /// destroyed (intentionally leaked) so handles outlive static teardown.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Copies every metric's current value. Zero-valued counters/gauges are
  /// included (they are registered, hence meaningful).
  Snapshot TakeSnapshot() const;

  /// Zeroes every metric, keeping registrations (and handles) intact.
  void Reset();

 private:
  mutable std::mutex mu_;
  // node-based maps: values never move after insertion.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII timer recording its scope's wall-clock milliseconds into a
/// histogram; inert when constructed with null (the SOP_TRACE macro passes
/// null when observability is disabled).
class ScopedTrace {
 public:
  explicit ScopedTrace(Histogram* hist) : hist_(hist) {}
  ~ScopedTrace() {
    if (hist_ != nullptr) hist_->Record(watch_.ElapsedMillis());
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  Histogram* hist_;
  Stopwatch watch_;
};

}  // namespace obs
}  // namespace sop

#endif  // SOP_OBS_METRICS_H_
