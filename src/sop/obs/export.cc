#include "sop/obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace sop {
namespace obs {

namespace {

// Shortest round-trippable representation without scientific-notation
// surprises for typical metric magnitudes; always finite and JSON-legal.
std::string FormatDouble(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

struct HistField {
  const char* name;
  double value;
};

std::vector<HistField> HistogramFields(const Histogram::Stats& h) {
  return {{"count", static_cast<double>(h.count)},
          {"sum", h.sum},
          {"mean", h.mean},
          {"min", h.min},
          {"max", h.max},
          {"p50", h.p50},
          {"p90", h.p90},
          {"p95", h.p95},
          {"p99", h.p99}};
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToJson(const Snapshot& snapshot) {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, stats] : snapshot.histograms) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": {";
    bool first_field = true;
    for (const HistField& f : HistogramFields(stats)) {
      if (!first_field) out += ", ";
      first_field = false;
      out += "\"" + std::string(f.name) + "\": " + FormatDouble(f.value);
    }
    out += "}";
  }
  out += "}}";
  return out;
}

std::string ToCsv(const Snapshot& snapshot) {
  std::string out = "kind,name,field,value\n";
  char buf[256];
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(buf, sizeof(buf), "counter,%s,value,%" PRIu64 "\n",
                  name.c_str(), value);
    out += buf;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(buf, sizeof(buf), "gauge,%s,value,%" PRId64 "\n",
                  name.c_str(), value);
    out += buf;
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    for (const HistField& f : HistogramFields(stats)) {
      std::snprintf(buf, sizeof(buf), "histogram,%s,%s,%s\n", name.c_str(),
                    f.name, FormatDouble(f.value).c_str());
      out += buf;
    }
  }
  return out;
}

std::string ToText(const Snapshot& snapshot) {
  std::string out;
  char buf[256];
  if (!snapshot.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      std::snprintf(buf, sizeof(buf), "  %-40s %20" PRIu64 "\n", name.c_str(),
                    value);
      out += buf;
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      std::snprintf(buf, sizeof(buf), "  %-40s %20" PRId64 "\n", name.c_str(),
                    value);
      out += buf;
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "histograms:\n";
    for (const auto& [name, h] : snapshot.histograms) {
      std::snprintf(buf, sizeof(buf),
                    "  %-40s count=%" PRIu64
                    " mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
                    name.c_str(), h.count, h.mean, h.p50, h.p95, h.p99, h.max);
      out += buf;
    }
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

bool WriteSnapshotFile(const Snapshot& snapshot, const std::string& path,
                       std::string* error) {
  std::string body;
  const auto ends_with = [&path](const char* suffix) {
    const size_t n = std::strlen(suffix);
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  if (ends_with(".json")) {
    body = ToJson(snapshot);
    body += "\n";
  } else if (ends_with(".csv")) {
    body = ToCsv(snapshot);
  } else {
    body = ToText(snapshot);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!(ok && closed)) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace sop
