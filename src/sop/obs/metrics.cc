#include "sop/obs/metrics.h"

#include <algorithm>

namespace sop {
namespace obs {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

double NearestRankPercentile(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      pct / 100.0 * static_cast<double>(sorted.size()) + 0.5);
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

namespace {
// Bounds the stored sample buffer; past this, the buffer is halved and the
// keep-stride doubles. 64Ki doubles = 512KiB worst case per histogram.
constexpr size_t kMaxSamples = 1 << 16;
}  // namespace

void Histogram::Record(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (seen_++ % stride_ == 0) {
    if (samples_.size() >= kMaxSamples) {
      // Deterministic decimation: keep every other stored sample.
      for (size_t i = 0; 2 * i < samples_.size(); ++i) {
        samples_[i] = samples_[2 * i];
      }
      samples_.resize(samples_.size() / 2);
      stride_ *= 2;
      if ((seen_ - 1) % stride_ != 0) return;  // this sample now skipped
    }
    samples_.push_back(v);
  }
}

Histogram::Stats Histogram::ComputeStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.count = count_;
  if (count_ == 0) return stats;
  stats.sum = sum_;
  stats.mean = sum_ / static_cast<double>(count_);
  stats.min = min_;
  stats.max = max_;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  stats.p50 = NearestRankPercentile(sorted, 50.0);
  stats.p90 = NearestRankPercentile(sorted, 90.0);
  stats.p95 = NearestRankPercentile(sorted, 95.0);
  stats.p99 = NearestRankPercentile(sorted, 99.0);
  return stats;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
  stride_ = 1;
  seen_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrumentation sites cache handles in function
  // statics whose last use may happen during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

Snapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->ComputeStats();
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace obs
}  // namespace sop
