// Snapshot exporters: JSON (machine ingestion), CSV (spreadsheets /
// plotting), and aligned human-readable text. All three render the same
// Snapshot; none touch the registry, so exporting is safe while recording
// continues.

#ifndef SOP_OBS_EXPORT_H_
#define SOP_OBS_EXPORT_H_

#include <string>

#include "sop/obs/metrics.h"

namespace sop {
namespace obs {

/// One JSON object: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum, mean, min, max, p50, p90, p95,
/// p99}}}. Names are JSON-escaped; numbers are finite (empty histograms
/// render as zeros).
std::string ToJson(const Snapshot& snapshot);

/// CSV with header `kind,name,field,value`; counters and gauges emit one
/// `value` row, histograms one row per statistic.
std::string ToCsv(const Snapshot& snapshot);

/// Aligned "name value" lines grouped by kind, for terminal consumption.
std::string ToText(const Snapshot& snapshot);

/// Writes `snapshot` to `path`, picking the format from the extension:
/// ".json" -> JSON, ".csv" -> CSV, anything else -> text. Returns false
/// and fills `*error` (if non-null) when the file cannot be written.
bool WriteSnapshotFile(const Snapshot& snapshot, const std::string& path,
                       std::string* error);

/// Escapes `s` for use inside a JSON string literal (quotes not added).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace sop

#endif  // SOP_OBS_EXPORT_H_
