// Hot-path instrumentation macros over obs/metrics.h.
//
// Every macro takes a STRING LITERAL metric name: the expansion binds the
// name to the metric handle once per call site (function-local static), so
// the steady-state cost when enabled is one predictable branch plus one
// relaxed atomic op — no hashing, no allocation. When runtime-disabled
// (the default) each site costs exactly one branch and evaluates neither
// the name nor the value expression. Under -DSOP_NO_OBS the macros expand
// to nothing at all: the value expression is swallowed unevaluated, so the
// instrumented binary is bit-identical in behaviour to an uninstrumented
// one.
//
// For metrics whose names are computed at runtime (e.g. per-query
// counters), call MetricsRegistry::Global() directly behind an
// obs::Enabled() check and cache the handles yourself — see
// detector/engine.cc.
//
//   SOP_COUNTER_ADD("ksky/scans", 1);
//   SOP_GAUGE_SET("sop/alive_points", buffer_.size());
//   SOP_HISTOGRAM_RECORD("ksky/skyband_size", skyband->size());
//   { SOP_TRACE("session/rebuild_ms"); Rebuild(boundary); }

#ifndef SOP_OBS_TRACE_H_
#define SOP_OBS_TRACE_H_

#include "sop/obs/metrics.h"

// True iff instrumentation is compiled in and runtime-enabled; use to
// guard multi-statement recording blocks with a single branch.
#define SOP_OBS_ENABLED() (::sop::obs::Enabled())

#if defined(SOP_NO_OBS)

// The value operand is referenced unevaluated (sizeof) so variables that
// exist only to feed a metric do not trip -Wunused under -DSOP_NO_OBS.
#define SOP_COUNTER_ADD(name, n) \
  do {                           \
    (void)sizeof(n);             \
  } while (0)
#define SOP_GAUGE_SET(name, v) \
  do {                         \
    (void)sizeof(v);           \
  } while (0)
#define SOP_GAUGE_SET_MAX(name, v) \
  do {                             \
    (void)sizeof(v);               \
  } while (0)
#define SOP_HISTOGRAM_RECORD(name, v) \
  do {                                \
    (void)sizeof(v);                  \
  } while (0)
#define SOP_TRACE(name) ((void)0)

#else  // !SOP_NO_OBS

#define SOP_OBS_INTERNAL_CONCAT2(a, b) a##b
#define SOP_OBS_INTERNAL_CONCAT(a, b) SOP_OBS_INTERNAL_CONCAT2(a, b)

#define SOP_COUNTER_ADD(name, n)                                    \
  do {                                                              \
    if (::sop::obs::Enabled()) {                                    \
      static ::sop::obs::Counter& sop_obs_handle =                  \
          ::sop::obs::MetricsRegistry::Global().GetCounter(name);   \
      sop_obs_handle.Add(static_cast<uint64_t>(n));                 \
    }                                                               \
  } while (0)

#define SOP_GAUGE_SET(name, v)                                      \
  do {                                                              \
    if (::sop::obs::Enabled()) {                                    \
      static ::sop::obs::Gauge& sop_obs_handle =                    \
          ::sop::obs::MetricsRegistry::Global().GetGauge(name);     \
      sop_obs_handle.Set(static_cast<int64_t>(v));                  \
    }                                                               \
  } while (0)

#define SOP_GAUGE_SET_MAX(name, v)                                  \
  do {                                                              \
    if (::sop::obs::Enabled()) {                                    \
      static ::sop::obs::Gauge& sop_obs_handle =                    \
          ::sop::obs::MetricsRegistry::Global().GetGauge(name);     \
      sop_obs_handle.SetMax(static_cast<int64_t>(v));               \
    }                                                               \
  } while (0)

#define SOP_HISTOGRAM_RECORD(name, v)                               \
  do {                                                              \
    if (::sop::obs::Enabled()) {                                    \
      static ::sop::obs::Histogram& sop_obs_handle =                \
          ::sop::obs::MetricsRegistry::Global().GetHistogram(name); \
      sop_obs_handle.Record(static_cast<double>(v));                \
    }                                                               \
  } while (0)

// Times the enclosing scope into histogram `name` (milliseconds). Declares
// a uniquely named local; one per line.
#define SOP_TRACE(name)                                                \
  ::sop::obs::ScopedTrace SOP_OBS_INTERNAL_CONCAT(sop_obs_trace_,      \
                                                  __LINE__)(           \
      ::sop::obs::Enabled()                                            \
          ? &::sop::obs::MetricsRegistry::Global().GetHistogram(name)  \
          : nullptr)

#endif  // SOP_NO_OBS

#endif  // SOP_OBS_TRACE_H_
