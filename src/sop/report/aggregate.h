// Aggregation of per-query emissions into the paper's output format.
//
// Alg. 3 describes the outlier set as recording "one point p along with
// the member queries q_i that classify p as outlier". Detectors in this
// repository emit per-query results (QueryResult); OutlierAggregator
// pivots them into that per-point view, which is what an analyst-facing
// application actually shows ("transaction X was flagged by analysts 2
// and 5").

#ifndef SOP_REPORT_AGGREGATE_H_
#define SOP_REPORT_AGGREGATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sop/detector/detector.h"
#include "sop/query/workload.h"

namespace sop {
namespace report {

/// One flagged point at one boundary, with every query that flagged it.
struct PointReport {
  Seq seq = 0;
  int64_t boundary = 0;
  std::vector<size_t> queries;  // ascending query indices
};

/// Collects QueryResults (feed it as the driver's ResultSink) and exposes
/// the per-point pivot. Results may arrive in any boundary order, but all
/// results of one boundary must arrive before those of a later one (the
/// driver guarantees this).
class OutlierAggregator {
 public:
  /// Ingests one emission.
  void Add(const QueryResult& result);

  /// Boundaries seen, ascending.
  std::vector<int64_t> Boundaries() const;

  /// Reports at `boundary`, ascending by seq. Empty if none.
  std::vector<PointReport> ReportsAt(int64_t boundary) const;

  /// Number of distinct (boundary, point) flag events.
  size_t NumFlaggedPointWindows() const;

  /// Number of distinct points ever flagged.
  size_t NumDistinctPoints() const;

  /// Human-readable dump of one boundary ("p17 <- q0,q3\n...").
  std::string ToString(int64_t boundary) const;

 private:
  // boundary -> seq -> flagging queries.
  std::map<int64_t, std::map<Seq, std::vector<size_t>>> by_boundary_;
};

}  // namespace report
}  // namespace sop

#endif  // SOP_REPORT_AGGREGATE_H_
