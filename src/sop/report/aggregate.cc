#include "sop/report/aggregate.h"

#include <set>
#include <sstream>

namespace sop {
namespace report {

void OutlierAggregator::Add(const QueryResult& result) {
  auto& at_boundary = by_boundary_[result.boundary];
  for (const Seq s : result.outliers) {
    at_boundary[s].push_back(result.query_index);
  }
}

std::vector<int64_t> OutlierAggregator::Boundaries() const {
  std::vector<int64_t> boundaries;
  boundaries.reserve(by_boundary_.size());
  for (const auto& [boundary, points] : by_boundary_) {
    boundaries.push_back(boundary);
  }
  return boundaries;
}

std::vector<PointReport> OutlierAggregator::ReportsAt(int64_t boundary) const {
  std::vector<PointReport> reports;
  const auto it = by_boundary_.find(boundary);
  if (it == by_boundary_.end()) return reports;
  reports.reserve(it->second.size());
  for (const auto& [seq, queries] : it->second) {
    PointReport report;
    report.seq = seq;
    report.boundary = boundary;
    report.queries = queries;  // ascending: driver emits in query order
    reports.push_back(std::move(report));
  }
  return reports;
}

size_t OutlierAggregator::NumFlaggedPointWindows() const {
  size_t n = 0;
  for (const auto& [boundary, points] : by_boundary_) n += points.size();
  return n;
}

size_t OutlierAggregator::NumDistinctPoints() const {
  std::set<Seq> distinct;
  for (const auto& [boundary, points] : by_boundary_) {
    for (const auto& [seq, queries] : points) distinct.insert(seq);
  }
  return distinct.size();
}

std::string OutlierAggregator::ToString(int64_t boundary) const {
  std::ostringstream out;
  for (const PointReport& report : ReportsAt(boundary)) {
    out << "p" << report.seq << " <- ";
    for (size_t i = 0; i < report.queries.size(); ++i) {
      if (i > 0) out << ",";
      out << "q" << report.queries[i];
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace report
}  // namespace sop
