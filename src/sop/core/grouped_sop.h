// The paper's Sec. 3.2 strawman: handle a mixed-k workload by running one
// *independent* K-SKY skyband query per k-group, instead of SOP's single
// integrated LSky with the Def. 6 skyband point rule.
//
// "However this solution requires the independent identification and
//  maintenance of the skyband points for each group of queries. Since a
//  large number of skyband points are likely to be shared across these
//  skyband queries, this naive solution inevitably leads to significant
//  wastage of CPU and memory resources." (Sec. 3.2)
//
// Kept as a comparison point (bench/ablation_group_sharing) to quantify
// exactly that wastage. Results are identical to SopDetector's.

#ifndef SOP_CORE_GROUPED_SOP_H_
#define SOP_CORE_GROUPED_SOP_H_

#include "sop/core/sop_detector.h"
#include "sop/detector/partitioned.h"

namespace sop {

/// One independent SopDetector per distinct k value in the workload.
/// Requires a single attribute set (as SopDetector does).
class GroupedSopDetector : public PartitionedDetector {
 public:
  explicit GroupedSopDetector(const Workload& workload)
      : GroupedSopDetector(workload, SopDetector::Options()) {}
  GroupedSopDetector(const Workload& workload, SopDetector::Options options);

  /// In-place overlay swap, mirroring SopDetector::ApplyWorkload: succeeds
  /// iff `next` has the same number of k-groups and every group's
  /// sub-workload is overlay-only for its child detector (classification
  /// runs on every child before any child is mutated, so failure leaves
  /// the detector unchanged). Returns false when the caller must
  /// rebuild-and-replay instead.
  bool ApplyWorkload(const Workload& next);
};

}  // namespace sop

#endif  // SOP_CORE_GROUPED_SOP_H_
