#include "sop/core/multi_attribute.h"

namespace sop {

namespace {

std::vector<int> AttributeSetKeys(const Workload& workload) {
  std::vector<int> keys;
  keys.reserve(workload.num_queries());
  for (const OutlierQuery& q : workload.queries()) {
    keys.push_back(q.attribute_set);
  }
  return keys;
}

}  // namespace

MultiAttributeDetector::MultiAttributeDetector(
    const Workload& workload, const ChildDetectorFactory& factory)
    : PartitionedDetector("multiattr", workload, AttributeSetKeys(workload),
                          factory) {
  set_name(std::string("multiattr-") + child(0).name());
}

}  // namespace sop
