// SopSession: a long-running detection session whose workload can change
// while the stream flows.
//
// The paper's motivating scenario has analysts submitting and retiring
// outlier requests continuously, but SOP compiles the workload (layers,
// k-groups, Def-6 table) up front. SopSession bridges the gap: it retains
// the raw points of a configurable history window and, whenever the query
// set changes, compiles a fresh SopDetector and replays the retained
// history through it — so a freshly added query immediately sees a fully
// populated window (up to the retention limit) instead of starting cold.
//
// Queries are addressed by stable ids that survive other queries'
// removal; results carry those ids.
//
// By default the session compiles SopDetector (the paper's algorithm); a
// DetectorBuilder hook swaps in any OutlierDetector factory (the serving
// layer, net/server.h, uses it to host every detector the string factory
// knows). Because workload changes are always realized as
// rebuild-and-replay over retained history, the hook needs nothing beyond
// plain Advance() from the detector.
//
// SaveState/LoadState serialize the session — registered queries, stream
// position, retained history — as one framed, CRC-checked blob
// (common/frame.h). A restored session rebuilds its detector lazily by
// replaying that history, so restore works for every detector builder, at
// the cost of re-advancing up to history_window of stream.

#ifndef SOP_CORE_SESSION_H_
#define SOP_CORE_SESSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sop/core/sop_detector.h"
#include "sop/query/workload.h"

namespace sop {

/// Stable identifier of a registered query within a session.
using QueryId = int64_t;

/// One emission of one registered query.
struct SessionResult {
  QueryId query_id = 0;
  int64_t boundary = 0;
  std::vector<Seq> outliers;
  /// True when the delivery path knows this answer's window overlaps data
  /// that was lost (e.g. the serving layer shed emissions under overload).
  /// Set by session hosts, never by the session itself.
  bool degraded = false;
};

/// Builds the detector a session compiles its current workload into.
using DetectorBuilder =
    std::function<std::unique_ptr<OutlierDetector>(const Workload&)>;

/// Callback receiving each due query's emission, mirroring the engine's
/// ResultSink (detector/engine.h) for streaming consumption.
using SessionResultSink = std::function<void(const SessionResult&)>;

/// Dynamic multi-query outlier detection session. Not thread-safe.
class SopSession {
 public:
  /// `history_window` bounds how much stream history (in window-key units)
  /// is retained for replay when the workload changes; queries with larger
  /// windows still work but start with partially populated windows after a
  /// change. Pass the largest window you expect to register.
  SopSession(WindowType window_type, Metric metric, int64_t history_window);

  /// Registers a query; takes effect at the next Advance call. The query
  /// must validate against an empty workload's rules (positive r/k/win/
  /// slide; full attribute space only).
  QueryId AddQuery(const OutlierQuery& query);

  /// Unregisters a query. Returns false if the id is unknown.
  bool RemoveQuery(QueryId id);

  size_t num_queries() const { return registered_.size(); }

  /// Ids of every registered query, ascending.
  std::vector<QueryId> RegisteredQueryIds() const;

  /// The last boundary Advance accepted — INT64_MIN before the first batch.
  /// Survives SaveState/LoadState, so a restored session's host can keep
  /// enforcing boundary monotonicity where the stream actually left off.
  int64_t last_boundary() const { return last_boundary_; }

  /// Replaces the detector factory (default: SopDetector). Takes effect at
  /// the next rebuild; call before the first Advance for a uniform run.
  void SetDetectorBuilder(DetectorBuilder builder);

  /// Feeds a batch ending at `boundary` (boundaries must be multiples of
  /// every registered slide's gcd — use slide values with a common
  /// quantum). Unlike OutlierDetector::Advance, the session assigns the
  /// points' arrival sequence numbers itself (any incoming seq values are
  /// overwritten); results refer to those assigned seqs, 0-based from the
  /// session's first point. Returns the emissions of every registered
  /// query due at `boundary`.
  std::vector<SessionResult> Advance(std::vector<Point> batch,
                                     int64_t boundary);

  /// Sink-style variant of Advance: instead of materializing a vector,
  /// invokes `sink` once per due query's emission (in ascending query-id
  /// order), matching the engine's ResultSink shape. Same contract as the
  /// vector overload otherwise.
  void Advance(std::vector<Point> batch, int64_t boundary,
               const SessionResultSink& sink);

  /// Approximate evidence + history bytes held.
  size_t MemoryBytes() const;

  /// Serializes the session — configuration guards, registered queries,
  /// stream position, retained history — into one framed, checksummed blob.
  std::string SaveState() const;

  /// Restores a SaveState blob into a freshly constructed session whose
  /// constructor arguments (window type, metric, history window) match the
  /// saved ones. The detector is rebuilt lazily on the next Advance by
  /// replaying the restored history. Returns false with a diagnostic in
  /// `*error` (if non-null) on corruption, version or configuration
  /// mismatch, leaving the session unchanged.
  bool LoadState(std::string_view bytes, std::string* error = nullptr);

 private:
  // Rebuilds detector_ from the registered queries and replays history.
  void Rebuild(int64_t up_to_boundary);

  WindowType window_type_;
  Metric metric_;
  int64_t history_window_;
  QueryId next_id_ = 1;
  std::map<QueryId, OutlierQuery> registered_;  // insertion-ordered by id
  bool dirty_ = false;  // workload changed since detector_ was built

  // Retained history: batches in arrival order with their boundaries.
  struct HistoryBatch {
    std::vector<Point> points;
    int64_t boundary;
  };
  std::deque<HistoryBatch> history_;

  DetectorBuilder builder_;  // null = build SopDetector
  std::unique_ptr<OutlierDetector> detector_;
  std::vector<QueryId> detector_query_ids_;  // workload index -> id
  int64_t last_boundary_ = INT64_MIN;
  Seq next_seq_ = 0;
};

}  // namespace sop

#endif  // SOP_CORE_SESSION_H_
