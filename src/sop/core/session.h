// SopSession: a long-running detection session whose workload can change
// while the stream flows.
//
// The paper's motivating scenario has analysts submitting and retiring
// outlier requests continuously. SopSession realizes each workload change
// through a tiered path that takes the cheapest safe route (DESIGN.md
// Sec. 14):
//
//   1. Overlay swap — when the default SopDetector is in use and the new
//      workload is covered by the detector's compiled basis (remove any
//      query; add a query whose r is an existing layer, k fits the k
//      envelope and win fits the swift window), the per-query overlay is
//      recompiled in place between batches: no rebuild, no history replay,
//      O(|queries|) cost. The session compiles its detectors with elastic
//      basis headroom by default (see SetBasisHeadroom) precisely so this
//      path covers every same-layer add.
//   2. Rebuild-and-replay — everything else (basis growth, custom
//      DetectorBuilder hooks): compile a fresh detector and replay the
//      retained history window through it, so a freshly added query
//      immediately sees a fully populated window (up to the retention
//      limit) instead of starting cold.
//
// Queries are addressed by stable ids that survive other queries'
// removal; results carry those ids.
//
// By default the session compiles SopDetector (the paper's algorithm); a
// DetectorBuilder hook swaps in any OutlierDetector factory (the serving
// layer, net/server.h, uses it to host every detector the string factory
// knows). Workload changes under a builder hook are always realized as
// rebuild-and-replay, so the hook needs nothing beyond plain Advance()
// from the detector.
//
// SaveState/LoadState serialize the session — registered queries, basis
// headroom and the live detector's basis coverage, stream position,
// retained history — as one framed, CRC-checked blob (common/frame.h). A
// restored session rebuilds its detector lazily by replaying that
// history; the saved basis coverage is folded into the rebuild's headroom
// so changes that were overlay-only before the restart stay overlay-only
// after it.

#ifndef SOP_CORE_SESSION_H_
#define SOP_CORE_SESSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sop/core/sop_detector.h"
#include "sop/query/workload.h"

namespace sop {

/// Stable identifier of a registered query within a session.
using QueryId = int64_t;

/// One emission of one registered query.
struct SessionResult {
  QueryId query_id = 0;
  int64_t boundary = 0;
  std::vector<Seq> outliers;
  /// True when the delivery path knows this answer's window overlaps data
  /// that was lost (e.g. the serving layer shed emissions under overload).
  /// Set by session hosts, never by the session itself.
  bool degraded = false;
};

/// Builds the detector a session compiles its current workload into.
using DetectorBuilder =
    std::function<std::unique_ptr<OutlierDetector>(const Workload&)>;

/// Callback receiving each due query's emission, mirroring the engine's
/// ResultSink (detector/engine.h) for streaming consumption.
using SessionResultSink = std::function<void(const SessionResult&)>;

/// How the session has realized workload changes so far (also exported as
/// session/change/{overlay,basis_extend,rebuild} and session/replayed_*
/// obs counters).
struct SessionChangeStats {
  /// Changes applied as in-place overlay swaps (or by dropping the last
  /// query): no detector rebuild, no history replay.
  uint64_t overlay_changes = 0;
  /// Rebuilds that were forced by basis growth specifically (a new r
  /// layer, k beyond the envelope, win beyond the swift window).
  uint64_t basis_extends = 0;
  /// All rebuild-and-replay realizations (includes basis_extends).
  uint64_t rebuilds = 0;
  /// History batches / points re-advanced by those rebuilds.
  uint64_t replayed_batches = 0;
  uint64_t replayed_points = 0;
};

/// Dynamic multi-query outlier detection session. Not thread-safe.
class SopSession {
 public:
  /// `history_window` bounds how much stream history (in window-key units)
  /// is retained for replay when the workload changes; queries with larger
  /// windows still work but start with partially populated windows after a
  /// change. Pass the largest window you expect to register.
  SopSession(WindowType window_type, Metric metric, int64_t history_window);

  /// Registers a query; takes effect at the next Advance call. The query
  /// must validate against an empty workload's rules (positive r/k/win/
  /// slide; full attribute space only).
  QueryId AddQuery(const OutlierQuery& query);

  /// Unregisters a query. Returns false if the id is unknown.
  bool RemoveQuery(QueryId id);

  size_t num_queries() const { return registered_.size(); }

  /// Ids of every registered query, ascending.
  std::vector<QueryId> RegisteredQueryIds() const;

  /// The parameters of registered query `id`; nullptr when unknown. The
  /// pointer is invalidated by the next Add/RemoveQuery or LoadState.
  const OutlierQuery* FindQuery(QueryId id) const;

  /// The last boundary Advance accepted — INT64_MIN before the first batch.
  /// Survives SaveState/LoadState, so a restored session's host can keep
  /// enforcing boundary monotonicity where the stream actually left off.
  int64_t last_boundary() const { return last_boundary_; }

  /// The arrival sequence number the next accepted point will get — equal
  /// to the total number of points ever accepted. Survives SaveState/
  /// LoadState; the serving layer reports it in acks so a scale-out router
  /// can keep its local->global sequence maps anchored (cluster/router.h).
  Seq next_seq() const { return next_seq_; }

  /// Replaces the detector factory (default: SopDetector). Takes effect at
  /// the next rebuild; call before the first Advance for a uniform run.
  /// Sessions with a builder hook always realize workload changes as
  /// rebuild-and-replay (the hook's detectors are opaque); pass nullptr —
  /// or call UseSopDetector — to return to the default in-process
  /// SopDetector and its tiered change path.
  void SetDetectorBuilder(DetectorBuilder builder);

  /// Routes detector construction through the in-process SopDetector with
  /// `options`, clearing any DetectorBuilder, so the tiered change path
  /// (overlay swaps) is available. `options.headroom` is ignored: the
  /// session owns basis headroom (SetBasisHeadroom).
  void UseSopDetector(SopDetector::Options options);

  /// Sets the basis headroom compiled into future SopDetector rebuilds
  /// (default: PlanHeadroom::Elastic(), making every same-layer add
  /// overlay-only). Takes effect at the next rebuild; has no effect under
  /// a DetectorBuilder hook. Pass PlanHeadroom() for the exact paper
  /// basis, which trades cheap adds for maximal skyband pruning.
  void SetBasisHeadroom(PlanHeadroom headroom);

  /// How workload changes have been realized so far.
  const SessionChangeStats& change_stats() const { return change_stats_; }

  /// Feeds a batch ending at `boundary` (boundaries must be multiples of
  /// every registered slide's gcd — use slide values with a common
  /// quantum). Unlike OutlierDetector::Advance, the session assigns the
  /// points' arrival sequence numbers itself (any incoming seq values are
  /// overwritten); results refer to those assigned seqs, 0-based from the
  /// session's first point. Returns the emissions of every registered
  /// query due at `boundary`.
  std::vector<SessionResult> Advance(std::vector<Point> batch,
                                     int64_t boundary);

  /// Sink-style variant of Advance: instead of materializing a vector,
  /// invokes `sink` once per due query's emission (in ascending query-id
  /// order), matching the engine's ResultSink shape. Same contract as the
  /// vector overload otherwise.
  void Advance(std::vector<Point> batch, int64_t boundary,
               const SessionResultSink& sink);

  /// Approximate evidence + history bytes held.
  size_t MemoryBytes() const;

  /// Serializes the session — configuration guards, registered queries,
  /// basis headroom and coverage, stream position, retained history — into
  /// one framed, checksummed blob.
  std::string SaveState() const;

  /// Restores a SaveState blob into a freshly constructed session whose
  /// constructor arguments (window type, metric, history window) match the
  /// saved ones. The detector is rebuilt lazily on the next Advance by
  /// replaying the restored history. Returns false with a diagnostic in
  /// `*error` (if non-null) on corruption, version or configuration
  /// mismatch, leaving the session unchanged.
  bool LoadState(std::string_view bytes, std::string* error = nullptr);

 private:
  // The coverage floor of a previous incarnation's basis (from LoadState):
  // enough to re-derive, via headroom, a basis that covers at least what
  // the saved one covered.
  struct BasisSnapshot {
    std::vector<double> layer_r;
    int64_t k_env = 0;
    int64_t win = 0;

    bool empty() const { return layer_r.empty(); }
    void clear() {
      layer_r.clear();
      k_env = 0;
      win = 0;
    }
  };

  // Realizes pending workload changes (dirty_) through the cheapest safe
  // path. Called by Advance before the live batch is appended to history,
  // so a rebuild replays exactly the pre-change history and the live batch
  // is advanced once, by the new detector.
  void ApplyWorkloadChange();

  // Rebuilds detector_ from the registered queries and replays the whole
  // retained history through it.
  void Rebuild();

  // Builds the current workload; fills `ids` with the id of each workload
  // index.
  Workload BuildWorkload(std::vector<QueryId>* ids) const;

  // The headroom for the next rebuild: headroom_, widened to keep covering
  // everything a restored incarnation's basis covered.
  PlanHeadroom EffectiveHeadroom(const Workload& workload) const;

  WindowType window_type_;
  Metric metric_;
  int64_t history_window_;
  QueryId next_id_ = 1;
  std::map<QueryId, OutlierQuery> registered_;  // insertion-ordered by id
  bool dirty_ = false;  // workload changed since detector_ was built

  // Retained history: batches in arrival order with their boundaries.
  struct HistoryBatch {
    std::vector<Point> points;
    int64_t boundary;
  };
  std::deque<HistoryBatch> history_;

  DetectorBuilder builder_;  // null = build SopDetector
  SopDetector::Options sop_options_;  // for the default SopDetector path
  PlanHeadroom headroom_ = PlanHeadroom::Elastic();
  BasisSnapshot restored_basis_;  // non-empty: folded into the next rebuild
  std::unique_ptr<OutlierDetector> detector_;
  SopDetector* sop_detector_ = nullptr;  // detector_, iff default-built
  std::vector<QueryId> detector_query_ids_;  // workload index -> id
  SessionChangeStats change_stats_;
  int64_t last_boundary_ = INT64_MIN;
  Seq next_seq_ = 0;
};

}  // namespace sop

#endif  // SOP_CORE_SESSION_H_
