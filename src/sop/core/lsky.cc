#include "sop/core/lsky.h"

#include "sop/obs/trace.h"

namespace sop {

size_t LSky::ExpireBefore(int64_t min_key) {
  // Keys are non-increasing from front to back (descending seq), so the
  // expired entries form a suffix.
  size_t removed = 0;
  while (!entries_.empty() && entries_.back().key < min_key) {
    entries_.pop_back();
    ++removed;
  }
  if (removed > 0) SOP_COUNTER_ADD("lsky/evictions", removed);
  return removed;
}

int64_t LSky::CountWithin(int32_t max_layer, int64_t min_key,
                          int64_t stop_at) const {
  int64_t count = 0;
  for (const SkybandEntry& e : entries_) {
    if (e.key < min_key) break;  // older than the window: prefix ends
    if (e.layer <= max_layer) {
      if (++count >= stop_at) break;
    }
  }
  return count;
}

}  // namespace sop
