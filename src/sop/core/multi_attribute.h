// Divide-and-conquer wrapper for workloads whose queries detect outliers
// over different attribute subsets (paper Sec. 6.2, Fig. 10(b)).
//
// Queries over different attribute sets share no distance computations, so
// the workload is partitioned by attribute set and one child detector runs
// per partition; results are remapped to the original query indices. Any
// detector kind can serve as the child, so the same wrapper extends the
// baselines to multi-attribute workloads for fair comparison.

#ifndef SOP_CORE_MULTI_ATTRIBUTE_H_
#define SOP_CORE_MULTI_ATTRIBUTE_H_

#include "sop/detector/partitioned.h"

namespace sop {

/// Wraps one child detector per attribute set appearing in `workload`.
class MultiAttributeDetector : public PartitionedDetector {
 public:
  MultiAttributeDetector(const Workload& workload,
                         const ChildDetectorFactory& factory);
};

}  // namespace sop

#endif  // SOP_CORE_MULTI_ATTRIBUTE_H_
