#include "sop/core/ksky.h"

#include <algorithm>

#include "sop/common/check.h"
#include "sop/obs/trace.h"
#include "sop/stream/window.h"

namespace sop {

KSky::KSky(const WorkloadPlan* plan, DistanceFn dist, Options options)
    : plan_(plan), dist_(std::move(dist)), options_(options) {
  SOP_CHECK(plan_ != nullptr);
  layer_counts_.Reset(plan_->num_layers());
}

bool KSky::EvaluatePoint(const Point& p, const StreamBuffer& buffer,
                         Seq batch_first_seq, int64_t swift_window_start,
                         bool from_scratch, LSky* skyband,
                         const std::vector<Seq>* candidates) {
  stats_ = KSkyScanStats{};
  build_.Clear();
  layer1_count_ = 0;

  const WindowType type = buffer.type();
  const int num_layers = plan_->num_layers();
  bool keep_scanning = true;

  // Examines one buffer point: computes its distance and applies Def. 6.
  auto examine_seq = [&](Seq s) {
    const Point& c = buffer.At(s);
    ++stats_.candidates_examined;
    ++stats_.distances_computed;
    const double d = dist_(p, c);
    const int32_t layer = plan_->LayerOfDistance(d);
    if (layer > num_layers) return;  // nobody's neighbor (Def. 5 c3)
    keep_scanning = Examine(s, PointKey(c, type), layer);
  };

  // Scans points with seq in [lo, hi) from newest to oldest, computing
  // distances ("search from scratch" / the new-arrivals part of the
  // incremental rescan). With an index-provided candidate list the scan
  // walks that list instead of every buffer seq: the skipped points all
  // have distance > r_max, so the Examine sequence — and the built
  // skyband — is unchanged.
  auto scan_buffer_range = [&](Seq lo, Seq hi) {
    if (candidates != nullptr) {
      for (const Seq s : *candidates) {
        if (!keep_scanning || s < lo) break;  // seq-descending list
        if (s >= hi) continue;
        SOP_DCHECK(s != p.seq);
        examine_seq(s);
      }
      return;
    }
    for (Seq s = hi - 1; keep_scanning && s >= lo; --s) {
      if (s == p.seq) continue;
      examine_seq(s);
    }
  };

  if (from_scratch) {
    scan_buffer_range(buffer.first_seq(), buffer.next_seq());
  } else {
    SOP_DCHECK(p.seq < batch_first_seq);
    skyband->ExpireBefore(swift_window_start);
    // Least examination: new arrivals first (all newer than any previous
    // skyband entry), then the surviving previous entries with their
    // cached layers. Both sub-sequences are seq-descending, and so is
    // their concatenation.
    old_entries_.assign(skyband->entries().begin(), skyband->entries().end());
    scan_buffer_range(batch_first_seq, buffer.next_seq());
    if (build_.empty()) {
      // No new arrival entered the skyband, so the previous entries'
      // admission decisions replay unchanged (they were made against
      // exactly these entries, newest-first, and expiry only removed the
      // oldest — i.e., last-decided — ones). The expired skyband is
      // already exact; skip the re-admission pass.
      stats_.terminated_early = !keep_scanning;
      if (SOP_OBS_ENABLED()) RecordScanObs(skyband->size());
      return IsSafeForAll(p, *skyband);
    }
    for (const SkybandEntry& e : old_entries_) {
      if (!keep_scanning) break;
      ++stats_.candidates_examined;
      keep_scanning = Examine(e.seq, e.key, e.layer);
    }
  }
  stats_.terminated_early = !keep_scanning;

  // Zero the layer table for the next point by undoing this point's
  // inserts (cheaper than clearing L counters when the skyband is small).
  for (const SkybandEntry& e : build_.entries()) {
    layer_counts_.Add(e.layer, -1);
  }

  skyband->Swap(&build_);
  if (SOP_OBS_ENABLED()) RecordScanObs(skyband->size());
  return IsSafeForAll(p, *skyband);
}

void KSky::RecordScanObs(size_t skyband_size) const {
  SOP_COUNTER_ADD("ksky/scans", 1);
  SOP_COUNTER_ADD("ksky/distances_computed", stats_.distances_computed);
  SOP_COUNTER_ADD("ksky/candidates_examined", stats_.candidates_examined);
  if (stats_.terminated_early) SOP_COUNTER_ADD("ksky/early_terminations", 1);
  SOP_HISTOGRAM_RECORD("ksky/skyband_size", skyband_size);
}

bool KSky::Examine(Seq seq, int64_t key, int32_t layer) {
  // skyEvaluate (Alg. 2): the dominated count is the number of kept points
  // at layers <= `layer` — all of them are newer than this candidate.
  const int64_t dominated = layer_counts_.PrefixSum(layer);
  if (dominated >= plan_->k_max()) {
    // Not a skyband point for any group. If it sits in the innermost
    // layer, every remaining (older) candidate is dominated by the same
    // k_max points, so the scan can stop (Alg. 1 lines 12-13).
    return !(options_.early_termination && layer == 1);
  }
  if (options_.condition3_pruning &&
      layer > plan_->MaxLayerForCount(dominated)) {
    // Def. 6 condition 3: no group with k > dominated can use a point this
    // far out. The scan continues: closer candidates may still qualify.
    return true;
  }
  layer_counts_.Add(layer, 1);
  if (layer == 1) ++layer1_count_;
  build_.Append({seq, key, layer});
  // Layer-1 saturation: see the termination discussion in ksky.h.
  if (options_.early_termination && layer == 1 &&
      layer1_count_ >= plan_->k_max()) {
    return false;
  }
  return true;
}

bool KSky::IsSafeForAll(const Point& p, const LSky& skyband) const {
  const auto& reqs = plan_->safety_requirements();
  SOP_DCHECK(!reqs.empty());
  // Succeeding entries form the leading (newest-first) prefix.
  const auto& entries = skyband.entries();
  // Count succeeding entries per requirement bucket: bucket i covers
  // layers in (reqs[i-1].layer, reqs[i].layer].
  req_counts_.assign(reqs.size(), 0);
  for (const SkybandEntry& e : entries) {
    if (e.seq <= p.seq) break;
    // First requirement whose layer bound admits this entry.
    const auto it = std::lower_bound(
        reqs.begin(), reqs.end(), e.layer,
        [](const WorkloadPlan::SafetyRequirement& r, int32_t layer) {
          return r.layer < layer;
        });
    if (it == reqs.end()) continue;  // beyond every group's min layer
    ++req_counts_[static_cast<size_t>(it - reqs.begin())];
  }
  int64_t prefix = 0;
  for (size_t i = 0; i < reqs.size(); ++i) {
    prefix += req_counts_[i];
    if (prefix < reqs[i].k) return false;
  }
  return true;
}

}  // namespace sop
