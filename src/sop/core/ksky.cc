#include "sop/core/ksky.h"

#include <algorithm>

#include "sop/common/check.h"
#include "sop/obs/trace.h"
#include "sop/stream/window.h"

namespace sop {

namespace {
// Candidate distances are confirmed through the batch kernel in blocks of
// this many points: large enough to amortize the batch setup and fill the
// SIMD lanes, small enough to bound the distances wasted when layer-1
// saturation terminates a scan mid-block.
constexpr size_t kBatchBlock = 64;
}  // namespace

KSky::KSky(const WorkloadPlan* plan, DistanceFn dist, Options options)
    : plan_(plan),
      dist_(std::move(dist)),
      kernel_(dist_.MakeKernel()),
      options_(options) {
  SOP_CHECK(plan_ != nullptr);
  layer_counts_.Reset(plan_->num_layers());
  batch_dists_.resize(kBatchBlock);
}

bool KSky::EvaluatePoint(const Point& p, const StreamBuffer& buffer,
                         Seq batch_first_seq, int64_t swift_window_start,
                         bool from_scratch, LSky* skyband,
                         const std::vector<Seq>* candidates) {
  stats_ = KSkyScanStats{};
  build_.Clear();
  layer1_count_ = 0;

  const WindowType type = buffer.type();
  const ColumnStore& cols = buffer.columns();
  const int num_layers = plan_->num_layers();
  bool keep_scanning = true;
  uint64_t kernel_hits = 0;

  // Window key of alive point `s`, resolved from the columns (the scan
  // never touches the row Points).
  auto key_of = [&](Seq s) -> int64_t {
    return type == WindowType::kCount
               ? static_cast<int64_t>(s)
               : cols.time_column()[cols.SlotOf(s)];
  };

  // Consumes one candidate whose distance the kernel already computed:
  // applies Def. 6. Stats count only consumed candidates, exactly as the
  // per-pair scan did — a block cut short by termination does not inflate
  // them.
  auto examine_with = [&](Seq s, double d) {
    ++stats_.candidates_examined;
    ++stats_.distances_computed;
    const int32_t layer = plan_->LayerOfDistance(d);
    if (layer > num_layers) return;  // nobody's neighbor (Def. 5 c3)
    ++kernel_hits;
    keep_scanning = Examine(s, key_of(s), layer);
  };

  // Scans points with seq in [lo, hi) from newest to oldest ("search from
  // scratch" / the new-arrivals part of the incremental rescan). Distances
  // come from the batch kernel, kBatchBlock candidates per call; the
  // consumption order — and therefore the built skyband — is identical to
  // the old per-pair scan. With an index-provided candidate list the scan
  // walks that list instead of every buffer seq: the skipped points all
  // have distance > r_max, so the Examine sequence is unchanged.
  auto scan_buffer_range = [&](Seq lo, Seq hi) {
    if (candidates != nullptr) {
      // The in-range candidates form one contiguous seq-descending
      // sublist: entries >= hi lead it, entries < lo trail it.
      const auto sub_begin =
          std::lower_bound(candidates->begin(), candidates->end(), hi - 1,
                           std::greater<Seq>());
      const auto sub_end = std::lower_bound(sub_begin, candidates->end(),
                                            lo - 1, std::greater<Seq>());
      const Seq* base = candidates->data() + (sub_begin - candidates->begin());
      const size_t m = static_cast<size_t>(sub_end - sub_begin);
      for (size_t b = 0; b < m && keep_scanning; b += kBatchBlock) {
        const size_t nb = std::min(kBatchBlock, m - b);
        kernel_.BatchDist(cols, p, base + b, nb, batch_dists_.data());
        SOP_COUNTER_ADD("kernel/batches", 1);
        SOP_COUNTER_ADD("kernel/candidates", nb);
        for (size_t j = 0; j < nb && keep_scanning; ++j) {
          SOP_DCHECK(base[b + j] != p.seq);
          examine_with(base[b + j], batch_dists_[j]);
        }
      }
      return;
    }
    for (Seq end = hi; end > lo && keep_scanning;) {
      const Seq begin = std::max(lo, end - static_cast<Seq>(kBatchBlock));
      const size_t nb = static_cast<size_t>(end - begin);
      kernel_.BatchDistRange(cols, p, begin, nb, batch_dists_.data());
      SOP_COUNTER_ADD("kernel/batches", 1);
      SOP_COUNTER_ADD("kernel/candidates", nb);
      for (Seq s = end - 1; s >= begin && keep_scanning; --s) {
        if (s == p.seq) continue;
        examine_with(s, batch_dists_[static_cast<size_t>(s - begin)]);
      }
      end = begin;
    }
  };

  if (from_scratch) {
    scan_buffer_range(buffer.first_seq(), buffer.next_seq());
  } else {
    SOP_DCHECK(p.seq < batch_first_seq);
    skyband->ExpireBefore(swift_window_start);
    // Least examination: new arrivals first (all newer than any previous
    // skyband entry), then the surviving previous entries with their
    // cached layers. Both sub-sequences are seq-descending, and so is
    // their concatenation.
    old_entries_.assign(skyband->entries().begin(), skyband->entries().end());
    scan_buffer_range(batch_first_seq, buffer.next_seq());
    if (build_.empty()) {
      // No new arrival entered the skyband, so the previous entries'
      // admission decisions replay unchanged (they were made against
      // exactly these entries, newest-first, and expiry only removed the
      // oldest — i.e., last-decided — ones). The expired skyband is
      // already exact; skip the re-admission pass.
      stats_.terminated_early = !keep_scanning;
      if (SOP_OBS_ENABLED()) RecordScanObs(skyband->size(), kernel_hits);
      return IsSafeForAll(p, *skyband);
    }
    for (const SkybandEntry& e : old_entries_) {
      if (!keep_scanning) break;
      ++stats_.candidates_examined;
      keep_scanning = Examine(e.seq, e.key, e.layer);
    }
  }
  stats_.terminated_early = !keep_scanning;

  // Zero the layer table for the next point by undoing this point's
  // inserts (cheaper than clearing L counters when the skyband is small).
  for (const SkybandEntry& e : build_.entries()) {
    layer_counts_.Add(e.layer, -1);
  }

  skyband->Swap(&build_);
  if (SOP_OBS_ENABLED()) RecordScanObs(skyband->size(), kernel_hits);
  return IsSafeForAll(p, *skyband);
}

void KSky::RecordScanObs(size_t skyband_size, uint64_t kernel_hits) const {
  SOP_COUNTER_ADD("ksky/scans", 1);
  SOP_COUNTER_ADD("ksky/distances_computed", stats_.distances_computed);
  SOP_COUNTER_ADD("ksky/candidates_examined", stats_.candidates_examined);
  if (stats_.terminated_early) SOP_COUNTER_ADD("ksky/early_terminations", 1);
  SOP_COUNTER_ADD("kernel/hits", kernel_hits);
  SOP_HISTOGRAM_RECORD("ksky/skyband_size", skyband_size);
}

bool KSky::Examine(Seq seq, int64_t key, int32_t layer) {
  // skyEvaluate (Alg. 2): the dominated count is the number of kept points
  // at layers <= `layer` — all of them are newer than this candidate.
  const int64_t dominated = layer_counts_.PrefixSum(layer);
  if (dominated >= plan_->k_max()) {
    // Not a skyband point for any group. If it sits in the innermost
    // layer, every remaining (older) candidate is dominated by the same
    // k_max points, so the scan can stop (Alg. 1 lines 12-13).
    return !(options_.early_termination && layer == 1);
  }
  if (options_.condition3_pruning &&
      layer > plan_->MaxLayerForCount(dominated)) {
    // Def. 6 condition 3: no group with k > dominated can use a point this
    // far out. The scan continues: closer candidates may still qualify.
    return true;
  }
  layer_counts_.Add(layer, 1);
  if (layer == 1) ++layer1_count_;
  build_.Append({seq, key, layer});
  // Layer-1 saturation: see the termination discussion in ksky.h.
  if (options_.early_termination && layer == 1 &&
      layer1_count_ >= plan_->k_max()) {
    return false;
  }
  return true;
}

bool KSky::IsSafeForAll(const Point& p, const LSky& skyband) const {
  const auto& reqs = plan_->safety_requirements();
  SOP_DCHECK(!reqs.empty());
  // Succeeding entries form the leading (newest-first) prefix.
  const auto& entries = skyband.entries();
  // Count succeeding entries per requirement bucket: bucket i covers
  // layers in (reqs[i-1].layer, reqs[i].layer].
  req_counts_.assign(reqs.size(), 0);
  for (const SkybandEntry& e : entries) {
    if (e.seq <= p.seq) break;
    // First requirement whose layer bound admits this entry.
    const auto it = std::lower_bound(
        reqs.begin(), reqs.end(), e.layer,
        [](const WorkloadPlan::SafetyRequirement& r, int32_t layer) {
          return r.layer < layer;
        });
    if (it == reqs.end()) continue;  // beyond every group's min layer
    ++req_counts_[static_cast<size_t>(it - reqs.begin())];
  }
  int64_t prefix = 0;
  for (size_t i = 0; i < reqs.size(); ++i) {
    prefix += req_counts_[i];
    if (prefix < reqs[i].k) return false;
  }
  return true;
}

}  // namespace sop
