// LSky: the layered skyband structure (paper Sec. 3.1.2, Fig. 2).
//
// For each evaluated point p, LSky stores the (k_max - 1)-skyband of the
// current window under the domination relationship of Def. 5: the minimal
// evidence needed to answer every query in the workload about p, in every
// current and future window.
//
// Representation. The paper draws LSky as L layers (one per distinct r),
// each ordered by arrival time. We store the same information as a single
// flat array of (seq, key, layer) entries ordered by descending arrival
// sequence, exploiting two facts:
//   * K-SKY discovers skyband points in exactly that order ("last come,
//     first served"), so construction is append-only;
//   * keys are monotone in seq, so expiry pops from the tail and the
//     "arrived inside window w" test selects a prefix.
// The per-layer cardinalities the paper's skyEvaluate maintains live in the
// KSky scanner's scratch state during construction (see ksky.h); after
// construction, all status questions reduce to counting entries with
// layer <= m in a key-bounded prefix.

#ifndef SOP_CORE_LSKY_H_
#define SOP_CORE_LSKY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sop/common/check.h"
#include "sop/common/memory.h"
#include "sop/common/point.h"

namespace sop {

/// One skyband point: which point it is (seq), its window-arithmetic key,
/// and its normalized distance to the owner point (1-based layer, Def. 4).
struct SkybandEntry {
  Seq seq = 0;
  int64_t key = 0;
  int32_t layer = 0;

  friend bool operator==(const SkybandEntry&, const SkybandEntry&) = default;
};

/// The skyband of one point. Entries are kept in descending seq order
/// (newest first). Not thread-safe.
class LSky {
 public:
  LSky() = default;

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const std::vector<SkybandEntry>& entries() const { return entries_; }

  /// Drops all entries, keeping capacity for reuse across rebuilds.
  void Clear() { entries_.clear(); }

  /// Drops entries and releases memory (used when a point becomes a safe
  /// inlier and its evidence is no longer needed).
  void Release() {
    entries_.clear();
    entries_.shrink_to_fit();
  }

  /// Appends an entry. Must be called in strictly descending seq order.
  void Append(const SkybandEntry& e) {
    SOP_DCHECK(entries_.empty() || e.seq < entries_.back().seq);
    entries_.push_back(e);
  }

  /// Removes entries whose key fell out of the swift window. Returns the
  /// number removed.
  size_t ExpireBefore(int64_t min_key);

  /// Swaps contents with `other` (used to install a freshly built skyband
  /// without copying).
  void Swap(LSky* other) { entries_.swap(other->entries_); }

  /// Counts entries with layer <= `max_layer` and key >= `min_key` — i.e.
  /// p's known neighbors within r_{max_layer} that arrived inside the
  /// window starting at `min_key`. Stops counting at `stop_at` (pass the
  /// query's k: the caller only needs to know whether the count reaches
  /// it). This is the generalized Lemma-3 status test; see ksky.h for why
  /// it is exact.
  int64_t CountWithin(int32_t max_layer, int64_t min_key,
                      int64_t stop_at) const;

  /// Approximate heap bytes held.
  size_t MemoryBytes() const { return VectorHeapBytes(entries_); }

 private:
  std::vector<SkybandEntry> entries_;
};

}  // namespace sop

#endif  // SOP_CORE_LSKY_H_
