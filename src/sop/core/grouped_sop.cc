#include "sop/core/grouped_sop.h"

#include <algorithm>
#include <memory>
#include <vector>

namespace sop {

namespace {

// Partition key: the rank of the query's k among the distinct k values.
std::vector<int> KGroupKeys(const Workload& workload) {
  std::vector<int64_t> ks;
  ks.reserve(workload.num_queries());
  for (const OutlierQuery& q : workload.queries()) ks.push_back(q.k);
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  std::vector<int> keys;
  keys.reserve(workload.num_queries());
  for (const OutlierQuery& q : workload.queries()) {
    keys.push_back(static_cast<int>(
        std::lower_bound(ks.begin(), ks.end(), q.k) - ks.begin()));
  }
  return keys;
}

}  // namespace

GroupedSopDetector::GroupedSopDetector(const Workload& workload,
                                       SopDetector::Options options)
    : PartitionedDetector("grouped-sop", workload, KGroupKeys(workload),
                          [options](const Workload& sub) {
                            return std::make_unique<SopDetector>(sub, options);
                          }) {}

}  // namespace sop
