#include "sop/core/grouped_sop.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "sop/common/check.h"

namespace sop {

namespace {

// Partition key: the rank of the query's k among the distinct k values.
std::vector<int> KGroupKeys(const Workload& workload) {
  std::vector<int64_t> ks;
  ks.reserve(workload.num_queries());
  for (const OutlierQuery& q : workload.queries()) ks.push_back(q.k);
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  std::vector<int> keys;
  keys.reserve(workload.num_queries());
  for (const OutlierQuery& q : workload.queries()) {
    keys.push_back(static_cast<int>(
        std::lower_bound(ks.begin(), ks.end(), q.k) - ks.begin()));
  }
  return keys;
}

}  // namespace

GroupedSopDetector::GroupedSopDetector(const Workload& workload,
                                       SopDetector::Options options)
    : PartitionedDetector("grouped-sop", workload, KGroupKeys(workload),
                          [options](const Workload& sub) {
                            return std::make_unique<SopDetector>(sub, options);
                          }) {}

bool GroupedSopDetector::ApplyWorkload(const Workload& next) {
  if (next.num_queries() == 0 || !next.Validate().empty()) return false;
  // Re-partition exactly as construction did (children ascend in k).
  const std::vector<int> keys = KGroupKeys(next);
  const size_t num_parts =
      static_cast<size_t>(*std::max_element(keys.begin(), keys.end())) + 1;
  if (num_parts != num_children()) return false;
  std::vector<Workload> subs;
  subs.reserve(num_parts);
  for (size_t c = 0; c < num_parts; ++c) {
    Workload sub = next;
    sub.ClearQueries();
    subs.push_back(std::move(sub));
  }
  std::vector<std::vector<size_t>> maps(num_parts);
  for (size_t i = 0; i < next.num_queries(); ++i) {
    const size_t part = static_cast<size_t>(keys[i]);
    subs[part].AddQuery(next.query(i));
    maps[part].push_back(i);
  }
  // Classify every child before mutating any: all-or-nothing.
  for (size_t c = 0; c < num_parts; ++c) {
    // Children are SopDetectors by construction.
    auto* child = static_cast<SopDetector*>(mutable_child(c));
    if (child->ClassifyWorkload(subs[c]) != PlanDelta::kOverlayOnly) {
      return false;
    }
  }
  for (size_t c = 0; c < num_parts; ++c) {
    auto* child = static_cast<SopDetector*>(mutable_child(c));
    SOP_CHECK(child->ApplyWorkload(std::move(subs[c])));
    set_child_mapping(c, std::move(maps[c]));
  }
  return true;
}

}  // namespace sop
