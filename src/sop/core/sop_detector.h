// SopDetector: the paper's SOP framework (Fig. 6 / Alg. 3) — the
// sharing-aware multi-query outlier detector this repository reproduces.
//
// One swift skyband query answers the whole workload: per batch (one swift
// slide), every alive, non-safe point gets one K-SKY scan that rebuilds its
// LSky; at each emission boundary, each due query classifies each in-window
// point with one thresholded count over that point's LSky. CPU is shared
// (each point scanned once per slide for all queries) and memory is shared
// (one skyband per point for all queries).

#ifndef SOP_CORE_SOP_DETECTOR_H_
#define SOP_CORE_SOP_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include <memory>

#include "sop/core/ksky.h"
#include "sop/core/lsky.h"
#include "sop/detector/detector.h"
#include "sop/index/grid.h"
#include "sop/query/plan.h"
#include "sop/stream/stream_buffer.h"

namespace sop {

/// The SOP detector. Requires a workload whose queries share one attribute
/// set (wrap with MultiAttributeDetector otherwise).
class SopDetector : public OutlierDetector {
 public:
  /// Tuning knobs, defaulting to the paper's algorithm. The ablation bench
  /// switches these off individually.
  struct Options {
    KSky::Options ksky;
    /// Extra basis slack compiled into the plan so anticipated workload
    /// changes stay overlay-only (see PlanHeadroom). Defaults to none:
    /// the exact paper basis.
    PlanHeadroom headroom;
    /// Skip Safe-For-All inliers in every future batch (Alg. 3 line 2) and
    /// release their evidence.
    bool safe_inlier_pruning = true;
    /// Route K-SKY candidate enumeration through a uniform grid over the
    /// r_max ball (index/grid.h) instead of scanning the whole swift
    /// window. Exact — the built skybands are identical (see ksky.h);
    /// only the CPU profile changes. Pays off when r_max covers a small
    /// fraction of the data space.
    bool use_grid_index = false;
    /// Grid pitch as a multiple of r_min (only with use_grid_index).
    double grid_cell_factor = 1.0;
  };

  /// Cumulative counters exposed for tests and the ablation bench.
  struct Stats {
    int64_t ksky_scans = 0;
    int64_t distances_computed = 0;
    int64_t candidates_examined = 0;
    int64_t early_terminations = 0;
    int64_t safe_points_discovered = 0;
    int64_t overlay_swaps = 0;
  };

  explicit SopDetector(const Workload& workload)
      : SopDetector(workload, Options()) {}
  SopDetector(const Workload& workload, Options options);

  const char* name() const override {
    return options_.use_grid_index ? "sop-grid" : "sop";
  }
  std::vector<QueryResult> Advance(std::vector<Point> batch,
                                   int64_t boundary) override;
  size_t MemoryBytes() const override;

  const WorkloadPlan& plan() const { return plan_; }
  const Stats& stats() const { return stats_; }

  /// Classifies replacing this detector's workload with `next` against the
  /// compiled basis (see PlanDelta).
  PlanDelta ClassifyWorkload(const Workload& next) const {
    return plan_.Classify(next);
  }

  /// Swaps the per-query overlay in place: the detector answers `next`
  /// from the next boundary on, without touching buffered points, skyband
  /// evidence, safety flags, or the index. Only legal between batches and
  /// only when ClassifyWorkload(next) == kOverlayOnly; returns false (state
  /// unchanged) otherwise — the caller must rebuild-and-replay instead.
  bool ApplyWorkload(Workload next);

  /// Serializes the detector's full streaming state (alive points,
  /// skybands, safety flags, counters) into a framed, CRC-checksummed
  /// checkpoint blob (common/frame.h). The workload itself is not stored;
  /// restore requires an identically configured detector (guarded by a
  /// workload fingerprint).
  bool SupportsNativeState() const override { return true; }
  std::string SaveState() const override;

  /// Restores a checkpoint into a freshly constructed detector (no batches
  /// advanced yet). Returns false — leaving the detector unusable — when
  /// the blob is corrupted or truncated (CRC/length mismatch), from a
  /// different format version, or from a different workload; `*error` (if
  /// non-null) says which. Processing resumes at the next boundary after
  /// the checkpointed one.
  bool LoadState(std::string_view bytes, std::string* error = nullptr) override;

  /// Test/debug accessors.
  bool IsAliveForTesting(Seq seq) const { return buffer_.Contains(seq); }
  bool IsSafeForTesting(Seq seq) const { return StateOf(seq).safe; }
  const LSky& SkybandForTesting(Seq seq) const { return StateOf(seq).skyband; }

 private:
  // Per alive point bookkeeping, parallel to buffer_.
  struct PointState {
    LSky skyband;
    bool evaluated = false;  // skyband valid (first scan done)
    bool safe = false;       // Safe-For-All inlier
  };

  PointState& StateOf(Seq seq) {
    return states_[static_cast<size_t>(seq - buffer_.first_seq())];
  }
  const PointState& StateOf(Seq seq) const {
    return states_[static_cast<size_t>(seq - buffer_.first_seq())];
  }

  // One emitting query during the emission sweep.
  struct EmittingQuery {
    size_t query_index;
    int64_t start;
    int32_t layer;
    int64_t k;
    size_t result_slot;
  };

  WorkloadPlan plan_;
  Options options_;
  KSky ksky_;
  StreamBuffer buffer_;
  std::deque<PointState> states_;
  std::unique_ptr<GridIndex> grid_;  // only with options_.use_grid_index
  Stats stats_;
  int64_t last_boundary_ = INT64_MIN;
  bool received_any_ = false;
  size_t last_results_bytes_ = 0;
  // Per-batch scratch.
  std::vector<Seq> nonsafe_seqs_;
  std::vector<Seq> grid_candidates_;  // seq-descending K-SKY candidates
  std::vector<EmittingQuery> emitting_;
  FenwickTree emit_counts_;
};

}  // namespace sop

#endif  // SOP_CORE_SOP_DETECTOR_H_
