#include "sop/core/sop_detector.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "sop/common/check.h"
#include "sop/common/memory.h"
#include "sop/obs/trace.h"
#include "sop/stream/window.h"

namespace sop {

SopDetector::SopDetector(const Workload& workload, Options options)
    : plan_(workload, options.headroom),
      options_(options),
      ksky_(&plan_, workload.MakeDistanceFn(0), options.ksky),
      buffer_(workload.window_type()) {
  emit_counts_.Reset(plan_.num_layers());
  if (options_.use_grid_index) {
    grid_ = std::make_unique<GridIndex>(
        workload.MakeDistanceFn(0),
        plan_.r_min() * options_.grid_cell_factor);
  }
}

bool SopDetector::ApplyWorkload(Workload next) {
  // ApplyOverlay refuses anything but an overlay-only change, so the
  // skybands, safety flags and buffer stay valid evidence for `next`.
  if (!plan_.ApplyOverlay(std::move(next))) return false;
  ++stats_.overlay_swaps;
  SOP_COUNTER_ADD("sop/overlay_swaps", 1);
  return true;
}

std::vector<QueryResult> SopDetector::Advance(std::vector<Point> batch,
                                              int64_t boundary) {
  // Boundaries come from the driver at the workload-wide slide gcd. When
  // this detector is a multi-attribute child, that gcd may be finer than
  // this plan's own slide gcd; processing extra boundaries is correct
  // (EmitsAt gates emissions per query), just extra work.
  SOP_CHECK_MSG(boundary > last_boundary_, "boundaries must increase");
  last_boundary_ = boundary;

  // The first batch a detector ever sees may start mid-stream (history
  // replay after trimming, see SopSession); re-base the buffer on it.
  if (!received_any_ && !batch.empty()) {
    buffer_.ResetTo(batch.front().seq);
    received_any_ = true;
  }
  const Seq first_new_seq = buffer_.next_seq();
  for (Point& p : batch) {
    buffer_.Append(std::move(p));
    states_.emplace_back();
  }

  // Slide the swift window.
  const int64_t swift_start = WindowStart(boundary, plan_.win_max());
  if (grid_ != nullptr) {
    // Index the arrivals, then un-index everything expiring — including
    // arrivals that never make it into the window — while the coordinates
    // are still alive in the buffer.
    for (Seq s = first_new_seq; s < buffer_.next_seq(); ++s) {
      grid_->Insert(s, buffer_.At(s));
    }
    const Seq expire_end = buffer_.LowerBoundKey(swift_start);
    for (Seq s = buffer_.first_seq(); s < expire_end; ++s) {
      grid_->Remove(s, buffer_.At(s));
    }
  }
  const size_t dropped = buffer_.ExpireBefore(swift_start);
  for (size_t i = 0; i < dropped; ++i) states_.pop_front();

  // One K-SKY scan per alive, non-safe point (Alg. 3). Safe points are
  // inliers for every query forever, so only the others can ever be
  // reported — collect them for the emission sweep.
  nonsafe_seqs_.clear();
  for (Seq s = buffer_.first_seq(); s < buffer_.next_seq(); ++s) {
    PointState& st = StateOf(s);
    if (options_.safe_inlier_pruning && st.safe) continue;
    const std::vector<Seq>* candidates = nullptr;
    if (grid_ != nullptr) {
      // Index-assisted candidate enumeration: everything within r_max is
      // in the superset, so K-SKY's scan — restricted to newest-first
      // order — builds the identical skyband (see ksky.h).
      grid_->CollectCandidates(buffer_.At(s), plan_.r_max(),
                               &grid_candidates_);
      std::sort(grid_candidates_.begin(), grid_candidates_.end(),
                std::greater<Seq>());
      // p indexes itself; drop it from its own candidate list.
      const auto self = std::lower_bound(grid_candidates_.begin(),
                                         grid_candidates_.end(), s,
                                         std::greater<Seq>());
      if (self != grid_candidates_.end() && *self == s) {
        grid_candidates_.erase(self);
      }
      candidates = &grid_candidates_;
    }
    const bool safe =
        ksky_.EvaluatePoint(buffer_.At(s), buffer_, first_new_seq,
                            swift_start, /*from_scratch=*/!st.evaluated,
                            &st.skyband, candidates);
    st.evaluated = true;
    ++stats_.ksky_scans;
    stats_.distances_computed += ksky_.last_stats().distances_computed;
    stats_.candidates_examined += ksky_.last_stats().candidates_examined;
    stats_.early_terminations += ksky_.last_stats().terminated_early ? 1 : 0;
    if (safe && options_.safe_inlier_pruning) {
      st.safe = true;
      st.skyband.Release();
      ++stats_.safe_points_discovered;
      SOP_COUNTER_ADD("sop/safe_points_discovered", 1);
      continue;
    }
    nonsafe_seqs_.push_back(s);
  }
  if (SOP_OBS_ENABLED()) {
    SOP_COUNTER_ADD("sop/batches", 1);
    SOP_GAUGE_SET("sop/alive_points",
                  buffer_.next_seq() - buffer_.first_seq());
    SOP_GAUGE_SET("sop/nonsafe_points", nonsafe_seqs_.size());
  }

  // Emissions. Every due query classifies each non-safe point in its
  // window with a thresholded skyband count (the generalized Lemma-3
  // test, see ksky.h). Queries are swept in ascending window size so one
  // newest-first pass over a point's skyband serves all of them: each
  // query's window adds a batch of older entries into the layer table and
  // reads one prefix sum.
  std::vector<QueryResult> results;
  last_results_bytes_ = 0;
  const auto& queries = plan_.workload().queries();
  emitting_.clear();
  for (size_t qi : plan_.queries_by_window()) {
    if (!EmitsAt(boundary, queries[qi].slide)) continue;
    EmittingQuery eq;
    eq.query_index = qi;
    eq.start = WindowStart(boundary, queries[qi].win);
    eq.layer = plan_.layer_of_query(qi);
    eq.k = queries[qi].k;
    eq.result_slot = results.size();
    QueryResult result;
    result.query_index = qi;
    result.boundary = boundary;
    results.push_back(std::move(result));
    emitting_.push_back(eq);
  }
  if (emitting_.empty()) return results;

  for (const Seq s : nonsafe_seqs_) {
    const PointState& st = StateOf(s);
    const int64_t key = buffer_.KeyOf(s);
    const auto& entries = st.skyband.entries();
    size_t added = 0;
    for (const EmittingQuery& eq : emitting_) {
      if (eq.start > key) continue;  // point not in this query's window
      while (added < entries.size() && entries[added].key >= eq.start) {
        emit_counts_.Add(entries[added].layer, 1);
        ++added;
      }
      if (emit_counts_.PrefixSum(eq.layer) < eq.k) {
        results[eq.result_slot].outliers.push_back(s);
      }
    }
    // Zero the table for the next point by undoing this point's inserts.
    for (size_t i = 0; i < added; ++i) {
      emit_counts_.Add(entries[i].layer, -1);
    }
  }

  std::sort(results.begin(), results.end(),
            [](const QueryResult& a, const QueryResult& b) {
              return a.query_index < b.query_index;
            });
  for (const QueryResult& r : results) {
    last_results_bytes_ += VectorHeapBytes(r.outliers);
  }
  return results;
}

size_t SopDetector::MemoryBytes() const {
  size_t bytes = DequeHeapBytes(states_) + last_results_bytes_;
  if (grid_ != nullptr) bytes += grid_->MemoryBytes();
  for (const PointState& st : states_) bytes += st.skyband.MemoryBytes();
  return bytes;
}

}  // namespace sop
