// K-SKY: the customized skyband scan (paper Sec. 3.1.2 / 3.2 / Alg. 1-2),
// generalized to the full SOP framework of Sec. 5 (arbitrary r, k, win and
// slide in one workload).
//
// For one point p and one swift-window boundary, K-SKY rebuilds p's LSky by
// scanning candidate points newest-first ("time-aware prioritization") and
// keeping each candidate iff it satisfies the Skyband Point Rule (Def. 6):
// with c = number of already-kept candidates at a layer <= its own,
//   (1) the candidate maps to a layer (distance <= r_max),
//   (2) c < k_max, and
//   (3) some k-group with k > c can still use it
//       (layer <= plan.MaxLayerForCount(c)).
//
// Candidate sets ("least examination", Alg. 1 lines 1-6):
//   * a point evaluated for the first time scans the whole swift window;
//   * a previously evaluated point scans only this batch's new arrivals
//     followed by the unexpired entries of its previous skyband — the only
//     points that can be skyband points now (paper Lemma 2); their cached
//     layers are reused, so no distance is recomputed.
//
// Termination. The scan stops as soon as layer 1 holds k_max entries:
// every remaining candidate x (older, layer >= 1) is then dominated by
// those k_max entries, so Def. 6 discards it, and — the part that matters
// for varying windows — x can never influence any query's answer in any
// window: the k_max dominators are newer than x, hence alive and inside
// every window that contains x, already saturating every (r, k) threshold
// at x's layer and beyond. This generalizes Alg. 1's "d <= r_min" rule.
// (The per-group termination of paper Example 3 additionally stops a group
// once its inlier status is decided; that shortcut is only sound when all
// windows are equal, so we do not use it in the general framework.)
//
// Why LSky::CountWithin is an exact status test (generalized Lemma 3).
// Claim: for every query q(r, k) and every window w that is a suffix of the
// swift window, p has >= k neighbors within r inside w iff p's skyband
// contains >= k entries with layer <= layer(r) and key inside w.
// ("if" is immediate: entries are neighbors.) For "only if", let y be a
// neighbor of p inside w with layer l <= layer(r) that is NOT a skyband
// entry. Then y was either (a) scanned and discarded, (b) skipped by
// termination, (c) not in the candidate set of an incremental rescan, or
// (d) dropped from a previous skyband. In every case there were, at that
// moment, >= min(k_max, k) kept-or-then-skyband points newer than y with
// layer <= l; induction over (c)/(d) (a dropped point's dominators are
// newer still) yields >= k *current* skyband entries newer than y with
// layer <= l. Newer-than-y points inside the swift window are inside w
// whenever y is (w is a suffix), so the count already reaches k without y.
// Hence thresholding the skyband count is exact for every (r, k, w).
//
// Safe inliers (Sec. 3.2.2 / 4.1 / 4.2). Entries with seq > p.seq are p's
// *succeeding* neighbors: they can never expire before p. They form the
// leading prefix of the freshly built skyband (descending seq). If for
// every k-group g the prefix holds >= k(g) entries with
// layer <= min_layer(g), then every query classifies p as an inlier in
// every remaining window of p's life (Safe-For-All): p is excluded from
// all future evaluation and its evidence is released.

#ifndef SOP_CORE_KSKY_H_
#define SOP_CORE_KSKY_H_

#include <cstdint>
#include <vector>

#include "sop/common/dist_kernel.h"
#include "sop/common/distance.h"
#include "sop/common/fenwick.h"
#include "sop/core/lsky.h"
#include "sop/query/plan.h"
#include "sop/stream/stream_buffer.h"

namespace sop {

/// Statistics of one K-SKY scan (exposed for tests and ablations).
struct KSkyScanStats {
  /// Candidates whose distance was computed (new candidates only;
  /// re-admitted old skyband entries reuse their cached layer).
  int64_t distances_computed = 0;
  /// Candidates examined in total (distance-computed + cached).
  int64_t candidates_examined = 0;
  /// Whether the scan stopped early via layer-1 saturation.
  bool terminated_early = false;
};

/// The K-SKY scanner for one workload plan. Holds reusable scratch state;
/// create one per detector and call EvaluatePoint for each point each
/// batch. Not thread-safe.
class KSky {
 public:
  /// Tuning knobs for the ablation study (bench/ablation_sop). Defaults
  /// reproduce the paper's algorithm.
  struct Options {
    /// Stop the scan once layer 1 saturates (Alg. 1 lines 12-13).
    bool early_termination = true;
    /// Apply Def. 6 condition 3 (group-aware pruning); when off, keep
    /// every candidate dominated by fewer than k_max points (a plain
    /// (k_max-1)-skyband).
    bool condition3_pruning = true;
  };

  KSky(const WorkloadPlan* plan, DistanceFn dist) : KSky(plan, dist, Options()) {}
  KSky(const WorkloadPlan* plan, DistanceFn dist, Options options);

  /// Rebuilds `skyband` (p's LSky) for the swift window ending at
  /// `boundary`.
  ///
  /// `from_scratch` selects the candidate set: true scans the whole buffer
  /// (first evaluation of p), false scans this batch's arrivals
  /// [batch_first_seq, buffer.next_seq()) followed by the unexpired
  /// previous skyband entries. `skyband` is consumed and rebuilt in place.
  /// Returns true iff p is now a Safe-For-All inlier.
  ///
  /// `candidates`, when non-null, replaces the exhaustive buffer scans
  /// with an index-provided candidate list: seq-descending alive points
  /// that must include every point within r_max of p (a superset is fine —
  /// extra entries are discarded by the layer filter, exactly as the
  /// linear scan discards them) and must not include p itself. The built
  /// skyband is identical to the exhaustive scan's.
  bool EvaluatePoint(const Point& p, const StreamBuffer& buffer,
                     Seq batch_first_seq, int64_t swift_window_start,
                     bool from_scratch, LSky* skyband,
                     const std::vector<Seq>* candidates = nullptr);

  /// Stats of the most recent EvaluatePoint call.
  const KSkyScanStats& last_stats() const { return stats_; }

  /// Re-sizes the per-layer scratch after the plan's basis was replaced
  /// (checkpoint restore adopting the serialized basis). Only legal
  /// between EvaluatePoint calls.
  void SyncPlanGeometry() { layer_counts_.Reset(plan_->num_layers()); }

 private:
  // Examines one candidate (Alg. 2, skyEvaluate): applies Def. 6 and
  // appends to build_. Returns false when the scan should terminate.
  bool Examine(Seq seq, int64_t key, int32_t layer);

  // Publishes the finished scan's stats to the observability registry
  // (ksky/* counters, kernel/hits, skyband-size histogram). Call only when
  // SOP_OBS_ENABLED(); never affects the scan result.
  void RecordScanObs(size_t skyband_size, uint64_t kernel_hits) const;

  // Safe-For-All check over the freshly built skyband.
  bool IsSafeForAll(const Point& p, const LSky& skyband) const;

  const WorkloadPlan* plan_;
  DistanceFn dist_;
  DistanceKernel kernel_;  // batch form of dist_, over buffer.columns()
  Options options_;

  // Scratch reused across calls. `layer_counts_` is the paper's per-layer
  // cardinality table (Alg. 2), kept as a Fenwick tree for O(log L)
  // dominated-count queries; it is zeroed between points by undoing the
  // inserts recorded in build_.
  FenwickTree layer_counts_;
  int64_t layer1_count_ = 0;  // cardinality of layer 1 (termination check)
  std::vector<SkybandEntry> old_entries_;  // previous skyband, flattened
  std::vector<double> batch_dists_;        // per-block kernel output
  mutable std::vector<int64_t> req_counts_;  // per-safety-requirement counts
  LSky build_;                               // skyband under construction
  KSkyScanStats stats_;
};

}  // namespace sop

#endif  // SOP_CORE_KSKY_H_
