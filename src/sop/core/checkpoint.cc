// Checkpoint save/restore for SopDetector (see sop_detector.h).
//
// Production stream jobs restart; the detector's state — the swift
// window's points, every non-safe point's skyband and every point's
// safety flag — is exactly what would otherwise take a full window of
// replay to rebuild.
//
// Wire format: a common/frame.h frame (magic, frame version, length,
// CRC-32) around a BinaryWriter payload that itself opens with a detector
// magic, a payload format version and the workload fingerprint. The frame
// rejects every truncation/corruption; the payload header rejects
// cross-version and cross-workload restores.

#include "sop/common/frame.h"
#include "sop/common/serialize.h"
#include "sop/core/sop_detector.h"

namespace sop {

namespace {

constexpr uint32_t kMagic = 0x53'4f'50'43;  // "SOPC"
// v2: payload framed (CRC + length) by common/frame.h.
// v3: the plan basis rides along. Skyband layers are only meaningful
//     relative to the basis they were built under, and after overlay
//     swaps (or headroom) that basis is not derivable from the current
//     workload — the restoring detector adopts the serialized one.
constexpr uint32_t kFormatVersion = 3;

bool LoadError(std::string* error, const char* what) {
  if (error != nullptr) *error = std::string("sop checkpoint: ") + what;
  return false;
}

}  // namespace

std::string SopDetector::SaveState() const {
  BinaryWriter w;
  w.WriteU32(kMagic);
  w.WriteU32(kFormatVersion);
  w.WriteU64(plan_.workload().Fingerprint());
  w.WriteI64(last_boundary_);

  // Evidence basis (v3).
  const WorkloadPlan::Basis& basis = plan_.basis();
  w.WriteU64(basis.layer_r.size());
  for (const double r : basis.layer_r) w.WriteDouble(r);
  w.WriteI64(basis.win);
  w.WriteU64(basis.max_layer_for_count.size());
  for (const int layer : basis.max_layer_for_count) {
    w.WriteU32(static_cast<uint32_t>(layer));
  }
  w.WriteU64(basis.safety_requirements.size());
  for (const WorkloadPlan::SafetyRequirement& req :
       basis.safety_requirements) {
    w.WriteU32(static_cast<uint32_t>(req.layer));
    w.WriteI64(req.k);
  }

  // Alive points.
  w.WriteI64(buffer_.first_seq());
  w.WriteU64(buffer_.size());
  for (Seq s = buffer_.first_seq(); s < buffer_.next_seq(); ++s) {
    const Point& p = buffer_.At(s);
    w.WriteI64(p.time);
    w.WriteU32(static_cast<uint32_t>(p.values.size()));
    for (const double v : p.values) w.WriteDouble(v);
  }

  // Per-point evidence.
  for (Seq s = buffer_.first_seq(); s < buffer_.next_seq(); ++s) {
    const PointState& st = StateOf(s);
    w.WriteBool(st.evaluated);
    w.WriteBool(st.safe);
    w.WriteU64(st.skyband.size());
    for (const SkybandEntry& e : st.skyband.entries()) {
      w.WriteI64(e.seq);
      w.WriteI64(e.key);
      w.WriteU32(static_cast<uint32_t>(e.layer));
    }
  }

  // Counters.
  w.WriteI64(stats_.ksky_scans);
  w.WriteI64(stats_.distances_computed);
  w.WriteI64(stats_.candidates_examined);
  w.WriteI64(stats_.early_terminations);
  w.WriteI64(stats_.safe_points_discovered);
  return WrapFrame(w.TakeBytes());
}

bool SopDetector::LoadState(std::string_view bytes, std::string* error) {
  SOP_CHECK_MSG(buffer_.empty() && last_boundary_ == INT64_MIN,
                "LoadState requires a freshly constructed detector");
  std::string_view payload;
  if (!UnwrapFrame(bytes, &payload, error)) return false;
  BinaryReader r(payload);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t fingerprint = 0;
  if (!r.ReadU32(&magic) || magic != kMagic) {
    return LoadError(error, "bad payload magic");
  }
  if (!r.ReadU32(&version) || version != kFormatVersion) {
    return LoadError(error, "unsupported payload format version");
  }
  if (!r.ReadU64(&fingerprint) ||
      fingerprint != plan_.workload().Fingerprint()) {
    return LoadError(error, "workload fingerprint mismatch");
  }
  if (!r.ReadI64(&last_boundary_)) {
    return LoadError(error, "truncated payload");
  }

  // Adopt the serialized basis: the saved skyband layers are indices into
  // *its* layer set, which may be wider than what this detector compiled
  // from the (fingerprint-matching) workload — e.g. the saved detector
  // carried headroom or went through overlay swaps.
  WorkloadPlan::Basis basis;
  uint64_t n_layers = 0, n_counts = 0, n_reqs = 0;
  if (!r.ReadU64(&n_layers)) return LoadError(error, "truncated basis");
  basis.layer_r.resize(n_layers);
  for (double& v : basis.layer_r) {
    if (!r.ReadDouble(&v)) return LoadError(error, "truncated basis");
  }
  if (!r.ReadI64(&basis.win) || !r.ReadU64(&n_counts)) {
    return LoadError(error, "truncated basis");
  }
  basis.max_layer_for_count.resize(n_counts);
  for (int& layer : basis.max_layer_for_count) {
    uint32_t v = 0;
    if (!r.ReadU32(&v)) return LoadError(error, "truncated basis");
    layer = static_cast<int>(v);
  }
  if (!r.ReadU64(&n_reqs)) return LoadError(error, "truncated basis");
  basis.safety_requirements.resize(n_reqs);
  for (WorkloadPlan::SafetyRequirement& req : basis.safety_requirements) {
    uint32_t layer = 0;
    if (!r.ReadU32(&layer) || !r.ReadI64(&req.k)) {
      return LoadError(error, "truncated basis");
    }
    req.layer = static_cast<int>(layer);
  }
  if (basis != plan_.basis()) {
    if (!plan_.AdoptBasis(std::move(basis))) {
      return LoadError(error, "basis invalid or does not cover workload");
    }
    // The per-layer scratch tables are sized to the basis.
    ksky_.SyncPlanGeometry();
    emit_counts_.Reset(plan_.num_layers());
  }

  int64_t first_seq = 0;
  uint64_t count = 0;
  if (!r.ReadI64(&first_seq) || !r.ReadU64(&count) || first_seq < 0) {
    return LoadError(error, "bad window header");
  }
  buffer_.ResetTo(first_seq);
  received_any_ = true;
  for (uint64_t i = 0; i < count; ++i) {
    Point p;
    p.seq = first_seq + static_cast<Seq>(i);
    uint32_t dims = 0;
    if (!r.ReadI64(&p.time) || !r.ReadU32(&dims)) {
      return LoadError(error, "truncated point");
    }
    p.values.resize(dims);
    for (double& v : p.values) {
      if (!r.ReadDouble(&v)) return LoadError(error, "truncated point");
    }
    buffer_.Append(std::move(p));
  }

  for (uint64_t i = 0; i < count; ++i) {
    PointState st;
    uint64_t entries = 0;
    if (!r.ReadBool(&st.evaluated) || !r.ReadBool(&st.safe) ||
        !r.ReadU64(&entries)) {
      return LoadError(error, "truncated evidence");
    }
    for (uint64_t e = 0; e < entries; ++e) {
      SkybandEntry entry;
      uint32_t layer = 0;
      if (!r.ReadI64(&entry.seq) || !r.ReadI64(&entry.key) ||
          !r.ReadU32(&layer)) {
        return LoadError(error, "truncated skyband entry");
      }
      if (layer < 1 || static_cast<int>(layer) > plan_.num_layers()) {
        return LoadError(error, "skyband layer out of range");
      }
      entry.layer = static_cast<int32_t>(layer);
      st.skyband.Append(entry);
    }
    states_.push_back(std::move(st));
  }

  if (!r.ReadI64(&stats_.ksky_scans) ||
      !r.ReadI64(&stats_.distances_computed) ||
      !r.ReadI64(&stats_.candidates_examined) ||
      !r.ReadI64(&stats_.early_terminations) ||
      !r.ReadI64(&stats_.safe_points_discovered)) {
    return LoadError(error, "truncated counters");
  }
  if (!r.AtEnd()) return LoadError(error, "trailing bytes in payload");

  // The grid is derived state: rebuild it from the restored window rather
  // than serializing it (checkpoints stay index-agnostic).
  if (grid_ != nullptr) {
    for (Seq s = buffer_.first_seq(); s < buffer_.next_seq(); ++s) {
      grid_->Insert(s, buffer_.At(s));
    }
  }
  return true;
}

}  // namespace sop
