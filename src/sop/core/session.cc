#include "sop/core/session.h"

#include <utility>

#include "sop/common/check.h"
#include "sop/common/memory.h"
#include "sop/obs/trace.h"

namespace sop {

SopSession::SopSession(WindowType window_type, Metric metric,
                       int64_t history_window)
    : window_type_(window_type),
      metric_(metric),
      history_window_(history_window) {
  SOP_CHECK_MSG(history_window_ > 0, "history window must be positive");
}

QueryId SopSession::AddQuery(const OutlierQuery& query) {
  SOP_CHECK_MSG(query.attribute_set == 0,
                "SopSession supports the full attribute space only");
  Workload probe(window_type_, metric_);
  probe.AddQuery(query);
  SOP_CHECK_MSG(probe.Validate().empty(), probe.Validate().c_str());
  const QueryId id = next_id_++;
  registered_.emplace(id, query);
  dirty_ = true;
  return id;
}

bool SopSession::RemoveQuery(QueryId id) {
  if (registered_.erase(id) == 0) return false;
  dirty_ = true;
  return true;
}

void SopSession::Rebuild(int64_t up_to_boundary) {
  SOP_TRACE("session/rebuild_ms");
  SOP_COUNTER_ADD("session/rebuilds", 1);
  detector_.reset();
  detector_query_ids_.clear();
  dirty_ = false;
  if (registered_.empty()) return;
  Workload workload(window_type_, metric_);
  for (const auto& [id, query] : registered_) {
    workload.AddQuery(query);
    detector_query_ids_.push_back(id);
  }
  detector_ = std::make_unique<SopDetector>(workload);
  // Replay the retained history so freshly added queries see populated
  // windows. Replay emissions are internal; only the final boundary's
  // results matter to the caller, and the caller collects those from the
  // Advance that triggered the rebuild.
  for (const HistoryBatch& batch : history_) {
    if (batch.boundary > up_to_boundary) break;
    SOP_COUNTER_ADD("session/replayed_batches", 1);
    SOP_COUNTER_ADD("session/replayed_points", batch.points.size());
    detector_->Advance(batch.points, batch.boundary);
  }
}

std::vector<SessionResult> SopSession::Advance(std::vector<Point> batch,
                                               int64_t boundary) {
  SOP_CHECK_MSG(boundary > last_boundary_, "boundaries must increase");
  last_boundary_ = boundary;
  for (Point& p : batch) p.seq = next_seq_++;

  // Retain the batch for future replays, then trim history that no window
  // can reach anymore.
  history_.push_back(HistoryBatch{batch, boundary});
  while (!history_.empty() &&
         history_.front().boundary <= boundary - history_window_) {
    history_.pop_front();
  }

  std::vector<QueryResult> raw;
  if (dirty_ || detector_ == nullptr) {
    // Rebuild replays history including the batch just retained; the final
    // replayed Advance is exactly this boundary, so re-run it to collect
    // results. To avoid double-processing, replay up to the previous
    // boundary and advance the new detector with the live batch.
    const int64_t previous =
        history_.size() >= 2 ? history_[history_.size() - 2].boundary
                             : INT64_MIN;
    Rebuild(previous);
    if (detector_ == nullptr) return {};
    raw = detector_->Advance(std::move(batch), boundary);
  } else {
    raw = detector_->Advance(std::move(batch), boundary);
  }

  SOP_GAUGE_SET("session/history_batches", history_.size());

  std::vector<SessionResult> results;
  results.reserve(raw.size());
  for (QueryResult& r : raw) {
    SessionResult sr;
    sr.query_id = detector_query_ids_[r.query_index];
    sr.boundary = r.boundary;
    sr.outliers = std::move(r.outliers);
    results.push_back(std::move(sr));
  }
  return results;
}

void SopSession::Advance(std::vector<Point> batch, int64_t boundary,
                         const SessionResultSink& sink) {
  SOP_CHECK_MSG(sink != nullptr, "sink must be callable");
  for (const SessionResult& r : Advance(std::move(batch), boundary)) {
    sink(r);
  }
}

size_t SopSession::MemoryBytes() const {
  size_t bytes = detector_ != nullptr ? detector_->MemoryBytes() : 0;
  bytes += DequeHeapBytes(history_);
  for (const HistoryBatch& b : history_) {
    bytes += VectorHeapBytes(b.points);
    for (const Point& p : b.points) bytes += VectorHeapBytes(p.values);
  }
  return bytes;
}

}  // namespace sop
