#include "sop/core/session.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sop/common/check.h"
#include "sop/common/frame.h"
#include "sop/common/memory.h"
#include "sop/common/serialize.h"
#include "sop/obs/trace.h"

namespace sop {

SopSession::SopSession(WindowType window_type, Metric metric,
                       int64_t history_window)
    : window_type_(window_type),
      metric_(metric),
      history_window_(history_window) {
  SOP_CHECK_MSG(history_window_ > 0, "history window must be positive");
}

QueryId SopSession::AddQuery(const OutlierQuery& query) {
  SOP_CHECK_MSG(query.attribute_set == 0,
                "SopSession supports the full attribute space only");
  Workload probe(window_type_, metric_);
  probe.AddQuery(query);
  SOP_CHECK_MSG(probe.Validate().empty(), probe.Validate().c_str());
  const QueryId id = next_id_++;
  registered_.emplace(id, query);
  dirty_ = true;
  return id;
}

bool SopSession::RemoveQuery(QueryId id) {
  if (registered_.erase(id) == 0) return false;
  dirty_ = true;
  return true;
}

std::vector<QueryId> SopSession::RegisteredQueryIds() const {
  std::vector<QueryId> ids;
  ids.reserve(registered_.size());
  for (const auto& [id, query] : registered_) ids.push_back(id);
  return ids;
}

const OutlierQuery* SopSession::FindQuery(QueryId id) const {
  const auto it = registered_.find(id);
  return it == registered_.end() ? nullptr : &it->second;
}

void SopSession::SetDetectorBuilder(DetectorBuilder builder) {
  builder_ = std::move(builder);
  dirty_ = true;
}

void SopSession::UseSopDetector(SopDetector::Options options) {
  builder_ = nullptr;
  sop_options_ = options;
  sop_options_.headroom = PlanHeadroom();  // the session owns headroom
  dirty_ = true;
}

void SopSession::SetBasisHeadroom(PlanHeadroom headroom) {
  headroom_ = std::move(headroom);
}

Workload SopSession::BuildWorkload(std::vector<QueryId>* ids) const {
  ids->clear();
  ids->reserve(registered_.size());
  Workload workload(window_type_, metric_);
  for (const auto& [id, query] : registered_) {
    workload.AddQuery(query);
    ids->push_back(id);
  }
  return workload;
}

PlanHeadroom SopSession::EffectiveHeadroom(const Workload& workload) const {
  PlanHeadroom headroom = headroom_;
  if (!restored_basis_.empty()) {
    // Reserve the dead incarnation's layers and envelopes so everything
    // its basis covered stays overlay-only in this incarnation too.
    headroom.r_values.insert(headroom.r_values.end(),
                             restored_basis_.layer_r.begin(),
                             restored_basis_.layer_r.end());
    headroom.k_slack = std::max<int64_t>(
        headroom.k_slack, restored_basis_.k_env - workload.MaxK());
    headroom.win_floor = std::max(headroom.win_floor, restored_basis_.win);
  }
  return headroom;
}

void SopSession::ApplyWorkloadChange() {
  dirty_ = false;
  if (registered_.empty()) {
    // Dropping the last query needs no evidence at all.
    detector_.reset();
    sop_detector_ = nullptr;
    detector_query_ids_.clear();
    ++change_stats_.overlay_changes;
    SOP_COUNTER_ADD("session/change/overlay", 1);
    return;
  }
  std::vector<QueryId> ids;
  Workload workload = BuildWorkload(&ids);
  if (sop_detector_ != nullptr) {
    const PlanDelta delta = sop_detector_->ClassifyWorkload(workload);
    if (delta == PlanDelta::kOverlayOnly) {
      SOP_CHECK(sop_detector_->ApplyWorkload(std::move(workload)));
      detector_query_ids_ = std::move(ids);
      ++change_stats_.overlay_changes;
      SOP_COUNTER_ADD("session/change/overlay", 1);
      return;
    }
    if (delta == PlanDelta::kBasisExtend) {
      ++change_stats_.basis_extends;
      SOP_COUNTER_ADD("session/change/basis_extend", 1);
      // Growing the basis is a deliberate recompile: stop carrying a dead
      // incarnation's coverage forward.
      restored_basis_.clear();
    }
  }
  Rebuild();
}

void SopSession::Rebuild() {
  SOP_TRACE("session/rebuild_ms");
  SOP_COUNTER_ADD("session/rebuilds", 1);
  SOP_COUNTER_ADD("session/change/rebuild", 1);
  ++change_stats_.rebuilds;
  detector_.reset();
  sop_detector_ = nullptr;
  detector_query_ids_.clear();
  if (registered_.empty()) return;
  std::vector<QueryId> ids;
  const Workload workload = BuildWorkload(&ids);
  detector_query_ids_ = std::move(ids);
  if (builder_ != nullptr) {
    detector_ = builder_(workload);
  } else {
    SopDetector::Options options = sop_options_;
    options.headroom = EffectiveHeadroom(workload);
    auto sop = std::make_unique<SopDetector>(workload, options);
    sop_detector_ = sop.get();
    detector_ = std::move(sop);
  }
  SOP_CHECK_MSG(detector_ != nullptr, "detector builder returned null");
  // Replay the retained history so freshly added queries see populated
  // windows. Replay emissions are internal; the live batch that triggered
  // this change has not joined the history yet, so the caller's results
  // come from its own Advance through the new detector.
  for (const HistoryBatch& batch : history_) {
    SOP_COUNTER_ADD("session/replayed_batches", 1);
    SOP_COUNTER_ADD("session/replayed_points", batch.points.size());
    ++change_stats_.replayed_batches;
    change_stats_.replayed_points += batch.points.size();
    detector_->Advance(batch.points, batch.boundary);
  }
}

std::vector<SessionResult> SopSession::Advance(std::vector<Point> batch,
                                               int64_t boundary) {
  SOP_CHECK_MSG(boundary > last_boundary_, "boundaries must increase");
  last_boundary_ = boundary;
  for (Point& p : batch) p.seq = next_seq_++;

  // Trim history no future replay can need, then realize any pending
  // workload change. Ordering matters: the change is applied before the
  // live batch joins the history, so a rebuild replays exactly the
  // pre-change history and the live batch is advanced exactly once — by
  // the post-change detector.
  while (!history_.empty() &&
         history_.front().boundary <= boundary - history_window_) {
    history_.pop_front();
  }
  if (dirty_ || (detector_ == nullptr && !registered_.empty())) {
    ApplyWorkloadChange();
  }

  history_.push_back(HistoryBatch{batch, boundary});

  std::vector<QueryResult> raw;
  if (detector_ != nullptr) {
    raw = detector_->Advance(std::move(batch), boundary);
  }

  SOP_GAUGE_SET("session/history_batches", history_.size());

  std::vector<SessionResult> results;
  results.reserve(raw.size());
  for (QueryResult& r : raw) {
    SessionResult sr;
    sr.query_id = detector_query_ids_[r.query_index];
    sr.boundary = r.boundary;
    sr.outliers = std::move(r.outliers);
    results.push_back(std::move(sr));
  }
  return results;
}

void SopSession::Advance(std::vector<Point> batch, int64_t boundary,
                         const SessionResultSink& sink) {
  SOP_CHECK_MSG(sink != nullptr, "sink must be callable");
  for (const SessionResult& r : Advance(std::move(batch), boundary)) {
    sink(r);
  }
}

namespace {
// Session state format version. The payload lives inside a common/frame.h
// frame, so truncation/corruption is caught before this version is read.
// v2 adds basis headroom + the live basis' coverage floor; v1 blobs are
// still accepted (they predate headroom and restore with the defaults).
constexpr uint32_t kSessionStateVersion = 2;
}  // namespace

std::string SopSession::SaveState() const {
  BinaryWriter w;
  w.WriteU32(kSessionStateVersion);
  w.WriteU32(static_cast<uint32_t>(window_type_));
  w.WriteU32(static_cast<uint32_t>(metric_));
  w.WriteI64(history_window_);
  w.WriteI64(next_id_);
  w.WriteI64(next_seq_);
  w.WriteI64(last_boundary_);
  w.WriteU64(registered_.size());
  for (const auto& [id, q] : registered_) {
    w.WriteI64(id);
    w.WriteDouble(q.r);
    w.WriteI64(q.k);
    w.WriteI64(q.win);
    w.WriteI64(q.slide);
  }
  // v2: the configured headroom, then the basis coverage floor — the live
  // detector's basis if one exists (the overlay, i.e. the query table
  // above, serializes separately from it on purpose: after overlay swaps
  // the basis is not derivable from the current queries).
  w.WriteBool(headroom_.elastic);
  w.WriteU64(headroom_.r_values.size());
  for (const double r : headroom_.r_values) w.WriteDouble(r);
  w.WriteI64(headroom_.k_slack);
  w.WriteI64(headroom_.win_floor);
  BasisSnapshot snapshot = restored_basis_;
  if (sop_detector_ != nullptr) {
    const WorkloadPlan::Basis& basis = sop_detector_->plan().basis();
    snapshot.layer_r = basis.layer_r;
    snapshot.k_env = basis.k_max();
    snapshot.win = basis.win;
  }
  w.WriteU64(snapshot.layer_r.size());
  for (const double r : snapshot.layer_r) w.WriteDouble(r);
  w.WriteI64(snapshot.k_env);
  w.WriteI64(snapshot.win);

  w.WriteU64(history_.size());
  for (const HistoryBatch& b : history_) {
    w.WriteI64(b.boundary);
    w.WriteU64(b.points.size());
    for (const Point& p : b.points) {
      w.WriteI64(p.seq);
      w.WriteI64(p.time);
      w.WriteU64(p.values.size());
      for (const double v : p.values) w.WriteDouble(v);
    }
  }
  return WrapFrame(w.bytes());
}

bool SopSession::LoadState(std::string_view bytes, std::string* error) {
  auto fail = [error](const char* what) {
    if (error != nullptr) *error = std::string("session state: ") + what;
    return false;
  };
  std::string_view payload;
  if (!UnwrapFrame(bytes, &payload, error)) return false;
  BinaryReader r(payload);
  uint32_t version = 0;
  uint32_t window_type = 0;
  uint32_t metric = 0;
  int64_t history_window = 0;
  int64_t next_id = 0;
  int64_t next_seq = 0;
  int64_t last_boundary = 0;
  if (!r.ReadU32(&version)) return fail("truncated");
  if (version < 1 || version > kSessionStateVersion) {
    return fail("unsupported version");
  }
  if (!r.ReadU32(&window_type) || !r.ReadU32(&metric) ||
      !r.ReadI64(&history_window) || !r.ReadI64(&next_id) ||
      !r.ReadI64(&next_seq) || !r.ReadI64(&last_boundary)) {
    return fail("truncated");
  }
  if (window_type != static_cast<uint32_t>(window_type_) ||
      metric != static_cast<uint32_t>(metric_) ||
      history_window != history_window_) {
    return fail("saved under a different session configuration");
  }
  uint64_t num_queries = 0;
  if (!r.ReadU64(&num_queries)) return fail("truncated");
  std::map<QueryId, OutlierQuery> restored;
  QueryId prev_id = 0;
  for (uint64_t i = 0; i < num_queries; ++i) {
    int64_t id = 0;
    OutlierQuery q;
    if (!r.ReadI64(&id) || !r.ReadDouble(&q.r) || !r.ReadI64(&q.k) ||
        !r.ReadI64(&q.win) || !r.ReadI64(&q.slide)) {
      return fail("truncated query table");
    }
    if (id <= prev_id || id >= next_id) return fail("bad query id");
    prev_id = id;
    Workload probe(window_type_, metric_);
    probe.AddQuery(q);
    if (!probe.Validate().empty()) return fail("invalid saved query");
    restored.emplace(id, q);
  }

  PlanHeadroom headroom = headroom_;
  BasisSnapshot snapshot;
  if (version >= 2) {
    headroom = PlanHeadroom();
    uint64_t num_r = 0;
    if (!r.ReadBool(&headroom.elastic) || !r.ReadU64(&num_r)) {
      return fail("truncated headroom");
    }
    for (uint64_t i = 0; i < num_r; ++i) {
      double v = 0.0;
      if (!r.ReadDouble(&v)) return fail("truncated headroom");
      if (!std::isfinite(v) || v <= 0.0) return fail("bad headroom radius");
      headroom.r_values.push_back(v);
    }
    if (!r.ReadI64(&headroom.k_slack) || !r.ReadI64(&headroom.win_floor) ||
        headroom.k_slack < 0 || headroom.win_floor < 0) {
      return fail("bad headroom");
    }
    uint64_t num_layers = 0;
    if (!r.ReadU64(&num_layers)) return fail("truncated basis snapshot");
    double prev_r = 0.0;
    for (uint64_t i = 0; i < num_layers; ++i) {
      double v = 0.0;
      if (!r.ReadDouble(&v)) return fail("truncated basis snapshot");
      if (!std::isfinite(v) || v <= prev_r) return fail("bad basis layer");
      prev_r = v;
      snapshot.layer_r.push_back(v);
    }
    if (!r.ReadI64(&snapshot.k_env) || !r.ReadI64(&snapshot.win)) {
      return fail("truncated basis snapshot");
    }
    if (snapshot.k_env < 0 || snapshot.win < 0 ||
        (!snapshot.empty() && (snapshot.k_env < 1 || snapshot.win < 1))) {
      return fail("bad basis snapshot");
    }
  }

  uint64_t num_batches = 0;
  if (!r.ReadU64(&num_batches)) return fail("truncated");
  std::deque<HistoryBatch> history;
  int64_t prev_boundary = INT64_MIN;
  for (uint64_t i = 0; i < num_batches; ++i) {
    HistoryBatch b;
    uint64_t num_points = 0;
    if (!r.ReadI64(&b.boundary) || !r.ReadU64(&num_points)) {
      return fail("truncated history");
    }
    if (b.boundary <= prev_boundary || b.boundary > last_boundary) {
      return fail("history boundaries out of order");
    }
    prev_boundary = b.boundary;
    for (uint64_t j = 0; j < num_points; ++j) {
      Point p;
      uint64_t dims = 0;
      if (!r.ReadI64(&p.seq) || !r.ReadI64(&p.time) || !r.ReadU64(&dims)) {
        return fail("truncated history point");
      }
      // Read per value rather than resizing to `dims` up front: a corrupt
      // count fails at the first missing byte instead of allocating.
      for (uint64_t d = 0; d < dims; ++d) {
        double v = 0.0;
        if (!r.ReadDouble(&v)) return fail("truncated history point");
        p.values.push_back(v);
      }
      b.points.push_back(std::move(p));
    }
    history.push_back(std::move(b));
  }
  if (!r.AtEnd()) return fail("trailing bytes");

  registered_ = std::move(restored);
  history_ = std::move(history);
  next_id_ = next_id;
  next_seq_ = next_seq;
  last_boundary_ = last_boundary;
  headroom_ = std::move(headroom);
  restored_basis_ = std::move(snapshot);
  detector_.reset();
  sop_detector_ = nullptr;
  detector_query_ids_.clear();
  dirty_ = true;  // next Advance rebuilds and replays the restored history
  return true;
}

size_t SopSession::MemoryBytes() const {
  size_t bytes = detector_ != nullptr ? detector_->MemoryBytes() : 0;
  bytes += DequeHeapBytes(history_);
  for (const HistoryBatch& b : history_) {
    bytes += VectorHeapBytes(b.points);
    for (const Point& p : b.points) bytes += VectorHeapBytes(p.values);
  }
  return bytes;
}

}  // namespace sop
