// libsop umbrella header — the supported public API surface.
//
//   #include "sop/sop.h"
//
// Everything an application needs is reachable from here:
//
//   * Describing work      Workload, OutlierQuery (query/workload.h)
//   * Building detectors   CreateDetector("sop" | "leap" | ...),
//                          KnownDetectorNames (detector/factory.h)
//   * Running streams      ExecutionEngine::Run — the one batching/emission
//                          loop — plus the RunStream convenience wrappers
//                          and the ResultSink callback (detector/engine.h,
//                          detector/driver.h)
//   * Dynamic workloads    SopSession: add/remove queries on a live stream
//                          (core/session.h)
//   * Serving              SopServer / SopClient: the shared session over
//                          TCP — subscribe queries, push batches, receive
//                          per-subscription emissions (net/server.h,
//                          net/client.h)
//   * Scaling out          SopRouter: spatial sharding over N workers with
//                          halo replication and merge-exact emissions
//                          (cluster/partition.h, cluster/router.h)
//   * Measuring            RunMetrics (detector/metrics.h) and the
//                          observability registry, instrumentation macros
//                          and exporters (obs/)
//   * Distance kernels     DistanceFn::MakeKernel + the columnar window
//                          mirror and backend selection
//                          (--kernel=scalar|avx2; common/dist_kernel.h,
//                          common/column_store.h)
//   * Data in/out          CSV points, workload spec files (io/), the
//                          paper's synthetic/STT generators (gen/), and
//                          per-point result aggregation (report/)
//
// Headers under src/sop/ that this file does not include (core/ksky.h,
// index/grid.h, detector/partitioned.h, ...) are internal: they may change
// or disappear between versions without notice. Include sop/sop.h and link
// the `sop` CMake target; see examples/ for complete programs.

#ifndef SOP_SOP_H_
#define SOP_SOP_H_

#include "sop/cluster/partition.h"
#include "sop/cluster/router.h"
#include "sop/common/column_store.h"
#include "sop/common/dist_kernel.h"
#include "sop/common/distance.h"
#include "sop/common/point.h"
#include "sop/common/random.h"
#include "sop/core/session.h"
#include "sop/detector/detector.h"
#include "sop/detector/driver.h"
#include "sop/detector/engine.h"
#include "sop/detector/factory.h"
#include "sop/detector/metrics.h"
#include "sop/gen/stt.h"
#include "sop/gen/synthetic.h"
#include "sop/gen/workload_gen.h"
#include "sop/io/csv.h"
#include "sop/io/workload_parser.h"
#include "sop/net/client.h"
#include "sop/net/server.h"
#include "sop/obs/export.h"
#include "sop/obs/metrics.h"
#include "sop/obs/trace.h"
#include "sop/query/query.h"
#include "sop/query/workload.h"
#include "sop/report/aggregate.h"
#include "sop/stream/source.h"

#endif  // SOP_SOP_H_
