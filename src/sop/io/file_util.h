// Whole-file byte I/O with crash-consistent writes.
//
// WriteFileAtomic provides the publish step checkpointing relies on: the
// bytes land in a sibling temp file first and are renamed over the target
// only after a successful flush, so a reader never observes a half-written
// file — it sees either the previous complete checkpoint or the new one.
// (rename(2) within one directory is atomic on POSIX; crash between write
// and rename leaves at most a stray .tmp sibling.)

#ifndef SOP_IO_FILE_UTIL_H_
#define SOP_IO_FILE_UTIL_H_

#include <string>

namespace sop {
namespace io {

/// Reads the whole file at `path` into `*out` (binary). Returns false and
/// sets `*error` when the file cannot be opened or read.
bool ReadFileToString(const std::string& path, std::string* out,
                      std::string* error);

/// Writes `bytes` to `path` via a temp-file + rename publish. On failure
/// (open, write, flush, or rename) returns false with `*error` set and
/// leaves any previous file at `path` intact.
bool WriteFileAtomic(const std::string& path, const std::string& bytes,
                     std::string* error);

/// The on-disk name of generation `generation` of `path`: generation 0 is
/// `path` itself (the newest), older ones are `path.1`, `path.2`, ...
std::string GenerationPath(const std::string& path, int generation);

/// Shifts existing generations one slot older ahead of a new publish at
/// `path`: path.(keep-2) -> path.(keep-1), ..., path -> path.1, so the
/// caller's subsequent WriteFileAtomic(path, ...) leaves the previous
/// `keep - 1` complete files intact. Each shift is a single rename(2), so
/// a crash mid-rotation loses at most ordering, never file contents.
/// keep <= 1 is a no-op (only the newest generation is retained).
void RotateGenerations(const std::string& path, int keep);

}  // namespace io
}  // namespace sop

#endif  // SOP_IO_FILE_UTIL_H_
