#include "sop/io/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sop {
namespace io {

bool ReadFileToString(const std::string& path, std::string* out,
                      std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (!file && !file.eof()) {
    *error = "read from " + path + " failed";
    return false;
  }
  *out = buffer.str();
  return true;
}

bool WriteFileAtomic(const std::string& path, const std::string& bytes,
                     std::string* error) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream file(temp, std::ios::binary | std::ios::trunc);
    if (!file) {
      *error = "cannot open " + temp + " for writing";
      return false;
    }
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!file.flush()) {
      *error = "write to " + temp + " failed";
      std::remove(temp.c_str());
      return false;
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    *error = "rename " + temp + " -> " + path + " failed: " +
             std::strerror(errno);
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

std::string GenerationPath(const std::string& path, int generation) {
  if (generation <= 0) return path;
  return path + "." + std::to_string(generation);
}

void RotateGenerations(const std::string& path, int keep) {
  // Oldest first: rename over the tail slot, then walk down to the live
  // file. A missing generation (fresh deployment, or a crash that already
  // consumed it) simply makes that rename fail, which is fine — rotation
  // is best-effort by design; only the publish itself must be atomic.
  for (int g = keep - 1; g >= 1; --g) {
    std::rename(GenerationPath(path, g - 1).c_str(),
                GenerationPath(path, g).c_str());
  }
}

}  // namespace io
}  // namespace sop
