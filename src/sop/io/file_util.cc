#include "sop/io/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sop {
namespace io {

bool ReadFileToString(const std::string& path, std::string* out,
                      std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (!file && !file.eof()) {
    *error = "read from " + path + " failed";
    return false;
  }
  *out = buffer.str();
  return true;
}

bool WriteFileAtomic(const std::string& path, const std::string& bytes,
                     std::string* error) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream file(temp, std::ios::binary | std::ios::trunc);
    if (!file) {
      *error = "cannot open " + temp + " for writing";
      return false;
    }
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!file.flush()) {
      *error = "write to " + temp + " failed";
      std::remove(temp.c_str());
      return false;
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    *error = "rename " + temp + " -> " + path + " failed: " +
             std::strerror(errno);
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

}  // namespace io
}  // namespace sop
