#include "sop/io/workload_parser.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace sop {
namespace io {

namespace {

bool SpecError(std::string* error, size_t line, const std::string& what) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "line %zu: %s", line, what.c_str());
  *error = buf;
  return false;
}

}  // namespace

bool ParseWorkloadSpec(const std::string& text, Workload* out,
                       std::string* error) {
  *out = Workload();
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  int next_attr_set = 1;
  while (std::getline(stream, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank line

    if (keyword == "window_type") {
      std::string value;
      if (!(tokens >> value)) return SpecError(error, line_no, "missing value");
      if (value == "count") {
        out->set_window_type(WindowType::kCount);
      } else if (value == "time") {
        out->set_window_type(WindowType::kTime);
      } else {
        return SpecError(error, line_no, "unknown window_type " + value);
      }
    } else if (keyword == "metric") {
      std::string value;
      if (!(tokens >> value)) return SpecError(error, line_no, "missing value");
      Metric metric;
      if (!ParseMetric(value, &metric)) {
        return SpecError(error, line_no, "unknown metric " + value);
      }
      out->set_metric(metric);
    } else if (keyword == "attrs") {
      int id = -1;
      if (!(tokens >> id)) return SpecError(error, line_no, "missing set id");
      if (id != next_attr_set) {
        return SpecError(error, line_no,
                         "attribute sets must be declared with consecutive "
                         "ids starting at 1");
      }
      std::vector<int> dims;
      int dim;
      while (tokens >> dim) {
        if (dim < 0) return SpecError(error, line_no, "negative dimension");
        if (!dims.empty() && dim <= dims.back()) {
          return SpecError(error, line_no,
                           "dimensions must be strictly increasing");
        }
        dims.push_back(dim);
      }
      if (dims.empty()) return SpecError(error, line_no, "empty attribute set");
      out->AddAttributeSet(std::move(dims));
      ++next_attr_set;
    } else if (keyword == "query") {
      OutlierQuery q;
      if (!(tokens >> q.r >> q.k >> q.win >> q.slide)) {
        return SpecError(error, line_no,
                         "query needs: r k win slide [attr_set]");
      }
      if (!(tokens >> q.attribute_set)) q.attribute_set = 0;
      out->AddQuery(q);
    } else {
      return SpecError(error, line_no, "unknown keyword " + keyword);
    }
  }
  const std::string problem = out->Validate();
  if (!problem.empty()) {
    *error = problem;
    return false;
  }
  return true;
}

bool LoadWorkloadSpec(const std::string& path, Workload* out,
                      std::string* error) {
  std::ifstream file(path);
  if (!file) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseWorkloadSpec(buffer.str(), out, error);
}

std::string FormatWorkloadSpec(const Workload& workload) {
  std::ostringstream out;
  out << "window_type " << WindowTypeName(workload.window_type()) << '\n';
  out << "metric " << MetricName(workload.metric()) << '\n';
  for (size_t i = 1; i < workload.attribute_sets().size(); ++i) {
    out << "attrs " << i;
    for (int dim : workload.attribute_sets()[i]) out << ' ' << dim;
    out << '\n';
  }
  char buf[64];
  for (const OutlierQuery& q : workload.queries()) {
    std::snprintf(buf, sizeof(buf), "query %.17g %lld %lld %lld", q.r,
                  static_cast<long long>(q.k), static_cast<long long>(q.win),
                  static_cast<long long>(q.slide));
    out << buf;
    if (q.attribute_set != 0) out << ' ' << q.attribute_set;
    out << '\n';
  }
  return out.str();
}

}  // namespace io
}  // namespace sop
