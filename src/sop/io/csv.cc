#include "sop/io/csv.h"

#include <cerrno>
#include <cfloat>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sop/obs/trace.h"

namespace sop {
namespace io {

namespace {

bool FormatError(std::string* error, size_t line, const char* what) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "line %zu: %s", line, what);
  *error = buf;
  return false;
}

// Why a line cannot be accepted as-is. Structural defects have no repair;
// value/time defects do.
enum class Defect {
  kNone,
  kBadSyntax,      // unparseable timestamp/attribute, missing separator
  kNoAttributes,   // timestamp only
  kDimMismatch,    // attribute count differs from the established arity
  kNonFinite,      // NaN/Inf/overflowing attribute value
  kTimeRegression  // timestamp below the previous accepted record's
};

const char* DefectMessage(Defect d) {
  switch (d) {
    case Defect::kBadSyntax:
      return "malformed record";
    case Defect::kNoAttributes:
      return "point has no attributes";
    case Defect::kDimMismatch:
      return "inconsistent attribute count";
    case Defect::kNonFinite:
      return "non-finite attribute value";
    case Defect::kTimeRegression:
      return "timestamps must be non-decreasing";
    case Defect::kNone:
      break;
  }
  return "ok";
}

// Parses one line into `*p`, reporting the first defect found. Value/time
// defects still fill `*p` completely so kClampRepair can fix them;
// structural defects leave `*p` partially filled.
Defect ParseLine(const std::string& line, size_t expected_dims,
                 int64_t last_time, bool have_last_time, Point* p) {
  const char* cursor = line.c_str();
  char* end = nullptr;
  errno = 0;
  p->time = std::strtoll(cursor, &end, 10);
  if (end == cursor || errno != 0) return Defect::kBadSyntax;
  cursor = end;
  bool non_finite = false;
  while (*cursor != '\0') {
    if (*cursor != ',') return Defect::kBadSyntax;
    ++cursor;
    errno = 0;
    double v = std::strtod(cursor, &end);
    if (end == cursor) return Defect::kBadSyntax;
    // strtod's two escape hatches from finite arithmetic: literal
    // nan/inf spellings (no errno) and overflow to ±HUGE_VAL (ERANGE).
    // Underflow to a denormal/zero also sets ERANGE but the value is
    // usable, so test the value, not errno.
    if (!std::isfinite(v)) non_finite = true;
    p->values.push_back(v);
    cursor = end;
  }
  if (p->values.empty()) return Defect::kNoAttributes;
  if (expected_dims != 0 && p->values.size() != expected_dims) {
    return Defect::kDimMismatch;
  }
  if (non_finite) return Defect::kNonFinite;
  if (have_last_time && p->time < last_time) return Defect::kTimeRegression;
  return Defect::kNone;
}

}  // namespace

bool ParsePointsCsv(const std::string& text, const CsvReadOptions& options,
                    std::vector<Point>* out, CsvReadStats* stats,
                    std::vector<std::string>* quarantined_lines,
                    std::string* error) {
  out->clear();
  CsvReadStats local_stats;
  CsvReadStats& st = stats != nullptr ? *stats : local_stats;
  st = CsvReadStats{};
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  size_t expected_dims = 0;

  auto quarantine = [&](const std::string& raw) {
    ++st.quarantined;
    SOP_COUNTER_ADD("resilience/quarantined", 1);
    if (quarantined_lines != nullptr) quarantined_lines->push_back(raw);
  };

  while (std::getline(stream, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    Point p;
    const bool have_last_time = !out->empty();
    const int64_t last_time = have_last_time ? out->back().time : 0;
    Defect defect =
        ParseLine(line, expected_dims, last_time, have_last_time, &p);
    if (defect != Defect::kNone) {
      if (options.policy == RecordPolicy::kFailFast) {
        return FormatError(error, line_no, DefectMessage(defect));
      }
      const bool repairable = defect == Defect::kNonFinite ||
                              defect == Defect::kTimeRegression;
      if (options.policy == RecordPolicy::kSkipQuarantine || !repairable) {
        quarantine(line);
        continue;
      }
      // kClampRepair: non-finite values clamp to the nearest finite value
      // (NaN to 0), timestamp regressions clamp to the previous timestamp.
      if (defect == Defect::kNonFinite) {
        for (double& v : p.values) {
          if (std::isnan(v)) {
            v = 0.0;
          } else if (std::isinf(v)) {
            v = v > 0 ? DBL_MAX : -DBL_MAX;
          }
        }
      }
      if (have_last_time && p.time < last_time) p.time = last_time;
      ++st.repaired;
      SOP_COUNTER_ADD("resilience/repaired", 1);
    }
    if (expected_dims == 0) expected_dims = p.values.size();
    p.seq = static_cast<Seq>(out->size());
    ++st.accepted;
    out->push_back(std::move(p));
  }
  return true;
}

bool ParsePointsCsv(const std::string& text, std::vector<Point>* out,
                    std::string* error) {
  return ParsePointsCsv(text, CsvReadOptions{}, out, nullptr, nullptr, error);
}

bool LoadPointsCsv(const std::string& path, const CsvReadOptions& options,
                   std::vector<Point>* out, CsvReadStats* stats,
                   std::string* error) {
  std::ifstream file(path);
  if (!file) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::vector<std::string> quarantined_lines;
  std::vector<std::string>* quarantine_sink =
      options.quarantine_path.empty() ? nullptr : &quarantined_lines;
  if (!ParsePointsCsv(buffer.str(), options, out, stats, quarantine_sink,
                      error)) {
    return false;
  }
  if (quarantine_sink != nullptr && !quarantined_lines.empty()) {
    std::ofstream sidecar(options.quarantine_path,
                          std::ios::binary | std::ios::trunc);
    for (const std::string& raw : quarantined_lines) sidecar << raw << '\n';
    if (!sidecar.flush()) {
      *error = "cannot write quarantine sidecar " + options.quarantine_path;
      return false;
    }
  }
  return true;
}

bool LoadPointsCsv(const std::string& path, std::vector<Point>* out,
                   std::string* error) {
  return LoadPointsCsv(path, CsvReadOptions{}, out, nullptr, error);
}

std::string FormatPointsCsv(const std::vector<Point>& points) {
  std::ostringstream out;
  char buf[64];
  for (const Point& p : points) {
    out << p.time;
    for (double v : p.values) {
      std::snprintf(buf, sizeof(buf), ",%.17g", v);
      out << buf;
    }
    out << '\n';
  }
  return out.str();
}

bool SavePointsCsv(const std::string& path, const std::vector<Point>& points,
                   std::string* error) {
  std::ofstream file(path);
  if (!file) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  file << FormatPointsCsv(points);
  if (!file) {
    *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace io
}  // namespace sop
