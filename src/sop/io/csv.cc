#include "sop/io/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sop {
namespace io {

namespace {

bool FormatError(std::string* error, size_t line, const char* what) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "line %zu: %s", line, what);
  *error = buf;
  return false;
}

}  // namespace

bool ParsePointsCsv(const std::string& text, std::vector<Point>* out,
                    std::string* error) {
  out->clear();
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  size_t expected_dims = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    Point p;
    const char* cursor = line.c_str();
    char* end = nullptr;
    errno = 0;
    p.time = std::strtoll(cursor, &end, 10);
    if (end == cursor || errno != 0) {
      return FormatError(error, line_no, "bad timestamp");
    }
    cursor = end;
    while (*cursor != '\0') {
      if (*cursor != ',') {
        return FormatError(error, line_no, "expected ','");
      }
      ++cursor;
      errno = 0;
      const double v = std::strtod(cursor, &end);
      if (end == cursor || errno != 0) {
        return FormatError(error, line_no, "bad attribute value");
      }
      p.values.push_back(v);
      cursor = end;
    }
    if (p.values.empty()) {
      return FormatError(error, line_no, "point has no attributes");
    }
    if (expected_dims == 0) {
      expected_dims = p.values.size();
    } else if (p.values.size() != expected_dims) {
      return FormatError(error, line_no, "inconsistent attribute count");
    }
    if (!out->empty() && p.time < out->back().time) {
      return FormatError(error, line_no, "timestamps must be non-decreasing");
    }
    p.seq = static_cast<Seq>(out->size());
    out->push_back(std::move(p));
  }
  return true;
}

bool LoadPointsCsv(const std::string& path, std::vector<Point>* out,
                   std::string* error) {
  std::ifstream file(path);
  if (!file) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParsePointsCsv(buffer.str(), out, error);
}

std::string FormatPointsCsv(const std::vector<Point>& points) {
  std::ostringstream out;
  char buf[64];
  for (const Point& p : points) {
    out << p.time;
    for (double v : p.values) {
      std::snprintf(buf, sizeof(buf), ",%.17g", v);
      out << buf;
    }
    out << '\n';
  }
  return out.str();
}

bool SavePointsCsv(const std::string& path, const std::vector<Point>& points,
                   std::string* error) {
  std::ofstream file(path);
  if (!file) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  file << FormatPointsCsv(points);
  if (!file) {
    *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace io
}  // namespace sop
