// CSV ingestion and export of point streams.
//
// Format: one point per line, `time,v1,v2,...` with a fixed number of
// attribute columns. Lines starting with '#' and blank lines are ignored.
// No exceptions: loaders report problems through an error string.

#ifndef SOP_IO_CSV_H_
#define SOP_IO_CSV_H_

#include <string>
#include <vector>

#include "sop/common/point.h"

namespace sop {
namespace io {

/// Parses points from CSV text. Returns false and sets `*error` on the
/// first malformed line (1-based line number included).
bool ParsePointsCsv(const std::string& text, std::vector<Point>* out,
                    std::string* error);

/// Loads points from a CSV file.
bool LoadPointsCsv(const std::string& path, std::vector<Point>* out,
                   std::string* error);

/// Serializes points to CSV text (inverse of ParsePointsCsv).
std::string FormatPointsCsv(const std::vector<Point>& points);

/// Writes points to a CSV file.
bool SavePointsCsv(const std::string& path, const std::vector<Point>& points,
                   std::string* error);

}  // namespace io
}  // namespace sop

#endif  // SOP_IO_CSV_H_
