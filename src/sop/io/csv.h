// CSV ingestion and export of point streams.
//
// Format: one point per line, `time,v1,v2,...` with a fixed number of
// attribute columns. Lines starting with '#' and blank lines are ignored.
// No exceptions: loaders report problems through an error string.
//
// Ingest is policy-hardened (stream/record_policy.h): a malformed line —
// unparseable, non-finite attribute value (NaN/Inf/overflow), wrong
// attribute count, or out-of-order timestamp — is a load error under
// kFailFast (the default, with the 1-based line number in the error),
// dropped-and-counted under kSkipQuarantine (optionally spooled raw to a
// sidecar file), or repaired where unambiguous under kClampRepair
// (non-finite values clamped, timestamp regressions clamped to the
// previous timestamp; structurally broken lines are still quarantined).

#ifndef SOP_IO_CSV_H_
#define SOP_IO_CSV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sop/common/point.h"
#include "sop/stream/record_policy.h"

namespace sop {
namespace io {

/// Ingest configuration for ParsePointsCsv/LoadPointsCsv.
struct CsvReadOptions {
  RecordPolicy policy = RecordPolicy::kFailFast;
  /// If non-empty, LoadPointsCsv writes every quarantined raw line to this
  /// sidecar file (overwritten per load; one line per record).
  std::string quarantine_path;
};

/// Per-load ingest accounting.
struct CsvReadStats {
  uint64_t accepted = 0;
  uint64_t quarantined = 0;
  uint64_t repaired = 0;
};

/// Parses points from CSV text under `options.policy`. Under kFailFast,
/// returns false and sets `*error` on the first malformed line (1-based
/// line number included); under the lenient policies, failure is only
/// possible for empty output (every line quarantined still returns true).
/// `stats` and `quarantined_lines` (raw text of quarantined lines) may be
/// null.
bool ParsePointsCsv(const std::string& text, const CsvReadOptions& options,
                    std::vector<Point>* out, CsvReadStats* stats,
                    std::vector<std::string>* quarantined_lines,
                    std::string* error);

/// Fail-fast convenience overload (the original API).
bool ParsePointsCsv(const std::string& text, std::vector<Point>* out,
                    std::string* error);

/// Loads points from a CSV file under `options`, spooling quarantined
/// lines to options.quarantine_path when set. `stats` may be null.
bool LoadPointsCsv(const std::string& path, const CsvReadOptions& options,
                   std::vector<Point>* out, CsvReadStats* stats,
                   std::string* error);

/// Fail-fast convenience overload (the original API).
bool LoadPointsCsv(const std::string& path, std::vector<Point>* out,
                   std::string* error);

/// Serializes points to CSV text (inverse of ParsePointsCsv).
std::string FormatPointsCsv(const std::vector<Point>& points);

/// Writes points to a CSV file.
bool SavePointsCsv(const std::string& path, const std::vector<Point>& points,
                   std::string* error);

}  // namespace io
}  // namespace sop

#endif  // SOP_IO_CSV_H_
