// Text format for outlier workload specifications.
//
// Grammar (line oriented; '#' starts a comment):
//
//   window_type count|time          # optional, default count
//   metric euclidean|manhattan      # optional, default euclidean
//   attrs <id> <dim> [<dim> ...]    # declare attribute set <id> (>= 1, in
//                                   # increasing order of id); set 0 is the
//                                   # implicit full space
//   query <r> <k> <win> <slide> [<attr_set>]
//
// Example:
//   window_type count
//   attrs 1 0 1
//   query 500 30 10000 500
//   query 800 50 20000 1000 1

#ifndef SOP_IO_WORKLOAD_PARSER_H_
#define SOP_IO_WORKLOAD_PARSER_H_

#include <string>

#include "sop/query/workload.h"

namespace sop {
namespace io {

/// Parses a workload spec. Returns false and sets `*error` (with a line
/// number) on the first problem; the workload is also validated.
bool ParseWorkloadSpec(const std::string& text, Workload* out,
                       std::string* error);

/// Loads a workload spec from a file.
bool LoadWorkloadSpec(const std::string& path, Workload* out,
                      std::string* error);

/// Serializes a workload to spec text (inverse of ParseWorkloadSpec).
std::string FormatWorkloadSpec(const Workload& workload);

}  // namespace io
}  // namespace sop

#endif  // SOP_IO_WORKLOAD_PARSER_H_
