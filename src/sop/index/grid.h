// Uniform grid index over alive stream points, for accelerating range
// scans.
//
// The original MCOD paper indexes the window with an M-tree; a uniform
// grid is the standard lightweight equivalent for low-dimensional numeric
// streams and is what later stream-outlier systems use. McodDetector can
// optionally route its insertion range scans through this index
// (McodDetector::Options::use_grid_index), and SopDetector can route its
// K-SKY candidate enumeration the same way
// (SopDetector::Options::use_grid_index), turning the O(|W|) linear scan
// into a visit of the cells overlapping the query ball.
//
// The grid is metric-aware: cells are laid over the distance function's
// attribute subspace, and candidate enumeration guarantees a superset of
// the true r-neighborhood for both Euclidean and Manhattan metrics (cells
// are pruned by the metric's own cell-to-point lower bound; callers always
// confirm with an exact distance).
//
// Candidate enumeration is the hottest loop of every grid-backed detector,
// so it is exposed without type erasure: VisitCandidates takes the visitor
// as a template parameter (the per-candidate call inlines into the cell
// walk — no std::function construction or indirect call per scan), and
// CollectCandidates batches the superset into a caller-owned scratch
// vector so steady-state scans are allocation-free.

#ifndef SOP_INDEX_GRID_H_
#define SOP_INDEX_GRID_H_

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sop/common/distance.h"
#include "sop/common/point.h"
#include "sop/obs/trace.h"

namespace sop {

/// Uniform grid over the subspace of `dist`. Not thread-safe; in
/// partition-parallel execution every child detector owns its own grid.
class GridIndex {
 public:
  /// `cell_size` is the grid pitch in attribute units (> 0). A good pitch
  /// is around the smallest query radius.
  GridIndex(DistanceFn dist, double cell_size);

  /// Indexes an alive point. The point's coordinates must not change while
  /// indexed.
  void Insert(Seq seq, const Point& p);

  /// Removes a previously inserted point (typically on expiry).
  void Remove(Seq seq, const Point& p);

  size_t size() const { return size_; }

  /// Invokes `visit(seq)` for every indexed point whose distance to `p`
  /// *may* be <= r (a superset filtered by cell lower bounds); the caller
  /// must confirm with an exact distance computation. `visit` is any
  /// callable taking a Seq; it is statically dispatched, so the call
  /// inlines into the scan loop.
  template <typename Visitor>
  void VisitCandidates(const Point& p, double r, Visitor&& visit) const {
    if (size_ == 0) return;
    const CellCoords center = CellOf(p);
    // Per-query scan state: the cell span depends only on r (one ceil per
    // radius change, not per probe — detectors probe with a fixed r), and
    // the odometer scratch is reused across scans so the steady state
    // allocates nothing.
    if (r != scan_r_) {
      scan_r_ = r;
      scan_span_ = static_cast<int64_t>(std::ceil(r / cell_size_)) + 1;
    }
    const int64_t span = scan_span_;
    const size_t ndims = center.size();
    scan_coords_.assign(ndims, 0);
    scan_offset_.assign(ndims, -span);
    // Register-local tallies; published in one gated batch below so the
    // scan itself never branches on the observability state.
    [[maybe_unused]] uint64_t obs_cells = 0;
    [[maybe_unused]] uint64_t obs_candidates = 0;
    for (;;) {
      for (size_t i = 0; i < ndims; ++i) {
        scan_coords_[i] = center[i] + scan_offset_[i];
      }
      if (CellLowerBound(p, scan_coords_) <= r) {
        const auto it = cells_.find(HashCell(scan_coords_));
        if (it != cells_.end()) {
          for (const Entry& e : it->second) {
            if (e.coords != scan_coords_) continue;
            ++obs_cells;
            obs_candidates += e.seqs.size();
            for (const Seq s : e.seqs) visit(s);
          }
        }
      }
      // Advance the odometer.
      size_t i = 0;
      for (; i < ndims; ++i) {
        if (++scan_offset_[i] <= span) break;
        scan_offset_[i] = -span;
      }
      if (i == ndims) break;
    }
    SOP_COUNTER_ADD("grid/scans", 1);
    SOP_COUNTER_ADD("grid/cells_visited", obs_cells);
    SOP_COUNTER_ADD("grid/candidates_yielded", obs_candidates);
  }

  /// Batched form of VisitCandidates: clears `*out` and fills it with the
  /// candidate superset (unordered). `*out` is caller-owned scratch —
  /// reuse it across scans to keep the enumeration allocation-free.
  void CollectCandidates(const Point& p, double r, std::vector<Seq>* out) const;

  /// Approximate heap bytes held.
  size_t MemoryBytes() const;

 private:
  using CellCoords = std::vector<int64_t>;

  // Quantized cell coordinates of `p` over the subspace dims.
  CellCoords CellOf(const Point& p) const;

  // 64-bit mix of cell coordinates.
  static uint64_t HashCell(const CellCoords& c);

  // Lower bound on the metric distance from `p` to any point inside the
  // cell with coords `c`.
  double CellLowerBound(const Point& p, const CellCoords& c) const;

  // The attribute indices the grid spans.
  const std::vector<int>& dims() const;

  DistanceFn dist_;
  std::vector<int> full_space_dims_;  // filled lazily for empty subspaces
  double cell_size_;
  size_t size_ = 0;
  // Buckets by hashed cell; collisions are resolved by exact coord match
  // inside the bucket entries.
  struct Entry {
    CellCoords coords;
    std::vector<Seq> seqs;
  };
  std::unordered_map<uint64_t, std::vector<Entry>> cells_;
  // VisitCandidates scan state (see there). Mutable scratch — one more
  // reason the index is not thread-safe.
  mutable CellCoords scan_coords_;
  mutable std::vector<int64_t> scan_offset_;
  mutable double scan_r_ = -1.0;
  mutable int64_t scan_span_ = 0;
};

}  // namespace sop

#endif  // SOP_INDEX_GRID_H_
