#include "sop/index/grid.h"

#include <algorithm>
#include <cmath>

#include "sop/common/check.h"
#include "sop/common/memory.h"

namespace sop {

GridIndex::GridIndex(DistanceFn dist, double cell_size)
    : dist_(std::move(dist)), cell_size_(cell_size) {
  SOP_CHECK_MSG(cell_size_ > 0.0, "grid cell size must be positive");
}

const std::vector<int>& GridIndex::dims() const {
  return dist_.attributes().empty() ? full_space_dims_ : dist_.attributes();
}

GridIndex::CellCoords GridIndex::CellOf(const Point& p) const {
  // Lazily derive full-space dims from the first point seen.
  if (dist_.attributes().empty() && full_space_dims_.empty()) {
    auto* self = const_cast<GridIndex*>(this);
    for (size_t d = 0; d < p.values.size(); ++d) {
      self->full_space_dims_.push_back(static_cast<int>(d));
    }
  }
  CellCoords coords;
  coords.reserve(dims().size());
  for (const int d : dims()) {
    coords.push_back(static_cast<int64_t>(
        std::floor(p.values[static_cast<size_t>(d)] / cell_size_)));
  }
  return coords;
}

uint64_t GridIndex::HashCell(const CellCoords& c) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const int64_t v : c) {
    uint64_t x = static_cast<uint64_t>(v);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    h ^= (x ^ (x >> 31)) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

void GridIndex::Insert(Seq seq, const Point& p) {
  const CellCoords coords = CellOf(p);
  std::vector<Entry>& bucket = cells_[HashCell(coords)];
  for (Entry& e : bucket) {
    if (e.coords == coords) {
      e.seqs.push_back(seq);
      ++size_;
      return;
    }
  }
  bucket.push_back(Entry{coords, {seq}});
  ++size_;
}

void GridIndex::Remove(Seq seq, const Point& p) {
  const CellCoords coords = CellOf(p);
  const auto it = cells_.find(HashCell(coords));
  SOP_CHECK_MSG(it != cells_.end(), "removing unindexed point");
  for (size_t b = 0; b < it->second.size(); ++b) {
    Entry& e = it->second[b];
    if (e.coords != coords) continue;
    const auto pos = std::find(e.seqs.begin(), e.seqs.end(), seq);
    SOP_CHECK_MSG(pos != e.seqs.end(), "removing unindexed point");
    e.seqs.erase(pos);
    --size_;
    if (e.seqs.empty()) {
      it->second.erase(it->second.begin() + static_cast<long>(b));
      if (it->second.empty()) cells_.erase(it);
    }
    return;
  }
  SOP_CHECK_MSG(false, "removing unindexed point");
}

double GridIndex::CellLowerBound(const Point& p, const CellCoords& c) const {
  // Per-dimension gap between p and the cell's coordinate slab.
  double sum = 0.0;
  const auto& ds = dims();
  for (size_t i = 0; i < ds.size(); ++i) {
    const double v = p.values[static_cast<size_t>(ds[i])];
    const double lo = static_cast<double>(c[i]) * cell_size_;
    const double hi = lo + cell_size_;
    double gap = 0.0;
    if (v < lo) {
      gap = lo - v;
    } else if (v > hi) {
      gap = v - hi;
    }
    switch (dist_.metric()) {
      case Metric::kEuclidean:
        sum += gap * gap;
        break;
      case Metric::kManhattan:
        sum += gap;
        break;
    }
  }
  return dist_.metric() == Metric::kEuclidean ? std::sqrt(sum) : sum;
}

void GridIndex::CollectCandidates(const Point& p, double r,
                                  std::vector<Seq>* out) const {
  out->clear();
  VisitCandidates(p, r, [out](Seq s) { out->push_back(s); });
}

size_t GridIndex::MemoryBytes() const {
  size_t bytes = cells_.size() * (sizeof(uint64_t) + sizeof(std::vector<Entry>) +
                                  2 * sizeof(void*));
  for (const auto& [hash, bucket] : cells_) {
    bytes += VectorHeapBytes(bucket);
    for (const Entry& e : bucket) {
      bytes += VectorHeapBytes(e.coords) + VectorHeapBytes(e.seqs);
    }
  }
  return bytes;
}

}  // namespace sop
