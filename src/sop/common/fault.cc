#include "sop/common/fault.h"

#include "sop/common/check.h"

namespace sop {

std::atomic<FaultInjector*> FaultInjector::g_armed{nullptr};

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kSourceRead:
      return "source-read";
    case FaultSite::kSinkEmit:
      return "sink-emit";
    case FaultSite::kCheckpointWrite:
      return "checkpoint-write";
    case FaultSite::kCheckpointRead:
      return "checkpoint-read";
    case FaultSite::kCheckpointBytes:
      return "checkpoint-bytes";
    case FaultSite::kBatchStall:
      return "batch-stall";
    case FaultSite::kNetRead:
      return "net-read";
    case FaultSite::kNetWrite:
      return "net-write";
  }
  return "unknown";
}

FaultInjector::FaultInjector(uint64_t seed)
    : corrupt_rng_(seed ^ 0xC0'44'7E'57'C0'44'7E'57ULL) {
  sites_.reserve(kNumFaultSites);
  for (int i = 0; i < kNumFaultSites; ++i) {
    // Decorrelate per-site decision streams from one another.
    sites_.emplace_back(seed + 0x9E3779B97F4A7C15ULL * (i + 1));
  }
}

void FaultInjector::SetRate(FaultSite site, double rate) {
  SOP_CHECK_MSG(rate >= 0.0 && rate <= 1.0, "fault rate must be in [0, 1]");
  std::lock_guard<std::mutex> lock(mu_);
  sites_[static_cast<size_t>(site)].rate = rate;
}

void FaultInjector::SetMaxFailures(FaultSite site, int64_t max_failures) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_[static_cast<size_t>(site)].max_failures = max_failures;
}

void FaultInjector::SetStallMillis(int64_t ms) {
  SOP_CHECK_MSG(ms >= 0, "stall millis must be >= 0");
  stall_millis_ = ms;
}

bool FaultInjector::ShouldFail(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& s = sites_[static_cast<size_t>(site)];
  ++s.consulted;
  if (s.rate <= 0.0) return false;
  if (s.max_failures >= 0 && s.injected >= s.max_failures) return false;
  if (s.rng.UniformDouble() >= s.rate) return false;
  ++s.injected;
  return true;
}

void FaultInjector::CorruptBytes(std::string* bytes) {
  if (bytes->empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t bit =
      corrupt_rng_.NextBelow(static_cast<uint64_t>(bytes->size()) * 8);
  (*bytes)[static_cast<size_t>(bit / 8)] ^=
      static_cast<char>(1u << (bit % 8));
}

int64_t FaultInjector::injected(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_[static_cast<size_t>(site)].injected;
}

int64_t FaultInjector::consulted(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_[static_cast<size_t>(site)].consulted;
}

}  // namespace sop
