// Small arithmetic helpers shared across subsystems.

#ifndef SOP_COMMON_MATH_UTIL_H_
#define SOP_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "sop/common/check.h"

namespace sop {

/// Greatest common divisor of all values; the *swift query* slide size
/// (paper Sec. 4.2). Requires a non-empty list of positive values.
inline int64_t GcdAll(const std::vector<int64_t>& values) {
  SOP_CHECK(!values.empty());
  int64_t g = 0;
  for (int64_t v : values) {
    SOP_CHECK_MSG(v > 0, "gcd requires positive values");
    g = std::gcd(g, v);
  }
  return g;
}

/// Ceiling division for non-negative a, positive b.
inline int64_t CeilDiv(int64_t a, int64_t b) {
  SOP_DCHECK(a >= 0 && b > 0);
  return (a + b - 1) / b;
}

}  // namespace sop

#endif  // SOP_COMMON_MATH_UTIL_H_
