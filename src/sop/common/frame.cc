#include "sop/common/frame.h"

#include <array>
#include <cstring>

namespace sop {

namespace {

constexpr uint32_t kFrameMagic = 0x53'4f'50'46;  // "SOPF"

// Reflected CRC-32 lookup table, built once at first use.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

bool FrameError(std::string* error, const char* what) {
  if (error != nullptr) *error = std::string("checkpoint frame: ") + what;
  return false;
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  const std::array<uint32_t, 256>& table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string WrapFrame(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendU32(&out, kFrameMagic);
  AppendU32(&out, kFrameVersion);
  AppendU64(&out, static_cast<uint64_t>(payload.size()));
  AppendU32(&out, Crc32(payload));
  out.append(payload.data(), payload.size());
  return out;
}

bool ParseFrameHeader(std::string_view header, uint64_t* payload_length,
                      std::string* error) {
  if (header.size() < kFrameHeaderBytes) {
    return FrameError(error, "truncated header");
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  std::memcpy(&magic, header.data(), sizeof(magic));
  std::memcpy(&version, header.data() + 4, sizeof(version));
  if (magic != kFrameMagic) return FrameError(error, "bad magic");
  if (version != kFrameVersion) {
    return FrameError(error, "unsupported frame version");
  }
  std::memcpy(payload_length, header.data() + 8, sizeof(*payload_length));
  return true;
}

bool UnwrapFrame(std::string_view framed, std::string_view* payload,
                 std::string* error) {
  if (framed.size() < kFrameHeaderBytes) {
    return FrameError(error, "truncated header");
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
  std::memcpy(&magic, framed.data(), sizeof(magic));
  std::memcpy(&version, framed.data() + 4, sizeof(version));
  std::memcpy(&length, framed.data() + 8, sizeof(length));
  std::memcpy(&crc, framed.data() + 16, sizeof(crc));
  if (magic != kFrameMagic) return FrameError(error, "bad magic");
  if (version != kFrameVersion) {
    return FrameError(error, "unsupported frame version");
  }
  if (framed.size() - kFrameHeaderBytes < length) {
    return FrameError(error, "truncated payload");
  }
  if (framed.size() - kFrameHeaderBytes > length) {
    return FrameError(error, "trailing bytes after payload");
  }
  const std::string_view body = framed.substr(kFrameHeaderBytes, length);
  if (Crc32(body) != crc) return FrameError(error, "payload CRC mismatch");
  *payload = body;
  return true;
}

}  // namespace sop
