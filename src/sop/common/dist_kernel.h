// Batched distance kernel over the columnar window store.
//
// This is the single distance entry point for detector hot loops: instead
// of calling DistanceFn::operator()(Point, Point) once per candidate —
// chasing a heap-allocated attribute vector per pair — a detector resolves
// its candidate batch against the ColumnStore with one kernel call per
// probe. The kernel streams through contiguous attribute columns in tight,
// auto-vectorizable loops (Euclidean + Manhattan, full-space + attribute
// subspace) and optionally through a runtime-dispatched AVX2 path.
//
// Bit-identity contract. Every backend returns, for every candidate, a
// double bitwise identical to DistanceFn(probe, candidate): the per-pair
// accumulation order (attribute-ascending add of squared/absolute
// differences, then one sqrt for Euclidean) is preserved exactly, and the
// AVX2 path vectorizes *across candidates* (four independent accumulators
// in the vector lanes), never across attributes, using the same
// IEEE-exact multiply/add/sqrt operations. Detector emissions therefore do
// not depend on the selected backend; tests/kernel_test.cc enforces this.
//
// Backend selection is process-global (SetKernelBackend) with kScalar as
// the always-available default; the AVX2 backend is compiled in when the
// toolchain supports -mavx2 and engaged only if the running CPU reports
// AVX2. Tools expose it as --kernel=scalar|avx2|auto.
//
// Each kernel instance owns mutable scratch (slot/distance staging), so
// instances are cheap but NOT thread-safe: give each detector its own
// kernel (DistanceFn::MakeKernel), exactly like the grid scratch buffers.

#ifndef SOP_COMMON_DIST_KERNEL_H_
#define SOP_COMMON_DIST_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sop/common/column_store.h"
#include "sop/common/distance.h"
#include "sop/common/point.h"

namespace sop {

/// Instruction-set backend the batch kernels execute with.
enum class KernelBackend {
  kScalar,  // portable tight loops; always available; the default
  kAvx2,    // 4-wide vertical AVX2; requires compiled-in support + CPU flag
};

/// True iff `backend` can run in this build on this machine.
bool KernelBackendSupported(KernelBackend backend);

/// Parses "scalar" / "avx2" / "auto" (auto = best supported). Returns
/// false on unknown names or unsupported explicit backends.
bool ParseKernelBackend(const std::string& name, KernelBackend* out);

/// Human-readable name of `backend`.
const char* KernelBackendName(KernelBackend backend);

/// Selects the process-global backend. Returns false (and leaves the
/// selection unchanged) if `backend` is unsupported here.
bool SetKernelBackend(KernelBackend backend);

/// The currently selected backend (kScalar unless overridden).
KernelBackend ActiveKernelBackend();

/// A distance function bound to batch execution: metric + attribute
/// subspace (empty = full space), evaluated against a ColumnStore.
/// Construct via DistanceFn::MakeKernel(). Holds reusable scratch;
/// not thread-safe.
class DistanceKernel {
 public:
  DistanceKernel() = default;
  DistanceKernel(Metric metric, std::vector<int> attributes)
      : metric_(metric), attributes_(std::move(attributes)) {}

  Metric metric() const { return metric_; }
  const std::vector<int>& attributes() const { return attributes_; }

  /// out[i] = dist(probe, point seqs[i]) for i in [0, n). Every seq must
  /// be alive in `cols`; `probe` need not be (it is typically the point
  /// under evaluation, passed by row).
  void BatchDist(const ColumnStore& cols, const Point& probe,
                 const Seq* seqs, size_t n, double* out) const;

  /// out[i] = dist(probe, point lo + i) for i in [0, n): the contiguous
  /// alive range [lo, lo + n). Unit-stride column access (at most two
  /// segments at the ring seam) — use for cursor/window scans.
  void BatchDistRange(const ColumnStore& cols, const Point& probe, Seq lo,
                      size_t n, double* out) const;

  /// Number of seqs[i] with dist(probe, seqs[i]) <= r.
  size_t CountWithinR(const ColumnStore& cols, const Point& probe,
                      const Seq* seqs, size_t n, double r) const;

  /// Stable in-place range confirmation: compacts the hits (dist <= r) to
  /// seqs[0..h) with dists[i] their distances, preserving order, and
  /// returns h. `dists` must have room for n doubles.
  size_t PartitionWithinR(const ColumnStore& cols, const Point& probe,
                          Seq* seqs, size_t n, double r,
                          double* dists) const;

 private:
  // Resolves probe values and column base pointers for the bound
  // subspace, and seqs to int32 ring slots, into the scratch arrays.
  void Stage(const ColumnStore& cols, const Point& probe) const;
  void StageSlots(const ColumnStore& cols, const Seq* seqs, size_t n) const;

  Metric metric_ = Metric::kEuclidean;
  std::vector<int> attributes_;  // empty = full space

  // Scratch staged per batch (see Stage); mutable so the batch entry
  // points stay const like DistanceFn::operator().
  mutable std::vector<const double*> col_ptrs_;
  mutable std::vector<double> probe_vals_;
  mutable std::vector<int32_t> slot_scratch_;
  mutable std::vector<double> dist_scratch_;
};

}  // namespace sop

#endif  // SOP_COMMON_DIST_KERNEL_H_
