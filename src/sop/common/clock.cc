#include "sop/common/clock.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace sop {

namespace {

/// The default time source: std::chrono::steady_clock.
class RealClock : public Clock {
 public:
  int64_t NowMicros() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepMicros(int64_t us) override {
    if (us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  }
};

RealClock* RealSingleton() {
  static RealClock clock;
  return &clock;
}

std::atomic<Clock*> g_armed{nullptr};

}  // namespace

Clock* Clock::Active() {
  Clock* armed = g_armed.load(std::memory_order_acquire);
  return armed != nullptr ? armed : RealSingleton();
}

void Clock::Arm(Clock* clock) {
  Clock* expected = nullptr;
  if (!g_armed.compare_exchange_strong(expected, clock,
                                       std::memory_order_acq_rel)) {
    std::fprintf(stderr, "Clock::Arm: a clock is already armed\n");
    std::abort();
  }
}

void Clock::Disarm(Clock* clock) {
  Clock* expected = clock;
  g_armed.compare_exchange_strong(expected, nullptr,
                                  std::memory_order_acq_rel);
}

}  // namespace sop
