// Fenwick (binary indexed) tree over 1-based positions, used for layer
// cardinality bookkeeping in the SOP core.
//
// The paper's skyEvaluate maintains per-layer cardinalities and sums a
// prefix per candidate (Alg. 2 lines 3-5, O(L)); a Fenwick tree implements
// the identical bookkeeping in O(log L) per update/query, which matters
// for workloads with thousands of distinct r values. Resets are done by
// undoing updates so that reuse across points costs O(inserts log L), not
// O(L).

#ifndef SOP_COMMON_FENWICK_H_
#define SOP_COMMON_FENWICK_H_

#include <cstdint>
#include <vector>

#include "sop/common/check.h"

namespace sop {

/// Fenwick tree of int64 counts over positions 1..size.
class FenwickTree {
 public:
  FenwickTree() = default;
  explicit FenwickTree(int size) { Reset(size); }

  /// Re-dimensions and zeroes the tree.
  void Reset(int size) {
    SOP_CHECK(size >= 0);
    tree_.assign(static_cast<size_t>(size) + 1, 0);
  }

  int size() const { return static_cast<int>(tree_.size()) - 1; }

  /// Adds `delta` at position `pos` (1-based).
  void Add(int pos, int64_t delta) {
    SOP_DCHECK(pos >= 1 && pos <= size());
    for (; pos <= size(); pos += pos & -pos) {
      tree_[static_cast<size_t>(pos)] += delta;
    }
  }

  /// Sum of positions 1..pos (0 returns 0).
  int64_t PrefixSum(int pos) const {
    SOP_DCHECK(pos >= 0 && pos <= size());
    int64_t sum = 0;
    for (; pos > 0; pos -= pos & -pos) {
      sum += tree_[static_cast<size_t>(pos)];
    }
    return sum;
  }

 private:
  std::vector<int64_t> tree_;
};

}  // namespace sop

#endif  // SOP_COMMON_FENWICK_H_
