// Process-wide time source with an arming hook, mirroring the
// FaultInjector registry (common/fault.h): production code reads time and
// sleeps through Clock::Active(), which is the real steady clock unless a
// test armed a substitute. The deterministic simulation harness
// (sim/sim.h) arms a virtual clock whose SleepMicros advances simulated
// time instantly, so every retry/backoff and timeout path it reaches —
// the socket fault backoff, the client's reconnect schedule, the
// replication reconnect cadence — runs at full speed under test without
// touching wall time.
//
// Arm/Disarm are for test harnesses only and must bracket the lifetime of
// every thread that might sleep through the armed clock.

#ifndef SOP_COMMON_CLOCK_H_
#define SOP_COMMON_CLOCK_H_

#include <cstdint>

namespace sop {

/// Time-source interface. Implementations must be thread-safe: NowMicros
/// and SleepMicros are called concurrently from every serving thread.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() = 0;

  /// Blocks the caller for `us` microseconds of this clock's time. A
  /// virtual clock advances its epoch and returns immediately.
  virtual void SleepMicros(int64_t us) = 0;

  /// The armed clock, or the real (steady_clock) singleton.
  static Clock* Active();

  /// Arms `clock` process-wide. Exactly one clock may be armed at a time;
  /// arming over a live clock aborts (it would silently skew time).
  static void Arm(Clock* clock);

  /// Disarms `clock` if it is the armed one (tolerates races with a
  /// concurrent disarm, like FaultInjector).
  static void Disarm(Clock* clock);
};

/// RAII arming for tests.
class ScopedClock {
 public:
  explicit ScopedClock(Clock* clock) : clock_(clock) { Clock::Arm(clock_); }
  ~ScopedClock() { Clock::Disarm(clock_); }

  ScopedClock(const ScopedClock&) = delete;
  ScopedClock& operator=(const ScopedClock&) = delete;

 private:
  Clock* clock_;
};

/// Convenience wrappers over Clock::Active().
inline int64_t NowMicros();
inline void SleepMicros(int64_t us);
inline void SleepMillis(int64_t ms) { SleepMicros(ms * 1000); }

inline int64_t NowMicros() { return Clock::Active()->NowMicros(); }
inline void SleepMicros(int64_t us) { Clock::Active()->SleepMicros(us); }

}  // namespace sop

#endif  // SOP_COMMON_CLOCK_H_
