// Internal batch-loop primitives shared by the portable and AVX2 kernel
// translation units. Not part of the public API.
//
// Both forms take subspace-resolved inputs: `cols[i]` is the base pointer
// of the i-th bound attribute's column and `probe[i]` the probe's value in
// that attribute, for i in [0, ndims). The gather form reads candidate j
// at cols[i][slots[j]]; the contiguous form at cols[i][slot0 + j].

#ifndef SOP_COMMON_DIST_KERNEL_INTERNAL_H_
#define SOP_COMMON_DIST_KERNEL_INTERNAL_H_

#include <cstddef>
#include <cstdint>

#include "sop/common/distance.h"

namespace sop::kernel_internal {

void ScalarBatchGather(Metric metric, const double* const* cols,
                       const double* probe, size_t ndims,
                       const int32_t* slots, size_t n, double* out);
void ScalarBatchContig(Metric metric, const double* const* cols,
                       const double* probe, size_t ndims, size_t slot0,
                       size_t n, double* out);

#if defined(SOP_KERNEL_HAVE_AVX2)
void Avx2BatchGather(Metric metric, const double* const* cols,
                     const double* probe, size_t ndims, const int32_t* slots,
                     size_t n, double* out);
void Avx2BatchContig(Metric metric, const double* const* cols,
                     const double* probe, size_t ndims, size_t slot0,
                     size_t n, double* out);
#endif  // SOP_KERNEL_HAVE_AVX2

}  // namespace sop::kernel_internal

#endif  // SOP_COMMON_DIST_KERNEL_INTERNAL_H_
