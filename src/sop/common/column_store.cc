#include "sop/common/column_store.h"

#include "sop/common/memory.h"

namespace sop {

namespace {
constexpr size_t kInitialCapacity = 64;  // power of two
}  // namespace

void ColumnStore::Append(const Point& p) {
  SOP_DCHECK(p.seq == next_seq());
  if (!dims_set_) {
    dims_set_ = true;
    dims_ = p.values.size();
    cols_.assign(dims_, {});
  }
  SOP_CHECK_MSG(p.values.size() == dims_,
                "ColumnStore requires uniform point dimensionality");
  if (size_ == capacity()) Grow();
  const size_t slot =
      static_cast<size_t>(static_cast<uint64_t>(p.seq)) & mask_;
  seqs_[slot] = p.seq;
  times_[slot] = p.time;
  for (size_t d = 0; d < dims_; ++d) cols_[d][slot] = p.values[d];
  ++size_;
}

void ColumnStore::PopFront(size_t n) {
  SOP_DCHECK(n <= size_);
  first_seq_ += static_cast<Seq>(n);
  size_ -= n;
}

void ColumnStore::ResetTo(Seq first_seq) {
  SOP_CHECK_MSG(size_ == 0, "ResetTo requires an empty store");
  first_seq_ = first_seq;
}

void ColumnStore::Grow() {
  const size_t old_cap = capacity();
  const size_t new_cap = old_cap == 0 ? kInitialCapacity : old_cap * 2;
  const size_t new_mask = new_cap - 1;
  std::vector<Seq> seqs(new_cap);
  std::vector<Timestamp> times(new_cap);
  std::vector<std::vector<double>> cols(dims_);
  for (size_t d = 0; d < dims_; ++d) cols[d].resize(new_cap);
  // Re-scatter the alive range into its new slots.
  for (Seq s = first_seq_; s < next_seq(); ++s) {
    const size_t from = static_cast<size_t>(static_cast<uint64_t>(s)) & mask_;
    const size_t to = static_cast<size_t>(static_cast<uint64_t>(s)) & new_mask;
    seqs[to] = seqs_[from];
    times[to] = times_[from];
    for (size_t d = 0; d < dims_; ++d) cols[d][to] = cols_[d][from];
  }
  seqs_.swap(seqs);
  times_.swap(times);
  cols_.swap(cols);
  mask_ = new_mask;
}

size_t ColumnStore::MemoryBytes() const {
  size_t bytes = VectorHeapBytes(seqs_) + VectorHeapBytes(times_);
  for (const auto& c : cols_) bytes += VectorHeapBytes(c);
  return bytes;
}

}  // namespace sop
