// The streaming data point representation shared by every subsystem.

#ifndef SOP_COMMON_POINT_H_
#define SOP_COMMON_POINT_H_

#include <cstdint>
#include <vector>

namespace sop {

/// Arrival sequence number of a point. 0-based, strictly increasing in
/// arrival order; this is the total temporal order used by all domination
/// and succeeding-neighbor reasoning.
using Seq = int64_t;

/// Timestamp of a point in abstract time units (only used by time-based
/// windows). Must be non-decreasing in arrival order.
using Timestamp = int64_t;

/// A multi-dimensional streaming tuple.
///
/// `seq` is assigned by the stream driver on arrival; `time` comes from the
/// data source. `values` holds the numeric attributes outlier distance is
/// computed over. Categorical source attributes must be mapped to numeric
/// values upstream (see gen::SttGenerator for an example).
struct Point {
  Seq seq = 0;
  Timestamp time = 0;
  std::vector<double> values;

  Point() = default;
  Point(Seq s, Timestamp t, std::vector<double> v)
      : seq(s), time(t), values(std::move(v)) {}
};

}  // namespace sop

#endif  // SOP_COMMON_POINT_H_
