// AVX2 backend of the batch distance kernel. Compiled with -mavx2 (and
// ONLY -mavx2 — never -mfma: fused multiply-add would change rounding and
// break the bit-identity contract of dist_kernel.h); entered only after a
// runtime __builtin_cpu_supports("avx2") check.
//
// Vectorization is vertical: four candidates ride in the four vector
// lanes, each lane accumulating its own attribute-ascending sum with the
// same IEEE multiply/add/sqrt operations the scalar core uses, so every
// lane's result is bit-identical to the scalar computation. The tail
// (n % 4) falls through to the scalar core.

#if defined(SOP_KERNEL_HAVE_AVX2)

#include <immintrin.h>

#include "sop/common/dist_kernel_internal.h"

namespace sop::kernel_internal {

namespace {

// |x| via clearing the sign bit — same result as std::fabs.
inline __m256d Abs(__m256d x) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
}

}  // namespace

void Avx2BatchGather(Metric metric, const double* const* cols,
                     const double* probe, size_t ndims, const int32_t* slots,
                     size_t n, double* out) {
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(slots + j));
    __m256d acc = _mm256_setzero_pd();
    if (metric == Metric::kEuclidean) {
      for (size_t i = 0; i < ndims; ++i) {
        const __m256d v = _mm256_i32gather_pd(cols[i], idx, 8);
        const __m256d d = _mm256_sub_pd(_mm256_set1_pd(probe[i]), v);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
      }
      _mm256_storeu_pd(out + j, _mm256_sqrt_pd(acc));
    } else {
      for (size_t i = 0; i < ndims; ++i) {
        const __m256d v = _mm256_i32gather_pd(cols[i], idx, 8);
        const __m256d d = _mm256_sub_pd(_mm256_set1_pd(probe[i]), v);
        acc = _mm256_add_pd(acc, Abs(d));
      }
      _mm256_storeu_pd(out + j, acc);
    }
  }
  if (j < n) {
    ScalarBatchGather(metric, cols, probe, ndims, slots + j, n - j, out + j);
  }
}

void Avx2BatchContig(Metric metric, const double* const* cols,
                     const double* probe, size_t ndims, size_t slot0,
                     size_t n, double* out) {
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d acc = _mm256_setzero_pd();
    if (metric == Metric::kEuclidean) {
      for (size_t i = 0; i < ndims; ++i) {
        const __m256d v = _mm256_loadu_pd(cols[i] + slot0 + j);
        const __m256d d = _mm256_sub_pd(_mm256_set1_pd(probe[i]), v);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
      }
      _mm256_storeu_pd(out + j, _mm256_sqrt_pd(acc));
    } else {
      for (size_t i = 0; i < ndims; ++i) {
        const __m256d v = _mm256_loadu_pd(cols[i] + slot0 + j);
        const __m256d d = _mm256_sub_pd(_mm256_set1_pd(probe[i]), v);
        acc = _mm256_add_pd(acc, Abs(d));
      }
      _mm256_storeu_pd(out + j, acc);
    }
  }
  if (j < n) {
    ScalarBatchContig(metric, cols, probe, ndims, slot0 + j, n - j, out + j);
  }
}

}  // namespace sop::kernel_internal

#endif  // SOP_KERNEL_HAVE_AVX2
