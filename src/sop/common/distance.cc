#include "sop/common/distance.h"

#include <cmath>
#include <cstdlib>

#include "sop/common/check.h"

namespace sop {

bool ParseMetric(const std::string& name, Metric* out) {
  if (name == "euclidean") {
    *out = Metric::kEuclidean;
    return true;
  }
  if (name == "manhattan") {
    *out = Metric::kManhattan;
    return true;
  }
  return false;
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kEuclidean:
      return "euclidean";
    case Metric::kManhattan:
      return "manhattan";
  }
  return "unknown";
}

namespace {

template <typename DimIter>
double EuclideanOver(const Point& a, const Point& b, DimIter begin,
                     DimIter end) {
  double sum = 0.0;
  for (DimIter it = begin; it != end; ++it) {
    const double d = a.values[*it] - b.values[*it];
    sum += d * d;
  }
  return std::sqrt(sum);
}

template <typename DimIter>
double ManhattanOver(const Point& a, const Point& b, DimIter begin,
                     DimIter end) {
  double sum = 0.0;
  for (DimIter it = begin; it != end; ++it) {
    sum += std::abs(a.values[*it] - b.values[*it]);
  }
  return sum;
}

// Iterator yielding 0..n-1 without materializing the index vector, for the
// full-space case.
class CountingIter {
 public:
  explicit CountingIter(int i) : i_(i) {}
  int operator*() const { return i_; }
  CountingIter& operator++() {
    ++i_;
    return *this;
  }
  bool operator!=(const CountingIter& other) const { return i_ != other.i_; }

 private:
  int i_;
};

}  // namespace

double DistanceFn::operator()(const Point& a, const Point& b) const {
  SOP_DCHECK(a.values.size() == b.values.size());
  if (attributes_.empty()) {
    const int n = static_cast<int>(a.values.size());
    switch (metric_) {
      case Metric::kEuclidean:
        return EuclideanOver(a, b, CountingIter(0), CountingIter(n));
      case Metric::kManhattan:
        return ManhattanOver(a, b, CountingIter(0), CountingIter(n));
    }
  } else {
    SOP_DCHECK(static_cast<size_t>(attributes_.back()) < a.values.size());
    switch (metric_) {
      case Metric::kEuclidean:
        return EuclideanOver(a, b, attributes_.begin(), attributes_.end());
      case Metric::kManhattan:
        return ManhattanOver(a, b, attributes_.begin(), attributes_.end());
    }
  }
  SOP_CHECK_MSG(false, "unreachable metric");
  return 0.0;
}

}  // namespace sop
