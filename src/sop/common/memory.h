// Helpers for estimating detector memory footprints.
//
// The paper's MEM metric is the memory holding the per-point evidence kept
// by each algorithm (skyband points for SOP, neighbor lists for MCOD,
// probing state for LEAP) plus the outlier sets of the current window. We
// estimate it structurally (capacity x element size + container overhead)
// rather than through a malloc hook so that the number is deterministic and
// comparable across allocators.

#ifndef SOP_COMMON_MEMORY_H_
#define SOP_COMMON_MEMORY_H_

#include <cstddef>
#include <deque>
#include <vector>

namespace sop {

/// Approximate heap bytes owned by a vector (excluding sizeof(v) itself).
template <typename T>
size_t VectorHeapBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Approximate heap bytes owned by a deque (excluding sizeof(d) itself).
/// libstdc++ deques allocate fixed 512-byte blocks.
template <typename T>
size_t DequeHeapBytes(const std::deque<T>& d) {
  constexpr size_t kBlockBytes = 512;
  const size_t per_block = kBlockBytes / sizeof(T) > 0
                               ? kBlockBytes / sizeof(T)
                               : 1;
  const size_t blocks = (d.size() + per_block - 1) / per_block + 1;
  return blocks * kBlockBytes + blocks * sizeof(void*);
}

}  // namespace sop

#endif  // SOP_COMMON_MEMORY_H_
