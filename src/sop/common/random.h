// Deterministic pseudo-random number generation for data/workload
// generators and tests.
//
// We ship our own small generator (xoshiro256**) instead of <random>
// engines so that streams are reproducible byte-for-byte across standard
// library implementations — benchmark tables and failing test seeds must
// mean the same thing on every machine.

#ifndef SOP_COMMON_RANDOM_H_
#define SOP_COMMON_RANDOM_H_

#include <cstdint>

namespace sop {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Not cryptographic. Copyable; copies continue the same sequence
/// independently.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller (no state cached across calls).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

}  // namespace sop

#endif  // SOP_COMMON_RANDOM_H_
