// Deterministic fault injection for resilience tests and drills.
//
// A FaultInjector is a seeded random oracle that the runtime consults at
// well-known failure sites (source reads, sink emits, checkpoint I/O,
// batch execution). Each site carries an independent failure probability;
// the per-site decision stream is a pure function of (seed, site, draw
// index), so a logged seed reproduces the exact same failure schedule —
// under the same configuration, a flaky run replays byte-for-byte.
//
// Injection is strictly opt-in: nothing in the library consults an
// injector unless one is armed, and the disarmed fast path is a single
// relaxed atomic load (same discipline as obs/trace.h). Production code
// never arms one; tests and the sop_cli --fault-* flags do.
//
// Thread-safety: ShouldFail/CorruptBytes may be called from the engine's
// ingest and worker threads concurrently; decisions are serialized by an
// internal mutex (decision *order* across threads is then scheduling-
// dependent, but per-site streams stay deterministic because each site
// draws from its own generator).

#ifndef SOP_COMMON_FAULT_H_
#define SOP_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sop/common/random.h"

namespace sop {

/// The failure sites the runtime exposes to an armed injector.
enum class FaultSite : int {
  kSourceRead = 0,       // transient stream-read failure (engine retries)
  kSinkEmit = 1,         // transient result-delivery failure (engine retries)
  kCheckpointWrite = 2,  // checkpoint file write failure (save skipped)
  kCheckpointRead = 3,   // checkpoint file read failure (load fails cleanly)
  kCheckpointBytes = 4,  // checkpoint bytes corrupted in flight (CRC catches)
  kBatchStall = 5,       // detector batch stalls (overload policy engages)
  kNetRead = 6,          // transient socket read failure (net retries)
  kNetWrite = 7,         // transient socket write failure (net retries)
};
inline constexpr int kNumFaultSites = 8;

/// Human-readable site name ("source-read", ...).
const char* FaultSiteName(FaultSite site);

/// Deterministic, rate-targeted failure oracle. See file comment.
class FaultInjector {
 public:
  /// All rates default to 0 (no failures); arm sites with SetRate.
  explicit FaultInjector(uint64_t seed);

  /// Sets the failure probability of `site` to `rate` in [0, 1].
  void SetRate(FaultSite site, double rate);

  /// Caps how many failures `site` may inject over the injector's lifetime
  /// (-1 = unbounded, the default). Useful to guarantee retry loops
  /// eventually succeed.
  void SetMaxFailures(FaultSite site, int64_t max_failures);

  /// Milliseconds kBatchStall sleeps per injected stall (default 2).
  void SetStallMillis(int64_t ms);
  int64_t stall_millis() const { return stall_millis_; }

  /// Draws the next decision for `site`: true = fail this operation.
  bool ShouldFail(FaultSite site);

  /// Flips one deterministically chosen bit of `*bytes` (no-op on empty
  /// input). Models in-flight corruption; framed checkpoints must detect it.
  void CorruptBytes(std::string* bytes);

  /// How many failures `site` has injected so far.
  int64_t injected(FaultSite site) const;
  /// How many decisions `site` has drawn so far.
  int64_t consulted(FaultSite site) const;

  /// --- process-global arming -------------------------------------------
  /// The runtime consults Armed() at each site; null (the default) means
  /// no injection anywhere. The injector is borrowed, not owned: the caller
  /// keeps it alive until Disarm(). Arming is process-wide — intended for
  /// one drill at a time, not concurrent independent drills.
  static FaultInjector* Armed() {
    return g_armed.load(std::memory_order_acquire);
  }
  static void Arm(FaultInjector* injector) {
    g_armed.store(injector, std::memory_order_release);
  }
  static void Disarm() { Arm(nullptr); }

 private:
  struct SiteState {
    Rng rng;
    double rate = 0.0;
    int64_t max_failures = -1;
    int64_t consulted = 0;
    int64_t injected = 0;
    explicit SiteState(uint64_t seed) : rng(seed) {}
  };

  static std::atomic<FaultInjector*> g_armed;

  mutable std::mutex mu_;
  std::vector<SiteState> sites_;
  Rng corrupt_rng_;
  int64_t stall_millis_ = 2;
};

/// RAII arming of the global injector for a scope (tests).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector* injector) {
    FaultInjector::Arm(injector);
  }
  ~ScopedFaultInjection() { FaultInjector::Disarm(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace sop

#endif  // SOP_COMMON_FAULT_H_
