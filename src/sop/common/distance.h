// Distance metrics between streaming points, including subspace variants.
//
// Distance-based outlier queries need a metric `dist_o(p, q)`; the paper
// (and all our detectors) treat it as a black box. We provide Euclidean and
// Manhattan over either the full attribute vector or a fixed attribute
// subset (used by multi-attribute workloads, paper Fig. 10(b)).

#ifndef SOP_COMMON_DISTANCE_H_
#define SOP_COMMON_DISTANCE_H_

#include <string>
#include <vector>

#include "sop/common/point.h"

namespace sop {

class DistanceKernel;

/// Supported distance metrics.
enum class Metric {
  kEuclidean,
  kManhattan,
};

/// Parses "euclidean" / "manhattan" (case-sensitive). Returns true on
/// success and writes `*out`.
bool ParseMetric(const std::string& name, Metric* out);

/// Human-readable name of `metric`.
const char* MetricName(Metric metric);

/// A distance function over points: a metric plus an optional attribute
/// subspace. An empty `attributes` list means "all attributes".
///
/// DistanceFn is a small value type; copy it freely. Distances are
/// symmetric and non-negative. Both points must have at least
/// max(attributes)+1 values (checked in debug builds).
class DistanceFn {
 public:
  DistanceFn() = default;
  explicit DistanceFn(Metric metric, std::vector<int> attributes = {})
      : metric_(metric), attributes_(std::move(attributes)) {}

  Metric metric() const { return metric_; }
  const std::vector<int>& attributes() const { return attributes_; }

  /// Computes dist_o(a, b).
  double operator()(const Point& a, const Point& b) const;

  /// Batch-execution form of this function (common/dist_kernel.h): the
  /// entry point detector hot loops confirm candidates through. Returns
  /// distances bit-identical to operator() for every backend.
  DistanceKernel MakeKernel() const;

 private:
  Metric metric_ = Metric::kEuclidean;
  std::vector<int> attributes_;  // empty = full space
};

}  // namespace sop

#endif  // SOP_COMMON_DISTANCE_H_
