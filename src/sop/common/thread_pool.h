// A fixed-size worker pool with a FIFO task queue, shared by every
// execution layer that fans work out (see detector/engine.h and
// detector/partitioned.h).
//
// Design notes:
//   * Submit() accepts any callable (including move-only ones) and returns
//     a std::future carrying the callable's result or exception — callers
//     join and observe failures deterministically by get()ing futures in
//     submission order.
//   * The pool is reusable: batches of submissions may alternate with
//     quiescent periods for the pool's whole lifetime; workers block on a
//     condition variable while idle.
//   * Destruction drains the queue (already-submitted tasks still run) and
//     joins every worker, so task captures never dangle.

#ifndef SOP_COMMON_THREAD_POOL_H_
#define SOP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sop {

/// Fixed-size worker pool. Submit() is safe to call from any thread,
/// including from inside a task.
class ThreadPool {
 public:
  /// Spawns `num_threads` (> 0) workers immediately.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns the future of its result. If `fn` throws,
  /// the exception is captured and rethrown from future::get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // shared_ptr makes the task copyable enough for std::function while
    // packaged_task keeps the result/exception plumbing.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task]() { (*task)(); });
    return result;
  }

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;  // guarded by mu_
  bool stopping_ = false;                    // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace sop

#endif  // SOP_COMMON_THREAD_POOL_H_
