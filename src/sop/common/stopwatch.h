// Wall-clock stopwatch used by the metrics collector. All detectors run
// single-threaded, so wall time and CPU time coincide in practice; using a
// monotonic clock keeps measurements robust to NTP adjustments.

#ifndef SOP_COMMON_STOPWATCH_H_
#define SOP_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace sop {

/// Measures elapsed time in nanoseconds since construction or Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sop

#endif  // SOP_COMMON_STOPWATCH_H_
