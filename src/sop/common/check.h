// Fatal assertion macros used throughout libsop.
//
// The library does not use C++ exceptions (see DESIGN.md). Programming
// errors and violated invariants abort the process with a diagnostic.
// SOP_CHECK is always on; SOP_DCHECK compiles away in NDEBUG builds and is
// reserved for hot-path invariants.

#ifndef SOP_COMMON_CHECK_H_
#define SOP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace sop::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "SOP_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] != '\0' ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace sop::internal

#define SOP_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::sop::internal::CheckFailed(__FILE__, __LINE__, #expr, "");   \
    }                                                                \
  } while (0)

#define SOP_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::sop::internal::CheckFailed(__FILE__, __LINE__, #expr, msg);  \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define SOP_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define SOP_DCHECK(expr) SOP_CHECK(expr)
#endif

#endif  // SOP_COMMON_CHECK_H_
