// Checksum framing for checkpoint blobs.
//
// A frame wraps an opaque payload with enough redundancy to detect every
// truncation, extension, or bit-level corruption a crashed writer or a bad
// disk can produce:
//
//   offset  size  field
//   0       4     magic "SOPF" (0x53'4f'50'46, little-endian u32)
//   4       4     frame format version (kFrameVersion)
//   8       8     payload length in bytes (u64)
//   16      4     CRC-32 (IEEE 802.3, reflected) of the payload
//   20      n     payload
//
// UnwrapFrame rejects anything that does not match exactly — short input,
// trailing garbage, unknown versions, length/CRC mismatches — and reports
// why through an error string (the library is exception-free). A frame
// says nothing about what the payload means; payload versioning lives with
// the payload's own writer (e.g. core/checkpoint.cc).

#ifndef SOP_COMMON_FRAME_H_
#define SOP_COMMON_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace sop {

/// CRC-32 (IEEE 802.3 polynomial, reflected, init/final 0xFFFFFFFF) of
/// `bytes`. Detects all single-bit errors and all burst errors up to 32
/// bits, which covers the corruption modes checkpoint restore must survive.
uint32_t Crc32(std::string_view bytes);

/// Current frame format version written by WrapFrame.
inline constexpr uint32_t kFrameVersion = 1;

/// Size of the fixed frame header (magic + version + length + CRC).
inline constexpr size_t kFrameHeaderBytes = 4 + 4 + 8 + 4;

/// Validates the fixed-size header prefix of a frame without requiring the
/// payload to be present yet: checks magic and version and extracts the
/// payload length. This is what incremental decoders (net/protocol.h) use
/// to know how many more bytes to wait for before UnwrapFrame can run on
/// the complete frame. `header` must hold at least kFrameHeaderBytes.
bool ParseFrameHeader(std::string_view header, uint64_t* payload_length,
                      std::string* error = nullptr);

/// Wraps `payload` in a magic + version + length + CRC frame.
std::string WrapFrame(std::string_view payload);

/// Validates a frame and exposes its payload as a view into `framed`
/// (no copy; the view is valid while `framed`'s storage lives). Returns
/// false and describes the problem in `*error` (if non-null) when the
/// input is truncated, oversized, corrupted, or of an unknown version.
bool UnwrapFrame(std::string_view framed, std::string_view* payload,
                 std::string* error = nullptr);

}  // namespace sop

#endif  // SOP_COMMON_FRAME_H_
