#include "sop/common/random.h"

#include <cmath>
#include <numbers>

#include "sop/common/check.h"

namespace sop {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  SOP_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SOP_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const uint64_t r = span == 0 ? Next() : NextBelow(span);
  return lo + static_cast<int64_t>(r);
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  // Box-Muller; discard the second variate for statelessness.
  double u1 = UniformDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

}  // namespace sop
