#include "sop/common/thread_pool.h"

#include "sop/common/check.h"

namespace sop {

ThreadPool::ThreadPool(int num_threads) {
  SOP_CHECK_MSG(num_threads > 0, "thread pool needs at least one worker");
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SOP_CHECK_MSG(!stopping_, "Submit() on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and the queue is drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace sop
