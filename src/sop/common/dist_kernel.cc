#include "sop/common/dist_kernel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>

#include "sop/common/check.h"
#include "sop/common/dist_kernel_internal.h"

namespace sop {

namespace {

// Process-global backend selection. Written at startup (flag parsing) and
// read per batch; relaxed atomics keep reads free on the hot path while
// staying clean under tsan if a server thread flips it.
std::atomic<KernelBackend> g_backend{KernelBackend::kScalar};

}  // namespace

bool KernelBackendSupported(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return true;
    case KernelBackend::kAvx2:
#if defined(SOP_KERNEL_HAVE_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

bool ParseKernelBackend(const std::string& name, KernelBackend* out) {
  if (name == "scalar") {
    *out = KernelBackend::kScalar;
    return true;
  }
  if (name == "avx2") {
    if (!KernelBackendSupported(KernelBackend::kAvx2)) return false;
    *out = KernelBackend::kAvx2;
    return true;
  }
  if (name == "auto") {
    *out = KernelBackendSupported(KernelBackend::kAvx2)
               ? KernelBackend::kAvx2
               : KernelBackend::kScalar;
    return true;
  }
  return false;
}

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool SetKernelBackend(KernelBackend backend) {
  if (!KernelBackendSupported(backend)) return false;
  g_backend.store(backend, std::memory_order_relaxed);
  return true;
}

KernelBackend ActiveKernelBackend() {
  return g_backend.load(std::memory_order_relaxed);
}

namespace kernel_internal {

// Portable batch cores. The j-loops accumulate each candidate's terms in
// attribute-ascending order — exactly DistanceFn's per-pair order — so the
// result is bit-identical however the compiler vectorizes across j (each
// lane is an independent accumulator).

void ScalarBatchGather(Metric metric, const double* const* cols,
                       const double* probe, size_t ndims,
                       const int32_t* slots, size_t n, double* out) {
  for (size_t j = 0; j < n; ++j) out[j] = 0.0;
  switch (metric) {
    case Metric::kEuclidean:
      for (size_t i = 0; i < ndims; ++i) {
        const double pv = probe[i];
        const double* c = cols[i];
        for (size_t j = 0; j < n; ++j) {
          const double d = pv - c[static_cast<size_t>(slots[j])];
          out[j] += d * d;
        }
      }
      for (size_t j = 0; j < n; ++j) out[j] = std::sqrt(out[j]);
      break;
    case Metric::kManhattan:
      for (size_t i = 0; i < ndims; ++i) {
        const double pv = probe[i];
        const double* c = cols[i];
        for (size_t j = 0; j < n; ++j) {
          out[j] += std::fabs(pv - c[static_cast<size_t>(slots[j])]);
        }
      }
      break;
  }
}

void ScalarBatchContig(Metric metric, const double* const* cols,
                       const double* probe, size_t ndims, size_t slot0,
                       size_t n, double* out) {
  for (size_t j = 0; j < n; ++j) out[j] = 0.0;
  switch (metric) {
    case Metric::kEuclidean:
      for (size_t i = 0; i < ndims; ++i) {
        const double pv = probe[i];
        const double* c = cols[i] + slot0;
        for (size_t j = 0; j < n; ++j) {
          const double d = pv - c[j];
          out[j] += d * d;
        }
      }
      for (size_t j = 0; j < n; ++j) out[j] = std::sqrt(out[j]);
      break;
    case Metric::kManhattan:
      for (size_t i = 0; i < ndims; ++i) {
        const double pv = probe[i];
        const double* c = cols[i] + slot0;
        for (size_t j = 0; j < n; ++j) {
          out[j] += std::fabs(pv - c[j]);
        }
      }
      break;
  }
}

}  // namespace kernel_internal

namespace {

void DispatchGather(Metric metric, const double* const* cols,
                    const double* probe, size_t ndims, const int32_t* slots,
                    size_t n, double* out) {
#if defined(SOP_KERNEL_HAVE_AVX2)
  if (ActiveKernelBackend() == KernelBackend::kAvx2) {
    kernel_internal::Avx2BatchGather(metric, cols, probe, ndims, slots, n,
                                     out);
    return;
  }
#endif
  kernel_internal::ScalarBatchGather(metric, cols, probe, ndims, slots, n,
                                     out);
}

void DispatchContig(Metric metric, const double* const* cols,
                    const double* probe, size_t ndims, size_t slot0, size_t n,
                    double* out) {
#if defined(SOP_KERNEL_HAVE_AVX2)
  if (ActiveKernelBackend() == KernelBackend::kAvx2) {
    kernel_internal::Avx2BatchContig(metric, cols, probe, ndims, slot0, n,
                                     out);
    return;
  }
#endif
  kernel_internal::ScalarBatchContig(metric, cols, probe, ndims, slot0, n,
                                     out);
}

}  // namespace

void DistanceKernel::Stage(const ColumnStore& cols, const Point& probe) const {
  if (attributes_.empty()) {
    const size_t nd = cols.num_dims();
    SOP_DCHECK(probe.values.size() == nd);
    col_ptrs_.resize(nd);
    probe_vals_.resize(nd);
    for (size_t d = 0; d < nd; ++d) {
      col_ptrs_[d] = cols.Column(d);
      probe_vals_[d] = probe.values[d];
    }
  } else {
    SOP_DCHECK(static_cast<size_t>(attributes_.back()) < probe.values.size());
    SOP_DCHECK(static_cast<size_t>(attributes_.back()) < cols.num_dims());
    const size_t nd = attributes_.size();
    col_ptrs_.resize(nd);
    probe_vals_.resize(nd);
    for (size_t i = 0; i < nd; ++i) {
      const size_t d = static_cast<size_t>(attributes_[i]);
      col_ptrs_[i] = cols.Column(d);
      probe_vals_[i] = probe.values[d];
    }
  }
}

void DistanceKernel::StageSlots(const ColumnStore& cols, const Seq* seqs,
                                size_t n) const {
  SOP_DCHECK(cols.capacity() <= static_cast<size_t>(INT32_MAX));
  slot_scratch_.resize(n);
  for (size_t j = 0; j < n; ++j) {
    slot_scratch_[j] = static_cast<int32_t>(cols.SlotOf(seqs[j]));
  }
}

void DistanceKernel::BatchDist(const ColumnStore& cols, const Point& probe,
                               const Seq* seqs, size_t n, double* out) const {
  if (n == 0) return;
  Stage(cols, probe);
  StageSlots(cols, seqs, n);
  DispatchGather(metric_, col_ptrs_.data(), probe_vals_.data(),
                 col_ptrs_.size(), slot_scratch_.data(), n, out);
}

void DistanceKernel::BatchDistRange(const ColumnStore& cols,
                                    const Point& probe, Seq lo, size_t n,
                                    double* out) const {
  if (n == 0) return;
  SOP_DCHECK(cols.Contains(lo));
  SOP_DCHECK(cols.Contains(lo + static_cast<Seq>(n) - 1));
  Stage(cols, probe);
  // The alive range occupies at most two contiguous slot segments (one
  // wrap at the ring seam).
  const size_t slot0 = cols.SlotOf(lo);
  const size_t seg = std::min(n, cols.capacity() - slot0);
  DispatchContig(metric_, col_ptrs_.data(), probe_vals_.data(),
                 col_ptrs_.size(), slot0, seg, out);
  if (seg < n) {
    DispatchContig(metric_, col_ptrs_.data(), probe_vals_.data(),
                   col_ptrs_.size(), 0, n - seg, out + seg);
  }
}

size_t DistanceKernel::CountWithinR(const ColumnStore& cols,
                                    const Point& probe, const Seq* seqs,
                                    size_t n, double r) const {
  if (n == 0) return 0;
  dist_scratch_.resize(n);
  BatchDist(cols, probe, seqs, n, dist_scratch_.data());
  size_t hits = 0;
  for (size_t j = 0; j < n; ++j) {
    if (dist_scratch_[j] <= r) ++hits;
  }
  return hits;
}

size_t DistanceKernel::PartitionWithinR(const ColumnStore& cols,
                                        const Point& probe, Seq* seqs,
                                        size_t n, double r,
                                        double* dists) const {
  if (n == 0) return 0;
  dist_scratch_.resize(n);
  BatchDist(cols, probe, seqs, n, dist_scratch_.data());
  size_t hits = 0;
  for (size_t j = 0; j < n; ++j) {
    if (dist_scratch_[j] <= r) {
      seqs[hits] = seqs[j];
      dists[hits] = dist_scratch_[j];
      ++hits;
    }
  }
  return hits;
}

DistanceKernel DistanceFn::MakeKernel() const {
  return DistanceKernel(metric(), attributes());
}

}  // namespace sop
