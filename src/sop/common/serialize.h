// Minimal binary serialization helpers for detector checkpoints.
//
// Fixed-width little-endian encoding, no exceptions: writers cannot fail;
// readers return false on truncated or malformed input and the caller
// discards the partial state. Not an interchange format — a checkpoint is
// only guaranteed readable by the same library version that wrote it
// (guarded by a format-version word).

#ifndef SOP_COMMON_SERIALIZE_H_
#define SOP_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace sop {

/// Appends fixed-width values to a byte string.
class BinaryWriter {
 public:
  void WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
  void WriteI64(int64_t v) { Append(&v, sizeof(v)); }
  void WriteDouble(double v) { Append(&v, sizeof(v)); }
  void WriteBool(bool v) {
    const uint8_t b = v ? 1 : 0;
    Append(&b, sizeof(b));
  }
  /// Length-prefixed byte string (u64 length + raw bytes).
  void WriteBytes(std::string_view v) {
    WriteU64(v.size());
    Append(v.data(), v.size());
  }

  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }

 private:
  void Append(const void* data, size_t n) {
    bytes_.append(static_cast<const char*>(data), n);
  }

  std::string bytes_;
};

/// Consumes fixed-width values from a byte view. All reads return false on
/// underflow; once a read fails, the reader stays failed.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU32(uint32_t* v) { return Consume(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return Consume(v, sizeof(*v)); }
  bool ReadI64(int64_t* v) { return Consume(v, sizeof(*v)); }
  bool ReadDouble(double* v) { return Consume(v, sizeof(*v)); }
  bool ReadBool(bool* v) {
    uint8_t b = 0;
    if (!Consume(&b, sizeof(b)) || b > 1) return Fail();
    *v = b != 0;
    return true;
  }
  /// Length-prefixed byte string (inverse of BinaryWriter::WriteBytes).
  bool ReadBytes(std::string* v) {
    uint64_t n = 0;
    if (!ReadU64(&n) || bytes_.size() - pos_ < n) return Fail();
    v->assign(bytes_.data() + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return true;
  }

  /// True when every byte has been consumed and no read failed.
  bool AtEnd() const { return ok_ && pos_ == bytes_.size(); }
  bool ok() const { return ok_; }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  bool Consume(void* out, size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) return Fail();
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace sop

#endif  // SOP_COMMON_SERIALIZE_H_
