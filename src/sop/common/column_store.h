// Columnar (structure-of-arrays) mirror of the alive window.
//
// Every detector's inner loop confirms grid candidates with a distance
// computation, and row-major Points — each attribute vector a separate heap
// allocation — make that loop a chain of dependent cache misses. The
// ColumnStore keeps one contiguous double array per attribute (plus seq and
// time columns) for exactly the alive points, so a batched kernel
// (dist_kernel.h) can stream through candidates with dense loads.
//
// Layout. A power-of-two ring: the slot of an alive point is
// `seq & (capacity - 1)`. Alive sequence numbers always form one
// contiguous range [first_seq, next_seq) of length <= capacity, so slots
// never collide, expiry (PopFront) frees slots implicitly, and a slot
// stays put for a point's whole lifetime — until a capacity growth, which
// doubles the ring and re-scatters (append-amortized, and no caller holds
// slots across mutations). Columns are synchronized by StreamBuffer; the
// kernel resolves seqs to slots per batch.
//
// The store fixes its dimensionality at the first Append; every subsequent
// point must have the same number of attributes (detectors already require
// this — DistanceFn checks pairwise width equality).

#ifndef SOP_COMMON_COLUMN_STORE_H_
#define SOP_COMMON_COLUMN_STORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sop/common/check.h"
#include "sop/common/point.h"

namespace sop {

/// SoA store of the alive points, addressed by sequence number. Mutations
/// mirror StreamBuffer's exactly; not thread-safe.
class ColumnStore {
 public:
  ColumnStore() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Attribute count (0 until the first point is appended).
  size_t num_dims() const { return dims_; }
  Seq first_seq() const { return first_seq_; }
  Seq next_seq() const { return first_seq_ + static_cast<Seq>(size_); }
  bool Contains(Seq seq) const {
    return seq >= first_seq_ && seq < next_seq();
  }
  /// Current ring capacity (a power of two, or 0 before the first append).
  size_t capacity() const { return mask_ == 0 ? 0 : mask_ + 1; }

  /// Ring slot of alive point `seq`. Stable until the next capacity
  /// growth; do not hold slots across Append.
  size_t SlotOf(Seq seq) const {
    SOP_DCHECK(Contains(seq));
    return static_cast<size_t>(static_cast<uint64_t>(seq)) & mask_;
  }

  /// Base pointer of attribute column `d` (indexed by slot).
  const double* Column(size_t d) const {
    SOP_DCHECK(d < dims_);
    return cols_[d].data();
  }
  const Seq* seq_column() const { return seqs_.data(); }
  const Timestamp* time_column() const { return times_.data(); }

  /// Appends `p`; its seq must equal next_seq().
  void Append(const Point& p);

  /// Expires the `n` oldest points.
  void PopFront(size_t n);

  /// Re-bases an empty store at `first_seq` (checkpoint restore).
  void ResetTo(Seq first_seq);

  /// Approximate heap bytes held by the columns.
  size_t MemoryBytes() const;

 private:
  void Grow();

  size_t dims_ = 0;
  bool dims_set_ = false;
  Seq first_seq_ = 0;
  size_t size_ = 0;
  size_t mask_ = 0;  // capacity - 1; 0 also means "not yet allocated"
  std::vector<std::vector<double>> cols_;  // [dim][slot]
  std::vector<Seq> seqs_;                  // [slot]
  std::vector<Timestamp> times_;           // [slot]
};

}  // namespace sop

#endif  // SOP_COMMON_COLUMN_STORE_H_
