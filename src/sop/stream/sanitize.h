// SanitizingSource: a RecordPolicy-enforcing wrapper around any stream
// source.
//
// Generators and decoded network feeds can produce records the detectors
// must never see: non-finite attribute values (distance arithmetic on NaN
// silently poisons every skyband comparison), dimensionality changes
// mid-stream, and timestamp regressions (the window calculus requires
// non-decreasing keys). The CSV loader enforces these at parse time;
// SanitizingSource enforces the same contract for every other source by
// wrapping it.
//
// Under kSkipQuarantine, bad records are dropped and counted; under
// kClampRepair, repairable defects (non-finite values, time regressions)
// are fixed in place and the rest dropped; under kFailFast the stream ends
// at the first bad record and `error()` describes it — pull-based sources
// have no error channel, so callers opting into fail-fast must check
// error() after the stream ends.

#ifndef SOP_STREAM_SANITIZE_H_
#define SOP_STREAM_SANITIZE_H_

#include <cstdint>
#include <string>

#include "sop/common/point.h"
#include "sop/stream/record_policy.h"
#include "sop/stream/source.h"

namespace sop {

/// Policy-applying source wrapper. Not thread-safe; wraps a borrowed
/// source that must outlive it.
class SanitizingSource : public StreamSource {
 public:
  struct Stats {
    uint64_t accepted = 0;
    uint64_t quarantined = 0;
    uint64_t repaired = 0;
  };

  SanitizingSource(StreamSource* inner, RecordPolicy policy)
      : inner_(inner), policy_(policy) {}

  bool Next(Point* out) override;

  const Stats& stats() const { return stats_; }

  /// Non-empty iff the stream was terminated by kFailFast on a bad record.
  const std::string& error() const { return error_; }

 private:
  StreamSource* inner_;
  RecordPolicy policy_;
  Stats stats_;
  std::string error_;
  bool failed_ = false;
  bool have_first_ = false;
  size_t expected_dims_ = 0;
  int64_t last_time_ = 0;
  uint64_t record_index_ = 0;  // 0-based index into the inner stream
};

}  // namespace sop

#endif  // SOP_STREAM_SANITIZE_H_
