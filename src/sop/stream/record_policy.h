// What to do with a malformed input record.
//
// Every ingest surface — the CSV loader (io/csv.h), the sanitizing source
// wrapper (stream/sanitize.h), and the CLI's --on-bad-record flag — shares
// this three-way policy. "Malformed" covers non-finite attribute values
// (NaN/Inf), attribute-count mismatches against the stream's established
// dimensionality, out-of-order timestamps, and (for textual sources)
// unparseable records.
//
// The policies trade answer completeness against availability:
//   * kFailFast       reject the whole load/stream at the first bad record
//                     (a batch-job default: garbage in, no answer out).
//   * kSkipQuarantine drop bad records, count them, and optionally spool
//                     the raw lines to a sidecar for offline triage.
//   * kClampRepair    repair what has an unambiguous fix (non-finite
//                     values, timestamp regressions); quarantine the rest
//                     (unparseable or wrong-arity records have no credible
//                     repair).
// Quarantines and repairs are counted in the obs registry under
// resilience/quarantined and resilience/repaired.

#ifndef SOP_STREAM_RECORD_POLICY_H_
#define SOP_STREAM_RECORD_POLICY_H_

#include <string>

namespace sop {

/// Disposition of malformed input records. See file comment.
enum class RecordPolicy {
  kFailFast,
  kSkipQuarantine,
  kClampRepair,
};

/// Canonical flag spelling of `policy` ("fail" / "skip" / "clamp").
inline const char* RecordPolicyName(RecordPolicy policy) {
  switch (policy) {
    case RecordPolicy::kFailFast:
      return "fail";
    case RecordPolicy::kSkipQuarantine:
      return "skip";
    case RecordPolicy::kClampRepair:
      return "clamp";
  }
  return "unknown";
}

/// Parses a policy name ("fail" or "fail-fast", "skip", "clamp").
inline bool ParseRecordPolicy(const std::string& name, RecordPolicy* out) {
  if (name == "fail" || name == "fail-fast") {
    *out = RecordPolicy::kFailFast;
  } else if (name == "skip") {
    *out = RecordPolicy::kSkipQuarantine;
  } else if (name == "clamp") {
    *out = RecordPolicy::kClampRepair;
  } else {
    return false;
  }
  return true;
}

}  // namespace sop

#endif  // SOP_STREAM_RECORD_POLICY_H_
