// Sliding-window arithmetic shared by every detector.
//
// The repository implements CQL periodic sliding windows (paper Sec. 2).
// A workload is either count-based (window arithmetic on arrival sequence
// numbers) or time-based (window arithmetic on timestamps). The value a
// point contributes to window arithmetic is its *key*; see DESIGN.md Sec. 2
// for the normative emission semantics.

#ifndef SOP_STREAM_WINDOW_H_
#define SOP_STREAM_WINDOW_H_

#include <cstdint>

#include "sop/common/point.h"

namespace sop {

/// Whether window sizes/slides are measured in tuple counts or time units.
enum class WindowType {
  kCount,
  kTime,
};

/// Human-readable name of `type`.
const char* WindowTypeName(WindowType type);

/// The window-arithmetic key of `p` under `type`: its arrival sequence
/// number for count-based windows, its timestamp for time-based windows.
inline int64_t PointKey(const Point& p, WindowType type) {
  return type == WindowType::kCount ? p.seq : p.time;
}

/// A window emitting at boundary key `end` with size `win` covers keys in
/// [end - win, end). `WindowStart` returns that lower bound (no clamping:
/// early partial windows simply have a start below the first key).
inline int64_t WindowStart(int64_t end, int64_t win) { return end - win; }

/// True iff a query with slide `slide` emits at boundary key `boundary`.
/// Boundaries are aligned to multiples of the slide from key 0.
inline bool EmitsAt(int64_t boundary, int64_t slide) {
  return boundary % slide == 0;
}

/// First batch boundary at or after `key`, for batches of span `batch_span`
/// aligned to key 0. Requires batch_span > 0.
int64_t FirstBoundaryAtOrAfter(int64_t key, int64_t batch_span);

}  // namespace sop

#endif  // SOP_STREAM_WINDOW_H_
