// The shared sliding store of alive points.
//
// Every detector sees the stream through a StreamBuffer owned by the
// driver: points are appended in arrival order and expired from the front
// once they fall out of the largest (swift) window. Points are addressed by
// their global arrival sequence number, which stays valid until expiry.

#ifndef SOP_STREAM_STREAM_BUFFER_H_
#define SOP_STREAM_STREAM_BUFFER_H_

#include <cstddef>
#include <deque>

#include "sop/common/check.h"
#include "sop/common/column_store.h"
#include "sop/common/point.h"
#include "sop/stream/window.h"

namespace sop {

/// Sliding buffer of alive points, indexed by arrival sequence number.
///
/// Invariants: appended points have seq == next_seq() and non-decreasing
/// keys; expiry only moves forward. Not thread-safe.
class StreamBuffer {
 public:
  explicit StreamBuffer(WindowType type) : type_(type) {}

  WindowType type() const { return type_; }

  /// Sequence number the next appended point must carry.
  Seq next_seq() const { return first_seq_ + static_cast<Seq>(points_.size()); }

  /// First alive sequence number (== next_seq() when empty).
  Seq first_seq() const { return first_seq_; }

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Appends a point. Its seq must equal next_seq() and its key must be
  /// >= the previous point's key.
  void Append(Point p);

  /// Re-bases an empty buffer at `first_seq` (checkpoint restore).
  void ResetTo(Seq first_seq) {
    SOP_CHECK_MSG(points_.empty(), "ResetTo requires an empty buffer");
    first_seq_ = first_seq;
    columns_.ResetTo(first_seq);
  }

  /// Drops all points whose key is < `min_key`. Returns how many were
  /// dropped.
  size_t ExpireBefore(int64_t min_key);

  /// The alive point with sequence number `seq`. Checked.
  const Point& At(Seq seq) const;

  /// True iff `seq` identifies an alive point.
  bool Contains(Seq seq) const {
    return seq >= first_seq_ && seq < next_seq();
  }

  /// Key of alive point `seq` under this buffer's window type.
  int64_t KeyOf(Seq seq) const { return PointKey(At(seq), type_); }

  /// Smallest alive sequence number whose key is >= `min_key` (binary
  /// search; keys are non-decreasing). Returns next_seq() if none.
  Seq LowerBoundKey(int64_t min_key) const;

  /// Columnar mirror of the alive points, kept in sync with every
  /// mutation — the batch distance kernel (common/dist_kernel.h) reads
  /// attributes through it instead of the row Points.
  const ColumnStore& columns() const { return columns_; }

  /// Approximate heap bytes used by the stored points (rows + columns).
  size_t MemoryBytes() const;

 private:
  WindowType type_;
  Seq first_seq_ = 0;
  std::deque<Point> points_;
  ColumnStore columns_;
};

}  // namespace sop

#endif  // SOP_STREAM_STREAM_BUFFER_H_
