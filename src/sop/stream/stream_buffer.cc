#include "sop/stream/stream_buffer.h"

#include "sop/common/check.h"
#include "sop/common/memory.h"

namespace sop {

void StreamBuffer::Append(Point p) {
  SOP_CHECK_MSG(p.seq == next_seq(), "points must arrive in seq order");
  if (!points_.empty()) {
    SOP_CHECK_MSG(PointKey(p, type_) >= PointKey(points_.back(), type_),
                  "point keys must be non-decreasing");
  }
  columns_.Append(p);
  points_.push_back(std::move(p));
}

size_t StreamBuffer::ExpireBefore(int64_t min_key) {
  size_t dropped = 0;
  while (!points_.empty() && PointKey(points_.front(), type_) < min_key) {
    points_.pop_front();
    ++first_seq_;
    ++dropped;
  }
  columns_.PopFront(dropped);
  return dropped;
}

const Point& StreamBuffer::At(Seq seq) const {
  SOP_DCHECK(Contains(seq));
  return points_[static_cast<size_t>(seq - first_seq_)];
}

Seq StreamBuffer::LowerBoundKey(int64_t min_key) const {
  Seq lo = first_seq_;
  Seq hi = next_seq();
  while (lo < hi) {
    const Seq mid = lo + (hi - lo) / 2;
    if (KeyOf(mid) < min_key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t StreamBuffer::MemoryBytes() const {
  size_t bytes = DequeHeapBytes(points_) + columns_.MemoryBytes();
  for (const Point& p : points_) bytes += VectorHeapBytes(p.values);
  return bytes;
}

}  // namespace sop
