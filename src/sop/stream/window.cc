#include "sop/stream/window.h"

#include "sop/common/check.h"

namespace sop {

const char* WindowTypeName(WindowType type) {
  switch (type) {
    case WindowType::kCount:
      return "count";
    case WindowType::kTime:
      return "time";
  }
  return "unknown";
}

int64_t FirstBoundaryAtOrAfter(int64_t key, int64_t batch_span) {
  SOP_CHECK(batch_span > 0);
  if (key >= 0) {
    return ((key + batch_span - 1) / batch_span) * batch_span;
  }
  // Floor-divide toward negative infinity, then take the ceiling multiple.
  const int64_t q = -((-key) / batch_span);
  return q * batch_span + (q * batch_span < key ? batch_span : 0);
}

}  // namespace sop
