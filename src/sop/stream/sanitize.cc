#include "sop/stream/sanitize.h"

#include <cfloat>
#include <cmath>
#include <cstdio>

#include "sop/obs/trace.h"

namespace sop {

namespace {

// What is wrong with a record, in decreasing severity: structural defects
// have no repair, value/time defects do.
enum class Defect {
  kNone,
  kDimMismatch,
  kNonFinite,
  kTimeRegression,
};

Defect Classify(const Point& p, bool have_first, size_t expected_dims,
                int64_t last_time) {
  if (p.values.empty() || (have_first && p.values.size() != expected_dims)) {
    return Defect::kDimMismatch;
  }
  for (const double v : p.values) {
    if (!std::isfinite(v)) return Defect::kNonFinite;
  }
  if (have_first && p.time < last_time) return Defect::kTimeRegression;
  return Defect::kNone;
}

const char* DefectName(Defect d) {
  switch (d) {
    case Defect::kDimMismatch:
      return "attribute count mismatch";
    case Defect::kNonFinite:
      return "non-finite attribute value";
    case Defect::kTimeRegression:
      return "out-of-order timestamp";
    case Defect::kNone:
      break;
  }
  return "ok";
}

}  // namespace

bool SanitizingSource::Next(Point* out) {
  if (failed_) return false;
  Point p;
  while (inner_->Next(&p)) {
    const uint64_t index = record_index_++;
    Defect defect = Classify(p, have_first_, expected_dims_, last_time_);
    if (defect != Defect::kNone) {
      switch (policy_) {
        case RecordPolicy::kFailFast: {
          char buf[96];
          std::snprintf(buf, sizeof(buf), "record %llu: %s",
                        static_cast<unsigned long long>(index),
                        DefectName(defect));
          error_ = buf;
          failed_ = true;
          return false;
        }
        case RecordPolicy::kSkipQuarantine:
          ++stats_.quarantined;
          SOP_COUNTER_ADD("resilience/quarantined", 1);
          continue;
        case RecordPolicy::kClampRepair: {
          if (defect == Defect::kDimMismatch) {
            ++stats_.quarantined;
            SOP_COUNTER_ADD("resilience/quarantined", 1);
            continue;
          }
          if (defect == Defect::kNonFinite) {
            for (double& v : p.values) {
              if (std::isnan(v)) {
                v = 0.0;
              } else if (std::isinf(v)) {
                v = v > 0 ? DBL_MAX : -DBL_MAX;
              }
            }
            // A repaired record can still be out of order.
            defect = Classify(p, have_first_, expected_dims_, last_time_);
          }
          if (defect == Defect::kTimeRegression) p.time = last_time_;
          ++stats_.repaired;
          SOP_COUNTER_ADD("resilience/repaired", 1);
          break;
        }
      }
    }
    if (!have_first_) {
      have_first_ = true;
      expected_dims_ = p.values.size();
    }
    last_time_ = p.time;
    ++stats_.accepted;
    *out = std::move(p);
    return true;
  }
  return false;
}

}  // namespace sop
