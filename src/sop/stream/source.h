// Stream source abstraction: where points come from.
//
// Sources yield points with timestamps and attribute values; arrival
// sequence numbers are assigned downstream by the driver. Generators
// (src/sop/gen) and the CSV loader (src/sop/io) produce sources.

#ifndef SOP_STREAM_SOURCE_H_
#define SOP_STREAM_SOURCE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "sop/common/point.h"

namespace sop {

/// Pull-based point source. Implementations must yield points with
/// non-decreasing timestamps.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Writes the next point into `*out` and returns true, or returns false
  /// at end of stream.
  virtual bool Next(Point* out) = 0;
};

/// A source over an in-memory vector of points (test and bench workhorse).
class VectorSource : public StreamSource {
 public:
  explicit VectorSource(std::vector<Point> points)
      : points_(std::move(points)) {}

  bool Next(Point* out) override {
    if (pos_ >= points_.size()) return false;
    *out = points_[pos_++];
    return true;
  }

 private:
  std::vector<Point> points_;
  size_t pos_ = 0;
};

}  // namespace sop

#endif  // SOP_STREAM_SOURCE_H_
