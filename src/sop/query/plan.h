// WorkloadPlan: the compiled form of a workload used by the SOP core.
//
// This is the paper's "query parser" output (Fig. 6), split into two
// halves with very different lifetimes (DESIGN.md Sec. 14):
//
//   * The BASIS is the immutable evidence contract: the sorted unique r
//     values (the layers of the normalized distance, Def. 4), the k
//     envelope, the Def-6 skyband-point pruning table, the Safe-For-All
//     staircase, and the swift-window size (Sec. 4). Everything that
//     decides which evidence K-SKY keeps or irreversibly discards lives
//     here. A detector's skybands are only meaningful relative to the
//     basis they were built under, so the basis never changes in place.
//
//   * The OVERLAY is the cheaply recompilable per-query view: query ->
//     layer/k-group maps, the emission sweep order, the slide gcd. It
//     only decides how kept evidence is *read* at emission time, so it
//     can be swapped between batches without touching detector state.
//
// Workload changes are classified against the basis (PlanDelta): a change
// every query of which the basis covers is overlay-only (by the
// generalized Lemmas 1-3, see ksky.h, the live skybands are already
// sufficient evidence); a change that needs a new layer, a deeper k, or a
// wider window extends the basis and therefore requires rebuild-and-
// replay (normalized-distance bucketing changes, and skyband pruning may
// have discarded now-needed evidence). PlanHeadroom widens the basis at
// compile time so anticipated changes stay overlay-only.

#ifndef SOP_QUERY_PLAN_H_
#define SOP_QUERY_PLAN_H_

#include <cstdint>
#include <vector>

#include "sop/query/workload.h"

namespace sop {

/// How a workload change relates to a compiled plan's basis.
enum class PlanDelta {
  /// Every query of the new workload is covered by the existing basis:
  /// the overlay can be recompiled in place, detector evidence untouched.
  kOverlayOnly,
  /// Some query needs basis growth (new r layer, k beyond the envelope,
  /// window beyond the swift window, or evidence the Def-6 table already
  /// pruned): the detector must be rebuilt and history replayed.
  kBasisExtend,
  /// The workloads are not comparable at all (window type, metric or
  /// attribute-set change, or an empty/invalid target): full rebuild.
  kRebuild,
};

/// Human-readable name of `delta`.
const char* PlanDeltaName(PlanDelta delta);

/// Caller-supplied slack compiled into the basis so anticipated workload
/// changes classify as kOverlayOnly instead of forcing rebuild-and-replay.
/// Headroom trades steady-state pruning for change cost: a wider basis
/// keeps more evidence per point (see DESIGN.md Sec. 14.4).
struct PlanHeadroom {
  /// Cover every (existing layer, k <= k envelope) combination: the basis
  /// keeps the full (k_max - 1)-skyband of Lemma 1 instead of the
  /// workload-pruned Def-6 subset, and Safe-For-All tightens to the one
  /// requirement every future query can rely on. Any AddQuery whose r is
  /// an existing layer, k fits the envelope and win fits the swift window
  /// is then overlay-only.
  bool elastic = false;
  /// Extra r values reserved as layers (each provisioned to the full k
  /// envelope, like an anticipated query at that radius).
  std::vector<double> r_values;
  /// Raises the k envelope this much above the workload's largest k.
  int64_t k_slack = 0;
  /// Swift-window floor, in window-key units (covers adds up to this win).
  int64_t win_floor = 0;

  /// The dynamic-workload default: elastic with no extra reservations.
  static PlanHeadroom Elastic() {
    PlanHeadroom h;
    h.elastic = true;
    return h;
  }

  /// True when this headroom widens nothing (the exact paper basis).
  bool none() const {
    return !elastic && r_values.empty() && k_slack == 0 && win_floor == 0;
  }

  friend bool operator==(const PlanHeadroom&, const PlanHeadroom&) = default;
};

/// Immutable plan compiled from a validated workload whose queries all use
/// the same attribute set (multi-attribute workloads are split upstream;
/// see core/multi_attribute.h).
class WorkloadPlan {
 public:
  /// One Safe-For-All requirement: the skyband must hold at least `k`
  /// succeeding entries with layer <= `layer` (DESIGN.md Sec. 4.3).
  struct SafetyRequirement {
    int layer;
    int64_t k;

    friend bool operator==(const SafetyRequirement&,
                           const SafetyRequirement&) = default;
  };

  /// The immutable evidence contract (see file comment). Self-contained
  /// and serializable: two detectors with equal bases make identical
  /// evidence keep/discard decisions.
  struct Basis {
    std::vector<double> layer_r;  // ascending unique r values
    int64_t win = 0;              // swift-window size (envelope)
    /// Def. 6 condition 3 table, indexed by dominated count; its size IS
    /// the k envelope (k_max).
    std::vector<int> max_layer_for_count;
    /// The Safe-For-All staircase, ascending in both layer and k.
    std::vector<SafetyRequirement> safety_requirements;

    int num_layers() const { return static_cast<int>(layer_r.size()); }
    int64_t k_max() const {
      return static_cast<int64_t>(max_layer_for_count.size());
    }

    /// Normalized distance of `d` (Def. 4): the 1-based layer index m with
    /// r_{m-1} < d <= r_m, or num_layers()+1 when d exceeds every r.
    int LayerOfDistance(double d) const;

    /// The 1-based layer whose r equals `r` exactly, or 0 when `r` is not
    /// a layer of this basis.
    int LayerOfRadius(double r) const;

    /// True iff this basis retains sufficient evidence to answer `q`
    /// exactly: q.r is an existing layer, q.k fits the envelope, q.win
    /// fits the swift window, the Def-6 table never prunes evidence q
    /// needs, and released Safe-For-All inliers are inliers for q too.
    /// A covered query can be added (and any query removed) without
    /// rebuilding the detector (DESIGN.md Sec. 14.2).
    bool Covers(const OutlierQuery& q) const;

    friend bool operator==(const Basis&, const Basis&) = default;
  };

  /// Compiles `workload` with the exact paper basis (no headroom).
  /// Check-fails if the workload is invalid or mixes attribute sets.
  explicit WorkloadPlan(Workload workload)
      : WorkloadPlan(std::move(workload), PlanHeadroom()) {}

  /// Compiles `workload` with `headroom` widening the basis.
  WorkloadPlan(Workload workload, const PlanHeadroom& headroom);

  const Workload& workload() const { return workload_; }
  const Basis& basis() const { return basis_; }

  /// Classifies replacing this plan's workload with `next` (see PlanDelta).
  PlanDelta Classify(const Workload& next) const;

  /// Recompiles the overlay for `next` against the unchanged basis.
  /// Returns false (plan unchanged) unless Classify(next) == kOverlayOnly.
  bool ApplyOverlay(Workload next);

  /// Replaces the basis with `basis` (checkpoint restore: skyband layer
  /// indices are only meaningful relative to the basis they were saved
  /// under) and recompiles the overlay against it. Returns false (plan
  /// unchanged) when `basis` is malformed or does not cover every query.
  bool AdoptBasis(Basis basis);

  /// Number of normalized-distance layers L (== distinct r values,
  /// including headroom reservations).
  int num_layers() const { return basis_.num_layers(); }
  /// The r threshold of 1-based layer `m`.
  double r_of_layer(int m) const {
    return basis_.layer_r[static_cast<size_t>(m - 1)];
  }
  /// Smallest r in the basis (the global termination radius, Alg. 1).
  double r_min() const { return basis_.layer_r.front(); }
  /// Largest r in the basis (Def. 5 condition 3 cutoff).
  double r_max() const { return basis_.layer_r.back(); }

  /// Number of k-groups G (== distinct k values of the real queries),
  /// ascending.
  int num_groups() const { return static_cast<int>(group_k_.size()); }
  /// The k of 0-based group `g`.
  int64_t k_of_group(int g) const { return group_k_[static_cast<size_t>(g)]; }
  /// The k envelope: the largest k the basis retains evidence for (the
  /// workload's largest k plus any headroom slack).
  int64_t k_max() const { return basis_.k_max(); }

  /// Normalized distance of an original distance `d` (Def. 4).
  int LayerOfDistance(double d) const { return basis_.LayerOfDistance(d); }

  /// Layer of query `i`'s exact r value (1-based).
  int layer_of_query(size_t i) const { return query_layer_[i]; }
  /// Group of query `i`'s k value (0-based).
  int group_of_query(size_t i) const { return query_group_[i]; }

  /// Smallest layer among the queries of group `g`: the binding prefix for
  /// the Safe-For-All check (DESIGN.md Sec. 4.3).
  int min_layer_of_group(int g) const {
    return group_min_layer_[static_cast<size_t>(g)];
  }
  /// Largest layer among the queries of group `g`.
  int max_layer_of_group(int g) const {
    return group_max_layer_[static_cast<size_t>(g)];
  }

  /// Def. 6 condition 3: the deepest layer at which a candidate already
  /// dominated by `count` points can still be a skyband point, i.e.
  /// max{ max_layer(g) : k(g) > count } over the basis demands. Returns 0
  /// when no demand can use such a candidate. Requires 0 <= count <
  /// k_max().
  int MaxLayerForCount(int64_t count) const;

  /// The pruned Safe-For-All requirement staircase: ascending in both
  /// `layer` and `k`, implied requirements removed. A point is a
  /// Safe-For-All inlier iff its succeeding skyband prefix satisfies every
  /// requirement.
  const std::vector<SafetyRequirement>& safety_requirements() const {
    return basis_.safety_requirements;
  }

  /// Swift-query window size: the largest query window, widened by any
  /// headroom floor (Sec. 4.1).
  int64_t win_max() const { return basis_.win; }
  /// Swift-query slide: gcd of the query slides (Sec. 4.2).
  int64_t slide_gcd() const { return slide_gcd_; }

  /// Query indices ordered by ascending window size: the emission sweep
  /// order (windows are suffixes of the swift window, so ascending window
  /// size means descending window start).
  const std::vector<size_t>& queries_by_window() const {
    return queries_by_window_;
  }

 private:
  // Validates workload_ for plan compilation (single attribute set).
  void ValidateWorkload() const;
  // Recomputes every overlay field from workload_ against basis_.
  void CompileOverlay();

  Workload workload_;
  Basis basis_;

  // Overlay: recompiled wholesale by CompileOverlay.
  std::vector<int64_t> group_k_;      // ascending unique real k values
  std::vector<int> query_layer_;      // per query, 1-based
  std::vector<int> query_group_;      // per query, 0-based
  std::vector<int> group_min_layer_;  // per group
  std::vector<int> group_max_layer_;  // per group
  std::vector<size_t> queries_by_window_;
  int64_t slide_gcd_ = 0;
};

}  // namespace sop

#endif  // SOP_QUERY_PLAN_H_
