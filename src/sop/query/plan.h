// WorkloadPlan: the compiled form of a workload used by the SOP core.
//
// This is the paper's "query parser" output (Fig. 6): the sorted unique
// r values (the layers of the normalized distance, Def. 4), the k-groups
// (Sec. 3.2), the Def-6 skyband-point pruning table, and the swift-query
// window parameters (Sec. 4).

#ifndef SOP_QUERY_PLAN_H_
#define SOP_QUERY_PLAN_H_

#include <cstdint>
#include <vector>

#include "sop/query/workload.h"

namespace sop {

/// Immutable plan compiled from a validated workload whose queries all use
/// the same attribute set (multi-attribute workloads are split upstream;
/// see core/multi_attribute.h).
class WorkloadPlan {
 public:
  /// Compiles `workload`. Check-fails if the workload is invalid or mixes
  /// attribute sets.
  explicit WorkloadPlan(Workload workload);

  const Workload& workload() const { return workload_; }

  /// Number of normalized-distance layers L (== distinct r values).
  int num_layers() const { return static_cast<int>(layer_r_.size()); }
  /// The r threshold of 1-based layer `m`.
  double r_of_layer(int m) const { return layer_r_[static_cast<size_t>(m - 1)]; }
  /// Smallest r in the workload (the global termination radius, Alg. 1).
  double r_min() const { return layer_r_.front(); }
  /// Largest r in the workload (Def. 5 condition 3 cutoff).
  double r_max() const { return layer_r_.back(); }

  /// Number of k-groups G (== distinct k values), ascending.
  int num_groups() const { return static_cast<int>(group_k_.size()); }
  /// The k of 0-based group `g`.
  int64_t k_of_group(int g) const { return group_k_[static_cast<size_t>(g)]; }
  /// Largest k across the workload.
  int64_t k_max() const { return group_k_.back(); }

  /// Normalized distance of an original distance `d` (Def. 4): the 1-based
  /// layer index m with r_{m-1} < d <= r_m, or num_layers()+1 when d
  /// exceeds every r (the point is nobody's neighbor, Def. 5 cond. 3).
  int LayerOfDistance(double d) const;

  /// Layer of query `i`'s exact r value (1-based).
  int layer_of_query(size_t i) const { return query_layer_[i]; }
  /// Group of query `i`'s k value (0-based).
  int group_of_query(size_t i) const { return query_group_[i]; }

  /// Smallest layer among the queries of group `g`: the binding prefix for
  /// the Safe-For-All check (DESIGN.md Sec. 4.3).
  int min_layer_of_group(int g) const {
    return group_min_layer_[static_cast<size_t>(g)];
  }
  /// Largest layer among the queries of group `g`.
  int max_layer_of_group(int g) const {
    return group_max_layer_[static_cast<size_t>(g)];
  }

  /// Def. 6 condition 3: the deepest layer at which a candidate already
  /// dominated by `count` points can still be a skyband point, i.e.
  /// max{ max_layer(g) : k(g) > count }. Returns 0 when no group can use
  /// such a candidate. Requires 0 <= count < k_max().
  int MaxLayerForCount(int64_t count) const;

  /// One Safe-For-All requirement: the skyband must hold at least `k`
  /// succeeding entries with layer <= `layer` (DESIGN.md Sec. 4.3).
  struct SafetyRequirement {
    int layer;
    int64_t k;
  };

  /// The pruned Safe-For-All requirement staircase: one entry per k-group
  /// at its min layer, with implied requirements removed. Ascending in both
  /// `layer` and `k`. A point is a Safe-For-All inlier iff its succeeding
  /// skyband prefix satisfies every requirement.
  const std::vector<SafetyRequirement>& safety_requirements() const {
    return safety_requirements_;
  }

  /// Swift-query window size: the largest query window (Sec. 4.1).
  int64_t win_max() const { return win_max_; }
  /// Swift-query slide: gcd of the query slides (Sec. 4.2).
  int64_t slide_gcd() const { return slide_gcd_; }

  /// Query indices ordered by ascending window size: the emission sweep
  /// order (windows are suffixes of the swift window, so ascending window
  /// size means descending window start).
  const std::vector<size_t>& queries_by_window() const {
    return queries_by_window_;
  }

 private:
  Workload workload_;
  std::vector<double> layer_r_;       // ascending unique r values
  std::vector<int64_t> group_k_;      // ascending unique k values
  std::vector<int> query_layer_;      // per query, 1-based
  std::vector<int> query_group_;      // per query, 0-based
  std::vector<int> group_min_layer_;  // per group
  std::vector<int> group_max_layer_;  // per group
  std::vector<int> max_layer_for_count_;  // size k_max
  std::vector<SafetyRequirement> safety_requirements_;
  std::vector<size_t> queries_by_window_;
  int64_t win_max_ = 0;
  int64_t slide_gcd_ = 0;
};

}  // namespace sop

#endif  // SOP_QUERY_PLAN_H_
