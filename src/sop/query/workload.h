// A workload: the set of outlier queries processed together over one
// stream (the paper's query group Q).

#ifndef SOP_QUERY_WORKLOAD_H_
#define SOP_QUERY_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sop/common/distance.h"
#include "sop/query/query.h"
#include "sop/stream/window.h"

namespace sop {

/// The multi-query outlier workload: queries, the window unit they share,
/// the distance metric, and the attribute-set table referenced by
/// OutlierQuery::attribute_set (entry 0 is always the full space).
///
/// Construct, add queries, then call Validate() once (the detector factory
/// and WorkloadPlan check-fail on invalid workloads). Copyable.
class Workload {
 public:
  Workload() { attribute_sets_.push_back({}); }
  explicit Workload(WindowType type, Metric metric = Metric::kEuclidean)
      : window_type_(type), metric_(metric) {
    attribute_sets_.push_back({});
  }

  WindowType window_type() const { return window_type_; }
  void set_window_type(WindowType type) { window_type_ = type; }

  Metric metric() const { return metric_; }
  void set_metric(Metric metric) { metric_ = metric; }

  const std::vector<OutlierQuery>& queries() const { return queries_; }
  size_t num_queries() const { return queries_.size(); }
  const OutlierQuery& query(size_t i) const { return queries_[i]; }

  /// Appends a query; returns its index (query ids are positional).
  size_t AddQuery(const OutlierQuery& q);

  /// Drops all queries, keeping the window type, metric and attribute-set
  /// table (used to derive per-attribute-set sub-workloads).
  void ClearQueries() { queries_.clear(); }

  /// Registers an attribute subset (sorted, deduplicated by the caller) and
  /// returns its id for use in OutlierQuery::attribute_set.
  int AddAttributeSet(std::vector<int> attributes);

  const std::vector<std::vector<int>>& attribute_sets() const {
    return attribute_sets_;
  }

  /// The distance function for query `i`.
  DistanceFn MakeDistanceFn(size_t i) const;

  /// Validates every query (positive r/k/win/slide, valid attribute set).
  /// Returns an empty string when valid, else a description of the first
  /// problem found.
  std::string Validate() const;

  /// Stable fingerprint over window type, metric, attribute sets and
  /// queries. Two workloads with equal fingerprints are interchangeable
  /// for checkpoint restore purposes.
  uint64_t Fingerprint() const;

  /// Largest window size across queries.
  int64_t MaxWindow() const;
  /// Largest k across queries.
  int64_t MaxK() const;
  /// gcd of the query slides: the swift-query slide / driver batch span.
  int64_t SlideGcd() const;

 private:
  WindowType window_type_ = WindowType::kCount;
  Metric metric_ = Metric::kEuclidean;
  std::vector<OutlierQuery> queries_;
  std::vector<std::vector<int>> attribute_sets_;
};

}  // namespace sop

#endif  // SOP_QUERY_WORKLOAD_H_
