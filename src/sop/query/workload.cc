#include "sop/query/workload.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "sop/common/check.h"
#include "sop/common/math_util.h"

namespace sop {

size_t Workload::AddQuery(const OutlierQuery& q) {
  queries_.push_back(q);
  return queries_.size() - 1;
}

int Workload::AddAttributeSet(std::vector<int> attributes) {
  SOP_CHECK_MSG(std::is_sorted(attributes.begin(), attributes.end()),
                "attribute sets must be sorted");
  attribute_sets_.push_back(std::move(attributes));
  return static_cast<int>(attribute_sets_.size()) - 1;
}

DistanceFn Workload::MakeDistanceFn(size_t i) const {
  SOP_CHECK(i < queries_.size());
  const int set = queries_[i].attribute_set;
  SOP_CHECK(set >= 0 && static_cast<size_t>(set) < attribute_sets_.size());
  return DistanceFn(metric_, attribute_sets_[static_cast<size_t>(set)]);
}

std::string Workload::Validate() const {
  if (queries_.empty()) return "workload has no queries";
  char buf[160];
  for (size_t i = 0; i < queries_.size(); ++i) {
    const OutlierQuery& q = queries_[i];
    const char* problem = nullptr;
    if (!(q.r > 0.0)) problem = "r must be > 0";
    if (q.k <= 0) problem = "k must be > 0";
    if (q.win <= 0) problem = "win must be > 0";
    if (q.slide <= 0) problem = "slide must be > 0";
    if (q.attribute_set < 0 ||
        static_cast<size_t>(q.attribute_set) >= attribute_sets_.size()) {
      problem = "attribute_set out of range";
    }
    if (problem != nullptr) {
      std::snprintf(buf, sizeof(buf), "query %zu: %s", i, problem);
      return buf;
    }
  }
  return "";
}

namespace {

// FNV-1a style mixing over 64-bit words.
uint64_t MixWord(uint64_t hash, uint64_t word) {
  hash ^= word;
  hash *= 0x100000001b3ULL;
  hash ^= hash >> 29;
  return hash;
}

uint64_t MixDouble(uint64_t hash, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return MixWord(hash, bits);
}

}  // namespace

uint64_t Workload::Fingerprint() const {
  uint64_t hash = 0xcbf29ce484222325ULL;
  hash = MixWord(hash, static_cast<uint64_t>(window_type_));
  hash = MixWord(hash, static_cast<uint64_t>(metric_));
  hash = MixWord(hash, attribute_sets_.size());
  for (const auto& set : attribute_sets_) {
    hash = MixWord(hash, set.size());
    for (const int dim : set) hash = MixWord(hash, static_cast<uint64_t>(dim));
  }
  hash = MixWord(hash, queries_.size());
  for (const OutlierQuery& q : queries_) {
    hash = MixDouble(hash, q.r);
    hash = MixWord(hash, static_cast<uint64_t>(q.k));
    hash = MixWord(hash, static_cast<uint64_t>(q.win));
    hash = MixWord(hash, static_cast<uint64_t>(q.slide));
    hash = MixWord(hash, static_cast<uint64_t>(q.attribute_set));
  }
  return hash;
}

int64_t Workload::MaxWindow() const {
  SOP_CHECK(!queries_.empty());
  int64_t m = 0;
  for (const OutlierQuery& q : queries_) m = std::max(m, q.win);
  return m;
}

int64_t Workload::MaxK() const {
  SOP_CHECK(!queries_.empty());
  int64_t m = 0;
  for (const OutlierQuery& q : queries_) m = std::max(m, q.k);
  return m;
}

int64_t Workload::SlideGcd() const {
  std::vector<int64_t> slides;
  slides.reserve(queries_.size());
  for (const OutlierQuery& q : queries_) slides.push_back(q.slide);
  return GcdAll(slides);
}

}  // namespace sop
