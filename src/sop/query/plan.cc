#include "sop/query/plan.h"

#include <algorithm>
#include <cmath>

#include "sop/common/check.h"

namespace sop {
namespace {

// One evidence demand against the basis: "keep enough skyband evidence to
// answer a query at this layer with this k". Real queries contribute their
// own (layer, k); headroom contributes virtual demands so anticipated
// queries are provisioned the same way real ones are.
struct BasisDemand {
  int layer;
  int64_t k;
};

}  // namespace

const char* PlanDeltaName(PlanDelta delta) {
  switch (delta) {
    case PlanDelta::kOverlayOnly:
      return "overlay-only";
    case PlanDelta::kBasisExtend:
      return "basis-extend";
    case PlanDelta::kRebuild:
      return "rebuild";
  }
  return "unknown";
}

int WorkloadPlan::Basis::LayerOfDistance(double d) const {
  const auto it = std::lower_bound(layer_r.begin(), layer_r.end(), d);
  return static_cast<int>(it - layer_r.begin()) + 1;
}

int WorkloadPlan::Basis::LayerOfRadius(double r) const {
  // Exact double equality on purpose: a query "reuses a layer" only when
  // its r is bit-identical to a compiled threshold; a nearby-but-different
  // r is a genuinely new layer (the normalized distance would bucket
  // points differently).
  const auto it = std::lower_bound(layer_r.begin(), layer_r.end(), r);
  if (it == layer_r.end() || *it != r) return 0;
  return static_cast<int>(it - layer_r.begin()) + 1;
}

bool WorkloadPlan::Basis::Covers(const OutlierQuery& q) const {
  const int layer = LayerOfRadius(q.r);
  if (layer == 0) return false;                // new r layer: new bucketing
  if (q.k < 1 || q.k > k_max()) return false;  // beyond the k envelope
  if (q.win > win) return false;               // beyond the swift window
  // Def. 6 condition 3: the basis must never have pruned a candidate q
  // still needs. q needs candidates at layers <= `layer` until they are
  // dominated q.k times; the table is non-increasing in the count, so the
  // binding check is at count q.k - 1.
  if (layer > max_layer_for_count[static_cast<size_t>(q.k - 1)]) {
    return false;
  }
  // Safe-For-All: evidence for released inliers is gone, so q must be
  // implied by the staircase: some requirement at layer_i <= layer with
  // k_i >= q.k (then count(<= layer) >= count(<= layer_i) >= k_i >= q.k).
  // Requirements ascend in both layer and k, so the last one at or below
  // `layer` carries the largest k.
  const auto it = std::partition_point(
      safety_requirements.begin(), safety_requirements.end(),
      [layer](const SafetyRequirement& req) { return req.layer <= layer; });
  if (it == safety_requirements.begin()) return false;
  return (it - 1)->k >= q.k;
}

WorkloadPlan::WorkloadPlan(Workload workload, const PlanHeadroom& headroom)
    : workload_(std::move(workload)) {
  ValidateWorkload();
  SOP_CHECK(headroom.k_slack >= 0 && headroom.win_floor >= 0);
  for (const double r : headroom.r_values) {
    SOP_CHECK_MSG(std::isfinite(r) && r > 0.0,
                  "PlanHeadroom r values must be positive and finite");
  }
  const auto& queries = workload_.queries();

  // Layers: ascending unique r values, real and reserved.
  basis_.layer_r.reserve(queries.size() + headroom.r_values.size());
  for (const OutlierQuery& q : queries) basis_.layer_r.push_back(q.r);
  for (const double r : headroom.r_values) basis_.layer_r.push_back(r);
  std::sort(basis_.layer_r.begin(), basis_.layer_r.end());
  basis_.layer_r.erase(
      std::unique(basis_.layer_r.begin(), basis_.layer_r.end()),
      basis_.layer_r.end());

  // Envelopes.
  const int64_t k_env = workload_.MaxK() + headroom.k_slack;
  basis_.win = std::max(workload_.MaxWindow(), headroom.win_floor);

  // Demands: real queries plus headroom reservations. Elastic provisions
  // the full envelope at every layer (the plain (k_env - 1)-skyband of
  // Lemma 1); otherwise each reserved r is provisioned to the envelope.
  std::vector<BasisDemand> demands;
  demands.reserve(queries.size() + basis_.layer_r.size());
  for (const OutlierQuery& q : queries) {
    demands.push_back({basis_.LayerOfRadius(q.r), q.k});
  }
  if (headroom.elastic) {
    for (int m = 1; m <= basis_.num_layers(); ++m) {
      demands.push_back({m, k_env});
    }
  } else {
    for (const double r : headroom.r_values) {
      demands.push_back({basis_.LayerOfRadius(r), k_env});
    }
  }

  // Demand groups: ascending unique k, with min/max layer per group (for
  // real queries this reproduces the paper's k-groups exactly).
  std::vector<int64_t> demand_k;
  demand_k.reserve(demands.size());
  for (const BasisDemand& d : demands) demand_k.push_back(d.k);
  std::sort(demand_k.begin(), demand_k.end());
  demand_k.erase(std::unique(demand_k.begin(), demand_k.end()),
                 demand_k.end());
  std::vector<int> dmin(demand_k.size(), basis_.num_layers() + 1);
  std::vector<int> dmax(demand_k.size(), 0);
  for (const BasisDemand& d : demands) {
    const auto it = std::lower_bound(demand_k.begin(), demand_k.end(), d.k);
    const size_t g = static_cast<size_t>(it - demand_k.begin());
    dmin[g] = std::min(dmin[g], d.layer);
    dmax[g] = std::max(dmax[g], d.layer);
  }

  // Def. 6 condition 3 table over the demand groups. suffix_max[g] = max
  // max-layer over groups with index >= g; a candidate dominated by
  // `count` points serves group g only when k(g) > count, i.e. groups at
  // index >= UpperBound(count).
  std::vector<int> suffix_max(demand_k.size() + 1, 0);
  for (size_t g = demand_k.size(); g-- > 0;) {
    suffix_max[g] = std::max(suffix_max[g + 1], dmax[g]);
  }
  basis_.max_layer_for_count.resize(static_cast<size_t>(k_env));
  for (int64_t c = 0; c < k_env; ++c) {
    const auto it = std::upper_bound(demand_k.begin(), demand_k.end(), c);
    basis_.max_layer_for_count[static_cast<size_t>(c)] =
        suffix_max[static_cast<size_t>(it - demand_k.begin())];
  }

  // Safe-For-All requirements: demand group g demands k(g) succeeding
  // entries within its smallest r (its min layer); monotonicity of prefix
  // counts makes a requirement implied when an earlier layer already
  // demands at least as many entries, so only a strictly increasing
  // staircase remains. (Under elastic headroom this collapses to the
  // single requirement {layer 1, k_env}: the one condition every covered
  // future query can rely on.)
  {
    std::vector<SafetyRequirement> reqs;
    reqs.reserve(demand_k.size());
    for (size_t g = 0; g < demand_k.size(); ++g) {
      reqs.push_back({dmin[g], demand_k[g]});
    }
    std::sort(reqs.begin(), reqs.end(),
              [](const SafetyRequirement& a, const SafetyRequirement& b) {
                return a.layer != b.layer ? a.layer < b.layer : a.k > b.k;
              });
    for (const SafetyRequirement& r : reqs) {
      if (!basis_.safety_requirements.empty() &&
          basis_.safety_requirements.back().k >= r.k) {
        continue;  // implied by a requirement at an earlier layer
      }
      basis_.safety_requirements.push_back(r);
    }
  }

  CompileOverlay();
}

void WorkloadPlan::ValidateWorkload() const {
  const std::string problem = workload_.Validate();
  SOP_CHECK_MSG(problem.empty(), problem.c_str());
  SOP_CHECK_MSG(workload_.num_queries() > 0,
                "WorkloadPlan requires at least one query");
  const auto& queries = workload_.queries();
  for (const OutlierQuery& q : queries) {
    SOP_CHECK_MSG(q.attribute_set == queries.front().attribute_set,
                  "WorkloadPlan requires a single attribute set; use "
                  "MultiAttributeDetector for mixed workloads");
  }
}

void WorkloadPlan::CompileOverlay() {
  const auto& queries = workload_.queries();

  // Groups: ascending unique real k values.
  group_k_.clear();
  group_k_.reserve(queries.size());
  for (const OutlierQuery& q : queries) group_k_.push_back(q.k);
  std::sort(group_k_.begin(), group_k_.end());
  group_k_.erase(std::unique(group_k_.begin(), group_k_.end()),
                 group_k_.end());

  // Per-query coordinates against the fixed basis.
  query_layer_.assign(queries.size(), 0);
  query_group_.assign(queries.size(), 0);
  group_min_layer_.assign(group_k_.size(), num_layers() + 1);
  group_max_layer_.assign(group_k_.size(), 0);
  for (size_t i = 0; i < queries.size(); ++i) {
    const OutlierQuery& q = queries[i];
    const int layer = basis_.LayerOfRadius(q.r);
    SOP_CHECK_MSG(layer != 0, "query r is not a basis layer");
    const auto group_it =
        std::lower_bound(group_k_.begin(), group_k_.end(), q.k);
    const int group = static_cast<int>(group_it - group_k_.begin());
    query_layer_[i] = layer;
    query_group_[i] = group;
    auto& gmin = group_min_layer_[static_cast<size_t>(group)];
    auto& gmax = group_max_layer_[static_cast<size_t>(group)];
    gmin = std::min(gmin, layer);
    gmax = std::max(gmax, layer);
  }

  queries_by_window_.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) queries_by_window_[i] = i;
  std::stable_sort(queries_by_window_.begin(), queries_by_window_.end(),
                   [&queries](size_t a, size_t b) {
                     return queries[a].win < queries[b].win;
                   });

  slide_gcd_ = workload_.SlideGcd();
}

PlanDelta WorkloadPlan::Classify(const Workload& next) const {
  if (next.num_queries() == 0 || !next.Validate().empty()) {
    return PlanDelta::kRebuild;
  }
  if (next.window_type() != workload_.window_type() ||
      next.metric() != workload_.metric()) {
    return PlanDelta::kRebuild;
  }
  // The plan is compiled for one attribute set (one distance function); a
  // different set makes the stored skyband distances meaningless.
  const int attrs = workload_.queries().front().attribute_set;
  for (const OutlierQuery& q : next.queries()) {
    if (q.attribute_set != attrs) return PlanDelta::kRebuild;
  }
  if (next.attribute_sets()[static_cast<size_t>(attrs)] !=
      workload_.attribute_sets()[static_cast<size_t>(attrs)]) {
    return PlanDelta::kRebuild;
  }
  for (const OutlierQuery& q : next.queries()) {
    if (!basis_.Covers(q)) return PlanDelta::kBasisExtend;
  }
  return PlanDelta::kOverlayOnly;
}

bool WorkloadPlan::ApplyOverlay(Workload next) {
  if (Classify(next) != PlanDelta::kOverlayOnly) return false;
  workload_ = std::move(next);
  CompileOverlay();
  return true;
}

bool WorkloadPlan::AdoptBasis(Basis basis) {
  // Structural validation first: the basis typically arrives from a
  // checkpoint, and Covers() can only be trusted on a well-formed one.
  if (basis.layer_r.empty() || basis.max_layer_for_count.empty() ||
      basis.win <= 0) {
    return false;
  }
  for (size_t i = 0; i < basis.layer_r.size(); ++i) {
    if (!std::isfinite(basis.layer_r[i]) || basis.layer_r[i] <= 0.0) {
      return false;
    }
    if (i > 0 && basis.layer_r[i] <= basis.layer_r[i - 1]) return false;
  }
  int prev_layer = basis.num_layers() + 1;
  for (const int layer : basis.max_layer_for_count) {
    if (layer < 0 || layer > basis.num_layers()) return false;
    if (layer > prev_layer) return false;  // must be non-increasing
    prev_layer = layer;
  }
  const SafetyRequirement* prev = nullptr;
  for (const SafetyRequirement& req : basis.safety_requirements) {
    if (req.layer < 1 || req.layer > basis.num_layers()) return false;
    if (req.k < 1 || req.k > basis.k_max()) return false;
    if (prev != nullptr && (req.layer <= prev->layer || req.k <= prev->k)) {
      return false;
    }
    prev = &req;
  }
  for (const OutlierQuery& q : workload_.queries()) {
    if (!basis.Covers(q)) return false;
  }
  basis_ = std::move(basis);
  CompileOverlay();
  return true;
}

int WorkloadPlan::MaxLayerForCount(int64_t count) const {
  SOP_DCHECK(count >= 0 && count < k_max());
  return basis_.max_layer_for_count[static_cast<size_t>(count)];
}

}  // namespace sop
