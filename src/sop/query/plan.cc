#include "sop/query/plan.h"

#include <algorithm>

#include "sop/common/check.h"

namespace sop {

WorkloadPlan::WorkloadPlan(Workload workload) : workload_(std::move(workload)) {
  const std::string problem = workload_.Validate();
  SOP_CHECK_MSG(problem.empty(), problem.c_str());
  const auto& queries = workload_.queries();
  for (const OutlierQuery& q : queries) {
    SOP_CHECK_MSG(q.attribute_set == queries.front().attribute_set,
                  "WorkloadPlan requires a single attribute set; use "
                  "MultiAttributeDetector for mixed workloads");
  }

  // Layers: ascending unique r values.
  layer_r_.reserve(queries.size());
  for (const OutlierQuery& q : queries) layer_r_.push_back(q.r);
  std::sort(layer_r_.begin(), layer_r_.end());
  layer_r_.erase(std::unique(layer_r_.begin(), layer_r_.end()),
                 layer_r_.end());

  // Groups: ascending unique k values.
  group_k_.reserve(queries.size());
  for (const OutlierQuery& q : queries) group_k_.push_back(q.k);
  std::sort(group_k_.begin(), group_k_.end());
  group_k_.erase(std::unique(group_k_.begin(), group_k_.end()),
                 group_k_.end());

  // Per-query coordinates.
  query_layer_.resize(queries.size());
  query_group_.resize(queries.size());
  group_min_layer_.assign(group_k_.size(), num_layers() + 1);
  group_max_layer_.assign(group_k_.size(), 0);
  for (size_t i = 0; i < queries.size(); ++i) {
    const OutlierQuery& q = queries[i];
    const auto layer_it =
        std::lower_bound(layer_r_.begin(), layer_r_.end(), q.r);
    const int layer =
        static_cast<int>(layer_it - layer_r_.begin()) + 1;  // exact match
    const auto group_it =
        std::lower_bound(group_k_.begin(), group_k_.end(), q.k);
    const int group = static_cast<int>(group_it - group_k_.begin());
    query_layer_[i] = layer;
    query_group_[i] = group;
    auto& gmin = group_min_layer_[static_cast<size_t>(group)];
    auto& gmax = group_max_layer_[static_cast<size_t>(group)];
    gmin = std::min(gmin, layer);
    gmax = std::max(gmax, layer);
  }

  // Def. 6 condition 3 table. suffix_max[g] = max max_layer over groups
  // with index >= g; a candidate dominated by `count` points serves group
  // g only when k(g) > count, i.e. groups at index >= UpperBound(count).
  std::vector<int> suffix_max(group_k_.size() + 1, 0);
  for (int g = num_groups() - 1; g >= 0; --g) {
    suffix_max[static_cast<size_t>(g)] =
        std::max(suffix_max[static_cast<size_t>(g) + 1],
                 group_max_layer_[static_cast<size_t>(g)]);
  }
  max_layer_for_count_.resize(static_cast<size_t>(k_max()));
  for (int64_t c = 0; c < k_max(); ++c) {
    const auto it = std::upper_bound(group_k_.begin(), group_k_.end(), c);
    max_layer_for_count_[static_cast<size_t>(c)] =
        suffix_max[static_cast<size_t>(it - group_k_.begin())];
  }

  // Safe-For-All requirements: group g demands k(g) succeeding entries
  // within its smallest r (its min layer); monotonicity of prefix counts
  // makes a requirement implied when an earlier layer already demands at
  // least as many entries, so only a strictly increasing staircase remains.
  {
    std::vector<SafetyRequirement> reqs;
    reqs.reserve(group_k_.size());
    for (int g = 0; g < num_groups(); ++g) {
      reqs.push_back(
          {group_min_layer_[static_cast<size_t>(g)], group_k_[static_cast<size_t>(g)]});
    }
    std::sort(reqs.begin(), reqs.end(),
              [](const SafetyRequirement& a, const SafetyRequirement& b) {
                return a.layer != b.layer ? a.layer < b.layer : a.k > b.k;
              });
    for (const SafetyRequirement& r : reqs) {
      if (!safety_requirements_.empty() &&
          safety_requirements_.back().k >= r.k) {
        continue;  // implied by a requirement at an earlier layer
      }
      safety_requirements_.push_back(r);
    }
  }

  queries_by_window_.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) queries_by_window_[i] = i;
  std::stable_sort(queries_by_window_.begin(), queries_by_window_.end(),
                   [&queries](size_t a, size_t b) {
                     return queries[a].win < queries[b].win;
                   });

  win_max_ = workload_.MaxWindow();
  slide_gcd_ = workload_.SlideGcd();
}

int WorkloadPlan::LayerOfDistance(double d) const {
  const auto it = std::lower_bound(layer_r_.begin(), layer_r_.end(), d);
  return static_cast<int>(it - layer_r_.begin()) + 1;
}

int WorkloadPlan::MaxLayerForCount(int64_t count) const {
  SOP_DCHECK(count >= 0 && count < k_max());
  return max_layer_for_count_[static_cast<size_t>(count)];
}

}  // namespace sop
