#include "sop/query/query.h"

#include <cstdio>

namespace sop {

std::string OutlierQuery::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "q(r=%.6g, k=%lld, win=%lld, slide=%lld, attrs=%d)", r,
                static_cast<long long>(k), static_cast<long long>(win),
                static_cast<long long>(slide), attribute_set);
  return buf;
}

}  // namespace sop
