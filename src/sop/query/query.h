// The distance-based outlier query (paper Def. 3).

#ifndef SOP_QUERY_QUERY_H_
#define SOP_QUERY_QUERY_H_

#include <cstdint>
#include <string>

namespace sop {

/// One continuous distance-based outlier detection request
/// `q(r, k, win, slide)`:
///
///   At every window of size `win` ending at a multiple of `slide`, report
///   each point in the window with fewer than `k` neighbors, where a
///   neighbor is any other in-window point at original distance <= `r`.
///
/// `win` and `slide` are measured in the workload's window units (tuple
/// counts or time units, see Workload::window_type). `attribute_set`
/// indexes the workload's attribute-set table (0 = full attribute space)
/// and supports multi-attribute workloads (paper Fig. 10(b)).
struct OutlierQuery {
  double r = 0.0;
  int64_t k = 0;
  int64_t win = 0;
  int64_t slide = 0;
  int attribute_set = 0;

  OutlierQuery() = default;
  OutlierQuery(double r_in, int64_t k_in, int64_t win_in, int64_t slide_in,
               int attribute_set_in = 0)
      : r(r_in),
        k(k_in),
        win(win_in),
        slide(slide_in),
        attribute_set(attribute_set_in) {}

  friend bool operator==(const OutlierQuery&, const OutlierQuery&) = default;

  /// "q(r=..., k=..., win=..., slide=...)" for logs and test failures.
  std::string ToString() const;
};

}  // namespace sop

#endif  // SOP_QUERY_QUERY_H_
