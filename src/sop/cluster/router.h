// SopRouter: the horizontal scale-out plane (DESIGN.md Sec. 17).
//
// One router fronts N sop_server WORKERS, each owning one shard of the
// value domain (cluster/partition.h). To its own clients the router
// speaks the ordinary wire protocol — sop_client, sop_datagen and the
// loopback tests work against it unchanged — and behind that facade it
// runs three cooperating roles:
//
//   Partitioner  every ingested point is assigned one owner shard by its
//                first attribute, plus a replica on every shard whose
//                region lies within the halo width (the workload basis
//                r_max), so each worker sees the complete neighborhood of
//                every point it owns.
//   Router       batches fan out over per-worker bounded queues, one
//                SopClient per worker with reconnect/HA recovery armed —
//                a killed-and-restarted worker (checkpointing enabled) is
//                ridden out with exactly-once resume, not a lost shard.
//   Merger       per-worker emissions come back, halo verdicts (outliers
//                the emitting shard does not own) are dropped, owned
//                verdicts are translated from worker-local to global
//                sequence numbers and unioned, and one canonical
//                (boundary, query)-ordered emission stream goes out to
//                subscribers — bit-identical to a single-node run.
//
// Why the merge is exact: workers always run TIME windows. For a
// time-window deployment points pass through unchanged; for a COUNT
// deployment the router overwrites each point's time with its global
// arrival index, which makes a worker's window over [b - win, b) exactly
// the shard restriction of the global count window (stream/window.h keys
// both window types the same way). Each worker therefore evaluates every
// query over precisely the global window's points that fall in its region
// + halo; the halo guarantees complete neighbor sets for owned points
// (partition.h), so owned verdicts equal single-node verdicts, and each
// point is owned exactly once — the union is the global answer.
//
// Ordering: one route loop serializes every stream operation (batches,
// subscribes, unsubscribes, detach cleanup) and dispatches them to every
// worker in the same order, so all workers agree on which queries are
// live at every boundary. The loop fork-joins each batch across all
// workers before merging, and a batch's merged emissions are enqueued to
// each subscriber ahead of the ingester's ack — the same
// emissions-before-ack contract the single server gives.
//
// Halo sizing: `halo` < 0 (auto) derives the width from the compiled
// workload basis r_max under `headroom`, growing as queries arrive —
// until the first batch is routed, which freezes it (replicas already
// shipped cannot be widened retroactively). A later subscribe with
// r > halo is refused with a diagnostic instead of silently degrading.
//
// Degradation: if a worker stays unreachable past its client's bounded
// recovery, the router keeps serving — merged emissions carry
// degraded=true (a shard's verdicts are missing) until the worker
// returns. Lossy, and says so, rather than stalling the stream forever.
// A failed batch also leaves that shard's local->global sequence map in
// an unknown state (nothing says whether the worker numbered the batch's
// points), so the map is held desynced — its verdicts stay out of the
// merge, flagged degraded — until the worker's next ack: every ack
// carries the worker session's arrival counter (IngestAckMsg::next_seq),
// against which the router realigns the map exactly, excising the entries
// of batches the worker provably never applied. RouterStats::degraded
// mirrors this: set while any shard is failed or desynced, cleared once a
// batch completes with every worker realigned.
//
// Scope: the router keeps no resume ring and no checkpoint of its own;
// SubscribeMsg::resume_from is ignored (exactly-once across a ROUTER
// restart is out of scope — workers' rings + checkpoints cover worker
// restarts). Run workers with checkpointing (checkpoint_every_batches=1)
// so a restarted worker resumes with its sequence counter intact; the
// router's local->global sequence maps assume it.

#ifndef SOP_CLUSTER_ROUTER_H_
#define SOP_CLUSTER_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sop/cluster/partition.h"
#include "sop/common/distance.h"
#include "sop/net/client.h"
#include "sop/net/protocol.h"
#include "sop/net/socket.h"
#include "sop/query/plan.h"
#include "sop/stream/window.h"

namespace sop {
namespace cluster {

/// Router configuration. `workers` and `partition` must agree:
/// partition.parts() == workers.size() >= 1.
struct RouterOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 binds an ephemeral port (read back via port())

  /// The deployment's session configuration, advertised to clients in the
  /// hello ack. Workers must serve TIME windows (see file comment) with
  /// the same metric and detector; Start() verifies each worker's
  /// handshake and fails fast on a mismatch.
  WindowType window_type = WindowType::kCount;
  Metric metric = Metric::kEuclidean;
  std::string detector = "sop";

  /// One downstream sop_server per shard, in shard order.
  std::vector<net::Endpoint> workers;
  /// Interior cut points over the first attribute; parts() must equal
  /// workers.size(). PartitionSpec::Uniform is the common constructor.
  PartitionSpec partition;

  /// Halo width; < 0 derives it from the workload basis r_max under
  /// `headroom` as queries arrive (frozen at the first routed batch).
  double halo = -1.0;
  /// Headroom for the auto-halo basis compilation: reserved radii widen
  /// the halo now so later subscribes at those radii stay admissible.
  PlanHeadroom headroom = PlanHeadroom::Elastic();

  /// Bounded client -> route-loop queue (stream ops). A full queue blocks
  /// readers, backpressuring the ingesting client's TCP stream.
  size_t max_ingest_queue = 16;
  /// Bounded per-worker job queue (batches in flight to one worker).
  size_t max_worker_queue = 8;
  /// Bounded per-subscriber send queue (frames); a full queue blocks the
  /// route loop — lossless backpressure, like the server's kBlock policy.
  size_t max_send_queue = 256;

  /// Retention for the local->global sequence maps, in window-key units
  /// past the merged stream position; 0 sizes it automatically from the
  /// largest subscribed window (+ headroom.win_floor).
  int64_t seq_retention = 0;

  /// Backoff schedule for injected transient socket faults (front side
  /// and worker clients).
  net::NetRetryOptions retry;
  /// Worker-client recovery template (endpoints are filled per worker).
  net::ReconnectOptions worker_reconnect;
};

/// Monotonic counters since Start(), always on (independent of obs).
struct RouterStats {
  uint64_t connections = 0;        // accepted client sockets, lifetime
  uint64_t active_clients = 0;     // currently connected
  uint64_t ingest_batches = 0;     // client batches routed
  uint64_t ingest_points = 0;      // distinct points ingested
  uint64_t routed_points = 0;      // point copies shipped to workers
  uint64_t halo_points = 0;        // of those, halo replicas
  uint64_t merged_boundaries = 0;  // fork-joined batch merges completed
  uint64_t merged_emissions = 0;   // emission frames enqueued to clients
  uint64_t dropped_halo_outliers = 0;  // halo verdicts discarded in merge
  uint64_t subscribes = 0;
  uint64_t refused_subscribes = 0;     // bad query, or r > frozen halo
  uint64_t unsubscribes = 0;
  uint64_t protocol_errors = 0;
  uint64_t worker_reconnects = 0;  // recoveries completed across workers
  uint64_t worker_failures = 0;    // batches a worker never acked
  /// True while a shard's verdicts are missing or its sequence map is
  /// desynced; false again once a batch completes with every worker
  /// healthy and realigned (current health, not a sticky latch).
  bool degraded = false;
  int64_t last_boundary = net::kNoResume;
  double halo = 0.0;               // current width (may grow until frozen)
  uint32_t workers = 0;
};

/// The scale-out front end. Start() connects every worker, then serves
/// until Stop(). Thread-safe: Start/Stop from one controlling thread,
/// stats()/port() from anywhere.
class SopRouter {
 public:
  explicit SopRouter(RouterOptions options);
  ~SopRouter();

  SopRouter(const SopRouter&) = delete;
  SopRouter& operator=(const SopRouter&) = delete;

  /// Validates the partition against the worker list, connects and
  /// verifies every worker (time windows, matching metric/detector,
  /// primary role), binds the front listener and spawns the serving
  /// threads. Shard configs are declared at the first routed batch, when
  /// the halo freezes. False with `*error` set on any mismatch.
  bool Start(std::string* error);

  /// Graceful shutdown; idempotent. Stops accepting, drains the route
  /// loop, joins the worker threads and closes every connection.
  void Stop();

  /// The bound front port (valid after Start()).
  int port() const { return port_; }

  RouterStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int port_ = 0;
};

}  // namespace cluster
}  // namespace sop

#endif  // SOP_CLUSTER_ROUTER_H_
