#include "sop/cluster/partition.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace sop {
namespace cluster {

PartitionSpec PartitionSpec::Uniform(double lo, double hi, int parts) {
  PartitionSpec spec;
  if (parts <= 1) return spec;
  const double span = hi - lo;
  for (int i = 1; i < parts; ++i) {
    spec.cuts.push_back(lo + span * static_cast<double>(i) /
                                 static_cast<double>(parts));
  }
  return spec;
}

bool PartitionSpec::Validate(std::string* error) const {
  for (size_t i = 0; i < cuts.size(); ++i) {
    if (!std::isfinite(cuts[i])) {
      if (error != nullptr) *error = "partition cut is not finite";
      return false;
    }
    if (i > 0 && !(cuts[i - 1] < cuts[i])) {
      if (error != nullptr) *error = "partition cuts not strictly ascending";
      return false;
    }
  }
  return true;
}

Partitioner::Partitioner(PartitionSpec spec, double halo)
    : spec_(std::move(spec)), halo_(halo) {}

int Partitioner::OwnerOf(double v) const {
  // NaN compares unordered (upper_bound would skip every cut and land on
  // the last shard); pin it to shard 0 so placement is deterministic.
  if (std::isnan(v)) return 0;
  // First cut strictly above v starts the next shard; everything below
  // the first cut is shard 0.
  const auto it = std::upper_bound(spec_.cuts.begin(), spec_.cuts.end(), v);
  return static_cast<int>(it - spec_.cuts.begin());
}

void Partitioner::AssignmentsOf(double v,
                                std::vector<ShardAssignment>* out) const {
  out->clear();
  const int owner = OwnerOf(v);
  // Shard j needs v iff its range lies within halo: lo_j <= v + halo (low
  // edge inclusive — a replica at distance exactly halo can still be a
  // neighbor) and hi_j > v - halo (points of shard j are strictly below
  // hi_j, so distance-exactly-halo at the high edge is already covered).
  // Both conditions are "owner of a shifted value", and the shards between
  // them form a contiguous interval containing the owner.
  int first = owner;
  int last = owner;
  if (halo_ > 0.0 && std::isfinite(v)) {
    first = OwnerOf(v - halo_);
    last = OwnerOf(v + halo_);
  }
  for (int shard = first; shard <= last; ++shard) {
    out->push_back(ShardAssignment{shard, shard == owner});
  }
}

double Partitioner::range_lo(int shard) const {
  if (shard <= 0) return -std::numeric_limits<double>::infinity();
  return spec_.cuts[static_cast<size_t>(shard) - 1];
}

double Partitioner::range_hi(int shard) const {
  if (shard >= parts() - 1) return std::numeric_limits<double>::infinity();
  return spec_.cuts[static_cast<size_t>(shard)];
}

double HaloFromBasis(const Workload& workload, const PlanHeadroom& headroom) {
  return WorkloadPlan(workload, headroom).r_max();
}

}  // namespace cluster
}  // namespace sop
