// Spatial partitioning for the scale-out plane (DESIGN.md Sec. 17).
//
// The value domain of the FIRST attribute is cut into N contiguous ranges,
// one per worker shard. Every point has exactly one OWNER shard — the
// range its values[0] falls in — whose outlier verdict for it is
// authoritative. Around each range sits a HALO of width `halo`: a point
// owned elsewhere but within `halo` of a shard's range is replicated
// there, so the shard sees every possible neighbor of every point it owns.
//
// Why one attribute suffices for exactness: for both supported metrics
// (Euclidean and Manhattan), |p0 - q0| <= dist(p, q). So if q is within
// query radius r <= halo of an owned point p, then |p0 - q0| <= r <= halo
// and q lands inside the owner's halo — the owner shard computes p's
// neighbor count over its complete neighbor set, and its verdict equals
// the single-node verdict. The halo width therefore has to dominate every
// radius the deployment will ever serve, which is exactly what the
// workload basis r_max (query/plan.h) — including any PlanHeadroom
// reservations — provides. HaloFromBasis does that derivation.
//
// The first shard's range extends to -infinity and the last one's to
// +infinity, so every finite value (and +/-inf and NaN inputs, which
// compare unordered and fall to the first shard) has exactly one owner —
// the partition covers the whole domain by construction.

#ifndef SOP_CLUSTER_PARTITION_H_
#define SOP_CLUSTER_PARTITION_H_

#include <string>
#include <vector>

#include "sop/common/point.h"
#include "sop/query/plan.h"
#include "sop/query/workload.h"

namespace sop {
namespace cluster {

/// A range partition of the first attribute: `cuts` are the ascending
/// interior cut points, so cuts.size() + 1 shards. Shard i owns
/// [cuts[i-1], cuts[i]) with the outer bounds open-ended.
struct PartitionSpec {
  std::vector<double> cuts;

  /// Evenly spaced cuts over [lo, hi) for `parts` shards. The outer shards
  /// still extend to +/-infinity — [lo, hi) only places the interior cuts.
  static PartitionSpec Uniform(double lo, double hi, int parts);

  /// Number of shards this spec describes.
  int parts() const { return static_cast<int>(cuts.size()) + 1; }

  /// False (with a diagnostic) when the cuts are not strictly ascending
  /// finite values.
  bool Validate(std::string* error) const;
};

/// One shard's claim on a routed point.
struct ShardAssignment {
  int shard = 0;
  bool owner = false;  // false = halo replica
};

/// Maps values to owner and halo shards for a fixed spec + halo width.
/// Immutable after construction; safe to share across threads.
class Partitioner {
 public:
  /// `spec` must validate; `halo` must be finite and >= 0.
  Partitioner(PartitionSpec spec, double halo);

  int parts() const { return spec_.parts(); }
  double halo() const { return halo_; }
  const PartitionSpec& spec() const { return spec_; }

  /// The unique owner shard of first-attribute value `v`, in [0, parts()).
  int OwnerOf(double v) const;

  /// Every shard that must see `v`: the owner plus every shard whose range
  /// lies within `halo` of it — a contiguous, ascending shard interval.
  /// Clears `*out`, then writes one ShardAssignment per shard (callers
  /// reuse one scratch vector across points).
  void AssignmentsOf(double v, std::vector<ShardAssignment>* out) const;

  /// Owned range of `shard` as [lo, hi); the outer bounds are +/-infinity.
  double range_lo(int shard) const;
  double range_hi(int shard) const;

 private:
  PartitionSpec spec_;
  double halo_;
};

/// Halo width that keeps a partitioned deployment exact for `workload`:
/// the compiled basis r_max under `headroom` (so reserved future radii are
/// covered too). The workload must validate; call sites gate on that.
double HaloFromBasis(const Workload& workload, const PlanHeadroom& headroom);

}  // namespace cluster
}  // namespace sop

#endif  // SOP_CLUSTER_PARTITION_H_
