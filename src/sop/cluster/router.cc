#include "sop/cluster/router.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "sop/obs/metrics.h"
#include "sop/obs/trace.h"
#include "sop/query/workload.h"

namespace sop {
namespace cluster {

namespace {

// One front-side client connection: a reader thread, a writer thread and a
// bounded send queue between the route loop and the socket. Enqueueing
// into a full queue blocks (lossless backpressure); a closing connection
// drops frames instead of blocking shutdown.
struct Conn {
  net::Socket sock;
  std::thread reader;
  std::thread writer;
  std::mutex mu;
  std::condition_variable cv_send;  // writer waits for frames
  std::condition_variable cv_room;  // enqueuers wait for capacity
  std::deque<std::string> sendq;    // guarded by mu
  bool closing = false;             // guarded by mu
  std::vector<int64_t> sub_ids;     // guarded by mu; this conn's query ids
};

// One stream operation. Everything that changes what workers compute —
// batches, subscriptions, retirements — funnels through the single route
// loop so every worker observes the identical operation order (the
// workers-agree-on-live-queries invariant the merge depends on).
struct Op {
  enum class Kind { kBatch, kSubscribe, kUnsubscribe, kDetach };
  Kind kind = Kind::kBatch;
  std::shared_ptr<Conn> conn;  // reply target (null for kDetach)
  net::IngestMsg ingest;       // kBatch
  OutlierQuery query;          // kSubscribe
  int64_t query_id = 0;        // kUnsubscribe / kDetach
};

// One unit of work for a worker thread, in route-loop dispatch order.
struct Job {
  enum class Kind { kConfig, kBatch, kSubscribe, kUnsubscribe, kStop };
  Kind kind = Kind::kStop;
  net::ShardConfigMsg config;   // kConfig
  int64_t boundary = 0;         // kBatch
  std::vector<Point> points;    // kBatch
  std::vector<uint8_t> owner;   // kBatch
  int64_t query_id = 0;         // kSubscribe / kUnsubscribe (global id)
  OutlierQuery query;           // kSubscribe
  uint64_t ticket = 0;          // kSubscribe / kUnsubscribe completion
};

}  // namespace

struct SopRouter::Impl {
  explicit Impl(RouterOptions opts) : options(std::move(opts)) {}

  RouterOptions options;

  // --- always-on stats (obs may be compiled out) -------------------------
  struct AtomicStats {
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> active_clients{0};
    std::atomic<uint64_t> ingest_batches{0};
    std::atomic<uint64_t> ingest_points{0};
    std::atomic<uint64_t> routed_points{0};
    std::atomic<uint64_t> halo_points{0};
    std::atomic<uint64_t> merged_boundaries{0};
    std::atomic<uint64_t> merged_emissions{0};
    std::atomic<uint64_t> dropped_halo_outliers{0};
    std::atomic<uint64_t> subscribes{0};
    std::atomic<uint64_t> refused_subscribes{0};
    std::atomic<uint64_t> unsubscribes{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> worker_reconnects{0};
    std::atomic<uint64_t> worker_failures{0};
    std::atomic<bool> degraded{false};
  };
  AtomicStats stats;
  std::atomic<int64_t> last_boundary{net::kNoResume};
  // Current halo width. Grows with auto-sizing subscribes until the first
  // routed batch freezes it (route-loop-owned flag below).
  std::atomic<double> halo{0.0};

  // --- serving state -----------------------------------------------------
  net::Socket listener;
  std::thread accept_thread;
  std::thread route_thread;
  std::atomic<bool> stopping{false};

  std::mutex conns_mu;
  std::vector<std::shared_ptr<Conn>> conns;      // active; guarded
  std::vector<std::shared_ptr<Conn>> all_conns;  // for Stop joins; guarded

  // Bounded reader -> route-loop handoff. A full queue blocks readers, so
  // ingest backpressure propagates to the client's TCP stream.
  std::mutex ops_mu;
  std::condition_variable ops_cv_push;  // route loop waits
  std::condition_variable ops_cv_pop;   // readers wait for room
  std::deque<Op> ops;                   // guarded by ops_mu
  bool draining = false;                // guarded by ops_mu

  // Subscriber registry: global query id -> query + owning connection.
  struct SubState {
    OutlierQuery query;
    std::shared_ptr<Conn> conn;
  };
  std::mutex subs_mu;
  std::map<int64_t, SubState> subs;  // guarded by subs_mu

  // --- route-loop-only state (single thread, no locks) -------------------
  int64_t next_query_id = 1;
  bool halo_frozen = false;
  int64_t max_win = 0;  // largest window ever subscribed
  Seq next_seq = 0;     // global arrival counter
  std::unique_ptr<Partitioner> partitioner;  // built at halo freeze
  // Per-worker local->global sequence map: entry i describes the point
  // the worker's session numbered (base + i). `key` is the window key
  // (global seq for count deployments, time for time ones) that drives
  // horizon pruning.
  struct MapEntry {
    Seq global = 0;
    int64_t key = 0;
    bool owned = false;
  };
  struct SeqMap {
    std::deque<MapEntry> entries;
    int64_t base = 0;  // local seq of entries.front()
    // Batches this worker may or may not have applied — its client gave up
    // without an ack, so nothing says whether the worker numbered their
    // points. Each gap records the map range the batch's entries occupy
    // (in the map's own hypothetical local coordinates). While any gap is
    // open the map is desynced: translations through it cannot be trusted.
    // The next acked batch carries the worker's authoritative arrival
    // counter (IngestAckMsg::next_seq), which resolves every open gap —
    // see RealignSeqMap.
    struct Gap {
      int64_t start = 0;  // hypothetical local seq of the gap's first entry
      int64_t count = 0;
    };
    std::vector<Gap> gaps;
    bool desynced() const { return !gaps.empty(); }
  };
  std::vector<SeqMap> seq_maps;

  // --- completion plane (workers -> route loop) --------------------------
  std::mutex done_mu;
  std::condition_variable done_cv;
  // One worker's outcome for one fanned-out batch.
  struct WorkerBatchResult {
    bool ok = false;           // transport-level success (an ack arrived)
    uint64_t accepted = 0;     // points the worker applied (ack.accepted)
    uint64_t next_seq = 0;     // worker arrival counter after the batch
  };
  struct PendingBatch {
    size_t remaining = 0;
    std::vector<WorkerBatchResult> results;  // by worker index
    // (worker index, emission with GLOBAL query id but LOCAL seqs).
    std::vector<std::pair<int, net::EmissionMsg>> emissions;
  };
  std::map<int64_t, PendingBatch> pending;  // by boundary; guarded
  struct Ticket {
    size_t remaining = 0;
    bool ok = true;
    std::string error;
  };
  std::map<uint64_t, Ticket> tickets;  // guarded by done_mu
  uint64_t next_ticket = 1;            // route-loop only

  // --- workers -----------------------------------------------------------
  struct Worker {
    int index = 0;
    net::Endpoint endpoint;
    net::SopClient client;  // worker-thread-owned after Start()
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv_push;
    std::condition_variable cv_pop;
    std::deque<Job> jobs;  // guarded by mu
    // Query id translation, worker-thread only: the ids this worker's
    // client handed out vs the router's global ids.
    std::map<int64_t, int64_t> global_to_client;
    std::map<int64_t, int64_t> client_to_global;
    // Cached obs handles (null when obs is disabled at Start).
    obs::Counter* points_counter = nullptr;
    obs::Gauge* lag_gauge = nullptr;
  };
  std::vector<std::unique_ptr<Worker>> workers;

  // --- send path ---------------------------------------------------------

  void EnqueueFrame(const std::shared_ptr<Conn>& conn, std::string frame) {
    std::unique_lock<std::mutex> lock(conn->mu);
    conn->cv_room.wait(lock, [&] {
      return conn->closing ||
             conn->sendq.size() < options.max_send_queue;
    });
    if (conn->closing) return;  // peer gone; nobody to deliver to
    conn->sendq.push_back(std::move(frame));
    conn->cv_send.notify_one();
  }

  void SendError(const std::shared_ptr<Conn>& conn,
                 const std::string& message) {
    net::ErrorMsg msg;
    msg.message = message;
    EnqueueFrame(conn, EncodeError(msg));
  }

  void WriterLoop(const std::shared_ptr<Conn>& conn) {
    for (;;) {
      std::string frame;
      {
        std::unique_lock<std::mutex> lock(conn->mu);
        conn->cv_send.wait(lock, [&] {
          return conn->closing || !conn->sendq.empty();
        });
        if (conn->sendq.empty()) return;  // closing and drained
        frame = std::move(conn->sendq.front());
        conn->sendq.pop_front();
        conn->cv_room.notify_all();
      }
      std::string error;
      if (!SendAll(conn->sock, frame, options.retry, &error)) {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->closing = true;
        conn->sendq.clear();
        conn->sock.ShutdownBoth();
        conn->cv_room.notify_all();
        return;
      }
    }
  }

  // --- connection lifecycle ---------------------------------------------

  void CloseConn(const std::shared_ptr<Conn>& conn) {
    bool was_active = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      auto it = std::find(conns.begin(), conns.end(), conn);
      if (it != conns.end()) {
        conns.erase(it);
        was_active = true;
      }
    }
    std::vector<int64_t> retire;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->closing = true;
      retire.swap(conn->sub_ids);
      conn->sock.ShutdownBoth();
      conn->cv_send.notify_all();
      conn->cv_room.notify_all();
    }
    if (was_active) {
      stats.active_clients.fetch_sub(1, std::memory_order_relaxed);
    }
    // Retire the dead client's queries from the workers, through the route
    // loop so retirement is ordered against in-flight batches. During
    // shutdown the workers are being torn down anyway — skip.
    for (const int64_t qid : retire) {
      Op op;
      op.kind = Op::Kind::kDetach;
      op.query_id = qid;
      EnqueueOp(std::move(op));
    }
  }

  // Blocks while the op queue is full. False when the router is shutting
  // down (the op was not enqueued).
  bool EnqueueOp(Op op) {
    std::unique_lock<std::mutex> lock(ops_mu);
    ops_cv_pop.wait(lock, [&] {
      return stopping.load(std::memory_order_relaxed) || draining ||
             ops.size() < options.max_ingest_queue;
    });
    if (stopping.load(std::memory_order_relaxed) || draining) return false;
    ops.push_back(std::move(op));
    SOP_GAUGE_SET_MAX("cluster/route/queue_depth", ops.size());
    ops_cv_push.notify_one();
    return true;
  }

  // --- front-side protocol ----------------------------------------------

  // Handles one decoded frame. False ends the connection.
  bool Dispatch(const std::shared_ptr<Conn>& conn,
                const std::string& payload) {
    net::MsgType type;
    std::string error;
    if (!net::PeekType(payload, &type, &error)) {
      stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, error);
      return false;
    }
    switch (type) {
      case net::MsgType::kHello: {
        net::HelloMsg hello;
        if (!net::DecodeHello(payload, &hello, &error)) {
          stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          SendError(conn, error);
          return false;
        }
        if (hello.protocol_version != net::kProtocolVersion) {
          // Same refusal as the server: an old peer would otherwise send
          // frames whose decode failures make for baffling diagnostics.
          stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          SendError(conn, "protocol version mismatch: router speaks v" +
                              std::to_string(net::kProtocolVersion));
          return false;
        }
        net::HelloAckMsg ack;
        ack.protocol_version = net::kProtocolVersion;
        ack.window_type = static_cast<uint32_t>(options.window_type);
        ack.metric = static_cast<uint32_t>(options.metric);
        ack.role = static_cast<uint32_t>(net::ServerRole::kPrimary);
        ack.detector = options.detector;
        ack.last_boundary = last_boundary.load(std::memory_order_relaxed);
        // The router's arrival counter: one global seq per ingested point.
        ack.next_seq = stats.ingest_points.load(std::memory_order_relaxed);
        EnqueueFrame(conn, EncodeHelloAck(ack));
        return true;
      }
      case net::MsgType::kIngest: {
        Op op;
        op.kind = Op::Kind::kBatch;
        op.conn = conn;
        if (!net::DecodeIngest(payload, &op.ingest, &error)) {
          stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          SendError(conn, error);
          return false;
        }
        // Ownership is the router's to assign; client-provided flags are
        // meaningless here.
        op.ingest.owner.clear();
        return EnqueueOp(std::move(op));
      }
      case net::MsgType::kSubscribe: {
        net::SubscribeMsg sub;
        if (!net::DecodeSubscribe(payload, &sub, &error)) {
          stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          SendError(conn, error);
          return false;
        }
        // Same pre-validation as the single server: a bad wire query gets
        // a refusal, not a crashed worker. resume_from is ignored — the
        // router keeps no resume ring (see router.h).
        Workload probe(options.window_type, options.metric);
        probe.AddQuery(sub.query);
        const std::string verdict = probe.Validate();
        if (!verdict.empty()) {
          stats.refused_subscribes.fetch_add(1, std::memory_order_relaxed);
          net::SubscribeAckMsg ack;
          ack.error = verdict;
          EnqueueFrame(conn, EncodeSubscribeAck(ack));
          return true;
        }
        Op op;
        op.kind = Op::Kind::kSubscribe;
        op.conn = conn;
        op.query = sub.query;
        return EnqueueOp(std::move(op));
      }
      case net::MsgType::kUnsubscribe: {
        net::UnsubscribeMsg unsub;
        if (!net::DecodeUnsubscribe(payload, &unsub, &error)) {
          stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          SendError(conn, error);
          return false;
        }
        // A client may only retire its own subscriptions.
        bool owned = false;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          auto it = std::find(conn->sub_ids.begin(), conn->sub_ids.end(),
                              unsub.query_id);
          owned = it != conn->sub_ids.end();
        }
        if (!owned) {
          net::UnsubscribeAckMsg ack;
          EnqueueFrame(conn, EncodeUnsubscribeAck(ack));
          return true;
        }
        Op op;
        op.kind = Op::Kind::kUnsubscribe;
        op.conn = conn;
        op.query_id = unsub.query_id;
        return EnqueueOp(std::move(op));
      }
      case net::MsgType::kPing: {
        net::PingMsg ping;
        if (!net::DecodePing(payload, &ping, &error)) {
          stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          SendError(conn, error);
          return false;
        }
        net::PongMsg pong;
        pong.token = ping.token;
        pong.role = static_cast<uint32_t>(net::ServerRole::kPrimary);
        pong.last_boundary = last_boundary.load(std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(ops_mu);
          pong.ingest_queue_depth = ops.size();
        }
        {
          std::vector<std::shared_ptr<Conn>> snapshot;
          {
            std::lock_guard<std::mutex> lock(conns_mu);
            snapshot = conns;
          }
          uint64_t depth = 0;
          for (const std::shared_ptr<Conn>& c : snapshot) {
            std::lock_guard<std::mutex> lock(c->mu);
            depth += c->sendq.size();
          }
          pong.send_queue_depth = depth;
        }
        pong.active_connections =
            stats.active_clients.load(std::memory_order_relaxed);
        EnqueueFrame(conn, EncodePong(pong));
        return true;
      }
      default:
        SendError(conn, std::string("unexpected client message: ") +
                            MsgTypeName(type));
        return true;
    }
  }

  void ReaderLoop(const std::shared_ptr<Conn>& conn) {
    net::FrameDecoder decoder;
    char buf[64 << 10];
    for (;;) {
      std::string error;
      const int64_t n = RecvSome(conn->sock, buf, sizeof(buf),
                                 options.retry, &error);
      if (n <= 0) break;  // EOF, shutdown, or unrecoverable socket error
      decoder.Append(buf, static_cast<size_t>(n));
      bool drop = false;
      for (;;) {
        std::string payload;
        const net::FrameDecoder::Status status =
            decoder.Next(&payload, &error);
        if (status == net::FrameDecoder::Status::kNeedMore) break;
        if (status == net::FrameDecoder::Status::kError) {
          stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          SendError(conn, "framing lost: " + error);
          drop = true;
          break;
        }
        if (!Dispatch(conn, payload)) {
          drop = true;
          break;
        }
      }
      if (drop) break;
    }
    CloseConn(conn);
  }

  void AcceptLoop() {
    for (;;) {
      std::string error;
      net::Socket sock = AcceptTcp(listener, &error);
      if (!sock.valid()) {
        if (stopping.load(std::memory_order_relaxed)) return;
        continue;  // transient accept failure
      }
      auto conn = std::make_shared<Conn>();
      conn->sock = std::move(sock);
      {
        std::lock_guard<std::mutex> lock(conns_mu);
        conns.push_back(conn);
        all_conns.push_back(conn);
      }
      stats.connections.fetch_add(1, std::memory_order_relaxed);
      stats.active_clients.fetch_add(1, std::memory_order_relaxed);
      conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
      conn->writer = std::thread([this, conn] { WriterLoop(conn); });
    }
  }

  // --- worker side -------------------------------------------------------

  void PushJob(Worker* w, Job job) {
    std::unique_lock<std::mutex> lock(w->mu);
    // During shutdown the queue bound is waived instead of dropping the
    // job: the workers keep running until the route loop has drained
    // (Stop() joins the loop before ending them), so every pushed job
    // still completes — a dropped kBatch/kSubscribe would strand its
    // pending/ticket join and deadlock the drain.
    w->cv_pop.wait(lock, [&] {
      return stopping.load(std::memory_order_relaxed) ||
             w->jobs.size() < options.max_worker_queue;
    });
    w->jobs.push_back(std::move(job));
    if (w->lag_gauge != nullptr && obs::Enabled()) {
      w->lag_gauge->Set(static_cast<int64_t>(w->jobs.size()));
    }
    w->cv_push.notify_one();
  }

  void CompleteTicket(uint64_t ticket, bool ok, const std::string& error) {
    std::lock_guard<std::mutex> lock(done_mu);
    auto it = tickets.find(ticket);
    if (it == tickets.end()) return;
    if (!ok && it->second.ok) {
      it->second.ok = false;
      it->second.error = error;
    }
    if (it->second.remaining > 0) --it->second.remaining;
    done_cv.notify_all();
  }

  void WorkerLoop(Worker* w) {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(w->mu);
        w->cv_push.wait(lock, [&] { return !w->jobs.empty(); });
        job = std::move(w->jobs.front());
        w->jobs.pop_front();
        if (w->lag_gauge != nullptr && obs::Enabled()) {
          w->lag_gauge->Set(static_cast<int64_t>(w->jobs.size()));
        }
        w->cv_pop.notify_all();
      }
      switch (job.kind) {
        case Job::Kind::kStop:
          return;
        case Job::Kind::kConfig: {
          net::ShardConfigAckMsg ack;
          std::string error;
          if (!w->client.ShardConfig(job.config, &ack, &error) || !ack.ok) {
            // Informational handshake; a refusal (another router claimed
            // this worker) is visible in the worker's stats and ours.
            stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
        case Job::Kind::kSubscribe: {
          std::string error;
          const int64_t cid = w->client.Subscribe(job.query, &error);
          if (cid != 0) {
            w->global_to_client[job.query_id] = cid;
            w->client_to_global[cid] = job.query_id;
          }
          CompleteTicket(job.ticket, cid != 0, error);
          break;
        }
        case Job::Kind::kUnsubscribe: {
          std::string error;
          bool ok = false;
          auto it = w->global_to_client.find(job.query_id);
          if (it != w->global_to_client.end()) {
            ok = w->client.Unsubscribe(it->second, &error);
            w->client_to_global.erase(it->second);
            w->global_to_client.erase(it);
          }
          CompleteTicket(job.ticket, ok, error);
          break;
        }
        case Job::Kind::kBatch: {
          net::IngestAckMsg ack;
          std::string error;
          const uint64_t reconnects_before = w->client.reconnects();
          const bool ok = w->client.Ingest(job.boundary, job.points,
                                           job.owner, &ack, &error);
          const uint64_t recovered =
              w->client.reconnects() - reconnects_before;
          if (recovered > 0) {
            stats.worker_reconnects.fetch_add(recovered,
                                              std::memory_order_relaxed);
            SOP_COUNTER_ADD("cluster/route/worker_reconnects", recovered);
          }
          if (w->points_counter != nullptr && obs::Enabled()) {
            w->points_counter->Add(job.points.size());
          }
          // Worker-server refusals surface as error pushes; they indicate
          // a worker out of step (e.g. restarted without its checkpoint).
          const size_t worker_errors = w->client.TakeErrors().size();
          if (worker_errors > 0) {
            stats.protocol_errors.fetch_add(worker_errors,
                                            std::memory_order_relaxed);
          }
          std::vector<net::EmissionMsg> kept;
          for (net::EmissionMsg& e : w->client.TakeEmissions()) {
            const auto it = w->client_to_global.find(e.query_id);
            if (it == w->client_to_global.end()) continue;  // retired
            e.query_id = it->second;
            kept.push_back(std::move(e));
          }
          {
            std::lock_guard<std::mutex> lock(done_mu);
            const auto it = pending.find(job.boundary);
            if (it != pending.end()) {
              WorkerBatchResult& r =
                  it->second.results[static_cast<size_t>(w->index)];
              r.ok = ok;
              r.accepted = ok ? ack.accepted : 0;
              r.next_seq = ok ? ack.next_seq : 0;
              for (net::EmissionMsg& e : kept) {
                it->second.emissions.emplace_back(w->index, std::move(e));
              }
              if (it->second.remaining > 0) --it->second.remaining;
            }
            done_cv.notify_all();
          }
          break;
        }
      }
    }
  }

  // --- route loop --------------------------------------------------------

  // Reconciles one worker's sequence map with the outcome of the batch it
  // was just handed (route loop only; `cnt` entries were appended for the
  // batch). An acked batch carries the worker's authoritative arrival
  // counter, which pins the map exactly; a transport failure leaves an
  // open gap — nothing says whether the worker numbered those points —
  // and the map stays desynced (untranslatable) until a later ack's
  // counter resolves every open gap.
  void RealignSeqMap(SeqMap& sm, size_t cnt, const WorkerBatchResult& r) {
    if (!r.ok) {
      if (cnt > 0) {
        sm.gaps.push_back(SeqMap::Gap{
            sm.base + static_cast<int64_t>(sm.entries.size()) -
                static_cast<int64_t>(cnt),
            static_cast<int64_t>(cnt)});
      }
      return;
    }
    // A refused batch never numbered its points; drop the tail entries
    // past whatever prefix the worker accepted.
    if (r.accepted < cnt) {
      const size_t drop = cnt - static_cast<size_t>(r.accepted);
      sm.entries.erase(sm.entries.end() - static_cast<int64_t>(drop),
                       sm.entries.end());
    }
    const int64_t target = static_cast<int64_t>(r.next_seq);
    int64_t drift =
        sm.base + static_cast<int64_t>(sm.entries.size()) - target;
    if (drift != 0 && !sm.gaps.empty()) {
      // The counter is short by exactly the batches the worker never
      // applied. If the drift accounts for every open gap, none was
      // applied: excise their entries (descending, so earlier indices
      // stay valid) and un-advance base for any gap entries the horizon
      // prune already popped — those pops assumed the worker had
      // numbered them.
      int64_t gap_total = 0;
      for (const SeqMap::Gap& g : sm.gaps) gap_total += g.count;
      if (drift == gap_total) {
        int64_t pruned_total = 0;
        for (size_t i = sm.gaps.size(); i-- > 0;) {
          const SeqMap::Gap& g = sm.gaps[i];
          const int64_t pruned =
              std::min(std::max<int64_t>(sm.base - g.start, 0), g.count);
          const int64_t live = g.count - pruned;
          if (live > 0) {
            const int64_t idx0 = std::max<int64_t>(g.start - sm.base, 0);
            sm.entries.erase(sm.entries.begin() + idx0,
                             sm.entries.begin() + idx0 + live);
          }
          pruned_total += pruned;
        }
        sm.base -= pruned_total;
        drift = sm.base + static_cast<int64_t>(sm.entries.size()) - target;
      }
    }
    if (drift != 0) {
      // Ambiguous history (gaps applied in part, or a worker that lost
      // its counter): anchor on what this ack proves — the worker
      // numbered this batch's accepted points at [next_seq - accepted,
      // next_seq). Everything older is untranslatable; a translation
      // reaching below base surfaces as degraded, and heals as those
      // points fall out of the worker's window.
      const size_t keep =
          std::min(static_cast<size_t>(r.accepted), sm.entries.size());
      sm.entries.erase(sm.entries.begin(),
                       sm.entries.end() - static_cast<int64_t>(keep));
      sm.base = target - static_cast<int64_t>(keep);
    }
    sm.gaps.clear();
  }

  uint64_t FanOut(Job::Kind kind, int64_t query_id,
                  const OutlierQuery& query) {
    const uint64_t ticket = next_ticket++;
    {
      std::lock_guard<std::mutex> lock(done_mu);
      tickets[ticket] = Ticket{workers.size(), true, ""};
    }
    for (std::unique_ptr<Worker>& w : workers) {
      Job job;
      job.kind = kind;
      job.query_id = query_id;
      job.query = query;
      job.ticket = ticket;
      PushJob(w.get(), std::move(job));
    }
    return ticket;
  }

  Ticket AwaitTicket(uint64_t ticket) {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] {
      const auto it = tickets.find(ticket);
      return it == tickets.end() || it->second.remaining == 0;
    });
    Ticket result;
    const auto it = tickets.find(ticket);
    if (it != tickets.end()) {
      result = std::move(it->second);
      tickets.erase(it);
    }
    return result;
  }

  void HandleSubscribe(Op& op) {
    // Halo admission: with auto sizing the width tracks the compiled
    // basis r_max of the live query set until the first routed batch
    // freezes it; after that (or with an explicit width) any query whose
    // radius exceeds the halo would see incomplete neighborhoods at
    // region edges, so it is refused instead of silently degrading.
    double width = halo.load(std::memory_order_relaxed);
    if (options.halo < 0.0 && !halo_frozen) {
      Workload wl(options.window_type, options.metric);
      {
        std::lock_guard<std::mutex> lock(subs_mu);
        for (const auto& entry : subs) wl.AddQuery(entry.second.query);
      }
      wl.AddQuery(op.query);
      if (wl.Validate().empty()) {
        width = std::max(width, HaloFromBasis(wl, options.headroom));
        halo.store(width, std::memory_order_relaxed);
      }
    }
    if (op.query.r > width) {
      stats.refused_subscribes.fetch_add(1, std::memory_order_relaxed);
      net::SubscribeAckMsg ack;
      ack.error = "query radius " + std::to_string(op.query.r) +
                  " exceeds the cluster halo width " + std::to_string(width) +
                  (halo_frozen ? " (frozen at first ingest; redeploy with "
                                 "--halo or headroom radii covering it)"
                               : "");
      EnqueueFrame(op.conn, EncodeSubscribeAck(ack));
      return;
    }
    const int64_t qid = next_query_id++;
    const Ticket t = AwaitTicket(FanOut(Job::Kind::kSubscribe, qid,
                                        op.query));
    if (!t.ok) {
      // Partial registrations roll back so no worker computes for a query
      // the router never confirmed.
      AwaitTicket(FanOut(Job::Kind::kUnsubscribe, qid, OutlierQuery{}));
      stats.refused_subscribes.fetch_add(1, std::memory_order_relaxed);
      net::SubscribeAckMsg ack;
      ack.error = t.error.empty() ? "subscription failed on a worker"
                                  : t.error;
      EnqueueFrame(op.conn, EncodeSubscribeAck(ack));
      return;
    }
    {
      std::lock_guard<std::mutex> lock(subs_mu);
      subs[qid] = SubState{op.query, op.conn};
    }
    {
      std::lock_guard<std::mutex> lock(op.conn->mu);
      op.conn->sub_ids.push_back(qid);
    }
    max_win = std::max(max_win, op.query.win);
    stats.subscribes.fetch_add(1, std::memory_order_relaxed);
    SOP_COUNTER_ADD("cluster/route/subscribes", 1);
    net::SubscribeAckMsg ack;
    ack.query_id = qid;
    EnqueueFrame(op.conn, EncodeSubscribeAck(ack));
  }

  void HandleRetire(Op& op) {
    const Ticket t = AwaitTicket(FanOut(Job::Kind::kUnsubscribe,
                                        op.query_id, OutlierQuery{}));
    {
      std::lock_guard<std::mutex> lock(subs_mu);
      subs.erase(op.query_id);
    }
    if (op.conn != nullptr) {  // kUnsubscribe (kDetach has no reply target)
      {
        std::lock_guard<std::mutex> lock(op.conn->mu);
        auto it = std::find(op.conn->sub_ids.begin(),
                            op.conn->sub_ids.end(), op.query_id);
        if (it != op.conn->sub_ids.end()) op.conn->sub_ids.erase(it);
      }
      net::UnsubscribeAckMsg ack;
      ack.ok = t.ok;
      EnqueueFrame(op.conn, EncodeUnsubscribeAck(ack));
    }
    stats.unsubscribes.fetch_add(1, std::memory_order_relaxed);
    SOP_COUNTER_ADD("cluster/route/unsubscribes", 1);
  }

  void HandleBatch(Op& op) {
    const int64_t boundary = op.ingest.boundary;
    if (boundary <= last_boundary.load(std::memory_order_relaxed)) {
      SendError(op.conn, "ingest boundary " + std::to_string(boundary) +
                             " does not advance the stream");
      net::IngestAckMsg ack;
      ack.boundary = boundary;
      // Refusal: the arrival counter is unchanged (v4 ack contract).
      ack.next_seq = stats.ingest_points.load(std::memory_order_relaxed);
      EnqueueFrame(op.conn, EncodeIngestAck(ack));
      return;
    }
    if (!halo_frozen) {
      // First batch: the halo (and with it the partitioner) is final —
      // replicas already shipped cannot be widened retroactively. Declare
      // every worker's shard assignment ahead of its first points.
      halo_frozen = true;
      partitioner = std::make_unique<Partitioner>(
          options.partition, halo.load(std::memory_order_relaxed));
      for (std::unique_ptr<Worker>& w : workers) {
        Job job;
        job.kind = Job::Kind::kConfig;
        job.config.shard_index = static_cast<uint32_t>(w->index);
        job.config.num_shards = static_cast<uint32_t>(workers.size());
        job.config.lo = partitioner->range_lo(w->index);
        job.config.hi = partitioner->range_hi(w->index);
        job.config.halo = partitioner->halo();
        PushJob(w.get(), std::move(job));
      }
      SOP_GAUGE_SET("cluster/route/halo_width_milli",
                    static_cast<int64_t>(partitioner->halo() * 1000.0));
    }

    SOP_TRACE("cluster/route/batch_ms");
    const size_t count = op.ingest.points.size();
    const size_t parts = workers.size();
    std::vector<std::vector<Point>> routed(parts);
    std::vector<std::vector<uint8_t>> owner(parts);
    uint64_t copies = 0;
    uint64_t halo_copies = 0;
    std::vector<ShardAssignment> assignments;
    for (Point& p : op.ingest.points) {
      const Seq global = next_seq++;
      const double key = p.values.empty() ? 0.0 : p.values[0];
      const int64_t prune_key =
          options.window_type == WindowType::kCount ? global : p.time;
      if (options.window_type == WindowType::kCount) {
        // Count -> time translation (see router.h): workers run time
        // windows keyed by the global arrival index, which restricts the
        // global count window to each shard exactly.
        p.time = global;
      }
      assignments.clear();
      partitioner->AssignmentsOf(key, &assignments);
      for (const ShardAssignment& a : assignments) {
        routed[a.shard].push_back(p);
        owner[a.shard].push_back(a.owner ? 1 : 0);
        seq_maps[a.shard].entries.push_back(
            MapEntry{global, prune_key, a.owner});
        ++copies;
        if (!a.owner) ++halo_copies;
      }
    }
    stats.ingest_batches.fetch_add(1, std::memory_order_relaxed);
    stats.ingest_points.fetch_add(count, std::memory_order_relaxed);
    stats.routed_points.fetch_add(copies, std::memory_order_relaxed);
    stats.halo_points.fetch_add(halo_copies, std::memory_order_relaxed);
    SOP_COUNTER_ADD("cluster/route/batches", 1);
    SOP_COUNTER_ADD("cluster/route/points", count);
    SOP_COUNTER_ADD("cluster/route/routed_points", copies);
    SOP_COUNTER_ADD("cluster/route/halo_points", halo_copies);

    std::vector<size_t> expected(parts);
    for (size_t i = 0; i < parts; ++i) expected[i] = routed[i].size();
    {
      std::lock_guard<std::mutex> lock(done_mu);
      PendingBatch pb;
      pb.remaining = parts;
      pb.results.assign(parts, WorkerBatchResult{});
      pending[boundary] = std::move(pb);
    }
    for (size_t i = 0; i < parts; ++i) {
      Job job;
      job.kind = Job::Kind::kBatch;
      job.boundary = boundary;
      job.points = std::move(routed[i]);
      job.owner = std::move(owner[i]);
      PushJob(workers[i].get(), std::move(job));
    }

    // Fork-join: every worker advances to `boundary` (or fails) before
    // the merge — emissions must precede the ingest ack, and the ack must
    // mean the whole cluster moved.
    PendingBatch result;
    {
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait(lock, [&] {
        const auto it = pending.find(boundary);
        return it == pending.end() || it->second.remaining == 0;
      });
      const auto it = pending.find(boundary);
      if (it != pending.end()) {
        result = std::move(it->second);
        pending.erase(it);
      }
    }
    if (result.results.size() != parts) result.results.resize(parts);
    bool batch_failed = false;
    for (size_t i = 0; i < parts; ++i) {
      const WorkerBatchResult& r = result.results[i];
      if (!r.ok || r.accepted != expected[i]) batch_failed = true;
      RealignSeqMap(seq_maps[i], expected[i], r);
    }
    bool any_desync = false;
    for (const SeqMap& sm : seq_maps) any_desync = any_desync || sm.desynced();
    if (batch_failed) {
      // A shard never applied the batch (worker unreachable past bounded
      // recovery, or out of step). The stream keeps moving — losing one
      // shard's verdicts forever would otherwise stall every query — but
      // every merged emission is marked degraded until it heals.
      stats.worker_failures.fetch_add(1, std::memory_order_relaxed);
      SOP_COUNTER_ADD("cluster/merge/worker_failures", 1);
    }
    // Health flag, not a latch: set while any shard's verdicts are missing
    // or its sequence map is desynced, cleared again once a batch
    // completes with every worker realigned (see router.h).
    stats.degraded.store(batch_failed || any_desync,
                         std::memory_order_relaxed);

    // Merge: group per-worker emissions by (boundary, query) — a worker
    // recovering mid-batch may replay an earlier boundary it never
    // delivered — translate worker-local seqs to global ones through the
    // shard's sequence map, drop verdicts for points the emitting shard
    // does not own, and union the rest in ascending global-seq order.
    SOP_TRACE("cluster/merge/merge_ms");
    std::map<std::pair<int64_t, int64_t>, net::EmissionMsg> merged;
    uint64_t dropped_halo = 0;
    for (std::pair<int, net::EmissionMsg>& entry : result.emissions) {
      const int widx = entry.first;
      net::EmissionMsg& em = entry.second;
      net::EmissionMsg& m = merged[{em.boundary, em.query_id}];
      m.query_id = em.query_id;
      m.boundary = em.boundary;
      m.degraded = m.degraded || em.degraded;
      SeqMap& sm = seq_maps[static_cast<size_t>(widx)];
      if (sm.desynced()) {
        // An open gap means the map's local->global translation cannot be
        // trusted for this shard — a shifted index would resolve in range
        // to the WRONG global seq. Say the verdicts are missing rather
        // than emit corrupted ones.
        m.degraded = true;
        continue;
      }
      for (const Seq local : em.outliers) {
        const int64_t idx = local - sm.base;
        if (idx < 0 || idx >= static_cast<int64_t>(sm.entries.size())) {
          // Outside the retained map: a worker out of step (restarted
          // without its checkpoint) or a window wider than the retention.
          // Flag rather than guess.
          m.degraded = true;
          continue;
        }
        const MapEntry& e = sm.entries[static_cast<size_t>(idx)];
        if (!e.owned) {
          ++dropped_halo;
          continue;
        }
        m.outliers.push_back(e.global);
      }
    }
    if (dropped_halo > 0) {
      stats.dropped_halo_outliers.fetch_add(dropped_halo,
                                            std::memory_order_relaxed);
      SOP_COUNTER_ADD("cluster/merge/dropped_halo_outliers", dropped_halo);
    }

    // Emit in canonical (boundary, query) order; map iteration gives it.
    uint64_t to_ingester = 0;
    uint64_t emitted = 0;
    for (auto& entry : merged) {
      net::EmissionMsg& m = entry.second;
      std::sort(m.outliers.begin(), m.outliers.end());
      m.outliers.erase(std::unique(m.outliers.begin(), m.outliers.end()),
                       m.outliers.end());
      if (batch_failed) m.degraded = true;
      std::shared_ptr<Conn> target;
      {
        std::lock_guard<std::mutex> lock(subs_mu);
        const auto it = subs.find(m.query_id);
        if (it != subs.end()) target = it->second.conn;
      }
      if (target == nullptr) continue;  // retired mid-batch
      if (target == op.conn) ++to_ingester;
      EnqueueFrame(target, EncodeEmission(m));
      ++emitted;
    }
    stats.merged_emissions.fetch_add(emitted, std::memory_order_relaxed);
    stats.merged_boundaries.fetch_add(1, std::memory_order_relaxed);
    SOP_COUNTER_ADD("cluster/merge/emissions", emitted);
    SOP_COUNTER_ADD("cluster/merge/boundaries", 1);
    last_boundary.store(boundary, std::memory_order_relaxed);

    // Ack after the batch's emissions: same contract as the single
    // server, and what makes blocking clients deterministic.
    net::IngestAckMsg ack;
    ack.boundary = boundary;
    ack.accepted = count;
    ack.emissions = to_ingester;
    // The router's global arrival counter after this batch (incremented at
    // route time above) — same v4 contract as the single server's ack.
    ack.next_seq = stats.ingest_points.load(std::memory_order_relaxed);
    EnqueueFrame(op.conn, EncodeIngestAck(ack));

    // Prune the sequence maps past the merge horizon: no future window
    // can reach keys older than boundary - retention.
    const int64_t retention =
        options.seq_retention > 0
            ? options.seq_retention
            : max_win + std::max<int64_t>(options.headroom.win_floor, 0);
    const int64_t horizon = boundary - retention;
    for (SeqMap& sm : seq_maps) {
      while (!sm.entries.empty() && sm.entries.front().key < horizon) {
        sm.entries.pop_front();
        ++sm.base;
      }
    }
  }

  void RouteLoop() {
    for (;;) {
      Op op;
      {
        std::unique_lock<std::mutex> lock(ops_mu);
        ops_cv_push.wait(lock, [&] { return draining || !ops.empty(); });
        if (ops.empty()) return;  // draining and drained
        op = std::move(ops.front());
        ops.pop_front();
        ops_cv_pop.notify_one();
      }
      switch (op.kind) {
        case Op::Kind::kBatch:
          HandleBatch(op);
          break;
        case Op::Kind::kSubscribe:
          HandleSubscribe(op);
          break;
        case Op::Kind::kUnsubscribe:
        case Op::Kind::kDetach:
          HandleRetire(op);
          break;
      }
    }
  }
};

SopRouter::SopRouter(RouterOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SopRouter::~SopRouter() { Stop(); }

bool SopRouter::Start(std::string* error) {
  Impl& im = *impl_;
  const RouterOptions& opt = im.options;
  if (opt.workers.empty()) {
    if (error != nullptr) *error = "no workers configured";
    return false;
  }
  if (opt.partition.parts() != static_cast<int>(opt.workers.size())) {
    if (error != nullptr) {
      *error = "partition describes " +
               std::to_string(opt.partition.parts()) + " shards but " +
               std::to_string(opt.workers.size()) + " workers are listed";
    }
    return false;
  }
  if (!opt.partition.Validate(error)) return false;
  if (opt.halo >= 0.0) {
    im.halo.store(opt.halo, std::memory_order_relaxed);
  }

  // Connect and vet every worker before serving anything: a cluster with
  // a misconfigured shard is wrong on every batch.
  im.workers.clear();
  im.seq_maps.assign(opt.workers.size(), Impl::SeqMap{});
  for (size_t i = 0; i < opt.workers.size(); ++i) {
    auto w = std::make_unique<Impl::Worker>();
    w->index = static_cast<int>(i);
    w->endpoint = opt.workers[i];
    w->client.set_retry(opt.retry);
    std::string werror;
    if (!w->client.Connect(w->endpoint.host, w->endpoint.port, &werror)) {
      if (error != nullptr) {
        *error = "worker " + std::to_string(i) + " (" + w->endpoint.host +
                 ":" + std::to_string(w->endpoint.port) + "): " + werror;
      }
      return false;
    }
    const net::HelloAckMsg& info = w->client.server_info();
    std::string mismatch;
    if (static_cast<WindowType>(info.window_type) != WindowType::kTime) {
      mismatch = "serves count windows; cluster workers must serve time "
                 "windows (the router translates count deployments)";
    } else if (static_cast<Metric>(info.metric) != opt.metric) {
      mismatch = "serves a different distance metric";
    } else if (info.detector != opt.detector) {
      mismatch = "serves detector '" + info.detector + "', cluster wants '" +
                 opt.detector + "'";
    } else if (static_cast<net::ServerRole>(info.role) !=
               net::ServerRole::kPrimary) {
      mismatch = "is a standby, not a serving primary";
    }
    if (!mismatch.empty()) {
      if (error != nullptr) {
        *error = "worker " + std::to_string(i) + " (" + w->endpoint.host +
                 ":" + std::to_string(w->endpoint.port) + ") " + mismatch;
      }
      return false;
    }
    net::ReconnectOptions ro = opt.worker_reconnect;
    ro.endpoints = {w->endpoint};
    w->client.EnableReconnect(std::move(ro));
    if (obs::Enabled()) {
      const std::string prefix = "cluster/worker/" + std::to_string(i);
      w->points_counter =
          &obs::MetricsRegistry::Global().GetCounter(prefix + "/points");
      w->lag_gauge =
          &obs::MetricsRegistry::Global().GetGauge(prefix + "/lag");
    }
    im.workers.push_back(std::move(w));
  }

  im.listener = net::ListenTcp(opt.host, opt.port, /*backlog=*/128, &port_,
                               error);
  if (!im.listener.valid()) return false;

  for (std::unique_ptr<Impl::Worker>& w : im.workers) {
    Impl::Worker* raw = w.get();
    raw->thread = std::thread([&im, raw] { im.WorkerLoop(raw); });
  }
  im.route_thread = std::thread([&im] { im.RouteLoop(); });
  im.accept_thread = std::thread([&im] { im.AcceptLoop(); });
  return true;
}

void SopRouter::Stop() {
  Impl& im = *impl_;
  bool expected = false;
  if (!im.stopping.compare_exchange_strong(expected, true)) {
    return;  // already stopped (or stopping)
  }

  // 1. Stop accepting: the shutdown unblocks the accept thread, and the
  // close waits for the join — Close() rewrites the fd while AcceptTcp is
  // still reading it (same discipline as SopServer::Stop).
  im.listener.ShutdownBoth();
  if (im.accept_thread.joinable()) im.accept_thread.join();
  im.listener.Close();

  // 2. Tear down client connections: readers wake on the shutdown, their
  // queued acks are dropped (the peers are gone). Blocking clients have
  // already received acks for everything they ingested.
  std::vector<std::shared_ptr<Conn>> all;
  {
    std::lock_guard<std::mutex> lock(im.conns_mu);
    all = im.all_conns;
  }
  for (const std::shared_ptr<Conn>& conn : all) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->closing = true;
      conn->sock.ShutdownBoth();
      conn->cv_send.notify_all();
      conn->cv_room.notify_all();
    }
  }
  for (const std::shared_ptr<Conn>& conn : all) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }

  // 3. Drain the route loop: remaining queued ops complete against the
  // still-running workers, then the loop exits.
  {
    std::lock_guard<std::mutex> lock(im.ops_mu);
    im.draining = true;
  }
  im.ops_cv_push.notify_all();
  im.ops_cv_pop.notify_all();
  if (im.route_thread.joinable()) im.route_thread.join();

  // 4. End the worker threads and close their clients.
  for (std::unique_ptr<Impl::Worker>& w : im.workers) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      Job job;
      job.kind = Job::Kind::kStop;
      w->jobs.push_back(std::move(job));
      w->cv_push.notify_all();
    }
    if (w->thread.joinable()) w->thread.join();
    w->client.Close();
  }
}

RouterStats SopRouter::stats() const {
  const Impl::AtomicStats& a = impl_->stats;
  RouterStats s;
  s.connections = a.connections.load(std::memory_order_relaxed);
  s.active_clients = a.active_clients.load(std::memory_order_relaxed);
  s.ingest_batches = a.ingest_batches.load(std::memory_order_relaxed);
  s.ingest_points = a.ingest_points.load(std::memory_order_relaxed);
  s.routed_points = a.routed_points.load(std::memory_order_relaxed);
  s.halo_points = a.halo_points.load(std::memory_order_relaxed);
  s.merged_boundaries = a.merged_boundaries.load(std::memory_order_relaxed);
  s.merged_emissions = a.merged_emissions.load(std::memory_order_relaxed);
  s.dropped_halo_outliers =
      a.dropped_halo_outliers.load(std::memory_order_relaxed);
  s.subscribes = a.subscribes.load(std::memory_order_relaxed);
  s.refused_subscribes =
      a.refused_subscribes.load(std::memory_order_relaxed);
  s.unsubscribes = a.unsubscribes.load(std::memory_order_relaxed);
  s.protocol_errors = a.protocol_errors.load(std::memory_order_relaxed);
  s.worker_reconnects = a.worker_reconnects.load(std::memory_order_relaxed);
  s.worker_failures = a.worker_failures.load(std::memory_order_relaxed);
  s.degraded = a.degraded.load(std::memory_order_relaxed);
  s.last_boundary = impl_->last_boundary.load(std::memory_order_relaxed);
  s.halo = impl_->halo.load(std::memory_order_relaxed);
  s.workers = static_cast<uint32_t>(impl_->options.workers.size());
  return s;
}

}  // namespace cluster
}  // namespace sop
