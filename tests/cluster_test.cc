// End-to-end tests of the scale-out plane (cluster/router.h):
//
//   * routed equivalence — a router fronting >= 2 workers over loopback
//     must emit exactly what a direct ExecutionEngine run emits, after
//     canonical (boundary, query) ordering, for every registered detector
//     over both window types (the merge-exactness contract),
//   * the same equivalence under seeded transient kNetRead/kNetWrite
//     faults on every socket in the fabric,
//   * the same equivalence across a worker kill + restart on the same
//     port (checkpoint_every_batches=1), ridden out by the worker
//     client's recovery — no lost or duplicated emissions,
//   * halo admission: a post-freeze subscribe with r > halo is refused
//     with a diagnostic, not silently degraded,
//   * stale boundaries and bad queries are refused at the router.
//
// All assertions read RouterStats/ServerStats (always-on atomics), never
// obs counters, so the suite passes identically under -DSOP_NO_OBS.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "sop/cluster/partition.h"
#include "sop/cluster/router.h"
#include "sop/common/fault.h"
#include "sop/common/random.h"
#include "sop/detector/driver.h"
#include "sop/detector/factory.h"
#include "sop/net/client.h"
#include "sop/net/protocol.h"
#include "sop/net/server.h"
#include "sop/net/socket.h"
#include "sop/stream/window.h"
#include "test_util.h"

namespace sop {
namespace cluster {
namespace {

using net::IngestAckMsg;
using net::EmissionMsg;
using net::ServerOptions;
using net::SopClient;
using net::SopServer;

/// Polls `pred` until true or `timeout_ms` elapses.
bool WaitUntil(const std::function<bool()>& pred, int64_t timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Same stream shape as net_test.cc: a unit-variance cluster with ~5%
/// spikes at +-8, so a 2-worker split at 0.0 exercises both regions and
/// the halo band around the cut.
std::vector<Point> GenPoints(size_t n, bool time_windows, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    if (time_windows) {
      t += 1 + static_cast<Timestamp>(rng.NextBelow(2));
      if (i % 97 == 96) t += 35;
    } else {
      t = static_cast<Timestamp>(i);
    }
    double v = rng.Normal(0.0, 1.0);
    if (rng.Bernoulli(0.05)) v += rng.Bernoulli(0.5) ? 8.0 : -8.0;
    points.emplace_back(static_cast<Seq>(i), t, std::vector<double>{v});
  }
  return points;
}

struct Batch {
  std::vector<Point> points;
  int64_t boundary = 0;
};

std::vector<Batch> SliceCount(const std::vector<Point>& points,
                              int64_t span) {
  std::vector<Batch> batches;
  int64_t shipped = 0;
  const size_t step = static_cast<size_t>(span);
  for (size_t start = 0; start + step <= points.size(); start += step) {
    Batch b;
    b.points.assign(points.begin() + static_cast<int64_t>(start),
                    points.begin() + static_cast<int64_t>(start + step));
    shipped += span;
    b.boundary = shipped;
    batches.push_back(std::move(b));
  }
  return batches;
}

std::vector<Batch> SliceTime(const std::vector<Point>& points, int64_t span) {
  std::vector<Batch> batches;
  int64_t boundary = FirstBoundaryAtOrAfter(points.front().time + 1, span);
  std::vector<Point> cur;
  for (const Point& p : points) {
    while (p.time >= boundary) {
      batches.push_back({std::move(cur), boundary});
      cur = {};
      boundary += span;
    }
    cur.push_back(p);
  }
  if (!cur.empty()) batches.push_back({std::move(cur), boundary});
  return batches;
}

std::vector<Batch> Slice(const Workload& workload,
                         const std::vector<Point>& points) {
  return workload.window_type() == WindowType::kCount
             ? SliceCount(points, workload.SlideGcd())
             : SliceTime(points, workload.SlideGcd());
}

/// One worker fleet + router over loopback. Workers always serve TIME
/// windows (the router translates count deployments) with history deep
/// enough for the tests' largest window.
struct TestCluster {
  std::vector<std::unique_ptr<SopServer>> workers;
  std::unique_ptr<SopRouter> router;

  ~TestCluster() {
    if (router != nullptr) router->Stop();
    for (std::unique_ptr<SopServer>& w : workers) {
      if (w != nullptr) w->Stop();
    }
  }
};

ServerOptions WorkerOptions(const std::string& detector) {
  ServerOptions options;
  options.window_type = WindowType::kTime;  // always; see router.h
  options.detector = detector;
  options.history_window = 1 << 14;
  return options;
}

bool StartCluster(TestCluster* tc, int num_workers,
                  const std::string& detector, WindowType window_type,
                  std::string* error,
                  const std::string& checkpoint_prefix = "",
                  const net::ReconnectOptions* worker_reconnect = nullptr) {
  RouterOptions ro;
  ro.window_type = window_type;
  ro.detector = detector;
  if (worker_reconnect != nullptr) ro.worker_reconnect = *worker_reconnect;
  for (int i = 0; i < num_workers; ++i) {
    ServerOptions wo = WorkerOptions(detector);
    if (!checkpoint_prefix.empty()) {
      wo.checkpoint_path =
          checkpoint_prefix + std::to_string(i) + ".checkpoint";
      wo.checkpoint_every_batches = 1;
    }
    auto worker = std::make_unique<SopServer>(wo);
    if (!worker->Start(error)) return false;
    ro.workers.push_back({"127.0.0.1", worker->port()});
    tc->workers.push_back(std::move(worker));
  }
  // Interior cuts around the data's dense band: the cluster sits at 0, the
  // spikes at +-8, so every region and the halo band see traffic.
  ro.partition = PartitionSpec::Uniform(-6.0, 6.0, num_workers);
  tc->router = std::make_unique<SopRouter>(ro);
  return tc->router->Start(error);
}

/// net_test.cc's RunLoopback against the router's front port: the router
/// speaks the same wire protocol, so the client code is identical.
std::vector<QueryResult> RunRouted(int port,
                                   const std::vector<OutlierQuery>& queries,
                                   const std::vector<Batch>& batches,
                                   const std::string& label) {
  std::vector<QueryResult> results;
  SopClient client;
  std::string error;
  EXPECT_TRUE(client.Connect("127.0.0.1", port, &error)) << label << ": "
                                                         << error;
  if (!client.connected()) return results;

  std::map<int64_t, size_t> index_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    const int64_t id = client.Subscribe(queries[i], &error);
    EXPECT_GT(id, 0) << label << ": " << error;
    if (id <= 0) return results;
    index_of[id] = i;
  }
  for (const Batch& b : batches) {
    IngestAckMsg ack;
    EXPECT_TRUE(client.Ingest(b.boundary, b.points, &ack, &error))
        << label << ": " << error;
    EXPECT_EQ(ack.accepted, b.points.size()) << label;
    for (const EmissionMsg& e : client.TakeEmissions()) {
      EXPECT_TRUE(index_of.count(e.query_id) != 0)
          << label << ": emission for unknown query id " << e.query_id;
      EXPECT_FALSE(e.degraded) << label << " @" << e.boundary;
      QueryResult r;
      r.query_index = index_of[e.query_id];
      r.boundary = e.boundary;
      r.outliers = e.outliers;
      results.push_back(std::move(r));
    }
  }
  for (const auto& entry : index_of) {
    EXPECT_TRUE(client.Unsubscribe(entry.first, &error))
        << label << ": " << error;
  }
  return results;
}

std::vector<OutlierQuery> TestQueries(bool time_windows) {
  if (time_windows) {
    return {OutlierQuery(1.5, 4, 80, 20), OutlierQuery(2.0, 3, 120, 30)};
  }
  return {OutlierQuery(1.5, 4, 100, 50), OutlierQuery(2.0, 3, 150, 50)};
}

// --- routed equivalence ---------------------------------------------------

// The merge-exactness contract: a routed run over >= 2 workers emits
// exactly what a direct single-node engine run emits, for every detector
// the factory knows, over both window types.
TEST(ClusterTest, RoutedMatchesEngineEveryDetector) {
  for (const bool time_windows : {false, true}) {
    const WindowType wt =
        time_windows ? WindowType::kTime : WindowType::kCount;
    Workload workload(wt);
    const std::vector<OutlierQuery> queries = TestQueries(time_windows);
    for (const OutlierQuery& q : queries) workload.AddQuery(q);
    ASSERT_EQ(workload.Validate(), "");
    const std::vector<Point> points =
        GenPoints(time_windows ? 240 : 320, time_windows,
                  /*seed=*/7 + (time_windows ? 1 : 0));
    const std::vector<Batch> batches = Slice(workload, points);
    ASSERT_GT(batches.size(), 3u);

    for (const std::string& name : KnownDetectorNames()) {
      const std::string label =
          name + (time_windows ? "/time" : "/count") + " routed";
      std::unique_ptr<OutlierDetector> detector =
          CreateDetector(name, workload);
      const std::vector<QueryResult> expected =
          CollectResults(workload, points, detector.get());

      TestCluster tc;
      std::string error;
      ASSERT_TRUE(StartCluster(&tc, 2, name, wt, &error))
          << label << ": " << error;
      const std::vector<QueryResult> actual =
          RunRouted(tc.router->port(), queries, batches, label);
      tc.router->Stop();
      testing::ExpectSameResults(expected, actual, label);

      size_t sliced = 0;  // SliceCount drops the tail that fills no slide
      for (const Batch& b : batches) sliced += b.points.size();
      const RouterStats stats = tc.router->stats();
      EXPECT_EQ(stats.ingest_batches, batches.size()) << label;
      EXPECT_EQ(stats.ingest_points, sliced) << label;
      // The halo must actually be exercised: points near the cut are
      // replicated, and some replicas' verdicts get dropped in the merge.
      EXPECT_GT(stats.routed_points, stats.ingest_points) << label;
      EXPECT_GT(stats.halo_points, 0u) << label;
      EXPECT_EQ(stats.worker_failures, 0u) << label;
      EXPECT_FALSE(stats.degraded) << label;
      EXPECT_EQ(stats.protocol_errors, 0u) << label;
      EXPECT_GE(stats.halo, 2.0) << label;  // r_max of the query set
      // Workers saw the shard-config handshake and halo replicas.
      uint64_t worker_halo = 0;
      for (size_t w = 0; w < tc.workers.size(); ++w) {
        const net::ServerStats ws = tc.workers[w]->stats();
        EXPECT_TRUE(ws.sharded) << label << " worker " << w;
        EXPECT_EQ(ws.num_shards, 2u) << label << " worker " << w;
        worker_halo += ws.halo_points;
      }
      EXPECT_EQ(worker_halo, stats.halo_points) << label;
    }
  }
}

// Same contract with every socket in the fabric (client->router,
// router->workers) under seeded transient read/write faults: the retry
// discipline rides them out and the emission stream is unchanged.
TEST(ClusterTest, RoutedMatchesEngineUnderSocketFaults) {
  for (const bool time_windows : {false, true}) {
    const WindowType wt =
        time_windows ? WindowType::kTime : WindowType::kCount;
    Workload workload(wt);
    const std::vector<OutlierQuery> queries = TestQueries(time_windows);
    for (const OutlierQuery& q : queries) workload.AddQuery(q);
    ASSERT_EQ(workload.Validate(), "");
    const std::vector<Point> points =
        GenPoints(200, time_windows, /*seed=*/41 + (time_windows ? 1 : 0));
    const std::vector<Batch> batches = Slice(workload, points);

    for (const std::string& name : KnownDetectorNames()) {
      const std::string label =
          name + (time_windows ? "/time" : "/count") + " routed faults";
      std::unique_ptr<OutlierDetector> detector =
          CreateDetector(name, workload);
      const std::vector<QueryResult> expected =
          CollectResults(workload, points, detector.get());

      FaultInjector injector(/*seed=*/1234);
      injector.SetRate(FaultSite::kNetRead, 0.05);
      injector.SetRate(FaultSite::kNetWrite, 0.05);
      injector.SetMaxFailures(FaultSite::kNetRead, 20);
      injector.SetMaxFailures(FaultSite::kNetWrite, 20);
      ScopedFaultInjection armed(&injector);

      TestCluster tc;
      std::string error;
      ASSERT_TRUE(StartCluster(&tc, 2, name, wt, &error))
          << label << ": " << error;
      const std::vector<QueryResult> actual =
          RunRouted(tc.router->port(), queries, batches, label);
      tc.router->Stop();
      testing::ExpectSameResults(expected, actual, label);
      EXPECT_GT(injector.injected(FaultSite::kNetRead) +
                    injector.injected(FaultSite::kNetWrite),
                0)
          << label;
      EXPECT_FALSE(tc.router->stats().degraded) << label;
    }
  }
}

// Multi-attribute streams through the router: the partitioner cuts on the
// FIRST attribute only while distances are full-dimensional, and
// partition.h's exactness argument says one attribute suffices. Worst
// case for that argument: spikes usually land on a NON-partitioned
// attribute, so outliers keep values[0] near the cut and their verdicts
// hinge on halo replicas.
TEST(ClusterTest, RoutedMatchesEngineMultiAttribute) {
  Workload workload(WindowType::kCount);
  const std::vector<OutlierQuery> queries = {OutlierQuery(2.5, 4, 100, 50),
                                             OutlierQuery(3.0, 3, 150, 50)};
  for (const OutlierQuery& q : queries) workload.AddQuery(q);
  ASSERT_EQ(workload.Validate(), "");

  Rng rng(/*seed=*/101);
  std::vector<Point> points;
  points.reserve(320);
  for (size_t i = 0; i < 320; ++i) {
    std::vector<double> values = {rng.Normal(0.0, 1.0), rng.Normal(0.0, 1.0),
                                  rng.Normal(0.0, 1.0)};
    if (rng.Bernoulli(0.05)) {
      values[rng.NextBelow(3)] += rng.Bernoulli(0.5) ? 8.0 : -8.0;
    }
    points.emplace_back(static_cast<Seq>(i), static_cast<Timestamp>(i),
                        std::move(values));
  }
  const std::vector<Batch> batches = SliceCount(points, 50);
  std::unique_ptr<OutlierDetector> detector = CreateDetector("sop", workload);
  const std::vector<QueryResult> expected =
      CollectResults(workload, points, detector.get());

  TestCluster tc;
  std::string error;
  ASSERT_TRUE(StartCluster(&tc, 2, "sop", WindowType::kCount, &error))
      << error;
  const std::vector<QueryResult> actual =
      RunRouted(tc.router->port(), queries, batches, "3-attr routed");
  tc.router->Stop();
  testing::ExpectSameResults(expected, actual, "3-attr routed");

  size_t outliers = 0;
  for (const QueryResult& r : expected) outliers += r.outliers.size();
  EXPECT_GT(outliers, 0u);  // the spikes must actually surface
  const RouterStats stats = tc.router->stats();
  EXPECT_GT(stats.halo_points, 0u);
  EXPECT_GT(stats.routed_points, stats.ingest_points);
  EXPECT_EQ(stats.worker_failures, 0u);
  EXPECT_FALSE(stats.degraded);
  for (size_t w = 0; w < tc.workers.size(); ++w) {
    EXPECT_TRUE(tc.workers[w]->stats().sharded) << "worker " << w;
  }
}

// A replacement router over a fleet an earlier router already claimed.
// The shard claim is worker-level state that outlives the connection, and
// the new router re-declares its config at its first routed batch: a
// MATCHING config is accepted as an idempotent re-send (serving resumes,
// zero protocol errors), a CONFLICTING one is refused per worker. The new
// router starts a fresh arrival numbering, so continuity is exactness
// modulo that renumbering: once every window clears the handover, the
// merged emissions equal the single-node run's with each outlier id
// shifted by the points the first router consumed. Time windows
// throughout — workers key windows on real timestamps, which survive the
// handover (a count deployment's translated time axis deliberately does
// not; see router.h).
TEST(ClusterTest, ShardConfigRehandshakeAfterRouterRestart) {
  Workload workload(WindowType::kTime);
  const std::vector<OutlierQuery> queries = TestQueries(true);
  for (const OutlierQuery& q : queries) workload.AddQuery(q);
  ASSERT_EQ(workload.Validate(), "");
  const std::vector<Point> points = GenPoints(240, true, /*seed=*/19);
  const std::vector<Batch> batches = Slice(workload, points);
  ASSERT_GT(batches.size(), 7u);
  std::unique_ptr<OutlierDetector> detector = CreateDetector("sop", workload);
  const std::vector<QueryResult> expected =
      CollectResults(workload, points, detector.get());

  std::string error;
  std::vector<std::unique_ptr<SopServer>> workers;
  RouterOptions ro;
  ro.window_type = WindowType::kTime;
  for (int i = 0; i < 2; ++i) {
    auto worker = std::make_unique<SopServer>(WorkerOptions("sop"));
    ASSERT_TRUE(worker->Start(&error)) << error;
    ro.workers.push_back({"127.0.0.1", worker->port()});
    workers.push_back(std::move(worker));
  }
  ro.partition = PartitionSpec::Uniform(-6.0, 6.0, 2);

  // Phase A: the first router serves the first half of the stream.
  const size_t handover = batches.size() / 2;
  int64_t handover_boundary = 0;
  Seq consumed_a = 0;  // points numbered by router A
  {
    SopRouter router_a(ro);
    ASSERT_TRUE(router_a.Start(&error)) << error;
    std::vector<Batch> first(batches.begin(),
                             batches.begin() + static_cast<int64_t>(handover));
    for (const Batch& b : first) {
      consumed_a += static_cast<Seq>(b.points.size());
      handover_boundary = b.boundary;
    }
    const std::vector<QueryResult> prefix =
        RunRouted(router_a.port(), queries, first, "pre-restart");
    router_a.Stop();
    EXPECT_EQ(router_a.stats().protocol_errors, 0u);
    std::vector<QueryResult> expected_prefix;
    for (const QueryResult& r : expected) {
      if (r.boundary <= handover_boundary) expected_prefix.push_back(r);
    }
    testing::ExpectSameResults(expected_prefix, prefix, "pre-restart");
  }

  // Phase B: a replacement router, same spec, same (still-claimed)
  // workers. Its first routed batch re-declares the shard config.
  SopRouter router_b(ro);
  ASSERT_TRUE(router_b.Start(&error)) << error;
  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router_b.port(), &error)) << error;
  std::map<int64_t, size_t> index_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    const int64_t id = client.Subscribe(queries[i], &error);
    ASSERT_GT(id, 0) << error;
    index_of[id] = i;
  }
  struct TailEmission {
    QueryResult result;
    bool degraded = false;
  };
  std::vector<TailEmission> resumed;
  for (size_t bi = handover; bi < batches.size(); ++bi) {
    IngestAckMsg ack;
    ASSERT_TRUE(
        client.Ingest(batches[bi].boundary, batches[bi].points, &ack, &error))
        << "batch " << bi << ": " << error;
    // The re-declared config was accepted: the whole batch landed.
    EXPECT_EQ(ack.accepted, batches[bi].points.size()) << "batch " << bi;
    for (const EmissionMsg& e : client.TakeEmissions()) {
      ASSERT_TRUE(index_of.count(e.query_id) != 0);
      TailEmission te;
      te.result.query_index = index_of[e.query_id];
      te.result.boundary = e.boundary;
      te.result.outliers = e.outliers;
      te.degraded = e.degraded;
      resumed.push_back(std::move(te));
    }
  }
  EXPECT_EQ(router_b.stats().protocol_errors, 0u);
  for (size_t w = 0; w < workers.size(); ++w) {
    EXPECT_TRUE(workers[w]->stats().sharded) << "worker " << w;
    EXPECT_EQ(workers[w]->stats().num_shards, 2u) << "worker " << w;
  }

  // Clean tail: every window past the handover holds only points the new
  // router numbered, so emissions must be exact modulo the uniform id
  // shift. (During the handover the workers' windows still hold points
  // only the OLD router could translate — those emissions are honestly
  // degraded and not compared.)
  const int64_t clean = handover_boundary + 120;  // max window span
  std::vector<QueryResult> expected_tail;
  for (const QueryResult& r : expected) {
    if (r.boundary < clean) continue;
    QueryResult shifted = r;
    for (Seq& s : shifted.outliers) s -= consumed_a;
    expected_tail.push_back(std::move(shifted));
  }
  ASSERT_FALSE(expected_tail.empty());
  std::vector<QueryResult> actual_tail;
  for (const TailEmission& te : resumed) {
    if (te.result.boundary < clean) continue;
    EXPECT_FALSE(te.degraded) << "@" << te.result.boundary;
    actual_tail.push_back(te.result);
  }
  testing::ExpectSameResults(expected_tail, actual_tail, "post-restart tail");

  // Phase C: a router with DIFFERENT cuts against the claimed fleet. Each
  // worker refuses the conflicting declaration at its first routed batch.
  RouterOptions conflicting = ro;
  conflicting.partition = PartitionSpec::Uniform(-3.0, 3.0, 2);
  router_b.Stop();
  SopRouter router_c(conflicting);
  ASSERT_TRUE(router_c.Start(&error)) << error;
  SopClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", router_c.port(), &error)) << error;
  IngestAckMsg ack;
  std::vector<Point> tail_points = batches.back().points;
  ASSERT_TRUE(probe.Ingest(batches.back().boundary + 1000, tail_points, &ack,
                           &error))
      << error;
  EXPECT_GE(router_c.stats().protocol_errors, 2u);  // one refusal per worker
  probe.Close();
  router_c.Stop();
  client.Close();
  for (std::unique_ptr<SopServer>& w : workers) w->Stop();
}

// A worker killed mid-stream and restarted on the same port (with
// checkpoint_every_batches=1) is ridden out by the router's worker-client
// recovery: the routed emission stream still matches the single-node run
// exactly — no lost and no duplicated emissions — and the stream is never
// marked degraded.
TEST(ClusterTest, WorkerKillAndRestartKeepsMergeExact) {
  const Workload workload = [] {
    Workload w(WindowType::kCount);
    w.AddQuery(OutlierQuery(1.5, 4, 100, 50));
    w.AddQuery(OutlierQuery(2.0, 3, 150, 50));
    return w;
  }();
  ASSERT_EQ(workload.Validate(), "");
  const std::vector<OutlierQuery> queries = TestQueries(false);
  const std::vector<Point> points = GenPoints(400, false, /*seed=*/55);
  const std::vector<Batch> batches = SliceCount(points, 50);
  ASSERT_EQ(batches.size(), 8u);
  std::unique_ptr<OutlierDetector> detector =
      CreateDetector("sop", workload);
  const std::vector<QueryResult> expected =
      CollectResults(workload, points, detector.get());

  const std::string prefix = ::testing::TempDir() + "sop_cluster_kill_worker";
  for (int i = 0; i < 2; ++i) {  // stale checkpoints would resume old state
    std::remove((prefix + std::to_string(i) + ".checkpoint").c_str());
  }
  std::string error;
  TestCluster tc;
  ASSERT_TRUE(
      StartCluster(&tc, 2, "sop", WindowType::kCount, &error, prefix))
      << error;

  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", tc.router->port(), &error))
      << error;
  std::map<int64_t, size_t> index_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    const int64_t id = client.Subscribe(queries[i], &error);
    ASSERT_GT(id, 0) << error;
    index_of[id] = i;
  }

  const int victim = 1;
  const int victim_port = tc.workers[victim]->port();
  std::vector<QueryResult> actual;
  for (size_t bi = 0; bi < batches.size(); ++bi) {
    if (bi == batches.size() / 2) {
      // Crash the worker between batches, then bring it back on the same
      // port from its per-batch checkpoint. The router's next fan-out
      // triggers its client's bounded recovery against the restarted
      // worker: re-handshake, shard-config re-declare, re-subscribe from
      // the high-water mark, exactly-once resume.
      tc.workers[victim]->Kill();
      ServerOptions wo = WorkerOptions("sop");
      wo.port = victim_port;
      wo.checkpoint_path = prefix + std::to_string(victim) + ".checkpoint";
      wo.checkpoint_every_batches = 1;
      auto restarted = std::make_unique<SopServer>(wo);
      ASSERT_TRUE(restarted->Start(&error)) << "restart: " << error;
      ASSERT_TRUE(restarted->stats().resumed) << "no checkpoint restored";
      tc.workers[victim] = std::move(restarted);
    }
    IngestAckMsg ack;
    ASSERT_TRUE(
        client.Ingest(batches[bi].boundary, batches[bi].points, &ack, &error))
        << "batch " << bi << ": " << error;
    EXPECT_EQ(ack.accepted, batches[bi].points.size()) << "batch " << bi;
    for (const EmissionMsg& e : client.TakeEmissions()) {
      ASSERT_TRUE(index_of.count(e.query_id) != 0);
      EXPECT_FALSE(e.degraded) << "@" << e.boundary;
      QueryResult r;
      r.query_index = index_of[e.query_id];
      r.boundary = e.boundary;
      r.outliers = e.outliers;
      actual.push_back(std::move(r));
    }
  }
  testing::ExpectSameResults(expected, actual, "kill/restart");

  const RouterStats stats = tc.router->stats();
  EXPECT_GE(stats.worker_reconnects, 1u);
  EXPECT_EQ(stats.worker_failures, 0u);
  EXPECT_FALSE(stats.degraded);
}

// A worker that stays DOWN past its client's bounded recovery degrades the
// stream honestly — the failed batch still acks, its emissions carry
// degraded=true, and the down shard's verdicts are withheld rather than
// mistranslated — and once the worker returns from its checkpoint the
// router realigns the shard's local->global sequence map against the acked
// arrival counter (IngestAckMsg::next_seq): the degraded flag clears and
// every emission whose window has moved past the hole matches the
// single-node run exactly, global seqs included. Regression: a stale map
// used to keep translating with a silent shift after an outage, emitting
// wrong global seqs forever without ever flagging degraded.
TEST(ClusterTest, WorkerOutageDegradesThenRealignsExactly) {
  const Workload workload = [] {
    Workload w(WindowType::kCount);
    w.AddQuery(OutlierQuery(1.5, 4, 100, 50));
    w.AddQuery(OutlierQuery(2.0, 3, 150, 50));
    return w;
  }();
  ASSERT_EQ(workload.Validate(), "");
  const std::vector<OutlierQuery> queries = TestQueries(false);
  const std::vector<Point> points = GenPoints(800, false, /*seed=*/77);
  const std::vector<Batch> batches = SliceCount(points, 50);
  ASSERT_EQ(batches.size(), 16u);
  std::unique_ptr<OutlierDetector> detector =
      CreateDetector("sop", workload);
  const std::vector<QueryResult> expected =
      CollectResults(workload, points, detector.get());

  const std::string prefix = ::testing::TempDir() + "sop_cluster_outage";
  for (int i = 0; i < 2; ++i) {
    std::remove((prefix + std::to_string(i) + ".checkpoint").c_str());
  }
  // Tight recovery bounds: while the victim is down its client gives up in
  // milliseconds — this drives the degraded path, not the kill/restart
  // test's transparent ride-out.
  net::ReconnectOptions rec;
  rec.max_attempts = 3;
  rec.backoff_initial_ms = 1;
  rec.backoff_max_ms = 2;
  std::string error;
  TestCluster tc;
  ASSERT_TRUE(StartCluster(&tc, 2, "sop", WindowType::kCount, &error, prefix,
                           &rec))
      << error;

  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", tc.router->port(), &error))
      << error;
  std::map<int64_t, size_t> index_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    const int64_t id = client.Subscribe(queries[i], &error);
    ASSERT_GT(id, 0) << error;
    index_of[id] = i;
  }

  const int victim = 1;
  const int victim_port = tc.workers[victim]->port();
  const size_t down_bi = batches.size() / 2;  // routed into the outage
  // That batch's points [boundary - 50, boundary) never reach the victim.
  const int64_t hole_end = batches[down_bi].boundary;
  std::vector<QueryResult> actual;
  bool saw_degraded_hole = false;
  for (size_t bi = 0; bi < batches.size(); ++bi) {
    if (bi == down_bi) tc.workers[victim]->Kill();  // no restart yet
    if (bi == down_bi + 1) {
      // Back from the per-batch checkpoint on the same port; the next
      // fan-out recovers the router's client, and the recovered ack's
      // arrival counter realigns the shard's sequence map.
      ServerOptions wo = WorkerOptions("sop");
      wo.port = victim_port;
      wo.checkpoint_path = prefix + std::to_string(victim) + ".checkpoint";
      wo.checkpoint_every_batches = 1;
      auto restarted = std::make_unique<SopServer>(wo);
      ASSERT_TRUE(restarted->Start(&error)) << "restart: " << error;
      ASSERT_TRUE(restarted->stats().resumed) << "no checkpoint restored";
      tc.workers[victim] = std::move(restarted);
    }
    IngestAckMsg ack;
    ASSERT_TRUE(
        client.Ingest(batches[bi].boundary, batches[bi].points, &ack, &error))
        << "batch " << bi << ": " << error;
    // The stream keeps moving without the shard — the ack still covers the
    // whole batch — but the router says so while it lasts.
    EXPECT_EQ(ack.accepted, batches[bi].points.size()) << "batch " << bi;
    if (bi == down_bi) {
      EXPECT_TRUE(tc.router->stats().degraded);
    }
    for (const EmissionMsg& e : client.TakeEmissions()) {
      ASSERT_TRUE(index_of.count(e.query_id) != 0);
      if (e.boundary == hole_end) {
        // The down shard's verdicts are missing by design; flagged.
        EXPECT_TRUE(e.degraded) << "@" << e.boundary;
        saw_degraded_hole = true;
        continue;
      }
      if (e.boundary < hole_end) {
        EXPECT_FALSE(e.degraded) << "@" << e.boundary;
      }
      QueryResult r;
      r.query_index = index_of[e.query_id];
      r.boundary = e.boundary;
      r.outliers = e.outliers;
      actual.push_back(std::move(r));
    }
  }
  EXPECT_TRUE(saw_degraded_hole);

  // Exactness before the outage and after every window clears the hole
  // (max window 150; boundaries in between see a genuinely incomplete
  // window on the victim and are not compared).
  const int64_t clean = hole_end + 150;
  const auto slice = [](const std::vector<QueryResult>& in, int64_t lo,
                        int64_t hi) {
    std::vector<QueryResult> out;
    for (const QueryResult& r : in) {
      if (r.boundary >= lo && r.boundary < hi) out.push_back(r);
    }
    return out;
  };
  testing::ExpectSameResults(slice(expected, 0, hole_end),
                             slice(actual, 0, hole_end), "outage prefix");
  const std::vector<QueryResult> expected_tail =
      slice(expected, clean, INT64_MAX);
  testing::ExpectSameResults(expected_tail, slice(actual, clean, INT64_MAX),
                             "outage tail");
  // The tail must prove something: post-heal emissions carry outliers
  // whose GLOBAL seqs came through the realigned map.
  size_t tail_outliers = 0;
  for (const QueryResult& r : expected_tail) {
    tail_outliers += r.outliers.size();
  }
  EXPECT_GT(tail_outliers, 0u);

  const RouterStats stats = tc.router->stats();
  EXPECT_GE(stats.worker_failures, 1u);
  EXPECT_GE(stats.worker_reconnects, 1u);
  EXPECT_FALSE(stats.degraded);  // current health, not a sticky latch
}

// Stop() while batches are mid-flight must drain and return: a dispatched
// fan-out job that got dropped on shutdown would strand its fork-join and
// leave the route loop (and Stop()) waiting forever. Regression for
// exactly that deadlock.
TEST(ClusterTest, StopUnderActiveIngestDrains) {
  TestCluster tc;
  std::string error;
  ASSERT_TRUE(StartCluster(&tc, 2, "sop", WindowType::kCount, &error))
      << error;

  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", tc.router->port(), &error))
      << error;
  ASSERT_GT(client.Subscribe(OutlierQuery(1.5, 4, 100, 50), &error), 0)
      << error;
  const std::vector<Point> points = GenPoints(10000, false, /*seed=*/21);
  const std::vector<Batch> batches = SliceCount(points, 50);

  std::thread ingester([&] {
    std::string ierror;
    for (const Batch& b : batches) {
      IngestAckMsg ack;
      // Stop() closes the connection mid-stream; the failed call is the
      // expected way out.
      if (!client.Ingest(b.boundary, b.points, &ack, &ierror)) break;
    }
  });
  // Deterministic mid-flight point: at least one batch dispatched, many
  // more still queued behind it (no fixed sleep — see EXPERIMENTS.md on
  // the wall-clock-sleep sweep).
  ASSERT_TRUE(WaitUntil(
      [&] { return tc.router->stats().ingest_batches >= 1; }));
  tc.router->Stop();
  ingester.join();
  EXPECT_GT(tc.router->stats().ingest_batches, 0u);
}

// --- admission and refusal paths -----------------------------------------

// The router's front handshake refuses a hello from a different protocol
// version with a diagnostic — the same contract as the single server —
// instead of letting later frames fail to decode mysteriously.
TEST(ClusterTest, HelloVersionMismatchIsRefused) {
  TestCluster tc;
  std::string error;
  ASSERT_TRUE(StartCluster(&tc, 2, "sop", WindowType::kCount, &error))
      << error;

  net::HelloMsg hello;
  hello.protocol_version = net::kProtocolVersion - 1;
  net::Socket raw = net::ConnectTcp("127.0.0.1", tc.router->port(), &error);
  ASSERT_TRUE(raw.valid()) << error;
  const net::NetRetryOptions retry;
  ASSERT_TRUE(net::SendAll(raw, net::EncodeHello(hello), retry, &error))
      << error;
  ASSERT_TRUE(WaitUntil(
      [&] { return tc.router->stats().protocol_errors >= 1; }));

  // A current-version client on the same router is untouched.
  SopClient ok;
  ASSERT_TRUE(ok.Connect("127.0.0.1", tc.router->port(), &error)) << error;
  EXPECT_EQ(ok.server_info().protocol_version, net::kProtocolVersion);
}

// Once the first batch freezes the halo, a subscribe whose radius exceeds
// it is refused with a diagnostic: serving it would silently miss
// neighbors across region edges.
TEST(ClusterTest, SubscribeBeyondFrozenHaloIsRefused) {
  TestCluster tc;
  std::string error;
  ASSERT_TRUE(StartCluster(&tc, 2, "sop", WindowType::kCount, &error))
      << error;

  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", tc.router->port(), &error))
      << error;
  const int64_t id =
      client.Subscribe(OutlierQuery(1.5, 4, 100, 50), &error);
  ASSERT_GT(id, 0) << error;

  // First batch freezes the halo at the live basis r_max.
  const std::vector<Point> points = GenPoints(50, false, /*seed=*/3);
  IngestAckMsg ack;
  ASSERT_TRUE(client.Ingest(50, points, &ack, &error)) << error;

  const int64_t refused =
      client.Subscribe(OutlierQuery(100.0, 4, 100, 50), &error);
  EXPECT_EQ(refused, 0);
  EXPECT_NE(error.find("halo"), std::string::npos) << error;

  // A radius inside the frozen halo is still admissible.
  const int64_t ok = client.Subscribe(OutlierQuery(1.0, 2, 100, 50), &error);
  EXPECT_GT(ok, 0) << error;

  const RouterStats stats = tc.router->stats();
  EXPECT_EQ(stats.refused_subscribes, 1u);
  EXPECT_EQ(stats.subscribes, 2u);
}

// Router-side refusals mirror the single server: stale boundaries are
// bounced without advancing the stream, and malformed queries never reach
// a worker.
TEST(ClusterTest, StaleBoundaryAndBadQueryAreRefused) {
  TestCluster tc;
  std::string error;
  ASSERT_TRUE(StartCluster(&tc, 2, "sop", WindowType::kCount, &error))
      << error;

  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", tc.router->port(), &error))
      << error;
  const int64_t bad = client.Subscribe(OutlierQuery(-1.0, 0, 0, 0), &error);
  EXPECT_EQ(bad, 0);

  const int64_t id = client.Subscribe(OutlierQuery(1.5, 4, 100, 50), &error);
  ASSERT_GT(id, 0) << error;
  const std::vector<Point> points = GenPoints(100, false, /*seed=*/9);
  std::vector<Point> first(points.begin(), points.begin() + 50);
  IngestAckMsg ack;
  ASSERT_TRUE(client.Ingest(50, first, &ack, &error)) << error;
  EXPECT_EQ(ack.accepted, 50u);

  // Same boundary again: refused, accepted == 0, diagnostic pushed.
  ASSERT_TRUE(client.Ingest(50, first, &ack, &error)) << error;
  EXPECT_EQ(ack.accepted, 0u);
  EXPECT_FALSE(client.TakeErrors().empty());

  const RouterStats stats = tc.router->stats();
  EXPECT_EQ(stats.last_boundary, 50);
  EXPECT_GE(stats.protocol_errors, 0u);
}

}  // namespace
}  // namespace cluster
}  // namespace sop
