// Wire protocol tests: message round-trips, incremental frame decoding
// over arbitrary read fragmentation, hostile-input rejection (truncation,
// bit flips, oversized length fields), and a randomized corruption fuzz
// loop mirroring recovery_test.cc's checkpoint fuzz.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/frame.h"
#include "sop/common/random.h"
#include "sop/common/serialize.h"
#include "sop/net/protocol.h"
#include "test_util.h"

namespace sop {
namespace net {
namespace {

// Mirrors the file-local constant in common/frame.cc ("SOPF" as an LE u32)
// so the tests can hand-build hostile headers.
constexpr uint32_t kFrameMagic = 0x53'4f'50'46;

Point MakePoint(Timestamp time, std::vector<double> values) {
  Point p;
  p.time = time;
  p.values = std::move(values);
  return p;
}

TEST(ProtocolTest, HelloRoundTrip) {
  HelloMsg msg;
  msg.protocol_version = 7;
  HelloMsg out;
  std::string error;
  std::string_view payload;
  const std::string frame = EncodeHello(msg);
  ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
  ASSERT_TRUE(DecodeHello(payload, &out, &error)) << error;
  EXPECT_EQ(out.protocol_version, 7u);
}

TEST(ProtocolTest, HelloAckRoundTrip) {
  HelloAckMsg msg;
  msg.protocol_version = kProtocolVersion;
  msg.window_type = 1;
  msg.metric = 1;
  msg.role = static_cast<uint32_t>(ServerRole::kStandby);
  msg.detector = "mcod-grid";
  msg.last_boundary = -42;
  msg.next_seq = 987654321;
  HelloAckMsg out;
  std::string error;
  std::string_view payload;
  const std::string frame = EncodeHelloAck(msg);
  ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
  ASSERT_TRUE(DecodeHelloAck(payload, &out, &error)) << error;
  EXPECT_EQ(out.protocol_version, kProtocolVersion);
  EXPECT_EQ(out.window_type, 1u);
  EXPECT_EQ(out.metric, 1u);
  EXPECT_EQ(out.role, static_cast<uint32_t>(ServerRole::kStandby));
  EXPECT_EQ(out.detector, "mcod-grid");
  EXPECT_EQ(out.last_boundary, -42);
  EXPECT_EQ(out.next_seq, 987654321u);
}

TEST(ProtocolTest, IngestRoundTripPreservesPoints) {
  IngestMsg msg;
  msg.boundary = 12345;
  msg.points.push_back(MakePoint(10, {1.5, -2.5, 0.0}));
  msg.points.push_back(MakePoint(11, {3.25}));
  msg.points.push_back(MakePoint(12, {}));
  IngestMsg out;
  std::string error;
  std::string_view payload;
  const std::string frame = EncodeIngest(msg);
  ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
  ASSERT_TRUE(DecodeIngest(payload, &out, &error)) << error;
  EXPECT_EQ(out.boundary, 12345);
  ASSERT_EQ(out.points.size(), 3u);
  EXPECT_EQ(out.points[0].time, 10);
  EXPECT_EQ(out.points[0].values, (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(out.points[1].values, std::vector<double>{3.25});
  EXPECT_TRUE(out.points[2].values.empty());
}

TEST(ProtocolTest, AckAndControlRoundTrips) {
  {
    IngestAckMsg msg{77, 128, 3, 4096};
    IngestAckMsg out;
    std::string error;
    std::string_view payload;
    const std::string frame = EncodeIngestAck(msg);
    ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
    ASSERT_TRUE(DecodeIngestAck(payload, &out, &error)) << error;
    EXPECT_EQ(out.boundary, 77);
    EXPECT_EQ(out.accepted, 128u);
    EXPECT_EQ(out.emissions, 3u);
    EXPECT_EQ(out.next_seq, 4096u);
  }
  {
    SubscribeMsg msg;
    msg.query.r = 1.25;
    msg.query.k = 4;
    msg.query.win = 200;
    msg.query.slide = 50;
    msg.resume_from = 150;
    SubscribeMsg out;
    std::string error;
    std::string_view payload;
    const std::string frame = EncodeSubscribe(msg);
    ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
    ASSERT_TRUE(DecodeSubscribe(payload, &out, &error)) << error;
    EXPECT_EQ(out.query.r, 1.25);
    EXPECT_EQ(out.query.k, 4);
    EXPECT_EQ(out.query.win, 200);
    EXPECT_EQ(out.query.slide, 50);
    EXPECT_EQ(out.query.attribute_set, 0u);
    EXPECT_EQ(out.resume_from, 150);
    // The default — no resume position — survives the wire too.
    SubscribeMsg fresh;
    const std::string fresh_frame = EncodeSubscribe(fresh);
    ASSERT_TRUE(UnwrapFrame(fresh_frame, &payload, &error)) << error;
    ASSERT_TRUE(DecodeSubscribe(payload, &out, &error)) << error;
    EXPECT_EQ(out.resume_from, kNoResume);
  }
  {
    SubscribeAckMsg msg;
    msg.query_id = 9;
    msg.replayed = 12;
    msg.gap = true;
    msg.error = "why not";
    SubscribeAckMsg out;
    std::string error;
    std::string_view payload;
    const std::string frame = EncodeSubscribeAck(msg);
    ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
    ASSERT_TRUE(DecodeSubscribeAck(payload, &out, &error)) << error;
    EXPECT_EQ(out.query_id, 9);
    EXPECT_EQ(out.replayed, 12u);
    EXPECT_TRUE(out.gap);
    EXPECT_EQ(out.error, "why not");
  }
  {
    UnsubscribeMsg msg{33};
    UnsubscribeMsg out;
    std::string error;
    std::string_view payload;
    const std::string frame = EncodeUnsubscribe(msg);
    ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
    ASSERT_TRUE(DecodeUnsubscribe(payload, &out, &error)) << error;
    EXPECT_EQ(out.query_id, 33);
  }
  {
    UnsubscribeAckMsg msg{true};
    UnsubscribeAckMsg out;
    std::string error;
    std::string_view payload;
    const std::string frame = EncodeUnsubscribeAck(msg);
    ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
    ASSERT_TRUE(DecodeUnsubscribeAck(payload, &out, &error)) << error;
    EXPECT_TRUE(out.ok);
  }
  {
    ErrorMsg msg{"boom"};
    ErrorMsg out;
    std::string error;
    std::string_view payload;
    const std::string frame = EncodeError(msg);
    ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
    ASSERT_TRUE(DecodeError(payload, &out, &error)) << error;
    EXPECT_EQ(out.message, "boom");
  }
}

TEST(ProtocolTest, EmissionRoundTripWithDegradedFlag) {
  EmissionMsg msg;
  msg.query_id = 5;
  msg.boundary = 400;
  msg.degraded = true;
  msg.outliers = {0, 17, 123456789};
  EmissionMsg out;
  std::string error;
  std::string_view payload;
  const std::string frame = EncodeEmission(msg);
  ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
  ASSERT_TRUE(DecodeEmission(payload, &out, &error)) << error;
  EXPECT_EQ(out.query_id, 5);
  EXPECT_EQ(out.boundary, 400);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.outliers, (std::vector<Seq>{0, 17, 123456789}));
}

TEST(ProtocolTest, PingPongRoundTrip) {
  {
    PingMsg msg;
    msg.token = 0xdeadbeefcafeull;
    PingMsg out;
    std::string error;
    std::string_view payload;
    const std::string frame = EncodePing(msg);
    ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
    ASSERT_TRUE(DecodePing(payload, &out, &error)) << error;
    EXPECT_EQ(out.token, 0xdeadbeefcafeull);
  }
  {
    PongMsg msg;
    msg.token = 7;
    msg.role = static_cast<uint32_t>(ServerRole::kStandby);
    msg.last_boundary = 4200;
    msg.ingest_queue_depth = 3;
    msg.send_queue_depth = 19;
    msg.active_connections = 2;
    PongMsg out;
    std::string error;
    std::string_view payload;
    const std::string frame = EncodePong(msg);
    ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
    ASSERT_TRUE(DecodePong(payload, &out, &error)) << error;
    EXPECT_EQ(out.token, 7u);
    EXPECT_EQ(out.role, static_cast<uint32_t>(ServerRole::kStandby));
    EXPECT_EQ(out.last_boundary, 4200);
    EXPECT_EQ(out.ingest_queue_depth, 3u);
    EXPECT_EQ(out.send_queue_depth, 19u);
    EXPECT_EQ(out.active_connections, 2u);
  }
}

EmissionRecord MakeRecord(double r, int64_t k, int64_t win, int64_t slide,
                          int64_t boundary, bool degraded,
                          std::vector<Seq> outliers) {
  EmissionRecord rec;
  rec.query.r = r;
  rec.query.k = k;
  rec.query.win = win;
  rec.query.slide = slide;
  rec.boundary = boundary;
  rec.degraded = degraded;
  rec.outliers = std::move(outliers);
  return rec;
}

ResumeRingShard MakeShard(double r, int64_t k, int64_t win, int64_t slide,
                          int64_t evicted_to) {
  ResumeRingShard shard;
  shard.query.r = r;
  shard.query.k = k;
  shard.query.win = win;
  shard.query.slide = slide;
  shard.evicted_to = evicted_to;
  return shard;
}

TEST(ProtocolTest, ReplSnapshotRoundTrip) {
  ReplSnapshotMsg msg;
  msg.boundary = 900;
  msg.state = std::string("opaque\0blob", 11);  // embedded NUL survives
  ResumeRingShard a = MakeShard(1.5, 4, 200, 50, 700);
  a.entries.push_back({800, false, {1, 2, 3}});
  a.entries.push_back({850, true, {}});
  ResumeRingShard b = MakeShard(2.5, 8, 400, 100, INT64_MIN);
  b.entries.push_back({900, false, {42}});
  msg.ring.push_back(a);
  msg.ring.push_back(b);
  ReplSnapshotMsg out;
  std::string error;
  std::string_view payload;
  const std::string frame = EncodeReplSnapshot(msg);
  ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
  ASSERT_TRUE(DecodeReplSnapshot(payload, &out, &error)) << error;
  EXPECT_EQ(out.boundary, 900);
  EXPECT_EQ(out.state, msg.state);
  ASSERT_EQ(out.ring.size(), 2u);
  EXPECT_EQ(out.ring[0].query.r, 1.5);
  EXPECT_EQ(out.ring[0].query.k, 4);
  EXPECT_EQ(out.ring[0].evicted_to, 700);
  ASSERT_EQ(out.ring[0].entries.size(), 2u);
  EXPECT_EQ(out.ring[0].entries[0].boundary, 800);
  EXPECT_FALSE(out.ring[0].entries[0].degraded);
  EXPECT_EQ(out.ring[0].entries[0].outliers, (std::vector<Seq>{1, 2, 3}));
  EXPECT_TRUE(out.ring[0].entries[1].degraded);
  EXPECT_TRUE(out.ring[0].entries[1].outliers.empty());
  EXPECT_EQ(out.ring[1].query.slide, 100);
  EXPECT_EQ(out.ring[1].evicted_to, INT64_MIN);
  ASSERT_EQ(out.ring[1].entries.size(), 1u);
  EXPECT_EQ(out.ring[1].entries[0].outliers, (std::vector<Seq>{42}));
}

TEST(ProtocolTest, ReplBatchRoundTrip) {
  ReplBatchMsg msg;
  msg.prev_boundary = 100;
  msg.boundary = 200;
  msg.points.push_back(MakePoint(150, {1.0, 2.0}));
  msg.points.push_back(MakePoint(199, {-3.5}));
  msg.results.push_back(MakeRecord(0.5, 2, 100, 100, 200, false, {42}));
  ReplBatchMsg out;
  std::string error;
  std::string_view payload;
  const std::string frame = EncodeReplBatch(msg);
  ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
  ASSERT_TRUE(DecodeReplBatch(payload, &out, &error)) << error;
  EXPECT_EQ(out.prev_boundary, 100);
  EXPECT_EQ(out.boundary, 200);
  ASSERT_EQ(out.points.size(), 2u);
  EXPECT_EQ(out.points[0].values, (std::vector<double>{1.0, 2.0}));
  ASSERT_EQ(out.results.size(), 1u);
  EXPECT_EQ(out.results[0].query.r, 0.5);
  EXPECT_EQ(out.results[0].outliers, std::vector<Seq>{42});
}

TEST(ProtocolTest, ReplAckRoundTrip) {
  ReplAckMsg msg;
  msg.boundary = 777;
  msg.need_snapshot = true;
  ReplAckMsg out;
  std::string error;
  std::string_view payload;
  const std::string frame = EncodeReplAck(msg);
  ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
  ASSERT_TRUE(DecodeReplAck(payload, &out, &error)) << error;
  EXPECT_EQ(out.boundary, 777);
  EXPECT_TRUE(out.need_snapshot);
}

TEST(ProtocolTest, IngestOwnerFlagsRoundTrip) {
  IngestMsg msg;
  msg.boundary = 9;
  msg.points.push_back(MakePoint(1, {10.0}));
  msg.points.push_back(MakePoint(2, {20.0}));
  msg.points.push_back(MakePoint(3, {30.0}));
  msg.owner = {1, 0, 1};
  IngestMsg out;
  std::string error;
  std::string_view payload;
  const std::string frame = EncodeIngest(msg);
  ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
  ASSERT_TRUE(DecodeIngest(payload, &out, &error)) << error;
  EXPECT_EQ(out.owner, (std::vector<uint8_t>{1, 0, 1}));

  // Empty owner flags (the single-node wire default) stay empty.
  msg.owner.clear();
  const std::string bare = EncodeIngest(msg);
  ASSERT_TRUE(UnwrapFrame(bare, &payload, &error)) << error;
  ASSERT_TRUE(DecodeIngest(payload, &out, &error)) << error;
  EXPECT_TRUE(out.owner.empty());

  // A flag count that matches neither 0 nor the point count is malformed.
  msg.owner = {1, 0};
  const std::string bad = EncodeIngest(msg);
  ASSERT_TRUE(UnwrapFrame(bad, &payload, &error)) << error;
  EXPECT_FALSE(DecodeIngest(payload, &out, &error));
  EXPECT_NE(error.find("owner flag count"), std::string::npos);
}

TEST(ProtocolTest, ShardConfigRoundTrip) {
  ShardConfigMsg msg;
  msg.shard_index = 2;
  msg.num_shards = 4;
  msg.lo = -125.5;
  msg.hi = 4000.25;
  msg.halo = 17.75;
  ShardConfigMsg out;
  std::string error;
  std::string_view payload;
  const std::string frame = EncodeShardConfig(msg);
  MsgType type;
  ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
  ASSERT_TRUE(PeekType(payload, &type, &error)) << error;
  EXPECT_EQ(type, MsgType::kShardConfig);
  ASSERT_TRUE(DecodeShardConfig(payload, &out, &error)) << error;
  EXPECT_EQ(out.shard_index, 2u);
  EXPECT_EQ(out.num_shards, 4u);
  EXPECT_EQ(out.lo, -125.5);
  EXPECT_EQ(out.hi, 4000.25);
  EXPECT_EQ(out.halo, 17.75);

  // shard_index must address one of num_shards shards.
  msg.shard_index = 4;
  const std::string bad = EncodeShardConfig(msg);
  ASSERT_TRUE(UnwrapFrame(bad, &payload, &error)) << error;
  EXPECT_FALSE(DecodeShardConfig(payload, &out, &error));
  EXPECT_NE(error.find("shard index"), std::string::npos);
}

TEST(ProtocolTest, ShardConfigAckRoundTrip) {
  ShardConfigAckMsg msg;
  msg.ok = false;
  msg.error = "conflicting shard config already declared";
  ShardConfigAckMsg out;
  std::string error;
  std::string_view payload;
  const std::string frame = EncodeShardConfigAck(msg);
  ASSERT_TRUE(UnwrapFrame(frame, &payload, &error)) << error;
  ASSERT_TRUE(DecodeShardConfigAck(payload, &out, &error)) << error;
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, "conflicting shard config already declared");
}

TEST(ProtocolTest, PeekTypeRejectsUnknownWord) {
  BinaryWriter w;
  w.WriteU32(999);
  MsgType type;
  std::string error;
  EXPECT_FALSE(PeekType(w.bytes(), &type, &error));
  EXPECT_FALSE(PeekType("", &type, &error));
}

TEST(ProtocolTest, DecodersRejectWrongTypeAndTrailingBytes) {
  std::string error;
  std::string_view payload;
  const std::string hello = EncodeHello(HelloMsg{});
  ASSERT_TRUE(UnwrapFrame(hello, &payload, &error));
  IngestMsg ingest;
  EXPECT_FALSE(DecodeIngest(payload, &ingest, &error));
  EXPECT_NE(error.find("unexpected message type"), std::string::npos);

  // Extending a valid payload must be caught even though the prefix parses.
  std::string extended(payload);
  extended.push_back('\0');
  HelloMsg out;
  EXPECT_FALSE(DecodeHello(extended, &out, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos);
}

// The decoder must hand out frames regardless of how recv fragments them:
// byte-at-a-time, all-at-once, and frame boundaries crossing read
// boundaries are all the same stream.
TEST(ProtocolTest, FrameDecoderReassemblesAnyFragmentation) {
  std::vector<std::string> frames;
  frames.push_back(EncodeHello(HelloMsg{}));
  IngestMsg ingest;
  ingest.boundary = 10;
  ingest.points.push_back(MakePoint(1, {2.0, 3.0}));
  frames.push_back(EncodeIngest(ingest));
  frames.push_back(EncodeError(ErrorMsg{"x"}));
  std::string stream;
  for (const std::string& f : frames) stream += f;

  for (const size_t chunk : {size_t{1}, size_t{3}, stream.size()}) {
    FrameDecoder decoder;
    std::vector<std::string> got;
    for (size_t i = 0; i < stream.size(); i += chunk) {
      decoder.Append(stream.data() + i, std::min(chunk, stream.size() - i));
      for (;;) {
        std::string payload;
        std::string error;
        const FrameDecoder::Status status = decoder.Next(&payload, &error);
        if (status != FrameDecoder::Status::kFrame) {
          ASSERT_EQ(status, FrameDecoder::Status::kNeedMore) << error;
          break;
        }
        got.push_back(payload);
      }
    }
    ASSERT_EQ(got.size(), frames.size()) << "chunk=" << chunk;
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
    for (size_t i = 0; i < frames.size(); ++i) {
      std::string_view payload;
      std::string error;
      ASSERT_TRUE(UnwrapFrame(frames[i], &payload, &error));
      EXPECT_EQ(got[i], payload) << "chunk=" << chunk << " frame=" << i;
    }
  }
}

TEST(ProtocolTest, FrameDecoderRejectsOversizedLengthWithoutAllocating) {
  // A hostile header: valid magic + version, 1 EiB length. The decoder
  // must latch an error from the 20 header bytes alone.
  BinaryWriter w;
  w.WriteU32(kFrameMagic);
  w.WriteU32(kFrameVersion);
  w.WriteU64(1ull << 60);
  w.WriteU32(0);  // CRC never reached
  FrameDecoder decoder;
  decoder.Append(w.bytes().data(), w.bytes().size());
  std::string payload;
  std::string error;
  EXPECT_EQ(decoder.Next(&payload, &error), FrameDecoder::Status::kError);
  EXPECT_NE(error.find("oversized"), std::string::npos) << error;
}

TEST(ProtocolTest, FrameDecoderLatchesAfterBadMagic) {
  FrameDecoder decoder;
  const std::string junk = "this is not a frame at all.........";
  decoder.Append(junk.data(), junk.size());
  std::string payload;
  std::string error;
  EXPECT_EQ(decoder.Next(&payload, &error), FrameDecoder::Status::kError);
  // Even a valid frame cannot rescue a desynchronized stream.
  const std::string good = EncodeHello(HelloMsg{});
  decoder.Append(good.data(), good.size());
  EXPECT_EQ(decoder.Next(&payload, &error), FrameDecoder::Status::kError);
}

TEST(ProtocolTest, FrameDecoderRejectsBitFlips) {
  const std::string frame = EncodeIngest([] {
    IngestMsg m;
    m.boundary = 99;
    for (int i = 0; i < 32; ++i) {
      m.points.push_back(MakePoint(i, {static_cast<double>(i)}));
    }
    return m;
  }());
  // Flip one bit at a time across the whole frame; every mutant must be
  // rejected (header corruption) or fail CRC (payload corruption).
  for (size_t bit = 0; bit < frame.size() * 8; bit += 7) {
    std::string mutated = frame;
    mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    FrameDecoder decoder;
    decoder.Append(mutated.data(), mutated.size());
    std::string payload;
    std::string error;
    const FrameDecoder::Status status = decoder.Next(&payload, &error);
    // A flip inside the length field can make the frame look longer than
    // the bytes fed — kNeedMore is a correct answer there; completion with
    // a valid CRC is not.
    EXPECT_NE(status, FrameDecoder::Status::kFrame) << "bit " << bit;
  }
}

TEST(ProtocolTest, TruncationAtEveryPrefixIsRejectedOrIncomplete) {
  SubscribeAckMsg ack;
  ack.query_id = 4;
  ack.error = "ok";
  const std::string frame = EncodeSubscribeAck(ack);
  for (size_t len = 0; len < frame.size(); ++len) {
    FrameDecoder decoder;
    decoder.Append(frame.data(), len);
    std::string payload;
    std::string error;
    EXPECT_NE(decoder.Next(&payload, &error), FrameDecoder::Status::kFrame)
        << "prefix " << len;
  }
}

// Randomized corruption fuzz over the whole decode surface: mutate valid
// frames (bit flips, truncations, splices, pure garbage) and feed them to
// FrameDecoder + every message decoder. Nothing may crash; genuine mutants
// must never round-trip into an accepted frame whose payload then decodes
// under a different length than it encoded. Time-bounded; seed logged for
// replay (SOP_FUZZ_SEED pins it, SOP_FUZZ_MS extends the budget).
TEST(ProtocolTest, CorruptionFuzzNeverCrashes) {
  const testing::FuzzParams fuzz =
      testing::AnnouncedFuzzParams("protocol corruption", 200);
  const uint64_t seed = fuzz.seed;
  const int64_t budget_ms = fuzz.budget_ms;

  IngestMsg ingest;
  ingest.boundary = 1000;
  for (int i = 0; i < 64; ++i) {
    ingest.points.push_back(MakePoint(i, {1.0 * i, -1.0 * i}));
  }
  EmissionMsg emission;
  emission.query_id = 3;
  emission.boundary = 1000;
  emission.outliers = {1, 2, 3, 4, 5};
  ReplBatchMsg repl_batch;
  repl_batch.prev_boundary = 900;
  repl_batch.boundary = 1000;
  for (int i = 0; i < 16; ++i) {
    repl_batch.points.push_back(MakePoint(900 + i, {2.0 * i}));
  }
  repl_batch.results.push_back(
      MakeRecord(1.0, 3, 500, 100, 1000, false, {7, 8}));
  ReplSnapshotMsg repl_snap;
  repl_snap.boundary = 1000;
  repl_snap.state = std::string(256, '\x5a');
  ResumeRingShard fuzz_shard = MakeShard(1.0, 3, 500, 100, 800);
  fuzz_shard.entries.push_back({900, true, {5}});
  repl_snap.ring.push_back(fuzz_shard);
  const std::vector<std::string> valids = {
      EncodeHello(HelloMsg{}),
      EncodeHelloAck(HelloAckMsg{}),
      EncodeIngest(ingest),
      EncodeSubscribe(SubscribeMsg{}),
      EncodeEmission(emission),
      EncodeError(ErrorMsg{"diagnostic"}),
      EncodePing(PingMsg{99}),
      EncodePong(PongMsg{}),
      EncodeReplSnapshot(repl_snap),
      EncodeReplBatch(repl_batch),
      EncodeReplAck(ReplAckMsg{}),
  };

  Rng rng(seed);
  uint64_t iterations = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    for (int burst = 0; burst < 64; ++burst, ++iterations) {
      const std::string& valid =
          valids[rng.NextBelow(valids.size())];
      std::string mutated;
      const uint64_t kind = rng.NextBelow(4);
      if (kind == 0) {
        mutated = valid;
        const uint64_t flips = 1 + rng.NextBelow(8);
        for (uint64_t f = 0; f < flips; ++f) {
          const uint64_t bit = rng.NextBelow(mutated.size() * 8);
          mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        }
      } else if (kind == 1) {
        mutated = valid.substr(0, rng.NextBelow(valid.size()));
      } else if (kind == 2) {
        mutated = valid;
        const uint64_t at = rng.NextBelow(mutated.size());
        const uint64_t len = 1 + rng.NextBelow(32);
        for (uint64_t j = 0; j < len; ++j) {
          mutated.insert(mutated.begin() + static_cast<int64_t>(at),
                         static_cast<char>(rng.NextBelow(256)));
        }
      } else {
        mutated.resize(rng.NextBelow(valid.size() * 2 + 1));
        for (char& c : mutated) c = static_cast<char>(rng.NextBelow(256));
      }

      // Feed through the incremental decoder in random chunk sizes; then
      // throw whatever payloads survive at every decoder. None of this may
      // crash or hang.
      FrameDecoder decoder;
      size_t offset = 0;
      while (offset < mutated.size()) {
        const size_t chunk = std::min<size_t>(
            mutated.size() - offset, 1 + rng.NextBelow(1024));
        decoder.Append(mutated.data() + offset, chunk);
        offset += chunk;
        for (;;) {
          std::string payload;
          std::string error;
          const FrameDecoder::Status status = decoder.Next(&payload, &error);
          if (status != FrameDecoder::Status::kFrame) break;
          MsgType type;
          if (!PeekType(payload, &type, &error)) continue;
          HelloMsg hello;
          HelloAckMsg hello_ack;
          IngestMsg in;
          IngestAckMsg in_ack;
          SubscribeMsg sub;
          SubscribeAckMsg sub_ack;
          UnsubscribeMsg unsub;
          UnsubscribeAckMsg unsub_ack;
          EmissionMsg em;
          ErrorMsg err;
          PingMsg ping;
          PongMsg pong;
          ReplSnapshotMsg rsnap;
          ReplBatchMsg rbatch;
          ReplAckMsg rack;
          DecodeHello(payload, &hello, &error);
          DecodeHelloAck(payload, &hello_ack, &error);
          DecodeIngest(payload, &in, &error);
          DecodeIngestAck(payload, &in_ack, &error);
          DecodeSubscribe(payload, &sub, &error);
          DecodeSubscribeAck(payload, &sub_ack, &error);
          DecodeUnsubscribe(payload, &unsub, &error);
          DecodeUnsubscribeAck(payload, &unsub_ack, &error);
          DecodeEmission(payload, &em, &error);
          DecodeError(payload, &err, &error);
          DecodePing(payload, &ping, &error);
          DecodePong(payload, &pong, &error);
          DecodeReplSnapshot(payload, &rsnap, &error);
          DecodeReplBatch(payload, &rbatch, &error);
          DecodeReplAck(payload, &rack, &error);
        }
      }
    }
  }
  std::fprintf(stderr, "[ fuzz ] %llu mutated streams survived\n",
               static_cast<unsigned long long>(iterations));
}

}  // namespace
}  // namespace net
}  // namespace sop
