// Spatial partitioner tests (cluster/partition.h): ownership, halo
// membership semantics, region geometry, halo derivation from the
// workload basis, and a seed-logged fuzz loop asserting the three
// invariants the scale-out merge rests on — every value has exactly one
// owner, halo membership is symmetric with region distance, and the
// assigned shard set covers exactly the shards whose region the value's
// halo ball touches (contiguously).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sop/cluster/partition.h"
#include "sop/common/random.h"
#include "sop/query/plan.h"
#include "sop/query/workload.h"
#include "test_util.h"

namespace sop {
namespace cluster {
namespace {

TEST(PartitionTest, UniformSpecPlacesEvenCuts) {
  const PartitionSpec spec = PartitionSpec::Uniform(0.0, 100.0, 4);
  ASSERT_EQ(spec.parts(), 4);
  ASSERT_EQ(spec.cuts.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.cuts[0], 25.0);
  EXPECT_DOUBLE_EQ(spec.cuts[1], 50.0);
  EXPECT_DOUBLE_EQ(spec.cuts[2], 75.0);
  std::string error;
  EXPECT_TRUE(spec.Validate(&error)) << error;
}

TEST(PartitionTest, SinglePartHasNoCuts) {
  const PartitionSpec spec = PartitionSpec::Uniform(0.0, 100.0, 1);
  EXPECT_EQ(spec.parts(), 1);
  EXPECT_TRUE(spec.cuts.empty());
  std::string error;
  EXPECT_TRUE(spec.Validate(&error)) << error;
}

TEST(PartitionTest, ValidateRejectsUnsortedAndNonFiniteCuts) {
  PartitionSpec spec;
  std::string error;
  spec.cuts = {10.0, 5.0};
  EXPECT_FALSE(spec.Validate(&error));
  spec.cuts = {5.0, 5.0};
  EXPECT_FALSE(spec.Validate(&error));
  spec.cuts = {std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(spec.Validate(&error));
  spec.cuts = {std::nan("")};
  EXPECT_FALSE(spec.Validate(&error));
}

TEST(PartitionTest, OwnerOfRespectsHalfOpenRegions) {
  PartitionSpec spec;
  spec.cuts = {10.0, 20.0};
  const Partitioner part(spec, 0.0);
  EXPECT_EQ(part.OwnerOf(-1e30), 0);
  EXPECT_EQ(part.OwnerOf(9.999), 0);
  EXPECT_EQ(part.OwnerOf(10.0), 1);  // regions are [lo, hi)
  EXPECT_EQ(part.OwnerOf(19.999), 1);
  EXPECT_EQ(part.OwnerOf(20.0), 2);
  EXPECT_EQ(part.OwnerOf(1e30), 2);
  // Outer regions are open to +-infinity.
  EXPECT_EQ(part.range_lo(0), -std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(part.range_hi(0), 10.0);
  EXPECT_DOUBLE_EQ(part.range_lo(2), 20.0);
  EXPECT_EQ(part.range_hi(2), std::numeric_limits<double>::infinity());
}

TEST(PartitionTest, HaloMembershipAtExactDistanceIsIncluded) {
  PartitionSpec spec;
  spec.cuts = {10.0};
  const Partitioner part(spec, 2.0);
  std::vector<ShardAssignment> a;
  // 8.0 is exactly halo away from the cut: a point at 10.0 (owned by
  // shard 1) is a neighbor at distance exactly r, so shard 1 needs the
  // replica.
  part.AssignmentsOf(8.0, &a);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].shard, 0);
  EXPECT_TRUE(a[0].owner);
  EXPECT_EQ(a[1].shard, 1);
  EXPECT_FALSE(a[1].owner);
  // 7.999... needs only its owner.
  part.AssignmentsOf(7.0, &a);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].shard, 0);
  EXPECT_TRUE(a[0].owner);
  // 11.9 within halo of shard 0's region (hi = 10 exclusive: distance to
  // the region is > 1.9 - ... a value below lo + halo replicates down).
  part.AssignmentsOf(11.9, &a);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].shard, 0);
  EXPECT_FALSE(a[0].owner);
  EXPECT_EQ(a[1].shard, 1);
  EXPECT_TRUE(a[1].owner);
}

TEST(PartitionTest, NonFiniteValuesFallToEdgeShards) {
  PartitionSpec spec;
  spec.cuts = {0.0};
  const Partitioner part(spec, 1.0);
  std::vector<ShardAssignment> a;
  part.AssignmentsOf(std::numeric_limits<double>::infinity(), &a);
  ASSERT_EQ(a.size(), 1u);  // no finite halo ball around infinity
  EXPECT_EQ(a[0].shard, 1);
  EXPECT_TRUE(a[0].owner);
  part.AssignmentsOf(-std::numeric_limits<double>::infinity(), &a);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].shard, 0);
  part.AssignmentsOf(std::nan(""), &a);
  ASSERT_EQ(a.size(), 1u);  // NaN compares below everything: shard 0 owns
  EXPECT_EQ(a[0].shard, 0);
  EXPECT_TRUE(a[0].owner);
}

TEST(PartitionTest, HaloFromBasisIsWorkloadRMax) {
  Workload wl(WindowType::kCount, Metric::kEuclidean);
  wl.AddQuery(OutlierQuery(2.0, 4, 100, 50));
  wl.AddQuery(OutlierQuery(7.5, 2, 200, 50));
  wl.AddQuery(OutlierQuery(3.0, 8, 100, 100));
  ASSERT_TRUE(wl.Validate().empty());
  // The exact-paper basis has r_max == the largest subscribed radius; a
  // halo that wide makes every owned verdict exact (partition.h).
  EXPECT_DOUBLE_EQ(HaloFromBasis(wl, PlanHeadroom()), 7.5);
  // Elastic headroom may only widen it.
  EXPECT_GE(HaloFromBasis(wl, PlanHeadroom::Elastic()), 7.5);
}

// Brute-force oracle: the distance from value v to shard s's region.
double RegionDistance(const Partitioner& part, double v, int shard) {
  const double lo = part.range_lo(shard);
  const double hi = part.range_hi(shard);
  if (v >= lo && v < hi) return 0.0;
  if (v < lo) return lo - v;
  return v - hi;  // v >= hi; hi itself belongs to the next shard
}

TEST(PartitionTest, FuzzOwnershipCoverageAndHaloSymmetry) {
  const testing::FuzzParams fuzz =
      testing::AnnouncedFuzzParams("partition geometry", 300);
  const uint64_t seed = fuzz.seed;
  const int64_t budget_ms = fuzz.budget_ms;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  Rng rng(seed);
  std::vector<ShardAssignment> assignments;
  int rounds = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    ++rounds;
    // Random geometry: up to 8 shards over a random span, random r_max.
    const int parts = 1 + static_cast<int>(rng.NextBelow(8));
    const double lo = rng.UniformDouble(-1000.0, 1000.0);
    const double span = rng.UniformDouble(1.0, 5000.0);
    PartitionSpec spec;
    if (rng.Bernoulli(0.5)) {
      spec = PartitionSpec::Uniform(lo, lo + span, parts);
    } else {
      // Irregular cuts: sorted uniform draws.
      std::vector<double> cuts;
      for (int i = 0; i + 1 < parts; ++i) {
        cuts.push_back(rng.UniformDouble(lo, lo + span));
      }
      std::sort(cuts.begin(), cuts.end());
      cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
      spec.cuts = cuts;
    }
    std::string verror;
    ASSERT_TRUE(spec.Validate(&verror)) << "seed=" << seed << ": " << verror;
    const double halo = rng.Bernoulli(0.2)
                            ? 0.0
                            : rng.UniformDouble(0.0, span / 2.0);
    const Partitioner part(spec, halo);

    uint64_t per_shard_points[8] = {0};
    for (int i = 0; i < 200; ++i) {
      // Sample inside, far outside, and exactly on the cut lines.
      double v;
      const uint64_t mode = rng.NextBelow(8);
      if (mode == 0 && !spec.cuts.empty()) {
        v = spec.cuts[rng.NextBelow(spec.cuts.size())];
      } else if (mode == 1 && !spec.cuts.empty()) {
        v = spec.cuts[rng.NextBelow(spec.cuts.size())] + halo;
      } else if (mode == 2 && !spec.cuts.empty()) {
        v = spec.cuts[rng.NextBelow(spec.cuts.size())] - halo;
      } else if (mode == 3) {
        v = rng.UniformDouble(lo - 3.0 * span, lo + 4.0 * span);
      } else {
        v = rng.UniformDouble(lo, lo + span);
      }
      part.AssignmentsOf(v, &assignments);

      // Invariant 1: exactly one owner, and it is OwnerOf(v).
      int owners = 0;
      for (const ShardAssignment& a : assignments) {
        if (a.owner) {
          ++owners;
          EXPECT_EQ(a.shard, part.OwnerOf(v)) << "seed=" << seed;
        }
        ASSERT_GE(a.shard, 0) << "seed=" << seed;
        ASSERT_LT(a.shard, part.parts()) << "seed=" << seed;
        ++per_shard_points[a.shard];
      }
      ASSERT_EQ(owners, 1) << "seed=" << seed << " v=" << v;

      // Invariant 2: membership is symmetric with region distance — a
      // shard holds v iff v's halo ball touches its region, where the
      // low edge is inclusive (distance exactly halo is a neighbor at
      // distance exactly r) and the high edge exclusive (region points
      // sit strictly below hi).
      for (int s = 0; s < part.parts(); ++s) {
        const bool assigned =
            std::any_of(assignments.begin(), assignments.end(),
                        [s](const ShardAssignment& a) {
                          return a.shard == s;
                        });
        const bool lo_reach = part.range_lo(s) <= v + halo;
        const bool hi_reach = part.range_hi(s) > v - halo;
        EXPECT_EQ(assigned, lo_reach && hi_reach)
            << "seed=" << seed << " v=" << v << " shard=" << s
            << " halo=" << halo;
        if (assigned) {
          // One ulp of slack: v is often sampled as fl(cut +- halo), so
          // the exact region distance can exceed halo by a rounding error
          // even though the membership rule (lo <= v + halo) includes it.
          const double slack =
              1e-9 * std::max({1.0, std::abs(v), std::abs(halo)});
          EXPECT_LE(RegionDistance(part, v, s), halo + slack)
              << "seed=" << seed;
        }
      }

      // Invariant 3: the assigned set is the contiguous interval
      // [OwnerOf(v - halo), OwnerOf(v + halo)] — full coverage, no holes.
      ASSERT_FALSE(assignments.empty()) << "seed=" << seed;
      EXPECT_EQ(assignments.front().shard, part.OwnerOf(v - halo))
          << "seed=" << seed;
      EXPECT_EQ(assignments.back().shard, part.OwnerOf(v + halo))
          << "seed=" << seed;
      for (size_t i = 1; i < assignments.size(); ++i) {
        EXPECT_EQ(assignments[i].shard, assignments[i - 1].shard + 1)
            << "seed=" << seed;
      }
      if (::testing::Test::HasFatalFailure() ||
          ::testing::Test::HasNonfatalFailure()) {
        return;  // the seed line above reproduces this exact round
      }
    }
  }
  std::fprintf(stderr, "[ fuzz ] %d geometry rounds\n", rounds);
}

}  // namespace
}  // namespace cluster
}  // namespace sop
