// Shared helpers for the libsop test suite.
//
// The centerpiece is ExpectedResults(): an independent reimplementation of
// the normative window/emission semantics (DESIGN.md Sec. 2) plus brute-
// force neighbor counting, used as the oracle every detector — including
// NaiveDetector — is checked against.

#ifndef SOP_TESTS_TEST_UTIL_H_
#define SOP_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/point.h"
#include "sop/detector/detector.h"
#include "sop/detector/driver.h"
#include "sop/query/workload.h"
#include "sop/stream/window.h"

namespace sop {
namespace testing {

/// Builds a 1-D point list from values; timestamps default to 0,1,2,...
inline std::vector<Point> Points1D(const std::vector<double>& values) {
  std::vector<Point> points;
  points.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    points.emplace_back(static_cast<Seq>(i), static_cast<Timestamp>(i),
                        std::vector<double>{values[i]});
  }
  return points;
}

/// Builds a 1-D point list with explicit timestamps.
inline std::vector<Point> Points1D(const std::vector<Timestamp>& times,
                                   const std::vector<double>& values) {
  std::vector<Point> points;
  points.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    points.emplace_back(static_cast<Seq>(i), times[i],
                        std::vector<double>{values[i]});
  }
  return points;
}

/// One-line rendering of a QueryResult for failure messages.
inline std::string ResultToString(const QueryResult& r) {
  std::ostringstream out;
  out << "q" << r.query_index << "@" << r.boundary << ":{";
  for (size_t i = 0; i < r.outliers.size(); ++i) {
    if (i > 0) out << ",";
    out << r.outliers[i];
  }
  out << "}";
  return out.str();
}

/// Independent oracle: replays the normative batching/emission schedule
/// over `points` (seqs are reassigned 0..n-1) and computes each emission's
/// outliers by brute force.
std::vector<QueryResult> ExpectedResults(const Workload& workload,
                                         std::vector<Point> points);

/// Asserts two result lists are identical (order, boundaries, outliers).
inline void ExpectSameResults(const std::vector<QueryResult>& expected,
                              const std::vector<QueryResult>& actual,
                              const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label << ": emission count";
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].query_index, actual[i].query_index)
        << label << " emission " << i;
    EXPECT_EQ(expected[i].boundary, actual[i].boundary)
        << label << " emission " << i;
    EXPECT_EQ(expected[i].outliers, actual[i].outliers)
        << label << " emission " << i << "\n  expected "
        << ResultToString(expected[i]) << "\n  actual   "
        << ResultToString(actual[i]);
  }
}

/// Parameters for a seeded fuzz/sweep loop. Every randomized suite in the
/// repo draws its seed and time budget through AnnouncedFuzzParams so the
/// replay contract is uniform: the seed is printed unconditionally (pass
/// or fail), SOP_FUZZ_SEED pins it for replay, SOP_FUZZ_MS stretches the
/// budget (soak runs).
struct FuzzParams {
  uint64_t seed = 0;
  int64_t budget_ms = 0;
};

inline FuzzParams AnnouncedFuzzParams(const char* label,
                                      int64_t default_budget_ms) {
  FuzzParams params;
  const char* seed_env = std::getenv("SOP_FUZZ_SEED");
  params.seed = seed_env != nullptr
                    ? std::strtoull(seed_env, nullptr, 10)
                    : (static_cast<uint64_t>(std::random_device{}()) << 32) ^
                          std::random_device{}();
  const char* ms_env = std::getenv("SOP_FUZZ_MS");
  params.budget_ms =
      ms_env != nullptr ? std::atoll(ms_env) : default_budget_ms;
  std::fprintf(stderr,
               "[ fuzz ] %s seed=%llu budget=%lldms "
               "(replay with SOP_FUZZ_SEED=%llu)\n",
               label, static_cast<unsigned long long>(params.seed),
               static_cast<long long>(params.budget_ms),
               static_cast<unsigned long long>(params.seed));
  return params;
}

/// Runs `detector` over `points` and checks it against the oracle.
inline void ExpectMatchesOracle(const Workload& workload,
                                const std::vector<Point>& points,
                                OutlierDetector* detector,
                                const std::string& label) {
  std::vector<QueryResult> expected = ExpectedResults(workload, points);
  std::vector<QueryResult> actual =
      CollectResults(workload, points, detector);
  ExpectSameResults(expected, actual, label);
}

}  // namespace testing
}  // namespace sop

#endif  // SOP_TESTS_TEST_UTIL_H_
