// Deterministic simulation suite (DESIGN.md Sec. 18): SopServer,
// SopClient and SopRouter run unmodified on sop::sim's in-memory
// transport and virtual clock, and the headline serving invariants are
// re-run under seeded fault schedules:
//
//   * loopback equivalence on the simulated transport, both window types,
//   * failover == uninterrupted run under seeded latency spikes, with the
//     kill point drawn from the seed,
//   * exactly-once resume across a mid-frame connection cut at a seeded
//     byte offset, in either direction,
//   * routed == single-node across a seeded worker-connection cut,
//   * worker partition -> honest degradation -> exact sequence-map
//     realignment after heal (the outage contract with no restarts: the
//     network died, not the worker),
//   * a known-bad schedule (duplicated ingest frame) replays
//     BIT-IDENTICALLY from its seed — same divergence, same transcript,
//   * the idle-timeout and replication-ack-timeout paths driven purely by
//     virtual time.
//
// There are ZERO wall-clock sleeps in this file: waits either poll with
// yields (wall time bounds liveness only) or advance the virtual clock.
//
// Every seeded test announces its seed unconditionally; replay a failure
// with SOP_FUZZ_SEED=<seed> SOP_SIM_SEEDS=1. SOP_SIM_SEEDS widens the
// sweeps, SOP_FUZZ_MS keeps them running on a time budget, and
// SimSoak.SeedSweep (gated on SOP_SOAK; see tools/soak_sim.sh) runs
// hundreds of seeds and records failing ones as artifacts.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "sop/cluster/partition.h"
#include "sop/cluster/router.h"
#include "sop/common/random.h"
#include "sop/detector/driver.h"
#include "sop/detector/factory.h"
#include "sop/net/client.h"
#include "sop/net/protocol.h"
#include "sop/net/server.h"
#include "sop/net/socket.h"
#include "sop/sim/sim.h"
#include "sop/stream/window.h"
#include "test_util.h"

namespace sop {
namespace {

using cluster::PartitionSpec;
using cluster::RouterOptions;
using cluster::RouterStats;
using cluster::SopRouter;
using net::IngestAckMsg;
using net::ReconnectOptions;
using net::ServerOptions;
using net::ServerRole;
using net::SopClient;
using net::SopServer;
using sim::FaultRule;
using sim::ScopedSim;
using sim::SimNet;

/// Polls `pred` until true, yielding between polls — never sleeping. Wall
/// time bounds liveness only; all simulated waiting goes through the
/// virtual clock.
bool YieldUntil(const std::function<bool()>& pred, int64_t wall_ms = 20000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wall_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

/// SOP_SIM_SEEDS overrides a sweep's seed-count floor.
int64_t SimSeedsOr(int64_t dflt) {
  const char* env = std::getenv("SOP_SIM_SEEDS");
  return env != nullptr ? std::atoll(env) : dflt;
}

/// Runs `drill` over `min_seeds` consecutive seeds from the announced
/// base (then keeps going while the SOP_FUZZ_MS budget lasts), stopping
/// at the first failing seed so the trace pins it.
void SweepSeeds(const char* label, int64_t min_seeds,
                const std::function<void(uint64_t)>& drill) {
  const testing::FuzzParams fuzz = testing::AnnouncedFuzzParams(label, 0);
  const int64_t floor_seeds = SimSeedsOr(min_seeds);
  const auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0;; ++i) {
    if (i >= floor_seeds) {
      const int64_t elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      if (elapsed_ms >= fuzz.budget_ms) break;
    }
    const uint64_t seed = fuzz.seed + static_cast<uint64_t>(i);
    SCOPED_TRACE(std::string(label) + ": replay with SOP_FUZZ_SEED=" +
                 std::to_string(seed) + " SOP_SIM_SEEDS=1");
    drill(seed);
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "[ sim ] %s FAILING seed=%llu\n", label,
                   static_cast<unsigned long long>(seed));
      return;
    }
  }
}

/// Same stream shape as ha_test/cluster_test: a unit-variance cluster
/// with ~5% spikes at +-8.
std::vector<Point> GenPoints(size_t n, bool time_windows, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    if (time_windows) {
      t += 1 + static_cast<Timestamp>(rng.NextBelow(2));
      if (i % 97 == 96) t += 35;
    } else {
      t = static_cast<Timestamp>(i);
    }
    double v = rng.Normal(0.0, 1.0);
    if (rng.Bernoulli(0.05)) v += rng.Bernoulli(0.5) ? 8.0 : -8.0;
    points.emplace_back(static_cast<Seq>(i), t, std::vector<double>{v});
  }
  return points;
}

struct Batch {
  std::vector<Point> points;
  int64_t boundary = 0;
};

std::vector<Batch> SliceCount(const std::vector<Point>& points,
                              int64_t span) {
  std::vector<Batch> batches;
  int64_t shipped = 0;
  const size_t step = static_cast<size_t>(span);
  for (size_t start = 0; start + step <= points.size(); start += step) {
    Batch b;
    b.points.assign(points.begin() + static_cast<int64_t>(start),
                    points.begin() + static_cast<int64_t>(start + step));
    shipped += span;
    b.boundary = shipped;
    batches.push_back(std::move(b));
  }
  return batches;
}

std::vector<Batch> SliceTime(const std::vector<Point>& points, int64_t span) {
  std::vector<Batch> batches;
  int64_t boundary = FirstBoundaryAtOrAfter(points.front().time + 1, span);
  std::vector<Point> cur;
  for (const Point& p : points) {
    while (p.time >= boundary) {
      batches.push_back({std::move(cur), boundary});
      cur = {};
      boundary += span;
    }
    cur.push_back(p);
  }
  if (!cur.empty()) batches.push_back({std::move(cur), boundary});
  return batches;
}

std::vector<Batch> Slice(const Workload& workload,
                         const std::vector<Point>& points) {
  return workload.window_type() == WindowType::kCount
             ? SliceCount(points, workload.SlideGcd())
             : SliceTime(points, workload.SlideGcd());
}

std::vector<OutlierQuery> TestQueries(bool time_windows) {
  if (time_windows) {
    return {OutlierQuery(1.5, 4, 80, 20), OutlierQuery(2.0, 3, 120, 30)};
  }
  return {OutlierQuery(1.5, 4, 100, 50), OutlierQuery(2.0, 3, 150, 50)};
}

/// Sorts results by (boundary, query index) — resume replay is per-query,
/// so interleaving at a recovery seam can legally differ from the live
/// order (see ha_test.cc for the full argument).
void Canonicalize(std::vector<QueryResult>* results) {
  std::stable_sort(results->begin(), results->end(),
                   [](const QueryResult& a, const QueryResult& b) {
                     if (a.boundary != b.boundary) {
                       return a.boundary < b.boundary;
                     }
                     return a.query_index < b.query_index;
                   });
}

void ExpectNoDuplicates(const std::vector<QueryResult>& results,
                        const std::string& label) {
  std::set<std::pair<size_t, int64_t>> seen;
  for (const QueryResult& r : results) {
    EXPECT_TRUE(seen.insert({r.query_index, r.boundary}).second)
        << label << ": duplicate emission q" << r.query_index << "@"
        << r.boundary;
  }
}

std::vector<QueryResult> Oracle(const Workload& workload,
                                const std::vector<Point>& points) {
  std::unique_ptr<OutlierDetector> detector = CreateDetector("sop", workload);
  return CollectResults(workload, points, detector.get());
}

// --- loopback equivalence on the simulated transport ---------------------

// The base case: with no fault rules, the sim transport is just a wire —
// a subscribe-ingest-collect loop over it matches the engine exactly.
TEST(SimTest, LoopbackMatchesEngineBothWindowTypes) {
  for (const bool time_windows : {false, true}) {
    const std::string label =
        std::string("sim loopback/") + (time_windows ? "time" : "count");
    Workload workload(time_windows ? WindowType::kTime : WindowType::kCount);
    const std::vector<OutlierQuery> queries = TestQueries(time_windows);
    for (const OutlierQuery& q : queries) workload.AddQuery(q);
    ASSERT_EQ(workload.Validate(), "");
    const std::vector<Point> points =
        GenPoints(time_windows ? 240 : 320, time_windows, /*seed=*/3);
    const std::vector<Batch> batches = Slice(workload, points);
    const std::vector<QueryResult> expected = Oracle(workload, points);

    SimNet sim(/*seed=*/1);
    ScopedSim armed(&sim);
    ServerOptions options;
    options.window_type = workload.window_type();
    SopServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << label << ": " << error;

    SopClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error))
        << label << ": " << error;
    std::map<int64_t, size_t> index_of;
    for (size_t i = 0; i < queries.size(); ++i) {
      const int64_t id = client.Subscribe(queries[i], &error);
      ASSERT_GT(id, 0) << label << ": " << error;
      index_of[id] = i;
    }
    std::vector<QueryResult> actual;
    for (const Batch& b : batches) {
      IngestAckMsg ack;
      ASSERT_TRUE(client.Ingest(b.boundary, b.points, &ack, &error))
          << label << ": " << error;
      EXPECT_EQ(ack.accepted, b.points.size()) << label;
      for (const net::EmissionMsg& e : client.TakeEmissions()) {
        ASSERT_TRUE(index_of.count(e.query_id) != 0) << label;
        EXPECT_FALSE(e.degraded) << label << " @" << e.boundary;
        QueryResult r;
        r.query_index = index_of[e.query_id];
        r.boundary = e.boundary;
        r.outliers = e.outliers;
        actual.push_back(std::move(r));
      }
    }
    client.Close();
    server.Stop();
    testing::ExpectSameResults(expected, actual, label);
    EXPECT_EQ(sim.stats().refused_connects, 0u) << label;
  }
}

// --- failover equivalence under seeded schedules --------------------------

// One failover drill on the sim: primary replicating to a hot standby, a
// reconnecting client, the primary killed before a seed-chosen batch,
// seeded latency spikes on every channel. The delivered sequence must
// equal an uninterrupted run's for every seed.
void FailoverDrill(uint64_t seed) {
  Workload workload(WindowType::kCount);
  const std::vector<OutlierQuery> queries = TestQueries(false);
  for (const OutlierQuery& q : queries) workload.AddQuery(q);
  const std::vector<Point> points = GenPoints(320, false, /*seed=*/11);
  const std::vector<Batch> batches = Slice(workload, points);
  ASSERT_GT(batches.size(), 3u);
  std::vector<QueryResult> expected = Oracle(workload, points);

  SimNet sim(seed);
  ScopedSim armed(&sim);
  Rng rng(seed);
  // Latency spikes everywhere: a quarter of all segments, anywhere in the
  // fabric (client<->primary and the replication chain), arrive up to
  // ~20 simulated ms late. Readers starved behind a spike advance the
  // clock to the release themselves, so no driver pumping is needed.
  FaultRule delay;
  delay.action = FaultRule::Action::kDelay;
  delay.rate = 0.25;
  delay.delay_us = 500 + static_cast<int64_t>(rng.NextBelow(20000));
  sim.AddRule(delay);
  const size_t kill_at =
      1 + static_cast<size_t>(rng.NextBelow(
              static_cast<uint64_t>(batches.size()) - 1));

  std::string error;
  ServerOptions standby_options;
  standby_options.standby = true;
  standby_options.promote_on_loss = true;
  SopServer standby(standby_options);
  ASSERT_TRUE(standby.Start(&error)) << error;

  ServerOptions primary_options;
  primary_options.replicate_host = "127.0.0.1";
  primary_options.replicate_port = standby.port();
  SopServer primary(primary_options);
  ASSERT_TRUE(primary.Start(&error)) << error;

  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", primary.port(), &error)) << error;
  ReconnectOptions ropt;
  ropt.endpoints = {{"127.0.0.1", primary.port()},
                    {"127.0.0.1", standby.port()}};
  // Virtual backoffs cost no wall time but also buy the standby none:
  // promotion happens on real threads, so the recovery loop must spin
  // (yielding) until it does — buy attempts instead of backoff.
  ropt.max_attempts = 200000;
  ropt.backoff_initial_ms = 1;
  ropt.backoff_max_ms = 1;
  ropt.ingest_replay = batches.size() + 1;
  client.EnableReconnect(ropt);

  std::map<int64_t, size_t> index_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    const int64_t id = client.Subscribe(queries[i], &error);
    ASSERT_GT(id, 0) << error;
    index_of[id] = i;
  }
  std::vector<QueryResult> actual;
  for (size_t i = 0; i < batches.size(); ++i) {
    if (i == kill_at) {
      // Replication is asynchronous to client acks: kill only once the
      // standby has applied everything acked so far, or (under CPU
      // contention) the repl thread may never have shipped a frame — and
      // a standby that never saw a replication connection has no loss to
      // promote on.
      ASSERT_TRUE(YieldUntil([&] {
        return standby.stats().last_boundary >= batches[i - 1].boundary;
      })) << "standby never caught up to batch " << (i - 1);
      primary.Kill();
    }
    IngestAckMsg ack;
    ASSERT_TRUE(
        client.Ingest(batches[i].boundary, batches[i].points, &ack, &error))
        << "batch " << i << ": " << error;
    EXPECT_EQ(ack.accepted, batches[i].points.size()) << "batch " << i;
    for (const net::EmissionMsg& e : client.TakeEmissions()) {
      ASSERT_TRUE(index_of.count(e.query_id) != 0);
      QueryResult r;
      r.query_index = index_of[e.query_id];
      r.boundary = e.boundary;
      r.outliers = e.outliers;
      actual.push_back(std::move(r));
    }
  }
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_EQ(standby.role(), ServerRole::kPrimary);
  EXPECT_EQ(standby.stats().promotions, 1u);
  client.Close();
  standby.Stop();

  ExpectNoDuplicates(actual, "sim failover");
  Canonicalize(&expected);
  Canonicalize(&actual);
  testing::ExpectSameResults(expected, actual, "sim failover");
}

TEST(SimTest, FailoverMatchesUninterruptedRunManySeeds) {
  SweepSeeds("sim failover", /*min_seeds=*/3, FailoverDrill);
}

// --- exactly-once resume across a scheduled cut ---------------------------

// A single server, a reconnecting client, and one mid-frame connection
// cut at a seeded byte offset in a seeded direction: the client must ride
// it out with exactly-once delivery — resume replay fills what the cut
// swallowed, high-water dedup drops what it duplicated.
void ExactlyOnceCutDrill(uint64_t seed) {
  Workload workload(WindowType::kCount);
  const std::vector<OutlierQuery> queries = TestQueries(false);
  for (const OutlierQuery& q : queries) workload.AddQuery(q);
  const std::vector<Point> points = GenPoints(320, false, /*seed=*/17);
  const std::vector<Batch> batches = Slice(workload, points);
  std::vector<QueryResult> expected = Oracle(workload, points);

  SimNet sim(seed);
  ScopedSim armed(&sim);
  std::string error;
  ServerOptions options;
  SopServer server(options);
  ASSERT_TRUE(server.Start(&error)) << error;

  // The schedule: one truncation cut, skipping the 3-segment handshake
  // (hello + two subscribes and their acks) so it always lands in the
  // ingest/emission era of a channel that still has traffic coming.
  Rng rng(seed);
  FaultRule cut;
  cut.action = FaultRule::Action::kTruncate;
  cut.dst_port = server.port();
  cut.direction = rng.Bernoulli(0.5) ? +1 : -1;
  cut.skip_segments = 3 + rng.NextBelow(5);
  cut.truncate_at = static_cast<size_t>(rng.NextBelow(96));
  cut.max_applications = 1;
  sim.AddRule(cut);

  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  ReconnectOptions ropt;
  ropt.endpoints = {{"127.0.0.1", server.port()}};
  ropt.max_attempts = 1000;
  ropt.backoff_initial_ms = 1;
  ropt.backoff_max_ms = 1;
  ropt.ingest_replay = batches.size() + 1;
  client.EnableReconnect(ropt);

  std::map<int64_t, size_t> index_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    const int64_t id = client.Subscribe(queries[i], &error);
    ASSERT_GT(id, 0) << error;
    index_of[id] = i;
  }
  std::vector<QueryResult> actual;
  for (const Batch& b : batches) {
    IngestAckMsg ack;
    ASSERT_TRUE(client.Ingest(b.boundary, b.points, &ack, &error))
        << "batch @" << b.boundary << ": " << error;
    EXPECT_EQ(ack.accepted, b.points.size()) << "@" << b.boundary;
    for (const net::EmissionMsg& e : client.TakeEmissions()) {
      ASSERT_TRUE(index_of.count(e.query_id) != 0);
      QueryResult r;
      r.query_index = index_of[e.query_id];
      r.boundary = e.boundary;
      r.outliers = e.outliers;
      actual.push_back(std::move(r));
    }
  }
  EXPECT_EQ(sim.stats().truncated, 1u) << "the cut never fired";
  EXPECT_GE(client.reconnects(), 1u);
  client.Close();
  server.Stop();

  ExpectNoDuplicates(actual, "sim cut");
  Canonicalize(&expected);
  Canonicalize(&actual);
  testing::ExpectSameResults(expected, actual, "sim cut");
}

TEST(SimTest, ExactlyOnceResumeAcrossScheduledCut) {
  SweepSeeds("sim cut", /*min_seeds=*/4, ExactlyOnceCutDrill);
}

// --- routed equivalence across a scheduled worker cut ---------------------

// The cluster plane on the sim: a seeded truncation cut on one worker's
// connection, transparent recovery by the router's worker client, and the
// merged stream must still equal the single-node run — merge-exact, not
// just eventually consistent.
void RoutedCutDrill(uint64_t seed) {
  Workload workload(WindowType::kCount);
  const std::vector<OutlierQuery> queries = TestQueries(false);
  for (const OutlierQuery& q : queries) workload.AddQuery(q);
  const std::vector<Point> points = GenPoints(320, false, /*seed=*/23);
  const std::vector<Batch> batches = Slice(workload, points);
  const std::vector<QueryResult> expected = Oracle(workload, points);

  SimNet sim(seed);
  ScopedSim armed(&sim);
  std::string error;
  std::vector<std::unique_ptr<SopServer>> workers;
  RouterOptions ro;
  ro.window_type = WindowType::kCount;
  ro.worker_reconnect.max_attempts = 1000;
  ro.worker_reconnect.backoff_initial_ms = 1;
  ro.worker_reconnect.backoff_max_ms = 1;
  for (int i = 0; i < 2; ++i) {
    ServerOptions wo;
    wo.window_type = WindowType::kTime;  // workers always serve time
    wo.history_window = 1 << 14;
    auto worker = std::make_unique<SopServer>(wo);
    ASSERT_TRUE(worker->Start(&error)) << error;
    ro.workers.push_back({"127.0.0.1", worker->port()});
    workers.push_back(std::move(worker));
  }
  ro.partition = PartitionSpec::Uniform(-6.0, 6.0, 2);
  SopRouter router(ro);
  ASSERT_TRUE(router.Start(&error)) << error;

  // One cut on a seed-chosen worker channel. Skipping 4 segments clears
  // hello + subscribes + shard config, so the cut lands in the batch era
  // (a 6-batch run gives every channel 10+ segments).
  Rng rng(seed);
  const size_t victim = static_cast<size_t>(rng.NextBelow(2));
  FaultRule cut;
  cut.action = FaultRule::Action::kTruncate;
  cut.dst_port = workers[victim]->port();
  cut.direction = rng.Bernoulli(0.5) ? +1 : -1;
  cut.skip_segments = 4 + rng.NextBelow(5);
  cut.truncate_at = static_cast<size_t>(rng.NextBelow(160));
  cut.max_applications = 1;
  sim.AddRule(cut);

  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port(), &error)) << error;
  std::map<int64_t, size_t> index_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    const int64_t id = client.Subscribe(queries[i], &error);
    ASSERT_GT(id, 0) << error;
    index_of[id] = i;
  }
  std::vector<QueryResult> actual;
  for (const Batch& b : batches) {
    IngestAckMsg ack;
    ASSERT_TRUE(client.Ingest(b.boundary, b.points, &ack, &error))
        << "batch @" << b.boundary << ": " << error;
    EXPECT_EQ(ack.accepted, b.points.size()) << "@" << b.boundary;
    for (const net::EmissionMsg& e : client.TakeEmissions()) {
      ASSERT_TRUE(index_of.count(e.query_id) != 0);
      EXPECT_FALSE(e.degraded) << "@" << e.boundary;
      QueryResult r;
      r.query_index = index_of[e.query_id];
      r.boundary = e.boundary;
      r.outliers = e.outliers;
      actual.push_back(std::move(r));
    }
  }
  client.Close();
  router.Stop();
  for (std::unique_ptr<SopServer>& w : workers) w->Stop();

  EXPECT_EQ(sim.stats().truncated, 1u) << "the cut never fired";
  const RouterStats stats = router.stats();
  EXPECT_GE(stats.worker_reconnects, 1u);
  EXPECT_EQ(stats.worker_failures, 0u);
  EXPECT_FALSE(stats.degraded);
  testing::ExpectSameResults(expected, actual, "sim routed cut");
}

TEST(SimTest, RoutedMatchesEngineUnderScheduledCuts) {
  SweepSeeds("sim routed cut", /*min_seeds=*/3, RoutedCutDrill);
}

// --- worker partition: degrade honestly, realign exactly ------------------

// The outage contract, network-death edition: the worker stays up but its
// port is partitioned and its connections cut, so the router's bounded
// recovery fails and the stream degrades honestly; after Heal the next
// fan-out reconnects, and the recovered ack's arrival counter
// (IngestAckMsg::next_seq) realigns the shard's local->global sequence
// map exactly — emissions past the hole match the single-node run,
// global seqs included. Unlike cluster_test's kill/restart variant, no
// process dies and no checkpoint is involved: this isolates the seq-map
// realignment to pure network faults.
TEST(SimTest, WorkerPartitionDegradesThenRealignsExactly) {
  Workload workload(WindowType::kCount);
  const std::vector<OutlierQuery> queries = TestQueries(false);
  for (const OutlierQuery& q : queries) workload.AddQuery(q);
  ASSERT_EQ(workload.Validate(), "");
  const std::vector<Point> points = GenPoints(800, false, /*seed=*/77);
  const std::vector<Batch> batches = SliceCount(points, 50);
  ASSERT_EQ(batches.size(), 16u);
  const std::vector<QueryResult> expected = Oracle(workload, points);

  SimNet sim(/*seed=*/5);
  ScopedSim armed(&sim);
  std::string error;
  std::vector<std::unique_ptr<SopServer>> workers;
  RouterOptions ro;
  ro.window_type = WindowType::kCount;
  // Tight recovery bounds: while the victim is unreachable its client
  // gives up in (virtual) milliseconds — this drives the degraded path.
  ro.worker_reconnect.max_attempts = 3;
  ro.worker_reconnect.backoff_initial_ms = 1;
  ro.worker_reconnect.backoff_max_ms = 2;
  for (int i = 0; i < 2; ++i) {
    ServerOptions wo;
    wo.window_type = WindowType::kTime;
    wo.history_window = 1 << 14;
    auto worker = std::make_unique<SopServer>(wo);
    ASSERT_TRUE(worker->Start(&error)) << error;
    ro.workers.push_back({"127.0.0.1", worker->port()});
    workers.push_back(std::move(worker));
  }
  ro.partition = PartitionSpec::Uniform(-6.0, 6.0, 2);
  SopRouter router(ro);
  ASSERT_TRUE(router.Start(&error)) << error;

  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", router.port(), &error)) << error;
  std::map<int64_t, size_t> index_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    const int64_t id = client.Subscribe(queries[i], &error);
    ASSERT_GT(id, 0) << error;
    index_of[id] = i;
  }

  const int victim_port = workers[1]->port();
  const size_t down_bi = batches.size() / 2;  // routed into the outage
  const int64_t hole_end = batches[down_bi].boundary;
  std::vector<QueryResult> actual;
  bool saw_degraded_hole = false;
  for (size_t bi = 0; bi < batches.size(); ++bi) {
    if (bi == down_bi) {
      // Full network outage for the victim: partition first (reconnects
      // refused), then cut (peers fail fast instead of blocking on
      // swallowed segments).
      sim.Partition(victim_port);
      sim.CutConnections(victim_port);
    }
    if (bi == down_bi + 1) sim.Heal(victim_port);
    IngestAckMsg ack;
    ASSERT_TRUE(
        client.Ingest(batches[bi].boundary, batches[bi].points, &ack, &error))
        << "batch " << bi << ": " << error;
    EXPECT_EQ(ack.accepted, batches[bi].points.size()) << "batch " << bi;
    if (bi == down_bi) {
      EXPECT_TRUE(router.stats().degraded);
    }
    for (const net::EmissionMsg& e : client.TakeEmissions()) {
      ASSERT_TRUE(index_of.count(e.query_id) != 0);
      if (e.boundary == hole_end) {
        EXPECT_TRUE(e.degraded) << "@" << e.boundary;
        saw_degraded_hole = true;
        continue;
      }
      if (e.boundary < hole_end) {
        EXPECT_FALSE(e.degraded) << "@" << e.boundary;
      }
      QueryResult r;
      r.query_index = index_of[e.query_id];
      r.boundary = e.boundary;
      r.outliers = e.outliers;
      actual.push_back(std::move(r));
    }
  }
  EXPECT_TRUE(saw_degraded_hole);

  // Exact before the outage, and exact again once every window clears the
  // hole (max window 150); in between the victim's window is genuinely
  // incomplete and is not compared.
  const int64_t clean = hole_end + 150;
  const auto slice = [](const std::vector<QueryResult>& in, int64_t lo,
                        int64_t hi) {
    std::vector<QueryResult> out;
    for (const QueryResult& r : in) {
      if (r.boundary >= lo && r.boundary < hi) out.push_back(r);
    }
    return out;
  };
  testing::ExpectSameResults(slice(expected, 0, hole_end),
                             slice(actual, 0, hole_end), "partition prefix");
  const std::vector<QueryResult> expected_tail =
      slice(expected, clean, INT64_MAX);
  testing::ExpectSameResults(expected_tail, slice(actual, clean, INT64_MAX),
                             "partition tail");
  size_t tail_outliers = 0;
  for (const QueryResult& r : expected_tail) {
    tail_outliers += r.outliers.size();
  }
  EXPECT_GT(tail_outliers, 0u);

  const RouterStats stats = router.stats();
  EXPECT_GE(stats.worker_failures, 1u);
  EXPECT_GE(stats.worker_reconnects, 1u);
  EXPECT_FALSE(stats.degraded);
  client.Close();
  router.Stop();
  for (std::unique_ptr<SopServer>& w : workers) w->Stop();
}

// --- bit-identical replay of a known-bad schedule -------------------------

// Runs one subscribe-ingest-collect session and returns a full transcript
// of everything the client observed: per-batch ack outcomes, every
// emission, every server diagnostic. With `bad`, the schedule duplicates
// the second ingest frame — the server refuses the replayed boundary and
// the stale ack shifts every later Ingest()'s view, a deterministic
// protocol divergence.
std::string RunTranscript(uint64_t seed, bool bad) {
  Workload workload(WindowType::kCount);
  const std::vector<OutlierQuery> queries = TestQueries(false);
  for (const OutlierQuery& q : queries) workload.AddQuery(q);
  const std::vector<Point> points = GenPoints(320, false, /*seed=*/13);
  const std::vector<Batch> batches = Slice(workload, points);

  SimNet sim(seed);
  ScopedSim armed(&sim);
  if (bad) {
    // Client->server segments: hello(1), subscribe(2), subscribe(3),
    // ingest(4...). Skipping 4 duplicates the second ingest frame.
    FaultRule dup;
    dup.action = FaultRule::Action::kDuplicate;
    dup.direction = +1;
    dup.skip_segments = 4;
    dup.max_applications = 1;
    sim.AddRule(dup);
  }
  std::string transcript;
  std::string error;
  ServerOptions options;
  SopServer server(options);
  EXPECT_TRUE(server.Start(&error)) << error;
  SopClient client;  // no reconnect: the divergence must surface raw
  EXPECT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  std::map<int64_t, size_t> index_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    const int64_t id = client.Subscribe(queries[i], &error);
    EXPECT_GT(id, 0) << error;
    index_of[id] = i;
  }
  for (const Batch& b : batches) {
    IngestAckMsg ack;
    const bool ok = client.Ingest(b.boundary, b.points, &ack, &error);
    transcript += "b" + std::to_string(b.boundary) +
                  ":ok=" + std::to_string(ok ? 1 : 0) +
                  ",acc=" + std::to_string(ack.accepted) +
                  ",ackb=" + std::to_string(ack.boundary) + "\n";
    if (!ok) break;
    for (const net::EmissionMsg& e : client.TakeEmissions()) {
      transcript += "  e q" + std::to_string(index_of.count(e.query_id) != 0
                                                 ? index_of[e.query_id]
                                                 : 999) +
                    "@" + std::to_string(e.boundary) + " n=" +
                    std::to_string(e.outliers.size()) +
                    (e.degraded ? " D" : "") + "\n";
    }
    for (const net::ErrorMsg& err : client.TakeErrors()) {
      transcript += "  err " + err.message + "\n";
    }
  }
  if (bad) {
    EXPECT_EQ(sim.stats().duplicated, 1u) << "the schedule never fired";
  }
  client.Close();
  server.Stop();
  return transcript;
}

// The reproducibility contract the whole harness exists for: the same
// seed replays the same corruption at the same byte and the same
// observable divergence, run after run — a failing schedule logged by any
// sweep is a deterministic repro, not a flake.
TEST(SimTest, KnownBadScheduleReplaysBitIdentically) {
  const uint64_t seed = 42;
  const std::string first = RunTranscript(seed, /*bad=*/true);
  const std::string second = RunTranscript(seed, /*bad=*/true);
  const std::string clean = RunTranscript(seed, /*bad=*/false);
  EXPECT_FALSE(first.empty());
  // Same seed, same schedule -> byte-identical observable history.
  EXPECT_EQ(first, second);
  // And it is a real divergence, not a no-op schedule.
  EXPECT_NE(first, clean);
  // The divergence is the documented one: a refused duplicate boundary.
  EXPECT_NE(first.find("err"), std::string::npos);
  EXPECT_NE(first.find("acc=0"), std::string::npos);
  EXPECT_EQ(clean.find("err"), std::string::npos);
  EXPECT_EQ(clean.find("acc=0"), std::string::npos);
}

// --- virtual-clock timeout paths ------------------------------------------

// The slow-loris defense on simulated time: a connection stalled
// mid-frame is disconnected once the virtual clock passes the idle
// timeout, and a quiet-but-healthy subscriber survives an hour-long
// virtual pause. Ported from ha_test, which could only afford to wait
// 300 wall-milliseconds for the quiet half; here it costs nothing.
TEST(SimTest, IdleTimeoutFiresOnVirtualClockOnly) {
  SimNet sim(/*seed=*/7);
  ScopedSim armed(&sim);
  ServerOptions options;
  options.idle_timeout_ms = 5000;
  SopServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Slow loris: half a ping frame, then silence.
  net::Socket loris = net::ConnectTcp("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(loris.valid()) << error;
  const net::NetRetryOptions retry;
  const std::string frame = net::EncodePing(net::PingMsg{});
  const std::string half = frame.substr(0, frame.size() / 2);
  ASSERT_TRUE(net::SendAll(loris, half, retry, &error)) << error;
  ASSERT_TRUE(YieldUntil(
      [&] { return server.stats().bytes_in >= half.size(); }));
  // The reader recomputes its deadline at each recv, so keep advancing
  // past the timeout until one of those deadlines fires.
  ASSERT_TRUE(YieldUntil([&] {
    sim.AdvanceMillis(5001);
    return server.stats().idle_disconnects >= 1;
  }));
  char buf[64];
  int64_t n;
  do {
    n = net::RecvSome(loris, buf, sizeof buf, retry, &error);
  } while (n > 0);
  EXPECT_LE(n, 0);  // the server hung up on it

  // A healthy client that goes quiet for a virtual hour — no partial
  // frame pending — is never timed out.
  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  sim.AdvanceMillis(60 * 60 * 1000);
  EXPECT_GT(client.Subscribe(OutlierQuery(1.0, 2, 100, 50), &error), 0)
      << error;
  client.Close();
  server.Stop();
  EXPECT_EQ(server.stats().idle_disconnects, 1u);
}

// A standby without promote_on_loss keeps standing by after the primary
// is gone for good — through a long virtual wait, not the 100 wall-ms
// ha_test could afford.
TEST(SimTest, StandbyWithoutPromotionStaysStandbyOnVirtualClock) {
  SimNet sim(/*seed=*/8);
  ScopedSim armed(&sim);
  std::string error;
  ServerOptions standby_options;
  standby_options.standby = true;  // no promote_on_loss
  SopServer standby(standby_options);
  ASSERT_TRUE(standby.Start(&error)) << error;

  ServerOptions primary_options;
  primary_options.replicate_host = "127.0.0.1";
  primary_options.replicate_port = standby.port();
  SopServer primary(primary_options);
  ASSERT_TRUE(primary.Start(&error)) << error;

  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", primary.port(), &error)) << error;
  const std::vector<Point> points = GenPoints(32, false, /*seed=*/83);
  IngestAckMsg ack;
  ASSERT_TRUE(client.Ingest(32, points, &ack, &error)) << error;
  ASSERT_EQ(ack.accepted, points.size());
  ASSERT_TRUE(YieldUntil(
      [&] { return standby.stats().repl_batches_applied >= 1; }));
  client.Close();
  primary.Stop();

  // Minutes of virtual time after the replication chain died, across
  // plenty of real scheduling quanta: still a standby.
  for (int i = 0; i < 100; ++i) {
    sim.AdvanceMillis(6000);
    std::this_thread::yield();
  }
  EXPECT_EQ(standby.role(), ServerRole::kStandby);
  EXPECT_EQ(standby.stats().promotions, 0u);
  EXPECT_EQ(standby.stats().last_boundary, 32);
  standby.Stop();
}

// The replication-ack deadline on simulated time: partition the standby
// so a replicated batch is swallowed mid-chain, advance the clock past
// repl_ack_timeout_ms, heal — the primary must declare the link dead,
// reconnect, and resync with a fresh snapshot carrying the swallowed
// batch. The wall clock never enters into it.
TEST(SimTest, ReplAckTimeoutResyncsOnVirtualClock) {
  SimNet sim(/*seed=*/9);
  ScopedSim armed(&sim);
  std::string error;
  ServerOptions standby_options;
  standby_options.standby = true;
  SopServer standby(standby_options);
  ASSERT_TRUE(standby.Start(&error)) << error;

  ServerOptions primary_options;
  primary_options.replicate_host = "127.0.0.1";
  primary_options.replicate_port = standby.port();
  ASSERT_EQ(primary_options.repl_ack_timeout_ms, 2000);  // the path under test
  SopServer primary(primary_options);
  ASSERT_TRUE(primary.Start(&error)) << error;

  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", primary.port(), &error)) << error;
  const std::vector<Point> points = GenPoints(150, false, /*seed=*/91);
  const std::vector<Batch> batches = SliceCount(points, 50);
  ASSERT_EQ(batches.size(), 3u);

  // Healthy chain first: batch 1 replicates normally.
  IngestAckMsg ack;
  ASSERT_TRUE(
      client.Ingest(batches[0].boundary, batches[0].points, &ack, &error))
      << error;
  ASSERT_TRUE(YieldUntil(
      [&] { return standby.stats().repl_batches_applied >= 1; }));

  // Partition (swallow, no cut): batch 2's replication frame vanishes in
  // flight and the primary blocks on an ack that will never come.
  sim.Partition(standby.port());
  ASSERT_TRUE(
      client.Ingest(batches[1].boundary, batches[1].points, &ack, &error))
      << error;
  ASSERT_TRUE(YieldUntil(
      [&] { return sim.stats().partition_dropped >= 1; }));

  // Heal, then advance simulated time until the ack deadline fires. Only
  // the timeout can break the wait — the swallowed frame is gone — so the
  // snapshot resync below proves the deadline ran on the virtual clock.
  // (A healthy chain never ships a snapshot: the first batch starts it
  // from scratch, so snapshots_sent > 0 IS the timeout firing.)
  sim.Heal(standby.port());
  ASSERT_TRUE(YieldUntil([&] {
    sim.AdvanceMillis(500);
    return primary.stats().repl_snapshots_sent >= 1;
  }));
  // The fresh snapshot carries the swallowed batch.
  ASSERT_TRUE(YieldUntil([&] {
    return standby.stats().last_boundary == batches[1].boundary;
  }));
  EXPECT_GE(standby.stats().repl_snapshots_applied, 1u);

  // And the chain streams batches again after the resync.
  ASSERT_TRUE(
      client.Ingest(batches[2].boundary, batches[2].points, &ack, &error))
      << error;
  ASSERT_TRUE(YieldUntil([&] {
    return standby.stats().last_boundary == batches[2].boundary;
  }));
  client.Close();
  primary.Stop();
  standby.Stop();
}

// --- soak sweep (nightly; gated) ------------------------------------------

// Hundreds of seeds across the three seeded drills. Gated on SOP_SOAK so
// tier-1 ctest stays fast; tools/soak_sim.sh runs it with artifacts. The
// heavier drills (failover, routed) run every 8th seed to bound the
// sweep's wall time; the exactly-once cut drill runs on every seed.
TEST(SimSoak, SeedSweep) {
  if (std::getenv("SOP_SOAK") == nullptr) {
    GTEST_SKIP() << "set SOP_SOAK=1 (tools/soak_sim.sh) to run the sweep";
  }
  const testing::FuzzParams fuzz = testing::AnnouncedFuzzParams("sim soak", 0);
  const int64_t seeds = SimSeedsOr(200);
  std::vector<uint64_t> failing;
  const ::testing::TestResult* result =
      ::testing::UnitTest::GetInstance()->current_test_info()->result();
  for (int64_t i = 0; i < seeds; ++i) {
    const uint64_t seed = fuzz.seed + static_cast<uint64_t>(i);
    const int before = result->total_part_count();
    {
      SCOPED_TRACE("soak: replay with SOP_FUZZ_SEED=" + std::to_string(seed) +
                   " SOP_SIM_SEEDS=1");
      ExactlyOnceCutDrill(seed);
      if (i % 8 == 0) {
        FailoverDrill(seed);
        RoutedCutDrill(seed);
      }
    }
    if (result->total_part_count() > before) {
      failing.push_back(seed);
      std::fprintf(stderr, "[ sim ] soak FAILING seed=%llu\n",
                   static_cast<unsigned long long>(seed));
    }
  }
  std::fprintf(stderr, "[ sim ] soak swept %lld seeds, %zu failing\n",
               static_cast<long long>(seeds), failing.size());
  const char* dir = std::getenv("SOP_SOAK_ARTIFACTS");
  if (dir != nullptr && !failing.empty()) {
    const std::string path = std::string(dir) + "/failing_seeds.txt";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      for (const uint64_t seed : failing) {
        std::fprintf(f, "SOP_FUZZ_SEED=%llu SOP_SIM_SEEDS=1\n",
                     static_cast<unsigned long long>(seed));
      }
      std::fclose(f);
      std::fprintf(stderr, "[ sim ] failing seeds written to %s\n",
                   path.c_str());
    }
  }
}

}  // namespace
}  // namespace sop
