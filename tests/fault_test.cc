// Tests for the fault-injection toolkit (common/fault.h), the checksum
// framing (common/frame.h), the policy-enforcing source wrapper
// (stream/sanitize.h), and the engine's resilience behaviours: retry
// equivalence under injected transient failures and overload degradation
// with a bounded batch queue.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/fault.h"
#include "sop/common/frame.h"
#include "sop/common/random.h"
#include "sop/detector/engine.h"
#include "sop/detector/factory.h"
#include "sop/stream/sanitize.h"
#include "test_util.h"

namespace sop {
namespace {

using testing::ExpectSameResults;

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjectorTest, SameSeedReplaysTheSameSchedule) {
  FaultInjector a(42);
  FaultInjector b(42);
  a.SetRate(FaultSite::kSourceRead, 0.3);
  b.SetRate(FaultSite::kSourceRead, 0.3);
  a.SetRate(FaultSite::kSinkEmit, 0.3);
  b.SetRate(FaultSite::kSinkEmit, 0.3);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.ShouldFail(FaultSite::kSourceRead),
              b.ShouldFail(FaultSite::kSourceRead))
        << "source-read draw " << i;
    EXPECT_EQ(a.ShouldFail(FaultSite::kSinkEmit),
              b.ShouldFail(FaultSite::kSinkEmit))
        << "sink-emit draw " << i;
  }
  EXPECT_GT(a.injected(FaultSite::kSourceRead), 0);
  EXPECT_EQ(a.consulted(FaultSite::kSourceRead), 2000);
}

TEST(FaultInjectorTest, SitesDrawFromIndependentStreams) {
  // Interleaving draws at one site must not perturb another site's
  // schedule: site decisions are a pure function of (seed, site, index).
  FaultInjector interleaved(7);
  FaultInjector solo(7);
  interleaved.SetRate(FaultSite::kSourceRead, 0.5);
  interleaved.SetRate(FaultSite::kCheckpointWrite, 0.5);
  solo.SetRate(FaultSite::kSourceRead, 0.5);
  std::vector<bool> with_noise;
  std::vector<bool> without_noise;
  for (int i = 0; i < 500; ++i) {
    interleaved.ShouldFail(FaultSite::kCheckpointWrite);  // noise draws
    with_noise.push_back(interleaved.ShouldFail(FaultSite::kSourceRead));
    without_noise.push_back(solo.ShouldFail(FaultSite::kSourceRead));
  }
  EXPECT_EQ(with_noise, without_noise);
}

TEST(FaultInjectorTest, MaxFailuresCapsInjection) {
  FaultInjector injector(3);
  injector.SetRate(FaultSite::kSinkEmit, 1.0);
  injector.SetMaxFailures(FaultSite::kSinkEmit, 5);
  int64_t failures = 0;
  for (int i = 0; i < 100; ++i) {
    if (injector.ShouldFail(FaultSite::kSinkEmit)) ++failures;
  }
  EXPECT_EQ(failures, 5);
  EXPECT_EQ(injector.injected(FaultSite::kSinkEmit), 5);
  EXPECT_EQ(injector.consulted(FaultSite::kSinkEmit), 100);
}

TEST(FaultInjectorTest, CorruptBytesFlipsExactlyOneBit) {
  FaultInjector injector(11);
  const std::string original(64, '\0');
  for (int round = 0; round < 20; ++round) {
    std::string bytes = original;
    injector.CorruptBytes(&bytes);
    int flipped_bits = 0;
    for (size_t i = 0; i < bytes.size(); ++i) {
      unsigned char diff = static_cast<unsigned char>(bytes[i]) ^
                           static_cast<unsigned char>(original[i]);
      while (diff != 0) {
        flipped_bits += diff & 1;
        diff >>= 1;
      }
    }
    EXPECT_EQ(flipped_bits, 1) << "round " << round;
  }
  std::string empty;
  injector.CorruptBytes(&empty);  // must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(FaultInjectorTest, ArmingIsScopedAndOptIn) {
  EXPECT_EQ(FaultInjector::Armed(), nullptr);
  FaultInjector injector(1);
  {
    ScopedFaultInjection armed(&injector);
    EXPECT_EQ(FaultInjector::Armed(), &injector);
  }
  EXPECT_EQ(FaultInjector::Armed(), nullptr);
}

// ---------------------------------------------------------------------------
// Frame

TEST(FrameTest, Crc32MatchesTheStandardCheckValue) {
  // The IEEE 802.3 reflected CRC-32 of "123456789" is the canonical check
  // value; matching it pins the exact polynomial/reflection/final-xor.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
}

TEST(FrameTest, WrapUnwrapRoundTrips) {
  const std::vector<std::string> payloads = {std::string(), std::string("x"),
                                             std::string(1000, '\xab')};
  for (const std::string& payload : payloads) {
    const std::string framed = WrapFrame(payload);
    EXPECT_EQ(framed.size(), payload.size() + 20);
    std::string_view unwrapped;
    std::string error;
    ASSERT_TRUE(UnwrapFrame(framed, &unwrapped, &error)) << error;
    EXPECT_EQ(unwrapped, payload);
  }
}

TEST(FrameTest, RejectsTruncationTrailingBytesAndBitFlips) {
  const std::string framed = WrapFrame("resilient payload");
  std::string_view payload;
  std::string error;
  for (size_t len = 0; len < framed.size(); ++len) {
    EXPECT_FALSE(UnwrapFrame(framed.substr(0, len), &payload, &error))
        << "accepted truncation to " << len;
  }
  EXPECT_FALSE(UnwrapFrame(framed + "y", &payload, &error));
  for (size_t byte = 0; byte < framed.size(); ++byte) {
    std::string mutated = framed;
    mutated[byte] ^= 0x10;
    EXPECT_FALSE(UnwrapFrame(mutated, &payload, &error))
        << "accepted flip in byte " << byte;
    EXPECT_FALSE(error.empty());
  }
}

// ---------------------------------------------------------------------------
// SanitizingSource

std::vector<Point> DirtyStream() {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Point> points;
  points.emplace_back(0, 10, std::vector<double>{1.0, 2.0});
  points.emplace_back(0, 11, std::vector<double>{nan, 2.0});    // non-finite
  points.emplace_back(0, 12, std::vector<double>{3.0});         // wrong dims
  points.emplace_back(0, 5, std::vector<double>{4.0, 4.0});     // time goes back
  points.emplace_back(0, 13, std::vector<double>{5.0, 6.0});
  return points;
}

TEST(SanitizingSourceTest, SkipQuarantineDropsAndCounts) {
  VectorSource inner(DirtyStream());
  SanitizingSource source(&inner, RecordPolicy::kSkipQuarantine);
  std::vector<Point> out;
  Point p;
  while (source.Next(&p)) out.push_back(p);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].time, 10);
  EXPECT_EQ(out[1].time, 13);
  EXPECT_EQ(source.stats().accepted, 2u);
  EXPECT_EQ(source.stats().quarantined, 3u);
  EXPECT_TRUE(source.error().empty());
}

TEST(SanitizingSourceTest, ClampRepairFixesWhatItCanDropsTheRest) {
  VectorSource inner(DirtyStream());
  SanitizingSource source(&inner, RecordPolicy::kClampRepair);
  std::vector<Point> out;
  Point p;
  while (source.Next(&p)) out.push_back(p);
  // The non-finite value and the time regression are repairable; the
  // dimensionality change is not.
  ASSERT_EQ(out.size(), 4u);
  Timestamp last = out.front().time;
  for (const Point& q : out) {
    EXPECT_GE(q.time, last);
    last = q.time;
    ASSERT_EQ(q.values.size(), 2u);
    for (double v : q.values) EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(source.stats().repaired, 2u);
  EXPECT_EQ(source.stats().quarantined, 1u);
}

TEST(SanitizingSourceTest, FailFastEndsTheStreamWithADiagnostic) {
  VectorSource inner(DirtyStream());
  SanitizingSource source(&inner, RecordPolicy::kFailFast);
  std::vector<Point> out;
  Point p;
  while (source.Next(&p)) out.push_back(p);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_FALSE(source.error().empty());
  EXPECT_NE(source.error().find("record 1"), std::string::npos)
      << source.error();
  EXPECT_FALSE(source.Next(&p)) << "stream must stay terminated";
}

// ---------------------------------------------------------------------------
// Engine resilience

Workload RetryWorkload() {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.0, 2, 16, 4));
  w.AddQuery(OutlierQuery(2.0, 3, 24, 8));
  return w;
}

std::vector<Point> RetryStream(int64_t n) {
  Rng rng(99);
  std::vector<Point> points;
  for (Seq s = 0; s < n; ++s) {
    const double v =
        rng.Bernoulli(0.15) ? rng.UniformDouble(0, 40) : rng.Normal(12, 1.0);
    points.emplace_back(s, s, std::vector<double>{v});
  }
  return points;
}

TEST(EngineResilienceTest, InjectedTransientFailuresDoNotChangeResults) {
  const Workload w = RetryWorkload();
  const std::vector<Point> points = RetryStream(160);

  ExecutionEngine engine;
  std::unique_ptr<OutlierDetector> clean_detector = CreateDetector("sop", w);
  std::vector<QueryResult> clean;
  const RunMetrics clean_metrics =
      engine.Run(w, points, clean_detector.get(),
                 [&clean](const QueryResult& r) { clean.push_back(r); });

  FaultInjector injector(2026);
  injector.SetRate(FaultSite::kSourceRead, 0.2);
  injector.SetMaxFailures(FaultSite::kSourceRead, 40);
  injector.SetRate(FaultSite::kSinkEmit, 0.2);
  injector.SetMaxFailures(FaultSite::kSinkEmit, 20);
  ScopedFaultInjection armed(&injector);

  std::unique_ptr<OutlierDetector> faulty_detector = CreateDetector("sop", w);
  std::vector<QueryResult> faulty;
  const RunMetrics faulty_metrics =
      engine.Run(w, points, faulty_detector.get(),
                 [&faulty](const QueryResult& r) { faulty.push_back(r); });

  EXPECT_GT(injector.injected(FaultSite::kSourceRead), 0);
  EXPECT_GT(injector.injected(FaultSite::kSinkEmit), 0);
  ExpectSameResults(clean, faulty, "retried run");
  EXPECT_EQ(clean_metrics.num_batches, faulty_metrics.num_batches);
  EXPECT_EQ(clean_metrics.total_outliers, faulty_metrics.total_outliers);
}

TEST(EngineResilienceTest, BlockingQueueIsLossless) {
  const Workload w = RetryWorkload();
  const std::vector<Point> points = RetryStream(160);

  ExecutionEngine serial;
  std::unique_ptr<OutlierDetector> serial_detector = CreateDetector("mcod", w);
  std::vector<QueryResult> expected;
  serial.Run(w, points, serial_detector.get(),
             [&expected](const QueryResult& r) { expected.push_back(r); });

  ExecOptions options;
  options.overload.max_queue_batches = 3;
  options.overload.policy = OverloadPolicy::kBlock;
  ExecutionEngine pipelined(options);
  std::unique_ptr<OutlierDetector> detector = CreateDetector("mcod", w);
  std::vector<QueryResult> actual;
  const RunMetrics metrics =
      pipelined.Run(w, points, detector.get(),
                    [&actual](const QueryResult& r) { actual.push_back(r); });

  EXPECT_EQ(metrics.shed_batches, 0u);
  EXPECT_EQ(metrics.degraded_emissions, 0u);
  ExpectSameResults(expected, actual, "blocking pipeline");
}

TEST(EngineResilienceTest, DropOldestShedsAndFlagsDegradedUnderStall) {
  const Workload w = RetryWorkload();
  const std::vector<Point> points = RetryStream(400);

  FaultInjector injector(5);
  injector.SetRate(FaultSite::kBatchStall, 1.0);
  injector.SetStallMillis(3);
  ScopedFaultInjection armed(&injector);

  ExecOptions options;
  options.overload.max_queue_batches = 2;
  options.overload.policy = OverloadPolicy::kDropOldest;
  ExecutionEngine engine(options);
  std::unique_ptr<OutlierDetector> detector = CreateDetector("sop", w);
  uint64_t degraded_seen = 0;
  const RunMetrics metrics = engine.Run(
      w, points, detector.get(), [&degraded_seen](const QueryResult& r) {
        if (r.degraded) ++degraded_seen;
      });

  // With every batch stalled and a 2-deep queue, ingest overruns detection
  // and the oldest batches are shed; windows spanning the shed data are
  // flagged.
  EXPECT_GT(metrics.shed_batches, 0u);
  EXPECT_GT(metrics.shed_points, 0u);
  EXPECT_GT(metrics.degraded_emissions, 0u);
  EXPECT_EQ(metrics.degraded_emissions, degraded_seen);
  EXPECT_GT(injector.injected(FaultSite::kBatchStall), 0);
}

TEST(EngineResilienceTest, TimeBasedSheddingKeepsTheEmissionCadence) {
  Workload w(WindowType::kTime);
  w.AddQuery(OutlierQuery(1.0, 2, 16, 4));
  w.AddQuery(OutlierQuery(2.0, 3, 24, 8));
  const std::vector<Point> points = RetryStream(400);  // time == seq

  ExecutionEngine serial;
  std::unique_ptr<OutlierDetector> serial_detector = CreateDetector("mcod", w);
  std::vector<QueryResult> baseline;
  serial.Run(w, points, serial_detector.get(),
             [&baseline](const QueryResult& r) { baseline.push_back(r); });

  FaultInjector injector(6);
  injector.SetRate(FaultSite::kBatchStall, 1.0);
  injector.SetStallMillis(3);
  ScopedFaultInjection armed(&injector);

  ExecOptions options;
  options.overload.max_queue_batches = 2;
  options.overload.policy = OverloadPolicy::kDropOldest;
  ExecutionEngine engine(options);
  std::unique_ptr<OutlierDetector> detector = CreateDetector("mcod", w);
  std::vector<QueryResult> degraded_run;
  const RunMetrics metrics = engine.Run(
      w, points, detector.get(),
      [&degraded_run](const QueryResult& r) { degraded_run.push_back(r); });

  EXPECT_GT(metrics.shed_batches, 0u);
  // Shed time spans still advance the windows (empty filler batches), so
  // the emission schedule — which queries fire at which boundaries — is
  // identical to the lossless run even though the answers may differ.
  ASSERT_EQ(baseline.size(), degraded_run.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].query_index, degraded_run[i].query_index);
    EXPECT_EQ(baseline[i].boundary, degraded_run[i].boundary);
  }
}

}  // namespace
}  // namespace sop
