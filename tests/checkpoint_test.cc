// Tests for SopDetector checkpoint save/restore.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/random.h"
#include "sop/core/sop_detector.h"
#include "test_util.h"

namespace sop {
namespace {

using testing::ResultToString;

Workload TestWorkload() {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.0, 2, 16, 4));
  w.AddQuery(OutlierQuery(2.5, 4, 24, 8));
  w.AddQuery(OutlierQuery(1.5, 3, 8, 4));
  return w;
}

std::vector<Point> TestStream(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (Seq s = 0; s < n; ++s) {
    const double v = rng.Bernoulli(0.2) ? rng.UniformDouble(0, 30)
                                        : rng.Normal(10, 0.8);
    points.emplace_back(s, s, std::vector<double>{v});
  }
  return points;
}

// Advances `detector` over batches [from_batch, to_batch) of `points`
// (batch span = slide gcd), appending emissions to `out`.
void Drive(SopDetector* detector, const std::vector<Point>& points,
           int64_t batch_span, int64_t from_batch, int64_t to_batch,
           std::vector<QueryResult>* out) {
  for (int64_t b = from_batch; b < to_batch; ++b) {
    std::vector<Point> batch(
        points.begin() + static_cast<size_t>(b * batch_span),
        points.begin() + static_cast<size_t>((b + 1) * batch_span));
    std::vector<QueryResult> results =
        detector->Advance(std::move(batch), (b + 1) * batch_span);
    if (out != nullptr) {
      out->insert(out->end(), results.begin(), results.end());
    }
  }
}

TEST(CheckpointTest, RestoredDetectorContinuesIdentically) {
  const Workload w = TestWorkload();
  const int64_t span = w.SlideGcd();
  const std::vector<Point> points = TestStream(96, 11);
  const int64_t total_batches = static_cast<int64_t>(points.size()) / span;
  const int64_t half = total_batches / 2;

  // Reference: one detector over the whole stream.
  SopDetector reference(w);
  std::vector<QueryResult> expected;
  Drive(&reference, points, span, 0, total_batches, &expected);

  // Checkpointed: run half, save, restore into a new detector, finish.
  SopDetector first_half(w);
  std::vector<QueryResult> actual;
  Drive(&first_half, points, span, 0, half, &actual);
  const std::string blob = first_half.SaveState();

  SopDetector second_half(w);
  ASSERT_TRUE(second_half.LoadState(blob));
  Drive(&second_half, points, span, half, total_batches, &actual);

  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].query_index, actual[i].query_index);
    EXPECT_EQ(expected[i].boundary, actual[i].boundary);
    EXPECT_EQ(expected[i].outliers, actual[i].outliers)
        << ResultToString(expected[i]) << " vs " << ResultToString(actual[i]);
  }
  // Internal state carried over: safety flags and counters.
  EXPECT_EQ(second_half.stats().ksky_scans, reference.stats().ksky_scans);
  EXPECT_EQ(second_half.stats().safe_points_discovered,
            reference.stats().safe_points_discovered);
}

TEST(CheckpointTest, RoundTripPreservesEvidence) {
  const Workload w = TestWorkload();
  const int64_t span = w.SlideGcd();
  const std::vector<Point> points = TestStream(48, 3);
  SopDetector original(w);
  Drive(&original, points, span, 0,
        static_cast<int64_t>(points.size()) / span, nullptr);

  SopDetector restored(w);
  ASSERT_TRUE(restored.LoadState(original.SaveState()));
  for (Seq s = 0; s < static_cast<Seq>(points.size()); ++s) {
    ASSERT_EQ(original.IsAliveForTesting(s), restored.IsAliveForTesting(s));
    if (!original.IsAliveForTesting(s)) continue;
    EXPECT_EQ(original.IsSafeForTesting(s), restored.IsSafeForTesting(s));
    EXPECT_EQ(original.SkybandForTesting(s).entries(),
              restored.SkybandForTesting(s).entries());
  }
  // A restored detector's own checkpoint is byte-identical.
  EXPECT_EQ(original.SaveState(), restored.SaveState());
}

TEST(CheckpointTest, RejectsCorruptedBlobs) {
  const Workload w = TestWorkload();
  SopDetector original(w);
  Drive(&original, TestStream(48, 5), w.SlideGcd(), 0, 12, nullptr);
  const std::string blob = original.SaveState();

  {
    SopDetector d(w);
    EXPECT_FALSE(d.LoadState(""));
  }
  {
    SopDetector d(w);
    EXPECT_FALSE(d.LoadState(std::string_view(blob).substr(0, 16)));
  }
  {
    std::string truncated = blob.substr(0, blob.size() - 3);
    SopDetector d(w);
    EXPECT_FALSE(d.LoadState(truncated));
  }
  {
    std::string extra = blob + "x";
    SopDetector d(w);
    EXPECT_FALSE(d.LoadState(extra));
  }
  {
    std::string bad_magic = blob;
    bad_magic[0] = static_cast<char>(~bad_magic[0]);
    SopDetector d(w);
    EXPECT_FALSE(d.LoadState(bad_magic));
  }
}

TEST(CheckpointTest, RejectsDifferentWorkload) {
  const Workload w = TestWorkload();
  SopDetector original(w);
  Drive(&original, TestStream(48, 7), w.SlideGcd(), 0, 12, nullptr);
  const std::string blob = original.SaveState();

  Workload other = TestWorkload();
  other.AddQuery(OutlierQuery(3.0, 5, 16, 4));
  SopDetector d(other);
  EXPECT_FALSE(d.LoadState(blob));
}

TEST(CheckpointTest, FingerprintDistinguishesWorkloads) {
  const Workload a = TestWorkload();
  Workload b = TestWorkload();
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.AddQuery(OutlierQuery(9.0, 2, 8, 4));
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  Workload c(WindowType::kTime);
  c.AddQuery(a.query(0));
  c.AddQuery(a.query(1));
  c.AddQuery(a.query(2));
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

}  // namespace
}  // namespace sop
