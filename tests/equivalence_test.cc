// Cross-detector equivalence property suite.
//
// For randomized workloads spanning every Table-1 case (A)-(G) and
// randomized streams (clustered inliers + uniform noise), every detector
// must produce exactly the oracle's outliers at every emission. This is
// the strongest correctness check in the repository: it exercises varying
// r, k, win and slide simultaneously, partial windows, hopping windows,
// duplicate queries, ties, and both window types.

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/random.h"
#include "sop/detector/driver.h"
#include "sop/detector/factory.h"
#include "test_util.h"

namespace sop {
namespace {

using testing::ExpectedResults;
using testing::ExpectSameResults;

// Scaled-down analog of gen::GenerateWorkload: the full Table-2 ranges
// would make the oracle quadratically slow, so tests use miniature ranges
// with the same structure.
Workload RandomWorkload(char wcase, size_t num_queries, WindowType type,
                        uint64_t seed) {
  const bool vary_r = wcase == 'A' || wcase == 'C' || wcase == 'G';
  const bool vary_k = wcase == 'B' || wcase == 'C' || wcase == 'G';
  const bool vary_win = wcase == 'D' || wcase == 'F' || wcase == 'G';
  const bool vary_slide = wcase == 'E' || wcase == 'F' || wcase == 'G';
  Rng rng(seed);
  Workload w(type);
  for (size_t i = 0; i < num_queries; ++i) {
    OutlierQuery q;
    q.r = vary_r ? rng.UniformDouble(0.2, 3.0) : 1.0;
    q.k = vary_k ? rng.UniformInt(1, 8) : 3;
    q.win = vary_win ? rng.UniformInt(2, 10) * 4 : 16;
    q.slide = vary_slide ? rng.UniformInt(1, 6) * 2 : 4;
    w.AddQuery(q);
  }
  return w;
}

// Clustered inliers with uniform noise; 2-D; timestamps advance by 0-2 per
// point (ties and gaps included) so time windows get exercised too.
std::vector<Point> RandomStream(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  Timestamp t = 0;
  for (int64_t i = 0; i < n; ++i) {
    t += rng.UniformInt(0, 2);
    std::vector<double> values(2);
    if (rng.Bernoulli(0.15)) {
      values[0] = rng.UniformDouble(0.0, 20.0);
      values[1] = rng.UniformDouble(0.0, 20.0);
    } else {
      const double cx = rng.Bernoulli(0.5) ? 5.0 : 12.0;
      values[0] = rng.Normal(cx, 0.8);
      values[1] = rng.Normal(cx, 0.8);
    }
    points.emplace_back(static_cast<Seq>(i), t, std::move(values));
  }
  return points;
}

struct EquivalenceCase {
  char wcase;
  WindowType type;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<EquivalenceCase>& info) {
  std::string name(1, info.param.wcase);
  name += info.param.type == WindowType::kCount ? "Count" : "Time";
  name += "Seed" + std::to_string(info.param.seed);
  return name;
}

class EquivalenceTest : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EquivalenceTest, AllDetectorsMatchOracle) {
  const EquivalenceCase param = GetParam();
  const Workload workload =
      RandomWorkload(param.wcase, /*num_queries=*/7, param.type,
                     param.seed * 31 + 1);
  const std::vector<Point> points = RandomStream(140, param.seed * 97 + 5);
  const std::vector<QueryResult> expected = ExpectedResults(workload, points);
  for (const char* kind :
       {"naive", "sop", "leap",
        "mcod"}) {
    std::unique_ptr<OutlierDetector> detector =
        CreateDetector(kind, workload);
    ExpectSameResults(
        expected, CollectResults(workload, points, detector.get()),
        std::string(kind) + "/" + CaseName({param, 0}));
  }
}

std::vector<EquivalenceCase> AllCases() {
  std::vector<EquivalenceCase> cases;
  for (char wcase = 'A'; wcase <= 'G'; ++wcase) {
    for (const WindowType type : {WindowType::kCount, WindowType::kTime}) {
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        cases.push_back({wcase, type, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Workloads, EquivalenceTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// Single-query agreement over a sweep of (r, k) pattern parameters — the
// Fig. 10(a)-style small-workload sanity check.
class SingleQuerySweepTest
    : public ::testing::TestWithParam<std::tuple<double, int64_t>> {};

TEST_P(SingleQuerySweepTest, SopMatchesOracle) {
  const auto [r, k] = GetParam();
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(r, k, 20, 5));
  const std::vector<Point> points = RandomStream(120, 77);
  const std::vector<QueryResult> expected = ExpectedResults(w, points);
  std::unique_ptr<OutlierDetector> sop = CreateDetector("sop", w);
  ExpectSameResults(expected, CollectResults(w, points, sop.get()),
                    "single-query sop");
}

INSTANTIATE_TEST_SUITE_P(
    PatternParameters, SingleQuerySweepTest,
    ::testing::Combine(::testing::Values(0.3, 1.0, 2.5, 8.0),
                       ::testing::Values<int64_t>(1, 3, 10)));

// Duplicate and near-duplicate queries must not confuse the shared plan.
TEST(EquivalenceEdgeTest, DuplicateQueries) {
  Workload w(WindowType::kCount);
  for (int i = 0; i < 4; ++i) w.AddQuery(OutlierQuery(1.0, 3, 16, 4));
  w.AddQuery(OutlierQuery(1.0, 3, 16, 8));
  const std::vector<Point> points = RandomStream(100, 13);
  const std::vector<QueryResult> expected = ExpectedResults(w, points);
  for (const char* kind :
       {"sop", "leap", "mcod"}) {
    std::unique_ptr<OutlierDetector> d = CreateDetector(kind, w);
    ExpectSameResults(expected, CollectResults(w, points, d.get()),
                      std::string("dup/") + kind);
  }
}

// k larger than any window population: everything is an outlier.
TEST(EquivalenceEdgeTest, KExceedsWindow) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(100.0, 50, 8, 4));
  const std::vector<Point> points = RandomStream(40, 3);
  const std::vector<QueryResult> expected = ExpectedResults(w, points);
  for (const char* kind :
       {"sop", "leap", "mcod"}) {
    std::unique_ptr<OutlierDetector> d = CreateDetector(kind, w);
    ExpectSameResults(expected, CollectResults(w, points, d.get()),
                      std::string("bigk/") + kind);
  }
}

// Huge r: every pair is a neighbor; nobody is an outlier once windows hold
// more than k points.
TEST(EquivalenceEdgeTest, HugeR) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1e9, 2, 8, 4));
  const std::vector<Point> points = RandomStream(40, 4);
  const std::vector<QueryResult> expected = ExpectedResults(w, points);
  for (const char* kind :
       {"sop", "leap", "mcod"}) {
    std::unique_ptr<OutlierDetector> d = CreateDetector(kind, w);
    ExpectSameResults(expected, CollectResults(w, points, d.get()),
                      std::string("huger/") + kind);
  }
}

// Identical points (all distances zero) stress tie handling.
TEST(EquivalenceEdgeTest, AllIdenticalPoints) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(0.5, 3, 8, 4));
  w.AddQuery(OutlierQuery(0.5, 9, 8, 4));
  std::vector<Point> points;
  for (Seq s = 0; s < 32; ++s) points.emplace_back(s, s, std::vector{1.0, 1.0});
  const std::vector<QueryResult> expected = ExpectedResults(w, points);
  for (const char* kind :
       {"sop", "leap", "mcod"}) {
    std::unique_ptr<OutlierDetector> d = CreateDetector(kind, w);
    ExpectSameResults(expected, CollectResults(w, points, d.get()),
                      std::string("identical/") + kind);
  }
}

// Distances exactly equal to r are neighbors (Def. 1: dist <= r).
TEST(EquivalenceEdgeTest, DistanceExactlyR) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.0, 1, 4, 2));
  // 1-D points at 0 and exactly 1 apart.
  std::vector<Point> points;
  for (Seq s = 0; s < 8; ++s) {
    points.emplace_back(s, s, std::vector<double>{s % 2 == 0 ? 0.0 : 1.0});
  }
  const std::vector<QueryResult> expected = ExpectedResults(w, points);
  for (const char* kind :
       {"sop", "leap", "mcod"}) {
    std::unique_ptr<OutlierDetector> d = CreateDetector(kind, w);
    std::vector<QueryResult> actual = CollectResults(w, points, d.get());
    ExpectSameResults(expected, actual,
                      std::string("exact-r/") + kind);
    // And nothing is an outlier: everyone has a neighbor at distance 1.
    for (const QueryResult& r : actual) EXPECT_TRUE(r.outliers.empty());
  }
}

}  // namespace
}  // namespace sop
