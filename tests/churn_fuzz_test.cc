// Workload-churn fuzz: randomized AddQuery/RemoveQuery/Advance
// interleavings through SopSession, for every factory detector and both
// window types. After every batch the session's emissions must be
// identical to those of a fresh detector compiled from the then-current
// workload and replayed over the full stream — i.e. no workload change may
// leave any trace in the answers, whether the session realized it as an
// overlay swap or as rebuild-and-replay.
//
// Time-bounded; the seed is logged so any failure replays exactly.
// SOP_FUZZ_MS extends the budget (check.sh runs ~2s); SOP_FUZZ_SEED pins
// the seed.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/random.h"
#include "sop/core/session.h"
#include "sop/detector/factory.h"
#include "test_util.h"

namespace sop {
namespace {

// One emission in a form comparable across the session (query ids) and a
// plain detector (workload indices mapped back to ids).
struct Emission {
  QueryId id;
  int64_t boundary;
  std::vector<Seq> outliers;

  bool operator==(const Emission& other) const {
    return id == other.id && boundary == other.boundary &&
           outliers == other.outliers;
  }
};

std::string EmissionToString(const Emission& e) {
  std::string s = "id " + std::to_string(e.id) + " @ " +
                  std::to_string(e.boundary) + ":";
  for (const Seq seq : e.outliers) s += " " + std::to_string(seq);
  return s;
}

// All slides are multiples of kQuantum and every batch advances the
// boundary by exactly kQuantum, so boundaries stay aligned for any mix of
// registered slides (and, for count windows, equal the cumulative count).
constexpr int64_t kQuantum = 8;

OutlierQuery RandomQuery(Rng* rng) {
  static const double kRadii[] = {0.5, 0.8, 1.2, 2.0, 3.0};
  static const int64_t kKs[] = {2, 3, 5, 8};
  OutlierQuery q;
  q.r = kRadii[rng->NextBelow(5)];
  q.k = kKs[rng->NextBelow(4)];
  q.slide = kQuantum * static_cast<int64_t>(1 + rng->NextBelow(2));  // Q, 2Q
  q.win = q.slide * static_cast<int64_t>(2 + rng->NextBelow(3));     // 2..4x
  q.attribute_set = 0;
  return q;
}

// Runs one randomized churn scenario for `name` over `window_type` until
// `deadline`. The oracle is a detector built fresh from the current
// workload at every workload change and replayed over the entire stream so
// far; the session's history window is large enough that its own rebuilds
// replay the same stream, making bit-identical emissions the correct
// expectation for every change path.
void FuzzOne(const std::string& name, WindowType window_type, Rng* rng,
             std::chrono::steady_clock::time_point deadline,
             uint64_t seed) {
  const std::string label =
      name + (window_type == WindowType::kCount ? "/count" : "/time");
  SCOPED_TRACE("detector " + label + " seed " + std::to_string(seed));

  SopSession session(window_type, Metric::kEuclidean,
                     /*history_window=*/1 << 20);
  if (name != "sop" && name != "sop-grid") {
    session.SetDetectorBuilder([name](const Workload& w) {
      return CreateDetector(name, w);
    });
  } else if (name == "sop-grid") {
    SopDetector::Options options;
    options.use_grid_index = true;
    session.UseSopDetector(options);
  }

  std::map<QueryId, OutlierQuery> registered;  // mirrors the session's view
  struct Batch {
    std::vector<Point> points;
    int64_t boundary;
  };
  std::vector<Batch> stream;  // every batch advanced so far, seqs assigned
  std::unique_ptr<OutlierDetector> oracle;
  std::vector<QueryId> oracle_ids;  // oracle workload index -> query id
  bool oracle_stale = true;
  int64_t boundary = 0;
  Seq next_seq = 0;

  auto current_workload = [&]() {
    Workload w(window_type);
    for (const auto& [id, q] : registered) w.AddQuery(q);
    return w;
  };

  auto rebuild_oracle = [&]() {
    oracle.reset();
    oracle_ids.clear();
    if (registered.empty()) return;
    const Workload w = current_workload();
    oracle = CreateDetector(name, w);
    for (const auto& [id, q] : registered) oracle_ids.push_back(id);
    for (const Batch& b : stream) {
      oracle->Advance(b.points, b.boundary);  // discard pre-live emissions
    }
  };

  while (std::chrono::steady_clock::now() < deadline) {
    const uint64_t op = rng->NextBelow(4);
    if (op == 0 && registered.size() < 6) {
      const OutlierQuery q = RandomQuery(rng);
      const QueryId id = session.AddQuery(q);
      registered.emplace(id, q);
      oracle_stale = true;
    } else if (op == 1 && !registered.empty()) {
      auto it = registered.begin();
      std::advance(it, static_cast<int64_t>(rng->NextBelow(
                           registered.size())));
      ASSERT_TRUE(session.RemoveQuery(it->first));
      registered.erase(it);
      oracle_stale = true;
    } else {
      // Advance one batch. Count windows need exactly kQuantum points per
      // quantum (boundary = cumulative count); time windows take any size,
      // empty included.
      const size_t n = window_type == WindowType::kCount
                           ? static_cast<size_t>(kQuantum)
                           : static_cast<size_t>(rng->NextBelow(12));
      boundary += kQuantum;
      std::vector<Point> batch;
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const Timestamp t = boundary - kQuantum +
                            static_cast<Timestamp>(rng->NextBelow(
                                static_cast<uint64_t>(kQuantum)));
        batch.emplace_back(0, t,
                           std::vector<double>{rng->UniformDouble(0.0, 8.0)});
      }
      if (window_type == WindowType::kTime) {
        std::sort(batch.begin(), batch.end(),
                  [](const Point& a, const Point& b) {
                    return a.time < b.time;
                  });
      }
      // Arrival order fixes the seqs (the session assigns the same values).
      for (Point& p : batch) p.seq = next_seq++;

      const std::vector<SessionResult> actual_raw =
          session.Advance(batch, boundary);

      if (oracle_stale) {
        rebuild_oracle();
        oracle_stale = false;
      }
      std::vector<Emission> expected;
      if (oracle != nullptr) {
        for (const QueryResult& r : oracle->Advance(batch, boundary)) {
          expected.push_back(
              {oracle_ids[r.query_index], r.boundary, r.outliers});
        }
      }
      stream.push_back({std::move(batch), boundary});

      std::vector<Emission> actual;
      for (const SessionResult& r : actual_raw) {
        actual.push_back({r.query_id, r.boundary, r.outliers});
      }
      ASSERT_EQ(expected.size(), actual.size())
          << label << ": emission count @ " << boundary;
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(expected[i], actual[i])
            << label << " emission " << i << "\n  expected "
            << EmissionToString(expected[i]) << "\n  actual   "
            << EmissionToString(actual[i]);
      }
    }
  }
}

TEST(ChurnFuzzTest, SessionMatchesFreshDetectorUnderChurn) {
  const testing::FuzzParams fuzz =
      testing::AnnouncedFuzzParams("session churn", 400);
  const uint64_t seed = fuzz.seed;
  const int64_t budget_ms = fuzz.budget_ms;

  const std::vector<std::string>& names = KnownDetectorNames();
  const WindowType window_types[] = {WindowType::kCount, WindowType::kTime};
  const int64_t slice_ms =
      std::max<int64_t>(1, budget_ms / (static_cast<int64_t>(names.size()) *
                                        2));
  Rng rng(seed);
  for (const std::string& name : names) {
    for (const WindowType window_type : window_types) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(slice_ms);
      FuzzOne(name, window_type, &rng, deadline, seed);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace sop
