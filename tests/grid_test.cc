// Unit and property tests for the uniform grid index.

#include <algorithm>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/random.h"
#include "sop/index/grid.h"

namespace sop {
namespace {

Point MakePoint(Seq seq, std::vector<double> values) {
  return Point(seq, seq, std::move(values));
}

std::set<Seq> Candidates(const GridIndex& grid, const Point& p, double r) {
  std::set<Seq> seqs;
  grid.VisitCandidates(p, r, [&seqs](Seq s) { seqs.insert(s); });
  // The batched form must enumerate the same superset as the visitor.
  std::vector<Seq> batched;
  grid.CollectCandidates(p, r, &batched);
  EXPECT_EQ(std::set<Seq>(batched.begin(), batched.end()), seqs);
  return seqs;
}

TEST(GridIndexTest, InsertRemoveSize) {
  GridIndex grid(DistanceFn(Metric::kEuclidean), 1.0);
  const Point a = MakePoint(1, {0.5, 0.5});
  const Point b = MakePoint(2, {0.6, 0.4});
  const Point c = MakePoint(3, {5.0, 5.0});
  grid.Insert(1, a);
  grid.Insert(2, b);
  grid.Insert(3, c);
  EXPECT_EQ(grid.size(), 3u);
  grid.Remove(2, b);
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_EQ(Candidates(grid, a, 0.5), (std::set<Seq>{1}));
}

TEST(GridIndexTest, RemovingUnindexedPointDies) {
  GridIndex grid(DistanceFn(Metric::kEuclidean), 1.0);
  grid.Insert(1, MakePoint(1, {0.0}));
  EXPECT_DEATH(grid.Remove(2, MakePoint(2, {50.0})), "unindexed");
}

TEST(GridIndexTest, CandidatesAreSuperset) {
  // Every point within r must be among the candidates (no false
  // negatives), for both metrics and a radius spanning many cells.
  for (const Metric metric : {Metric::kEuclidean, Metric::kManhattan}) {
    const DistanceFn dist(metric);
    GridIndex grid(dist, 0.7);
    Rng rng(404);
    std::vector<Point> points;
    for (Seq s = 0; s < 400; ++s) {
      points.push_back(MakePoint(
          s, {rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)}));
      grid.Insert(s, points.back());
    }
    for (int probe = 0; probe < 30; ++probe) {
      const Point p = MakePoint(
          1000, {rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)});
      const double r = rng.UniformDouble(0.1, 6.0);
      const std::set<Seq> candidates = Candidates(grid, p, r);
      for (const Point& q : points) {
        if (dist(p, q) <= r) {
          EXPECT_TRUE(candidates.count(q.seq))
          << "missing neighbor " << q.seq << " metric "
          << MetricName(metric);
        }
      }
    }
  }
}

TEST(GridIndexTest, CellPruningFiltersFarCells) {
  // Points far beyond r + cell diagonal must not be visited.
  GridIndex grid(DistanceFn(Metric::kEuclidean), 1.0);
  grid.Insert(1, MakePoint(1, {0.0, 0.0}));
  grid.Insert(2, MakePoint(2, {100.0, 100.0}));
  const std::set<Seq> candidates =
      Candidates(grid, MakePoint(9, {0.5, 0.5}), 2.0);
  EXPECT_TRUE(candidates.count(1));
  EXPECT_FALSE(candidates.count(2));
}

TEST(GridIndexTest, SubspaceGridIgnoresOtherAttributes) {
  // Grid over attribute {0} only: attribute 1 must not affect candidacy.
  GridIndex grid(DistanceFn(Metric::kEuclidean, {0}), 1.0);
  grid.Insert(1, MakePoint(1, {1.0, 9999.0}));
  grid.Insert(2, MakePoint(2, {50.0, 1.0}));
  const std::set<Seq> candidates =
      Candidates(grid, MakePoint(9, {1.2, -9999.0}), 1.0);
  EXPECT_TRUE(candidates.count(1));
  EXPECT_FALSE(candidates.count(2));
}

TEST(GridIndexTest, NegativeCoordinates) {
  GridIndex grid(DistanceFn(Metric::kEuclidean), 1.0);
  grid.Insert(1, MakePoint(1, {-3.4, -7.9}));
  const std::set<Seq> candidates =
      Candidates(grid, MakePoint(9, {-3.0, -8.0}), 1.0);
  EXPECT_TRUE(candidates.count(1));
}

TEST(GridIndexTest, DuplicateCoordinatesShareCell) {
  GridIndex grid(DistanceFn(Metric::kEuclidean), 1.0);
  const Point a = MakePoint(1, {2.0, 2.0});
  const Point b = MakePoint(2, {2.0, 2.0});
  grid.Insert(1, a);
  grid.Insert(2, b);
  EXPECT_EQ(Candidates(grid, a, 0.1), (std::set<Seq>{1, 2}));
  grid.Remove(1, a);
  EXPECT_EQ(Candidates(grid, b, 0.1), (std::set<Seq>{2}));
}

TEST(GridIndexTest, VisitorIsStaticallyDispatched) {
  // The visitor is taken by template parameter: a mutable lambda with
  // captured state works without any std::function wrapping, and the count
  // it accumulates matches the batched form's size.
  GridIndex grid(DistanceFn(Metric::kEuclidean), 1.0);
  for (Seq s = 0; s < 20; ++s) {
    grid.Insert(s, MakePoint(s, {static_cast<double>(s % 5) * 0.1, 0.0}));
  }
  int visited = 0;
  grid.VisitCandidates(MakePoint(99, {0.2, 0.0}), 1.0,
                       [&visited](Seq) { ++visited; });
  std::vector<Seq> batched;
  grid.CollectCandidates(MakePoint(99, {0.2, 0.0}), 1.0, &batched);
  EXPECT_EQ(static_cast<size_t>(visited), batched.size());
  EXPECT_EQ(visited, 20);
}

TEST(GridIndexTest, CollectCandidatesClearsScratch) {
  // Reused scratch buffers must not leak candidates across scans.
  GridIndex grid(DistanceFn(Metric::kEuclidean), 1.0);
  grid.Insert(1, MakePoint(1, {0.0, 0.0}));
  grid.Insert(2, MakePoint(2, {50.0, 50.0}));
  std::vector<Seq> scratch;
  grid.CollectCandidates(MakePoint(9, {0.1, 0.1}), 1.0, &scratch);
  EXPECT_EQ(scratch, (std::vector<Seq>{1}));
  grid.CollectCandidates(MakePoint(9, {50.1, 50.1}), 1.0, &scratch);
  EXPECT_EQ(scratch, (std::vector<Seq>{2}));
  grid.CollectCandidates(MakePoint(9, {-50.0, -50.0}), 1.0, &scratch);
  EXPECT_TRUE(scratch.empty());
}

TEST(GridIndexTest, MemoryBytesGrows) {
  GridIndex grid(DistanceFn(Metric::kEuclidean), 1.0);
  const size_t empty = grid.MemoryBytes();
  Rng rng(5);
  for (Seq s = 0; s < 200; ++s) {
    grid.Insert(s, MakePoint(s, {rng.UniformDouble(0, 100),
                                 rng.UniformDouble(0, 100)}));
  }
  EXPECT_GT(grid.MemoryBytes(), empty);
}

}  // namespace
}  // namespace sop
