// End-to-end tests of SopDetector on hand-checkable streams, plus behaviour
// tests (emission schedule, safe-inlier pruning, memory accounting).

#include <memory>

#include "gtest/gtest.h"
#include "sop/core/sop_detector.h"
#include "sop/detector/driver.h"
#include "test_util.h"

namespace sop {
namespace {

using testing::ExpectedResults;
using testing::ExpectMatchesOracle;
using testing::ExpectSameResults;
using testing::Points1D;

Workload SingleQuery(double r, int64_t k, int64_t win, int64_t slide) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(r, k, win, slide));
  return w;
}

TEST(SopDetectorTest, SingleQueryHandChecked) {
  // Window 4, slide 2, r=1, k=1: a point is an outlier iff no other point
  // in its window is within distance 1.
  const Workload w = SingleQuery(1.0, 1, 4, 2);
  const std::vector<Point> points =
      Points1D({0.0, 0.5, 10.0, 0.6, 20.0, 20.4});
  SopDetector detector(w);
  std::vector<QueryResult> results = CollectResults(w, points, &detector);
  ASSERT_EQ(results.size(), 3u);
  // Boundary 2: window {p0, p1}; both are mutual neighbors.
  EXPECT_TRUE(results[0].outliers.empty());
  // Boundary 4: window {p0, p1, p2, p3}; p2 (value 10) is isolated.
  EXPECT_EQ(results[1].outliers, (std::vector<Seq>{2}));
  // Boundary 6: window {p2, p3, p4, p5}; p2 and p3 isolated, p4/p5 paired.
  EXPECT_EQ(results[2].outliers, (std::vector<Seq>{2, 3}));
}

TEST(SopDetectorTest, MatchesOracleOnVaryingR) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(0.5, 2, 8, 4));
  w.AddQuery(OutlierQuery(1.5, 2, 8, 4));
  w.AddQuery(OutlierQuery(3.0, 2, 8, 4));
  const std::vector<Point> points = Points1D(
      {0.0, 1.0, 2.0, 9.0, 0.4, 1.2, 8.6, 2.2, 0.1, 5.0, 5.3, 5.2});
  SopDetector detector(w);
  ExpectMatchesOracle(w, points, &detector, "varying r");
}

TEST(SopDetectorTest, MatchesOracleOnVaryingK) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.0, 1, 8, 4));
  w.AddQuery(OutlierQuery(1.0, 3, 8, 4));
  w.AddQuery(OutlierQuery(1.0, 5, 8, 4));
  const std::vector<Point> points = Points1D(
      {0.0, 0.2, 0.4, 0.6, 5.0, 0.8, 1.0, 5.2, 1.2, 1.4, 9.0, 1.6});
  SopDetector detector(w);
  ExpectMatchesOracle(w, points, &detector, "varying k");
}

TEST(SopDetectorTest, MatchesOracleOnVaryingWindows) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.0, 2, 4, 2));
  w.AddQuery(OutlierQuery(1.0, 2, 8, 2));
  w.AddQuery(OutlierQuery(1.0, 2, 12, 2));
  const std::vector<Point> points = Points1D(
      {0.0, 0.3, 0.6, 7.0, 0.9, 1.2, 7.3, 1.5, 1.8, 2.1, 7.6, 2.4, 2.7, 3.0});
  SopDetector detector(w);
  ExpectMatchesOracle(w, points, &detector, "varying win");
}

TEST(SopDetectorTest, MatchesOracleOnVaryingSlides) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.0, 2, 6, 2));
  w.AddQuery(OutlierQuery(1.0, 2, 6, 3));
  w.AddQuery(OutlierQuery(1.0, 2, 6, 6));
  const std::vector<Point> points = Points1D(
      {0.0, 0.3, 0.6, 7.0, 0.9, 1.2, 7.3, 1.5, 1.8, 2.1, 7.6, 2.4});
  SopDetector detector(w);
  ExpectMatchesOracle(w, points, &detector, "varying slide");
}

TEST(SopDetectorTest, EmissionScheduleFollowsSlides) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.0, 1, 4, 2));  // emits at 2, 4, 6
  w.AddQuery(OutlierQuery(1.0, 1, 4, 3));  // emits at 3, 6
  SopDetector detector(w);
  std::vector<QueryResult> results =
      CollectResults(w, Points1D({0, 0, 0, 0, 0, 0}), &detector);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[0].query_index, 0u);
  EXPECT_EQ(results[0].boundary, 2);
  EXPECT_EQ(results[1].query_index, 1u);
  EXPECT_EQ(results[1].boundary, 3);
  EXPECT_EQ(results[2].boundary, 4);
  // Boundary 6: both queries, ascending query index.
  EXPECT_EQ(results[3].query_index, 0u);
  EXPECT_EQ(results[4].query_index, 1u);
  EXPECT_EQ(results[3].boundary, 6);
}

TEST(SopDetectorTest, TimeBasedWindowsMatchOracle) {
  Workload w(WindowType::kTime);
  w.AddQuery(OutlierQuery(1.0, 1, 10, 5));
  w.AddQuery(OutlierQuery(1.0, 2, 20, 10));
  // Bursty timestamps, including ties and an idle gap.
  const std::vector<Timestamp> times = {1, 2, 2, 3, 9, 9, 30, 31, 32, 33};
  const std::vector<double> values = {0.0, 0.2, 5.0, 0.4, 0.6,
                                      5.2, 0.8, 1.0, 5.4, 1.2};
  const std::vector<Point> points = Points1D(times, values);
  SopDetector detector(w);
  ExpectMatchesOracle(w, points, &detector, "time windows");
}

TEST(SopDetectorTest, SafeInlierPruningSkipsRescans) {
  // Dense stream: everything is everyone's neighbor; most points become
  // safe quickly, so scan counts stay far below points x batches.
  const Workload w = SingleQuery(5.0, 2, 20, 5);
  std::vector<double> values(100, 0.0);
  SopDetector detector(w);
  CollectResults(w, Points1D(values), &detector);
  EXPECT_GT(detector.stats().safe_points_discovered, 50);
  // Without safe pruning every alive point is rescanned every batch.
  SopDetector::Options options;
  options.safe_inlier_pruning = false;
  SopDetector no_pruning(w, options);
  CollectResults(w, Points1D(values), &no_pruning);
  EXPECT_GT(no_pruning.stats().ksky_scans, detector.stats().ksky_scans);
}

TEST(SopDetectorTest, SafePointsReleaseEvidence) {
  const Workload w = SingleQuery(5.0, 2, 20, 5);
  std::vector<double> values(40, 0.0);
  SopDetector detector(w);
  CollectResults(w, Points1D(values), &detector);
  // All alive points are safe inliers of a dense stream; their skybands
  // were released, leaving only container overhead.
  EXPECT_GT(detector.stats().safe_points_discovered, 0);
  EXPECT_LT(detector.MemoryBytes(), 4096u);
}

TEST(SopDetectorTest, AblationOptionsPreserveResults) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(0.7, 2, 8, 4));
  w.AddQuery(OutlierQuery(1.9, 4, 12, 4));
  w.AddQuery(OutlierQuery(1.1, 3, 8, 8));
  const std::vector<Point> points = Points1D(
      {0.0, 1.0, 2.0, 9.0, 0.4, 1.2, 8.6, 2.2, 0.1, 5.0, 5.3, 5.2,
       0.2, 0.9, 4.9, 9.1});
  const std::vector<QueryResult> expected = ExpectedResults(w, points);
  for (const bool safe : {true, false}) {
    for (const bool term : {true, false}) {
      for (const bool cond3 : {true, false}) {
        SopDetector::Options options;
        options.safe_inlier_pruning = safe;
        options.ksky.early_termination = term;
        options.ksky.condition3_pruning = cond3;
        SopDetector detector(w, options);
        ExpectSameResults(expected, CollectResults(w, points, &detector),
                          "ablation");
      }
    }
  }
}

TEST(SopDetectorTest, SlideLargerThanWindow) {
  // Hopping windows with gaps: win 3, slide 6.
  const Workload w = SingleQuery(1.0, 1, 3, 6);
  const std::vector<Point> points =
      Points1D({0.0, 0.1, 9.0, 4.0, 4.1, 4.2, 0.0, 0.1, 9.0, 4.0, 4.1, 4.2});
  SopDetector detector(w);
  ExpectMatchesOracle(w, points, &detector, "hopping windows");
}

TEST(SopDetectorTest, RejectsNonMonotoneBoundaries) {
  const Workload w = SingleQuery(1.0, 1, 4, 2);
  SopDetector detector(w);
  auto batch = Points1D({0.0, 1.0});
  detector.Advance(std::move(batch), 2);
  EXPECT_DEATH(detector.Advance({}, 2), "boundaries must increase");
}

}  // namespace
}  // namespace sop
