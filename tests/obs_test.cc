// Tests for the observability subsystem (sop/obs/): registry semantics,
// exporter round-trips, disabled-mode no-ops, and the core guarantee that
// enabling metrics never changes detection results.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/random.h"
#include "sop/detector/driver.h"
#include "sop/detector/engine.h"
#include "sop/detector/factory.h"
#include "sop/obs/export.h"
#include "sop/obs/metrics.h"
#include "sop/obs/trace.h"
#include "test_util.h"

namespace sop {
namespace {

using ::sop::testing::ExpectSameResults;

// Restores the runtime gate on scope exit so tests cannot leak an enabled
// registry into each other.
class ScopedObsEnabled {
 public:
  explicit ScopedObsEnabled(bool enabled) { obs::SetEnabled(enabled); }
  ~ScopedObsEnabled() { obs::SetEnabled(false); }
};

Workload SmallWorkload() {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(/*r=*/1.5, /*k=*/3, /*win=*/40, /*slide=*/10));
  w.AddQuery(OutlierQuery(/*r=*/2.5, /*k=*/5, /*win=*/20, /*slide=*/10));
  return w;
}

std::vector<Point> SmallStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double v = (i % 17 == 0) ? rng.UniformDouble(-40.0, 40.0)
                                   : rng.Normal(0.0, 1.0);
    points.emplace_back(static_cast<Seq>(i), static_cast<Timestamp>(i),
                        std::vector<double>{v});
  }
  return points;
}

TEST(ObsRegistryTest, HandlesAreStableAndSurviveReset) {
  obs::MetricsRegistry registry;
  obs::Counter& c1 = registry.GetCounter("a/count");
  obs::Counter& c2 = registry.GetCounter("a/count");
  EXPECT_EQ(&c1, &c2);  // same name -> same handle
  c1.Add(41);
  c1.Increment();
  EXPECT_EQ(c2.value(), 42u);

  obs::Gauge& g = registry.GetGauge("a/gauge");
  g.Set(7);
  g.SetMax(3);  // lower: no change
  EXPECT_EQ(g.value(), 7);
  g.SetMax(11);
  EXPECT_EQ(g.value(), 11);

  registry.GetHistogram("a/hist").Record(2.5);

  registry.Reset();
  EXPECT_EQ(c1.value(), 0u);          // zeroed...
  EXPECT_EQ(&registry.GetCounter("a/count"), &c1);  // ...but not replaced
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(registry.GetHistogram("a/hist").count(), 0u);

  const obs::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.size(), 1u);  // registrations survive Reset
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.histograms.size(), 1u);
}

TEST(ObsRegistryTest, HistogramExactStatsOnSmallSamples) {
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));
  const obs::Histogram::Stats s = h.ComputeStats();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  // Nearest-rank: ceil(p/100 * 100) = p.
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p90, 90.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
}

TEST(ObsRegistryTest, HistogramDecimationKeepsExactAggregates) {
  obs::Histogram h;
  const int n = 200000;  // > the 64Ki sample cap, forces two decimations
  for (int i = 0; i < n; ++i) h.Record(static_cast<double>(i));
  const obs::Histogram::Stats s = h.ComputeStats();
  EXPECT_EQ(s.count, static_cast<uint64_t>(n));
  EXPECT_DOUBLE_EQ(s.sum, static_cast<double>(n) * (n - 1) / 2.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, n - 1.0);
  // Percentiles come from the decimated sample; the uniform ramp makes the
  // expected quantile value p% of the range, within decimation error.
  EXPECT_NEAR(s.p50 / n, 0.50, 0.02);
  EXPECT_NEAR(s.p95 / n, 0.95, 0.02);
}

TEST(ObsRegistryTest, NearestRankPercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile({3.0}, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile({3.0}, 99.0), 3.0);
  // Rank = round(p/100 * n), clamped to [1, n] (the engine's historical
  // batch-latency convention).
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile({1.0, 2.0}, 50.0), 1.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile({1.0, 2.0}, 76.0), 2.0);
}

TEST(ObsExportTest, JsonCsvTextRenderAllMetrics) {
  obs::MetricsRegistry registry;
  registry.GetCounter("x/events").Add(3);
  registry.GetGauge("x/level").Set(-2);
  registry.GetHistogram("x/lat_ms").Record(1.0);
  registry.GetHistogram("x/lat_ms").Record(3.0);
  const obs::Snapshot snap = registry.TakeSnapshot();

  const std::string json = obs::ToJson(snap);
  // Structurally a single JSON object with balanced braces.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"x/events\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"x/level\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"x/lat_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);

  const std::string csv = obs::ToCsv(snap);
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,x/events,value,3"), std::string::npos);
  EXPECT_NE(csv.find("gauge,x/level,value,-2"), std::string::npos);
  EXPECT_NE(csv.find("histogram,x/lat_ms,count,2"), std::string::npos);

  const std::string text = obs::ToText(snap);
  EXPECT_NE(text.find("x/events"), std::string::npos);
  EXPECT_NE(text.find("x/level"), std::string::npos);
  EXPECT_NE(text.find("x/lat_ms"), std::string::npos);
}

TEST(ObsExportTest, JsonEscapesControlAndQuoteCharacters) {
  obs::MetricsRegistry registry;
  registry.GetCounter("weird\"name\n").Add(1);
  const std::string json = obs::ToJson(registry.TakeSnapshot());
  EXPECT_NE(json.find("weird\\\"name\\n"), std::string::npos);
  EXPECT_EQ(json.find("weird\"name"), std::string::npos);  // raw quote gone
}

TEST(ObsExportTest, WriteSnapshotFilePicksFormatByExtension) {
  obs::MetricsRegistry registry;
  registry.GetCounter("f/events").Add(9);
  const obs::Snapshot snap = registry.TakeSnapshot();

  const std::string path =
      ::testing::TempDir() + "/obs_export_roundtrip.json";
  std::string error;
  ASSERT_TRUE(obs::WriteSnapshotFile(snap, path, &error)) << error;
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), obs::ToJson(snap) + "\n");
  std::remove(path.c_str());

  ASSERT_FALSE(obs::WriteSnapshotFile(snap, "/nonexistent-dir/x.json",
                                      &error));
  EXPECT_FALSE(error.empty());
}

TEST(ObsGateTest, DisabledMacrosRecordNothing) {
  obs::SetEnabled(false);
  obs::Counter& probe =
      obs::MetricsRegistry::Global().GetCounter("gate/probe");
  probe.Reset();
  SOP_COUNTER_ADD("gate/probe", 5);
  EXPECT_EQ(probe.value(), 0u);  // gate off: no recording

  if (obs::kCompiledIn) {
    ScopedObsEnabled enable(true);
    SOP_COUNTER_ADD("gate/probe", 5);
    EXPECT_EQ(probe.value(), 5u);
  } else {
    ScopedObsEnabled enable(true);
    EXPECT_FALSE(obs::Enabled());  // compiled out: cannot be enabled
    SOP_COUNTER_ADD("gate/probe", 5);
    EXPECT_EQ(probe.value(), 0u);
  }
  probe.Reset();
}

TEST(ObsGateTest, ScopedTraceRecordsOnlyWhenEnabled) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  obs::Histogram& hist =
      obs::MetricsRegistry::Global().GetHistogram("gate/trace_ms");
  hist.Reset();
  { SOP_TRACE("gate/trace_ms"); }
  EXPECT_EQ(hist.count(), 0u);
  {
    ScopedObsEnabled enable(true);
    { SOP_TRACE("gate/trace_ms"); }
  }
  EXPECT_EQ(hist.count(), 1u);
  hist.Reset();
}

// The subsystem's core guarantee: turning metrics on changes what is
// *measured*, never what is *emitted*.
TEST(ObsEquivalenceTest, EnablingMetricsDoesNotChangeOutliers) {
  const Workload w = SmallWorkload();
  const std::vector<Point> points = SmallStream(300, 1234);
  for (const std::string& name : KnownDetectorNames()) {
    std::unique_ptr<OutlierDetector> plain = CreateDetector(name, w);
    obs::SetEnabled(false);
    const std::vector<QueryResult> off = CollectResults(w, points, plain.get());

    std::unique_ptr<OutlierDetector> instrumented = CreateDetector(name, w);
    ScopedObsEnabled enable(true);
    const std::vector<QueryResult> on =
        CollectResults(w, points, instrumented.get());
    ExpectSameResults(off, on, "obs-on/" + name);
  }
  obs::MetricsRegistry::Global().Reset();
}

TEST(ObsEngineTest, EngineRecordsRunAndPerQueryCounters) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  const Workload w = SmallWorkload();
  const std::vector<Point> points = SmallStream(300, 77);

  ScopedObsEnabled enable(true);
  obs::MetricsRegistry::Global().Reset();
  ExecutionEngine engine;
  std::unique_ptr<OutlierDetector> detector = CreateDetector("sop", w);
  const RunMetrics metrics = engine.Run(w, points, detector.get());

  const obs::Snapshot snap = obs::MetricsRegistry::Global().TakeSnapshot();
  obs::MetricsRegistry::Global().Reset();
  ASSERT_NE(snap.counters.find("engine/batches"), snap.counters.end());
  EXPECT_EQ(snap.counters.at("engine/batches"),
            static_cast<uint64_t>(metrics.num_batches));
  EXPECT_EQ(snap.counters.at("engine/points"),
            static_cast<uint64_t>(metrics.total_points));
  EXPECT_EQ(snap.counters.at("engine/outliers"), metrics.total_outliers);
  // Both queries emitted at least once, and the per-query counters add up
  // to the engine-wide totals.
  ASSERT_NE(snap.counters.find("query/0/emissions"), snap.counters.end());
  ASSERT_NE(snap.counters.find("query/1/emissions"), snap.counters.end());
  EXPECT_EQ(snap.counters.at("query/0/emissions") +
                snap.counters.at("query/1/emissions"),
            metrics.total_emissions);
  EXPECT_EQ(snap.counters.at("query/0/outliers") +
                snap.counters.at("query/1/outliers"),
            metrics.total_outliers);
  // The SOP core reported its own instrumentation during the run.
  EXPECT_GT(snap.counters.at("ksky/scans"), 0u);
  ASSERT_NE(snap.histograms.find("engine/batch_ms"), snap.histograms.end());
  EXPECT_EQ(snap.histograms.at("engine/batch_ms").count,
            static_cast<uint64_t>(metrics.num_batches));
}

TEST(ObsRunMetricsTest, ToJsonIsWellFormed) {
  RunMetrics m;
  m.num_batches = 3;
  m.total_cpu_ms = 1.5;
  m.total_outliers = 7;
  const std::string json = m.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"num_batches\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"total_outliers\": 7"), std::string::npos);
}

}  // namespace
}  // namespace sop
