// Unit tests for the LSky skyband structure.

#include "gtest/gtest.h"
#include "sop/core/lsky.h"

namespace sop {
namespace {

// Appends entries with seq == key (count-based style).
void Append(LSky* sky, Seq seq, int32_t layer) {
  sky->Append({seq, seq, layer});
}

TEST(LSkyTest, AppendKeepsDescendingOrder) {
  LSky sky;
  Append(&sky, 9, 2);
  Append(&sky, 7, 1);
  Append(&sky, 3, 3);
  ASSERT_EQ(sky.size(), 3u);
  EXPECT_EQ(sky.entries()[0].seq, 9);
  EXPECT_EQ(sky.entries()[2].seq, 3);
}

TEST(LSkyTest, ExpireBeforeDropsOldSuffix) {
  LSky sky;
  Append(&sky, 9, 1);
  Append(&sky, 7, 1);
  Append(&sky, 3, 1);
  Append(&sky, 1, 1);
  EXPECT_EQ(sky.ExpireBefore(4), 2u);
  ASSERT_EQ(sky.size(), 2u);
  EXPECT_EQ(sky.entries().back().seq, 7);
  EXPECT_EQ(sky.ExpireBefore(4), 0u);
  EXPECT_EQ(sky.ExpireBefore(100), 2u);
  EXPECT_TRUE(sky.empty());
}

TEST(LSkyTest, CountWithinFiltersLayerAndKey) {
  LSky sky;
  Append(&sky, 9, 2);
  Append(&sky, 8, 1);
  Append(&sky, 6, 3);
  Append(&sky, 4, 1);
  Append(&sky, 2, 2);
  // All entries, any layer.
  EXPECT_EQ(sky.CountWithin(3, 0, 100), 5);
  // Layer filter.
  EXPECT_EQ(sky.CountWithin(1, 0, 100), 2);
  EXPECT_EQ(sky.CountWithin(2, 0, 100), 4);
  // Key filter: only entries with key >= 5.
  EXPECT_EQ(sky.CountWithin(3, 5, 100), 3);
  EXPECT_EQ(sky.CountWithin(1, 5, 100), 1);
  // Early stop.
  EXPECT_EQ(sky.CountWithin(3, 0, 2), 2);
}

TEST(LSkyTest, ClearAndRelease) {
  LSky sky;
  Append(&sky, 5, 1);
  sky.Clear();
  EXPECT_TRUE(sky.empty());
  Append(&sky, 5, 1);
  EXPECT_GT(sky.MemoryBytes(), 0u);
  sky.Release();
  EXPECT_TRUE(sky.empty());
  EXPECT_EQ(sky.MemoryBytes(), 0u);
}

TEST(LSkyTest, SwapExchangesContents) {
  LSky a;
  LSky b;
  Append(&a, 5, 1);
  a.Swap(&b);
  EXPECT_TRUE(a.empty());
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.entries()[0].seq, 5);
}

}  // namespace
}  // namespace sop
