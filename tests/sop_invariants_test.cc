// White-box invariant tests for the SOP core.
//
// These validate the two load-bearing claims of the design directly,
// rather than through end-to-end results:
//   * generalized Lemma 3: for every query (r, k) and every window suffix,
//     thresholding the skyband count is equivalent to thresholding the
//     true neighbor count;
//   * Safe-For-All soundness: once a point is flagged safe, it satisfies
//     every query's neighbor threshold in every later window it occupies.

#include <vector>

#include "gtest/gtest.h"
#include "sop/common/random.h"
#include "sop/core/sop_detector.h"
#include "sop/stream/window.h"
#include "test_util.h"

namespace sop {
namespace {

std::vector<Point> NoisyStream(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (Seq s = 0; s < n; ++s) {
    std::vector<double> v(2);
    if (rng.Bernoulli(0.2)) {
      v = {rng.UniformDouble(0, 25), rng.UniformDouble(0, 25)};
    } else {
      const double c = rng.Bernoulli(0.5) ? 6.0 : 18.0;
      v = {rng.Normal(c, 1.2), rng.Normal(c, 1.2)};
    }
    points.emplace_back(s, s, std::move(v));
  }
  return points;
}

class SopInvariantsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SopInvariantsTest, SkybandThresholdEqualsBruteForceThreshold) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.0, 2, 20, 4));
  w.AddQuery(OutlierQuery(2.0, 5, 12, 4));
  w.AddQuery(OutlierQuery(4.0, 3, 28, 4));
  w.AddQuery(OutlierQuery(1.5, 8, 20, 8));
  const DistanceFn dist = w.MakeDistanceFn(0);
  const std::vector<Point> points = NoisyStream(120, GetParam());

  SopDetector detector(w);
  const int64_t span = w.SlideGcd();
  const int64_t batches = static_cast<int64_t>(points.size()) / span;
  for (int64_t b = 0; b < batches; ++b) {
    std::vector<Point> batch(
        points.begin() + static_cast<size_t>(b * span),
        points.begin() + static_cast<size_t>((b + 1) * span));
    const int64_t boundary = (b + 1) * span;
    detector.Advance(std::move(batch), boundary);

    for (Seq s = 0; s < boundary; ++s) {
      if (!detector.IsAliveForTesting(s)) continue;
      for (size_t qi = 0; qi < w.num_queries(); ++qi) {
        const OutlierQuery& q = w.query(qi);
        const int64_t start = WindowStart(boundary, q.win);
        if (s < start) continue;  // point outside this query's window
        // Brute-force neighbor count inside the window.
        int64_t exact = 0;
        for (Seq t = std::max<Seq>(start, 0); t < boundary; ++t) {
          if (t == s) continue;
          if (dist(points[static_cast<size_t>(s)],
                   points[static_cast<size_t>(t)]) <= q.r) {
            ++exact;
          }
        }
        const bool exact_inlier = exact >= q.k;
        if (detector.IsSafeForTesting(s)) {
          EXPECT_TRUE(exact_inlier)
              << "safe point " << s << " fails " << q.ToString()
              << " at boundary " << boundary;
          continue;
        }
        const int64_t counted = detector.SkybandForTesting(s).CountWithin(
            detector.plan().layer_of_query(qi), start, q.k);
        EXPECT_EQ(counted >= q.k, exact_inlier)
            << "point " << s << " query " << q.ToString() << " boundary "
            << boundary << " counted " << counted << " exact " << exact;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SopInvariantsTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// The skyband never retains anything outside the swift window, and its
// entries are strictly seq-descending with valid layers (structural
// invariants of LSky maintained by K-SKY).
TEST(SopInvariantsTest, SkybandStructuralInvariants) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.0, 3, 16, 4));
  w.AddQuery(OutlierQuery(3.0, 6, 24, 8));
  const std::vector<Point> points = NoisyStream(96, 42);
  SopDetector detector(w);
  const int64_t span = w.SlideGcd();
  for (int64_t b = 0; b < static_cast<int64_t>(points.size()) / span; ++b) {
    std::vector<Point> batch(
        points.begin() + static_cast<size_t>(b * span),
        points.begin() + static_cast<size_t>((b + 1) * span));
    const int64_t boundary = (b + 1) * span;
    detector.Advance(std::move(batch), boundary);
    const int64_t swift_start = boundary - detector.plan().win_max();
    for (Seq s = 0; s < boundary; ++s) {
      if (!detector.IsAliveForTesting(s) || detector.IsSafeForTesting(s)) {
        continue;
      }
      const auto& entries = detector.SkybandForTesting(s).entries();
      for (size_t i = 0; i < entries.size(); ++i) {
        EXPECT_GE(entries[i].key, swift_start);
        EXPECT_NE(entries[i].seq, s);  // never its own neighbor
        EXPECT_GE(entries[i].layer, 1);
        EXPECT_LE(entries[i].layer, detector.plan().num_layers());
        if (i > 0) {
          EXPECT_LT(entries[i].seq, entries[i - 1].seq);
        }
      }
    }
  }
}

}  // namespace
}  // namespace sop
