// Tests of the stream driver: batch slicing, emission accounting, metrics.

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "sop/detector/detector.h"
#include "sop/detector/driver.h"
#include "sop/detector/factory.h"
#include "sop/detector/metrics.h"
#include "test_util.h"

namespace sop {
namespace {

using testing::Points1D;

// Records the batches it is fed.
class RecordingDetector : public OutlierDetector {
 public:
  struct Call {
    std::vector<Seq> seqs;
    int64_t boundary;
  };

  const char* name() const override { return "recording"; }

  std::vector<QueryResult> Advance(std::vector<Point> batch,
                                   int64_t boundary) override {
    Call call;
    call.boundary = boundary;
    for (const Point& p : batch) call.seqs.push_back(p.seq);
    calls.push_back(std::move(call));
    return {};
  }

  size_t MemoryBytes() const override { return 123; }

  std::vector<Call> calls;
};

Workload CountWorkload(int64_t slide) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.0, 1, 100, slide));
  return w;
}

TEST(DriverTest, CountBasedBatching) {
  RecordingDetector detector;
  RunMetrics metrics =
      RunStream(CountWorkload(3), Points1D({0, 0, 0, 0, 0, 0, 0}), &detector);
  // 7 points, slide 3: two full batches, trailing point dropped.
  ASSERT_EQ(detector.calls.size(), 2u);
  EXPECT_EQ(detector.calls[0].seqs, (std::vector<Seq>{0, 1, 2}));
  EXPECT_EQ(detector.calls[0].boundary, 3);
  EXPECT_EQ(detector.calls[1].seqs, (std::vector<Seq>{3, 4, 5}));
  EXPECT_EQ(detector.calls[1].boundary, 6);
  EXPECT_EQ(metrics.num_batches, 2);
  EXPECT_EQ(metrics.total_points, 7);
  EXPECT_EQ(metrics.peak_memory_bytes, 123u);
}

TEST(DriverTest, CountBasedUsesSlideGcdAcrossQueries) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.0, 1, 100, 4));
  w.AddQuery(OutlierQuery(1.0, 1, 100, 6));
  RecordingDetector detector;
  RunStream(w, Points1D(std::vector<double>(8, 0.0)), &detector);
  // gcd(4, 6) = 2: boundaries 2, 4, 6, 8.
  ASSERT_EQ(detector.calls.size(), 4u);
  EXPECT_EQ(detector.calls[3].boundary, 8);
}

TEST(DriverTest, TimeBasedBatchingWithGapsAndTies) {
  Workload w(WindowType::kTime);
  w.AddQuery(OutlierQuery(1.0, 1, 100, 10));
  RecordingDetector detector;
  const std::vector<Timestamp> times = {3, 9, 9, 10, 31};
  RunStream(w, Points1D(times, {0, 0, 0, 0, 0}), &detector);
  // First boundary after t=3 is 10 (covers keys < 10); then 20 and 30
  // (empty), then 40 covering the last point.
  ASSERT_EQ(detector.calls.size(), 4u);
  EXPECT_EQ(detector.calls[0].boundary, 10);
  EXPECT_EQ(detector.calls[0].seqs, (std::vector<Seq>{0, 1, 2}));
  EXPECT_EQ(detector.calls[1].boundary, 20);
  EXPECT_EQ(detector.calls[1].seqs, (std::vector<Seq>{3}));
  EXPECT_EQ(detector.calls[2].boundary, 30);
  EXPECT_TRUE(detector.calls[2].seqs.empty());
  EXPECT_EQ(detector.calls[3].boundary, 40);
  EXPECT_EQ(detector.calls[3].seqs, (std::vector<Seq>{4}));
}

TEST(DriverTest, EmptyStreamProducesNothing) {
  RecordingDetector detector;
  RunMetrics metrics = RunStream(CountWorkload(2), std::vector<Point>{},
                                 &detector);
  EXPECT_TRUE(detector.calls.empty());
  EXPECT_EQ(metrics.num_batches, 0);
  EXPECT_EQ(metrics.total_points, 0);
}

TEST(DriverTest, SinkReceivesEveryResult) {
  // A detector that emits one fixed result per batch.
  class EmittingDetector : public OutlierDetector {
   public:
    const char* name() const override { return "emitting"; }
    std::vector<QueryResult> Advance(std::vector<Point>,
                                     int64_t boundary) override {
      QueryResult r;
      r.query_index = 0;
      r.boundary = boundary;
      r.outliers = {1, 2};
      return {r};
    }
    size_t MemoryBytes() const override { return 0; }
  };
  EmittingDetector detector;
  int sunk = 0;
  RunMetrics metrics =
      RunStream(CountWorkload(2), Points1D({0, 0, 0, 0}), &detector,
                [&sunk](const QueryResult&) { ++sunk; });
  EXPECT_EQ(sunk, 2);
  EXPECT_EQ(metrics.total_emissions, 2u);
  EXPECT_EQ(metrics.total_outliers, 4u);
}

TEST(MetricsTest, AccumulatorAveragesPerWindow) {
  MetricsAccumulator acc;
  acc.RecordBatch(2.0, 100, 1, 5);
  acc.RecordBatch(4.0, 300, 2, 0);
  acc.RecordBatch(6.0, 200, 0, 0);
  acc.RecordPoints(30);
  const RunMetrics m = acc.Finish();
  EXPECT_EQ(m.num_batches, 3);
  EXPECT_DOUBLE_EQ(m.avg_cpu_ms_per_window, 4.0);
  EXPECT_EQ(m.peak_memory_bytes, 300u);
  EXPECT_EQ(m.total_emissions, 3u);
  EXPECT_EQ(m.total_outliers, 5u);
  EXPECT_EQ(m.total_points, 30);
  EXPECT_FALSE(m.ToString().empty());
}

// The diagnostic sop_cli and sop_server print for a rejected --detector:
// one line, naming the offender and every detector the factory knows.
TEST(DriverTest, UnknownDetectorMessageListsEveryName) {
  const std::string msg = UnknownDetectorMessage("bogus");
  EXPECT_NE(msg.find("unknown detector 'bogus'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("known detectors"), std::string::npos) << msg;
  for (const std::string& name : KnownDetectorNames()) {
    EXPECT_NE(msg.find(name), std::string::npos) << msg;
  }
  EXPECT_EQ(msg.find('\n'), std::string::npos) << "must be one line";
}

}  // namespace
}  // namespace sop
