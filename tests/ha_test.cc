// End-to-end tests of the high-availability serving plane (DESIGN.md
// Sec. 16): checkpoint-shipping replication, hot-standby promotion, and
// client auto-reconnect with exactly-once resume.
//
//   * failover equivalence — for every registered detector, both window
//     types: kill the primary mid-stream, let the standby promote, let the
//     client reconnect transparently — the delivered emission sequence
//     must equal an uninterrupted run's, with no duplicates and no gaps,
//   * the same drill under seeded transient socket faults,
//   * multi-cycle failover: primary -> promoted standby -> a third server
//     restarted from the standby's final checkpoint,
//   * exactly-once resume without a failover: a subscriber that
//     disconnects and resumes from its high-water mark receives precisely
//     the emissions it missed,
//   * resume past the ring's reach: the ack carries `gap` and the next
//     live emission is flagged degraded instead of silently losing data,
//   * graceful stop drains queued emissions to slow subscribers and
//     publishes a final checkpoint,
//   * idle timeout disconnects mid-frame stalls (slow loris) but never a
//     quiet-but-healthy subscriber,
//   * the health plane reports role, stream position and queue depths,
//     and a standby refuses ingest/subscribe until promoted.
//
// All assertions read ServerStats (always-on atomics), never obs counters,
// so the suite passes identically under -DSOP_NO_OBS.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/fault.h"
#include "sop/common/random.h"
#include "sop/detector/driver.h"
#include "sop/detector/factory.h"
#include "sop/net/client.h"
#include "sop/net/protocol.h"
#include "sop/net/server.h"
#include "sop/net/socket.h"
#include "sop/stream/window.h"
#include "test_util.h"

namespace sop {
namespace net {
namespace {

/// Polls `pred` until true or `timeout_ms` elapses.
bool WaitUntil(const std::function<bool()>& pred, int64_t timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// 1-D points: a unit-variance cluster with ~5% far-out spikes (as in
/// net_test). Count streams tick 0,1,2,...; time streams advance
/// irregularly with occasional long gaps so empty batch spans replicate.
std::vector<Point> GenPoints(size_t n, bool time_windows, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    if (time_windows) {
      t += 1 + static_cast<Timestamp>(rng.NextBelow(2));
      if (i % 97 == 96) t += 35;
    } else {
      t = static_cast<Timestamp>(i);
    }
    double v = rng.Normal(0.0, 1.0);
    if (rng.Bernoulli(0.05)) v += rng.Bernoulli(0.5) ? 8.0 : -8.0;
    points.emplace_back(static_cast<Seq>(i), t, std::vector<double>{v});
  }
  return points;
}

struct Batch {
  std::vector<Point> points;
  int64_t boundary = 0;
};

/// Count-window slicing exactly as ExecutionEngine does it.
std::vector<Batch> SliceCount(const std::vector<Point>& points,
                              int64_t span) {
  std::vector<Batch> batches;
  int64_t shipped = 0;
  const size_t step = static_cast<size_t>(span);
  for (size_t start = 0; start + step <= points.size(); start += step) {
    Batch b;
    b.points.assign(points.begin() + static_cast<int64_t>(start),
                    points.begin() + static_cast<int64_t>(start + step));
    shipped += span;
    b.boundary = shipped;
    batches.push_back(std::move(b));
  }
  return batches;
}

/// Time-window slicing exactly as ExecutionEngine does it.
std::vector<Batch> SliceTime(const std::vector<Point>& points, int64_t span) {
  std::vector<Batch> batches;
  int64_t boundary = FirstBoundaryAtOrAfter(points.front().time + 1, span);
  std::vector<Point> cur;
  for (const Point& p : points) {
    while (p.time >= boundary) {
      batches.push_back({std::move(cur), boundary});
      cur = {};
      boundary += span;
    }
    cur.push_back(p);
  }
  if (!cur.empty()) batches.push_back({std::move(cur), boundary});
  return batches;
}

std::vector<Batch> Slice(const Workload& workload,
                         const std::vector<Point>& points) {
  return workload.window_type() == WindowType::kCount
             ? SliceCount(points, workload.SlideGcd())
             : SliceTime(points, workload.SlideGcd());
}

/// Sorts results by (boundary, query index). Live delivery interleaves
/// queries within a boundary in session order, while resume replay is
/// per-query, so the interleaving at a failover seam can legally differ
/// from an uninterrupted run's; per-query boundary order — what the
/// exactly-once contract actually promises — is unaffected, and each
/// (query, boundary) pair is unique, so the sorted comparison is exact.
void Canonicalize(std::vector<QueryResult>* results) {
  std::stable_sort(results->begin(), results->end(),
                   [](const QueryResult& a, const QueryResult& b) {
                     if (a.boundary != b.boundary) {
                       return a.boundary < b.boundary;
                     }
                     return a.query_index < b.query_index;
                   });
}

/// No (query, boundary) delivered twice — the "no duplicates" half of
/// exactly-once (ExpectSameResults against the oracle covers "no gaps").
void ExpectNoDuplicates(const std::vector<QueryResult>& results,
                        const std::string& label) {
  std::set<std::pair<size_t, int64_t>> seen;
  for (const QueryResult& r : results) {
    EXPECT_TRUE(seen.insert({r.query_index, r.boundary}).second)
        << label << ": duplicate emission q" << r.query_index << "@"
        << r.boundary;
  }
}

/// The core drill: a primary replicating to a hot standby, a reconnecting
/// client streaming `batches` — with the primary killed (crash-style)
/// right before batch `kill_at` ships. Returns every emission the client
/// saw, with query ids mapped back to subscribe-order indexes.
std::vector<QueryResult> RunFailoverCycle(
    const std::string& detector, WindowType window_type,
    const std::vector<OutlierQuery>& queries,
    const std::vector<Batch>& batches, size_t kill_at,
    const std::string& label, uint64_t* reconnects_out) {
  std::vector<QueryResult> results;
  std::string error;

  ServerOptions standby_options;
  standby_options.window_type = window_type;
  standby_options.detector = detector;
  standby_options.standby = true;
  standby_options.promote_on_loss = true;
  SopServer standby(standby_options);
  EXPECT_TRUE(standby.Start(&error)) << label << ": " << error;
  if (!error.empty()) return results;

  ServerOptions primary_options;
  primary_options.window_type = window_type;
  primary_options.detector = detector;
  primary_options.replicate_host = "127.0.0.1";
  primary_options.replicate_port = standby.port();
  SopServer primary(primary_options);
  EXPECT_TRUE(primary.Start(&error)) << label << ": " << error;
  if (!error.empty()) return results;

  SopClient client;
  EXPECT_TRUE(client.Connect("127.0.0.1", primary.port(), &error))
      << label << ": " << error;
  if (!client.connected()) return results;
  ReconnectOptions ropt;
  ropt.endpoints = {{"127.0.0.1", primary.port()},
                    {"127.0.0.1", standby.port()}};
  ropt.ingest_replay = batches.size() + 1;
  client.EnableReconnect(ropt);

  std::map<int64_t, size_t> index_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    const int64_t id = client.Subscribe(queries[i], &error);
    EXPECT_GT(id, 0) << label << ": " << error;
    if (id <= 0) return results;
    index_of[id] = i;
  }

  for (size_t i = 0; i < batches.size(); ++i) {
    if (i == kill_at) {
      // Replication is asynchronous to client acks: under CPU contention
      // the repl thread may not have shipped a single frame yet, and a
      // standby that never saw a replication connection has no loss to
      // promote on. Real deployments check replication lag before they
      // lean on a standby; do the same, then crash.
      EXPECT_TRUE(WaitUntil([&] {
        return standby.stats().last_boundary >= batches[i - 1].boundary;
      })) << label << ": standby never caught up to batch " << (i - 1);
      primary.Kill();
    }
    IngestAckMsg ack;
    EXPECT_TRUE(
        client.Ingest(batches[i].boundary, batches[i].points, &ack, &error))
        << label << " batch " << i << ": " << error;
    EXPECT_EQ(ack.accepted, batches[i].points.size())
        << label << " batch " << i;
    for (const EmissionMsg& e : client.TakeEmissions()) {
      EXPECT_TRUE(index_of.count(e.query_id) != 0)
          << label << ": emission for unknown query id " << e.query_id;
      if (index_of.count(e.query_id) == 0) continue;
      QueryResult r;
      r.query_index = index_of[e.query_id];
      r.boundary = e.boundary;
      r.outliers = e.outliers;
      results.push_back(std::move(r));
    }
  }
  *reconnects_out = client.reconnects();

  // The standby promoted itself and served the tail of the stream.
  EXPECT_EQ(standby.role(), ServerRole::kPrimary) << label;
  EXPECT_EQ(standby.stats().promotions, 1u) << label;
  if (standby.stats().promotions != 1u) {
    const ServerStats p = primary.stats();
    const ServerStats s = standby.stats();
    std::fprintf(stderr,
                 "[diag] %s: primary sent snap=%llu batch=%llu resync=%llu | "
                 "standby applied snap=%llu batch=%llu conns=%llu active=%llu "
                 "proto_err=%llu last_boundary=%lld\n",
                 label.c_str(),
                 (unsigned long long)p.repl_snapshots_sent,
                 (unsigned long long)p.repl_batches_sent,
                 (unsigned long long)p.repl_resyncs,
                 (unsigned long long)s.repl_snapshots_applied,
                 (unsigned long long)s.repl_batches_applied,
                 (unsigned long long)s.connections,
                 (unsigned long long)s.active_clients,
                 (unsigned long long)s.protocol_errors,
                 (long long)s.last_boundary);
  }
  standby.Stop();
  return results;
}

// --- failover equivalence ------------------------------------------------

// The HA contract: kill-the-primary -> standby promotion -> client
// reconnect is invisible in the emission stream. For every detector the
// factory knows, over both window types, the client's collected sequence
// must equal an uninterrupted run's — no duplicates, no gaps.
TEST(HaTest, FailoverMatchesUninterruptedRunEveryDetector) {
  for (const bool time_windows : {false, true}) {
    Workload workload(time_windows ? WindowType::kTime : WindowType::kCount);
    std::vector<OutlierQuery> queries;
    if (time_windows) {
      queries.push_back(OutlierQuery(1.5, 4, 80, 20));
      queries.push_back(OutlierQuery(2.0, 3, 120, 30));
    } else {
      queries.push_back(OutlierQuery(1.5, 4, 100, 50));
      queries.push_back(OutlierQuery(2.0, 3, 150, 50));
    }
    for (const OutlierQuery& q : queries) workload.AddQuery(q);
    ASSERT_EQ(workload.Validate(), "");
    const std::vector<Point> points =
        GenPoints(time_windows ? 240 : 320, time_windows,
                  /*seed=*/11 + (time_windows ? 1 : 0));
    const std::vector<Batch> batches = Slice(workload, points);
    ASSERT_GT(batches.size(), 3u);

    for (const std::string& name : KnownDetectorNames()) {
      const std::string label =
          name + (time_windows ? "/time" : "/count") + " failover";
      std::unique_ptr<OutlierDetector> detector =
          CreateDetector(name, workload);
      std::vector<QueryResult> expected =
          CollectResults(workload, points, detector.get());

      uint64_t reconnects = 0;
      std::vector<QueryResult> actual =
          RunFailoverCycle(name, workload.window_type(), queries, batches,
                           batches.size() / 2, label, &reconnects);
      EXPECT_GE(reconnects, 1u) << label;
      ExpectNoDuplicates(actual, label);
      Canonicalize(&expected);
      Canonicalize(&actual);
      testing::ExpectSameResults(expected, actual, label);
    }
  }
}

// The same drill under seeded transient socket faults on every read and
// write — the retry discipline and the self-healing replication chain must
// keep the sequence exact, deterministically.
TEST(HaTest, FailoverUnderInjectedTransientFaults) {
  Workload workload(WindowType::kCount);
  const std::vector<OutlierQuery> queries = {OutlierQuery(1.5, 4, 100, 50),
                                             OutlierQuery(2.0, 3, 150, 50)};
  for (const OutlierQuery& q : queries) workload.AddQuery(q);
  const std::vector<Point> points = GenPoints(320, false, /*seed=*/29);
  const std::vector<Batch> batches = Slice(workload, points);
  std::unique_ptr<OutlierDetector> detector = CreateDetector("sop", workload);
  std::vector<QueryResult> expected =
      CollectResults(workload, points, detector.get());

  FaultInjector injector(/*seed=*/4321);
  injector.SetRate(FaultSite::kNetRead, 0.1);
  injector.SetRate(FaultSite::kNetWrite, 0.1);
  injector.SetMaxFailures(FaultSite::kNetRead, 20);
  injector.SetMaxFailures(FaultSite::kNetWrite, 20);
  ScopedFaultInjection armed(&injector);

  uint64_t reconnects = 0;
  std::vector<QueryResult> actual =
      RunFailoverCycle("sop", WindowType::kCount, queries, batches,
                       batches.size() / 2, "faulted failover", &reconnects);
  EXPECT_GE(reconnects, 1u);
  EXPECT_GT(injector.injected(FaultSite::kNetRead) +
                injector.injected(FaultSite::kNetWrite),
            0);
  ExpectNoDuplicates(actual, "faulted failover");
  Canonicalize(&expected);
  Canonicalize(&actual);
  testing::ExpectSameResults(expected, actual, "faulted failover");
}

// Two failovers in one stream: the primary crashes (standby promotes),
// then the promoted standby retires gracefully and a third server resumes
// from its final checkpoint — the client rides across both seams and the
// sequence stays exact.
TEST(HaTest, MultiCycleFailoverAcrossCheckpointHandoff) {
  const std::string path = ::testing::TempDir() + "sop_ha_cycle.checkpoint";
  std::remove(path.c_str());

  Workload workload(WindowType::kCount);
  const OutlierQuery q(1.5, 3, 80, 40);
  workload.AddQuery(q);
  const std::vector<Point> points = GenPoints(400, false, /*seed=*/55);
  const std::vector<Batch> batches = SliceCount(points, 40);
  ASSERT_EQ(batches.size(), 10u);
  std::unique_ptr<OutlierDetector> detector = CreateDetector("sop", workload);
  std::vector<QueryResult> expected =
      CollectResults(workload, points, detector.get());

  std::string error;
  ServerOptions standby_options;
  standby_options.standby = true;
  standby_options.promote_on_loss = true;
  standby_options.checkpoint_path = path;
  standby_options.checkpoint_every_batches = 1;
  SopServer standby(standby_options);
  ASSERT_TRUE(standby.Start(&error)) << error;

  ServerOptions primary_options;
  primary_options.replicate_host = "127.0.0.1";
  primary_options.replicate_port = standby.port();
  SopServer primary(primary_options);
  ASSERT_TRUE(primary.Start(&error)) << error;

  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", primary.port(), &error)) << error;
  ReconnectOptions ropt;
  ropt.endpoints = {{"127.0.0.1", primary.port()},
                    {"127.0.0.1", standby.port()}};
  client.EnableReconnect(ropt);
  const int64_t id = client.Subscribe(q, &error);
  ASSERT_GT(id, 0) << error;

  std::vector<QueryResult> actual;
  auto ingest = [&](size_t i) {
    IngestAckMsg ack;
    ASSERT_TRUE(
        client.Ingest(batches[i].boundary, batches[i].points, &ack, &error))
        << "batch " << i << ": " << error;
    ASSERT_EQ(ack.accepted, batches[i].points.size()) << "batch " << i;
    for (const EmissionMsg& e : client.TakeEmissions()) {
      ASSERT_EQ(e.query_id, id);
      QueryResult r;
      r.query_index = 0;
      r.boundary = e.boundary;
      r.outliers = e.outliers;
      actual.push_back(std::move(r));
    }
  };

  // Cycle 1: crash the primary; the standby promotes and serves. (Wait
  // out replication lag first — see RunFailoverCycle.)
  for (size_t i = 0; i < 4; ++i) ingest(i);
  ASSERT_TRUE(WaitUntil(
      [&] { return standby.stats().last_boundary >= batches[3].boundary; }));
  primary.Kill();
  for (size_t i = 4; i < 7; ++i) ingest(i);
  ASSERT_EQ(standby.role(), ServerRole::kPrimary);

  // Cycle 2: retire the promoted standby gracefully (final checkpoint),
  // bring up a third server from that checkpoint, and point the client at
  // it. Its handshake must resume the exact stream position.
  standby.Stop();
  EXPECT_GT(standby.stats().checkpoints, 0u);

  ServerOptions third_options;
  third_options.checkpoint_path = path;
  SopServer third(third_options);
  ASSERT_TRUE(third.Start(&error)) << error;
  EXPECT_TRUE(third.stats().resumed);
  EXPECT_EQ(third.stats().last_boundary, batches[6].boundary);

  ReconnectOptions ropt2;
  ropt2.endpoints = {{"127.0.0.1", third.port()}};
  client.EnableReconnect(ropt2);
  for (size_t i = 7; i < batches.size(); ++i) ingest(i);
  EXPECT_EQ(client.reconnects(), 2u);
  third.Stop();

  ExpectNoDuplicates(actual, "multi-cycle");
  Canonicalize(&expected);
  Canonicalize(&actual);
  testing::ExpectSameResults(expected, actual, "multi-cycle");
}

// --- exactly-once resume (no failover) -----------------------------------

// A subscriber that disconnects mid-stream and reconnects with its
// high-water mark receives exactly the emissions it missed — the
// concatenation of before-disconnect, replayed, and live emissions equals
// the uninterrupted sequence.
TEST(HaTest, ResumeReplaysExactlyTheMissedEmissions) {
  Workload workload(WindowType::kCount);
  const OutlierQuery q(1.5, 3, 100, 50);
  workload.AddQuery(q);
  const std::vector<Point> points = GenPoints(500, false, /*seed=*/41);
  const std::vector<Batch> batches = SliceCount(points, 50);
  ASSERT_EQ(batches.size(), 10u);
  std::unique_ptr<OutlierDetector> detector = CreateDetector("sop", workload);
  const std::vector<QueryResult> expected =
      CollectResults(workload, points, detector.get());

  ServerOptions options;
  SopServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // A second subscriber keeps the query registered (and the resume ring
  // filling) while the client under test is away.
  SopClient listener;
  ASSERT_TRUE(listener.Connect("127.0.0.1", server.port(), &error)) << error;
  ASSERT_GT(listener.Subscribe(q, &error), 0) << error;

  std::vector<QueryResult> actual;
  auto collect = [&actual](SopClient* c) {
    for (const EmissionMsg& e : c->TakeEmissions()) {
      QueryResult r;
      r.query_index = 0;
      r.boundary = e.boundary;
      r.outliers = e.outliers;
      actual.push_back(std::move(r));
    }
  };

  int64_t hwm = kNoResume;
  {
    SopClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
    const int64_t id = client.Subscribe(q, &error);
    ASSERT_GT(id, 0) << error;
    for (size_t i = 0; i < 5; ++i) {
      IngestAckMsg ack;
      ASSERT_TRUE(client.Ingest(batches[i].boundary, batches[i].points, &ack,
                                &error))
          << error;
      ASSERT_EQ(ack.accepted, batches[i].points.size());
      collect(&client);
    }
    hwm = client.high_water(id);
    client.Close();
  }
  ASSERT_NE(hwm, kNoResume);
  EXPECT_EQ(hwm, batches[4].boundary);

  // The stream moves on without the client under test.
  {
    SopClient other;
    ASSERT_TRUE(other.Connect("127.0.0.1", server.port(), &error)) << error;
    for (size_t i = 5; i < 8; ++i) {
      IngestAckMsg ack;
      ASSERT_TRUE(other.Ingest(batches[i].boundary, batches[i].points, &ack,
                               &error))
          << error;
      ASSERT_EQ(ack.accepted, batches[i].points.size());
    }
  }

  // Resume: the three missed emissions replay ahead of the ack; live
  // delivery continues seamlessly after them.
  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  const int64_t id = client.Subscribe(q, hwm, &error);
  ASSERT_GT(id, 0) << error;
  EXPECT_EQ(client.last_replayed(), 3u);
  EXPECT_FALSE(client.last_gap());
  collect(&client);
  for (size_t i = 8; i < batches.size(); ++i) {
    IngestAckMsg ack;
    ASSERT_TRUE(
        client.Ingest(batches[i].boundary, batches[i].points, &ack, &error))
        << error;
    ASSERT_EQ(ack.accepted, batches[i].points.size());
    collect(&client);
  }
  server.Stop();

  ExpectNoDuplicates(actual, "resume");
  testing::ExpectSameResults(expected, actual, "resume");
  EXPECT_EQ(server.stats().resume_replayed, 3u);
  EXPECT_EQ(server.stats().resume_gaps, 0u);
}

// Resuming from a boundary the ring no longer reaches is answered
// honestly: the ack carries `gap`, the covered suffix still replays, and
// the next live emission is flagged degraded so the loss is visible.
TEST(HaTest, ResumePastRingReachReportsGapAndDegrades) {
  Workload workload(WindowType::kCount);
  const OutlierQuery q(1.5, 3, 64, 32);
  workload.AddQuery(q);
  const std::vector<Point> points = GenPoints(320, false, /*seed=*/61);
  const std::vector<Batch> batches = SliceCount(points, 32);
  ASSERT_EQ(batches.size(), 10u);

  ServerOptions options;
  options.resume_ring = 2;  // tiny: the ring wraps after two emissions
  SopServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  SopClient listener;
  ASSERT_TRUE(listener.Connect("127.0.0.1", server.port(), &error)) << error;
  ASSERT_GT(listener.Subscribe(q, &error), 0) << error;

  int64_t hwm = kNoResume;
  {
    SopClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
    const int64_t id = client.Subscribe(q, &error);
    ASSERT_GT(id, 0) << error;
    for (size_t i = 0; i < 2; ++i) {
      IngestAckMsg ack;
      ASSERT_TRUE(client.Ingest(batches[i].boundary, batches[i].points, &ack,
                                &error))
          << error;
      ASSERT_EQ(ack.accepted, batches[i].points.size());
    }
    hwm = client.high_water(id);
    client.Close();
  }
  ASSERT_EQ(hwm, batches[1].boundary);

  {
    SopClient other;
    ASSERT_TRUE(other.Connect("127.0.0.1", server.port(), &error)) << error;
    for (size_t i = 2; i < 8; ++i) {
      IngestAckMsg ack;
      ASSERT_TRUE(other.Ingest(batches[i].boundary, batches[i].points, &ack,
                               &error))
          << error;
      ASSERT_EQ(ack.accepted, batches[i].points.size());
    }
  }

  // Ring now holds only batches 6 and 7; everything from 2..5 is gone.
  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  const int64_t id = client.Subscribe(q, hwm, &error);
  ASSERT_GT(id, 0) << error;
  EXPECT_TRUE(client.last_gap());
  EXPECT_EQ(client.last_replayed(), 2u);
  std::vector<EmissionMsg> replayed = client.TakeEmissions();
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].boundary, batches[6].boundary);
  EXPECT_EQ(replayed[1].boundary, batches[7].boundary);

  // The first live emission after the gap is flagged; the next is clean.
  IngestAckMsg ack;
  ASSERT_TRUE(
      client.Ingest(batches[8].boundary, batches[8].points, &ack, &error))
      << error;
  std::vector<EmissionMsg> live = client.TakeEmissions();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].boundary, batches[8].boundary);
  EXPECT_TRUE(live[0].degraded);
  ASSERT_TRUE(
      client.Ingest(batches[9].boundary, batches[9].points, &ack, &error))
      << error;
  live = client.TakeEmissions();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_FALSE(live[0].degraded);
  server.Stop();
  EXPECT_EQ(server.stats().resume_gaps, 1u);
}

// --- graceful stop -------------------------------------------------------

/// Minimal frame-level peer for the tests that need to control exactly
/// what bytes hit the wire (and when they stop being read).
struct RawConn {
  Socket sock;
  FrameDecoder decoder;
  NetRetryOptions retry;

  bool ReadFrame(std::string* payload) {
    std::string error;
    char buf[4096];
    while (true) {
      switch (decoder.Next(payload, &error)) {
        case FrameDecoder::Status::kFrame:
          return true;
        case FrameDecoder::Status::kError:
          return false;
        case FrameDecoder::Status::kNeedMore:
          break;
      }
      const int64_t n = RecvSome(sock, buf, sizeof buf, retry, &error);
      if (n <= 0) return false;
      decoder.Append(buf, static_cast<size_t>(n));
    }
  }
};

// Stop() must not strand emissions already routed to a subscriber that has
// not read them yet: the send queues drain to the sockets before close,
// and the final checkpoint lands.
TEST(HaTest, GracefulStopDrainsQueuedEmissionsAndCheckpoints) {
  const std::string path = ::testing::TempDir() + "sop_ha_drain.checkpoint";
  std::remove(path.c_str());
  const OutlierQuery q(1.5, 3, 64, 32);
  const std::vector<Point> points = GenPoints(128, false, /*seed=*/71);
  const std::vector<Batch> batches = SliceCount(points, 32);
  ASSERT_EQ(batches.size(), 4u);

  ServerOptions options;
  options.checkpoint_path = path;
  options.checkpoint_every_batches = 1000;  // only the final checkpoint
  SopServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // A frame-level subscriber that handshakes, subscribes, then stops
  // reading entirely — its emissions pile up server-side.
  RawConn sub;
  sub.sock = ConnectTcp("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(sub.sock.valid()) << error;
  ASSERT_TRUE(SendAll(sub.sock, EncodeHello(HelloMsg{}), sub.retry, &error))
      << error;
  std::string payload;
  ASSERT_TRUE(sub.ReadFrame(&payload));
  SubscribeMsg smsg;
  smsg.query = q;
  ASSERT_TRUE(SendAll(sub.sock, EncodeSubscribe(smsg), sub.retry, &error))
      << error;
  ASSERT_TRUE(sub.ReadFrame(&payload));
  MsgType type = MsgType::kError;
  ASSERT_TRUE(PeekType(payload, &type, &error)) << error;
  ASSERT_EQ(type, MsgType::kSubscribeAck);

  SopClient ingester;
  ASSERT_TRUE(ingester.Connect("127.0.0.1", server.port(), &error)) << error;
  for (const Batch& b : batches) {
    IngestAckMsg ack;
    ASSERT_TRUE(ingester.Ingest(b.boundary, b.points, &ack, &error)) << error;
    ASSERT_EQ(ack.accepted, b.points.size());
    EXPECT_EQ(ack.emissions, 0u);  // all routed to the raw subscriber
  }

  server.Stop();
  EXPECT_GT(server.stats().checkpoints, 0u);
  EXPECT_EQ(server.stats().emissions, batches.size());
  EXPECT_EQ(server.stats().shed_emissions, 0u);

  // Every queued emission was written out before the close.
  size_t emissions = 0;
  while (sub.ReadFrame(&payload)) {
    ASSERT_TRUE(PeekType(payload, &type, &error)) << error;
    if (type != MsgType::kEmission) continue;
    EmissionMsg e;
    ASSERT_TRUE(DecodeEmission(payload, &e, &error)) << error;
    EXPECT_EQ(e.boundary, batches[emissions].boundary);
    ++emissions;
  }
  EXPECT_EQ(emissions, batches.size());

  // The final checkpoint carries the exact stop position.
  SopServer restarted(options);
  ASSERT_TRUE(restarted.Start(&error)) << error;
  EXPECT_TRUE(restarted.stats().resumed);
  EXPECT_EQ(restarted.stats().last_boundary, batches.back().boundary);
  restarted.Stop();
  std::remove(path.c_str());
}

// --- idle timeout --------------------------------------------------------

// A connection stalled mid-frame past the idle timeout is disconnected
// (slow-loris defense); a quiet connection with no partial frame pending
// is left alone indefinitely.
TEST(HaTest, IdleTimeoutDisconnectsMidFrameStallsOnly) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  SopServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Slow loris: half a frame, then silence.
  RawConn loris;
  loris.sock = ConnectTcp("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(loris.sock.valid()) << error;
  const std::string frame = EncodePing(PingMsg{});
  ASSERT_TRUE(
      SendAll(loris.sock, frame.substr(0, frame.size() / 2), loris.retry,
              &error))
      << error;
  ASSERT_TRUE(WaitUntil(
      [&] { return server.stats().idle_disconnects >= 1; }));
  // The server hung up on it.
  char buf[64];
  int64_t n;
  do {
    n = RecvSome(loris.sock, buf, sizeof buf, loris.retry, &error);
  } while (n > 0);
  EXPECT_LE(n, 0);

  // The quiet-but-healthy half (a client idle well past the timeout with
  // no partial frame pending is never timed out) lives in
  // SimTest.IdleTimeoutFiresOnVirtualClockOnly, where a virtual hour of
  // idleness costs no wall time. Here: a fresh client is served fine
  // after the loris was dropped, and only the loris was dropped.
  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  EXPECT_GT(client.Subscribe(OutlierQuery(1.0, 2, 100, 50), &error), 0)
      << error;
  server.Stop();
  EXPECT_EQ(server.stats().idle_disconnects, 1u);
}

// --- health plane --------------------------------------------------------

// kPing answers from both roles with the truth: role, stream position,
// queue depths — and a standby refuses ingest and subscriptions with a
// diagnostic until promoted.
TEST(HaTest, PingReportsRoleAndPositionStandbyRefusesWrites) {
  std::string error;
  ServerOptions standby_options;
  standby_options.standby = true;  // no promote_on_loss: stays standby
  SopServer standby(standby_options);
  ASSERT_TRUE(standby.Start(&error)) << error;

  ServerOptions primary_options;
  primary_options.replicate_host = "127.0.0.1";
  primary_options.replicate_port = standby.port();
  SopServer primary(primary_options);
  ASSERT_TRUE(primary.Start(&error)) << error;

  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", primary.port(), &error)) << error;
  EXPECT_EQ(client.server_info().role,
            static_cast<uint32_t>(ServerRole::kPrimary));
  PongMsg pong;
  ASSERT_TRUE(client.Ping(&pong, &error)) << error;
  EXPECT_EQ(pong.role, static_cast<uint32_t>(ServerRole::kPrimary));
  EXPECT_EQ(pong.last_boundary, kNoResume);

  const std::vector<Point> points = GenPoints(32, false, /*seed=*/83);
  IngestAckMsg ack;
  ASSERT_TRUE(client.Ingest(32, points, &ack, &error)) << error;
  ASSERT_EQ(ack.accepted, points.size());
  ASSERT_TRUE(client.Ping(&pong, &error)) << error;
  EXPECT_EQ(pong.last_boundary, 32);
  EXPECT_GE(pong.active_connections, 1u);

  // The standby answers health probes too, reports its role, and tracks
  // the replicated stream position.
  SopClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", standby.port(), &error)) << error;
  EXPECT_EQ(probe.server_info().role,
            static_cast<uint32_t>(ServerRole::kStandby));
  ASSERT_TRUE(WaitUntil(
      [&] { return standby.stats().repl_batches_applied >= 1; }));
  ASSERT_TRUE(probe.Ping(&pong, &error)) << error;
  EXPECT_EQ(pong.role, static_cast<uint32_t>(ServerRole::kStandby));
  EXPECT_EQ(pong.last_boundary, 32);

  // Writes are refused while standing by — with a diagnostic, not a
  // dropped connection.
  EXPECT_EQ(probe.Subscribe(OutlierQuery(1.0, 2, 100, 50), &error), 0);
  EXPECT_NE(error.find("standby"), std::string::npos) << error;
  ASSERT_TRUE(probe.Ingest(64, points, &ack, &error)) << error;
  EXPECT_EQ(ack.accepted, 0u);
  const std::vector<ErrorMsg> errors = probe.TakeErrors();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("standby"), std::string::npos);
  EXPECT_TRUE(probe.connected());

  primary.Stop();
  // That the standby KEEPS standing by after the primary is gone for good
  // is asserted across minutes of virtual time in
  // SimTest.StandbyWithoutPromotionStaysStandbyOnVirtualClock — no
  // wall-clock wait here.
  standby.Stop();
}

}  // namespace
}  // namespace net
}  // namespace sop
