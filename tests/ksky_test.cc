// Unit tests for the K-SKY scan, including the paper's worked examples.

#include <vector>

#include "gtest/gtest.h"
#include "sop/core/ksky.h"
#include "sop/query/plan.h"
#include "sop/stream/stream_buffer.h"

namespace sop {
namespace {

// Test harness: 1-D points, the evaluated point p at value 0 with seq 0,
// candidates at value == their distance to p, count-based windows.
class KSkyHarness {
 public:
  KSkyHarness(std::vector<OutlierQuery> queries,
              const std::vector<double>& distances,
              KSky::Options options = KSky::Options())
      : workload_(MakeWorkload(std::move(queries))),
        plan_(workload_),
        ksky_(&plan_, workload_.MakeDistanceFn(0), options),
        buffer_(WindowType::kCount) {
    buffer_.Append(Point(0, 0, {0.0}));  // p itself
    for (size_t i = 0; i < distances.size(); ++i) {
      const Seq s = static_cast<Seq>(i) + 1;
      buffer_.Append(Point(s, s, {distances[i]}));
    }
  }

  // Runs a from-scratch scan for p; returns whether p is Safe-For-All.
  bool Scan(LSky* skyband) {
    return ksky_.EvaluatePoint(buffer_.At(0), buffer_, buffer_.next_seq(),
                               /*swift_window_start=*/0,
                               /*from_scratch=*/true, skyband);
  }

  std::vector<Seq> SkybandSeqs(const LSky& skyband) const {
    std::vector<Seq> seqs;
    for (const SkybandEntry& e : skyband.entries()) seqs.push_back(e.seq);
    return seqs;
  }

  static Workload MakeWorkload(std::vector<OutlierQuery> queries) {
    Workload w(WindowType::kCount);
    for (const OutlierQuery& q : queries) w.AddQuery(q);
    return w;
  }

  const KSkyScanStats& stats() const { return ksky_.last_stats(); }
  StreamBuffer& buffer() { return buffer_; }
  KSky& ksky() { return ksky_; }
  const WorkloadPlan& plan() const { return plan_; }

 private:
  Workload workload_;
  WorkloadPlan plan_;
  KSky ksky_;
  StreamBuffer buffer_;
};

// Paper Example 1 / Example 2 (Fig. 2): queries q1(1), q2(2), q3(3), k=3;
// candidate distances 2,3,2,1,1,4,3,2 in arrival order. The skyband must
// be {p4, p5, p7, p8} and is discovered newest-first.
TEST(KSkyTest, PaperExample1SkybandContent) {
  KSkyHarness h({{1.0, 3, 100, 10}, {2.0, 3, 100, 10}, {3.0, 3, 100, 10}},
                {2, 3, 2, 1, 1, 4, 3, 2});
  LSky skyband;
  h.Scan(&skyband);
  EXPECT_EQ(h.SkybandSeqs(skyband), (std::vector<Seq>{8, 7, 5, 4}));
  // Layers per Def. 4: p8 -> B2, p7 -> B3, p5/p4 -> B1.
  EXPECT_EQ(skyband.entries()[0].layer, 2);
  EXPECT_EQ(skyband.entries()[1].layer, 3);
  EXPECT_EQ(skyband.entries()[2].layer, 1);
  EXPECT_EQ(skyband.entries()[3].layer, 1);
}

// The k-distance observation on Example 1: with the skyband above, p has
// 3 neighbors within r=2 (k-distance 2), so p is an outlier for q1 only.
TEST(KSkyTest, PaperExample1OutlierStatus) {
  KSkyHarness h({{1.0, 3, 100, 10}, {2.0, 3, 100, 10}, {3.0, 3, 100, 10}},
                {2, 3, 2, 1, 1, 4, 3, 2});
  LSky skyband;
  h.Scan(&skyband);
  EXPECT_LT(skyband.CountWithin(1, 0, 3), 3);  // q1(r=1): outlier
  EXPECT_GE(skyband.CountWithin(2, 0, 3), 3);  // q2(r=2): inlier
  EXPECT_GE(skyband.CountWithin(3, 0, 3), 3);  // q3(r=3): inlier
}

// Example 1's window slide (Fig. 1): p4 expires; newcomers are all far
// away. p7 becomes part of p's kNN and p turns into an outlier for q2.
TEST(KSkyTest, PaperExample1NecessityAfterSlide) {
  KSkyHarness h({{1.0, 3, 100, 10}, {2.0, 3, 100, 10}, {3.0, 3, 100, 10}},
                {2, 3, 2, 1, 1, 4, 3, 2});
  LSky skyband;
  h.Scan(&skyband);
  // Newcomers p9..p12 at distance > 3.
  for (Seq s = 9; s <= 12; ++s) h.buffer().Append(Point(s, s, {5.0}));
  // Incremental rescan with the window now starting at key 5 (p4 gone).
  h.ksky().EvaluatePoint(h.buffer().At(0), h.buffer(), 9, 5,
                         /*from_scratch=*/false, &skyband);
  EXPECT_EQ(h.SkybandSeqs(skyband), (std::vector<Seq>{8, 7, 5}));
  EXPECT_LT(skyband.CountWithin(2, 5, 3), 3);  // q2: now outlier
  EXPECT_GE(skyband.CountWithin(3, 5, 3), 3);  // q3: still inlier
}

// Paper Example 3 (Figs. 3-4): QG1 = k=2, rs {1,3,4}; QG2 = k=3,
// rs {2,3,4}. Def. 6 admits p6 (layer 4, dominated by 2 < k_max points).
TEST(KSkyTest, PaperExample3MultiGroupSkyband) {
  KSkyHarness h({{1.0, 2, 100, 10},
                 {3.0, 2, 100, 10},
                 {4.0, 2, 100, 10},
                 {2.0, 3, 100, 10},
                 {3.0, 3, 100, 10},
                 {4.0, 3, 100, 10}},
                {2, 3, 2, 1, 1, 4, 3, 2});
  LSky skyband;
  h.Scan(&skyband);
  EXPECT_EQ(h.SkybandSeqs(skyband), (std::vector<Seq>{8, 7, 6, 5, 4}));
  // Status per the paper: inlier for every query in both groups.
  EXPECT_GE(skyband.CountWithin(1, 0, 2), 2);  // QG1 r=1
  EXPECT_GE(skyband.CountWithin(3, 0, 2), 2);  // QG1 r=3
  EXPECT_GE(skyband.CountWithin(2, 0, 3), 3);  // QG2 r=2
  EXPECT_GE(skyband.CountWithin(4, 0, 3), 3);  // QG2 r=4
}

// Def. 6 condition 3: a candidate dominated by c points is discarded when
// no group with k > c covers its layer.
TEST(KSkyTest, Condition3DiscardsUselessCandidates) {
  // Group k=1 covers layers {1,2} (rs 1,5); group k=3 covers layer 1 only.
  // Candidate at distance 5 (layer 2) dominated by 1 point serves nobody:
  // k=1 is already saturated, k=3 does not reach layer 2.
  KSkyHarness h({{1.0, 1, 100, 10}, {5.0, 1, 100, 10}, {1.0, 3, 100, 10}},
                /*distances=*/{5, 5, 5});
  // Scan order: p3(d=5,l=2,c=0) kept; p2(d=5,l=2,c=1): no group with k>1
  // reaches layer 2 -> discarded; p1 likewise.
  LSky skyband;
  h.Scan(&skyband);
  EXPECT_EQ(h.SkybandSeqs(skyband), (std::vector<Seq>{3}));
}

TEST(KSkyTest, Condition3OffKeepsPlainSkyband) {
  KSky::Options options;
  options.condition3_pruning = false;
  KSkyHarness h({{1.0, 1, 100, 10}, {5.0, 1, 100, 10}, {1.0, 3, 100, 10}},
                {5, 5, 5}, options);
  LSky skyband;
  h.Scan(&skyband);
  // Plain (k_max-1)-skyband keeps all candidates dominated by < 3 points.
  EXPECT_EQ(h.SkybandSeqs(skyband), (std::vector<Seq>{3, 2, 1}));
}

// Early termination: once layer 1 holds k_max entries, older candidates
// are never examined.
TEST(KSkyTest, TerminatesOnLayer1Saturation) {
  KSkyHarness h({{10.0, 2, 100, 10}},
                /*distances=*/{1, 1, 1, 1, 1, 1, 1, 1});
  LSky skyband;
  h.Scan(&skyband);
  EXPECT_TRUE(h.stats().terminated_early);
  // Newest two candidates only (k_max = 2).
  EXPECT_EQ(h.SkybandSeqs(skyband), (std::vector<Seq>{8, 7}));
  EXPECT_EQ(h.stats().candidates_examined, 2);
}

TEST(KSkyTest, TerminationOffScansEverything) {
  KSky::Options options;
  options.early_termination = false;
  KSkyHarness h({{10.0, 2, 100, 10}}, {1, 1, 1, 1, 1, 1, 1, 1}, options);
  LSky skyband;
  h.Scan(&skyband);
  EXPECT_FALSE(h.stats().terminated_early);
  EXPECT_EQ(h.stats().candidates_examined, 8);
  // Content identical to the terminated scan.
  EXPECT_EQ(h.SkybandSeqs(skyband), (std::vector<Seq>{8, 7}));
}

// Candidates beyond the largest r are nobody's neighbor and never enter
// the skyband (Def. 5 condition 3).
TEST(KSkyTest, FarPointsIgnored) {
  KSkyHarness h({{2.0, 2, 100, 10}}, {100, 3, 100, 1, 100});
  LSky skyband;
  h.Scan(&skyband);
  EXPECT_EQ(h.SkybandSeqs(skyband), (std::vector<Seq>{4}));
}

// Time-based windows: skyband entries carry timestamps as keys, expiry and
// window counting use them, while domination order stays arrival order.
TEST(KSkyTest, TimeBasedKeysInSkyband) {
  Workload w(WindowType::kTime);
  w.AddQuery(OutlierQuery(2.0, 2, 100, 10));
  WorkloadPlan plan(w);
  KSky ksky(&plan, w.MakeDistanceFn(0));
  StreamBuffer buffer(WindowType::kTime);
  // Timestamps with ties and gaps; p is seq 0 at time 5.
  buffer.Append(Point(0, 5, {0.0}));
  buffer.Append(Point(1, 5, {1.0}));
  buffer.Append(Point(2, 20, {1.5}));
  buffer.Append(Point(3, 20, {9.0}));  // too far: not a neighbor
  buffer.Append(Point(4, 31, {0.5}));
  LSky skyband;
  ksky.EvaluatePoint(buffer.At(0), buffer, buffer.next_seq(), 0, true,
                     &skyband);
  // k_max = 2: the two newest neighbors saturate layer 1 and terminate.
  ASSERT_EQ(skyband.size(), 2u);
  EXPECT_EQ(skyband.entries()[0].seq, 4);
  EXPECT_EQ(skyband.entries()[0].key, 31);  // timestamp, not seq
  EXPECT_EQ(skyband.entries()[1].seq, 2);
  EXPECT_EQ(skyband.entries()[1].key, 20);
  // Window [25, 35): only the time-31 neighbor counts.
  EXPECT_EQ(skyband.CountWithin(1, 25, 10), 1);
  // Expiry by timestamp.
  EXPECT_EQ(skyband.ExpireBefore(21), 1u);
  EXPECT_EQ(skyband.entries()[0].seq, 4);
}

// Safe-For-All: p (seq 0, earliest) with k_max succeeding neighbors within
// every group's min layer is safe; with too few, it is not.
TEST(KSkyTest, SafeForAllDetection) {
  KSkyHarness safe({{1.0, 2, 100, 10}, {3.0, 3, 100, 10}},
                   /*distances=*/{1, 1, 2, 3});
  LSky skyband;
  EXPECT_TRUE(safe.Scan(&skyband));

  // Only one succeeding neighbor within r=1: group k=2 unsatisfied.
  KSkyHarness unsafe({{1.0, 2, 100, 10}, {3.0, 3, 100, 10}},
                     /*distances=*/{1, 2, 2, 3});
  EXPECT_FALSE(unsafe.Scan(&skyband));
}

// A point with enough neighbors that nonetheless *precede* it must not be
// declared safe (they expire before it does).
TEST(KSkyTest, PrecedingNeighborsDoNotMakeSafe) {
  // Evaluate the NEWEST point: p at seq 0 is replaced by evaluating seq 4.
  Workload w = KSkyHarness::MakeWorkload({{1.0, 2, 100, 10}});
  WorkloadPlan plan(w);
  KSky ksky(&plan, w.MakeDistanceFn(0));
  StreamBuffer buffer(WindowType::kCount);
  for (Seq s = 0; s < 5; ++s) buffer.Append(Point(s, s, {0.0}));
  LSky skyband;
  // The newest point has 4 preceding neighbors at distance 0, no
  // succeeding ones.
  EXPECT_FALSE(ksky.EvaluatePoint(buffer.At(4), buffer, buffer.next_seq(), 0,
                                  true, &skyband));
  // An older point with >= 2 succeeding neighbors is safe.
  EXPECT_TRUE(ksky.EvaluatePoint(buffer.At(1), buffer, buffer.next_seq(), 0,
                                 true, &skyband));
}

// Least examination: the incremental rescan touches only new arrivals and
// previous skyband entries, and recomputes distances only for the former.
// When no new arrival enters the skyband, the previous entries are not
// even re-examined (their admission decisions replay unchanged).
TEST(KSkyTest, LeastExaminationScanCosts) {
  KSkyHarness h({{5.0, 2, 100, 10}}, {1, 2, 3, 4, 1, 2, 3, 4});
  LSky skyband;
  h.Scan(&skyband);
  const size_t skyband_size = skyband.size();
  const auto skyband_before = skyband.entries();
  // Two new arrivals, far away: distances computed, nothing admitted,
  // re-admission of old entries skipped.
  h.buffer().Append(Point(9, 9, {50.0}));
  h.buffer().Append(Point(10, 10, {50.0}));
  h.ksky().EvaluatePoint(h.buffer().At(0), h.buffer(), 9, 0,
                         /*from_scratch=*/false, &skyband);
  EXPECT_EQ(h.stats().distances_computed, 2);  // the new arrivals only
  EXPECT_EQ(h.stats().candidates_examined, 2);
  EXPECT_EQ(skyband.entries(), skyband_before);  // unchanged
  // Two nearby arrivals: one enters the skyband, so old entries are
  // re-examined — until layer-1 saturation terminates the scan after the
  // first of the two old entries (k_max = 2 reached).
  (void)skyband_size;
  h.buffer().Append(Point(11, 11, {1.0}));
  h.buffer().Append(Point(12, 12, {50.0}));
  h.ksky().EvaluatePoint(h.buffer().At(0), h.buffer(), 11, 0,
                         /*from_scratch=*/false, &skyband);
  EXPECT_EQ(h.stats().distances_computed, 2);
  EXPECT_EQ(h.stats().candidates_examined, 3);
  ASSERT_EQ(skyband.size(), 2u);
  EXPECT_EQ(skyband.entries()[0].seq, 11);
  EXPECT_EQ(skyband.entries()[1].seq, 8);
}

}  // namespace
}  // namespace sop
