// End-to-end tests of the serving plane (net/server.h + net/client.h):
//
//   * loopback equivalence — every registered detector, both window types,
//     served over TCP, must emit exactly what a direct ExecutionEngine run
//     emits (the sharing-as-a-service contract),
//   * live subscription churn against a direct SopSession oracle,
//   * overload shedding (kDropOldest) with the degraded-flag handshake,
//   * injected socket faults (transient = ridden out, persistent = clean
//     connection failure, never a dead server),
//   * hostile bytes on the wire poison only their own connection,
//   * checkpointed restart resumes the shared stream mid-flight,
//   * refusal paths: unknown detector, invalid query, stale boundary.
//
// All assertions read ServerStats (always-on atomics), never obs counters,
// so the suite passes identically under -DSOP_NO_OBS.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/fault.h"
#include "sop/common/random.h"
#include "sop/core/session.h"
#include "sop/detector/driver.h"
#include "sop/detector/factory.h"
#include "sop/net/client.h"
#include "sop/net/server.h"
#include "sop/net/socket.h"
#include "sop/stream/window.h"
#include "test_util.h"

namespace sop {
namespace net {
namespace {

/// Polls `pred` until true or `timeout_ms` elapses.
bool WaitUntil(const std::function<bool()>& pred, int64_t timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// 1-D points: a unit-variance cluster with ~5% far-out spikes. Count
/// streams tick 0,1,2,...; time streams advance irregularly with
/// occasional long gaps so empty batch spans get exercised.
std::vector<Point> GenPoints(size_t n, bool time_windows, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    if (time_windows) {
      t += 1 + static_cast<Timestamp>(rng.NextBelow(2));
      if (i % 97 == 96) t += 35;
    } else {
      t = static_cast<Timestamp>(i);
    }
    double v = rng.Normal(0.0, 1.0);
    if (rng.Bernoulli(0.05)) v += rng.Bernoulli(0.5) ? 8.0 : -8.0;
    points.emplace_back(static_cast<Seq>(i), t, std::vector<double>{v});
  }
  return points;
}

struct Batch {
  std::vector<Point> points;
  int64_t boundary = 0;
};

/// Count-window slicing exactly as ExecutionEngine does it: one batch per
/// `span` points, boundary = cumulative count, trailing partial dropped.
std::vector<Batch> SliceCount(const std::vector<Point>& points,
                              int64_t span) {
  std::vector<Batch> batches;
  int64_t shipped = 0;
  const size_t step = static_cast<size_t>(span);
  for (size_t start = 0; start + step <= points.size(); start += step) {
    Batch b;
    b.points.assign(points.begin() + static_cast<int64_t>(start),
                    points.begin() + static_cast<int64_t>(start + step));
    shipped += span;
    b.boundary = shipped;
    batches.push_back(std::move(b));
  }
  return batches;
}

/// Time-window slicing exactly as ExecutionEngine does it: spans of `span`
/// time units starting at the first boundary past the first point, empty
/// spans advanced, the final partial span flushed at its boundary.
std::vector<Batch> SliceTime(const std::vector<Point>& points, int64_t span) {
  std::vector<Batch> batches;
  int64_t boundary = FirstBoundaryAtOrAfter(points.front().time + 1, span);
  std::vector<Point> cur;
  for (const Point& p : points) {
    while (p.time >= boundary) {
      batches.push_back({std::move(cur), boundary});
      cur = {};
      boundary += span;
    }
    cur.push_back(p);
  }
  if (!cur.empty()) batches.push_back({std::move(cur), boundary});
  return batches;
}

std::vector<Batch> Slice(const Workload& workload,
                         const std::vector<Point>& points) {
  return workload.window_type() == WindowType::kCount
             ? SliceCount(points, workload.SlideGcd())
             : SliceTime(points, workload.SlideGcd());
}

/// Subscribes `queries` (in order), streams `batches`, and returns every
/// emission as a QueryResult with query ids mapped back to subscribe-order
/// indexes — directly comparable to a CollectResults run.
std::vector<QueryResult> RunLoopback(int port,
                                     const std::vector<OutlierQuery>& queries,
                                     const std::vector<Batch>& batches,
                                     const std::string& label) {
  std::vector<QueryResult> results;
  SopClient client;
  std::string error;
  EXPECT_TRUE(client.Connect("127.0.0.1", port, &error)) << label << ": "
                                                         << error;
  if (!client.connected()) return results;

  std::map<int64_t, size_t> index_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    const int64_t id = client.Subscribe(queries[i], &error);
    EXPECT_GT(id, 0) << label << ": " << error;
    if (id <= 0) return results;
    index_of[id] = i;
  }
  for (const Batch& b : batches) {
    IngestAckMsg ack;
    EXPECT_TRUE(client.Ingest(b.boundary, b.points, &ack, &error))
        << label << ": " << error;
    EXPECT_EQ(ack.accepted, b.points.size()) << label;
    for (const EmissionMsg& e : client.TakeEmissions()) {
      EXPECT_TRUE(index_of.count(e.query_id) != 0)
          << label << ": emission for unknown query id " << e.query_id;
      QueryResult r;
      r.query_index = index_of[e.query_id];
      r.boundary = e.boundary;
      r.outliers = e.outliers;
      results.push_back(std::move(r));
    }
  }
  for (const auto& entry : index_of) {
    EXPECT_TRUE(client.Unsubscribe(entry.first, &error))
        << label << ": " << error;
  }
  return results;
}

// --- loopback equivalence ------------------------------------------------

// The serving-plane contract: a subscribe-ingest-collect loop over TCP is
// indistinguishable from driving the detector directly, for every detector
// the factory knows, over both window types.
TEST(NetTest, LoopbackMatchesEngineEveryDetector) {
  for (const bool time_windows : {false, true}) {
    Workload workload(time_windows ? WindowType::kTime : WindowType::kCount);
    std::vector<OutlierQuery> queries;
    if (time_windows) {
      queries.push_back(OutlierQuery(1.5, 4, 80, 20));
      queries.push_back(OutlierQuery(2.0, 3, 120, 30));
    } else {
      queries.push_back(OutlierQuery(1.5, 4, 100, 50));
      queries.push_back(OutlierQuery(2.0, 3, 150, 50));
    }
    for (const OutlierQuery& q : queries) workload.AddQuery(q);
    ASSERT_EQ(workload.Validate(), "");
    const std::vector<Point> points =
        GenPoints(time_windows ? 240 : 320, time_windows,
                  /*seed=*/7 + (time_windows ? 1 : 0));
    const std::vector<Batch> batches = Slice(workload, points);
    ASSERT_GT(batches.size(), 3u);

    for (const std::string& name : KnownDetectorNames()) {
      const std::string label =
          name + (time_windows ? "/time" : "/count") + " loopback";
      std::unique_ptr<OutlierDetector> detector =
          CreateDetector(name, workload);
      const std::vector<QueryResult> expected =
          CollectResults(workload, points, detector.get());

      ServerOptions options;
      options.window_type = workload.window_type();
      options.detector = name;
      SopServer server(options);
      std::string error;
      ASSERT_TRUE(server.Start(&error)) << label << ": " << error;
      const std::vector<QueryResult> actual =
          RunLoopback(server.port(), queries, batches, label);
      server.Stop();
      testing::ExpectSameResults(expected, actual, label);

      const ServerStats stats = server.stats();
      EXPECT_EQ(stats.ingest_batches, batches.size()) << label;
      EXPECT_EQ(stats.emissions, expected.size()) << label;
      EXPECT_EQ(stats.shed_emissions, 0u) << label;
      EXPECT_EQ(stats.protocol_errors, 0u) << label;
    }
  }
}

// Subscribing and retiring queries mid-stream over the wire matches the
// same schedule applied directly to a SopSession (same detector builder,
// same 1-based id assignment).
TEST(NetTest, MidRunSubscriptionChurnMatchesDirectSession) {
  const std::vector<Point> points = GenPoints(300, false, /*seed=*/21);
  const std::vector<Batch> batches = SliceCount(points, 50);
  ASSERT_EQ(batches.size(), 6u);
  const OutlierQuery qa(1.5, 4, 100, 50);
  const OutlierQuery qb(2.5, 2, 150, 50);

  // Direct oracle: same ops, no network.
  std::vector<SessionResult> expected;
  {
    SopSession session(WindowType::kCount, Metric::kEuclidean, 4096);
    session.SetDetectorBuilder(
        [](const Workload& w) { return CreateDetector("sop", w); });
    auto advance = [&](const Batch& b) {
      for (SessionResult& r : session.Advance(b.points, b.boundary)) {
        expected.push_back(std::move(r));
      }
    };
    const QueryId a = session.AddQuery(qa);
    advance(batches[0]);
    advance(batches[1]);
    session.AddQuery(qb);
    advance(batches[2]);
    advance(batches[3]);
    session.RemoveQuery(a);
    advance(batches[4]);
    advance(batches[5]);
  }

  ServerOptions options;
  SopServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;

  std::vector<EmissionMsg> actual;
  auto ingest = [&](const Batch& b) {
    IngestAckMsg ack;
    ASSERT_TRUE(client.Ingest(b.boundary, b.points, &ack, &error)) << error;
    ASSERT_EQ(ack.accepted, b.points.size());
    for (EmissionMsg& e : client.TakeEmissions()) {
      actual.push_back(std::move(e));
    }
  };
  const int64_t a = client.Subscribe(qa, &error);
  ASSERT_GT(a, 0) << error;
  ingest(batches[0]);
  ingest(batches[1]);
  const int64_t b = client.Subscribe(qb, &error);
  ASSERT_GT(b, 0) << error;
  ingest(batches[2]);
  ingest(batches[3]);
  ASSERT_TRUE(client.Unsubscribe(a, &error)) << error;
  ingest(batches[4]);
  ingest(batches[5]);
  server.Stop();

  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].query_id, expected[i].query_id) << "emission " << i;
    EXPECT_EQ(actual[i].boundary, expected[i].boundary) << "emission " << i;
    EXPECT_EQ(actual[i].outliers, expected[i].outliers) << "emission " << i;
    EXPECT_FALSE(actual[i].degraded) << "emission " << i;
  }
  EXPECT_EQ(server.stats().subscribes, 2u);
  EXPECT_EQ(server.stats().unsubscribes, 1u);
  // The tiered change path: qb's mid-run subscribe introduces a new radius
  // layer (2.5), which extends the basis and replays history; the
  // unsubscribe is an in-place overlay swap that replays nothing.
  EXPECT_EQ(server.stats().overlay_changes, 1u);
  EXPECT_EQ(server.stats().basis_extends, 1u);
  EXPECT_GT(server.stats().replayed_points, 0u);
}

// --- overload ------------------------------------------------------------

// A subscriber that stops reading while an ingester floods must not stall
// the stream under kDropOldest: the server sheds its oldest queued
// emissions (counted) and flags the next delivered one degraded.
TEST(NetTest, DropOldestShedsAndFlagsDegraded) {
  ServerOptions options;
  options.max_send_queue = 4;
  options.send_policy = OverloadPolicy::kDropOldest;
  SopServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Eight queries over one shared pass; every point is an outlier (spread
  // integers, microscopic r), so each batch pushes 8 frames of win seqs —
  // enough volume to fill the subscriber's TCP buffers and send queue.
  SopClient subscriber;
  ASSERT_TRUE(subscriber.Connect("127.0.0.1", server.port(), &error))
      << error;
  const OutlierQuery q(1e-6, 1, 512, 128);
  for (int i = 0; i < 8; ++i) {
    ASSERT_GT(subscriber.Subscribe(q, &error), 0) << error;
  }

  SopClient ingester;
  ASSERT_TRUE(ingester.Connect("127.0.0.1", server.port(), &error)) << error;
  constexpr int64_t kSpan = 128;
  int64_t shipped = 0;
  int64_t next_value = 0;
  auto next_batch = [&]() {
    std::vector<Point> batch;
    for (int64_t i = 0; i < kSpan; ++i, ++next_value) {
      batch.emplace_back(Seq{0}, static_cast<Timestamp>(next_value),
                         std::vector<double>{static_cast<double>(next_value)});
    }
    return batch;
  };
  bool shed = false;
  for (int i = 0; i < 1500 && !shed; ++i) {
    const std::vector<Point> batch = next_batch();
    shipped += kSpan;
    IngestAckMsg ack;
    ASSERT_TRUE(ingester.Ingest(shipped, batch, &ack, &error)) << error;
    ASSERT_EQ(ack.accepted, static_cast<uint64_t>(kSpan));
    shed = server.stats().shed_emissions > 0;
  }
  ASSERT_TRUE(shed) << "no emission shed after "
                    << server.stats().ingest_batches << " batches";

  // The subscriber wakes up and ingests one batch of its own: draining the
  // ack drains everything queued before it, including the degraded marker.
  const std::vector<Point> batch = next_batch();
  shipped += kSpan;
  IngestAckMsg ack;
  ASSERT_TRUE(subscriber.Ingest(shipped, batch, &ack, &error)) << error;
  ASSERT_EQ(ack.accepted, static_cast<uint64_t>(kSpan));
  uint64_t degraded = 0;
  for (const EmissionMsg& e : subscriber.TakeEmissions()) {
    if (e.degraded) ++degraded;
  }
  EXPECT_GT(degraded, 0u);
  server.Stop();
  EXPECT_GT(server.stats().shed_emissions, 0u);
}

// --- fault injection -----------------------------------------------------

// Bounded transient socket faults on both sites are ridden out by the
// retry discipline: the loopback run stays exactly equivalent.
TEST(NetTest, TransientSocketFaultsAreRiddenOut) {
  Workload workload(WindowType::kCount);
  const std::vector<OutlierQuery> queries = {OutlierQuery(1.5, 4, 100, 50)};
  workload.AddQuery(queries[0]);
  const std::vector<Point> points = GenPoints(250, false, /*seed=*/33);
  const std::vector<Batch> batches = SliceCount(points, 50);
  std::unique_ptr<OutlierDetector> detector = CreateDetector("sop", workload);
  const std::vector<QueryResult> expected =
      CollectResults(workload, points, detector.get());

  FaultInjector injector(/*seed=*/1234);
  injector.SetRate(FaultSite::kNetRead, 0.2);
  injector.SetRate(FaultSite::kNetWrite, 0.2);
  injector.SetMaxFailures(FaultSite::kNetRead, 10);
  injector.SetMaxFailures(FaultSite::kNetWrite, 10);
  ScopedFaultInjection armed(&injector);

  ServerOptions options;
  SopServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const std::vector<QueryResult> actual =
      RunLoopback(server.port(), queries, batches, "fault drill");
  server.Stop();

  testing::ExpectSameResults(expected, actual, "fault drill");
  EXPECT_GT(injector.injected(FaultSite::kNetRead) +
                injector.injected(FaultSite::kNetWrite),
            0);
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

// A persistent write fault exhausts the retry budget and fails the client
// call cleanly; the server itself must survive to serve the next client.
TEST(NetTest, PersistentSocketFaultFailsCleanly) {
  ServerOptions options;
  SopServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  {
    FaultInjector injector(/*seed=*/99);
    injector.SetRate(FaultSite::kNetWrite, 1.0);
    ScopedFaultInjection armed(&injector);
    SopClient client;
    EXPECT_FALSE(client.Connect("127.0.0.1", server.port(), &error));
    EXPECT_NE(error.find("persisted"), std::string::npos) << error;
    EXPECT_GT(injector.injected(FaultSite::kNetWrite), 0);
  }

  // Disarmed: the same server keeps serving.
  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  EXPECT_GT(client.Subscribe(OutlierQuery(1.0, 2, 100, 50), &error), 0)
      << error;
  server.Stop();
}

// --- hostile bytes -------------------------------------------------------

// Garbage and corrupted frames poison exactly one connection each: counted
// as protocol errors, never a crash, and never collateral damage to a
// well-behaved client on the same server.
TEST(NetTest, MalformedBytesPoisonOnlyTheirConnection) {
  ServerOptions options;
  SopServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const NetRetryOptions retry;

  {
    // Pure garbage: framing is lost immediately.
    Socket raw = ConnectTcp("127.0.0.1", server.port(), &error);
    ASSERT_TRUE(raw.valid()) << error;
    ASSERT_TRUE(SendAll(raw, "definitely not a SOPF frame", retry, &error))
        << error;
    ASSERT_TRUE(WaitUntil(
        [&] { return server.stats().protocol_errors >= 1; }));
  }
  {
    // A bit flip inside a valid frame: CRC catches it.
    std::string frame = EncodeSubscribe(SubscribeMsg{});
    frame[frame.size() - 3] ^= 0x20;
    Socket raw = ConnectTcp("127.0.0.1", server.port(), &error);
    ASSERT_TRUE(raw.valid()) << error;
    ASSERT_TRUE(SendAll(raw, frame, retry, &error)) << error;
    ASSERT_TRUE(WaitUntil(
        [&] { return server.stats().protocol_errors >= 2; }));
  }

  const std::vector<Point> points = GenPoints(100, false, /*seed=*/5);
  Workload workload(WindowType::kCount);
  const std::vector<OutlierQuery> queries = {OutlierQuery(1.5, 3, 50, 50)};
  workload.AddQuery(queries[0]);
  std::unique_ptr<OutlierDetector> detector = CreateDetector("sop", workload);
  const std::vector<QueryResult> expected =
      CollectResults(workload, points, detector.get());
  const std::vector<QueryResult> actual = RunLoopback(
      server.port(), queries, SliceCount(points, 50), "post-garbage");
  server.Stop();
  testing::ExpectSameResults(expected, actual, "post-garbage");
  EXPECT_GE(server.stats().protocol_errors, 2u);
}

// --- checkpointed restart ------------------------------------------------

// Stop a checkpointing server mid-stream, start a fresh one on the same
// path: it resumes the shared stream position, and a re-registered query's
// emissions continue exactly as an uninterrupted direct session's would.
TEST(NetTest, CheckpointedRestartResumesTheStream) {
  const std::string path =
      ::testing::TempDir() + "sop_net_restart.checkpoint";
  std::remove(path.c_str());

  const std::vector<Point> points = GenPoints(200, false, /*seed=*/77);
  const std::vector<Batch> batches = SliceCount(points, 20);
  ASSERT_EQ(batches.size(), 10u);
  const OutlierQuery q(1.5, 3, 100, 20);

  // Uninterrupted oracle.
  std::vector<SessionResult> expected_tail;
  {
    SopSession session(WindowType::kCount, Metric::kEuclidean, 4096);
    session.SetDetectorBuilder(
        [](const Workload& w) { return CreateDetector("sop", w); });
    session.AddQuery(q);
    for (const Batch& b : batches) {
      for (SessionResult& r : session.Advance(b.points, b.boundary)) {
        if (r.boundary > batches[5].boundary) {
          expected_tail.push_back(std::move(r));
        }
      }
    }
  }

  ServerOptions options;
  options.checkpoint_path = path;
  options.checkpoint_every_batches = 2;

  {
    SopServer server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    EXPECT_FALSE(server.stats().resumed);
    SopClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
    EXPECT_EQ(client.server_info().last_boundary, INT64_MIN);
    ASSERT_GT(client.Subscribe(q, &error), 0) << error;
    for (size_t i = 0; i < 6; ++i) {
      IngestAckMsg ack;
      ASSERT_TRUE(client.Ingest(batches[i].boundary, batches[i].points, &ack,
                                &error))
          << error;
      ASSERT_EQ(ack.accepted, batches[i].points.size());
    }
    server.Stop();  // final checkpoint at batch 6's boundary
    EXPECT_GT(server.stats().checkpoints, 0u);
  }

  SopServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  EXPECT_TRUE(server.stats().resumed);
  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  // The handshake hands a late joiner the shared stream position.
  EXPECT_EQ(client.server_info().last_boundary, batches[5].boundary);
  ASSERT_GT(client.Subscribe(q, &error), 0) << error;
  {
    // Boundary monotonicity survives the restart: replaying an already
    // advanced batch is refused, not applied (and not a crash).
    IngestAckMsg ack;
    ASSERT_TRUE(
        client.Ingest(batches[5].boundary, batches[5].points, &ack, &error))
        << error;
    EXPECT_EQ(ack.accepted, 0u);
    client.TakeErrors();
  }
  std::vector<EmissionMsg> tail;
  for (size_t i = 6; i < batches.size(); ++i) {
    IngestAckMsg ack;
    ASSERT_TRUE(
        client.Ingest(batches[i].boundary, batches[i].points, &ack, &error))
        << error;
    ASSERT_EQ(ack.accepted, batches[i].points.size());
    for (EmissionMsg& e : client.TakeEmissions()) {
      tail.push_back(std::move(e));
    }
  }
  server.Stop();
  std::remove(path.c_str());

  ASSERT_EQ(tail.size(), expected_tail.size());
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].boundary, expected_tail[i].boundary) << "emission " << i;
    EXPECT_EQ(tail[i].outliers, expected_tail[i].outliers)
        << "emission " << i;
  }
}

// --- refusal paths -------------------------------------------------------

TEST(NetTest, UnknownDetectorRefusedAtStart) {
  ServerOptions options;
  options.detector = "definitely-not-a-detector";
  SopServer server(options);
  std::string error;
  EXPECT_FALSE(server.Start(&error));
  EXPECT_NE(error.find("known detectors"), std::string::npos) << error;
  for (const std::string& name : KnownDetectorNames()) {
    EXPECT_NE(error.find(name), std::string::npos) << error;
  }
}

TEST(NetTest, InvalidSubscriptionRefusedConnectionSurvives) {
  ServerOptions options;
  SopServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;

  EXPECT_EQ(client.Subscribe(OutlierQuery(-1.0, 2, 100, 50), &error), 0);
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(client.connected());

  // The refusal cost nothing: the same connection subscribes and ingests.
  ASSERT_GT(client.Subscribe(OutlierQuery(1.0, 2, 100, 50), &error), 0)
      << error;
  IngestAckMsg ack;
  const std::vector<Point> points = GenPoints(50, false, /*seed=*/3);
  ASSERT_TRUE(client.Ingest(50, points, &ack, &error)) << error;
  EXPECT_EQ(ack.accepted, points.size());
  server.Stop();
  // A refused subscription is a negotiation, not a protocol violation.
  EXPECT_EQ(server.stats().protocol_errors, 0u);
  EXPECT_EQ(server.stats().subscribes, 1u);
}

TEST(NetTest, StaleBoundaryRefusedStreamContinues) {
  ServerOptions options;
  SopServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  SopClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  const std::vector<Point> points = GenPoints(50, false, /*seed=*/9);

  IngestAckMsg ack;
  ASSERT_TRUE(client.Ingest(100, points, &ack, &error)) << error;
  EXPECT_EQ(ack.accepted, points.size());

  // A boundary that does not advance the stream is refused — with a
  // diagnostic, not a dropped connection or a dead server.
  ASSERT_TRUE(client.Ingest(50, points, &ack, &error)) << error;
  EXPECT_EQ(ack.accepted, 0u);
  const std::vector<ErrorMsg> errors = client.TakeErrors();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("does not advance"), std::string::npos);

  ASSERT_TRUE(client.Ingest(200, points, &ack, &error)) << error;
  EXPECT_EQ(ack.accepted, points.size());
  server.Stop();
  EXPECT_EQ(server.stats().ingest_batches, 2u);
}

}  // namespace
}  // namespace net
}  // namespace sop
