// Tests for the per-point outlier report aggregation (the paper's Alg. 3
// output format).

#include <memory>

#include "gtest/gtest.h"
#include "sop/detector/driver.h"
#include "sop/detector/factory.h"
#include "sop/report/aggregate.h"
#include "test_util.h"

namespace sop {
namespace {

using report::OutlierAggregator;
using report::PointReport;

QueryResult MakeResult(size_t query, int64_t boundary,
                       std::vector<Seq> outliers) {
  QueryResult r;
  r.query_index = query;
  r.boundary = boundary;
  r.outliers = std::move(outliers);
  return r;
}

TEST(OutlierAggregatorTest, PivotsQueriesPerPoint) {
  OutlierAggregator agg;
  agg.Add(MakeResult(0, 100, {5, 9}));
  agg.Add(MakeResult(2, 100, {9}));
  agg.Add(MakeResult(1, 200, {5}));

  EXPECT_EQ(agg.Boundaries(), (std::vector<int64_t>{100, 200}));
  const std::vector<PointReport> at100 = agg.ReportsAt(100);
  ASSERT_EQ(at100.size(), 2u);
  EXPECT_EQ(at100[0].seq, 5);
  EXPECT_EQ(at100[0].queries, (std::vector<size_t>{0}));
  EXPECT_EQ(at100[1].seq, 9);
  EXPECT_EQ(at100[1].queries, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(agg.ReportsAt(200).size(), 1u);
  EXPECT_TRUE(agg.ReportsAt(999).empty());
  EXPECT_EQ(agg.NumFlaggedPointWindows(), 3u);
  EXPECT_EQ(agg.NumDistinctPoints(), 2u);
}

TEST(OutlierAggregatorTest, ToStringFormat) {
  OutlierAggregator agg;
  agg.Add(MakeResult(0, 100, {5}));
  agg.Add(MakeResult(3, 100, {5}));
  EXPECT_EQ(agg.ToString(100), "p5 <- q0,q3\n");
  EXPECT_EQ(agg.ToString(42), "");
}

// End-to-end: the aggregated view of a real run must contain exactly the
// per-query emissions, pivoted.
TEST(OutlierAggregatorTest, MatchesDriverEmissions) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(0.5, 1, 6, 3));
  w.AddQuery(OutlierQuery(1.5, 3, 9, 3));
  const std::vector<Point> points = testing::Points1D(
      {0.0, 0.4, 5.0, 0.8, 1.2, 5.4, 9.0, 1.6, 2.0, 5.8, 2.4, 0.0});
  std::unique_ptr<OutlierDetector> detector =
      CreateDetector("sop", w);
  OutlierAggregator agg;
  uint64_t flat_flags = 0;
  RunStream(w, points, detector.get(), [&](const QueryResult& r) {
    agg.Add(r);
    flat_flags += r.outliers.size();
  });
  uint64_t pivoted_flags = 0;
  for (const int64_t b : agg.Boundaries()) {
    for (const PointReport& report : agg.ReportsAt(b)) {
      pivoted_flags += report.queries.size();
      // Query lists are sorted and duplicate-free.
      for (size_t i = 1; i < report.queries.size(); ++i) {
        EXPECT_LT(report.queries[i - 1], report.queries[i]);
      }
    }
  }
  EXPECT_EQ(pivoted_flags, flat_flags);
  EXPECT_GT(flat_flags, 0u);
}

}  // namespace
}  // namespace sop
